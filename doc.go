// Package grape5 (module "repro") is a from-scratch Go reproduction of
// "$7.0/Mflops Astrophysical N-Body Simulation with Treecode on
// GRAPE-5" (Kawai, Fukushige & Makino, SC 1999 Gordon Bell
// price/performance entry).
//
// It provides:
//
//   - the Barnes-Hut treecode with Barnes' (1990) modified algorithm —
//     grouped traversal with shared interaction lists — and the GRAPE
//     offload schedule (internal/core, internal/octree);
//   - a functional and timing emulation of the GRAPE-5 special-purpose
//     computer: 2 boards × 8 chips × 2 pipelines at 90 MHz, fixed-point
//     positions, ~0.3 % low-precision force arithmetic, particle-memory
//     streaming and host-interface costs (internal/g5);
//   - the cosmological pipeline of the headline run: standard-CDM power
//     spectrum, Zel'dovich initial conditions for a 50 Mpc sphere, and
//     leapfrog integration from z=24 to z=0 (internal/cosmo,
//     internal/integrate);
//   - the performance and price accounting behind the $7.0/Mflops
//     figure (internal/perf);
//   - analysis tools: force-error statistics, energy, profiles,
//     correlation functions and the Figure-4 projection renderer
//     (internal/analysis).
//
// This package is the public facade: Simulation couples a particle
// System to a force engine (float64 host or emulated GRAPE-5) and a
// leapfrog integrator, and surfaces per-step treecode statistics and
// hardware counters.
//
// The runnable reproductions of the paper's evaluation live in cmd/
// (grape5sim, ngsweep, accuracy, perfreport, mkics, snap2pgm) and the
// benchmark suite in bench_test.go; see DESIGN.md for the experiment
// index and EXPERIMENTS.md for measured-vs-paper results.
package grape5
