// Command snap2pgm renders a snapshot slab to a PGM image (and
// optionally ASCII art), regenerating the paper's Figure 4: "particles
// in a 45Mpc × 45Mpc × 2.5Mpc box are plotted".
//
//	snap2pgm -in z0.g5 -out fig4.pgm -radius 50
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/analysis"
	"repro/internal/snapio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("snap2pgm: ")
	var (
		in     = flag.String("in", "", "input snapshot file (required)")
		out    = flag.String("out", "fig4.pgm", "output PGM file")
		radius = flag.Float64("radius", 50, "sphere radius defining the Figure-4 slab geometry")
		pixels = flag.Int("pixels", 512, "image width and height in pixels")
		ascii  = flag.Bool("ascii", true, "also print ASCII art to stdout")
		cols   = flag.Int("cols", 72, "ASCII art width")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	h, sys, err := snapio.ReadFile(*in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot: N=%d t=%.4g step=%d scale=%.4g\n", sys.N(), h.Time, h.Step, h.Scale)
	sys.Recenter()

	proj, err := analysis.Project(sys, analysis.Figure4Slab(*radius), *pixels, *pixels)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := proj.WritePGM(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d particles in slab, clustering contrast %.2f\n",
		*out, proj.Kept, proj.ClusteringContrast())
	if *ascii {
		fmt.Println(proj.ASCII(*cols))
	}
}
