// Command ngsweep reproduces the paper's §3 experiment: the optimal
// group size n_g of the modified tree algorithm. For each n_g it runs
// the full traversal over a snapshot (counting real interactions and
// list lengths), models the host time on the calibrated DS10 model and
// the GRAPE time on the g5 timing model, and prints the time balance.
// The paper: "For the present configuration, the optimal n_g is around
// 2000."
//
//	ngsweep -in snapshot.g5
//	ngsweep -grid 32 -evolved=false          # fresh ICs, unclustered
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	grape5 "repro"
	"repro/internal/g5"
	"repro/internal/nbody"
	"repro/internal/perf"
	"repro/internal/snapio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ngsweep: ")
	var (
		in      = flag.String("in", "", "snapshot file to sweep over (overrides -grid)")
		grid    = flag.Int("grid", 32, "IC grid when no snapshot given (power of two)")
		lattice = flag.Int("lattice", 0, "particle lattice (0 = grid); 160 with -grid 128 gives the paper's N")
		seed    = flag.Uint64("seed", 1, "IC seed")
		theta   = flag.Float64("theta", 0.75, "opening parameter")
		list    = flag.String("ncrit", "125,250,500,1000,2000,4000,8000,16000",
			"comma-separated n_g values")
	)
	flag.Parse()

	var sys *nbody.System
	switch {
	case *in != "":
		_, s, err := snapio.ReadFile(*in)
		if err != nil {
			log.Fatal(err)
		}
		sys = s
	default:
		cs, err := grape5.NewCosmoSphere(grape5.CosmoSphereParams{GridN: *grid, LatticeN: *lattice, Seed: *seed}, 1)
		if err != nil {
			log.Fatal(err)
		}
		sys = cs.Sys
	}

	var ncrits []int
	for _, f := range strings.Split(*list, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			log.Fatalf("bad ncrit value %q", f)
		}
		ncrits = append(ncrits, v)
	}

	host := perf.DS10()
	fmt.Printf("n_g sweep: N=%d theta=%.2f host=%s\n", sys.N(), *theta, host.Name)
	fmt.Printf("%8s %8s %12s %10s %9s %9s %9s %9s\n",
		"n_g", "groups", "interactions", "avg list", "T_host", "T_pipe", "T_bus", "T_total")

	points, err := perf.NgSweep(sys, *theta, ncrits, host, g5.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	best := perf.Optimum(points)
	for _, p := range points {
		mark := " "
		if best != nil && p.Ncrit == best.Ncrit {
			mark = "*"
		}
		fmt.Printf("%8d %8d %12.4g %10.0f %8.3fs %8.3fs %8.3fs %8.3fs %s\n",
			p.Ncrit, p.Groups, float64(p.Interactions), p.AvgList,
			p.Report.HostSeconds, p.Report.PipeSeconds, p.Report.BusSeconds,
			p.Report.TotalSeconds(), mark)
	}
	if best != nil {
		fmt.Printf("\noptimal n_g = %d (paper §3: \"around 2000\" for the DS10 + GRAPE-5 ratio)\n",
			best.Ncrit)
	}
}
