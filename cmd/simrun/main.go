// Command simrun supervises a long simulation: it runs the given
// command, and when the command crashes (non-zero exit), restarts it
// with capped exponential backoff. Paired with grape5sim's -ckpt-dir
// auto-resume, a multi-day run survives crashes and machine restarts
// with at most one checkpoint interval of recomputation:
//
//	simrun -- grape5sim -model cosmo -grid 32 -steps 999 -ckpt-dir run1.ckpt
//
// A child that exits 0 ends the supervision with exit 0. A child that
// keeps crashing immediately (before -min-uptime) trips a circuit
// breaker after -max-restarts consecutive fast failures — a broken
// configuration must fail loudly, not burn CPU in a crash loop. Any
// crash that happens after -min-uptime of useful work resets both the
// backoff and the breaker. SIGINT/SIGTERM are forwarded to the child
// (started in its own process group) so it can checkpoint and exit
// gracefully; the supervisor then exits with the child's code instead
// of restarting it.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simrun: ")

	var (
		maxRestarts = flag.Int("max-restarts", 5, "consecutive fast failures before the circuit breaker opens")
		minUptime   = flag.Duration("min-uptime", 10*time.Second, "runtime after which a crash counts as progress (resets backoff and breaker)")
		backoff0    = flag.Duration("backoff", time.Second, "initial restart backoff")
		maxBackoff  = flag.Duration("max-backoff", time.Minute, "backoff cap")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: simrun [flags] -- command [args...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	argv := flag.Args()
	if len(argv) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	// Forward termination signals to the child's process group. The child
	// runs in its own group so a terminal ^C reaches it exactly once,
	// via us — not once from the kernel and again from the relay.
	var child atomic.Pointer[os.Process]
	var stopping atomic.Bool
	sigCh := make(chan os.Signal, 4)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		for sig := range sigCh {
			stopping.Store(true)
			if p := child.Load(); p != nil {
				s, ok := sig.(syscall.Signal)
				if !ok {
					s = syscall.SIGTERM
				}
				// Negative pid signals the group.
				if err := syscall.Kill(-p.Pid, s); err != nil {
					log.Printf("forwarding %v: %v", sig, err)
				}
			}
		}
	}()

	backoff := *backoff0
	fastCrashes := 0
	for attempt := 1; ; attempt++ {
		cmd := exec.Command(argv[0], argv[1:]...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		cmd.Stdin = os.Stdin
		cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
		start := time.Now()
		if err := cmd.Start(); err != nil {
			log.Fatalf("starting %s: %v", argv[0], err)
		}
		child.Store(cmd.Process)
		err := cmd.Wait()
		child.Store(nil)
		uptime := time.Since(start)

		code := 0
		if err != nil {
			code = 1
			if ee, ok := err.(*exec.ExitError); ok {
				code = ee.ExitCode()
			}
		}
		if code == 0 {
			if attempt > 1 {
				log.Printf("run completed after %d attempts", attempt)
			}
			os.Exit(0)
		}
		if stopping.Load() {
			// We forwarded a termination signal; the child's exit is the
			// outcome, not a crash to retry.
			log.Printf("child exited %d after signal; stopping", code)
			os.Exit(code)
		}

		if uptime >= *minUptime {
			// Real progress before the crash: treat as a fresh incident.
			fastCrashes = 0
			backoff = *backoff0
		} else {
			fastCrashes++
			if fastCrashes >= *maxRestarts {
				log.Fatalf("circuit breaker open: %d consecutive crashes within %v (last exit %d) — fix the run, not the restart loop",
					fastCrashes, *minUptime, code)
			}
		}
		log.Printf("attempt %d exited %d after %v; restarting in %v",
			attempt, code, uptime.Round(time.Millisecond), backoff)
		time.Sleep(backoff)
		backoff *= 2
		if backoff > *maxBackoff {
			backoff = *maxBackoff
		}
	}
}
