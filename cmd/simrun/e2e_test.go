package main

// Supervisor end-to-end tests: a repeatedly-crashing simulation must be
// driven to completion (bitwise equal to an uninterrupted run), and a
// run that is broken outright must trip the circuit breaker instead of
// looping forever.

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// bins builds simrun and grape5sim once per test run.
func bins(t *testing.T) (simrun, grape5sim string) {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "simrun-e2e-")
		if buildErr != nil {
			return
		}
		for pkg, name := range map[string]string{".": "simrun", "../grape5sim": "grape5sim"} {
			out, err := exec.Command("go", "build", "-o", filepath.Join(buildDir, name), pkg).CombinedOutput()
			if err != nil {
				buildErr = fmt.Errorf("building %s: %v\n%s", name, err, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return filepath.Join(buildDir, "simrun"), filepath.Join(buildDir, "grape5sim")
}

func TestMain(m *testing.M) {
	code := m.Run()
	if buildDir != "" {
		os.RemoveAll(buildDir)
	}
	os.Exit(code)
}

// TestE2ESupervisedCrashLoopCompletes: the child kills itself after
// every 3 locally-executed steps, so finishing 10 steps takes several
// incarnations; the supervisor must carry it through, and the result
// must be bitwise identical to a run that never crashed.
func TestE2ESupervisedCrashLoopCompletes(t *testing.T) {
	simrun, grape5sim := bins(t)

	refDir := t.TempDir()
	refArgs := []string{"-model", "plummer", "-n", "400", "-steps", "10",
		"-engine", "host", "-report", "0", "-snap", filepath.Join(refDir, "final.g5")}
	if out, err := exec.Command(grape5sim, refArgs...).CombinedOutput(); err != nil {
		t.Fatalf("reference run: %v\n%s", err, out)
	}
	refSnap, err := os.ReadFile(filepath.Join(refDir, "final.g5"))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cmd := exec.Command(simrun,
		"-backoff", "10ms", "-max-backoff", "50ms",
		// Every incarnation checkpoints before its crash (ckpt-every 2 <
		// crash-at-step 3), so each one is guaranteed progress; a large
		// min-uptime with a generous breaker still lets ~4 fast crashes
		// through.
		"-min-uptime", "1h", "-max-restarts", "20",
		"--", grape5sim,
		"-model", "plummer", "-n", "400", "-steps", "10",
		"-engine", "host", "-report", "0",
		"-snap", filepath.Join(dir, "final.g5"),
		"-ckpt-dir", filepath.Join(dir, "ckpt"),
		"-ckpt-every", "2", "-crash-at-step", "3")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("supervised run failed: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "restarting in") {
		t.Fatalf("supervisor never restarted the child:\n%s", text)
	}
	if !strings.Contains(text, "run completed after") {
		t.Fatalf("completion marker missing:\n%s", text)
	}
	got, err := os.ReadFile(filepath.Join(dir, "final.g5"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, refSnap) {
		t.Error("supervised crash-loop run is not bitwise equal to the uninterrupted run")
	}
}

// TestE2ECircuitBreaker: a child that fails instantly every time must
// open the breaker after -max-restarts consecutive fast crashes.
func TestE2ECircuitBreaker(t *testing.T) {
	simrun, grape5sim := bins(t)
	cmd := exec.Command(simrun,
		"-backoff", "5ms", "-max-backoff", "10ms",
		"-min-uptime", "1h", "-max-restarts", "3",
		"--", grape5sim, "-engine", "no-such-engine")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("supervisor exited 0 for a permanently-broken child:\n%s", out)
	}
	text := string(out)
	if !strings.Contains(text, "circuit breaker open: 3 consecutive crashes") {
		t.Fatalf("breaker marker missing:\n%s", text)
	}
	// Exactly maxRestarts incarnations ran: the initial attempt plus two
	// restarts.
	if got := strings.Count(text, "unknown engine"); got != 3 {
		t.Errorf("child ran %d times, want 3:\n%s", got, text)
	}
}
