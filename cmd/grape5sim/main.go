// Command grape5sim runs N-body simulations with the treecode on the
// emulated GRAPE-5 (or the float64 host engine), the way the paper's
// headline run was driven: fixed-timestep leapfrog, per-step
// performance statistics, optional snapshot output.
//
// Examples:
//
//	grape5sim -model plummer -n 10000 -steps 100 -engine grape5
//	grape5sim -model cosmo -grid 32 -steps 400 -snap run_%04d.g5 -every 100
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"

	grape5 "repro"
	"repro/internal/analysis"
	"repro/internal/g5"
	"repro/internal/perf"
	"repro/internal/snapio"
	"repro/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("grape5sim: ")

	var (
		model  = flag.String("model", "plummer", "initial model: plummer, uniform, cosmo")
		resume = flag.String("resume", "", "resume from a snapshot file (overrides -model; requires -dt)")
		n      = flag.Int("n", 10000, "particle count (plummer/uniform)")
		grid   = flag.Int("grid", 16, "IC grid size per dimension (cosmo; power of two)")
		radius = flag.Float64("radius", units.PaperRadiusMpc, "comoving sphere radius in Mpc (cosmo)")
		zinit  = flag.Float64("zinit", units.PaperZInit, "starting redshift (cosmo)")
		sigma8 = flag.Float64("sigma8", 0.67, "power spectrum normalisation (cosmo)")
		steps  = flag.Int("steps", 100, "number of leapfrog steps")
		dt     = flag.Float64("dt", 0, "timestep (0 = model default)")
		theta  = flag.Float64("theta", 0.75, "Barnes-Hut opening parameter")
		ncrit  = flag.Int("ncrit", 2000, "modified-algorithm group bound n_g")
		eps    = flag.Float64("eps", 0, "Plummer softening (0 = model default)")
		engine = flag.String("engine", "grape5", "force engine: host, grape5, pm")
		boards = flag.Int("boards", 1, "GRAPE shard count K: drive K independent board systems through the sharded cluster engine (grape5 engine only)")
		pmGrid = flag.Int("pmgrid", 64, "particle-mesh size for -engine pm")
		seed   = flag.Uint64("seed", 1, "random seed")
		snap   = flag.String("snap", "", "snapshot filename pattern (printf with step), e.g. snap_%04d.g5")
		every  = flag.Int("every", 0, "snapshot interval in steps (0 = final only when -snap set)")
		report = flag.Int("report", 10, "print statistics every this many steps")
		csvLog = flag.String("log", "", "write per-step statistics to this CSV file")

		// Fault injection and the fault-tolerant offload path (grape5
		// engine only). Rates are per-hardware-call probabilities.
		faultSeed   = flag.Uint64("fault-seed", 1, "fault injector seed (deterministic)")
		faultFlip   = flag.Float64("fault-bitflip", 0, "j-memory bit-flip rate")
		faultStuck  = flag.Float64("fault-stuck", 0, "stuck virtual-pipeline rate")
		faultBus    = flag.Float64("fault-bus", 0, "bus transfer-error rate")
		faultTrans  = flag.Float64("fault-transient", 0, "transient compute-failure rate")
		failBoard   = flag.Int("fail-board", 0, "board (1-based) that dies mid-run; 0 = none")
		failAfter   = flag.Int64("fail-after", 0, "hardware calls the failing board survives")
		failSlot    = flag.Int("fail-slot", 0, "virtual-pipeline slot that sticks on the failing board")
		guard       = flag.Bool("guard", false, "run the fault-tolerant offload path (verify, retry, degrade, fall back)")
		checkForces = flag.Bool("check-forces", false, "recompute final forces with the host engine and report the RMS error")
	)
	flag.Parse()

	cfg := grape5.Config{Theta: *theta, Ncrit: *ncrit, Eps: *eps}
	switch *engine {
	case "host":
		cfg.Engine = grape5.EngineHost
	case "grape5":
		cfg.Engine = grape5.EngineGRAPE5
	case "pm":
		cfg.Engine = grape5.EnginePM
		cfg.PMGrid = *pmGrid
	default:
		log.Fatalf("unknown engine %q", *engine)
	}

	faultsOn := *faultFlip > 0 || *faultStuck > 0 || *faultBus > 0 ||
		*faultTrans > 0 || *failBoard > 0
	if (faultsOn || *guard) && cfg.Engine != grape5.EngineGRAPE5 {
		log.Fatal("fault injection and -guard require -engine grape5")
	}
	if *boards > 1 {
		if cfg.Engine != grape5.EngineGRAPE5 {
			log.Fatal("-boards requires -engine grape5")
		}
		cfg.Shards = *boards // every shard runs guarded
	}
	if faultsOn {
		hwCfg := g5.DefaultConfig()
		hwCfg.Fault = &g5.FaultModel{
			Seed:            *faultSeed,
			JMemBitFlipRate: *faultFlip,
			StuckPipeRate:   *faultStuck,
			BusErrorRate:    *faultBus,
			TransientRate:   *faultTrans,
			FailBoard:       *failBoard,
			FailAfterRuns:   *failAfter,
			FailSlot:        *failSlot,
		}
		cfg.GRAPE = hwCfg
		if !*guard && *boards <= 1 {
			fmt.Println("note: injecting faults without -guard; corruption goes undetected")
		}
	}
	cfg.Guard = *guard

	var sys *grape5.System
	scale := 0.0
	var t0, age0 float64 // cosmic start time and EdS age normalisation
	if *resume != "" {
		h, s, err := snapio.ReadFile(*resume)
		if err != nil {
			log.Fatal(err)
		}
		sys = s
		scale = h.Scale
		if cfg.Eps == 0 {
			cfg.Eps = h.Eps
		}
		if *dt == 0 {
			log.Fatal("-resume requires an explicit -dt")
		}
		cfg.DT = *dt
		fmt.Printf("resumed %s: N=%d t=%.5g step=%d\n", *resume, sys.N(), h.Time, h.Step)
		*model = "resumed"
	}
	switch *model {
	case "resumed":
		// System already loaded.
	case "plummer":
		cfg.G = 1
		sys = grape5.Plummer(*n, 1, 1, 1, *seed)
		if cfg.Eps == 0 {
			cfg.Eps = 0.02
		}
		cfg.DT = 0.005
	case "uniform":
		cfg.G = 1
		sys = grape5.UniformSphere(*n, 1, 1, *seed)
		if cfg.Eps == 0 {
			cfg.Eps = 0.02
		}
		cfg.DT = 0.002
	case "cosmo":
		cs, err := grape5.NewCosmoSphere(grape5.CosmoSphereParams{
			GridN: *grid, RadiusMpc: *radius, ZInit: *zinit, Sigma8: *sigma8, Seed: *seed,
		}, *steps)
		if err != nil {
			log.Fatal(err)
		}
		sys = cs.Sys
		cfg.DT = cs.Schedule.DT()
		if cfg.Eps == 0 {
			cfg.Eps = cs.GridSpacing * cs.AInit // initial physical spacing
		}
		scale = cs.AInit
		t0 = cs.Schedule.T0
		age0 = cs.Schedule.T1 // EdS age at a=1
		fmt.Printf("cosmological sphere: N=%d, particle mass %.4g x 1e10 Msun, spacing %.3g Mpc, z=%.1f -> 0\n",
			sys.N(), cs.ParticleMass, cs.GridSpacing, *zinit)
	default:
		log.Fatalf("unknown model %q", *model)
	}
	if *dt != 0 {
		cfg.DT = *dt
	}

	sim, err := grape5.NewSimulation(sys, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := sim.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}()
	if err := sim.Prime(); err != nil {
		log.Fatal(err)
	}
	e0 := sim.Energy()
	fmt.Printf("model=%s N=%d steps=%d dt=%.4g theta=%.2f ncrit=%d eps=%.4g engine=%s\n",
		*model, sys.N(), *steps, cfg.DT, *theta, *ncrit, cfg.Eps, *engine)
	fmt.Printf("initial energy: K=%.4g U=%.4g E=%.4g\n", e0.Kinetic, e0.Potential, e0.Total())

	writeSnap := func(step int) {
		if *snap == "" {
			return
		}
		name := *snap
		if strings.Contains(name, "%") {
			name = fmt.Sprintf(name, step)
		}
		sc := scale
		if *model == "cosmo" && age0 > 0 {
			// Einstein-de Sitter: a(t) = (t/t_0)^{2/3}.
			sc = math.Pow((t0+sim.Time())/age0, 2.0/3.0)
		}
		h := snapio.Header{Time: sim.Time(), Step: int64(step), Scale: sc,
			Eps: cfg.Eps, Theta: *theta}
		if err := snapio.WriteFile(name, h, sim.Sys); err != nil {
			log.Fatalf("writing %s: %v", name, err)
		}
		fmt.Printf("wrote %s\n", name)
	}

	var logW *csv.Writer
	if *csvLog != "" {
		f, err := os.Create(*csvLog)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		logW = csv.NewWriter(f)
		defer logW.Flush()
		if err := logW.Write([]string{"step", "time", "groups", "interactions",
			"avg_list", "build_ms", "walk_ms", "compute_ms",
			"kinetic", "potential", "total_energy"}); err != nil {
			log.Fatal(err)
		}
	}

	for s := 1; s <= *steps; s++ {
		if err := sim.Step(); err != nil {
			log.Fatalf("step %d: %v", s, err)
		}
		if *report > 0 && s%*report == 0 {
			st := sim.LastStats
			fmt.Printf("step %4d: groups=%d interactions=%.3g avgList=%.0f build=%v walk=%v compute=%v\n",
				s, st.Groups, float64(st.Interactions), st.AvgList(),
				st.BuildTime.Round(1e6), st.WalkTime.Round(1e6), st.ComputeTime.Round(1e6))
		}
		if logW != nil {
			st := sim.LastStats
			e := sim.Energy()
			rec := []string{
				fmt.Sprint(s),
				fmt.Sprintf("%.8g", sim.Time()),
				fmt.Sprint(st.Groups),
				fmt.Sprint(st.Interactions),
				fmt.Sprintf("%.1f", st.AvgList()),
				fmt.Sprintf("%.3f", float64(st.BuildTime.Microseconds())/1e3),
				fmt.Sprintf("%.3f", float64(st.WalkTime.Microseconds())/1e3),
				fmt.Sprintf("%.3f", float64(st.ComputeTime.Microseconds())/1e3),
				fmt.Sprintf("%.8g", e.Kinetic),
				fmt.Sprintf("%.8g", e.Potential),
				fmt.Sprintf("%.8g", e.Total()),
			}
			if err := logW.Write(rec); err != nil {
				log.Fatal(err)
			}
		}
		if *every > 0 && s%*every == 0 {
			writeSnap(s)
		}
	}
	if *every == 0 {
		writeSnap(*steps)
	}

	e1 := sim.Energy()
	// Normalise the drift by |U0|: a marginally bound cosmological
	// sphere has E ≈ 0, which would make a drift relative to E0
	// meaningless.
	denom := math.Abs(e0.Potential)
	if math.Abs(e0.Total()) > denom {
		denom = math.Abs(e0.Total())
	}
	fmt.Printf("final energy:   K=%.4g U=%.4g E=%.4g (drift %.3g of |U0|)\n",
		e1.Kinetic, e1.Potential, e1.Total(), (e1.Total()-e0.Total())/denom)
	fmt.Printf("total interactions: %.4g (avg list %.0f)\n",
		float64(sim.TotalInteractions),
		float64(sim.TotalInteractions)/float64(sys.N())/float64(*steps+1))

	if c := sim.HardwareCounters(); c.Runs > 0 {
		cl := sim.Cluster()
		var hwCfg g5.Config
		if cl != nil {
			hwCfg = cl.Config()
		} else {
			hwCfg = sim.Hardware().Config()
		}
		k := 1
		if cl != nil {
			k = cl.Shards()
		}
		fmt.Printf("GRAPE-5: runs=%d j-passes=%d bytes=%.3g clamps=%d\n",
			c.Runs, c.JPasses, float64(c.BytesTransferred), c.RangeClamps)
		// For a cluster the shards drain concurrently: the aggregate
		// pipe/bus seconds are total work, the critical path is wall.
		wall := c.HWSeconds()
		if cl != nil {
			wall = cl.CriticalHWSeconds()
		}
		fmt.Printf("GRAPE-5 modelled time: pipe %.3gs + bus %.3gs = %.3gs aggregate (peak %.4g Gflops)\n",
			c.PipeSeconds, c.BusSeconds, c.HWSeconds(), float64(k)*hwCfg.PeakFlops()/1e9)
		if cl != nil {
			loads := cl.ShardInteractions()
			fmt.Printf("cluster: K=%d shards, critical-path hardware time %.3gs, steals=%d\n",
				k, wall, cl.Steals())
			for s, ints := range loads {
				fmt.Printf("  shard %d: interactions=%.3g batches=%d boards=%d/%d\n",
					s, float64(ints), cl.ShardBatches()[s],
					cl.ShardSystem(s).ActiveBoards(), hwCfg.Boards)
			}
		}
		gb := perf.GordonBell{
			Interactions:         float64(sim.TotalInteractions),
			OriginalInteractions: float64(sim.TotalInteractions), // raw accounting here
			WallClockSeconds:     wall,
			OpsPerInteraction:    hwCfg.OpsPerInteraction,
			Cost:                 perf.PaperCostModel(),
		}
		fmt.Printf("hardware-side sustained speed: %.3g Gflops of %.4g peak\n",
			gb.RawFlops()/1e9, float64(k)*hwCfg.PeakFlops()/1e9)
	}
	if fs := sim.FaultStats(); fs != (g5.FaultStats{}) {
		fmt.Printf("injected faults: bitflips=%d stuck-pipe-calls=%d bus=%d transient=%d\n",
			fs.JMemBitFlips, fs.StuckPipeCalls, fs.BusErrors, fs.Transients)
	}
	if *guard || *boards > 1 {
		fmt.Printf("recovery: %s\n", sim.Recovery())
		if cl := sim.Cluster(); cl != nil {
			fmt.Printf("boards in service: %d of %d (across %d shards)\n",
				cl.ActiveBoards(), cl.Shards()*cl.Config().Boards, cl.Shards())
		} else {
			fmt.Printf("boards in service: %d of %d\n",
				sim.Hardware().ActiveBoards(), sim.Hardware().Config().Boards)
		}
	}

	if *checkForces {
		ref := sim.Sys.Clone()
		refCfg := cfg
		refCfg.Engine = grape5.EngineHost
		refCfg.Guard = false
		refCfg.Shards = 0
		refCfg.GRAPE = g5.Config{}
		refSim, err := grape5.NewSimulation(ref, refCfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := refSim.Prime(); err != nil {
			log.Fatal(err)
		}
		// Both systems were reordered by their tree builds; match by ID.
		refAcc := make(map[int64]grape5.Vec3, ref.N())
		for i := range ref.ID {
			refAcc[ref.ID[i]] = ref.Acc[i]
		}
		var num, den float64
		for i := range sim.Sys.ID {
			ra := refAcc[sim.Sys.ID[i]]
			num += sim.Sys.Acc[i].Sub(ra).Norm2()
			den += ra.Norm2()
		}
		fmt.Printf("final-snapshot RMS force error vs host engine: %.4g%%\n",
			100*math.Sqrt(num/den))
	}

	// Final structure summary.
	sim.Sys.Recenter()
	b := sim.Sys.Bounds()
	ext := b.MaxEdge()
	proj, err := analysis.Project(sim.Sys, analysis.SlabSpec{
		XMin: -ext / 2, XMax: ext / 2, YMin: -ext / 2, YMax: ext / 2,
		ZMin: -ext / 2, ZMax: ext / 2}, 128, 128)
	if err == nil {
		fmt.Printf("clustering contrast (variance/mean of projected counts): %.2f\n",
			proj.ClusteringContrast())
	}
}
