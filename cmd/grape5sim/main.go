// Command grape5sim runs N-body simulations with the treecode on the
// emulated GRAPE-5 (or the float64 host engine), the way the paper's
// headline run was driven: fixed-timestep leapfrog, per-step
// performance statistics, optional snapshot output — and crash-safe
// checkpointing, so a killed run resumes bitwise identical to the
// uninterrupted one.
//
// Examples:
//
//	grape5sim -model plummer -n 10000 -steps 100 -engine grape5
//	grape5sim -model cosmo -grid 32 -steps 400 -snap run_%04d.g5 -every 100
//	grape5sim -model cosmo -grid 32 -steps 999 -ckpt-dir run1.ckpt -ckpt-every 50
//
// With -ckpt-dir the run checkpoints every -ckpt-every steps (atomic
// write, keep-last -ckpt-keep rotation) and automatically resumes from
// the latest valid checkpoint when restarted with the same directory —
// falling back to an older generation if the newest is corrupt, and
// refusing loudly if none survive. SIGINT/SIGTERM finish the step in
// flight, write a final checkpoint and exit 0.
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"

	grape5 "repro"
	"repro/internal/analysis"
	"repro/internal/ckpt"
	"repro/internal/fsx"
	"repro/internal/g5"
	"repro/internal/perf"
	"repro/internal/snapio"
	"repro/internal/units"
)

func parseEngine(name string) (grape5.EngineKind, error) {
	switch name {
	case "host":
		return grape5.EngineHost, nil
	case "grape5":
		return grape5.EngineGRAPE5, nil
	case "pm":
		return grape5.EnginePM, nil
	}
	return 0, fmt.Errorf("unknown engine %q", name)
}

func engineName(k grape5.EngineKind) string {
	switch k {
	case grape5.EngineHost:
		return "host"
	case grape5.EngineGRAPE5:
		return "grape5"
	case grape5.EnginePM:
		return "pm"
	}
	return fmt.Sprintf("engine-%d", int(k))
}

// loadResumeFile sniffs the file's magic and loads either a checkpoint
// (full state, bitwise resume) or a snapshot (initial conditions plus
// provenance; the resume re-primes).
func loadResumeFile(path string) (*ckpt.Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var raw [4]byte
	_, rerr := io.ReadFull(f, raw[:])
	if cerr := f.Close(); cerr != nil {
		return nil, cerr
	}
	if rerr != nil {
		return nil, fmt.Errorf("%s: reading magic: %w", path, rerr)
	}
	switch binary.LittleEndian.Uint32(raw[:]) {
	case ckpt.Magic:
		return ckpt.ReadFile(path)
	case snapio.Magic:
		h, s, err := snapio.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return ckpt.FromSnapshot(h, s), nil
	}
	return nil, fmt.Errorf("%s: neither a checkpoint nor a snapshot (magic %#x)", path, binary.LittleEndian.Uint32(raw[:]))
}

// openStepLog opens the per-step CSV, resume-aware: on a fresh run it
// creates the file with a header; on a resume it drops rows beyond the
// resume step (the crashed incarnation may have logged steps whose
// checkpoint never landed — the resumed run re-executes and re-logs
// them) and appends. Rows are flushed per step so a crash tears at most
// the row in flight, which the next resume prunes.
func openStepLog(path string, resumeStep int, header []string) (*os.File, *csv.Writer, error) {
	data, err := os.ReadFile(path)
	fresh := resumeStep == 0 || err != nil
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, err
	}
	if !fresh {
		r := csv.NewReader(bytes.NewReader(data))
		r.FieldsPerRecord = -1
		var kept [][]string
		for i := 0; ; i++ {
			rec, err := r.Read()
			if err != nil {
				break // EOF or a torn final row: keep what parsed
			}
			if i == 0 {
				kept = append(kept, rec)
				continue
			}
			step, err := strconv.Atoi(rec[0])
			if err != nil || step > resumeStep {
				continue
			}
			kept = append(kept, rec)
		}
		if _, err := fsx.AtomicWriteFile(path, func(w io.Writer) error {
			cw := csv.NewWriter(w)
			if err := cw.WriteAll(kept); err != nil {
				return err
			}
			cw.Flush()
			return cw.Error()
		}); err != nil {
			return nil, nil, fmt.Errorf("pruning %s for resume: %w", path, err)
		}
	}
	flags := os.O_CREATE | os.O_WRONLY
	if fresh {
		flags |= os.O_TRUNC
	} else {
		flags |= os.O_APPEND
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, nil, err
	}
	w := csv.NewWriter(f)
	if fresh {
		if err := w.Write(header); err != nil {
			return nil, nil, errors.Join(err, f.Close())
		}
		w.Flush()
	}
	return f, w, w.Error()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("grape5sim: ")

	var (
		model  = flag.String("model", "plummer", "initial model: plummer, uniform, cosmo")
		resume = flag.String("resume", "", "resume from a checkpoint or snapshot file (overrides -model)")
		n      = flag.Int("n", 10000, "particle count (plummer/uniform)")
		grid   = flag.Int("grid", 16, "IC grid size per dimension (cosmo; power of two)")
		radius = flag.Float64("radius", units.PaperRadiusMpc, "comoving sphere radius in Mpc (cosmo)")
		zinit  = flag.Float64("zinit", units.PaperZInit, "starting redshift (cosmo)")
		sigma8 = flag.Float64("sigma8", 0.67, "power spectrum normalisation (cosmo)")
		steps  = flag.Int("steps", 100, "total number of leapfrog steps (a resumed run continues to this count)")
		dt     = flag.Float64("dt", 0, "timestep (0 = model default, or inherited on resume)")
		blocks = flag.Int("blocks", 0, "hierarchical block-timestep rung levels (0 = shared dt); one step spans dtmin*2^(blocks-1)")
		dtMin  = flag.Float64("dtmin", 0, "finest block timestep (-blocks), or the adaptive floor (-eta)")
		eta    = flag.Float64("eta", 0, "timestep accuracy parameter; with -blocks the rung criterion, alone it selects the shared adaptive integrator")
		theta  = flag.Float64("theta", 0.75, "Barnes-Hut opening parameter")
		ncrit  = flag.Int("ncrit", 2000, "modified-algorithm group bound n_g")
		eps    = flag.Float64("eps", 0, "Plummer softening (0 = model default)")
		engine = flag.String("engine", "grape5", "force engine: host, grape5, pm")
		boards = flag.Int("boards", 1, "GRAPE shard count K: drive K independent board systems through the sharded cluster engine (grape5 engine only)")
		pmGrid = flag.Int("pmgrid", 64, "particle-mesh size for -engine pm")
		seed   = flag.Uint64("seed", 1, "random seed")
		snap   = flag.String("snap", "", "snapshot filename pattern (printf with step), e.g. snap_%04d.g5")
		every  = flag.Int("every", 0, "snapshot interval in steps (0 = final only when -snap set)")
		report = flag.Int("report", 10, "print statistics every this many steps")
		csvLog = flag.String("log", "", "write per-step statistics to this CSV file (resume-aware)")

		// Crash-safe checkpointing.
		ckptDir   = flag.String("ckpt-dir", "", "checkpoint directory: periodic durable saves and automatic resume")
		ckptEvery = flag.Int("ckpt-every", 100, "checkpoint interval in steps (with -ckpt-dir)")
		ckptKeep  = flag.Int("ckpt-keep", ckpt.DefaultKeep, "checkpoint generations to retain")

		// Crash injection for the kill/resume test harness. The step count
		// is local to this process (steps *it* executed, not the global
		// step index), so a supervised run makes progress every
		// incarnation and terminates once the crash point passes the end.
		crashStep = flag.Int("crash-at-step", 0, "inject a crash after this many locally-executed steps (testing)")
		crashMode = flag.String("crash-mode", "kill", "crash flavour: kill (os.Exit mid-run) or torn-ckpt (truncated checkpoint, then exit)")

		// Fault injection and the fault-tolerant offload path (grape5
		// engine only). Rates are per-hardware-call probabilities.
		faultSeed   = flag.Uint64("fault-seed", 1, "fault injector seed (deterministic)")
		faultFlip   = flag.Float64("fault-bitflip", 0, "j-memory bit-flip rate")
		faultStuck  = flag.Float64("fault-stuck", 0, "stuck virtual-pipeline rate")
		faultBus    = flag.Float64("fault-bus", 0, "bus transfer-error rate")
		faultTrans  = flag.Float64("fault-transient", 0, "transient compute-failure rate")
		failBoard   = flag.Int("fail-board", 0, "board (1-based) that dies mid-run; 0 = none")
		failAfter   = flag.Int64("fail-after", 0, "hardware calls the failing board survives")
		failSlot    = flag.Int("fail-slot", 0, "virtual-pipeline slot that sticks on the failing board")
		guard       = flag.Bool("guard", false, "run the fault-tolerant offload path (verify, retry, degrade, fall back)")
		checkForces = flag.Bool("check-forces", false, "recompute final forces with the host engine and report the RMS error")
	)
	flag.Parse()

	// Distinguish explicitly-set flags from defaults: on resume, an unset
	// flag inherits the checkpoint's value; a set flag either matches or
	// errors (it never silently drops checkpointed state).
	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })

	engKind, err := parseEngine(*engine)
	if err != nil {
		log.Fatal(err)
	}
	// Timestep-scheduling flag conflicts, caught before any work: the
	// same explicit-flag discipline as resume (unset inherits, set must
	// be coherent).
	if setFlags["blocks"] && *blocks > 0 && !setFlags["dtmin"] {
		log.Fatal("-blocks requires -dtmin (the finest rung timestep)")
	}
	if setFlags["dtmin"] && !setFlags["blocks"] && !setFlags["eta"] {
		log.Fatal("-dtmin needs a scheduler: give -blocks (block timesteps) or -eta (adaptive dt)")
	}
	if setFlags["blocks"] && *blocks > 0 && setFlags["dt"] {
		log.Fatal("-dt conflicts with -blocks: the step is dtmin*2^(blocks-1); drop -dt")
	}
	adaptive := setFlags["eta"] && !(setFlags["blocks"] && *blocks > 0)
	if *crashMode != "kill" && *crashMode != "torn-ckpt" {
		log.Fatalf("unknown -crash-mode %q (want kill or torn-ckpt)", *crashMode)
	}
	if *crashStep > 0 && *crashMode == "torn-ckpt" && *ckptDir == "" {
		log.Fatal("-crash-mode torn-ckpt requires -ckpt-dir")
	}

	faultsOn := *faultFlip > 0 || *faultStuck > 0 || *faultBus > 0 ||
		*faultTrans > 0 || *failBoard > 0
	var hwCfg g5.Config
	if faultsOn {
		hwCfg = g5.DefaultConfig()
		hwCfg.Fault = &g5.FaultModel{
			Seed:            *faultSeed,
			JMemBitFlipRate: *faultFlip,
			StuckPipeRate:   *faultStuck,
			BusErrorRate:    *faultBus,
			TransientRate:   *faultTrans,
			FailBoard:       *failBoard,
			FailAfterRuns:   *failAfter,
			FailSlot:        *failSlot,
		}
		if !*guard && *boards <= 1 {
			fmt.Println("note: injecting faults without -guard; corruption goes undetected")
		}
	}

	// Resume discovery. Precedence: a valid checkpoint in -ckpt-dir wins
	// (that is the supervised-restart path); -resume names an explicit
	// file. Having both a valid store checkpoint and -resume is ambiguous
	// and refused. A store where every generation is corrupt is a loud
	// error, never a silent fresh start.
	var store *ckpt.Store
	var resumed *ckpt.Checkpoint
	fromStore := false
	if *ckptDir != "" {
		store, err = ckpt.OpenStore(*ckptDir, *ckptKeep)
		if err != nil {
			log.Fatal(err)
		}
		c, gen, lerr := store.LatestValid()
		switch {
		case lerr == nil:
			if *resume != "" {
				log.Fatalf("ambiguous resume: -ckpt-dir %s holds a valid checkpoint (step %d) and -resume %s was also given; drop one",
					*ckptDir, gen.Step, *resume)
			}
			resumed = c
			fromStore = true
			fmt.Printf("resuming from %s (step %d, t=%.6g)\n",
				filepath.Join(*ckptDir, gen.File), gen.Step, c.State.Time)
		case errors.Is(lerr, ckpt.ErrNoCheckpoint):
			// Fresh store: start from the model or -resume.
		default:
			log.Fatalf("checkpoint discovery failed — refusing to silently restart: %v", lerr)
		}
	}
	if resumed == nil && *resume != "" {
		resumed, err = loadResumeFile(*resume)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resuming from %s: N=%d step=%d t=%.6g primed=%v\n",
			*resume, resumed.Sys.N(), resumed.State.Step, resumed.State.Time, resumed.State.Primed)
	}

	var sim *grape5.Simulation
	if resumed != nil {
		if setFlags["model"] {
			// An auto-resume re-execs the original command line (that is
			// how a supervised restart works), so the model flags are
			// simply superseded by the checkpoint. Naming both an
			// explicit -resume file and a model is genuinely ambiguous.
			if fromStore {
				fmt.Println("note: -model superseded by the checkpoint; particle state resumes")
			} else {
				log.Fatal("-model conflicts with -resume: the particle state comes from the file; drop one")
			}
		}
		st := resumed.State
		if setFlags["engine"] && st.Engine >= 0 && int64(engKind) != st.Engine {
			log.Fatalf("resume: checkpoint ran -engine %s but -engine %s was given; drop the flag or start a fresh run",
				engineName(grape5.EngineKind(st.Engine)), *engine)
		}
		// Overlay config: only explicitly-set flags; everything else
		// inherits the checkpoint's fingerprint (ResumeConfig errors on
		// any conflict).
		overlay := grape5.Config{Guard: *guard, GuardPolicy: g5.GuardPolicy{}, GRAPE: hwCfg}
		if setFlags["engine"] {
			overlay.Engine = engKind
		}
		if setFlags["theta"] {
			overlay.Theta = *theta
		}
		if setFlags["ncrit"] {
			overlay.Ncrit = *ncrit
		}
		if setFlags["eps"] {
			overlay.Eps = *eps
		}
		if setFlags["dt"] {
			overlay.DT = *dt
		}
		if setFlags["pmgrid"] {
			overlay.PMGrid = *pmGrid
		}
		if setFlags["boards"] {
			overlay.Shards = *boards
		}
		if setFlags["blocks"] {
			overlay.Blocks = *blocks
		}
		if setFlags["dtmin"] {
			overlay.DTMin = *dtMin
		}
		if setFlags["eta"] {
			overlay.Eta = *eta
		}
		overlay.Adaptive = adaptive
		sim, err = grape5.ResumeSimulation(resumed, overlay)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		cfg := grape5.Config{Theta: *theta, Ncrit: *ncrit, Eps: *eps,
			Engine: engKind, Guard: *guard, GRAPE: hwCfg,
			Blocks: *blocks, DTMin: *dtMin, Eta: *eta, Adaptive: adaptive}
		if engKind == grape5.EnginePM {
			cfg.PMGrid = *pmGrid
		}
		if (faultsOn || *guard) && engKind != grape5.EngineGRAPE5 {
			log.Fatal("fault injection and -guard require -engine grape5")
		}
		if *boards > 1 {
			if engKind != grape5.EngineGRAPE5 {
				log.Fatal("-boards requires -engine grape5")
			}
			cfg.Shards = *boards // every shard runs guarded
		}

		var sys *grape5.System
		aux := grape5.RunAux{Seed: *seed}
		switch *model {
		case "plummer":
			cfg.G = 1
			sys = grape5.Plummer(*n, 1, 1, 1, *seed)
			if cfg.Eps == 0 {
				cfg.Eps = 0.02
			}
			cfg.DT = 0.005
		case "uniform":
			cfg.G = 1
			sys = grape5.UniformSphere(*n, 1, 1, *seed)
			if cfg.Eps == 0 {
				cfg.Eps = 0.02
			}
			cfg.DT = 0.002
		case "cosmo":
			cs, err := grape5.NewCosmoSphere(grape5.CosmoSphereParams{
				GridN: *grid, RadiusMpc: *radius, ZInit: *zinit, Sigma8: *sigma8, Seed: *seed,
			}, *steps)
			if err != nil {
				log.Fatal(err)
			}
			sys = cs.Sys
			cfg.DT = cs.Schedule.DT()
			if cfg.Eps == 0 {
				cfg.Eps = cs.GridSpacing * cs.AInit // initial physical spacing
			}
			aux.Scale = cs.AInit
			aux.T0 = cs.Schedule.T0
			aux.Age0 = cs.Schedule.T1 // EdS age at a=1
			fmt.Printf("cosmological sphere: N=%d, particle mass %.4g x 1e10 Msun, spacing %.3g Mpc, z=%.1f -> 0\n",
				sys.N(), cs.ParticleMass, cs.GridSpacing, *zinit)
		default:
			log.Fatalf("unknown model %q", *model)
		}
		if *dt != 0 {
			cfg.DT = *dt
		}
		if cfg.Blocks > 0 {
			// Block runs derive the step from the rung ladder; the model
			// default DT would conflict with the span.
			cfg.DT = 0
		}
		sim, err = grape5.NewSimulation(sys, cfg)
		if err != nil {
			log.Fatal(err)
		}
		sim.SetAux(aux)
	}
	defer func() {
		if err := sim.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}()

	cfg := sim.Config()
	aux := sim.Aux()
	// A primed resume already holds the post-force state of its step; a
	// re-prime would be both wasted work and a determinism bug.
	if !sim.Primed() {
		if err := sim.Prime(); err != nil {
			log.Fatal(err)
		}
	}
	e0 := sim.Energy()
	fmt.Printf("N=%d steps=%d..%d dt=%.4g theta=%.2f ncrit=%d eps=%.4g engine=%s\n",
		sim.Sys.N(), sim.Steps(), *steps, cfg.DT, cfg.Theta, cfg.Ncrit, cfg.Eps, engineName(cfg.Engine))
	if cfg.Blocks > 0 {
		fmt.Printf("block timesteps: %d rungs, dtmin=%.4g span=%.4g, occupancy=%v\n",
			cfg.Blocks, cfg.DTMin, cfg.DT, sim.RungOccupancy())
	} else if cfg.Adaptive {
		fmt.Printf("adaptive dt: eta=%.3g ceiling=%.4g floor=%.4g\n", cfg.Eta, cfg.DT, cfg.DTMin)
	}
	fmt.Printf("initial energy: K=%.4g U=%.4g E=%.4g\n", e0.Kinetic, e0.Potential, e0.Total())
	if sim.Steps() >= *steps {
		fmt.Printf("nothing to do: checkpoint is at step %d and -steps is %d\n", sim.Steps(), *steps)
	}

	writeSnap := func(step int) {
		if *snap == "" {
			return
		}
		name := *snap
		if strings.Contains(name, "%") {
			name = fmt.Sprintf(name, step)
		}
		sc := aux.Scale
		if aux.Age0 > 0 {
			// Einstein-de Sitter: a(t) = (t/t_0)^{2/3}.
			sc = math.Pow((aux.T0+sim.Time())/aux.Age0, 2.0/3.0)
		}
		h := snapio.Header{Time: sim.Time(), Step: int64(step), Scale: sc,
			Eps: cfg.Eps, Theta: cfg.Theta, DT: cfg.DT}
		if err := snapio.WriteFile(name, h, sim.Sys); err != nil {
			log.Fatalf("writing %s: %v", name, err)
		}
		fmt.Printf("wrote %s\n", name)
	}

	var logW *csv.Writer
	if *csvLog != "" {
		f, w, err := openStepLog(*csvLog, sim.Steps(), []string{
			"step", "time", "groups", "interactions",
			"avg_list", "build_ms", "walk_ms", "compute_ms",
			"kinetic", "potential", "total_energy", "active_frac"})
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		logW = w
		defer logW.Flush()
	}

	saveCkpt := func() ckpt.SaveInfo {
		info, err := sim.Checkpoint(store)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ckpt: wrote %s (step %d, %d bytes, %.1f ms)\n",
			filepath.Base(info.Path), info.Step, info.Bytes,
			1e3*sim.LastReport.Phases.Checkpoint)
		return info
	}

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	localSteps := 0

	for s := sim.Steps() + 1; s <= *steps; s++ {
		if err := sim.Step(); err != nil {
			log.Fatalf("step %d: %v", s, err)
		}
		localSteps++
		// Crash injection sits right after the physics and before any
		// bookkeeping: the harshest point — telemetry, CSV rows and the
		// periodic checkpoint for this step are all lost.
		if *crashStep > 0 && localSteps == *crashStep {
			if *crashMode == "torn-ckpt" {
				info := saveCkpt()
				if err := os.Truncate(info.Path, info.Bytes/2); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("crash: tore checkpoint %s, exiting\n", filepath.Base(info.Path))
				os.Exit(3)
			}
			fmt.Printf("crash: injected kill after local step %d (global step %d)\n", localSteps, s)
			os.Exit(3)
		}
		if *report > 0 && s%*report == 0 {
			st := sim.LastStats
			fmt.Printf("step %4d: groups=%d interactions=%.3g avgList=%.0f build=%v walk=%v compute=%v\n",
				s, st.Groups, float64(st.Interactions), st.AvgList(),
				st.BuildTime.Round(1e6), st.WalkTime.Round(1e6), st.ComputeTime.Round(1e6))
		}
		if logW != nil {
			st := sim.LastStats
			e := sim.Energy()
			rec := []string{
				fmt.Sprint(s),
				fmt.Sprintf("%.8g", sim.Time()),
				fmt.Sprint(st.Groups),
				fmt.Sprint(st.Interactions),
				fmt.Sprintf("%.1f", st.AvgList()),
				fmt.Sprintf("%.3f", float64(st.BuildTime.Microseconds())/1e3),
				fmt.Sprintf("%.3f", float64(st.WalkTime.Microseconds())/1e3),
				fmt.Sprintf("%.3f", float64(st.ComputeTime.Microseconds())/1e3),
				fmt.Sprintf("%.8g", e.Kinetic),
				fmt.Sprintf("%.8g", e.Potential),
				fmt.Sprintf("%.8g", e.Total()),
				fmt.Sprintf("%.6g", sim.LastReport.ActiveFrac),
			}
			if err := logW.Write(rec); err != nil {
				log.Fatal(err)
			}
			// Flush per row: a crash loses at most the torn row in
			// flight, which the resume path prunes.
			logW.Flush()
			if err := logW.Error(); err != nil {
				log.Fatal(err)
			}
		}
		if *every > 0 && s%*every == 0 {
			writeSnap(s)
		}
		if store != nil && *ckptEvery > 0 && s%*ckptEvery == 0 && s < *steps {
			saveCkpt()
		}
		select {
		case sig := <-sigCh:
			// Graceful shutdown: the step in flight is already complete,
			// so the checkpoint captures a clean boundary. A second
			// signal aborts immediately.
			go func() { <-sigCh; os.Exit(130) }()
			fmt.Printf("%v: stopping after step %d\n", sig, s)
			if store != nil {
				saveCkpt()
			}
			if err := sim.Close(); err != nil {
				log.Printf("close: %v", err)
			}
			fmt.Println("interrupted: state saved; rerun with the same -ckpt-dir to continue")
			os.Exit(0)
		default:
		}
	}
	if store != nil && sim.Steps() == *steps {
		// Final checkpoint: a supervised restart of a completed run sees
		// step == -steps and exits cleanly instead of recomputing.
		saveCkpt()
	}
	if *every == 0 {
		writeSnap(*steps)
	}

	e1 := sim.Energy()
	// Normalise the drift by |U0|: a marginally bound cosmological
	// sphere has E ≈ 0, which would make a drift relative to E0
	// meaningless.
	denom := math.Abs(e0.Potential)
	if math.Abs(e0.Total()) > denom {
		denom = math.Abs(e0.Total())
	}
	fmt.Printf("final energy:   K=%.4g U=%.4g E=%.4g (drift %.3g of |U0|)\n",
		e1.Kinetic, e1.Potential, e1.Total(), (e1.Total()-e0.Total())/denom)
	fmt.Printf("total interactions: %.4g (avg list %.0f)\n",
		float64(sim.TotalInteractions),
		float64(sim.TotalInteractions)/float64(sim.Sys.N())/float64(*steps+1))
	if cfg.Blocks > 0 {
		fmt.Printf("block scheduler: rung occupancy %v, last-step active fraction %.3g over %d substeps\n",
			sim.RungOccupancy(), sim.LastReport.ActiveFrac, sim.LastReport.Substeps)
	}

	if c := sim.HardwareCounters(); c.Runs > 0 && sim.Config().Engine == grape5.EngineGRAPE5 {
		cl := sim.Cluster()
		var bCfg g5.Config
		if cl != nil {
			bCfg = cl.Config()
		} else if hw := sim.Hardware(); hw != nil {
			bCfg = hw.Config()
		} else {
			bCfg = g5.DefaultConfig()
		}
		k := 1
		if cl != nil {
			k = cl.Shards()
		}
		fmt.Printf("GRAPE-5: runs=%d j-passes=%d bytes=%.3g clamps=%d\n",
			c.Runs, c.JPasses, float64(c.BytesTransferred), c.RangeClamps)
		// For a cluster the shards drain concurrently: the aggregate
		// pipe/bus seconds are total work, the critical path is wall.
		wall := c.HWSeconds()
		if cl != nil {
			wall = cl.CriticalHWSeconds()
		}
		fmt.Printf("GRAPE-5 modelled time: pipe %.3gs + bus %.3gs = %.3gs aggregate (peak %.4g Gflops)\n",
			c.PipeSeconds, c.BusSeconds, c.HWSeconds(), float64(k)*bCfg.PeakFlops()/1e9)
		if cl != nil {
			loads := cl.ShardInteractions()
			fmt.Printf("cluster: K=%d shards, critical-path hardware time %.3gs, steals=%d\n",
				k, wall, cl.Steals())
			for s, ints := range loads {
				fmt.Printf("  shard %d: interactions=%.3g batches=%d boards=%d/%d\n",
					s, float64(ints), cl.ShardBatches()[s],
					cl.ShardSystem(s).ActiveBoards(), bCfg.Boards)
			}
		}
		gb := perf.GordonBell{
			Interactions:         float64(sim.TotalInteractions),
			OriginalInteractions: float64(sim.TotalInteractions), // raw accounting here
			WallClockSeconds:     wall,
			OpsPerInteraction:    bCfg.OpsPerInteraction,
			Cost:                 perf.PaperCostModel(),
		}
		fmt.Printf("hardware-side sustained speed: %.3g Gflops of %.4g peak\n",
			gb.RawFlops()/1e9, float64(k)*bCfg.PeakFlops()/1e9)
	}
	if fs := sim.FaultStats(); fs != (g5.FaultStats{}) {
		fmt.Printf("injected faults: bitflips=%d stuck-pipe-calls=%d bus=%d transient=%d\n",
			fs.JMemBitFlips, fs.StuckPipeCalls, fs.BusErrors, fs.Transients)
	}
	if rec := sim.Recovery(); rec != (g5.Recovery{}) {
		fmt.Printf("recovery: %s\n", rec)
		if cl := sim.Cluster(); cl != nil {
			fmt.Printf("boards in service: %d of %d (across %d shards)\n",
				cl.ActiveBoards(), cl.Shards()*cl.Config().Boards, cl.Shards())
		} else if hw := sim.Hardware(); hw != nil {
			fmt.Printf("boards in service: %d of %d\n",
				hw.ActiveBoards(), hw.Config().Boards)
		}
	}

	if *checkForces {
		ref := sim.Sys.Clone()
		refCfg := cfg
		refCfg.Engine = grape5.EngineHost
		refCfg.Guard = false
		refCfg.Shards = 0
		refCfg.GRAPE = g5.Config{}
		refSim, err := grape5.NewSimulation(ref, refCfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := refSim.Prime(); err != nil {
			log.Fatal(err)
		}
		// Both systems were reordered by their tree builds; match by ID.
		refAcc := make(map[int64]grape5.Vec3, ref.N())
		for i := range ref.ID {
			refAcc[ref.ID[i]] = ref.Acc[i]
		}
		var num, den float64
		for i := range sim.Sys.ID {
			ra := refAcc[sim.Sys.ID[i]]
			num += sim.Sys.Acc[i].Sub(ra).Norm2()
			den += ra.Norm2()
		}
		fmt.Printf("final-snapshot RMS force error vs host engine: %.4g%%\n",
			100*math.Sqrt(num/den))
	}

	// Final structure summary.
	sim.Sys.Recenter()
	b := sim.Sys.Bounds()
	ext := b.MaxEdge()
	proj, err := analysis.Project(sim.Sys, analysis.SlabSpec{
		XMin: -ext / 2, XMax: ext / 2, YMin: -ext / 2, YMax: ext / 2,
		ZMin: -ext / 2, ZMax: ext / 2}, 128, 128)
	if err == nil {
		fmt.Printf("clustering contrast (variance/mean of projected counts): %.2f\n",
			proj.ClusteringContrast())
	}
}
