package main

// End-to-end crash/resume tests: these drive the real binary through
// os/exec — kill it mid-run, rerun it, and demand the final state be
// bitwise identical to an uninterrupted run. This is the enforcement of
// the checkpoint layer's core guarantee at the process level, where the
// unit tests cannot reach (signals, exit codes, torn files on a real
// filesystem).

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// binPath builds the grape5sim binary once per test run.
func binPath(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "grape5sim-e2e-")
		if buildErr != nil {
			return
		}
		out, err := exec.Command("go", "build", "-o", filepath.Join(buildDir, "grape5sim"), ".").CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("building grape5sim: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return filepath.Join(buildDir, "grape5sim")
}

func TestMain(m *testing.M) {
	code := m.Run()
	if buildDir != "" {
		os.RemoveAll(buildDir)
	}
	os.Exit(code)
}

// run executes the binary with args, returning combined output and the
// exit code.
func run(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%v: %v\n%s", args, err, out)
		}
		code = ee.ExitCode()
	}
	return string(out), code
}

// baseArgs is a small deterministic host-engine run: big enough to be a
// real treecode problem, small enough for CI.
func baseArgs(dir string, steps int, extra ...string) []string {
	args := []string{"-model", "plummer", "-n", "400", "-steps", fmt.Sprint(steps),
		"-engine", "host", "-report", "0",
		"-snap", filepath.Join(dir, "final.g5"),
		"-log", filepath.Join(dir, "steps.csv")}
	return append(args, extra...)
}

// physicsColumns strips the wall-clock timing columns from the step log,
// leaving only deterministic physics (step, time, groups, interactions,
// avg list, energies).
func physicsColumns(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(bytes.NewReader(data))
	rows, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, row := range rows {
		phys := append(append([]string{}, row[:5]...), row[8:]...)
		b.WriteString(strings.Join(phys, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func mustReadFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// referenceRun performs the uninterrupted run and returns its final
// snapshot bytes and physics log.
func referenceRun(t *testing.T, bin string, steps int) ([]byte, string) {
	t.Helper()
	dir := t.TempDir()
	if out, code := run(t, bin, baseArgs(dir, steps)...); code != 0 {
		t.Fatalf("reference run exited %d:\n%s", code, out)
	}
	return mustReadFile(t, filepath.Join(dir, "final.g5")),
		physicsColumns(t, filepath.Join(dir, "steps.csv"))
}

// TestE2EKillResumeBitwise kills the run mid-flight with the seeded
// crash injector, reruns it against the same checkpoint directory, and
// requires the final snapshot — and every physics column of the step
// log — to equal the uninterrupted run exactly.
func TestE2EKillResumeBitwise(t *testing.T) {
	bin := binPath(t)
	refSnap, refLog := referenceRun(t, bin, 12)

	dir := t.TempDir()
	args := baseArgs(dir, 12, "-ckpt-dir", filepath.Join(dir, "ckpt"), "-ckpt-every", "4")
	out, code := run(t, bin, append(args, "-crash-at-step", "6")...)
	if code != 3 {
		t.Fatalf("crash run exited %d, want 3:\n%s", code, out)
	}
	if !strings.Contains(out, "crash: injected kill") {
		t.Fatalf("crash marker missing:\n%s", out)
	}
	out, code = run(t, bin, args...)
	if code != 0 {
		t.Fatalf("resume run exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "resuming from") {
		t.Fatalf("resume run did not auto-resume:\n%s", out)
	}
	if got := mustReadFile(t, filepath.Join(dir, "final.g5")); !bytes.Equal(got, refSnap) {
		t.Error("final snapshot differs from uninterrupted run — resume is not bitwise deterministic")
	}
	if got := physicsColumns(t, filepath.Join(dir, "steps.csv")); got != refLog {
		t.Errorf("step log physics differ from uninterrupted run:\n got:\n%s\nwant:\n%s", got, refLog)
	}
}

// TestE2ETornCheckpointFallback tears the newest checkpoint (simulating
// the torn write that atomic rename normally prevents) and requires the
// rerun to fall back to the previous generation — and still land
// bitwise on the reference trajectory.
func TestE2ETornCheckpointFallback(t *testing.T) {
	bin := binPath(t)
	refSnap, _ := referenceRun(t, bin, 12)

	dir := t.TempDir()
	args := baseArgs(dir, 12, "-ckpt-dir", filepath.Join(dir, "ckpt"), "-ckpt-every", "4")
	out, code := run(t, bin, append(args, "-crash-at-step", "6", "-crash-mode", "torn-ckpt")...)
	if code != 3 || !strings.Contains(out, "crash: tore checkpoint") {
		t.Fatalf("torn-ckpt run exited %d:\n%s", code, out)
	}
	out, code = run(t, bin, args...)
	if code != 0 {
		t.Fatalf("resume after torn checkpoint exited %d:\n%s", code, out)
	}
	// Step 6's checkpoint is torn; the fallback generation is step 4.
	if !strings.Contains(out, "ckpt-000000000004.g5ck (step 4") {
		t.Fatalf("did not fall back to the step-4 generation:\n%s", out)
	}
	if got := mustReadFile(t, filepath.Join(dir, "final.g5")); !bytes.Equal(got, refSnap) {
		t.Error("final snapshot differs after torn-checkpoint fallback")
	}
}

// TestE2EGracefulSIGINT interrupts a running simulation and requires a
// clean exit 0 with a final checkpoint on disk — and that a rerun picks
// up from it and matches the reference bitwise.
func TestE2EGracefulSIGINT(t *testing.T) {
	bin := binPath(t)
	// Longer run than the other tests: the signal must land while the
	// stepping loop still has plenty of runway.
	const steps = 60
	refSnap, _ := referenceRun(t, bin, steps)

	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "ckpt")
	args := baseArgs(dir, steps, "-ckpt-dir", ckptDir, "-ckpt-every", "1")
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var errBuf bytes.Buffer
	cmd.Stderr = &errBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Signal as soon as the first checkpoint line confirms the run is in
	// its stepping loop.
	var tail []string
	sc := bufio.NewScanner(stdout)
	signalled := false
	for sc.Scan() {
		line := sc.Text()
		tail = append(tail, line)
		if !signalled && strings.Contains(line, "ckpt: wrote") {
			signalled = true
			if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
				t.Fatal(err)
			}
		}
	}
	err = cmd.Wait()
	if !signalled {
		t.Fatalf("never saw a checkpoint line:\n%s\n%s", strings.Join(tail, "\n"), errBuf.String())
	}
	if err != nil {
		t.Fatalf("SIGINT run did not exit 0: %v\n%s\n%s", err, strings.Join(tail, "\n"), errBuf.String())
	}
	joined := strings.Join(tail, "\n")
	if !strings.Contains(joined, "interrupted: state saved") {
		t.Fatalf("graceful-shutdown marker missing:\n%s", joined)
	}
	// The interrupted run must be resumable to the bitwise reference.
	if out, code := run(t, bin, args...); code != 0 {
		t.Fatalf("resume after SIGINT exited %d:\n%s", code, out)
	}
	if got := mustReadFile(t, filepath.Join(dir, "final.g5")); !bytes.Equal(got, refSnap) {
		t.Error("final snapshot differs after SIGINT + resume")
	}
}

// TestE2EResumeRefusals: ambiguity and corruption must stop the run,
// never silently restart physics.
func TestE2EResumeRefusals(t *testing.T) {
	bin := binPath(t)
	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "ckpt")
	args := baseArgs(dir, 12, "-ckpt-dir", ckptDir, "-ckpt-every", "4")
	if out, code := run(t, bin, args...); code != 0 {
		t.Fatalf("seed run exited %d:\n%s", code, out)
	}

	// Valid store + -resume file: ambiguous.
	out, code := run(t, bin, append(args, "-resume", filepath.Join(dir, "final.g5"))...)
	if code == 0 || !strings.Contains(out, "ambiguous resume") {
		t.Errorf("ambiguous resume not refused (exit %d):\n%s", code, out)
	}

	// Every generation corrupted: loud failure, not a fresh start.
	ents, err := os.ReadDir(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".g5ck") {
			if err := os.WriteFile(filepath.Join(ckptDir, e.Name()), []byte("rot"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	out, code = run(t, bin, args...)
	if code == 0 || !strings.Contains(out, "refusing to silently restart") {
		t.Errorf("all-corrupt store not refused (exit %d):\n%s", code, out)
	}

	// A conflicting explicit flag on resume must be refused.
	dir2 := t.TempDir()
	args2 := baseArgs(dir2, 12, "-ckpt-dir", filepath.Join(dir2, "ckpt"), "-ckpt-every", "4", "-crash-at-step", "6")
	if _, code := run(t, bin, args2...); code != 3 {
		t.Fatalf("crash run exited %d, want 3", code)
	}
	out, code = run(t, bin, append(baseArgs(dir2, 12, "-ckpt-dir", filepath.Join(dir2, "ckpt")), "-theta", "0.9")...)
	if code == 0 || !strings.Contains(out, "theta") {
		t.Errorf("conflicting -theta on resume not refused (exit %d):\n%s", code, out)
	}
}

// TestE2ECompletedRunIsIdempotent: rerunning a finished run must do no
// physics and exit 0 (the supervisor relies on this to terminate).
func TestE2ECompletedRunIsIdempotent(t *testing.T) {
	bin := binPath(t)
	dir := t.TempDir()
	args := baseArgs(dir, 12, "-ckpt-dir", filepath.Join(dir, "ckpt"), "-ckpt-every", "4")
	if out, code := run(t, bin, args...); code != 0 {
		t.Fatalf("first run exited %d:\n%s", code, out)
	}
	first := mustReadFile(t, filepath.Join(dir, "final.g5"))
	start := time.Now()
	out, code := run(t, bin, args...)
	if code != 0 || !strings.Contains(out, "nothing to do") {
		t.Fatalf("rerun of completed run (exit %d, %v):\n%s", code, time.Since(start), out)
	}
	if got := mustReadFile(t, filepath.Join(dir, "final.g5")); !bytes.Equal(got, first) {
		t.Error("idempotent rerun changed the final snapshot")
	}
}

// crashResumeBitwise is the kill/resume harness shared by the
// scheduling-mode tests: reference run, crash at local step 6 with
// checkpoints every 4, auto-resume, then bitwise comparison of the
// final snapshot and every physics column of the step log.
func crashResumeBitwise(t *testing.T, extra ...string) {
	t.Helper()
	bin := binPath(t)
	refDir := t.TempDir()
	if out, code := run(t, bin, baseArgs(refDir, 12, extra...)...); code != 0 {
		t.Fatalf("reference run exited %d:\n%s", code, out)
	}
	refSnap := mustReadFile(t, filepath.Join(refDir, "final.g5"))
	refLog := physicsColumns(t, filepath.Join(refDir, "steps.csv"))

	dir := t.TempDir()
	args := baseArgs(dir, 12, append([]string{"-ckpt-dir", filepath.Join(dir, "ckpt"), "-ckpt-every", "4"}, extra...)...)
	out, code := run(t, bin, append(args, "-crash-at-step", "6")...)
	if code != 3 || !strings.Contains(out, "crash: injected kill") {
		t.Fatalf("crash run exited %d, want 3:\n%s", code, out)
	}
	out, code = run(t, bin, args...)
	if code != 0 {
		t.Fatalf("resume run exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "resuming from") {
		t.Fatalf("resume run did not auto-resume:\n%s", out)
	}
	if got := mustReadFile(t, filepath.Join(dir, "final.g5")); !bytes.Equal(got, refSnap) {
		t.Error("final snapshot differs from uninterrupted run — resume is not bitwise deterministic")
	}
	if got := physicsColumns(t, filepath.Join(dir, "steps.csv")); got != refLog {
		t.Errorf("step log physics differ from uninterrupted run:\n got:\n%s\nwant:\n%s", got, refLog)
	}
}

// TestE2EKillResumeAdaptiveBitwise: the shared adaptive-dt integrator
// through the kill/resume gauntlet. The next dt is a pure function of
// the restored accelerations, so a correctly restored checkpoint must
// reproduce the uninterrupted trajectory exactly.
func TestE2EKillResumeAdaptiveBitwise(t *testing.T) {
	crashResumeBitwise(t, "-eta", "0.25", "-dtmin", "0.001")
}

// TestE2EKillResumeBlocksBitwise: hierarchical block timesteps through
// the kill/resume gauntlet, with a group size small enough that
// partially-active groups exercise the gather/scatter walk path. The
// version-2 RUNG checkpoint section must restore the rungs, the block
// clock and the cached-tree schedule exactly.
func TestE2EKillResumeBlocksBitwise(t *testing.T) {
	crashResumeBitwise(t, "-blocks", "4", "-dtmin", "0.000625", "-eta", "0.1", "-ncrit", "32")
}
