// Command perfreport regenerates the paper's evaluation numbers:
//
//	E1  theoretical peak (109.44 Gflops, §2)
//	E7  system cost ($40,900, §4)
//	E8  particle mass (1.7e10 Msun, §5)
//	E4  headline run statistics: interactions, average list length,
//	    wall clock, raw Gflops (§5)
//	E5  original-algorithm correction and effective Gflops, and the
//	    $X/Mflops headline (§5)
//
// The traversal runs for real at the requested scale (default the
// paper's full N = 2,159,038 via -grid 160 equivalent sphere, see
// -full; smaller by default) over both clustered and unclustered
// snapshots; host time uses the calibrated DS10 model and GRAPE time
// the g5 timing model; the run totals extrapolate per-step statistics
// to the paper's 999 steps.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	grape5 "repro"
	"repro/internal/core"
	"repro/internal/cosmo"
	"repro/internal/g5"
	"repro/internal/nbody"
	"repro/internal/perf"
	"repro/internal/snapio"
	"repro/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("perfreport: ")
	var (
		grid   = flag.Int("grid", 32, "IC grid per dimension for the measured traversal")
		full   = flag.Bool("full", false, "run the traversal at the paper's full N=2,159,038 (grid 160; needs ~2 GB and minutes)")
		in     = flag.String("in", "", "evolved snapshot to measure on (more faithful list lengths than fresh ICs)")
		theta  = flag.Float64("theta", 0.75, "opening parameter")
		ncrit  = flag.Int("ncrit", 2000, "group bound n_g (paper optimum)")
		seed   = flag.Uint64("seed", 1, "IC seed")
		epochs = flag.String("epochs", "", "comma-separated redshifts: measure a Zel'dovich realisation at each and average the per-step model over them (approximates the paper's run average), e.g. 24,9,4,1.5,0")
		faults = flag.Bool("faults", false, "append E9: degraded-mode offload with an injected board failure")
	)
	flag.Parse()

	cfg := g5.DefaultConfig()
	cost := perf.PaperCostModel()

	// ----- E1: peak speed accounting ---------------------------------
	fmt.Println("== E1: theoretical peak (paper §2) ==")
	fmt.Printf("pipelines: %d boards x %d chips x %d pipes = %d physical (x%d VMP = %d virtual/board)\n",
		cfg.Boards, cfg.ChipsPerBoard, cfg.PipesPerChip, cfg.PhysicalPipes(), cfg.VMP,
		cfg.VirtualPipesPerBoard())
	fmt.Printf("peak: %d pipes x %.0f MHz x %d ops = %.2f Gflops   (paper: 109.44)\n\n",
		cfg.PhysicalPipes(), cfg.ChipClockHz/1e6, cfg.OpsPerInteraction, cfg.PeakFlops()/1e9)

	// ----- E7: cost ---------------------------------------------------
	fmt.Println("== E7: system cost (paper §4) ==")
	fmt.Printf("%d boards x %.2f M JYE + host %.1f M JYE = %.1f M JYE\n",
		cost.Boards, cost.BoardJYE/1e6, cost.HostJYE/1e6, cost.TotalJYE()/1e6)
	fmt.Printf("at %.0f JYE/$: $%.0f   (paper: ~$40,900)\n\n", cost.YenPerDollar, cost.TotalDollars())

	// ----- E8: particle mass ------------------------------------------
	fmt.Println("== E8: particle mass (paper §5) ==")
	m := units.ParticleMass(units.OmegaM, units.LittleH, units.PaperRadiusMpc, units.PaperN)
	fmt.Printf("Omega=1, h=0.5, 50 Mpc sphere, N=%d: m = %.3g Msun   (paper: 1.7e10)\n\n",
		units.PaperN, m*1e10)

	// ----- measured traversal -----------------------------------------
	gridN, latticeN := *grid, 0
	if *full {
		// π/6 · 160³ ≈ 2.14e6 particles ≈ the paper's N, sampled from a
		// 128³ Fourier grid.
		gridN, latticeN = 128, 160
	}
	host := perf.DS10()

	measure := func(sys *nbody.System, label string) (perf.StepReport, int64) {
		t0 := time.Now()
		hw, err := g5.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		b := sys.Bounds().Cube()
		if err := hw.SetScale(b.Min.X-1, b.Max.X+1); err != nil {
			log.Fatal(err)
		}
		eng := perf.NewScheduleEngine(hw)
		tc := core.New(core.Options{Theta: *theta, Ncrit: *ncrit}, eng)
		st, err := tc.ComputeForces(sys.Clone())
		if err != nil {
			log.Fatal(err)
		}
		orig, err := core.New(core.Options{Theta: *theta}, nil).CountOriginal(sys.Clone())
		if err != nil {
			log.Fatal(err)
		}
		rep := perf.ModelStep(host, st, hw.Counters())
		fmt.Printf("%-22s groups=%-6d avgList=%-6.0f mod/orig=%.2fx  host %.2fs + pipe %.2fs + bus %.2fs = %.2fs  (measured in %v)\n",
			label, st.Groups, st.AvgList(), float64(st.Interactions)/float64(orig),
			rep.HostSeconds, rep.PipeSeconds, rep.BusSeconds, rep.TotalSeconds(),
			time.Since(t0).Round(time.Millisecond))
		return rep, orig
	}

	var rep perf.StepReport
	var orig int64
	var nMeasured int
	switch {
	case *in != "":
		_, sys, err := snapio.ReadFile(*in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== E4/E5: run statistics (snapshot %s, N=%d) ==\n", *in, sys.N())
		rep, orig = measure(sys, "snapshot")
		nMeasured = sys.N()
	case *epochs != "":
		zs := parseEpochs(*epochs)
		fmt.Printf("== E4/E5: run statistics averaged over Zel'dovich epochs z=%v (grid %d, lattice %d) ==\n",
			zs, gridN, latticeN)
		var sum perf.StepReport
		var sumOrig int64
		for _, z := range zs {
			sys := realizeAt(gridN, latticeN, z, *seed)
			nMeasured = sys.N()
			r, o := measure(sys, fmt.Sprintf("z=%-5.2g", z))
			sum.HostSeconds += r.HostSeconds
			sum.PipeSeconds += r.PipeSeconds
			sum.BusSeconds += r.BusSeconds
			sum.Interactions += r.Interactions
			sumOrig += o
		}
		k := float64(len(zs))
		rep = perf.StepReport{
			HostSeconds:  sum.HostSeconds / k,
			PipeSeconds:  sum.PipeSeconds / k,
			BusSeconds:   sum.BusSeconds / k,
			Interactions: int64(float64(sum.Interactions) / k),
		}
		orig = int64(float64(sumOrig) / k)
	default:
		sys := realizeAt(gridN, latticeN, units.PaperZInit, *seed)
		fmt.Printf("== E4/E5: run statistics (fresh z=24 ICs, grid %d, lattice %d, N=%d) ==\n",
			gridN, latticeN, sys.N())
		rep, orig = measure(sys, "z=24")
		nMeasured = sys.N()
	}

	fmt.Printf("\nper-step model: interactions=%.4g avg list=%.0f (paper run average: %.0f)\n",
		float64(rep.Interactions), float64(rep.Interactions)/float64(nMeasured),
		float64(units.PaperAvgListLength))
	fmt.Printf("modified/original operation ratio: %.2fx (paper: %.2fx)\n",
		float64(rep.Interactions)/float64(orig),
		units.PaperInteractions/units.PaperOriginalInteractions)

	run := perf.RunModel{
		Steps:             units.PaperSteps,
		PerStep:           rep,
		OriginalPerStep:   orig,
		OpsPerInteraction: cfg.OpsPerInteraction,
		Cost:              cost,
	}
	gb := run.GordonBell()
	fmt.Printf("\n== modelled %d-step run at this N ==\n", units.PaperSteps)
	fmt.Printf("wall clock: %.0f s (%.2f h)   paper: %.0f s (8.37 h at N=%d)\n",
		run.TotalSeconds(), run.TotalSeconds()/3600,
		float64(units.PaperWallClockSeconds), units.PaperN)
	fmt.Printf("total interactions: %.3g   paper: %.3g\n", gb.Interactions, float64(units.PaperInteractions))
	fmt.Printf("raw sustained:       %6.2f Gflops   paper: %.1f\n", gb.RawFlops()/1e9, float64(units.PaperRawGflops))
	fmt.Printf("effective sustained: %6.2f Gflops   paper: %.2f\n", gb.EffectiveFlops()/1e9, float64(units.PaperEffectiveGflops))
	fmt.Printf("price/performance:   $%5.1f/Mflops   paper: $%.1f/Mflops\n",
		gb.PricePerMflops(), float64(units.PaperPricePerMflops))

	// Paper cross-check from its own totals.
	fmt.Printf("\n== paper's own totals re-derived (arithmetic check) ==\n")
	fmt.Printf("%s\n", perf.PaperGordonBell().String())

	if *faults {
		reportDegraded(host, *theta, *seed)
	}
}

// reportDegraded is E9: drive the fault-tolerant offload path while one
// board dies mid-run, and show the timing-model degradation (pipe time
// roughly doubles when the 2-board system drops to 1) next to the
// guard's recovery counters.
func reportDegraded(host perf.HostModel, theta float64, seed uint64) {
	fmt.Printf("\n== E9: degraded-mode offload (board 2 dies mid-run) ==\n")
	sys := grape5.Plummer(4000, 1, 1, 1, seed)
	fCfg := g5.DefaultConfig()
	fCfg.Fault = &g5.FaultModel{Seed: 7, FailBoard: 2, FailAfterRuns: 200, FailSlot: 11}
	hw, err := g5.NewSystem(fCfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := hw.SetEps(0.02); err != nil {
		log.Fatal(err)
	}
	eng := g5.NewGuardedEngine(hw, 1, g5.GuardPolicy{})
	tc := core.New(core.Options{Theta: theta, Ncrit: 500, G: 1, Eps: 0.02}, eng)
	for step := 1; step <= 6; step++ {
		b := sys.Bounds().Cube()
		ext := b.MaxEdge()
		if err := hw.SetScale(b.Min.X-0.05*ext, b.Max.X+0.05*ext); err != nil {
			log.Fatal(err)
		}
		hw.ResetCounters()
		st, err := tc.ComputeForces(sys)
		if err != nil {
			log.Fatal(err)
		}
		rep := perf.ModelStepRecovery(host, st, hw.Counters(), eng.Recovery())
		fmt.Printf("step %d: boards=%d pipe=%.4gs bus=%.4gs  %s\n",
			step, hw.ActiveBoards(), rep.PipeSeconds, rep.BusSeconds, rep.Recovery)
	}
	fs := hw.FaultStats()
	fmt.Printf("injected faults: bitflips=%d stuck-pipe-calls=%d bus=%d transient=%d\n",
		fs.JMemBitFlips, fs.StuckPipeCalls, fs.BusErrors, fs.Transients)
}

// realizeAt generates a Zel'dovich realisation of the paper's sphere at
// redshift z (z=0 approximates the fully clustered state; intermediate
// z interpolate, standing in for run-average statistics the paper
// measured over the live evolution).
func realizeAt(gridN, latticeN int, z float64, seed uint64) *nbody.System {
	c := cosmo.SCDM()
	ps, err := cosmo.NewPowerSpectrum(c, 1, 0.67)
	if err != nil {
		log.Fatal(err)
	}
	r, err := cosmo.GenerateSphere(cosmo.ICParams{
		Power:     ps,
		GridN:     gridN,
		LatticeN:  latticeN,
		BoxMpc:    2 * units.PaperRadiusMpc,
		RadiusMpc: units.PaperRadiusMpc,
		ZInit:     z,
		Seed:      seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	return r.System
}

// parseEpochs parses a comma-separated redshift list.
func parseEpochs(s string) []float64 {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v < 0 {
			log.Fatalf("bad epoch %q", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		log.Fatal("empty epoch list")
	}
	return out
}
