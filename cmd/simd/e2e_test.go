package main

// Daemon-level end-to-end tests through os/exec: SIGKILL simd mid-job,
// restart it on the same data directory, and demand the revived job's
// final result be byte-for-byte the uninterrupted run's. This enforces
// the service's crash contract where unit tests cannot reach — real
// signals, real process death, real files.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	grape5 "repro"
	"repro/internal/ckpt"
	"repro/internal/serve"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// binPath builds the simd binary once per test run.
func binPath(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "simd-e2e-")
		if buildErr != nil {
			return
		}
		out, err := exec.Command("go", "build", "-o", filepath.Join(buildDir, "simd"), ".").CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("building simd: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return filepath.Join(buildDir, "simd")
}

func TestMain(m *testing.M) {
	code := m.Run()
	if buildDir != "" {
		os.RemoveAll(buildDir)
	}
	os.Exit(code)
}

// daemon is one running simd process.
type daemon struct {
	cmd *exec.Cmd
	url string
}

// startDaemon launches simd against dir and parses the bound address
// from its first stdout line.
func startDaemon(t *testing.T, dir string, extra ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-data", dir, "-ckpt-every", "2", "-max-running", "1"}, extra...)
	cmd := exec.Command(binPath(t), args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		_ = cmd.Process.Kill()
		t.Fatalf("simd produced no output (scan err %v)", sc.Err())
	}
	line := sc.Text()
	const marker = "listening on "
	if !strings.HasPrefix(line, marker) {
		_ = cmd.Process.Kill()
		t.Fatalf("unexpected first line %q", line)
	}
	// Keep draining stdout so the child never blocks on a full pipe.
	go func() {
		for sc.Scan() {
		}
	}()
	return &daemon{cmd: cmd, url: strings.TrimPrefix(line, marker)}
}

// submit posts a job and returns its id.
func (d *daemon) submit(t *testing.T, body string) string {
	t.Helper()
	resp, err := http.Post(d.url+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	var st serve.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	return st.ID
}

// status fetches one job's status.
func (d *daemon) status(t *testing.T, id string) serve.JobStatus {
	t.Helper()
	resp, err := http.Get(d.url + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitStep polls until the job has completed at least n steps.
func (d *daemon) waitStep(t *testing.T, id string, n int64, timeout time.Duration) serve.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := d.status(t, id)
		if st.Step >= n || st.State == serve.StateDone || st.State == serve.StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s at step %d (%s) after %v, want >= %d", id, st.Step, st.State, timeout, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitDone polls until the job is terminal.
func (d *daemon) waitDone(t *testing.T, id string, timeout time.Duration) serve.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := d.status(t, id)
		switch st.State {
		case serve.StateDone, serve.StateFailed, serve.StateCanceled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, st.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// result fetches a done job's result bytes.
func (d *daemon) result(t *testing.T, id string) []byte {
	t.Helper()
	resp, err := http.Get(d.url + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d, %v: %s", resp.StatusCode, err, data)
	}
	return data
}

// referenceResult runs the job spec uninterrupted through the
// Simulation API and marshals the final state the way the server does.
func referenceResult(t *testing.T, body string) []byte {
	t.Helper()
	spec, err := serve.DecodeJobRequest(strings.NewReader(body), serve.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := grape5.NewSimulation(spec.NewSystem(), spec.SimConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := sim.Close(); cerr != nil {
			t.Errorf("reference close: %v", cerr)
		}
	}()
	if err := sim.Prime(); err != nil {
		t.Fatal(err)
	}
	for sim.Steps() < spec.Steps {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	data, err := ckpt.Marshal(&ckpt.Checkpoint{State: sim.CheckpointState(), Sys: sim.Sys})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// jobBody is a host-engine run big enough that the kill lands mid-run
// on any machine, small enough for CI.
const jobBody = `{"tenant":"alice","model":"plummer","n":3000,"steps":40}`

// TestE2EKillResumeBitwise: SIGKILL the daemon mid-job; a restarted
// daemon must revive the job from its checkpoint and finish with the
// exact bytes of an uninterrupted run.
func TestE2EKillResumeBitwise(t *testing.T) {
	ref := referenceResult(t, jobBody)
	dir := t.TempDir()

	d := startDaemon(t, dir)
	id := d.submit(t, jobBody)
	st := d.waitStep(t, id, 10, 60*time.Second)
	if st.State == serve.StateDone {
		t.Fatal("job finished before the kill could land; grow the job")
	}
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Wait(); err == nil {
		t.Fatal("SIGKILLed daemon exited cleanly?")
	}

	d2 := startDaemon(t, dir)
	defer func() {
		_ = d2.cmd.Process.Kill()
		_ = d2.cmd.Wait()
	}()
	st = d2.waitDone(t, id, 120*time.Second)
	if st.State != serve.StateDone {
		t.Fatalf("revived job finished %s: %s", st.State, st.Error)
	}
	if st.ResumedFrom <= 0 {
		t.Errorf("resumed_from = %d, want a positive checkpoint step (did it restart from scratch?)", st.ResumedFrom)
	}
	if got := d2.result(t, id); !bytes.Equal(got, ref) {
		t.Errorf("post-crash result differs from uninterrupted run (%d vs %d bytes) — daemon resume is not bitwise deterministic",
			len(got), len(ref))
	}
}

// TestE2EGracefulDrainResume: SIGTERM must checkpoint the running job
// and exit 0; the restarted daemon completes it to the bitwise
// reference.
func TestE2EGracefulDrainResume(t *testing.T) {
	ref := referenceResult(t, jobBody)
	dir := t.TempDir()

	d := startDaemon(t, dir)
	id := d.submit(t, jobBody)
	st := d.waitStep(t, id, 5, 60*time.Second)
	if st.State == serve.StateDone {
		t.Fatal("job finished before the signal could land; grow the job")
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM drain did not exit 0: %v", err)
	}

	d2 := startDaemon(t, dir)
	defer func() {
		_ = d2.cmd.Process.Kill()
		_ = d2.cmd.Wait()
	}()
	st = d2.waitDone(t, id, 120*time.Second)
	if st.State != serve.StateDone {
		t.Fatalf("drained job finished %s: %s", st.State, st.Error)
	}
	if got := d2.result(t, id); !bytes.Equal(got, ref) {
		t.Error("post-drain result differs from uninterrupted run")
	}
}
