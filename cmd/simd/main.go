// Command simd is the multi-tenant simulation job daemon: it serves the
// internal/serve HTTP API, multiplexing concurrent treecode jobs onto a
// bounded board pool with per-tenant fair scheduling, and persists
// every job through the checkpoint layer so a killed daemon resumes
// in-flight work on restart, bitwise identical to an uninterrupted run.
//
// Shutdown contract: SIGINT/SIGTERM drains — running jobs checkpoint
// their exact state and the process exits 0; a SIGKILL loses nothing
// beyond the steps since each job's last periodic checkpoint.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
)

// parseWeights parses "a=2,b=1" into a tenant-weight map.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	m := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("weight %q: want tenant=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("weight %q: want a positive integer", part)
		}
		m[name] = w
	}
	return m, nil
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:0", "listen address (port 0 picks a free port)")
		data       = flag.String("data", "", "persistence directory (empty: in-memory, jobs do not survive restarts)")
		boards     = flag.Int("boards", 4, "board pool shared by running grape5 jobs")
		maxRunning = flag.Int("max-running", 2, "concurrently running jobs")
		maxN       = flag.Int("max-n", 100000, "largest admissible particle count")
		maxSteps   = flag.Int("max-steps", 10000, "largest admissible step count")
		queue      = flag.Int("queue", 8, "per-tenant queue bound")
		queueTotal = flag.Int("queue-total", 64, "total queue bound")
		ckptEvery  = flag.Int("ckpt-every", 25, "periodic checkpoint cadence in steps")
		retryAfter = flag.Duration("retry-after", time.Second, "backoff hint on 429 responses")
		weights    = flag.String("weights", "", "tenant scheduling weights, e.g. a=2,b=1")
		drainWait  = flag.Duration("drain-wait", 30*time.Second, "max wait for running jobs to checkpoint on shutdown")
	)
	flag.Parse()
	if err := run(*addr, *data, serve.Budget{
		MaxParticles:       *maxN,
		MaxSteps:           *maxSteps,
		MaxRunning:         *maxRunning,
		Boards:             *boards,
		MaxQueuedPerTenant: *queue,
		MaxQueueTotal:      *queueTotal,
		RetryAfter:         *retryAfter,
		CkptEvery:          *ckptEvery,
	}, *weights, *drainWait); err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}
}

func run(addr, data string, budget serve.Budget, weights string, drainWait time.Duration) error {
	tw, err := parseWeights(weights)
	if err != nil {
		return err
	}
	budget.TenantWeights = tw
	logger := log.New(os.Stderr, "simd: ", log.LstdFlags)
	srv, err := serve.NewServer(serve.Options{
		Budget:  budget,
		DataDir: data,
		Logf:    logger.Printf,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The supervisor (and the e2e harness) parses this line for the
	// bound address; keep it first and stable.
	fmt.Printf("listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	logger.Printf("draining: checkpointing running jobs")
	drainCtx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		logger.Printf("drain incomplete: %v", err)
	}
	if err := hs.Shutdown(drainCtx); err != nil {
		hs.Close()
	}
	fmt.Println("drained: state saved")
	return nil
}
