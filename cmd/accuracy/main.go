// Command accuracy reproduces the paper's §2 accuracy claims:
//
//   - the GRAPE-5 pipeline's pairwise force error is about 0.3 % RMS;
//   - the total force error of the treecode run on GRAPE-5 is ~0.1 %,
//     dominated by the tree approximation, not the hardware;
//   - results are "practically the same" when the same force
//     calculation uses standard 64-bit arithmetic.
//
// It prints pairwise pipeline error plus a θ table comparing the
// modified treecode on the float64 host engine and on the emulated
// hardware against exact direct summation.
//
//	accuracy -n 4000
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	grape5 "repro"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/g5"
	"repro/internal/nbody"
	"repro/internal/rng"
	"repro/internal/vec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("accuracy: ")
	var (
		n        = flag.Int("n", 4000, "particle count (Plummer sphere)")
		seed     = flag.Uint64("seed", 1, "model seed")
		eps      = flag.Float64("eps", 0.01, "softening")
		ncrit    = flag.Int("ncrit", 256, "group bound")
		pairs    = flag.Int("pairs", 20000, "pairwise error sample size")
		frontier = flag.Bool("frontier", false, "also print the modified-vs-original accuracy/cost frontier (experiment E9)")
	)
	flag.Parse()

	// --- Pairwise pipeline error (hardware arithmetic alone) ---------
	// Through the host-library call sequence (g5_open / g5_set_range /
	// g5_set_xmj / g5_calculate_force_on_x), not raw register access:
	// the j-particle is rewritten at address 0 each pair.
	drv, err := g5.Open(g5.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := drv.SetRange(-100, 100); err != nil {
		log.Fatal(err)
	}
	r := rng.New(*seed)
	var sum2 float64
	count := 0
	for k := 0; k < *pairs; k++ {
		pi := vec.V3{X: r.Uniform(-50, 50), Y: r.Uniform(-50, 50), Z: r.Uniform(-50, 50)}
		pj := vec.V3{X: r.Uniform(-50, 50), Y: r.Uniform(-50, 50), Z: r.Uniform(-50, 50)}
		m := math.Exp(r.Uniform(-3, 3))
		acc := make([]vec.V3, 1)
		pot := make([]float64, 1)
		if err := drv.SetXMJ(0, []vec.V3{pj}, []float64{m}); err != nil {
			log.Fatal(err)
		}
		if err := drv.CalculateForceOnX([]vec.V3{pi}, acc, pot); err != nil {
			log.Fatal(err)
		}
		d := pj.Sub(pi)
		r2 := d.Norm2()
		if r2 < 1e-4 {
			continue
		}
		exact := d.Scale(m / (r2 * math.Sqrt(r2)))
		rel := acc[0].Sub(exact).Norm() / exact.Norm()
		sum2 += rel * rel
		count++
	}
	if err := drv.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pairwise pipeline force error: %.3f%% RMS over %d pairs (paper §2: ~0.3%%)\n\n",
		100*math.Sqrt(sum2/float64(count)), count)

	// --- Total force error vs theta ----------------------------------
	model := grape5.Plummer(*n, 1, 1, 1, *seed)
	ref := model.Clone()
	nbody.DirectForces(ref, 1, *eps)

	fmt.Printf("total force error of the modified treecode (N=%d Plummer, ncrit=%d):\n", *n, *ncrit)
	fmt.Printf("%6s %28s %28s %8s\n", "theta", "float64 host (rms/p99)", "GRAPE-5 (rms/p99)", "hw adds")
	for _, theta := range []float64{0.3, 0.5, 0.75, 1.0, 1.25} {
		errHost := runTree(model, ref, theta, *ncrit, *eps, false)
		errG5 := runTree(model, ref, theta, *ncrit, *eps, true)
		fmt.Printf("%6.2f %15.4f%% /%8.4f%% %15.4f%% /%8.4f%% %7.2fx\n",
			theta, 100*errHost.RMS, 100*errHost.P99, 100*errG5.RMS, 100*errG5.P99,
			errG5.RMS/errHost.RMS)
	}
	fmt.Println("\npaper §2: total error ~0.1% 'dominated by the approximation made in the")
	fmt.Println("tree algorithm and not by the accuracy of the hardware'; the relative")
	fmt.Println("accuracy was 'practically the same' with 64-bit arithmetic.")

	if *frontier {
		fmt.Println("\naccuracy/cost frontier (E9; paper §3 with refs [15][17]):")
		thetas := []float64{1.4, 1.1, 0.9, 0.7, 0.55, 0.45}
		mod, err := analysis.AccuracyCostFrontier(model, analysis.FrontierModified, thetas, *ncrit, 1, *eps)
		if err != nil {
			log.Fatal(err)
		}
		orig, err := analysis.AccuracyCostFrontier(model, analysis.FrontierOriginal, thetas, *ncrit, 1, *eps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6s %24s %24s\n", "theta", "modified (rms @ ints)", "original (rms @ ints)")
		for i := range thetas {
			fmt.Printf("%6.2f %12.4f%% @ %.3g %12.4f%% @ %.3g\n",
				thetas[i], 100*mod[i].RMS, float64(mod[i].Interactions),
				100*orig[i].RMS, float64(orig[i].Interactions))
		}
		fmt.Println("\nthe modified algorithm is more accurate at every theta while doing")
		fmt.Println("more operations — both halves of the paper's §3 statement.")
	}
}

func runTree(model, ref *nbody.System, theta float64, ncrit int, eps float64, hw bool) analysis.ErrorStats {
	s := model.Clone()
	var engine core.Engine
	if hw {
		sys, err := g5.NewSystem(g5.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		b := s.Bounds().Cube()
		ext := b.MaxEdge()
		lo := math.Min(b.Min.X, math.Min(b.Min.Y, b.Min.Z)) - 0.05*ext
		hi := math.Max(b.Max.X, math.Max(b.Max.Y, b.Max.Z)) + 0.05*ext
		if err := sys.SetScale(lo, hi); err != nil {
			log.Fatal(err)
		}
		if err := sys.SetEps(eps); err != nil {
			log.Fatal(err)
		}
		engine = g5.NewEngine(sys, 1)
	}
	tc := core.New(core.Options{Theta: theta, Ncrit: ncrit, G: 1, Eps: eps}, engine)
	if _, err := tc.ComputeForces(s); err != nil {
		log.Fatal(err)
	}
	st, err := analysis.CompareForces(s, ref)
	if err != nil {
		log.Fatal(err)
	}
	return st
}
