// Command bench records the repo's performance trajectory: a
// deterministic sweep over group size n_g and particle count N that
// reproduces the paper's §3 time-balance table from live simulation
// steps and writes the structured result to BENCH_treecode.json.
//
// For each sweep point it runs a real simulation (modified treecode,
// emulated GRAPE-5 behind the fault-tolerant guard) for a few steps and
// averages the per-step telemetry: measured host phase spans (Morton
// sort, tree build, group walk, guard overhead), simulated GRAPE
// pipeline time t_grape and host-interface time t_comm. The measured
// traversal statistics are also priced on the calibrated DS10 host
// model so the measured optimum n_g can be compared with the analytic
// prediction of internal/perf — the two must agree within one sweep
// point, which the JSON validator enforces.
//
//	bench                          # full sweep, writes BENCH_treecode.json
//	bench -smoke -out /tmp/b.json  # tiny CI sweep (2 steps, small N)
//	bench -validate BENCH_treecode.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"

	grape5 "repro"
	"repro/internal/g5"
	"repro/internal/nbody"
	"repro/internal/obs"
	"repro/internal/perf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	var (
		out      = flag.String("out", "BENCH_treecode.json", "output JSON path")
		smoke    = flag.Bool("smoke", false, "tiny sweep for CI: 2 steps, small N, Plummer only")
		validate = flag.String("validate", "", "validate an existing bench JSON against the schema and exit")
		steps    = flag.Int("steps", 3, "measured simulation steps per sweep point")
		theta    = flag.Float64("theta", 0.75, "opening parameter")
		ncrit    = flag.String("ncrit", "125,250,500,1000,2000,4000", "comma-separated n_g sweep values")
		plumN    = flag.String("plummer-n", "4096", "comma-separated Plummer particle counts")
		grid     = flag.Int("cosmo-grid", 32, "cosmology IC grid per dimension (power of two; 0 disables the cosmo sweep)")
		seed     = flag.Uint64("seed", 1, "IC seed")
		guard    = flag.Bool("guard", true, "route force batches through the fault-tolerant offload path")
		boards   = flag.String("boards", "1", "comma-separated cluster shard counts K to sweep (K>1 drives the sharded multi-board engine; K=1 is always run first as the speedup reference)")
	)
	flag.Parse()

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			log.Fatal(err)
		}
		if err := obs.ValidateBench(data); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: valid (schema v%d)\n", *validate, obs.BenchSchemaVersion)
		return
	}

	label := "full"
	if *smoke {
		label = "smoke"
		*steps = 2
		*ncrit = "32,64,128,256"
		*plumN = "512"
		*grid = 0
	}
	ncrits := parseInts(*ncrit)
	plumNs := parseInts(*plumN)
	boardsList := parseInts(*boards)
	// The K=1 sweep is the speedup baseline; make sure it leads.
	if boardsList[0] != 1 {
		boardsList = append([]int{1}, boardsList...)
	}

	report := obs.BenchReport{
		SchemaVersion: obs.BenchSchemaVersion,
		Label:         label,
		HostModel:     perf.DS10().Name,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
	}

	// runFamily sweeps one IC family at every requested shard count,
	// computing the K>1 speedups against the family's K=1 sweep.
	runFamily := func(spec sweepSpec) {
		var ref *obs.BenchSweep
		for _, k := range boardsList {
			spec.shards = k
			sw, err := runSweep(spec, ncrits)
			if err != nil {
				log.Fatal(err)
			}
			if k == 1 {
				r := sw
				ref = &r
			} else {
				attachSpeedups(&sw, ref, k)
			}
			report.Sweeps = append(report.Sweeps, sw)
		}
	}

	for _, n := range plumNs {
		n := n
		runFamily(sweepSpec{
			model: "plummer",
			n:     n,
			seed:  *seed,
			theta: *theta,
			steps: *steps,
			guard: *guard,
			make: func() (*nbody.System, float64, float64, float64) {
				return grape5.Plummer(n, 1, 1, 1, *seed), 1, 0.02, 0.005
			},
		})
	}

	if *grid > 0 {
		cs, err := grape5.NewCosmoSphere(grape5.CosmoSphereParams{GridN: *grid, Seed: *seed}, 999)
		if err != nil {
			log.Fatal(err)
		}
		runFamily(sweepSpec{
			model: "cosmo",
			n:     cs.Sys.N(),
			seed:  *seed,
			theta: *theta,
			steps: *steps,
			guard: *guard,
			make: func() (*nbody.System, float64, float64, float64) {
				c, err := grape5.NewCosmoSphere(grape5.CosmoSphereParams{GridN: *grid, Seed: *seed}, 999)
				if err != nil {
					log.Fatal(err)
				}
				return c.Sys, grape5.G, c.GridSpacing * c.AInit, c.Schedule.DT()
			},
		})
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := obs.ValidateBench(data); err != nil {
		log.Fatalf("self-check failed: %v", err)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d sweeps, schema v%d)\n", *out, len(report.Sweeps), obs.BenchSchemaVersion)
}

// sweepSpec describes one n_g sweep: make returns fresh deterministic
// initial conditions plus the unit system (G, eps, dt) to run them in.
type sweepSpec struct {
	model  string
	n      int
	seed   uint64
	theta  float64
	steps  int
	guard  bool
	shards int // cluster shard count K; <=1 runs the single-system path
	make   func() (sys *nbody.System, g, eps, dt float64)
}

// runSweep measures every n_g point with live simulation steps, prints
// the time-balance table and computes the measured and analytic optima.
func runSweep(spec sweepSpec, ncrits []int) (obs.BenchSweep, error) {
	host := perf.DS10()
	sw := obs.BenchSweep{
		Model: spec.model, N: spec.n, Seed: spec.seed,
		Theta: spec.theta, Steps: spec.steps,
	}

	// Analytic §3 prediction over the initial snapshot.
	base, _, _, _ := spec.make()
	modelPts, err := perf.NgSweep(base, spec.theta, ncrits, host, g5.DefaultConfig())
	if err != nil {
		return sw, err
	}
	if spec.shards > 1 {
		sw.Boards = spec.shards
		// Sharding divides the hardware spans by K; the host side is
		// unchanged, so the analytic optimum shifts toward larger n_g.
		modelPts = perf.ClusterSweep(modelPts, spec.shards)
	}
	modelIdx := perf.OptimumIndex(modelPts)
	if modelIdx < 0 {
		return sw, fmt.Errorf("empty model sweep")
	}
	sw.ModelOptimalNcrit = modelPts[modelIdx].Ncrit

	fmt.Printf("== %s N=%d theta=%.2f boards=%d: %d measured steps per point ==\n",
		spec.model, spec.n, spec.theta, max(spec.shards, 1), spec.steps)
	fmt.Printf("%8s %8s %10s %12s %12s %10s %10s %12s\n",
		"n_g", "groups", "avg list", "t_host_wall", "t_host_model", "t_grape", "t_comm", "t_total_model")

	measuredIdx := -1
	for _, ng := range ncrits {
		p, err := measurePoint(spec, ng, host)
		if err != nil {
			return sw, err
		}
		fmt.Printf("%8d %8d %10.1f %11.4gs %11.4gs %9.4gs %9.4gs %11.4gs\n",
			p.Ncrit, p.Groups, p.AvgList, p.THostWall, p.THostModel,
			p.TGrape, p.TComm, p.TTotalModel)
		sw.Points = append(sw.Points, p)
		i := len(sw.Points) - 1
		if measuredIdx < 0 || p.TTotalModel < sw.Points[measuredIdx].TTotalModel {
			measuredIdx = i
		}
	}
	sw.MeasuredOptimalNcrit = sw.Points[measuredIdx].Ncrit
	apart := measuredIdx - modelIdx
	if apart < 0 {
		apart = -apart
	}
	sw.AgreeWithinOnePoint = apart <= 1
	fmt.Printf("optimal n_g: measured %d, analytic model %d (agree within one point: %v)\n\n",
		sw.MeasuredOptimalNcrit, sw.ModelOptimalNcrit, sw.AgreeWithinOnePoint)
	return sw, nil
}

// measurePoint runs one simulation at group bound ng for spec.steps
// steps and averages the per-step telemetry.
func measurePoint(spec sweepSpec, ng int, host perf.HostModel) (_ obs.BenchPoint, err error) {
	sys, g, eps, dt := spec.make()
	cfg := grape5.Config{
		Theta: spec.theta, Ncrit: ng, G: g, Eps: eps, DT: dt,
		Engine: grape5.EngineGRAPE5, Guard: spec.guard,
	}
	if spec.shards > 1 {
		cfg.Shards = spec.shards
	}
	sim, err := grape5.NewSimulation(sys, cfg)
	if err != nil {
		return obs.BenchPoint{}, err
	}
	// A Close failure means shard workers leaked mid-sweep; surface it
	// unless the measurement already failed for another reason.
	defer func() {
		if cerr := sim.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	// Prime outside the measurement: the paper's per-step numbers are
	// steady-state, not first-call.
	if err := sim.Prime(); err != nil {
		return obs.BenchPoint{}, err
	}

	p := obs.BenchPoint{Ncrit: ng}
	var interactions, hostModel float64
	for k := 0; k < spec.steps; k++ {
		if err := sim.Step(); err != nil {
			return obs.BenchPoint{}, err
		}
		r := sim.LastReport
		mod := perf.StepFromObs(host, &sim.LastStats, r)
		p.THostWall += r.THost
		p.TBuild += r.TBuild
		p.BytesAllocPerStep += float64(r.BytesAlloc)
		p.TGrape += r.TGrape
		p.TComm += r.TComm
		hostModel += mod.HostSeconds
		interactions += float64(r.Interactions)
		p.Phases.MortonSort += r.Phases.MortonSort
		p.Phases.TreeBuild += r.Phases.TreeBuild
		p.Phases.GroupWalk += r.Phases.GroupWalk
		p.Phases.ForceEval += r.Phases.ForceEval
		p.Phases.Guard += r.Phases.Guard
		p.Phases.JTransfer += r.Phases.JTransfer
		p.Phases.ITransfer += r.Phases.ITransfer
		p.Phases.Pipeline += r.Phases.Pipeline
		p.Phases.Readback += r.Phases.Readback
		p.Recoveries += r.Recoveries
	}
	k := float64(spec.steps)
	p.THostWall /= k
	p.TBuild /= k
	p.BytesAllocPerStep /= k
	p.TGrape /= k
	p.TComm /= k
	p.THostModel = hostModel / k
	p.TTotalModel = p.THostModel + p.TGrape + p.TComm
	p.Interactions = int64(interactions / k)
	p.AvgList = interactions / k / float64(sim.Sys.N())
	p.Groups = sim.LastStats.Groups
	scalePhases(&p.Phases, 1/k)
	// Overlap-aware step time: with double-buffered batches the group
	// walk streams against the (critical-path) hardware span; only the
	// sort and build are serial. Phases are per-step means here.
	p.TStepPipelined = p.Phases.MortonSort + p.Phases.TreeBuild +
		math.Max(p.Phases.GroupWalk+p.Phases.Guard, p.TGrape+p.TComm)
	return p, nil
}

// bestPipelined returns the sweep's minimum pipelined step time.
func bestPipelined(sw *obs.BenchSweep) float64 {
	best := math.Inf(1)
	for _, p := range sw.Points {
		if p.TStepPipelined > 0 && p.TStepPipelined < best {
			best = p.TStepPipelined
		}
	}
	return best
}

// attachSpeedups fills the K>1 sweep's speedup fields from the matching
// K=1 reference: measured is the ratio of the best pipelined step times;
// predicted prices the K=1 sweep's measured phases on the internal/perf
// K-board time-balance model.
func attachSpeedups(sw, ref *obs.BenchSweep, k int) {
	if ref == nil {
		return
	}
	t1 := bestPipelined(ref)
	tk := bestPipelined(sw)
	if t1 > 0 && tk > 0 && !math.IsInf(t1, 1) && !math.IsInf(tk, 1) {
		sw.MeasuredSpeedupVsK1 = t1 / tk
	}
	pred := math.Inf(1)
	for _, p := range ref.Points {
		b := perf.ClusterBalance{
			HostSerial: p.Phases.MortonSort + p.Phases.TreeBuild,
			HostWalk:   p.Phases.GroupWalk + p.Phases.Guard,
			Hardware:   p.TGrape + p.TComm,
		}
		if t := b.StepSeconds(k); t < pred {
			pred = t
		}
	}
	if t1 > 0 && pred > 0 && !math.IsInf(pred, 1) {
		sw.PredictedSpeedupVsK1 = t1 / pred
	}
	fmt.Printf("K=%d speedup vs K=1 (pipelined): measured %.2fx, model predicts %.2fx\n\n",
		k, sw.MeasuredSpeedupVsK1, sw.PredictedSpeedupVsK1)
}

// scalePhases multiplies every phase by f.
func scalePhases(ps *obs.PhaseSeconds, f float64) {
	ps.MortonSort *= f
	ps.TreeBuild *= f
	ps.GroupWalk *= f
	ps.ForceEval *= f
	ps.Guard *= f
	ps.JTransfer *= f
	ps.ITransfer *= f
	ps.Pipeline *= f
	ps.Readback *= f
}

// parseInts parses a comma-separated list of positive integers.
func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			log.Fatalf("bad integer %q", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		log.Fatal("empty list")
	}
	return out
}
