// Command snapstat analyses a snapshot: energy accounting, friends-of-
// friends halo catalogue, halo mass function, radial density profile
// and the two-point correlation function — the structure diagnostics
// behind the paper's Figure 4.
//
//	snapstat -in z0.g5
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/snapio"
	"repro/internal/units"
	"repro/internal/vec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("snapstat: ")
	var (
		in     = flag.String("in", "", "snapshot file (required)")
		g      = flag.Float64("G", units.G, "gravitational constant for energy accounting")
		eps    = flag.Float64("eps", 0, "softening for energy accounting (0 = header value)")
		link   = flag.Float64("b", 0.2, "FoF linking parameter")
		minN   = flag.Int("minmembers", 20, "minimum halo membership")
		nhalo  = flag.Int("halos", 10, "number of halos to list")
		xiBins = flag.Int("xibins", 8, "correlation-function bins (0 disables)")
		energy = flag.Bool("energy", true, "compute exact O(N^2) energy (slow for large N)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		log.Fatal("missing -in")
	}

	h, sys, err := snapio.ReadFile(*in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot %s: N=%d t=%.5g step=%d scale=%.4g\n", *in, sys.N(), h.Time, h.Step, h.Scale)
	sys.Recenter()

	if *energy {
		e := *eps
		if e == 0 {
			e = h.Eps
		}
		rep := analysis.Energy(sys, *g, e)
		fmt.Printf("energy: K=%.5g U=%.5g E=%.5g virial=%.3f\n",
			rep.Kinetic, rep.Potential, rep.Total(), rep.VirialRatio())
	}

	halos, err := analysis.FriendsOfFriends(sys, analysis.FOFOptions{
		LinkParam: *link, MinMembers: *minN,
	})
	if err != nil {
		log.Fatal(err)
	}
	var inHalos int
	for _, hh := range halos {
		inHalos += hh.N
	}
	fmt.Printf("\nFoF (b=%.2f, >=%d members): %d halos, %.1f%% of particles bound\n",
		*link, *minN, len(halos), 100*float64(inHalos)/float64(sys.N()))
	fmt.Printf("%4s %8s %12s %22s %8s\n", "#", "members", "mass", "centre", "R90")
	for i, hh := range halos {
		if i >= *nhalo {
			break
		}
		fmt.Printf("%4d %8d %12.4g (%6.2f,%6.2f,%6.2f) %8.3f\n",
			i+1, hh.N, hh.Mass, hh.Center.X, hh.Center.Y, hh.Center.Z, hh.R90)
	}

	if len(halos) > 0 {
		fmt.Println("\ncumulative halo mass function:")
		for _, b := range analysis.MassFunction(halos, 6) {
			fmt.Printf("  N(>%.3g) = %d\n", b.MinMass, b.Count)
		}

		// Density profile of the biggest halo.
		big := halos[0]
		if big.R90 > 0 {
			bins, err := analysis.DensityProfile(sys, big.Center, big.R90/30, big.R90, 8)
			if err == nil {
				fmt.Println("\ndensity profile of the largest halo:")
				for _, b := range bins {
					if b.Count > 0 {
						fmt.Printf("  rho(%8.3f) = %12.4g  (%d particles)\n", b.RMid, b.Density, b.Count)
					}
				}
			}
		}
	}

	if *xiBins > 0 {
		r90 := analysis.LagrangianRadius(sys, vec.Zero, 0.9)
		xi, err := analysis.CorrelationFunction(sys, vec.Zero, r90, r90/100, r90/2, *xiBins, 2_000_000, 17)
		if err == nil {
			fmt.Println("\ntwo-point correlation function:")
			for _, b := range xi {
				fmt.Printf("  xi(%8.3f) = %10.3f\n", b.RMid, b.Xi)
			}
		}

		// Measured power spectrum over the 90%-mass cube.
		box := vec.NewBox(
			vec.V3{X: -r90, Y: -r90, Z: -r90},
			vec.V3{X: r90, Y: r90, Z: r90})
		pk, err := analysis.MeasurePowerSpectrum(sys, box, 64, *xiBins)
		if err == nil {
			fmt.Println("\nmeasured power spectrum (shot-noise subtracted):")
			for _, b := range pk {
				fmt.Printf("  P(k=%7.3f) = %12.4g  (%d modes)\n", b.K, b.P, b.Modes)
			}
		}
	}
}
