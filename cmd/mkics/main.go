// Command mkics generates cosmological initial conditions — the
// COSMICS-substitute step of the pipeline — and writes them as a
// snapshot file for grape5sim and the analysis tools.
//
//	mkics -grid 32 -seed 1 -o ics.g5
package main

import (
	"flag"
	"fmt"
	"log"

	grape5 "repro"
	"repro/internal/snapio"
	"repro/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mkics: ")
	var (
		grid   = flag.Int("grid", 32, "grid size per dimension (power of two)")
		radius = flag.Float64("radius", units.PaperRadiusMpc, "comoving sphere radius in Mpc")
		zinit  = flag.Float64("zinit", units.PaperZInit, "starting redshift")
		sigma8 = flag.Float64("sigma8", 0.67, "sigma_8 normalisation")
		seed   = flag.Uint64("seed", 1, "realisation seed")
		out    = flag.String("o", "ics.g5", "output snapshot file")
	)
	flag.Parse()

	cs, err := grape5.NewCosmoSphere(grape5.CosmoSphereParams{
		GridN: *grid, RadiusMpc: *radius, ZInit: *zinit, Sigma8: *sigma8, Seed: *seed,
	}, 1)
	if err != nil {
		log.Fatal(err)
	}
	h := snapio.Header{Time: cs.Schedule.T0, Scale: cs.AInit}
	if err := snapio.WriteFile(*out, h, cs.Sys); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: N=%d particles at z=%.1f\n", *out, cs.Sys.N(), *zinit)
	fmt.Printf("particle mass %.4g x 1e10 Msun (paper: %.3g Msun at N=%d)\n",
		cs.ParticleMass, float64(units.PaperParticleMass), units.PaperN)
	fmt.Printf("comoving spacing %.3g Mpc, physical start radius %.3g Mpc\n",
		cs.GridSpacing, cs.AInit**radius)
}
