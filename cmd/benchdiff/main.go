// Command benchdiff is the repository's benchstat: it reads `go test
// -bench` output (stdin or a file), pairs each benchmark's old/new
// variant sub-benchmarks (BenchmarkX/scalar vs BenchmarkX/soa by
// default), and compares the timing samples with Welch's t-test.
//
// Exit status 1 means the gate failed: either a new variant is
// statistically significantly slower than its old counterpart, or a
// -require pattern was given and no matching pair reached the -factor
// speedup. Run benchmarks with -count=10 or so; a single sample per
// variant gives the t-test nothing to work with and is rejected.
//
//	go test -run '^$' -bench 'MACBatch|HostP2P' -count=10 ./internal/hostk \
//	    | go run ./cmd/benchdiff -require MACBatch -factor 1.3
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		oldName = flag.String("old", "scalar", "sub-benchmark name of the baseline variant")
		newName = flag.String("new", "soa", "sub-benchmark name of the candidate variant")
		alpha   = flag.Float64("alpha", 0.05, "two-sided significance level for the regression verdict")
		factor  = flag.Float64("factor", 0, "with -require: minimum speedup (old/new) at least one matching pair must reach")
		require = flag.String("require", "", "regexp of benchmark names; at least one match must reach -factor speedup")
		slack   = flag.Float64("slack", 0.03, "relative slowdown ignored even when statistically significant (timer noise floor)")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	samples, err := parse(in, *oldName, *newName)
	if err != nil {
		fatal(err)
	}
	pairs := pairUp(samples, *oldName, *newName)
	if len(pairs) == 0 {
		fatal(fmt.Errorf("no %s/%s benchmark pairs found in input", *oldName, *newName))
	}

	var reqRe *regexp.Regexp
	if *require != "" {
		reqRe, err = regexp.Compile(*require)
		if err != nil {
			fatal(err)
		}
	}

	fail := false
	reqMet := reqRe == nil
	fmt.Printf("%-28s %14s %14s %9s  %s\n", "benchmark", *oldName+" ns/op", *newName+" ns/op", "speedup", "verdict")
	for _, p := range pairs {
		om, os_ := meanStddev(p.old)
		nm, ns := meanStddev(p.new)
		speedup := om / nm
		sig := welchSignificant(p.old, p.new, *alpha)
		verdict := "~same"
		switch {
		case sig && nm > om*(1+*slack):
			verdict = "SLOWER (significant)"
			fail = true
		case sig && nm < om:
			verdict = "faster"
		}
		if reqRe != nil && reqRe.MatchString(p.name) && speedup >= *factor && (!sig || nm < om) {
			reqMet = true
		}
		fmt.Printf("%-28s %8.0f ±%4.0f %8.0f ±%4.0f %8.2fx  %s\n", p.name, om, os_, nm, ns, speedup, verdict)
	}
	if !reqMet {
		fmt.Fprintf(os.Stderr, "benchdiff: no benchmark matching %q reached the required %.2fx speedup\n", *require, *factor)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}

// benchLine matches one result line of `go test -bench` output:
//
//	BenchmarkMACBatch/scalar-4   9278   129609 ns/op   ...
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parse collects ns/op samples per full benchmark name, keeping only
// benchmarks whose terminal path element is one of the two variants.
func parse(r io.Reader, oldName, newName string) (map[string][]float64, error) {
	samples := map[string][]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		base, variant, ok := splitVariant(name)
		if !ok || (variant != oldName && variant != newName) {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op %q: %v", m[2], err)
		}
		samples[base+"/"+variant] = append(samples[base+"/"+variant], v)
	}
	return samples, sc.Err()
}

func splitVariant(name string) (base, variant string, ok bool) {
	i := strings.LastIndex(name, "/")
	if i < 0 {
		return "", "", false
	}
	return name[:i], name[i+1:], true
}

type pair struct {
	name     string
	old, new []float64
}

// pairUp joins variants into comparable pairs, sorted by name, and
// rejects single-sample runs (no variance, no test).
func pairUp(samples map[string][]float64, oldName, newName string) []pair {
	var pairs []pair
	for key, old := range samples {
		base, variant, _ := splitVariant(key)
		if variant != oldName {
			continue
		}
		neu, ok := samples[base+"/"+newName]
		if !ok {
			continue
		}
		if len(old) < 2 || len(neu) < 2 {
			fatal(fmt.Errorf("%s: need >=2 samples per variant (run with -count=10), got %d/%d", base, len(old), len(neu)))
		}
		pairs = append(pairs, pair{name: base, old: old, new: neu})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].name < pairs[j].name })
	return pairs
}

func meanStddev(xs []float64) (mean, stddev float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

// welchSignificant runs Welch's unequal-variance t-test and reports
// whether the means differ at the given two-sided level.
func welchSignificant(a, b []float64, alpha float64) bool {
	ma, sa := meanStddev(a)
	mb, sb := meanStddev(b)
	va := sa * sa / float64(len(a))
	vb := sb * sb / float64(len(b))
	if va+vb == 0 {
		return ma != mb // zero variance: any difference is exact
	}
	t := math.Abs(ma-mb) / math.Sqrt(va+vb)
	// Welch–Satterthwaite degrees of freedom.
	df := (va + vb) * (va + vb) /
		(va*va/float64(len(a)-1) + vb*vb/float64(len(b)-1))
	return t > tCritical(df, alpha)
}

// tCritical returns the two-sided critical value of Student's t. Only
// alpha=0.05 is tabulated; other levels fall back to the normal
// quantile, which is what the t distribution converges to anyway.
func tCritical(df, alpha float64) float64 {
	if alpha != 0.05 {
		return 1.96 * 0.05 / alpha // crude, monotone in alpha
	}
	table := []struct{ df, t float64 }{
		{1, 12.706}, {2, 4.303}, {3, 3.182}, {4, 2.776}, {5, 2.571},
		{6, 2.447}, {7, 2.365}, {8, 2.306}, {9, 2.262}, {10, 2.228},
		{12, 2.179}, {15, 2.131}, {20, 2.086}, {30, 2.042}, {60, 2.000},
	}
	for _, e := range table {
		if df <= e.df {
			return e.t
		}
	}
	return 1.96
}
