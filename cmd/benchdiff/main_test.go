package main

import (
	"math"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/hostk
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkMACBatch/scalar-1         	    9278	    129609 ns/op
BenchmarkMACBatch/scalar-1         	    9101	    131002 ns/op
BenchmarkMACBatch/soa-1            	   35172	     34122 ns/op
BenchmarkMACBatch/soa-1            	   34890	     34310 ns/op
BenchmarkHostP2P/scalar-1          	    1064	   1120843 ns/op	 913.60 MB/s
BenchmarkHostP2P/scalar-1          	    1070	   1118221 ns/op	 915.74 MB/s
BenchmarkHostP2P/soa-1             	    1066	   1121374 ns/op	 913.17 MB/s
BenchmarkHostP2P/soa-1             	    1061	   1126014 ns/op	 909.41 MB/s
BenchmarkUnpaired/scalar-1         	    1000	      1000 ns/op
PASS
`

func TestParseAndPair(t *testing.T) {
	samples, err := parse(strings.NewReader(sampleOutput), "scalar", "soa")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(samples["MACBatch/scalar"]); got != 2 {
		t.Errorf("MACBatch/scalar samples = %d, want 2", got)
	}
	if got := samples["MACBatch/soa"][0]; got != 34122 {
		t.Errorf("first soa sample = %v, want 34122", got)
	}
	pairs := pairUp(samples, "scalar", "soa")
	if len(pairs) != 2 {
		t.Fatalf("pairs = %d, want 2 (unpaired benchmark must drop)", len(pairs))
	}
	if pairs[0].name != "HostP2P" || pairs[1].name != "MACBatch" {
		t.Errorf("pair order = %s, %s (want name-sorted)", pairs[0].name, pairs[1].name)
	}
}

func TestMeanStddev(t *testing.T) {
	m, s := meanStddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 {
		t.Errorf("mean = %v, want 5", m)
	}
	if math.Abs(s-2.138) > 0.01 {
		t.Errorf("stddev = %v, want ~2.138", s)
	}
}

func TestWelchDetectsRealDifference(t *testing.T) {
	fast := []float64{100, 101, 99, 100, 102, 98, 100, 101, 99, 100}
	slow := []float64{130, 131, 129, 130, 132, 128, 130, 131, 129, 130}
	if !welchSignificant(fast, slow, 0.05) {
		t.Error("30% separation with tight variance not flagged significant")
	}
}

func TestWelchIgnoresNoise(t *testing.T) {
	a := []float64{100, 110, 90, 105, 95, 108, 92, 103, 97, 100}
	b := []float64{101, 109, 91, 106, 94, 107, 93, 104, 96, 99}
	if welchSignificant(a, b, 0.05) {
		t.Error("overlapping noisy samples flagged significant")
	}
}

func TestVariantSplit(t *testing.T) {
	base, variant, ok := splitVariant("GuardCheck/soa")
	if !ok || base != "GuardCheck" || variant != "soa" {
		t.Errorf("splitVariant = %q %q %v", base, variant, ok)
	}
	if _, _, ok := splitVariant("NoVariant"); ok {
		t.Error("name without variant must not split")
	}
}
