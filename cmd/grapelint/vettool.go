package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

// This file implements the modular analysis protocol `go vet -vettool`
// speaks (the unitchecker protocol): the go command invokes the tool
// once per package with a JSON config file naming the sources and the
// export data of every dependency, and expects
//
//   - `-V=full` to print an identifying line ending in buildID=... for
//     the build cache;
//   - `-flags` to print a JSON description of supported flags;
//   - an output facts file written to cfg.VetxOutput;
//   - findings on stderr and a non-zero exit when the package is dirty.

// vetConfig mirrors the fields of the go command's vet config file
// that grapelint consumes.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// printVersion answers `-V=full` in the format the go command's tool-ID
// probe parses: "<name> version <vers> buildID=<hex>", where the hash
// of the executable stands in for a real build ID.
func printVersion() {
	progname := filepath.Base(os.Args[0])
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		_, _ = io.Copy(h, f)
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", progname, h.Sum(nil))
}

// runVetUnit analyzes the single package unit described by the config
// file and returns the process exit code.
func runVetUnit(cfgPath string) int {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "grapelint: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	// The facts file must exist even when empty, or the go command
	// reports the tool as failed. Grapelint's analyzers need no
	// cross-package facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	// The go command also hands the tool test variants of each package
	// ("p [p.test]", "p_test"). Tests are exempt by policy (they
	// exercise hardware misuse and fault injection on purpose), and the
	// base unit already covers the production sources a variant
	// recompiles, so variants are skipped wholesale and test files are
	// filtered everywhere else — matching the standalone loader.
	if strings.Contains(cfg.ImportPath, " [") {
		return 0
	}
	var sources []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			sources = append(sources, f)
		}
	}
	if len(sources) == 0 {
		return 0
	}

	loader := lint.NewLoader(cfg.Dir)
	loader.Exports = func(path string) string {
		real := path
		if m, ok := cfg.ImportMap[path]; ok {
			real = m
		}
		return cfg.PackageFile[real]
	}
	files, err := loader.ParseFiles(cfg.Dir, sources)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	pkg, err := loader.Check(cfg.ImportPath, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diags, err := lint.Run([]*lint.Package{pkg}, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", loader.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
