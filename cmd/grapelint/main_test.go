package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// binPath is the grapelint binary built once in TestMain and shared by
// every exit-code test below.
var binPath string

func TestMain(m *testing.M) {
	if os.Getenv("GRAPELINT_SKIP_BUILD") == "" {
		dir, err := os.MkdirTemp("", "grapelint-test")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		binPath = filepath.Join(dir, "grapelint")
		build := exec.Command("go", "build", "-o", binPath, ".")
		if out, err := build.CombinedOutput(); err != nil {
			panic("building grapelint: " + err.Error() + "\n" + string(out))
		}
	}
	os.Exit(m.Run())
}

// runBin executes the shared binary and returns its exit code plus the
// combined output.
func runBin(t *testing.T, dir string, args ...string) (int, string) {
	t.Helper()
	if binPath == "" {
		t.Skip("binary build skipped via GRAPELINT_SKIP_BUILD")
	}
	cmd := exec.Command(binPath, args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	exit, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("grapelint %v did not run: %v\n%s", args, err, out)
	}
	return exit.ExitCode(), string(out)
}

// writeModule materializes a throwaway module for exit-code tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestExitCodeFindings: analyzer findings exit 1, distinct from load
// failures, so CI can tell "the code is wrong" from "the tool broke".
func TestExitCodeFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the built binary over a temp module; skipped in -short")
	}
	dir := writeModule(t, map[string]string{
		"go.mod": "module repro\n\ngo 1.24\n",
		// fpreduce is scoped to the physics/service packages, so the
		// fixture package must live at one of those import paths.
		"internal/pm/pm.go": `package pm

var total float64

func Add(xs []float64) {
	for _, x := range xs {
		total += x
	}
}
`,
	})
	code, out := runBin(t, dir, "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 for findings\n%s", code, out)
	}
	if !strings.Contains(out, "fpreduce") || !strings.Contains(out, "finding(s)") {
		t.Fatalf("findings output missing analyzer name or summary:\n%s", out)
	}
}

// TestExitCodeLoadError: a module that does not compile must exit 2 —
// a finding-shaped exit here would mask a broken build as a lint fail.
func TestExitCodeLoadError(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the built binary over a temp module; skipped in -short")
	}
	dir := writeModule(t, map[string]string{
		"go.mod":  "module repro\n\ngo 1.24\n",
		"main.go": "package main\n\nfunc main() { undefined() }\n",
	})
	code, out := runBin(t, dir, "./...")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 for a load error\n%s", code, out)
	}
}

// TestExitCodeClean: a module with nothing to report exits 0.
func TestExitCodeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the built binary over a temp module; skipped in -short")
	}
	dir := writeModule(t, map[string]string{
		"go.mod":  "module repro\n\ngo 1.24\n",
		"main.go": "package main\n\nfunc main() {}\n",
	})
	code, out := runBin(t, dir, "./...")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 for a clean module\n%s", code, out)
	}
}

// TestUnusedIgnoresFlag: a stale suppression is invisible by default
// and a finding under -unused-ignores.
func TestUnusedIgnoresFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the built binary over a temp module; skipped in -short")
	}
	dir := writeModule(t, map[string]string{
		"go.mod": "module repro\n\ngo 1.24\n",
		"internal/pm/pm.go": `package pm

//lint:ignore fpreduce stale: nothing on the next line accumulates
func Clean() int { return 0 }
`,
	})
	if code, out := runBin(t, dir, "./..."); code != 0 {
		t.Fatalf("default run: exit code = %d, want 0\n%s", code, out)
	}
	code, out := runBin(t, dir, "-unused-ignores", "./...")
	if code != 1 {
		t.Fatalf("-unused-ignores: exit code = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "unused-ignores") || !strings.Contains(out, "fpreduce") {
		t.Fatalf("stale-ignore output missing detail:\n%s", out)
	}
}

// TestListDescribesEveryAnalyzer: -list prints one row per analyzer
// with a non-empty doc column.
func TestListDescribesEveryAnalyzer(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the built binary; skipped in -short")
	}
	code, out := runBin(t, ".", "-list")
	if code != 0 {
		t.Fatalf("-list exit code = %d, want 0\n%s", code, out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 11 {
		t.Fatalf("-list printed %d rows, want 11:\n%s", len(lines), out)
	}
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Errorf("-list row without a doc column: %q", line)
		}
	}
	for _, name := range []string{"lockdiscipline", "goroutinejoin", "fpreduce", "wireschema", "hotalloc"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out)
		}
	}
}

// TestVetCfgParseError: a malformed vet .cfg (the go command's unit
// protocol) is an internal error, exit 2.
func TestVetCfgParseError(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the built binary; skipped in -short")
	}
	dir := t.TempDir()
	cfg := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfg, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out := runBin(t, dir, cfg)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 for a malformed .cfg\n%s", code, out)
	}
	if !strings.Contains(out, "parsing") {
		t.Fatalf("malformed .cfg error does not mention parsing:\n%s", out)
	}
}
