// Command grapelint is the repository's domain-invariant multichecker:
// it runs the internal/lint analyzer suite — the per-function checks
// (nondeterminism, g5contract, g5format, obsspan, errdiscipline,
// hostk) and the dataflow analyzers (lockdiscipline, goroutinejoin,
// fpreduce, wireschema, hotalloc) — over Go packages.
//
// Standalone:
//
//	grapelint ./...              # lint the module
//	grapelint -unused-ignores ./...  # also fail on stale //lint:ignore comments
//	grapelint -list              # describe the analyzers
//	grapelint -escapes           # compare the hot packages' compiler escape
//	                             # inventory (-gcflags=-m) against the baseline
//	grapelint -escapes -write    # rewrite the baseline
//
// Exit codes: 0 clean, 1 findings (or baseline drift), 2 load or
// internal error — so CI can distinguish "the code is wrong" from "the
// tool could not run".
//
// As a vet tool (one package per invocation, driven by the go command):
//
//	go build -o bin/grapelint ./cmd/grapelint
//	go vet -vettool=$PWD/bin/grapelint ./...
//
// Intentional violations are suppressed in place with
// `//lint:ignore <analyzer> <reason>`; see DESIGN.md §10 for the
// policy. The -unused-ignores mode keeps that honest: a suppression
// whose finding no longer fires is itself reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	listFlag := flag.Bool("list", false, "describe the analyzers and exit")
	versionFlag := flag.String("V", "", "print version (go vet tool protocol)")
	flagsFlag := flag.Bool("flags", false, "print flag description JSON (go vet tool protocol)")
	unusedFlag := flag.Bool("unused-ignores", false, "also report //lint:ignore comments that suppress nothing")
	escapesFlag := flag.Bool("escapes", false, "compare the hot packages' compiler escape inventory against the baseline")
	baselineFlag := flag.String("baseline", "internal/lint/escape_baseline.txt", "escape baseline file (with -escapes)")
	writeFlag := flag.Bool("write", false, "rewrite the escape baseline instead of comparing (with -escapes)")
	flag.Parse()

	switch {
	case *flagsFlag:
		fmt.Println("[]")
		return
	case *versionFlag != "":
		printVersion()
		return
	case *listFlag:
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	case *escapesFlag:
		os.Exit(runEscapes(*baselineFlag, *writeFlag))
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0]))
	}
	os.Exit(runStandalone(args, *unusedFlag))
}

// runStandalone lints the packages matching the patterns (default the
// whole module) and prints findings like a compiler would. With
// unusedIgnores, stale suppression comments are findings too.
func runStandalone(patterns []string, unusedIgnores bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := lint.NewLoader("")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diags, unused, err := lint.RunDetail(pkgs, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", loader.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	findings := len(diags)
	if unusedIgnores {
		for _, u := range unused {
			fmt.Fprintf(os.Stderr, "%s: unused-ignores: //lint:ignore %s suppresses nothing; delete it before it hides a regression\n", loader.Fset.Position(u.Pos), u.Analyzers)
		}
		findings += len(unused)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "grapelint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// runEscapes compares (or with write, records) the compiler's escape
// inventory for the hot packages against the committed baseline.
func runEscapes(baselinePath string, write bool) int {
	current, err := lint.EscapeInventory("", lint.HotEscapePatterns())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if write {
		if err := os.WriteFile(baselinePath, []byte(lint.FormatEscapes(current)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "grapelint: wrote %d escape entries to %s\n", len(current), baselinePath)
		return 0
	}
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	baseline, err := lint.ParseEscapeBaseline(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diffs := lint.DiffEscapes(current, baseline)
	for _, d := range diffs {
		fmt.Fprintf(os.Stderr, "grapelint -escapes: %s\n", d)
	}
	if len(diffs) > 0 {
		fmt.Fprintf(os.Stderr, "grapelint: escape inventory drifted from %s (%d difference(s))\n", baselinePath, len(diffs))
		return 1
	}
	return 0
}
