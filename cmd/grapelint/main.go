// Command grapelint is the repository's domain-invariant multichecker:
// it runs the internal/lint analyzer suite (nondeterminism,
// g5contract, g5format, obsspan, errdiscipline) over Go packages.
//
// Standalone:
//
//	grapelint ./...          # lint the module (exit 1 on findings)
//	grapelint -list          # describe the analyzers
//
// As a vet tool (one package per invocation, driven by the go command):
//
//	go build -o bin/grapelint ./cmd/grapelint
//	go vet -vettool=$PWD/bin/grapelint ./...
//
// Intentional violations are suppressed in place with
// `//lint:ignore <analyzer> <reason>`; see DESIGN.md §10 for the
// policy.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	listFlag := flag.Bool("list", false, "describe the analyzers and exit")
	versionFlag := flag.String("V", "", "print version (go vet tool protocol)")
	flagsFlag := flag.Bool("flags", false, "print flag description JSON (go vet tool protocol)")
	flag.Parse()

	switch {
	case *flagsFlag:
		fmt.Println("[]")
		return
	case *versionFlag != "":
		printVersion()
		return
	case *listFlag:
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0]))
	}
	os.Exit(runStandalone(args))
}

// runStandalone lints the packages matching the patterns (default the
// whole module) and prints findings like a compiler would.
func runStandalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := lint.NewLoader("")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diags, err := lint.Run(pkgs, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", loader.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "grapelint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
