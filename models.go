package grape5

import (
	"repro/internal/analysis"
	"repro/internal/cosmo"
	"repro/internal/integrate"
	"repro/internal/nbody"
	"repro/internal/rng"
	"repro/internal/units"
	"repro/internal/vec"
)

// Vec3 is the 3-vector type of positions, velocities and accelerations.
type Vec3 = vec.V3

// G is the gravitational constant of the internal unit system
// (lengths Mpc, velocities km/s, masses 1e10 Msun).
const G = units.G

// Plummer returns an n-particle Plummer sphere of total mass m and
// scale radius a in virial equilibrium (units with gravitational
// constant g), seeded deterministically.
func Plummer(n int, m, a, g float64, seed uint64) *System {
	return nbody.Plummer(n, m, a, g, rng.New(seed))
}

// UniformSphere returns n cold particles uniformly filling a sphere.
func UniformSphere(n int, m, r float64, seed uint64) *System {
	return nbody.UniformSphere(n, m, r, rng.New(seed))
}

// TwoBody returns a circular two-body orbit of separation d.
func TwoBody(m1, m2, d, g float64) *System {
	return nbody.TwoBody(m1, m2, d, g)
}

// Hernquist returns an n-particle Hernquist sphere (the standard
// bulge/halo profile) of mass m and scale radius a, near equilibrium.
func Hernquist(n int, m, a, g float64, seed uint64) *System {
	return nbody.Hernquist(n, m, a, g, rng.New(seed))
}

// ExponentialDisk returns a rotating thin exponential disk of mass m,
// scale length rd and scale height zd.
func ExponentialDisk(n int, m, rd, zd, g float64, seed uint64) *System {
	return nbody.ExponentialDisk(n, m, rd, zd, g, rng.New(seed))
}

// Halo is a friends-of-friends group found by FindHalos.
type Halo = analysis.Halo

// FindHalos runs the friends-of-friends halo finder with linking
// parameter b (0 = standard 0.2) and the given minimum membership
// (0 = 10). Halos are returned largest first.
func FindHalos(s *System, b float64, minMembers int) ([]Halo, error) {
	return analysis.FriendsOfFriends(s, analysis.FOFOptions{
		LinkParam: b, MinMembers: minMembers,
	})
}

// Merge combines two systems with position/velocity offsets applied to
// the second — the collision setup.
func Merge(a, b *System, dPos, dVel Vec3) *System {
	return nbody.Merge(a, b, dPos, dVel)
}

// CosmoSphereParams configure a paper-style cosmological realisation:
// a sphere of comoving radius RadiusMpc cut from a standard-CDM
// Zel'dovich realisation at redshift ZInit.
type CosmoSphereParams struct {
	// GridN is the IC grid resolution per dimension (power of two).
	// The sphere keeps ~π/6·GridN³ particles.
	GridN int
	// LatticeN optionally decouples the particle lattice from the
	// Fourier grid (0 = GridN). The paper's N = 2,159,038 corresponds
	// to LatticeN = 160 (not a power of two) with GridN = 128.
	LatticeN int
	// RadiusMpc is the comoving selection radius (paper: 50).
	RadiusMpc float64
	// ZInit is the starting redshift (paper: 24).
	ZInit float64
	// Sigma8 normalises the power spectrum (0 = 0.67).
	Sigma8 float64
	// Seed selects the realisation.
	Seed uint64
}

// CosmoSphere holds a generated cosmological initial condition and its
// integration schedule.
type CosmoSphere struct {
	// Sys is the particle system in physical coordinates at ZInit.
	Sys *System
	// Schedule spans cosmic time from ZInit to z=0.
	Schedule integrate.Schedule
	// ParticleMass is the per-particle mass (1e10 Msun).
	ParticleMass float64
	// GridSpacing is the comoving inter-particle spacing (Mpc).
	GridSpacing float64
	// AInit is the starting scale factor.
	AInit float64
}

// NewCosmoSphere generates the paper's initial-condition class with the
// SCDM cosmology (Ω=1, h=0.5). steps is the number of equal timesteps
// to z=0 (the paper used 999).
func NewCosmoSphere(p CosmoSphereParams, steps int) (*CosmoSphere, error) {
	if p.RadiusMpc == 0 {
		p.RadiusMpc = units.PaperRadiusMpc
	}
	if p.ZInit == 0 {
		p.ZInit = units.PaperZInit
	}
	if p.Sigma8 == 0 {
		p.Sigma8 = 0.67
	}
	c := cosmo.SCDM()
	ps, err := cosmo.NewPowerSpectrum(c, 1, p.Sigma8)
	if err != nil {
		return nil, err
	}
	real, err := cosmo.GenerateSphere(cosmo.ICParams{
		Power:     ps,
		GridN:     p.GridN,
		LatticeN:  p.LatticeN,
		BoxMpc:    2 * p.RadiusMpc,
		RadiusMpc: p.RadiusMpc,
		ZInit:     p.ZInit,
		Seed:      p.Seed,
	})
	if err != nil {
		return nil, err
	}
	sched := integrate.Schedule{
		T0:    c.Age(real.AInit),
		T1:    c.Age(1),
		Steps: steps,
	}
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	return &CosmoSphere{
		Sys:          real.System,
		Schedule:     sched,
		ParticleMass: real.ParticleMass,
		GridSpacing:  real.GridSpacing,
		AInit:        real.AInit,
	}, nil
}
