package grape5

import (
	"math"
	"testing"
)

// TestSimulationClusterMatchesSingle: a Shards=2 simulation must evolve
// bitwise the same trajectory as the single guarded system — the
// cluster shards along the i-axis only, so no reduction order changes
// and the integrator sees identical forces every step.
func TestSimulationClusterMatchesSingle(t *testing.T) {
	mk := func(shards int) *Simulation {
		s := Plummer(256, 1, 1, 1, 9)
		sim, err := NewSimulation(s, Config{
			Theta: 0.6, Ncrit: 64, G: 1, Eps: 0.05, DT: 0.005,
			Engine: EngineGRAPE5, Guard: true, Shards: shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	single, clustered := mk(0), mk(2)
	defer single.Close()
	defer clustered.Close()
	for _, sim := range []*Simulation{single, clustered} {
		if err := sim.Prime(); err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(3); err != nil {
			t.Fatal(err)
		}
	}
	if cl := clustered.Cluster(); cl == nil || cl.Shards() != 2 {
		t.Fatal("Shards=2 simulation did not build a 2-shard cluster")
	}
	if single.Cluster() != nil {
		t.Error("single-system simulation reports a cluster")
	}
	for i := 0; i < single.Sys.N(); i++ {
		if single.Sys.Pos[i] != clustered.Sys.Pos[i] || single.Sys.Vel[i] != clustered.Sys.Vel[i] {
			t.Fatalf("particle %d diverged after 3 steps: pos %v vs %v",
				i, single.Sys.Pos[i], clustered.Sys.Pos[i])
		}
	}
}

// TestSimulationClusterTelemetry: a clustered run must report aggregate
// hardware counters, summed recovery activity and a critical-path
// hardware time strictly shorter than the aggregate (two boards really
// ran concurrently), and survive a double Close.
func TestSimulationClusterTelemetry(t *testing.T) {
	s := Plummer(512, 1, 1, 1, 5)
	sim, err := NewSimulation(s, Config{
		Theta: 0.6, Ncrit: 256, G: 1, Eps: 0.05, DT: 0.005,
		Engine: EngineGRAPE5, Guard: true, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if err := sim.Prime(); err != nil {
		t.Fatal(err)
	}
	e0 := sim.Energy().Total()
	if err := sim.Run(10); err != nil {
		t.Fatal(err)
	}
	e1 := sim.Energy().Total()
	if rel := math.Abs(e1-e0) / math.Abs(e0); rel > 0.02 {
		t.Errorf("clustered GRAPE energy drift = %v", rel)
	}

	cl := sim.Cluster()
	c := sim.HardwareCounters()
	if c.Interactions == 0 || c.Runs == 0 {
		t.Errorf("cluster hardware idle: %+v", c)
	}
	loads := cl.ShardInteractions()
	var sum int64
	for _, l := range loads {
		sum += l
	}
	if sum == 0 || loads[0] == 0 || loads[1] == 0 {
		t.Errorf("shard loads %v: a board sat idle for the whole run", loads)
	}
	crit, agg := cl.CriticalHWSeconds(), c.HWSeconds()
	if !(crit > 0) || !(crit < agg) {
		t.Errorf("critical-path hw time %v not in (0, aggregate %v)", crit, agg)
	}
	rec := sim.Recovery()
	if rec.Checks == 0 {
		t.Errorf("clustered run recorded no acceptance checks: %v", rec)
	}
	if err := sim.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := sim.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
