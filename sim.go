package grape5

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/g5"
	"repro/internal/integrate"
	"repro/internal/nbody"
	"repro/internal/obs"
	"repro/internal/pm"
	"repro/internal/units"
)

// StepReport is the structured per-step telemetry (phase spans, work
// counters, recovery events) emitted by Simulation.Step.
type StepReport = obs.StepReport

// System is the particle container (structure-of-arrays positions,
// velocities, masses, stable IDs).
type System = nbody.System

// Stats reports the treecode work of one force evaluation.
type Stats = core.Stats

// EngineKind selects the force pipeline.
type EngineKind int

const (
	// EngineHost computes forces in float64 on the host — the paper's
	// "general purpose computer" baseline.
	EngineHost EngineKind = iota
	// EngineGRAPE5 offloads force evaluation to the emulated GRAPE-5.
	EngineGRAPE5
	// EnginePM replaces the treecode entirely with the particle-mesh
	// solver (isolated boundaries) — the classical fast baseline
	// algorithm. Theta/Ncrit are ignored; PMGrid sets the mesh. The
	// solver box tracks the system bounds each step, which adds
	// mesh-scale force noise on expanding systems; EnginePM is meant
	// for force comparisons and quick looks, not production cosmology.
	EnginePM
)

// Config describes a simulation.
type Config struct {
	// Theta is the Barnes-Hut opening parameter (default 0.75).
	Theta float64
	// Ncrit is the group-size bound of the modified tree algorithm
	// (the paper's n_g; default 2000).
	Ncrit int
	// LeafCap is the octree leaf capacity (default 8).
	LeafCap int
	// G is the gravitational constant (default units.G, the
	// Mpc/(km/s)/1e10-Msun system; set 1 for model-unit problems).
	G float64
	// Eps is the Plummer softening length.
	Eps float64
	// DT is the integration timestep.
	DT float64
	// Engine selects host or GRAPE-5 force evaluation.
	Engine EngineKind
	// GRAPE configures the hardware when Engine is EngineGRAPE5; the
	// zero value means g5.DefaultConfig (the paper's 2-board system).
	// Set GRAPE.Fault to inject deterministic hardware faults.
	GRAPE g5.Config
	// Guard routes EngineGRAPE5 force batches through the
	// fault-tolerant offload path (acceptance checks, retries, board
	// exclusion, host fallback) instead of the panic-on-error engine.
	Guard bool
	// GuardPolicy tunes the guard; the zero value selects defaults.
	GuardPolicy g5.GuardPolicy
	// Shards, when greater than 1, drives K independent GRAPE systems
	// through the sharded cluster engine (g5.Cluster): group force
	// batches are split across the boards and double-buffered so the
	// host walk overlaps the hardware drain. Each shard is always
	// guarded (Guard is implied; GuardPolicy applies per shard).
	// 0 or 1 selects the single-system path.
	Shards int
	// PMGrid is the particle-mesh size per dimension for EnginePM
	// (default 64; power of two).
	PMGrid int
	// RebuildEvery enables tree reuse: full rebuild every n-th force
	// call with centre-of-mass refreshes in between (0/1 = rebuild
	// always, the paper's mode).
	RebuildEvery int
	// Workers bounds traversal parallelism (0 = GOMAXPROCS).
	Workers int

	// Blocks, when greater than 0, selects hierarchical block-timestep
	// integration with Blocks power-of-two rung levels: particle rungs
	// k ∈ [0, Blocks-1] advance with dt = DTMin·2^k, and one Step spans
	// the full block DTMin·2^(Blocks-1). DT, if set, must equal that
	// span (unset inherits it). Blocks == 1 degenerates to the global
	// leapfrog at DT = DTMin, bitwise. Mutually exclusive with Adaptive
	// and EnginePM.
	Blocks int
	// DTMin is the finest block timestep (required when Blocks > 0).
	DTMin float64
	// Eta is the timestep accuracy parameter of the rung criterion
	// (Blocks > 0) or the shared adaptive criterion (Adaptive); default
	// 0.2.
	Eta float64
	// Adaptive selects the shared adaptive timestep integrator: every
	// step uses dt = Eta·sqrt(Eps/|a|_max) clamped to [DTMin, DT]. DT
	// acts as the ceiling, DTMin (optional) as the floor.
	Adaptive bool
	// ActiveRebuildFrac tunes the block-timestep tree rebuild policy:
	// substeps whose active fraction reaches it rebuild, below it the
	// cached tree is refreshed (default 0.5).
	ActiveRebuildFrac float64
}

// Simulation couples a System to the treecode, a force engine and a
// leapfrog integrator.
type Simulation struct {
	// Sys is the particle system (reordered into tree order by every
	// force evaluation; identity is in Sys.ID).
	Sys *System

	cfg     Config
	tc      *core.Treecode
	hw      *g5.System                  // nil for host engine and cluster runs
	guard   *g5.GuardedEngine           // nil unless Config.Guard
	cluster *g5.Cluster                 // nil unless Config.Shards > 1
	lf      *integrate.Leapfrog         // fixed-dt mode
	bl      *integrate.BlockLeapfrog    // Config.Blocks > 0
	al      *integrate.AdaptiveLeapfrog // Config.Adaptive
	ob      *obs.Observer
	time    float64
	nsteps  int
	aux     RunAux

	// base* hold the whole-run counters restored from a checkpoint; a
	// fresh process starts its live hardware counters at zero, so the
	// public accessors report base + live to keep run totals continuous
	// across restarts.
	baseCounters g5.Counters
	baseRecovery g5.Recovery
	baseFaults   g5.FaultStats

	// LastStats is the treecode statistics of the most recent force
	// evaluation.
	LastStats Stats
	// LastReport is the telemetry of the most recent Step (or Prime):
	// the paper's time-balance decomposition of the step — host tree
	// phases measured on this machine, GRAPE pipeline and transfer
	// phases in simulated hardware seconds — plus activity counters.
	LastReport StepReport
	// TotalInteractions accumulates pairwise interactions over the run.
	TotalInteractions int64
}

// NewSimulation builds a simulation over sys. sys is used in place (not
// copied).
func NewSimulation(sys *System, cfg Config) (*Simulation, error) {
	if sys == nil || sys.N() == 0 {
		return nil, fmt.Errorf("grape5: empty system")
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if cfg.Blocks > 0 {
		if cfg.Adaptive {
			return nil, fmt.Errorf("grape5: Blocks and Adaptive are mutually exclusive")
		}
		if cfg.Engine == EnginePM {
			return nil, fmt.Errorf("grape5: block timesteps are not supported with the PM engine")
		}
		if cfg.DTMin <= 0 {
			return nil, fmt.Errorf("grape5: block timesteps need DTMin > 0, got %v", cfg.DTMin)
		}
		if cfg.Blocks > 31 {
			return nil, fmt.Errorf("grape5: at most 31 rung levels, got %d", cfg.Blocks)
		}
		span := cfg.DTMin * float64(int64(1)<<uint(cfg.Blocks-1))
		if cfg.DT == 0 {
			cfg.DT = span
		} else if cfg.DT != span {
			return nil, fmt.Errorf("grape5: DT %v conflicts with block span DTMin·2^(Blocks-1) = %v; leave DT unset to inherit it", cfg.DT, span)
		}
	}
	if cfg.DT <= 0 {
		return nil, fmt.Errorf("grape5: timestep must be positive, got %v", cfg.DT)
	}
	if cfg.G == 0 {
		cfg.G = units.G
	}

	sim := &Simulation{Sys: sys, cfg: cfg, ob: obs.NewObserver()}
	opt := core.Options{
		Theta:             cfg.Theta,
		Ncrit:             cfg.Ncrit,
		LeafCap:           cfg.LeafCap,
		G:                 cfg.G,
		Eps:               cfg.Eps,
		Workers:           cfg.Workers,
		RebuildEvery:      cfg.RebuildEvery,
		ActiveRebuildFrac: cfg.ActiveRebuildFrac,
		Obs:               sim.ob,
	}

	var engine core.Engine
	switch cfg.Engine {
	case EngineHost:
		engine = &core.HostEngine{G: cfg.G, Eps: cfg.Eps}
	case EngineGRAPE5:
		hwCfg := cfg.GRAPE
		if hwCfg.Boards == 0 {
			hwCfg = g5.DefaultConfig()
		}
		if cfg.Shards > 1 {
			cl, err := g5.NewCluster(g5.ClusterConfig{
				Shards: cfg.Shards, Board: hwCfg,
				G: cfg.G, Guard: cfg.GuardPolicy,
			})
			if err != nil {
				return nil, err
			}
			if err := cl.SetEps(cfg.Eps); err != nil {
				return nil, errors.Join(err, cl.Close())
			}
			cl.SetObserver(sim.ob)
			sim.cluster = cl
			engine = cl
			break
		}
		hw, err := g5.NewSystem(hwCfg)
		if err != nil {
			return nil, err
		}
		if err := hw.SetEps(cfg.Eps); err != nil {
			return nil, err
		}
		hw.SetObserver(sim.ob)
		sim.hw = hw
		if cfg.Guard {
			sim.guard = g5.NewGuardedEngine(hw, cfg.G, cfg.GuardPolicy)
			sim.guard.SetObserver(sim.ob)
			engine = sim.guard
		} else {
			engine = g5.NewEngine(hw, cfg.G)
		}
	case EnginePM:
		if cfg.PMGrid == 0 {
			cfg.PMGrid = 64
		}
		sim.cfg = cfg
		// Solver is rebuilt per force call on the current bounds (the
		// sphere expands ~25x over a cosmological run).
	default:
		return nil, fmt.Errorf("grape5: unknown engine kind %d", cfg.Engine)
	}
	if cfg.Engine != EnginePM {
		sim.tc = core.New(opt, engine)
	}

	forceFn := sim.force
	if cfg.Engine == EnginePM {
		forceFn = sim.forcePM
	}
	switch {
	case cfg.Blocks > 0:
		bl, err := integrate.NewBlockLeapfrog(integrate.RungCriterion{
			Eta: cfg.Eta, Eps: cfg.Eps, DTMin: cfg.DTMin, MaxRung: cfg.Blocks - 1,
		}, forceFn, sim.forceActive)
		if err != nil {
			return nil, err
		}
		bl.Workers = cfg.Workers
		sim.bl = bl
	case cfg.Adaptive:
		sim.al = &integrate.AdaptiveLeapfrog{
			Criterion: integrate.TimestepCriterion{
				Eta: cfg.Eta, Eps: cfg.Eps, MaxDT: cfg.DT, MinDT: cfg.DTMin,
			},
			Force: forceFn,
		}
	default:
		lf, err := integrate.NewLeapfrog(cfg.DT, forceFn)
		if err != nil {
			return nil, err
		}
		sim.lf = lf
	}
	return sim, nil
}

// forcePM is the ForceFunc for the particle-mesh engine.
func (sim *Simulation) forcePM(s *System) error {
	cube := s.Bounds().Cube()
	ext := cube.MaxEdge()
	if ext == 0 {
		ext = 1
	}
	grow := 0.05 * ext
	box := cube
	box.Min = box.Min.Sub(Vec3{X: grow, Y: grow, Z: grow})
	box.Max = box.Max.Add(Vec3{X: grow, Y: grow, Z: grow})
	solver, err := pm.NewSolver(sim.cfg.PMGrid, box, sim.cfg.G)
	if err != nil {
		return err
	}
	if err := solver.Forces(s); err != nil {
		return err
	}
	sim.LastStats = Stats{N: s.N()}
	return nil
}

// setScaleWindow re-ranges the hardware fixed-point window to the
// current particle bounds, exactly like the real GRAPE library: the
// sphere expands by ~25x over the headline run. No-op for host engines.
func (sim *Simulation) setScaleWindow(s *System) error {
	if sim.hw == nil && sim.cluster == nil {
		return nil
	}
	cube := s.Bounds().Cube()
	ext := cube.MaxEdge()
	if ext == 0 {
		ext = 1
	}
	// Margin for the drift within the step.
	lo := min3(cube.Min.X-0.05*ext, cube.Min.Y-0.05*ext, cube.Min.Z-0.05*ext)
	hi := max3(cube.Max.X+0.05*ext, cube.Max.Y+0.05*ext, cube.Max.Z+0.05*ext)
	if sim.cluster != nil {
		return sim.cluster.SetScale(lo, hi)
	}
	return sim.hw.SetScale(lo, hi)
}

// force is the integrator's ForceFunc: rescale the hardware if present,
// run the grouped treecode, record statistics.
func (sim *Simulation) force(s *System) error {
	if err := sim.setScaleWindow(s); err != nil {
		return err
	}
	st, err := sim.tc.ComputeForces(s)
	if err != nil {
		return err
	}
	sim.LastStats = *st
	sim.TotalInteractions += st.Interactions
	return nil
}

// forceActive is the block integrator's substep ForceFunc: identical
// hardware windowing, but only the masked closing set is dispatched.
func (sim *Simulation) forceActive(s *System, activeByID []bool, nActive int) error {
	if err := sim.setScaleWindow(s); err != nil {
		return err
	}
	st, err := sim.tc.ComputeForcesActive(s, activeByID, nActive)
	if err != nil {
		return err
	}
	sim.LastStats = *st
	sim.TotalInteractions += st.Interactions
	return nil
}

func min3(a, b, c float64) float64 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

func max3(a, b, c float64) float64 {
	m := a
	if b > m {
		m = b
	}
	if c > m {
		m = c
	}
	return m
}

// Prime computes initial forces (optional; Step does it on first call).
// The priming force call emits its own telemetry as step 0.
func (sim *Simulation) Prime() error {
	sim.ob.Reset()
	a0 := obs.HeapAllocBytes()
	t0 := time.Now()
	var err error
	switch {
	case sim.bl != nil:
		err = sim.bl.Prime(sim.Sys)
	case sim.al != nil:
		err = sim.al.Prime(sim.Sys)
	default:
		err = sim.lf.Prime(sim.Sys)
	}
	if err != nil {
		return err
	}
	wall := time.Since(t0)
	alloc := int64(obs.HeapAllocBytes() - a0)
	sim.LastReport = sim.finishReport(0, wall)
	sim.LastReport.BytesAlloc = alloc
	return nil
}

// finishReport snapshots the observer and fills the derived block
// activity fraction (the observer itself does not know N).
func (sim *Simulation) finishReport(step int, wall time.Duration) StepReport {
	r := sim.ob.Snapshot(step, wall)
	if r.Substeps > 0 && sim.Sys.N() > 0 {
		r.ActiveFrac = float64(r.ActiveI) / (float64(sim.Sys.N()) * float64(r.Substeps))
	}
	return r
}

// Step advances one step — a single leapfrog kick-drift-kick for the
// fixed and adaptive integrators, or one full block of substeps
// (simulation time += DTMin·2^(Blocks-1)) for block timesteps — and
// snapshots the step's telemetry into LastReport, including the bytes
// of heap allocated during the step (near zero in steady state: the
// tree builder, walk workers and engines all run on reused arenas). A
// first Step without a prior Prime folds the priming force call into
// its report.
func (sim *Simulation) Step() error {
	sim.ob.Reset()
	a0 := obs.HeapAllocBytes()
	t0 := time.Now()
	advance := sim.cfg.DT
	switch {
	case sim.bl != nil:
		if err := sim.bl.Step(sim.Sys); err != nil {
			return err
		}
	case sim.al != nil:
		dt, err := sim.al.Step(sim.Sys)
		if err != nil {
			return err
		}
		advance = dt
	default:
		if err := sim.lf.Step(sim.Sys); err != nil {
			return err
		}
	}
	wall := time.Since(t0)
	alloc := int64(obs.HeapAllocBytes() - a0)
	sim.time += advance
	sim.nsteps++
	sim.LastReport = sim.finishReport(sim.nsteps, wall)
	sim.LastReport.BytesAlloc = alloc
	return nil
}

// Run advances n steps.
func (sim *Simulation) Run(n int) error {
	for k := 0; k < n; k++ {
		if err := sim.Step(); err != nil {
			return fmt.Errorf("grape5: step %d: %w", sim.nsteps, err)
		}
	}
	return nil
}

// Time returns the elapsed simulation time.
func (sim *Simulation) Time() float64 { return sim.time }

// Config returns the simulation's effective configuration (with resume
// merging and defaulting applied) — the values a checkpoint records.
func (sim *Simulation) Config() Config { return sim.cfg }

// Steps returns the number of completed steps.
func (sim *Simulation) Steps() int { return sim.nsteps }

// RungOccupancy returns the per-rung particle counts of the block
// scheduler (index k = rung k, dt = DTMin·2^k), or nil for fixed- and
// adaptive-dt simulations. Valid after priming.
func (sim *Simulation) RungOccupancy() []int64 {
	if sim.bl == nil {
		return nil
	}
	return sim.bl.Occupancy()
}

// LastDT returns the timestep most recently applied: DT for the fixed
// integrator, the block span for block runs, the adaptive criterion's
// last pick otherwise.
func (sim *Simulation) LastDT() float64 {
	if sim.al != nil {
		return sim.al.LastDT()
	}
	return sim.cfg.DT
}

// Energy returns the current energy using the engine-filled potentials
// (valid after at least one force evaluation).
func (sim *Simulation) Energy() analysis.EnergyReport {
	return analysis.EnergyFromPotentials(sim.Sys)
}

// Observer returns the simulation's telemetry collector. It is reset
// at every step boundary; use LastReport for completed-step telemetry.
func (sim *Simulation) Observer() *obs.Observer { return sim.ob }

// HardwareCounters returns the emulated GRAPE-5 activity counters —
// summed across shards for cluster runs — or a zero value for
// host-engine simulations. Totals are whole-run: a resumed simulation
// reports the checkpointed base plus this process's activity.
func (sim *Simulation) HardwareCounters() g5.Counters {
	live := g5.Counters{}
	if sim.cluster != nil {
		live = sim.cluster.Counters()
	} else if sim.hw != nil {
		live = sim.hw.Counters()
	}
	return sim.baseCounters.Add(live)
}

// Hardware returns the emulated GRAPE-5 system, or nil for host-engine
// and cluster simulations (use Cluster for the latter).
func (sim *Simulation) Hardware() *g5.System { return sim.hw }

// Cluster returns the sharded cluster engine, or nil unless
// Config.Shards > 1.
func (sim *Simulation) Cluster() *g5.Cluster { return sim.cluster }

// Recovery returns the guard's fault-handling counters — summed across
// shards for cluster runs — or a zero value when the simulation does
// not run a guarded offload path. Totals are whole-run (checkpointed
// base plus this process); HostOnly reflects this process's hardware.
func (sim *Simulation) Recovery() g5.Recovery {
	live := g5.Recovery{}
	if sim.cluster != nil {
		live = sim.cluster.Recovery()
	} else if sim.guard != nil {
		live = sim.guard.Recovery()
	}
	return sim.baseRecovery.Add(live)
}

// Health snapshots the simulation's hardware serving state: shard and
// board inventory with guard exclusions and recovery counters (see
// g5.Health). Host-engine simulations report a zero inventory that is
// never degraded. Call it between steps — it must not race with Step.
func (sim *Simulation) Health() g5.Health {
	switch {
	case sim.cluster != nil:
		return sim.cluster.Health()
	case sim.guard != nil:
		return sim.guard.Health()
	case sim.hw != nil:
		return sim.hw.Health()
	}
	return g5.Health{}
}

// FaultStats returns the injected-fault activity counters, or a zero
// value without fault injection. Totals are whole-run across restarts.
func (sim *Simulation) FaultStats() g5.FaultStats {
	live := g5.FaultStats{}
	if sim.cluster != nil {
		live = sim.cluster.FaultStats()
	} else if sim.hw != nil {
		live = sim.hw.FaultStats()
	}
	return sim.baseFaults.Add(live)
}

// Close releases engine resources (the cluster's shard workers). It is
// a no-op for single-system and host-engine simulations, and safe to
// call more than once.
func (sim *Simulation) Close() error {
	if sim.cluster != nil {
		return sim.cluster.Close()
	}
	return nil
}
