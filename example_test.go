package grape5_test

import (
	"fmt"
	"math"

	grape5 "repro"
)

// The smallest complete use of the library: build a model, attach the
// emulated GRAPE-5, integrate, check conservation.
func ExampleNewSimulation() {
	sys := grape5.Plummer(2000, 1.0, 1.0, 1.0, 42)
	sim, err := grape5.NewSimulation(sys, grape5.Config{
		Theta:  0.75,
		Ncrit:  256,
		G:      1,
		Eps:    0.02,
		DT:     0.005,
		Engine: grape5.EngineGRAPE5,
	})
	if err != nil {
		panic(err)
	}
	if err := sim.Prime(); err != nil {
		panic(err)
	}
	e0 := sim.Energy().Total()
	if err := sim.Run(20); err != nil {
		panic(err)
	}
	drift := math.Abs(sim.Energy().Total()-e0) / math.Abs(e0)
	fmt.Println("energy drift below 1%:", drift < 0.01)
	fmt.Println("hardware was used:", sim.HardwareCounters().Interactions > 0)
	// Output:
	// energy drift below 1%: true
	// hardware was used: true
}

// Generating the paper's class of initial conditions: a standard-CDM
// sphere at z=24 with its integration schedule to z=0.
func ExampleNewCosmoSphere() {
	cs, err := grape5.NewCosmoSphere(grape5.CosmoSphereParams{
		GridN: 8, Seed: 1,
	}, 999)
	if err != nil {
		panic(err)
	}
	fmt.Println("particles generated:", cs.Sys.N() > 200)
	fmt.Println("starts at a=0.04 (z=24):", math.Abs(cs.AInit-0.04) < 1e-12)
	fmt.Println("999 steps scheduled:", cs.Schedule.Steps == 999)
	// Output:
	// particles generated: true
	// starts at a=0.04 (z=24): true
	// 999 steps scheduled: true
}

// Finding collapsed structures in a snapshot.
func ExampleFindHalos() {
	a := grape5.Plummer(400, 1, 0.1, 1, 7)
	b := grape5.Plummer(400, 1, 0.1, 1, 8)
	merged := grape5.Merge(a, b, grape5.Vec3{X: 30}, grape5.Vec3{})
	halos, err := grape5.FindHalos(merged, 0.2, 50)
	if err != nil {
		panic(err)
	}
	fmt.Println("halos found:", len(halos))
	// Output:
	// halos found: 2
}
