package grape5

import (
	"fmt"
	"testing"

	"repro/internal/nbody"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/vec"
)

func allocTestSystem(n int) *nbody.System {
	r := rng.New(1)
	s := nbody.New(n)
	for i := 0; i < n; i++ {
		x, y, z := r.InBall()
		s.Pos[i] = vec.V3{X: x, Y: y, Z: z}
		s.Mass[i] = 1.0 / float64(n)
	}
	return s
}

// TestStepAllocs is the allocation-regression gate of the arena
// pipeline: after warmup, a host-engine Step must run its whole
// build->group->walk path on reused scratch. At this size the seed
// revision allocated ~2.9 MB per step (few objects, but the full key /
// order / node / list working set every step); the arena pipeline
// brought that to ~9 KB. The byte budget pins a >=10x drop against the
// seed with margin; the object budget catches per-group or per-node
// leaks that stay small in bytes.
func TestStepAllocs(t *testing.T) {
	const n = 8192
	// Seed baseline at n=8192, Workers=4, Ncrit=500 (commit 4a283d2,
	// measured via runtime/metrics): 2,972,624 bytes/step.
	const seedBytesPerStep = 2_900_000
	sys := allocTestSystem(n)
	// Workers is set explicitly: AllocsPerRun forces GOMAXPROCS=1, and
	// Workers=0 would resolve to 1, hiding the per-worker scratch path.
	sim, err := NewSimulation(sys, Config{
		DT: 1e-3, G: 1, Eps: 0.01, Ncrit: 500, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Prime(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}

	var bytes int64
	allocs := testing.AllocsPerRun(5, func() {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
		bytes += sim.LastReport.BytesAlloc
	})
	// AllocsPerRun ran the function 5 measured times plus one warmup.
	bytesPerStep := bytes / 6
	if bytesPerStep > seedBytesPerStep/10 {
		t.Fatalf("steady-state Step allocates %d bytes, budget %d (10x under the seed's ~%d)",
			bytesPerStep, seedBytesPerStep/10, seedBytesPerStep)
	}
	// Object-count residue: tree header, stats header, telemetry
	// snapshot, goroutine spawns — ~75 at this size (seed: ~235).
	const budget = 200
	if allocs > budget {
		t.Fatalf("steady-state Step allocates %.0f objects/run, budget %d", allocs, budget)
	}
	t.Logf("steady-state Step: %.1f allocs/run, %d bytes/step (budgets %d, %d)",
		allocs, bytesPerStep, budget, seedBytesPerStep/10)
}

// TestStepAllocsGuarded extends the allocation gate to the guarded
// GRAPE path: the SoA request staging (walk J-list, guard's probe
// reference and AoS gather scratch, engine readback buffers) must all
// reach steady state. The guard adds per-batch probe work but no
// per-batch allocation: everything lives in pooled or mu-guarded
// scratch that grows once and is reused.
func TestStepAllocsGuarded(t *testing.T) {
	const n = 4096
	sys := allocTestSystem(n)
	sim, err := NewSimulation(sys, Config{
		DT: 1e-3, G: 1, Eps: 0.01, Ncrit: 256, Workers: 2,
		Engine: EngineGRAPE5, Guard: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Prime(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}

	var bytes int64
	allocs := testing.AllocsPerRun(5, func() {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
		bytes += sim.LastReport.BytesAlloc
	})
	bytesPerStep := bytes / 6
	// The emulated hardware's own staging dominates the residue; the
	// budget pins the guarded step at the same order as the host step
	// (a per-batch or per-particle leak at n=4096 would add >100 KB).
	const byteBudget = 64_000
	if bytesPerStep > byteBudget {
		t.Fatalf("guarded steady-state Step allocates %d bytes, budget %d", bytesPerStep, byteBudget)
	}
	const budget = 300
	if allocs > budget {
		t.Fatalf("guarded steady-state Step allocates %.0f objects/run, budget %d", allocs, budget)
	}
	t.Logf("guarded steady-state Step: %.1f allocs/run, %d bytes/step (budgets %d, %d)",
		allocs, bytesPerStep, budget, byteBudget)
}

// TestStepAllocsBlocks extends the allocation gate to block timesteps:
// a steady-state block Step runs many substeps, each with an active-set
// walk whose gather segments, rung partials and active masks must all
// live in reused scratch. The budgets are per-Step (i.e. per block of
// substeps), so a per-substep leak shows up multiplied.
func TestStepAllocsBlocks(t *testing.T) {
	const n = 8192
	sys := allocTestSystem(n)
	sim, err := NewSimulation(sys, Config{
		G: 1, Eps: 0.01, Ncrit: 500, Workers: 4,
		Blocks: 4, DTMin: 5e-4, Eta: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Prime(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if sim.LastReport.Substeps < 2 {
		t.Fatalf("only %d substeps per block: active-set path not exercised", sim.LastReport.Substeps)
	}

	var bytes int64
	allocs := testing.AllocsPerRun(5, func() {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
		bytes += sim.LastReport.BytesAlloc
	})
	bytesPerStep := bytes / 6
	// Same order as the fixed-dt host budget: the block machinery may
	// rebuild the tree on some substeps but must not allocate per
	// particle or per gather segment in steady state.
	const byteBudget = 400_000
	if bytesPerStep > byteBudget {
		t.Fatalf("steady-state block Step allocates %d bytes, budget %d", bytesPerStep, byteBudget)
	}
	const budget = 600
	if allocs > budget {
		t.Fatalf("steady-state block Step allocates %.0f objects/run, budget %d", allocs, budget)
	}
	t.Logf("steady-state block Step: %.1f allocs/run, %d bytes/step over %d substeps (budgets %d, %d)",
		allocs, bytesPerStep, sim.LastReport.Substeps, budget, byteBudget)
}

// TestStepReportBytesAlloc checks that the telemetry layer reports the
// per-step allocation counter and that it is sane in steady state.
func TestStepReportBytesAlloc(t *testing.T) {
	sys := allocTestSystem(4096)
	sim, err := NewSimulation(sys, Config{
		DT: 1e-3, G: 1, Eps: 0.01, Ncrit: 500, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Prime(); err != nil {
		t.Fatal(err)
	}
	if sim.LastReport.BytesAlloc <= 0 {
		t.Fatalf("priming step reported BytesAlloc=%d, want > 0 (cold path allocates arenas)", sim.LastReport.BytesAlloc)
	}
	for i := 0; i < 4; i++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if sim.LastReport.BytesAlloc < 0 {
		t.Fatalf("steady-state BytesAlloc=%d, want >= 0", sim.LastReport.BytesAlloc)
	}
	// Steady state must be far below one particle-array's worth
	// (4096 * 24 bytes would already signal a lost arena).
	if sim.LastReport.BytesAlloc > 1<<20 {
		t.Fatalf("steady-state Step allocated %d bytes, want < 1 MiB", sim.LastReport.BytesAlloc)
	}
}

// ExampleStepReport_tBuild shows the derived t_build field.
func ExampleStepReport_tBuild() {
	r := obs.StepReport{}
	r.Phases.MortonSort = 0.5
	r.Phases.TreeBuild = 1.5
	r.TBuild = r.Phases.MortonSort + r.Phases.TreeBuild
	fmt.Println(r.TBuild)
	// Output: 2
}
