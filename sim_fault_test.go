package grape5

import (
	"math"
	"testing"

	"repro/internal/g5"
)

// TestSimulationGuardedBoardLoss is the headline fault-tolerance
// scenario: a two-board run loses board 2 mid-run. The guarded engine
// must detect the corruption, exclude the board, and finish the run on
// the survivor with forces still inside the hardware's ~0.3% envelope.
func TestSimulationGuardedBoardLoss(t *testing.T) {
	hwCfg := g5.DefaultConfig()
	hwCfg.Fault = &g5.FaultModel{Seed: 3, FailBoard: 2, FailAfterRuns: 40, FailSlot: 7}
	cfg := Config{
		Theta: 0.6, Ncrit: 64, G: 1, Eps: 0.05, DT: 0.005,
		Engine: EngineGRAPE5, GRAPE: hwCfg, Guard: true,
	}
	sim, err := NewSimulation(Plummer(800, 1, 1, 1, 5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Prime(); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(20); err != nil {
		t.Fatal(err)
	}

	rec := sim.Recovery()
	if rec.ExcludedBoards != 1 {
		t.Fatalf("excluded boards = %d, want 1 (recovery %s)", rec.ExcludedBoards, rec)
	}
	if rec.HostOnly {
		t.Errorf("run abandoned hardware entirely: %s", rec)
	}
	if sim.Hardware().ActiveBoards() != 1 {
		t.Errorf("active boards = %d, want 1", sim.Hardware().ActiveBoards())
	}
	if fs := sim.FaultStats(); fs.StuckPipeCalls == 0 {
		t.Errorf("fault injector never fired: %+v", fs)
	}

	// Force accuracy at the final positions: recompute with the float64
	// host engine on a clone and compare by particle ID.
	refCfg := cfg
	refCfg.Engine = EngineHost
	refCfg.Guard = false
	refCfg.GRAPE = g5.Config{}
	ref, err := NewSimulation(sim.Sys.Clone(), refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Prime(); err != nil {
		t.Fatal(err)
	}
	refAcc := make(map[int64]Vec3, ref.Sys.N())
	for i := range ref.Sys.ID {
		refAcc[ref.Sys.ID[i]] = ref.Sys.Acc[i]
	}
	var num, den float64
	for i := range sim.Sys.ID {
		ra := refAcc[sim.Sys.ID[i]]
		num += sim.Sys.Acc[i].Sub(ra).Norm2()
		den += ra.Norm2()
	}
	if rms := math.Sqrt(num / den); rms > 0.01 {
		t.Errorf("final-snapshot RMS force error = %.3g, want < 1%%", rms)
	}
}

// TestSimulationGuardedAllBoardsLost kills the only board at the first
// hardware call: every batch must fall back to the host engine, the
// guard must stop touching the hardware, and the whole run must be
// bitwise identical to a plain EngineHost run.
func TestSimulationGuardedAllBoardsLost(t *testing.T) {
	hwCfg := g5.DefaultConfig()
	hwCfg.Boards = 1
	hwCfg.Fault = &g5.FaultModel{Seed: 9, FailBoard: 1, FailAfterRuns: 0, FailSlot: 3}
	cfg := Config{
		Theta: 0.6, Ncrit: 64, G: 1, Eps: 0.05, DT: 0.005,
		Engine: EngineGRAPE5, GRAPE: hwCfg, Guard: true,
		GuardPolicy: g5.GuardPolicy{MaxRetries: 1, FallbackAfter: 1},
	}
	run := func(c Config) *Simulation {
		sim, err := NewSimulation(Plummer(400, 1, 1, 1, 6), c)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Prime(); err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(10); err != nil {
			t.Fatal(err)
		}
		return sim
	}
	sim := run(cfg)

	rec := sim.Recovery()
	if !rec.HostOnly {
		t.Fatalf("guard did not abandon dead hardware: %s", rec)
	}
	if rec.FallbackBatches == 0 {
		t.Errorf("no fallback batches recorded: %s", rec)
	}
	if sim.Hardware().ActiveBoards() != 0 {
		t.Errorf("active boards = %d, want 0", sim.Hardware().ActiveBoards())
	}

	hostCfg := cfg
	hostCfg.Engine = EngineHost
	hostCfg.Guard = false
	hostCfg.GRAPE = g5.Config{}
	hostCfg.GuardPolicy = g5.GuardPolicy{}
	host := run(hostCfg)

	hostAcc := make(map[int64]Vec3, host.Sys.N())
	hostPos := make(map[int64]Vec3, host.Sys.N())
	for i := range host.Sys.ID {
		hostAcc[host.Sys.ID[i]] = host.Sys.Acc[i]
		hostPos[host.Sys.ID[i]] = host.Sys.Pos[i]
	}
	for i := range sim.Sys.ID {
		id := sim.Sys.ID[i]
		if sim.Sys.Acc[i] != hostAcc[id] {
			t.Fatalf("particle %d: fallback acc %v != host acc %v", id, sim.Sys.Acc[i], hostAcc[id])
		}
		if sim.Sys.Pos[i] != hostPos[id] {
			t.Fatalf("particle %d: fallback pos %v != host pos %v", id, sim.Sys.Pos[i], hostPos[id])
		}
	}
}
