package grape5

import (
	"math"
	"testing"
)

func TestNewSimulationValidation(t *testing.T) {
	if _, err := NewSimulation(nil, Config{DT: 0.01}); err == nil {
		t.Error("nil system accepted")
	}
	s := Plummer(100, 1, 1, 1, 1)
	if _, err := NewSimulation(s, Config{DT: 0}); err == nil {
		t.Error("zero timestep accepted")
	}
	if _, err := NewSimulation(s, Config{DT: 0.01, Engine: EngineKind(9)}); err == nil {
		t.Error("bad engine kind accepted")
	}
}

func TestSimulationDefaultsG(t *testing.T) {
	s := Plummer(64, 1, 1, G, 2)
	sim, err := NewSimulation(s, Config{DT: 1e-5, Eps: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if sim.cfg.G != G {
		t.Errorf("default G = %v, want %v", sim.cfg.G, G)
	}
}

func TestSimulationHostEnergyConservation(t *testing.T) {
	s := Plummer(400, 1, 1, 1, 3)
	sim, err := NewSimulation(s, Config{
		Theta: 0.6, Ncrit: 64, G: 1, Eps: 0.05, DT: 0.005, Engine: EngineHost,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Prime(); err != nil {
		t.Fatal(err)
	}
	e0 := sim.Energy().Total()
	if err := sim.Run(100); err != nil {
		t.Fatal(err)
	}
	e1 := sim.Energy().Total()
	if rel := math.Abs(e1-e0) / math.Abs(e0); rel > 0.01 {
		t.Errorf("tree-force energy drift = %v over 0.5 time units", rel)
	}
	if sim.Steps() != 100 {
		t.Errorf("steps = %d", sim.Steps())
	}
	if math.Abs(sim.Time()-0.5) > 1e-12 {
		t.Errorf("time = %v", sim.Time())
	}
	if sim.TotalInteractions == 0 || sim.LastStats.N != 400 {
		t.Errorf("stats not recorded: %+v", sim.LastStats)
	}
	if sim.Hardware() != nil {
		t.Error("host simulation reports hardware")
	}
}

func TestSimulationGRAPEEnergyConservation(t *testing.T) {
	// The full paper pipeline in miniature: Plummer sphere, modified
	// treecode, forces on the emulated GRAPE-5, leapfrog. Despite the
	// 0.3% pipeline noise the energy drift over a short run must stay
	// small (the paper ran 999 steps on this arithmetic).
	s := Plummer(400, 1, 1, 1, 4)
	sim, err := NewSimulation(s, Config{
		Theta: 0.6, Ncrit: 64, G: 1, Eps: 0.05, DT: 0.005, Engine: EngineGRAPE5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Prime(); err != nil {
		t.Fatal(err)
	}
	e0 := sim.Energy().Total()
	if err := sim.Run(50); err != nil {
		t.Fatal(err)
	}
	e1 := sim.Energy().Total()
	if rel := math.Abs(e1-e0) / math.Abs(e0); rel > 0.02 {
		t.Errorf("GRAPE energy drift = %v", rel)
	}
	c := sim.HardwareCounters()
	if c.Interactions == 0 || c.Runs == 0 {
		t.Errorf("hardware idle: %+v", c)
	}
	if c.HWSeconds() <= 0 {
		t.Error("no simulated hardware time")
	}
	if sim.Hardware() == nil {
		t.Error("GRAPE simulation lost its hardware")
	}
}

func TestSimulationGRAPERescalesWithExpansion(t *testing.T) {
	// An expanding system must keep fitting in the fixed-point window:
	// run a cold expanding shell and check no clamping happened.
	s := UniformSphere(200, 1e-6, 1, 5) // negligible mass: pure expansion
	for i := range s.Vel {
		s.Vel[i] = s.Pos[i].Scale(10) // Hubble-like outflow
	}
	sim, err := NewSimulation(s, Config{
		Theta: 0.7, Ncrit: 32, G: 1, Eps: 0.05, DT: 0.01, Engine: EngineGRAPE5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(50); err != nil {
		t.Fatal(err)
	}
	// System expanded ~6x; all positions must have remained in range.
	if c := sim.HardwareCounters(); c.RangeClamps != 0 {
		t.Errorf("fixed-point range clamps: %d", c.RangeClamps)
	}
}

func TestTwoBodyFacade(t *testing.T) {
	s := TwoBody(1, 1, 1, 1)
	if s.N() != 2 {
		t.Fatal("not two bodies")
	}
	sim, err := NewSimulation(s, Config{Theta: 0.01, Ncrit: 1, LeafCap: 1, G: 1, DT: 1e-3, Engine: EngineHost})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(100); err != nil {
		t.Fatal(err)
	}
	// Separation must stay ~1 on the circular orbit.
	d := sim.Sys.Pos[0].Sub(sim.Sys.Pos[1]).Norm()
	if math.Abs(d-1) > 0.01 {
		t.Errorf("separation drifted to %v", d)
	}
}

func TestMergeFacade(t *testing.T) {
	a := Plummer(50, 1, 1, 1, 6)
	b := Plummer(70, 1, 1, 1, 7)
	m := Merge(a, b, Vec3{X: 5}, Vec3{X: -0.1})
	if m.N() != 120 {
		t.Errorf("N = %d", m.N())
	}
}

func TestNewCosmoSphere(t *testing.T) {
	cs, err := NewCosmoSphere(CosmoSphereParams{GridN: 8, Seed: 1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Sys.N() == 0 {
		t.Fatal("no particles")
	}
	// Defaults: radius 50, z=24 -> a=0.04.
	if math.Abs(cs.AInit-0.04) > 1e-12 {
		t.Errorf("AInit = %v", cs.AInit)
	}
	if cs.Schedule.Steps != 100 || cs.Schedule.DT() <= 0 {
		t.Errorf("schedule = %+v", cs.Schedule)
	}
	// Cosmic time window: 13.04 Gyr minus 0.104 Gyr in internal units.
	gotGyr := (cs.Schedule.T1 - cs.Schedule.T0) * 977.79
	if math.Abs(gotGyr-12.9) > 0.1 {
		t.Errorf("integration window = %v Gyr, want ~12.9", gotGyr)
	}
	if cs.ParticleMass <= 0 || cs.GridSpacing <= 0 {
		t.Error("missing metadata")
	}
}

func TestNewCosmoSphereRejectsBadGrid(t *testing.T) {
	if _, err := NewCosmoSphere(CosmoSphereParams{GridN: 9, Seed: 1}, 10); err == nil {
		t.Error("bad grid accepted")
	}
}

func TestHernquistFacade(t *testing.T) {
	s := Hernquist(500, 1, 1, 1, 9)
	if s.N() != 500 {
		t.Fatalf("N = %d", s.N())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExponentialDiskFacade(t *testing.T) {
	s := ExponentialDisk(500, 1, 1, 0.05, 1, 10)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFindHalosFacade(t *testing.T) {
	// Two well-separated Plummer spheres are two halos at a tight
	// linking length.
	a := Plummer(300, 1, 0.1, 1, 11)
	b := Plummer(300, 1, 0.1, 1, 12)
	m := Merge(a, b, Vec3{X: 50}, Vec3{})
	halos, err := FindHalos(m, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(halos) != 2 {
		t.Fatalf("found %d halos, want 2", len(halos))
	}
	if halos[0].N < 250 {
		t.Errorf("halo too small: %d", halos[0].N)
	}
}

func TestSimulationPMEngine(t *testing.T) {
	// A Plummer sphere under the PM engine: forces are soft below the
	// mesh scale, but global energy behaviour must be sane over a short
	// run and the engine must produce nonzero forces.
	s := Plummer(2000, 1, 1, 1, 13)
	sim, err := NewSimulation(s, Config{
		G: 1, DT: 0.005, Engine: EnginePM, PMGrid: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Prime(); err != nil {
		t.Fatal(err)
	}
	var nonzero int
	for _, a := range sim.Sys.Acc {
		if a.Norm() > 0 {
			nonzero++
		}
	}
	if nonzero < sim.Sys.N()*9/10 {
		t.Fatalf("PM forces mostly zero: %d of %d", nonzero, sim.Sys.N())
	}
	if err := sim.Run(20); err != nil {
		t.Fatal(err)
	}
	// The sphere must not explode: bounding radius stays within ~2x.
	maxR := 0.0
	for _, p := range sim.Sys.Pos {
		if r := p.Norm(); r > maxR {
			maxR = r
		}
	}
	if maxR > 25 {
		t.Errorf("PM run exploded: max radius %v", maxR)
	}
}

func TestSimulationTreeReuse(t *testing.T) {
	s := Plummer(1000, 1, 1, 1, 14)
	sim, err := NewSimulation(s, Config{
		Theta: 0.7, Ncrit: 128, G: 1, Eps: 0.05, DT: 0.005,
		Engine: EngineHost, RebuildEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Prime(); err != nil {
		t.Fatal(err)
	}
	e0 := sim.Energy().Total()
	if err := sim.Run(40); err != nil {
		t.Fatal(err)
	}
	e1 := sim.Energy().Total()
	if rel := math.Abs(e1-e0) / math.Abs(e0); rel > 0.02 {
		t.Errorf("tree-reuse energy drift = %v", rel)
	}
}
