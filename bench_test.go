package grape5

// The benchmark harness regenerates every number in the paper's
// evaluation (experiments E1-E8 of DESIGN.md) and benchmarks each
// subsystem. Derived quantities (Gflops, errors, optimal n_g, ...) are
// attached to the benchmark output with b.ReportMetric, so
// `go test -bench=. -benchmem` prints the full reproduction table.

import (
	"math"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/fft"
	"repro/internal/g5"
	"repro/internal/morton"
	"repro/internal/nbody"
	"repro/internal/octree"
	"repro/internal/perf"
	"repro/internal/pm"
	"repro/internal/rng"
	"repro/internal/units"
	"repro/internal/vec"
)

// ---------------------------------------------------------------------
// Component benchmarks
// ---------------------------------------------------------------------

func benchSystem(n int, seed uint64) *nbody.System {
	return nbody.Plummer(n, 1, 1, 1, rng.New(seed))
}

func BenchmarkTreeBuildMorton(b *testing.B) {
	s := benchSystem(50000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := octree.Build(s.Clone(), nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(50000*b.N)/b.Elapsed().Seconds(), "particles/s")
}

// Ablation: naive insertion build vs the Morton build above.
func BenchmarkTreeBuildInsertion(b *testing.B) {
	s := benchSystem(50000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := octree.BuildInsertion(s.Clone(), 8); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(50000*b.N)/b.Elapsed().Seconds(), "particles/s")
}

func BenchmarkMortonKeys(b *testing.B) {
	s := benchSystem(100000, 2)
	box := s.Bounds().Cube()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		morton.Keys(s.Pos, box)
	}
	b.ReportMetric(float64(100000*b.N)/b.Elapsed().Seconds(), "keys/s")
}

func BenchmarkWalkModified(b *testing.B) {
	s := benchSystem(50000, 3)
	tc := core.New(core.Options{Theta: 0.75, Ncrit: 2000, G: 1}, &core.CountEngine{})
	var inter int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := tc.ComputeForces(s.Clone())
		if err != nil {
			b.Fatal(err)
		}
		inter = st.Interactions
	}
	b.ReportMetric(float64(inter), "interactions/step")
}

func BenchmarkWalkOriginal(b *testing.B) {
	s := benchSystem(50000, 3)
	tc := core.New(core.Options{Theta: 0.75, G: 1}, nil)
	var inter int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := tc.CountOriginal(s.Clone())
		if err != nil {
			b.Fatal(err)
		}
		inter = c
	}
	b.ReportMetric(float64(inter), "interactions/step")
}

// BenchmarkHostKernel measures the float64 force pipeline rate.
func BenchmarkHostKernel(b *testing.B) {
	const ni, nj = 96, 2000
	req := kernelRequest(ni, nj)
	e := &core.HostEngine{G: 1, Eps: 0.01}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Accumulate(req)
	}
	b.ReportMetric(float64(ni*nj*b.N)/b.Elapsed().Seconds(), "interactions/s")
}

// BenchmarkG5Kernel measures the emulated GRAPE-5 pipeline rate (the
// reduced-precision arithmetic is the cost of functional fidelity).
func BenchmarkG5Kernel(b *testing.B) {
	const ni, nj = 96, 2000
	req := kernelRequest(ni, nj)
	sys, err := g5.NewSystem(g5.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.SetScale(-100, 100); err != nil {
		b.Fatal(err)
	}
	sys.SetEps(0.01)
	e := g5.NewEngine(sys, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Accumulate(req)
	}
	b.ReportMetric(float64(ni*nj*b.N)/b.Elapsed().Seconds(), "interactions/s")
	b.ReportMetric(sys.Counters().HWSeconds(), "modelled-hw-s")
}

func kernelRequest(ni, nj int) *core.Request {
	r := rng.New(9)
	req := &core.Request{
		IPos: make([]vec.V3, ni),
		Acc:  make([]vec.V3, ni),
		Pot:  make([]float64, ni),
	}
	for i := range req.IPos {
		req.IPos[i] = vec.V3{X: r.Uniform(-50, 50), Y: r.Uniform(-50, 50), Z: r.Uniform(-50, 50)}
	}
	for j := 0; j < nj; j++ {
		req.J.Append(r.Uniform(-50, 50), r.Uniform(-50, 50), r.Uniform(-50, 50), 1)
	}
	req.J.Pad()
	return req
}

func BenchmarkDirectSum(b *testing.B) {
	s := benchSystem(2000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nbody.DirectForces(s, 1, 0.01)
	}
	b.ReportMetric(float64(2000*1999*b.N)/b.Elapsed().Seconds(), "interactions/s")
}

func BenchmarkFFT3D(b *testing.B) {
	g, err := fft.NewGrid3(64)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(5)
	for i := range g.Data {
		g.Data[i] = complex(r.Normal(), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Forward()
		g.Inverse()
	}
}

func BenchmarkZeldovichICs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs, err := NewCosmoSphere(CosmoSphereParams{GridN: 32, Seed: uint64(i + 1)}, 1)
		if err != nil {
			b.Fatal(err)
		}
		if cs.Sys.N() == 0 {
			b.Fatal("empty realisation")
		}
	}
}

func BenchmarkLeapfrogStep(b *testing.B) {
	s := benchSystem(10000, 6)
	sim, err := NewSimulation(s, Config{Theta: 0.75, Ncrit: 500, G: 1, Eps: 0.02, DT: 1e-4, Engine: EngineHost})
	if err != nil {
		b.Fatal(err)
	}
	if err := sim.Prime(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Experiment benchmarks (one per table/figure/number of the paper)
// ---------------------------------------------------------------------

// BenchmarkE1PeakAccounting — §2: peak = 32 pipes × 90 MHz × 38 ops.
func BenchmarkE1PeakAccounting(b *testing.B) {
	cfg := g5.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if cfg.PeakFlops() != 109.44e9 {
			b.Fatalf("peak = %v", cfg.PeakFlops())
		}
	}
	b.ReportMetric(cfg.PeakFlops()/1e9, "peak-Gflops")
	b.ReportMetric(float64(cfg.PhysicalPipes()), "pipes")
}

// BenchmarkE2ForceAccuracy — §2: pairwise ≈0.3 %, total error dominated
// by the tree approximation.
func BenchmarkE2ForceAccuracy(b *testing.B) {
	model := benchSystem(3000, 7)
	ref := model.Clone()
	nbody.DirectForces(ref, 1, 0.01)

	var rmsHW, rmsHost float64
	for i := 0; i < b.N; i++ {
		rmsHW = treeError(b, model, ref, true)
		rmsHost = treeError(b, model, ref, false)
	}
	b.ReportMetric(rmsHW*100, "grape-total-err-%")
	b.ReportMetric(rmsHost*100, "host-total-err-%")
	b.ReportMetric(pairwiseError(b)*100, "pairwise-err-%")
}

func treeError(b *testing.B, model, ref *nbody.System, hw bool) float64 {
	b.Helper()
	s := model.Clone()
	var engine core.Engine
	if hw {
		sys, err := g5.NewSystem(g5.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.SetScale(-20, 20); err != nil {
			b.Fatal(err)
		}
		sys.SetEps(0.01)
		engine = g5.NewEngine(sys, 1)
	}
	tc := core.New(core.Options{Theta: 0.75, Ncrit: 256, G: 1, Eps: 0.01}, engine)
	if _, err := tc.ComputeForces(s); err != nil {
		b.Fatal(err)
	}
	st, err := analysis.CompareForces(s, ref)
	if err != nil {
		b.Fatal(err)
	}
	return st.RMS
}

func pairwiseError(b *testing.B) float64 {
	b.Helper()
	sys, err := g5.NewSystem(g5.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.SetScale(-100, 100); err != nil {
		b.Fatal(err)
	}
	r := rng.New(12345)
	var sum2 float64
	count := 0
	for k := 0; k < 5000; k++ {
		pi := vec.V3{X: r.Uniform(-50, 50), Y: r.Uniform(-50, 50), Z: r.Uniform(-50, 50)}
		pj := vec.V3{X: r.Uniform(-50, 50), Y: r.Uniform(-50, 50), Z: r.Uniform(-50, 50)}
		acc := make([]vec.V3, 1)
		pot := make([]float64, 1)
		if err := sys.Compute([]vec.V3{pi}, []vec.V3{pj}, []float64{1}, acc, pot); err != nil {
			b.Fatal(err)
		}
		d := pj.Sub(pi)
		r2 := d.Norm2()
		if r2 < 1e-4 {
			continue
		}
		exact := d.Scale(1 / (r2 * math.Sqrt(r2)))
		rel := acc[0].Sub(exact).Norm() / exact.Norm()
		sum2 += rel * rel
		count++
	}
	return math.Sqrt(sum2 / float64(count))
}

// cosmoSnapshot lazily builds one shared z=24 realisation for the
// experiment benches.
var cosmoSnapshot = struct {
	once sync.Once
	sys  *nbody.System
}{}

func sharedCosmoSnapshot(b *testing.B) *nbody.System {
	b.Helper()
	cosmoSnapshot.once.Do(func() {
		cs, err := NewCosmoSphere(CosmoSphereParams{GridN: 32, Seed: 1}, 1)
		if err != nil {
			b.Fatal(err)
		}
		cosmoSnapshot.sys = cs.Sys
	})
	return cosmoSnapshot.sys.Clone()
}

// BenchmarkE3NgSweep — §3: the optimal n_g for the DS10 + GRAPE-5
// ratio ("around 2000" at paper scale).
func BenchmarkE3NgSweep(b *testing.B) {
	s := sharedCosmoSnapshot(b)
	var best *perf.SweepPoint
	for i := 0; i < b.N; i++ {
		points, err := perf.NgSweep(s, 0.75,
			[]int{125, 250, 500, 1000, 2000, 4000, 8000}, perf.DS10(), g5.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		best = perf.Optimum(points)
	}
	if best != nil {
		b.ReportMetric(float64(best.Ncrit), "optimal-ng")
		b.ReportMetric(best.Report.TotalSeconds(), "step-s-at-optimum")
	}
}

// BenchmarkE4Headline — §5: per-step statistics and the modelled
// Gordon Bell run at this N (see cmd/perfreport -full for paper N).
func BenchmarkE4Headline(b *testing.B) {
	s := sharedCosmoSnapshot(b)
	var rep perf.StepReport
	var st *core.Stats
	for i := 0; i < b.N; i++ {
		hw, err := g5.NewSystem(g5.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		box := s.Bounds().Cube()
		if err := hw.SetScale(box.Min.X-1, box.Max.X+1); err != nil {
			b.Fatal(err)
		}
		tc := core.New(core.Options{Theta: 0.75, Ncrit: 2000}, perf.NewScheduleEngine(hw))
		st, err = tc.ComputeForces(s.Clone())
		if err != nil {
			b.Fatal(err)
		}
		rep = perf.ModelStep(perf.DS10(), st, hw.Counters())
	}
	b.ReportMetric(st.AvgList(), "avg-list")
	b.ReportMetric(rep.TotalSeconds(), "modelled-step-s")
	b.ReportMetric(float64(rep.Interactions)*38/rep.TotalSeconds()/1e9, "raw-Gflops")
}

// BenchmarkE5EffectiveOps — §5: modified/original interaction ratio
// (paper: 2.90e13 / 4.69e12 ≈ 6.2).
func BenchmarkE5EffectiveOps(b *testing.B) {
	s := sharedCosmoSnapshot(b)
	var ratio float64
	for i := 0; i < b.N; i++ {
		ce := &core.CountEngine{}
		stats, err := core.New(core.Options{Theta: 0.75, Ncrit: 2000, G: 1}, ce).ComputeForces(s.Clone())
		if err != nil {
			b.Fatal(err)
		}
		orig, err := core.New(core.Options{Theta: 0.75, G: 1}, nil).CountOriginal(s.Clone())
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(stats.Interactions) / float64(orig)
	}
	b.ReportMetric(ratio, "modified/original")
}

// evolvedSnapshot lazily evolves a small sphere to z=0 for the
// Figure-4 bench.
var evolvedSnapshot = struct {
	once sync.Once
	sys  *nbody.System
}{}

// BenchmarkE6Snapshot — Figure 4: render the 45×45×2.5 Mpc slab of an
// evolved sphere and report its clustering contrast.
func BenchmarkE6Snapshot(b *testing.B) {
	evolvedSnapshot.once.Do(func() {
		cs, err := NewCosmoSphere(CosmoSphereParams{GridN: 16, Seed: 1}, 250)
		if err != nil {
			b.Fatal(err)
		}
		sim, err := NewSimulation(cs.Sys, Config{
			Theta: 0.75, Ncrit: 256, Eps: cs.GridSpacing * cs.AInit,
			DT: cs.Schedule.DT(), Engine: EngineHost,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.Run(250); err != nil {
			b.Fatal(err)
		}
		sim.Sys.Recenter()
		evolvedSnapshot.sys = sim.Sys
	})
	var contrast float64
	var kept int
	for i := 0; i < b.N; i++ {
		// The paper's thin slab (for the image)...
		slab, err := analysis.Project(evolvedSnapshot.sys, analysis.Figure4Slab(50), 256, 256)
		if err != nil {
			b.Fatal(err)
		}
		kept = slab.Kept
		// ...and a full-depth projection for the clustering metric
		// (the thin slab holds too few particles at bench scale).
		full, err := analysis.Project(evolvedSnapshot.sys, analysis.SlabSpec{
			XMin: -50, XMax: 50, YMin: -50, YMax: 50, ZMin: -50, ZMax: 50}, 32, 32)
		if err != nil {
			b.Fatal(err)
		}
		contrast = full.ClusteringContrast()
	}
	b.ReportMetric(contrast, "clustering-contrast")
	b.ReportMetric(float64(kept), "slab-particles")
}

// BenchmarkE7PricePerformance — §4/§5: $40,900 system; $/Mflops from
// the paper's own totals must come out at 7.
func BenchmarkE7PricePerformance(b *testing.B) {
	var ppm, dollars float64
	for i := 0; i < b.N; i++ {
		gb := perf.PaperGordonBell()
		ppm = gb.PricePerMflops()
		dollars = gb.Cost.TotalDollars()
	}
	b.ReportMetric(ppm, "$/Mflops")
	b.ReportMetric(dollars, "system-$")
}

// BenchmarkE8ParticleMass — §5: 1.7e10 Msun per particle.
func BenchmarkE8ParticleMass(b *testing.B) {
	var m float64
	for i := 0; i < b.N; i++ {
		m = units.ParticleMass(units.OmegaM, units.LittleH, units.PaperRadiusMpc, units.PaperN)
	}
	b.ReportMetric(m*1e10/1e10, "1e10-Msun")
}

// ---------------------------------------------------------------------
// Ablation benchmarks (design choices called out in DESIGN.md)
// ---------------------------------------------------------------------

// Grouping on/off: cost of the modified vs original algorithm on the
// host (walk + evaluation, float64).
func BenchmarkAblationGroupingOn(b *testing.B) {
	s := benchSystem(20000, 8)
	tc := core.New(core.Options{Theta: 0.75, Ncrit: 2000, G: 1, Eps: 0.01}, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.ComputeForces(s.Clone()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGroupingOff(b *testing.B) {
	s := benchSystem(20000, 8)
	tc := core.New(core.Options{Theta: 0.75, G: 1, Eps: 0.01}, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.ComputeForcesOriginal(s.Clone()); err != nil {
			b.Fatal(err)
		}
	}
}

// MAC variant: geometric vs bmax opening criterion (cost side; accuracy
// is covered by octree tests).
func BenchmarkAblationMACGeometric(b *testing.B) {
	benchMAC(b, false)
}

func BenchmarkAblationMACBmax(b *testing.B) {
	benchMAC(b, true)
}

func benchMAC(b *testing.B, useBmax bool) {
	s := benchSystem(20000, 9)
	tc := core.New(core.Options{Theta: 0.75, UseBmax: useBmax, Ncrit: 1000, G: 1}, &core.CountEngine{})
	var inter int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := tc.ComputeForces(s.Clone())
		if err != nil {
			b.Fatal(err)
		}
		inter = st.Interactions
	}
	b.ReportMetric(float64(inter), "interactions/step")
}

// Traversal parallelism: workers 1 vs 4 (on multi-core hosts the
// speedup shows; on 1 CPU this documents the overhead).
func BenchmarkAblationWorkers1(b *testing.B) { benchWorkers(b, 1) }
func BenchmarkAblationWorkers4(b *testing.B) { benchWorkers(b, 4) }

func benchWorkers(b *testing.B, w int) {
	s := benchSystem(20000, 10)
	tc := core.New(core.Options{Theta: 0.75, Ncrit: 500, G: 1, Eps: 0.01, Workers: w}, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.ComputeForces(s.Clone()); err != nil {
			b.Fatal(err)
		}
	}
}

// Precision ablation: full-precision pipeline configuration vs the
// GRAPE-5 reduced-precision default (functional emulation cost).
func BenchmarkAblationPipelinePrecision(b *testing.B) {
	cfg := g5.DefaultConfig()
	cfg.PosBits, cfg.MassBits, cfg.R2Bits, cfg.PipeBits = 52, 52, 52, 52
	req := kernelRequest(96, 2000)
	sys, err := g5.NewSystem(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.SetScale(-100, 100); err != nil {
		b.Fatal(err)
	}
	e := g5.NewEngine(sys, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Accumulate(req)
	}
	b.ReportMetric(float64(96*2000*b.N)/b.Elapsed().Seconds(), "interactions/s")
}

// ---------------------------------------------------------------------
// Additional component benches: radix sort, FoF, driver, and the
// original-on-GRAPE counterfactual.
// ---------------------------------------------------------------------

func BenchmarkMortonSortRadix(b *testing.B) {
	s := benchSystem(200000, 11)
	keys := morton.Keys(s.Pos, s.Bounds().Cube())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		morton.SortOrderRadix(keys)
	}
	b.ReportMetric(float64(len(keys)*b.N)/b.Elapsed().Seconds(), "keys/s")
}

func BenchmarkMortonSortComparison(b *testing.B) {
	s := benchSystem(200000, 11)
	keys := morton.Keys(s.Pos, s.Bounds().Cube())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		morton.SortOrder(keys)
	}
	b.ReportMetric(float64(len(keys)*b.N)/b.Elapsed().Seconds(), "keys/s")
}

func BenchmarkFriendsOfFriends(b *testing.B) {
	s := sharedCosmoSnapshot(b)
	b.ResetTimer()
	var halos int
	for i := 0; i < b.N; i++ {
		hs, err := analysis.FriendsOfFriends(s, analysis.FOFOptions{})
		if err != nil {
			b.Fatal(err)
		}
		halos = len(hs)
	}
	b.ReportMetric(float64(halos), "halos")
}

func BenchmarkDriverDirectSum(b *testing.B) {
	// The classic GRAPE workload: persistent j-memory, i-chunked sweep.
	s := benchSystem(5000, 12)
	d, err := g5.Open(g5.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := d.SetRange(-20, 20); err != nil {
		b.Fatal(err)
	}
	d.SetEpsToAll(0.02)
	if err := d.SetXMJ(0, s.Pos, s.Mass); err != nil {
		b.Fatal(err)
	}
	np := d.NumberOfPipelines()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lo := 0; lo < s.N(); lo += np {
			hi := lo + np
			if hi > s.N() {
				hi = s.N()
			}
			if err := d.CalculateForceOnX(s.Pos[lo:hi], s.Acc[lo:hi], s.Pot[lo:hi]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(s.N())*float64(s.N())*float64(b.N)/b.Elapsed().Seconds(), "interactions/s")
}

// Ablation: the original algorithm driven through the GRAPE timing
// model — per-particle batches waste 95/96 virtual pipelines, which is
// the §3 argument for grouping. Reported metric: modelled hardware
// seconds per step, to be compared against BenchmarkAblationModifiedOnGRAPE.
func BenchmarkAblationOriginalOnGRAPE(b *testing.B) {
	s := benchSystem(20000, 13)
	var hw float64
	for i := 0; i < b.N; i++ {
		sys, err := g5.NewSystem(g5.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.SetScale(-20, 20); err != nil {
			b.Fatal(err)
		}
		tc := core.New(core.Options{Theta: 0.75, G: 1, Eps: 0.01}, perf.NewScheduleEngine(sys))
		if _, err := tc.ComputeForcesOriginalOnEngine(s.Clone()); err != nil {
			b.Fatal(err)
		}
		hw = sys.Counters().HWSeconds()
	}
	b.ReportMetric(hw, "modelled-hw-s/step")
}

func BenchmarkAblationModifiedOnGRAPE(b *testing.B) {
	s := benchSystem(20000, 13)
	var hw float64
	for i := 0; i < b.N; i++ {
		sys, err := g5.NewSystem(g5.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.SetScale(-20, 20); err != nil {
			b.Fatal(err)
		}
		tc := core.New(core.Options{Theta: 0.75, Ncrit: 2000, G: 1, Eps: 0.01}, perf.NewScheduleEngine(sys))
		if _, err := tc.ComputeForces(s.Clone()); err != nil {
			b.Fatal(err)
		}
		hw = sys.Counters().HWSeconds()
	}
	b.ReportMetric(hw, "modelled-hw-s/step")
}

// ---------------------------------------------------------------------
// Extension experiments: board scaling, PM baseline, tree reuse.
// ---------------------------------------------------------------------

// Board-count scaling: the modelled step time as a GRAPE-5 installation
// grows. Pipeline time scales down with boards; the host share does not
// (Amdahl) — the balance that capped single-host GRAPE systems.
func BenchmarkScalingBoards1(b *testing.B) { benchBoards(b, 1) }
func BenchmarkScalingBoards2(b *testing.B) { benchBoards(b, 2) }
func BenchmarkScalingBoards4(b *testing.B) { benchBoards(b, 4) }
func BenchmarkScalingBoards8(b *testing.B) { benchBoards(b, 8) }

func benchBoards(b *testing.B, boards int) {
	s := sharedCosmoSnapshot(b)
	cfg := g5.DefaultConfig()
	cfg.Boards = boards
	var rep perf.StepReport
	for i := 0; i < b.N; i++ {
		hw, err := g5.NewSystem(cfg)
		if err != nil {
			b.Fatal(err)
		}
		box := s.Bounds().Cube()
		if err := hw.SetScale(box.Min.X-1, box.Max.X+1); err != nil {
			b.Fatal(err)
		}
		tc := core.New(core.Options{Theta: 0.5, Ncrit: 2000}, perf.NewScheduleEngine(hw))
		st, err := tc.ComputeForces(s.Clone())
		if err != nil {
			b.Fatal(err)
		}
		rep = perf.ModelStep(perf.DS10(), st, hw.Counters())
	}
	b.ReportMetric(rep.PipeSeconds, "pipe-s")
	b.ReportMetric(rep.TotalSeconds(), "step-s")
	b.ReportMetric(float64(cfg.PeakFlops())/1e9, "peak-Gflops")
}

// PM baseline: wall-clock of a PM force solve vs the treecode at the
// same N (PM error characteristics are covered in internal/pm tests).
func BenchmarkPMForces(b *testing.B) {
	s := benchSystem(20000, 15)
	box := s.Bounds().Cube()
	grow := box.MaxEdge() * 0.05
	box.Min = box.Min.Sub(vec.V3{X: grow, Y: grow, Z: grow})
	box.Max = box.Max.Add(vec.V3{X: grow, Y: grow, Z: grow})
	solver, err := pm.NewSolver(64, box, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := solver.Forces(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeForcesSameN(b *testing.B) {
	s := benchSystem(20000, 15)
	tc := core.New(core.Options{Theta: 0.75, Ncrit: 500, G: 1, Eps: 0.1}, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.ComputeForces(s.Clone()); err != nil {
			b.Fatal(err)
		}
	}
}

// Tree reuse ablation: build cost with rebuild-every-step vs
// rebuild-every-5 (refresh in between).
func BenchmarkAblationRebuildAlways(b *testing.B) { benchReuse(b, 1) }
func BenchmarkAblationRebuildEvery5(b *testing.B) { benchReuse(b, 5) }

func benchReuse(b *testing.B, every int) {
	s := benchSystem(30000, 16)
	tc := core.New(core.Options{Theta: 0.75, Ncrit: 500, G: 1, Eps: 0.01,
		RebuildEvery: every}, &core.CountEngine{})
	b.ResetTimer()
	var build float64
	var steps int
	for i := 0; i < b.N; i++ {
		// Five consecutive force calls per op so the reuse policy is
		// exercised even at -benchtime 1x.
		for k := 0; k < 5; k++ {
			st, err := tc.ComputeForces(s)
			if err != nil {
				b.Fatal(err)
			}
			build += st.BuildTime.Seconds()
			steps++
		}
	}
	b.ReportMetric(build/float64(steps)*1e3, "build-ms/step")
}

// Direct-vs-tree crossover: the §1 motivation. Direct O(N²) on GRAPE-5
// beats the treecode at small N (perfect pipelining, no tree overhead)
// and loses by orders of magnitude at the paper's N. Reported metric:
// the modelled direct/tree time ratio at N=64k and at the paper's N.
func BenchmarkCrossoverDirectVsTree(b *testing.B) {
	systems := []*nbody.System{
		benchSystem(1000, 17),
		benchSystem(64000, 18),
	}
	var small, large float64
	for i := 0; i < b.N; i++ {
		points, err := perf.Crossover(systems, 0.75, 2000, g5.DefaultConfig(), perf.DS10())
		if err != nil {
			b.Fatal(err)
		}
		small = points[0].DirectSeconds / points[0].TreeSeconds
		large = points[1].DirectSeconds / points[1].TreeSeconds
	}
	paperN, err := perf.DirectStepModel(2159038, g5.DefaultConfig(), perf.DS10())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(small, "direct/tree@1k")
	b.ReportMetric(large, "direct/tree@64k")
	b.ReportMetric(paperN.TotalSeconds()/60, "direct-min/step@paperN")
}
