package grape5

import (
	"math"
	"runtime"
	"testing"
)

// blockEngines enumerates the force pipelines the block scheduler must
// drive identically: the host walk, the guarded emulated board, and a
// two-shard cluster (the cluster exercises the deferred-scatter gather
// path for partially-active groups).
var blockEngines = []struct {
	name string
	cfg  func(c *Config)
}{
	{"host", func(c *Config) { c.Engine = EngineHost }},
	{"guarded", func(c *Config) { c.Engine = EngineGRAPE5; c.Guard = true }},
	{"cluster2", func(c *Config) { c.Engine = EngineGRAPE5; c.Guard = true; c.Shards = 2 }},
}

// runBlockPair primes and runs a fixed-dt leapfrog simulation and a
// block simulation over the same Plummer sphere and asserts bitwise
// identical trajectories. The block config must collapse to a single
// occupied rung so every substep takes the full-set force path.
func runBlockPair(t *testing.T, steps int, fixed, block Config) {
	t.Helper()
	mk := func(cfg Config) *Simulation {
		sim, err := NewSimulation(Plummer(256, 1, 1, 1, 9), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	ref, blk := mk(fixed), mk(block)
	defer ref.Close()
	defer blk.Close()
	for _, sim := range []*Simulation{ref, blk} {
		if err := sim.Prime(); err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(steps); err != nil {
			t.Fatal(err)
		}
	}
	if ref.Time() != blk.Time() {
		t.Fatalf("clocks diverged: fixed %v vs block %v", ref.Time(), blk.Time())
	}
	for i := 0; i < ref.Sys.N(); i++ {
		if ref.Sys.Pos[i] != blk.Sys.Pos[i] || ref.Sys.Vel[i] != blk.Sys.Vel[i] ||
			ref.Sys.Acc[i] != blk.Sys.Acc[i] {
			t.Fatalf("particle %d diverged after %d steps: pos %v vs %v",
				i, steps, ref.Sys.Pos[i], blk.Sys.Pos[i])
		}
	}
}

// TestBlockSingleRungMatchesLeapfrog pins the determinism anchor at the
// simulation layer: with Blocks=1 every particle runs on rung 0 at
// dt = DTMin, the scheduler opens and closes the full set each substep,
// and the trajectory must be bitwise identical to the global leapfrog
// at DT = DTMin — for every engine, at serial and parallel GOMAXPROCS.
func TestBlockSingleRungMatchesLeapfrog(t *testing.T) {
	for _, eng := range blockEngines {
		for _, procs := range []int{1, 4} {
			t.Run(eng.name+"/procs="+string(rune('0'+procs)), func(t *testing.T) {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
				fixed := Config{Theta: 0.6, Ncrit: 64, G: 1, Eps: 0.05, DT: 0.005}
				eng.cfg(&fixed)
				block := Config{Theta: 0.6, Ncrit: 64, G: 1, Eps: 0.05,
					Blocks: 1, DTMin: 0.005, Eta: 0.2}
				eng.cfg(&block)
				runBlockPair(t, 6, fixed, block)
			})
		}
	}
}

// TestBlockTopRungMatchesLeapfrog drives the deep-ladder degenerate
// case: four rung levels but an Eta so loose every particle assigns to
// the top rung, so each Step is one full-span substep. DTMin = DT/8 is
// exact in binary, so the span reconstructs DT bit-for-bit and the
// trajectory must match the fixed-dt leapfrog exactly.
func TestBlockTopRungMatchesLeapfrog(t *testing.T) {
	for _, eng := range blockEngines {
		t.Run(eng.name, func(t *testing.T) {
			fixed := Config{Theta: 0.6, Ncrit: 64, G: 1, Eps: 0.05, DT: 0.005}
			eng.cfg(&fixed)
			block := Config{Theta: 0.6, Ncrit: 64, G: 1, Eps: 0.05,
				Blocks: 4, DTMin: 0.005 / 8, Eta: 100}
			eng.cfg(&block)
			runBlockPair(t, 6, fixed, block)
			// The loose criterion really must have collapsed the ladder.
			sim, err := NewSimulation(Plummer(256, 1, 1, 1, 9), block)
			if err != nil {
				t.Fatal(err)
			}
			defer sim.Close()
			if err := sim.Prime(); err != nil {
				t.Fatal(err)
			}
			occ := sim.RungOccupancy()
			if occ[len(occ)-1] != int64(sim.Sys.N()) {
				t.Fatalf("expected all particles on the top rung, got occupancy %v", occ)
			}
		})
	}
}

// TestBlockCollapseSavesForceEvals is the physics payoff test: a
// Plummer sphere with tight softening and criterion spreads across
// >= 4 rungs, conserves energy to 1e-3 over the run, and evaluates
// measurably fewer forces than a shared-dt run substepping at the same
// resolution would (active fraction strictly below 1).
func TestBlockCollapseSavesForceEvals(t *testing.T) {
	s := Plummer(2000, 1, 1, 1, 3)
	sim, err := NewSimulation(s, Config{
		Theta: 0.5, Ncrit: 64, G: 1, Eps: 0.002,
		Blocks: 6, DTMin: 0.00005, Eta: 0.01, Engine: EngineHost,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Prime(); err != nil {
		t.Fatal(err)
	}
	occupied := 0
	for _, c := range sim.RungOccupancy() {
		if c > 0 {
			occupied++
		}
	}
	if occupied < 4 {
		t.Fatalf("criterion too loose for a rung hierarchy: occupancy %v", sim.RungOccupancy())
	}
	e0 := sim.Energy().Total()
	var activeI, substeps int64
	for step := 0; step < 20; step++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
		activeI += sim.LastReport.ActiveI
		substeps += sim.LastReport.Substeps
	}
	e1 := sim.Energy().Total()
	if rel := math.Abs(e1-e0) / math.Abs(e0); rel > 1e-3 {
		t.Errorf("block-timestep energy drift = %v, want <= 1e-3", rel)
	}
	// Shared-dt at the same finest resolution would evaluate N particles
	// on each of the substeps; the hierarchy must do meaningfully better.
	shared := int64(sim.Sys.N()) * substeps
	if substeps <= 20 {
		t.Fatalf("only %d substeps over 20 blocks: hierarchy never subdivided", substeps)
	}
	ratio := float64(activeI) / float64(shared)
	if ratio >= 0.9 {
		t.Errorf("force evaluations %d of shared-dt %d (ratio %.3f): no active-set win", activeI, shared, ratio)
	}
	t.Logf("force-eval ratio vs shared dt_min: %.3f (%d substeps, occupancy %v)",
		ratio, substeps, sim.RungOccupancy())
	if f := sim.LastReport.ActiveFrac; !(f > 0 && f < 1) {
		t.Errorf("LastReport.ActiveFrac = %v, want in (0,1)", f)
	}
}

// TestBlockCheckpointResumeBitwise closes the loop at the library
// layer: a block run checkpointed mid-flight and resumed must land
// bitwise on the uninterrupted trajectory (the e2e suite repeats this
// through os/exec kill; this covers the in-process state plumbing).
func TestBlockCheckpointResumeBitwise(t *testing.T) {
	cfg := Config{Theta: 0.6, Ncrit: 64, G: 1, Eps: 0.02,
		Blocks: 4, DTMin: 0.000625, Eta: 0.05, Engine: EngineHost}
	mk := func() *Simulation {
		sim, err := NewSimulation(Plummer(512, 1, 1, 1, 17), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	ref := mk()
	if err := ref.Run(8); err != nil {
		t.Fatal(err)
	}

	part := mk()
	if err := part.Run(4); err != nil {
		t.Fatal(err)
	}
	ck := ckptRoundTrip(t, part)
	if ck.Block == nil || ck.Block.Tick != 0 {
		t.Fatalf("mid-run block checkpoint = %+v, want synced block state", ck.Block)
	}
	resumed, err := ResumeSimulation(ck, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Run(4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ref.Sys.N(); i++ {
		if ref.Sys.Pos[i] != resumed.Sys.Pos[i] || ref.Sys.Vel[i] != resumed.Sys.Vel[i] {
			t.Fatalf("particle %d diverged after resume", i)
		}
	}
}

// TestBlockConfigValidation pins the Config-level mode rules.
func TestBlockConfigValidation(t *testing.T) {
	s := Plummer(64, 1, 1, 1, 2)
	bad := []Config{
		{Blocks: 4, DTMin: 0.001, Adaptive: true}, // mutually exclusive
		{Blocks: 4},                                 // DTMin required
		{Blocks: 32, DTMin: 0.001},                  // ladder too deep
		{Blocks: 4, DTMin: 0.001, DT: 0.005},        // DT != span
		{Blocks: 4, DTMin: 0.001, Engine: EnginePM}, // PM has no active path
	}
	for i, cfg := range bad {
		if _, err := NewSimulation(s, cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	// DT equal to the exact span is accepted.
	if _, err := NewSimulation(s, Config{Blocks: 4, DTMin: 0.000625, DT: 0.005, G: 1, Eps: 0.05}); err != nil {
		t.Errorf("DT == span rejected: %v", err)
	}
}
