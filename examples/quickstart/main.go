// Quickstart: build a Plummer sphere, attach the emulated GRAPE-5,
// integrate 100 steps with the modified treecode, and check energy
// conservation — the smallest complete tour of the public API.
package main

import (
	"fmt"
	"log"

	grape5 "repro"
)

func main() {
	log.SetFlags(0)

	// A 5,000-particle Plummer sphere in model units (G = 1).
	sys := grape5.Plummer(5000, 1.0, 1.0, 1.0, 42)

	sim, err := grape5.NewSimulation(sys, grape5.Config{
		Theta:  0.75,                // Barnes-Hut opening angle
		Ncrit:  500,                 // group size of the modified algorithm
		G:      1.0,                 // model units
		Eps:    0.02,                // Plummer softening
		DT:     0.005,               // leapfrog timestep
		Engine: grape5.EngineGRAPE5, // offload forces to the emulated hardware
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := sim.Prime(); err != nil {
		log.Fatal(err)
	}
	e0 := sim.Energy()
	fmt.Printf("initial: E = %.5f (virial ratio %.3f)\n", e0.Total(), e0.VirialRatio())

	if err := sim.Run(100); err != nil {
		log.Fatal(err)
	}

	e1 := sim.Energy()
	fmt.Printf("final:   E = %.5f (drift %.2e)\n",
		e1.Total(), (e1.Total()-e0.Total())/e0.Total())

	st := sim.LastStats
	fmt.Printf("last step: %d groups, %d interactions, average list %.0f\n",
		st.Groups, st.Interactions, st.AvgList())

	c := sim.HardwareCounters()
	cfg := sim.Hardware().Config()
	fmt.Printf("GRAPE-5 totals: %.3g interactions in %.3f modelled hardware seconds\n",
		float64(c.Interactions), c.HWSeconds())
	fmt.Printf("hardware-side speed: %.2f Gflops of %.2f peak\n",
		float64(c.Interactions)*float64(cfg.OpsPerInteraction)/c.HWSeconds()/1e9,
		cfg.PeakFlops()/1e9)
}
