// Gordonbell: the paper's headline accounting in one program. Runs a
// scaled-down version of the 1999 Gordon Bell price/performance entry
// — cosmological sphere, modified treecode, emulated GRAPE-5 — and then
// prints the full metrics table: measured interactions, modelled
// DS10+GRAPE-5 wall clock, raw and effective Gflops, and $/Mflops,
// side by side with the paper's published numbers.
package main

import (
	"flag"
	"fmt"
	"log"

	grape5 "repro"
	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/units"
)

func main() {
	log.SetFlags(0)
	var (
		grid  = flag.Int("grid", 16, "IC grid (power of two); the paper's scale is ~160")
		steps = flag.Int("steps", 100, "timesteps (paper: 999)")
		ncrit = flag.Int("ncrit", 2000, "group bound n_g (paper optimum ~2000)")
	)
	flag.Parse()

	cs, err := grape5.NewCosmoSphere(grape5.CosmoSphereParams{GridN: *grid, Seed: 1}, *steps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scaled Gordon Bell run: N=%d (paper: %d), %d steps (paper: %d)\n\n",
		cs.Sys.N(), units.PaperN, *steps, units.PaperSteps)

	sim, err := grape5.NewSimulation(cs.Sys, grape5.Config{
		Theta:  0.75,
		Ncrit:  *ncrit,
		Eps:    cs.GridSpacing * cs.AInit,
		DT:     cs.Schedule.DT(),
		Engine: grape5.EngineGRAPE5,
	})
	if err != nil {
		log.Fatal(err)
	}

	host := perf.DS10()
	var hostSeconds float64
	var origTotal int64
	for s := 1; s <= *steps; s++ {
		if err := sim.Step(); err != nil {
			log.Fatal(err)
		}
		st := sim.LastStats
		hostSeconds += host.StepSeconds(&st)
		if s == 1 || s == *steps/2 || s == *steps {
			// Original-algorithm count on representative snapshots —
			// the paper did exactly this with five snapshot files.
			orig, err := core.New(core.Options{Theta: 0.75}, nil).CountOriginal(sim.Sys.Clone())
			if err != nil {
				log.Fatal(err)
			}
			origTotal += orig
			fmt.Printf("step %4d: avg list %.0f, original-alg count %.3g\n",
				s, st.AvgList(), float64(orig))
		}
	}
	origPerStep := float64(origTotal) / 3

	c := sim.HardwareCounters()
	wall := hostSeconds + c.HWSeconds()
	gb := perf.GordonBell{
		Interactions:         float64(sim.TotalInteractions),
		OriginalInteractions: origPerStep * float64(*steps),
		WallClockSeconds:     wall,
		OpsPerInteraction:    units.PaperOpsPerInteraction,
		Cost:                 perf.PaperCostModel(),
	}
	paper := perf.PaperGordonBell()

	fmt.Printf("\n%-28s %15s %15s\n", "metric", "this run", "paper")
	fmt.Printf("%-28s %15d %15d\n", "particles", sim.Sys.N(), units.PaperN)
	fmt.Printf("%-28s %15d %15d\n", "steps", *steps, units.PaperSteps)
	fmt.Printf("%-28s %15.3g %15.3g\n", "interactions", gb.Interactions, paper.Interactions)
	fmt.Printf("%-28s %15.3g %15.3g\n", "original-alg interactions", gb.OriginalInteractions, paper.OriginalInteractions)
	fmt.Printf("%-28s %14.0fs %14.0fs\n", "modelled wall clock", wall, paper.WallClockSeconds)
	fmt.Printf("%-28s %15.2f %15.1f\n", "raw Gflops", gb.RawFlops()/1e9, paper.RawFlops()/1e9)
	fmt.Printf("%-28s %15.2f %15.2f\n", "effective Gflops", gb.EffectiveFlops()/1e9, paper.EffectiveFlops()/1e9)
	fmt.Printf("%-28s %14.1f$ %14.1f$\n", "price per Mflops", gb.PricePerMflops(), paper.PricePerMflops())
	fmt.Println("\n(price/performance converges toward the paper's $7/Mflops as N grows:")
	fmt.Println(" small problems cannot fill 13,000-entry interaction lists; see")
	fmt.Println(" cmd/perfreport -full for the paper-scale accounting)")
}
