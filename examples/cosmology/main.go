// Cosmology: the paper's headline experiment in miniature. Generate a
// standard-CDM sphere (the COSMICS-substitute Zel'dovich initial
// conditions), integrate it from z=24 to z=0 with the treecode on the
// emulated GRAPE-5, and render the Figure-4 slab plus the two-point
// correlation function of the final state.
//
// The paper ran N = 2,159,038 for 999 steps; this example defaults to a
// 16³ Fourier grid (≈2,100 particles) and 250 steps so it finishes in
// seconds. Crank -grid and -steps for more structure.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	grape5 "repro"
	"repro/internal/analysis"
	"repro/internal/vec"
)

func main() {
	log.SetFlags(0)
	var (
		grid  = flag.Int("grid", 16, "IC grid per dimension (power of two)")
		steps = flag.Int("steps", 250, "timesteps from z=24 to z=0 (paper: 999)")
		seed  = flag.Uint64("seed", 1, "realisation seed")
		out   = flag.String("pgm", "", "optional PGM output for the Figure-4 slab")
	)
	flag.Parse()

	cs, err := grape5.NewCosmoSphere(grape5.CosmoSphereParams{GridN: *grid, Seed: *seed}, *steps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sphere: N=%d particles of %.3g x 1e10 Msun, z=24 -> 0 in %d steps\n",
		cs.Sys.N(), cs.ParticleMass, *steps)

	sim, err := grape5.NewSimulation(cs.Sys, grape5.Config{
		Theta:  0.75,
		Ncrit:  256,
		Eps:    cs.GridSpacing * cs.AInit, // initial physical spacing
		DT:     cs.Schedule.DT(),
		Engine: grape5.EngineGRAPE5,
	})
	if err != nil {
		log.Fatal(err)
	}
	for s := 1; s <= *steps; s++ {
		if err := sim.Step(); err != nil {
			log.Fatal(err)
		}
		if s%(*steps/5) == 0 {
			fmt.Printf("  step %4d/%d: avg list %.0f\n", s, *steps, sim.LastStats.AvgList())
		}
	}

	// z=0 analysis: recentre, render the paper's 45x45x2.5 Mpc slab.
	sys := sim.Sys
	sys.Recenter()
	proj, err := analysis.Project(sys, analysis.Figure4Slab(50), 256, 256)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFigure-4 slab: %d particles, clustering contrast %.1f\n",
		proj.Kept, proj.ClusteringContrast())
	fmt.Println(proj.ASCII(64))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := proj.WritePGM(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	// Two-point correlation function of the final state.
	xi, err := analysis.CorrelationFunction(sys, vec.Zero, 40, 0.5, 30, 8, 2_000_000, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("two-point correlation function at z=0:")
	for _, b := range xi {
		fmt.Printf("  xi(%5.2f Mpc) = %8.2f\n", b.RMid, b.Xi)
	}
	fmt.Printf("\nGRAPE-5 modelled hardware time for the whole run: %.2f s\n",
		sim.HardwareCounters().HWSeconds())
}
