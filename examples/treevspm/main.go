// Treevspm: the algorithmic comparison behind the paper's design
// choice, done the measurable way — force accuracy per unit cost on the
// same snapshot. A cosmological sphere is evolved to z=0 with the
// treecode on the emulated GRAPE-5; on the final particle distribution
// the accelerations are then computed three ways — exact direct
// summation (reference), treecode+GRAPE-5, and the particle-mesh
// baseline — and compared.
//
// The expected result, and the reason the GRAPE lineage backed trees
// over meshes for this problem class: the tree+hardware force is
// accurate to a fraction of a percent at every radius, while PM
// degrades sharply below its mesh scale, exactly where halos live.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	grape5 "repro"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/g5"
	"repro/internal/nbody"
	"repro/internal/pm"
	"repro/internal/vec"
)

func main() {
	log.SetFlags(0)
	var (
		grid  = flag.Int("grid", 16, "IC grid per dimension (power of two)")
		steps = flag.Int("steps", 300, "timesteps z=24 -> 0")
		seed  = flag.Uint64("seed", 1, "realisation seed")
		eps   = flag.Float64("eps", 0, "softening (0 = grid spacing / 8)")
	)
	flag.Parse()

	// --- Evolve to z=0 with the paper's pipeline ----------------------
	cs, err := grape5.NewCosmoSphere(grape5.CosmoSphereParams{GridN: *grid, Seed: *seed}, *steps)
	if err != nil {
		log.Fatal(err)
	}
	soft := *eps
	if soft == 0 {
		soft = cs.GridSpacing / 8
	}
	sim, err := grape5.NewSimulation(cs.Sys, grape5.Config{
		Theta: 0.75, Ncrit: 256, Eps: soft,
		DT: cs.Schedule.DT(), Engine: grape5.EngineGRAPE5,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.Run(*steps); err != nil {
		log.Fatal(err)
	}
	s := sim.Sys
	s.Recenter()
	fmt.Printf("evolved N=%d to z=0 on the emulated GRAPE-5 (%d steps)\n\n", s.N(), *steps)

	// --- Reference forces: exact direct summation ---------------------
	ref := s.Clone()
	t0 := time.Now()
	nbody.DirectForces(ref, grape5.G, soft)
	tDirect := time.Since(t0)

	// --- Treecode + GRAPE-5 -------------------------------------------
	tree := s.Clone()
	hw, err := g5.NewSystem(g5.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	cube := tree.Bounds().Cube()
	ext := cube.MaxEdge()
	lo := math.Min(cube.Min.X, math.Min(cube.Min.Y, cube.Min.Z)) - 0.05*ext
	hi := math.Max(cube.Max.X, math.Max(cube.Max.Y, cube.Max.Z)) + 0.05*ext
	if err := hw.SetScale(lo, hi); err != nil {
		log.Fatal(err)
	}
	if err := hw.SetEps(soft); err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	tc := core.New(core.Options{Theta: 0.75, Ncrit: 256, G: grape5.G, Eps: soft}, g5.NewEngine(hw, grape5.G))
	if _, err := tc.ComputeForces(tree); err != nil {
		log.Fatal(err)
	}
	tTree := time.Since(t0)
	errTree, err := analysis.CompareForces(tree, ref)
	if err != nil {
		log.Fatal(err)
	}

	// --- Particle mesh -------------------------------------------------
	mesh := s.Clone()
	box := cube
	grow := 0.05 * ext
	box.Min = box.Min.Sub(vec.V3{X: grow, Y: grow, Z: grow})
	box.Max = box.Max.Add(vec.V3{X: grow, Y: grow, Z: grow})
	solver, err := pm.NewSolver(64, box, grape5.G)
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	if err := solver.Forces(mesh); err != nil {
		log.Fatal(err)
	}
	tPM := time.Since(t0)
	errPM, err := analysis.CompareForces(mesh, ref)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %12s %12s %12s\n", "method", "RMS err", "p99 err", "wall time")
	fmt.Printf("%-22s %12s %12s %12v\n", "direct (reference)", "-", "-", tDirect.Round(time.Millisecond))
	fmt.Printf("%-22s %11.3f%% %11.3f%% %12v\n", "treecode + GRAPE-5",
		100*errTree.RMS, 100*errTree.P99, tTree.Round(time.Millisecond))
	fmt.Printf("%-22s %11.3f%% %11.3f%% %12v  (mesh cell %.2f Mpc)\n", "particle mesh",
		100*errPM.RMS, 100*errPM.P99, tPM.Round(time.Millisecond), solver.Cell())
	fmt.Printf("\nmodelled GRAPE-5 time for the tree forces: %.4f s\n",
		hw.Counters().HWSeconds())
	fmt.Println("\nthe tree+hardware combination keeps sub-percent forces at every")
	fmt.Println("scale; PM degrades below its mesh cell — the resolution argument")
	fmt.Println("for the paper's design.")
}
