// Collision: two Plummer-sphere "galaxies" on a head-on parabolic-ish
// encounter, integrated with the treecode on the emulated GRAPE-5 —
// the kind of galaxy-interaction workload that motivated the GRAPE
// machines alongside cosmology.
//
// With -blocks the run switches to hierarchical block timesteps: the
// dense merging cores take fine steps while the halo coasts on coarse
// rungs, and the run reports how much force work the hierarchy saved
// over a shared dt at the same resolution.
package main

import (
	"flag"
	"fmt"
	"log"

	grape5 "repro"
	"repro/internal/analysis"
	"repro/internal/perf"
)

func main() {
	log.SetFlags(0)
	var (
		n      = flag.Int("n", 4000, "particles per galaxy")
		steps  = flag.Int("steps", 400, "timesteps")
		sep    = flag.Float64("sep", 6.0, "initial separation")
		vrel   = flag.Float64("v", 0.6, "approach speed")
		blocks = flag.Int("blocks", 0, "block-timestep rung levels (0 = shared dt)")
		dtmin  = flag.Float64("dtmin", 0.00125, "finest block timestep (-blocks)")
		eta    = flag.Float64("eta", 0.02, "rung criterion accuracy (-blocks)")
	)
	flag.Parse()

	// Two equal galaxies in model units, approaching along x with a
	// small impact parameter along y.
	a := grape5.Plummer(*n, 1, 1, 1, 11)
	b := grape5.Plummer(*n, 1, 1, 1, 22)
	sys := grape5.Merge(a, b,
		grape5.Vec3{X: *sep, Y: 1.0},
		grape5.Vec3{X: -*vrel},
	)
	sys.Recenter()

	cfg := grape5.Config{
		Theta:  0.75,
		Ncrit:  500,
		G:      1,
		Eps:    0.03,
		DT:     0.01,
		Engine: grape5.EngineGRAPE5,
	}
	if *blocks > 0 {
		// One block spans dtmin·2^(blocks-1); DT is inherited from it.
		cfg.DT = 0
		cfg.Blocks, cfg.DTMin, cfg.Eta = *blocks, *dtmin, *eta
	}
	sim, err := grape5.NewSimulation(sys, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.Prime(); err != nil {
		log.Fatal(err)
	}
	e0 := sim.Energy()
	if occ := sim.RungOccupancy(); occ != nil {
		fmt.Printf("initial rung occupancy: %v\n", occ)
	}

	var activeI, substeps int64
	for s := 1; s <= *steps; s++ {
		if err := sim.Step(); err != nil {
			log.Fatal(err)
		}
		activeI += sim.LastReport.ActiveI
		substeps += sim.LastReport.Substeps
		if s%(*steps/4) == 0 {
			// Distance between the two galaxies' centres (by ID halves).
			var c1, c2 grape5.Vec3
			var n1, n2 int
			half := int64(*n)
			for i := range sim.Sys.Pos {
				if sim.Sys.ID[i] < half {
					c1 = c1.Add(sim.Sys.Pos[i])
					n1++
				} else {
					c2 = c2.Add(sim.Sys.Pos[i])
					n2++
				}
			}
			d := c1.Scale(1 / float64(n1)).Sub(c2.Scale(1 / float64(n2))).Norm()
			fmt.Printf("step %4d: galaxy separation %.2f, avg list %.0f\n",
				s, d, sim.LastStats.AvgList())
		}
	}

	e1 := sim.Energy()
	fmt.Printf("\nenergy drift over the encounter: %.2e\n",
		(e1.Total()-e0.Total())/e0.Total())
	if occ := sim.RungOccupancy(); occ != nil && substeps > 0 {
		cost := perf.BlockCost{Occupancy: occ}
		measured := float64(activeI) / (float64(sim.Sys.N()) * float64(substeps))
		fmt.Printf("final rung occupancy:   %v\n", occ)
		fmt.Printf("force-eval ratio vs shared dt_min: %.3f measured, %.3f from final occupancy\n",
			measured, cost.EvalRatio())
	}

	sim.Sys.Recenter()
	proj, err := analysis.Project(sim.Sys, analysis.SlabSpec{
		XMin: -8, XMax: 8, YMin: -8, YMax: 8, ZMin: -8, ZMax: 8}, 128, 128)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("merger remnant (projected):")
	fmt.Println(proj.ASCII(64))
}
