package grape5

// Checkpoint/restart wiring: Simulation.Checkpoint persists the
// complete run state through a rotating ckpt.Store, and
// ResumeSimulation reconstructs a Simulation from a loaded checkpoint
// so that the resumed trajectory is bitwise identical to the
// uninterrupted run's.
//
// Why bitwise resume works: a checkpoint taken after step k stores the
// particle system in its exact in-memory (tree) order together with the
// post-force accelerations and potentials, and marks the integrator
// primed. The resumed leapfrog therefore consumes those accelerations
// in its next half-kick exactly as the uninterrupted run would — no
// re-priming force call, no reordering. The Morton radix sort is
// stable, so subsequent force evaluations visit particles in the same
// order; simulation time is restored as the exact float64, so the time
// accumulation sequence is identical. The one excluded piece is the
// hardware fault injector's RNG stream, which is per-process: the
// bitwise guarantee applies to fault-free configurations (and to any
// run whose injected faults are fully corrected by the guard).

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/g5"
	"repro/internal/obs"
)

// RunAux carries driver-level run state that the Simulation itself does
// not consume but a resumable checkpoint must preserve: the cosmology
// anchors of the EdS schedule and the IC seed. All zero for plain
// model-unit runs.
type RunAux struct {
	// Scale is the base cosmological scale factor at the run's start.
	Scale float64
	// T0 and Age0 anchor the EdS time-to-scale-factor mapping.
	T0, Age0 float64
	// Seed is the initial-conditions generator seed (provenance).
	Seed uint64
}

// SetAux records driver-level run state to be carried in checkpoints.
func (sim *Simulation) SetAux(aux RunAux) { sim.aux = aux }

// Aux returns the driver-level run state (restored on resume).
func (sim *Simulation) Aux() RunAux { return sim.aux }

// Primed reports whether the integrator holds valid post-force
// accelerations (after Prime, a Step, or a primed resume).
func (sim *Simulation) Primed() bool {
	switch {
	case sim.bl != nil:
		return sim.bl.Primed()
	case sim.al != nil:
		return sim.al.Primed()
	}
	return sim.lf.Primed()
}

// blockState assembles the version-2 RUNG scheduling state, or nil for
// fixed-dt runs (whose checkpoints stay version 1, byte-identical to
// the pre-block format).
func (sim *Simulation) blockState() *ckpt.BlockState {
	switch {
	case sim.bl != nil:
		return &ckpt.BlockState{
			Mode:    ckpt.ModeBlock,
			Tick:    sim.bl.Tick(),
			DTMin:   sim.cfg.DTMin,
			Eta:     sim.cfg.Eta,
			MaxRung: int64(sim.cfg.Blocks - 1),
			Rungs:   sim.bl.Rungs(),
		}
	case sim.al != nil:
		return &ckpt.BlockState{
			Mode:  ckpt.ModeAdaptive,
			DTMin: sim.cfg.DTMin,
			Eta:   sim.cfg.Eta,
		}
	}
	return nil
}

// CheckpointState assembles the scalar checkpoint state: step and time,
// the config fingerprint, the aux anchors and the whole-run cumulative
// counters (base + live, via the merged accessors).
func (sim *Simulation) CheckpointState() ckpt.State {
	rec := sim.Recovery()
	hw := sim.HardwareCounters()
	fs := sim.FaultStats()
	return ckpt.State{
		Step:  int64(sim.nsteps),
		Time:  sim.time,
		DT:    sim.cfg.DT,
		Scale: sim.aux.Scale,
		T0:    sim.aux.T0,
		Age0:  sim.aux.Age0,

		Theta:        sim.cfg.Theta,
		Eps:          sim.cfg.Eps,
		G:            sim.cfg.G,
		Ncrit:        int64(sim.cfg.Ncrit),
		LeafCap:      int64(sim.cfg.LeafCap),
		RebuildEvery: int64(sim.cfg.RebuildEvery),
		PMGrid:       int64(sim.cfg.PMGrid),
		Engine:       int64(sim.cfg.Engine),
		Shards:       int64(sim.cfg.Shards),
		Seed:         sim.aux.Seed,

		TotalInteractions: sim.TotalInteractions,

		RecChecks:   rec.Checks,
		RecRetries:  rec.Retries,
		RecCorrupt:  rec.CorruptResults,
		RecExcluded: rec.ExcludedBoards,
		RecFallback: rec.FallbackBatches,
		RecHostOnly: rec.HostOnly,

		HWInteractions: hw.Interactions,
		HWPipeSeconds:  hw.PipeSeconds,
		HWBusSeconds:   hw.BusSeconds,
		HWBytes:        hw.BytesTransferred,
		HWRuns:         hw.Runs,
		HWJPasses:      hw.JPasses,
		HWClamps:       hw.RangeClamps,

		FaultBitFlips:   fs.JMemBitFlips,
		FaultStuckCalls: fs.StuckPipeCalls,
		FaultBusErrors:  fs.BusErrors,
		FaultTransients: fs.Transients,

		Primed: sim.Primed(),
	}
}

// Checkpoint durably saves the complete run state into the store (atomic
// write + rotation + manifest). The cost is recorded on the checkpoint
// phase and counters and folded into LastReport, so the completed step's
// telemetry shows what the durability cost.
func (sim *Simulation) Checkpoint(store *ckpt.Store) (ckpt.SaveInfo, error) {
	if store == nil {
		return ckpt.SaveInfo{}, fmt.Errorf("grape5: nil checkpoint store")
	}
	t := sim.ob.Start(obs.PhaseCheckpoint)
	info, err := store.Save(&ckpt.Checkpoint{State: sim.CheckpointState(), Sys: sim.Sys, Block: sim.blockState()})
	t.Stop()
	if err != nil {
		return ckpt.SaveInfo{}, fmt.Errorf("grape5: checkpoint at step %d: %w", sim.nsteps, err)
	}
	sim.ob.Add(obs.CntCkptBytes, info.Bytes)
	sim.ob.Add(obs.CntCkptWrites, 1)
	sim.LastReport.Phases.Checkpoint += sim.ob.Seconds(obs.PhaseCheckpoint)
	sim.LastReport.CkptBytes += info.Bytes
	sim.LastReport.CkptWrites++
	return info, nil
}

// mergeFloat and mergeInt implement the fingerprint merge: zero means
// unset, the other side's value is inherited; two different non-zero
// values are a conflict the caller must surface loudly.
func mergeFloat(name string, saved, given float64) (float64, error) {
	switch {
	case given == 0:
		return saved, nil
	case saved == 0 || saved == given:
		return given, nil
	}
	return 0, fmt.Errorf("grape5: resume %s mismatch: checkpoint has %v, caller gave %v", name, saved, given)
}

func mergeInt(name string, saved, given int64) (int64, error) {
	switch {
	case given == 0:
		return saved, nil
	case saved == 0 || saved == given:
		return given, nil
	}
	return 0, fmt.Errorf("grape5: resume %s mismatch: checkpoint has %d, caller gave %d", name, saved, given)
}

// ResumeConfig merges a checkpoint's config fingerprint with the
// caller's overrides. Zero-valued caller fields inherit the checkpoint;
// a non-zero caller value conflicting with a non-zero checkpoint value
// is a loud error, never a silent preference. Engine follows the same
// rule (EngineHost is the zero value, so an explicit host-engine
// override of a GRAPE checkpoint must be resolved by the caller before
// resuming; the checkpoint's -1 means unknown and defers to the
// caller). Shards is exempt from conflict checking: the sharded cluster
// is bitwise-neutral, so a resume may change K freely — an explicit
// value wins, unset inherits.
func ResumeConfig(st ckpt.State, cfg Config) (Config, error) {
	out := cfg
	var err error
	if out.Theta, err = mergeFloat("theta", st.Theta, cfg.Theta); err != nil {
		return Config{}, err
	}
	if out.Eps, err = mergeFloat("eps", st.Eps, cfg.Eps); err != nil {
		return Config{}, err
	}
	if out.G, err = mergeFloat("G", st.G, cfg.G); err != nil {
		return Config{}, err
	}
	if out.DT, err = mergeFloat("dt", st.DT, cfg.DT); err != nil {
		return Config{}, err
	}
	var v int64
	if v, err = mergeInt("ncrit", st.Ncrit, int64(cfg.Ncrit)); err != nil {
		return Config{}, err
	}
	out.Ncrit = int(v)
	if v, err = mergeInt("leafcap", st.LeafCap, int64(cfg.LeafCap)); err != nil {
		return Config{}, err
	}
	out.LeafCap = int(v)
	if v, err = mergeInt("rebuild-every", st.RebuildEvery, int64(cfg.RebuildEvery)); err != nil {
		return Config{}, err
	}
	out.RebuildEvery = int(v)
	if v, err = mergeInt("pm-grid", st.PMGrid, int64(cfg.PMGrid)); err != nil {
		return Config{}, err
	}
	out.PMGrid = int(v)
	if st.Engine >= 0 {
		// The checkpoint's engine is known (0 = host is a real value here,
		// unlike the zero-means-unset fields above; -1 means unknown). A
		// non-host caller value that disagrees is a conflict; the
		// zero-valued EngineHost inherits, since it is indistinguishable
		// from unset — an explicit engine downgrade must be resolved by
		// the driver before resuming.
		if cfg.Engine != EngineHost && int64(cfg.Engine) != st.Engine {
			return Config{}, fmt.Errorf("grape5: resume engine mismatch: checkpoint ran engine %d, caller gave %d", st.Engine, cfg.Engine)
		}
		out.Engine = EngineKind(st.Engine)
	}
	if cfg.Shards == 0 {
		out.Shards = int(st.Shards)
	}
	if out.DT <= 0 {
		return Config{}, fmt.Errorf("grape5: resume has no timestep: checkpoint lacks DT (legacy snapshot?) and none was given")
	}
	return out, nil
}

// mergeBlockConfig folds a checkpoint's RUNG scheduling state into the
// caller's config under the same inherit-or-conflict rules as the
// scalar fingerprint. Scheduling mode cannot change mid-run: a block or
// adaptive checkpoint rejects a caller demanding the other mode, and a
// version-1 checkpoint (no Block) rejects any caller demanding either —
// the trajectory past the checkpoint would not be the checkpointed
// run's.
func mergeBlockConfig(b *ckpt.BlockState, cfg Config) (Config, error) {
	out := cfg
	if b == nil {
		if cfg.Blocks > 0 || cfg.Adaptive {
			return Config{}, fmt.Errorf("grape5: cannot switch to block/adaptive timesteps mid-run: checkpoint was taken with a fixed shared dt")
		}
		return out, nil
	}
	var err error
	switch b.Mode {
	case ckpt.ModeBlock:
		if cfg.Adaptive {
			return Config{}, fmt.Errorf("grape5: cannot switch to adaptive dt mid-run: checkpoint uses block timesteps")
		}
		var v int64
		if v, err = mergeInt("blocks", b.MaxRung+1, int64(cfg.Blocks)); err != nil {
			return Config{}, err
		}
		out.Blocks = int(v)
		if out.DTMin, err = mergeFloat("dtmin", b.DTMin, cfg.DTMin); err != nil {
			return Config{}, err
		}
	case ckpt.ModeAdaptive:
		if cfg.Blocks > 0 {
			return Config{}, fmt.Errorf("grape5: cannot switch to block timesteps mid-run: checkpoint uses adaptive dt")
		}
		out.Adaptive = true
		if out.DTMin, err = mergeFloat("dtmin", b.DTMin, cfg.DTMin); err != nil {
			return Config{}, err
		}
	default:
		return Config{}, fmt.Errorf("grape5: checkpoint has unknown scheduling mode %d", b.Mode)
	}
	if out.Eta, err = mergeFloat("eta", b.Eta, cfg.Eta); err != nil {
		return Config{}, err
	}
	return out, nil
}

// ResumeSimulation reconstructs a Simulation from a loaded checkpoint.
// The checkpoint's system is adopted in place (exact tree order, exact
// accelerations); cfg supplies overrides under the ResumeConfig merge
// rules. When the checkpoint is primed, the integrator resumes without
// a re-priming force call — the next Step is bitwise the same as the
// uninterrupted run's. Whole-run counters (recovery, hardware, faults,
// total interactions) continue from the checkpointed totals.
func ResumeSimulation(c *ckpt.Checkpoint, cfg Config) (*Simulation, error) {
	if c == nil || c.Sys == nil {
		return nil, fmt.Errorf("grape5: nil checkpoint")
	}
	st := c.State
	merged, err := ResumeConfig(st, cfg)
	if err != nil {
		return nil, err
	}
	if merged, err = mergeBlockConfig(c.Block, merged); err != nil {
		return nil, err
	}
	sim, err := NewSimulation(c.Sys, merged)
	if err != nil {
		return nil, fmt.Errorf("grape5: resuming at step %d: %w", st.Step, err)
	}
	sim.time = st.Time
	sim.nsteps = int(st.Step)
	sim.TotalInteractions = st.TotalInteractions
	sim.aux = RunAux{Scale: st.Scale, T0: st.T0, Age0: st.Age0, Seed: st.Seed}
	sim.baseRecovery = g5.Recovery{
		Checks:          st.RecChecks,
		Retries:         st.RecRetries,
		CorruptResults:  st.RecCorrupt,
		ExcludedBoards:  st.RecExcluded,
		FallbackBatches: st.RecFallback,
		HostOnly:        st.RecHostOnly,
	}
	sim.baseCounters = g5.Counters{
		Interactions:     st.HWInteractions,
		PipeSeconds:      st.HWPipeSeconds,
		BusSeconds:       st.HWBusSeconds,
		BytesTransferred: st.HWBytes,
		Runs:             st.HWRuns,
		JPasses:          st.HWJPasses,
		RangeClamps:      st.HWClamps,
	}
	sim.baseFaults = g5.FaultStats{
		JMemBitFlips:   st.FaultBitFlips,
		StuckPipeCalls: st.FaultStuckCalls,
		BusErrors:      st.FaultBusErrors,
		Transients:     st.FaultTransients,
	}
	switch {
	case sim.bl != nil:
		if err := sim.bl.SetState(c.Block.Rungs, c.Block.Tick); err != nil {
			return nil, fmt.Errorf("grape5: resuming block scheduler: %w", err)
		}
		sim.bl.SetPrimed(st.Primed)
		if st.Primed {
			// The uninterrupted run's next substep starts from a cached
			// tree (built at the last full-set rebuild and refreshed
			// since). The checkpointed system is already Morton-sorted, so
			// one deterministic rebuild reproduces exactly that tree and
			// the resumed run stays on the same refresh-vs-rebuild
			// schedule, keeping the trajectory bitwise.
			if err := sim.tc.PrimeTree(sim.Sys); err != nil {
				return nil, fmt.Errorf("grape5: priming tree for block resume: %w", err)
			}
		}
	case sim.al != nil:
		// Adaptive resume is bitwise for free: the next dt is a pure
		// function of the restored accelerations.
		sim.al.SetPrimed(st.Primed)
	default:
		sim.lf.SetPrimed(st.Primed)
	}
	return sim, nil
}
