package nbody

import (
	"math"

	"repro/internal/rng"
	"repro/internal/vec"
)

// Plummer samples an N-particle Plummer sphere of total mass m and
// scale radius a in virial equilibrium (Aarseth, Hénon & Wielen 1974),
// in units with gravitational constant g. Positions are truncated at
// ten scale radii. The model is recentred so the centre of mass is at
// the origin and at rest.
func Plummer(n int, m, a, g float64, src *rng.Source) *System {
	s := New(n)
	mi := m / float64(n)
	for i := 0; i < n; i++ {
		s.Mass[i] = mi
		// Radius from the inverse cumulative mass profile.
		var r float64
		for {
			x := src.Float64()
			if x == 0 {
				continue
			}
			r = a / math.Sqrt(math.Pow(x, -2.0/3.0)-1)
			if r < 10*a {
				break
			}
		}
		ux, uy, uz := src.UnitSphere()
		s.Pos[i] = vec.V3{X: r * ux, Y: r * uy, Z: r * uz}

		// Velocity from the distribution function g(q) = q²(1-q²)^{7/2}
		// by von Neumann rejection (q = v/v_esc).
		var q float64
		for {
			x := src.Float64()
			y := 0.1 * src.Float64()
			if y < x*x*math.Pow(1-x*x, 3.5) {
				q = x
				break
			}
		}
		vesc := math.Sqrt(2*g*m) * math.Pow(r*r+a*a, -0.25)
		v := q * vesc
		vx, vy, vz := src.UnitSphere()
		s.Vel[i] = vec.V3{X: v * vx, Y: v * vy, Z: v * vz}
	}
	s.Recenter()
	return s
}

// UniformSphere samples n particles uniformly in a sphere of radius r
// with total mass m and zero velocities (cold collapse initial
// conditions).
func UniformSphere(n int, m, r float64, src *rng.Source) *System {
	s := New(n)
	mi := m / float64(n)
	for i := 0; i < n; i++ {
		s.Mass[i] = mi
		x, y, z := src.InBall()
		s.Pos[i] = vec.V3{X: r * x, Y: r * y, Z: r * z}
	}
	return s
}

// TwoBody builds a two-particle system with masses m1, m2 on a circular
// orbit of separation d about their barycentre, in units with
// gravitational constant g. It is the Kepler reference for integrator
// tests.
func TwoBody(m1, m2, d, g float64) *System {
	s := New(2)
	s.Mass[0], s.Mass[1] = m1, m2
	mtot := m1 + m2
	// Positions about the barycentre.
	s.Pos[0] = vec.V3{X: -d * m2 / mtot}
	s.Pos[1] = vec.V3{X: d * m1 / mtot}
	// Circular orbital speed: v_rel = sqrt(G M / d), split by mass ratio.
	vrel := math.Sqrt(g * mtot / d)
	s.Vel[0] = vec.V3{Y: -vrel * m2 / mtot}
	s.Vel[1] = vec.V3{Y: vrel * m1 / mtot}
	return s
}

// OrbitalPeriod returns the Kepler period of a two-body orbit with
// semi-major axis a and total mass mtot in units with constant g.
func OrbitalPeriod(a, mtot, g float64) float64 {
	return 2 * math.Pi * math.Sqrt(a*a*a/(g*mtot))
}

// Merge returns a new system containing all particles of a followed by
// all particles of b, with b's positions and velocities offset.
// It implements the two-galaxy collision setup.
func Merge(a, b *System, dPos, dVel vec.V3) *System {
	n := a.N() + b.N()
	s := New(n)
	for i := 0; i < a.N(); i++ {
		s.Pos[i] = a.Pos[i]
		s.Vel[i] = a.Vel[i]
		s.Mass[i] = a.Mass[i]
	}
	for i := 0; i < b.N(); i++ {
		j := a.N() + i
		s.Pos[j] = b.Pos[i].Add(dPos)
		s.Vel[j] = b.Vel[i].Add(dVel)
		s.Mass[j] = b.Mass[i]
	}
	for i := range s.ID {
		s.ID[i] = int64(i)
	}
	return s
}
