package nbody

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/vec"
)

func TestDirectForcesTwoBody(t *testing.T) {
	// Two unit masses separated by d=2 along x, no softening:
	// a = G m / d² toward each other.
	const g = 1.0
	s := New(2)
	s.Mass[0], s.Mass[1] = 1, 1
	s.Pos[0] = vec.V3{X: -1}
	s.Pos[1] = vec.V3{X: 1}
	DirectForces(s, g, 0)
	want := 0.25
	if math.Abs(s.Acc[0].X-want) > 1e-14 || math.Abs(s.Acc[1].X+want) > 1e-14 {
		t.Errorf("acc = %v, %v; want ±%v", s.Acc[0], s.Acc[1], want)
	}
	if s.Acc[0].Y != 0 || s.Acc[0].Z != 0 {
		t.Error("transverse acceleration should vanish")
	}
	// Potential: -G m / r = -0.5 each.
	if math.Abs(s.Pot[0]+0.5) > 1e-14 {
		t.Errorf("pot = %v, want -0.5", s.Pot[0])
	}
}

func TestDirectForcesSoftening(t *testing.T) {
	s := New(2)
	s.Mass[0], s.Mass[1] = 1, 1
	s.Pos[1] = vec.V3{X: 1}
	DirectForces(s, 1, 1) // eps = separation
	// a = d / (d²+eps²)^{3/2} = 1/2^{3/2}
	want := 1 / math.Pow(2, 1.5)
	if math.Abs(s.Acc[0].X-want) > 1e-14 {
		t.Errorf("softened acc = %v, want %v", s.Acc[0].X, want)
	}
}

func TestDirectForcesNewtonsThirdLaw(t *testing.T) {
	r := rng.New(17)
	s := New(64)
	for i := range s.Pos {
		s.Pos[i] = vec.V3{X: r.Normal(), Y: r.Normal(), Z: r.Normal()}
		s.Mass[i] = 0.5 + r.Float64()
	}
	DirectForces(s, 1, 0.01)
	var f vec.V3
	for i := range s.Acc {
		f = f.MulAdd(s.Mass[i], s.Acc[i])
	}
	// Total force must vanish (momentum conservation).
	if f.Norm() > 1e-10 {
		t.Errorf("net force = %v", f)
	}
}

func TestPotentialEnergyConsistency(t *testing.T) {
	r := rng.New(23)
	s := New(32)
	for i := range s.Pos {
		s.Pos[i] = vec.V3{X: r.Normal(), Y: r.Normal(), Z: r.Normal()}
		s.Mass[i] = 1
	}
	const g, eps = 1.0, 0.05
	DirectForces(s, g, eps)
	pairwise := PotentialEnergy(s, g, eps)
	fromPot := PotentialEnergyFromPot(s)
	if math.Abs(pairwise-fromPot) > 1e-10*math.Abs(pairwise) {
		t.Errorf("PE pairwise %v != from-pot %v", pairwise, fromPot)
	}
}

func TestDirectForcesParallelMatchesSerial(t *testing.T) {
	r := rng.New(31)
	s := New(100)
	for i := range s.Pos {
		s.Pos[i] = vec.V3{X: r.Normal(), Y: r.Normal(), Z: r.Normal()}
		s.Mass[i] = 1 + r.Float64()
	}
	s2 := s.Clone()
	DirectForces(s, 1, 0.01)
	// Serial reference.
	serialForces(s2, 1, 0.01)
	for i := range s.Acc {
		if s.Acc[i].Sub(s2.Acc[i]).Norm() > 1e-12 {
			t.Fatalf("parallel/serial mismatch at %d: %v vs %v", i, s.Acc[i], s2.Acc[i])
		}
	}
}

func serialForces(s *System, g, eps float64) {
	n := s.N()
	eps2 := eps * eps
	for i := 0; i < n; i++ {
		var acc vec.V3
		var pot float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := s.Pos[j].Sub(s.Pos[i])
			r2 := d.Norm2() + eps2
			inv := 1 / math.Sqrt(r2)
			acc = acc.MulAdd(s.Mass[j]*inv/r2, d)
			pot -= s.Mass[j] * inv
		}
		s.Acc[i] = acc.Scale(g)
		s.Pot[i] = g * pot
	}
}
