package nbody

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/vec"
)

// DirectForces computes softened gravitational accelerations and
// specific potentials for every particle by exact O(N²) summation in
// float64. g is the gravitational constant, eps the Plummer softening
// length. This is the accuracy reference against which both the tree
// approximation and the GRAPE-5 arithmetic are measured, and the
// baseline algorithm for the O(N²)-vs-O(N log N) comparisons.
//
// The outer loop is parallelised across GOMAXPROCS workers.
func DirectForces(s *System, g, eps float64) {
	n := s.N()
	eps2 := eps * eps
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				var ax, ay, az, pot float64
				pi := s.Pos[i]
				for j := 0; j < n; j++ {
					if j == i {
						continue
					}
					dx := s.Pos[j].X - pi.X
					dy := s.Pos[j].Y - pi.Y
					dz := s.Pos[j].Z - pi.Z
					r2 := dx*dx + dy*dy + dz*dz + eps2
					//lint:ignore hostk direct summation is the accuracy reference; it must stay independent of the kernels it validates
					inv := 1 / math.Sqrt(r2)
					inv3 := inv / r2
					mj := s.Mass[j]
					ax += mj * inv3 * dx
					ay += mj * inv3 * dy
					az += mj * inv3 * dz
					pot -= mj * inv
				}
				s.Acc[i] = vec.V3{X: g * ax, Y: g * ay, Z: g * az}
				s.Pot[i] = g * pot
			}
		}(lo, hi)
	}
	wg.Wait()
}

// PotentialEnergy returns the exact total gravitational potential
// energy, -G Σ_{i<j} m_i m_j / sqrt(r² + eps²), by direct summation.
func PotentialEnergy(s *System, g, eps float64) float64 {
	n := s.N()
	eps2 := eps * eps
	var pe float64
	for i := 0; i < n; i++ {
		pi := s.Pos[i]
		mi := s.Mass[i]
		for j := i + 1; j < n; j++ {
			dx := s.Pos[j].X - pi.X
			dy := s.Pos[j].Y - pi.Y
			dz := s.Pos[j].Z - pi.Z
			r2 := dx*dx + dy*dy + dz*dz + eps2
			pe -= mi * s.Mass[j] / math.Sqrt(r2)
		}
	}
	return g * pe
}

// PotentialEnergyFromPot returns the total potential energy from the
// per-particle specific potentials filled in by a force engine:
// U = ½ Σ m_i Pot_i. Valid when Pot holds Σ_j -G m_j/r_ij.
func PotentialEnergyFromPot(s *System) float64 {
	var pe float64
	for i := range s.Pot {
		pe += 0.5 * s.Mass[i] * s.Pot[i]
	}
	return pe
}
