package nbody

import (
	"math"

	"repro/internal/rng"
	"repro/internal/vec"
)

// Hernquist samples an N-particle Hernquist (1990) sphere of total mass
// m and scale radius a in equilibrium, in units with gravitational
// constant g. The Hernquist profile rho ∝ 1/(r (r+a)³) is the standard
// model for galaxy bulges and dark-matter halos; its cumulative mass
// M(r) = m r²/(r+a)² inverts in closed form.
func Hernquist(n int, m, a, g float64, src *rng.Source) *System {
	s := New(n)
	mi := m / float64(n)
	for i := 0; i < n; i++ {
		s.Mass[i] = mi
		// Invert M(r)/m = x: r = a sqrt(x)/(1-sqrt(x)). Truncate at 50a.
		var r float64
		for {
			x := src.Float64()
			sq := math.Sqrt(x)
			if sq >= 1 {
				continue
			}
			r = a * sq / (1 - sq)
			if r < 50*a {
				break
			}
		}
		ux, uy, uz := src.UnitSphere()
		s.Pos[i] = vec.V3{X: r * ux, Y: r * uy, Z: r * uz}

		// Velocity from the isotropic distribution function via
		// von Neumann rejection against an envelope of v² f(E) with
		// f evaluated numerically from the fitting form of Hernquist
		// (1990) eq. 17. For simplicity and robustness we use the local
		// isothermal approximation with the Jeans dispersion, which
		// yields a near-equilibrium model adequate for test problems:
		// sigma²(r) from the Jeans equation for the Hernquist pair.
		sigma2 := hernquistSigma2(r, m, a, g)
		vesc2 := 2 * g * m / (r + a) // escape speed: -2Φ(r)
		var vx, vy, vz float64
		for {
			vx = src.Normal() * math.Sqrt(sigma2)
			vy = src.Normal() * math.Sqrt(sigma2)
			vz = src.Normal() * math.Sqrt(sigma2)
			if vx*vx+vy*vy+vz*vz < 0.95*vesc2 {
				break
			}
		}
		s.Vel[i] = vec.V3{X: vx, Y: vy, Z: vz}
	}
	s.Recenter()
	return s
}

// hernquistSigma2 returns the isotropic Jeans radial velocity
// dispersion of the Hernquist model (Hernquist 1990, eq. 10).
func hernquistSigma2(r, m, a, g float64) float64 {
	if r <= 0 {
		r = 1e-6 * a
	}
	x := r / a
	// sigma_r² = (G m / a) * x(1+x)³ ln((1+x)/x)
	//            - (G m r / a²) (25 + 52x + 42x² + 12x³) / (12 (1+x))
	term1 := g * m / a * x * math.Pow(1+x, 3) * math.Log((1+x)/x)
	term2 := g * m * r / (a * a) * (25 + 52*x + 42*x*x + 12*x*x*x) / (12 * (1 + x))
	s2 := term1 - term2
	if s2 < 0 {
		return 0
	}
	return s2
}

// ExponentialDisk samples a razor-thin exponential disk of total mass m
// and scale length rd, thickened vertically with scale height zd, on
// near-circular orbits in its own midplane potential approximated by
// the spherical enclosed mass. It is a qualitative galaxy-disk model
// for collision demos, not a rigorous equilibrium.
func ExponentialDisk(n int, m, rd, zd, g float64, src *rng.Source) *System {
	s := New(n)
	mi := m / float64(n)
	for i := 0; i < n; i++ {
		s.Mass[i] = mi
		// Radius from the exponential-disk cumulative mass via
		// rejection on r e^{-r/rd}.
		var r float64
		for {
			r = -rd * math.Log(src.Float64()*src.Float64()) // Gamma(2) deviate: surface density ∝ r e^{-r/rd}
			if r < 10*rd {
				break
			}
		}
		phi := src.Uniform(0, 2*math.Pi)
		z := zd * src.Normal()
		s.Pos[i] = vec.V3{X: r * math.Cos(phi), Y: r * math.Sin(phi), Z: z}

		// Circular speed from the enclosed disk mass (spherical
		// approximation): M(<r) = m (1 - (1+r/rd) e^{-r/rd}).
		enc := m * (1 - (1+r/rd)*math.Exp(-r/rd))
		vc := math.Sqrt(g * enc / math.Max(r, 1e-6*rd))
		// Small radial/vertical velocity dispersion for stability.
		sig := 0.1 * vc
		s.Vel[i] = vec.V3{
			X: -vc*math.Sin(phi) + sig*src.Normal(),
			Y: vc*math.Cos(phi) + sig*src.Normal(),
			Z: sig * src.Normal(),
		}
	}
	s.Recenter()
	return s
}
