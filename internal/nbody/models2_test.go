package nbody

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestHernquistBasics(t *testing.T) {
	const n = 4000
	s := Hernquist(n, 1, 1, 1, rng.New(1))
	if s.N() != n {
		t.Fatalf("N = %d", s.N())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.TotalMass()-1) > 1e-12 {
		t.Errorf("mass = %v", s.TotalMass())
	}
	if s.CenterOfMass().Norm() > 1e-12 {
		t.Errorf("COM = %v", s.CenterOfMass())
	}
}

func TestHernquistHalfMassRadius(t *testing.T) {
	// Hernquist half-mass radius: r½ = a/(sqrt(2)-1) ≈ 2.414 a.
	const n = 8000
	s := Hernquist(n, 1, 1, 1, rng.New(2))
	want := 1 / (math.Sqrt2 - 1)
	in := 0
	for _, p := range s.Pos {
		if p.Norm() < want {
			in++
		}
	}
	frac := float64(in) / n
	if math.Abs(frac-0.5) > 0.03 {
		t.Errorf("mass inside r½: %v, want ~0.5", frac)
	}
}

func TestHernquistNearEquilibrium(t *testing.T) {
	// The Jeans-based sampling is approximate; virial ratio should
	// still be within ~15% of unity.
	const n = 6000
	s := Hernquist(n, 1, 1, 1, rng.New(3))
	ke := s.KineticEnergy()
	pe := PotentialEnergy(s, 1, 0)
	virial := -2 * ke / pe
	if virial < 0.8 || virial > 1.2 {
		t.Errorf("virial ratio = %v", virial)
	}
}

func TestHernquistSigma2(t *testing.T) {
	// Dispersion is positive and vanishes at large radii.
	if s := hernquistSigma2(1, 1, 1, 1); s <= 0 {
		t.Errorf("sigma²(a) = %v", s)
	}
	small := hernquistSigma2(100, 1, 1, 1)
	if small < 0 || small > hernquistSigma2(1, 1, 1, 1) {
		t.Errorf("sigma² at 100a = %v, should be small and positive", small)
	}
	if s := hernquistSigma2(0, 1, 1, 1); s < 0 {
		t.Errorf("sigma²(0) = %v", s)
	}
}

func TestExponentialDiskBasics(t *testing.T) {
	const n = 5000
	s := ExponentialDisk(n, 1, 1, 0.05, 1, rng.New(4))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.TotalMass()-1) > 1e-12 {
		t.Errorf("mass = %v", s.TotalMass())
	}
	// Thin: RMS |z| far below RMS cylindrical radius.
	var sumZ2, sumR2 float64
	for _, p := range s.Pos {
		sumZ2 += p.Z * p.Z
		sumR2 += p.X*p.X + p.Y*p.Y
	}
	if math.Sqrt(sumZ2/n) > 0.2*math.Sqrt(sumR2/n) {
		t.Errorf("disk not thin: z_rms=%v r_rms=%v", math.Sqrt(sumZ2/n), math.Sqrt(sumR2/n))
	}
}

func TestExponentialDiskRotates(t *testing.T) {
	const n = 5000
	s := ExponentialDisk(n, 1, 1, 0.05, 1, rng.New(5))
	// Net angular momentum about z must be large and consistent in sign.
	var lz float64
	for i := range s.Pos {
		lz += s.Mass[i] * (s.Pos[i].X*s.Vel[i].Y - s.Pos[i].Y*s.Vel[i].X)
	}
	if lz <= 0 {
		t.Errorf("disk angular momentum = %v, want positive (prograde)", lz)
	}
	// Tangential speed dominates: KE mostly rotational.
	var vrot2, vtot2 float64
	for i := range s.Pos {
		r := math.Hypot(s.Pos[i].X, s.Pos[i].Y)
		if r == 0 {
			continue
		}
		// Tangential unit vector (-y/r, x/r).
		vt := (-s.Pos[i].Y*s.Vel[i].X + s.Pos[i].X*s.Vel[i].Y) / r
		vrot2 += vt * vt
		vtot2 += s.Vel[i].Norm2()
	}
	if vrot2/vtot2 < 0.7 {
		t.Errorf("rotational KE fraction = %v, want > 0.7", vrot2/vtot2)
	}
}

func TestDiskScaleLength(t *testing.T) {
	// Half-mass radius of an exponential disk: R½ ≈ 1.678 rd.
	const n = 10000
	s := ExponentialDisk(n, 1, 2, 0.05, 1, rng.New(6))
	want := 1.678 * 2
	in := 0
	for _, p := range s.Pos {
		if math.Hypot(p.X, p.Y) < want {
			in++
		}
	}
	frac := float64(in) / n
	if math.Abs(frac-0.5) > 0.04 {
		t.Errorf("mass inside R½ = %v, want ~0.5", frac)
	}
}
