package nbody

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/vec"
)

func TestNewSystem(t *testing.T) {
	s := New(5)
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	for i, id := range s.ID {
		if id != int64(i) {
			t.Errorf("ID[%d] = %d", i, id)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := New(3)
	s.Pos[0] = vec.V3{X: 1}
	c := s.Clone()
	c.Pos[0] = vec.V3{X: 2}
	if s.Pos[0].X != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestSwap(t *testing.T) {
	s := New(2)
	s.Pos[0], s.Pos[1] = vec.V3{X: 1}, vec.V3{X: 2}
	s.Mass[0], s.Mass[1] = 10, 20
	s.Swap(0, 1)
	if s.Pos[0].X != 2 || s.Mass[0] != 20 || s.ID[0] != 1 {
		t.Errorf("Swap incomplete: %+v", s)
	}
}

func TestApplyOrder(t *testing.T) {
	s := New(3)
	for i := range s.Pos {
		s.Pos[i] = vec.V3{X: float64(i)}
		s.Mass[i] = float64(i + 1)
	}
	if err := s.ApplyOrder([]int{2, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if s.Pos[0].X != 2 || s.Pos[1].X != 0 || s.Pos[2].X != 1 {
		t.Errorf("positions after order: %v", s.Pos)
	}
	if s.ID[0] != 2 {
		t.Errorf("IDs not permuted: %v", s.ID)
	}
}

func TestApplyOrderRejectsBadPermutation(t *testing.T) {
	s := New(3)
	if err := s.ApplyOrder([]int{0, 0, 1}); err == nil {
		t.Error("duplicate index accepted")
	}
	if err := s.ApplyOrder([]int{0, 1}); err == nil {
		t.Error("short order accepted")
	}
	if err := s.ApplyOrder([]int{0, 1, 3}); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestBounds(t *testing.T) {
	s := New(2)
	s.Pos[0] = vec.V3{X: -1, Y: 2, Z: 0}
	s.Pos[1] = vec.V3{X: 3, Y: -4, Z: 5}
	b := s.Bounds()
	if b.Min != (vec.V3{X: -1, Y: -4, Z: 0}) || b.Max != (vec.V3{X: 3, Y: 2, Z: 5}) {
		t.Errorf("Bounds = %+v", b)
	}
}

func TestCenterOfMassAndRecenter(t *testing.T) {
	s := New(2)
	s.Pos[0] = vec.V3{X: 0}
	s.Pos[1] = vec.V3{X: 2}
	s.Mass[0], s.Mass[1] = 1, 3
	com := s.CenterOfMass()
	if math.Abs(com.X-1.5) > 1e-14 {
		t.Errorf("COM = %v", com)
	}
	s.Vel[0] = vec.V3{Y: 4}
	s.Recenter()
	if s.CenterOfMass().Norm() > 1e-14 {
		t.Error("Recenter did not zero the COM")
	}
	if s.MeanVelocity().Norm() > 1e-14 {
		t.Error("Recenter did not zero the mean velocity")
	}
}

func TestKineticEnergy(t *testing.T) {
	s := New(1)
	s.Mass[0] = 2
	s.Vel[0] = vec.V3{X: 3}
	if ke := s.KineticEnergy(); ke != 9 {
		t.Errorf("KE = %v, want 9", ke)
	}
}

func TestValidate(t *testing.T) {
	s := New(2)
	s.Mass[0], s.Mass[1] = 1, 1
	if err := s.Validate(); err != nil {
		t.Errorf("valid system rejected: %v", err)
	}
	s.Mass[1] = 0
	if err := s.Validate(); err == nil {
		t.Error("zero mass accepted")
	}
	s.Mass[1] = 1
	s.Pos[0] = vec.V3{X: math.NaN()}
	if err := s.Validate(); err == nil {
		t.Error("NaN position accepted")
	}
}

// Property: ApplyOrder with a random permutation preserves the multiset
// of (ID, mass) pairs.
func TestApplyOrderPreservesParticlesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(20)
		s := New(n)
		for i := range s.Mass {
			s.Mass[i] = 1 + r.Float64()
		}
		masses := map[int64]float64{}
		for i := range s.ID {
			masses[s.ID[i]] = s.Mass[i]
		}
		// Fisher-Yates permutation.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		for i := n - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		if err := s.ApplyOrder(order); err != nil {
			return false
		}
		for i := range s.ID {
			if masses[s.ID[i]] != s.Mass[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
