// Package nbody provides the particle-system representation used by
// the treecode, reference direct-summation gravity, standard model
// generators (Plummer sphere, uniform sphere, cold collapse, two-body)
// and diagnostics (kinetic/potential energy, centre of mass).
//
// Particles are stored in structure-of-arrays layout: the tree build,
// the GRAPE host interface and the integrator all stream over single
// coordinate arrays, and SoA keeps those loops cache-friendly — the
// same reason the real GRAPE host library works on flat arrays.
package nbody

import (
	"fmt"

	"repro/internal/vec"
)

// System is a collection of gravitating particles in SoA layout.
type System struct {
	// Pos, Vel, Acc hold positions, velocities, accelerations.
	Pos []vec.V3
	Vel []vec.V3
	Acc []vec.V3
	// Mass holds particle masses.
	Mass []float64
	// Pot holds specific potentials (filled by force engines that
	// compute it; otherwise zero).
	Pot []float64
	// ID holds stable particle identifiers, preserved across the
	// reorderings done by the tree build.
	ID []int64
}

// New allocates a system of n particles with zeroed state.
func New(n int) *System {
	s := &System{
		Pos:  make([]vec.V3, n),
		Vel:  make([]vec.V3, n),
		Acc:  make([]vec.V3, n),
		Mass: make([]float64, n),
		Pot:  make([]float64, n),
		ID:   make([]int64, n),
	}
	for i := range s.ID {
		s.ID[i] = int64(i)
	}
	return s
}

// N returns the particle count.
func (s *System) N() int { return len(s.Pos) }

// Clone returns a deep copy of the system.
func (s *System) Clone() *System {
	c := &System{
		Pos:  append([]vec.V3(nil), s.Pos...),
		Vel:  append([]vec.V3(nil), s.Vel...),
		Acc:  append([]vec.V3(nil), s.Acc...),
		Mass: append([]float64(nil), s.Mass...),
		Pot:  append([]float64(nil), s.Pot...),
		ID:   append([]int64(nil), s.ID...),
	}
	return c
}

// Swap exchanges particles i and j in all arrays. It implements the
// permutation primitive used by Morton sorting.
func (s *System) Swap(i, j int) {
	s.Pos[i], s.Pos[j] = s.Pos[j], s.Pos[i]
	s.Vel[i], s.Vel[j] = s.Vel[j], s.Vel[i]
	s.Acc[i], s.Acc[j] = s.Acc[j], s.Acc[i]
	s.Mass[i], s.Mass[j] = s.Mass[j], s.Mass[i]
	s.Pot[i], s.Pot[j] = s.Pot[j], s.Pot[i]
	s.ID[i], s.ID[j] = s.ID[j], s.ID[i]
}

// ApplyOrder permutes the system so that new position k holds previous
// particle order[k]. order must be a permutation of [0, N).
func (s *System) ApplyOrder(order []int) error {
	return s.ApplyOrderScratch(order, &PermScratch{})
}

// PermScratch holds the reusable gather buffers of ApplyOrderScratch.
// After each call the scratch owns the system's previous arrays, so a
// scratch reused across steps makes the permutation allocation-free.
type PermScratch struct {
	pos, vel, acc []vec.V3
	mass, pot     []float64
	id            []int64
	seen          []bool
}

// ApplyOrderScratch is ApplyOrder gathering through caller-owned
// scratch: the permuted arrays are written into scr's buffers (grown
// only when too small) and swapped with the system's, leaving the old
// arrays in scr for the next call.
func (s *System) ApplyOrderScratch(order []int, scr *PermScratch) error {
	n := s.N()
	if len(order) != n {
		return fmt.Errorf("nbody: order length %d != N %d", len(order), n)
	}
	if cap(scr.seen) < n {
		scr.seen = make([]bool, n)
	}
	seen := scr.seen[:n]
	for i := range seen {
		seen[i] = false
	}
	for _, idx := range order {
		if idx < 0 || idx >= n || seen[idx] {
			return fmt.Errorf("nbody: order is not a permutation")
		}
		seen[idx] = true
	}
	if cap(scr.pos) < n {
		scr.pos = make([]vec.V3, n)
		scr.vel = make([]vec.V3, n)
		scr.acc = make([]vec.V3, n)
		scr.mass = make([]float64, n)
		scr.pot = make([]float64, n)
		scr.id = make([]int64, n)
	}
	pos := scr.pos[:n]
	velv := scr.vel[:n]
	acc := scr.acc[:n]
	mass := scr.mass[:n]
	pot := scr.pot[:n]
	id := scr.id[:n]
	for k, idx := range order {
		pos[k] = s.Pos[idx]
		velv[k] = s.Vel[idx]
		acc[k] = s.Acc[idx]
		mass[k] = s.Mass[idx]
		pot[k] = s.Pot[idx]
		id[k] = s.ID[idx]
	}
	scr.pos, scr.vel, scr.acc, scr.mass, scr.pot, scr.id =
		s.Pos, s.Vel, s.Acc, s.Mass, s.Pot, s.ID
	s.Pos, s.Vel, s.Acc, s.Mass, s.Pot, s.ID = pos, velv, acc, mass, pot, id
	return nil
}

// Bounds returns the axis-aligned bounding box of all positions.
func (s *System) Bounds() vec.Box {
	b := vec.EmptyBox()
	for _, p := range s.Pos {
		b = b.Extend(p)
	}
	return b
}

// TotalMass returns the sum of particle masses.
func (s *System) TotalMass() float64 {
	var m float64
	for _, mi := range s.Mass {
		m += mi
	}
	return m
}

// CenterOfMass returns the mass-weighted mean position.
func (s *System) CenterOfMass() vec.V3 {
	var com vec.V3
	var m float64
	for i, p := range s.Pos {
		com = com.MulAdd(s.Mass[i], p)
		m += s.Mass[i]
	}
	if m == 0 {
		return vec.Zero
	}
	return com.Scale(1 / m)
}

// MeanVelocity returns the mass-weighted mean velocity.
func (s *System) MeanVelocity() vec.V3 {
	var mv vec.V3
	var m float64
	for i, v := range s.Vel {
		mv = mv.MulAdd(s.Mass[i], v)
		m += s.Mass[i]
	}
	if m == 0 {
		return vec.Zero
	}
	return mv.Scale(1 / m)
}

// KineticEnergy returns Σ ½ m v².
func (s *System) KineticEnergy() float64 {
	var ke float64
	for i, v := range s.Vel {
		ke += 0.5 * s.Mass[i] * v.Norm2()
	}
	return ke
}

// Recenter shifts positions and velocities so the centre of mass is at
// the origin and at rest.
func (s *System) Recenter() {
	com := s.CenterOfMass()
	mv := s.MeanVelocity()
	for i := range s.Pos {
		s.Pos[i] = s.Pos[i].Sub(com)
		s.Vel[i] = s.Vel[i].Sub(mv)
	}
}

// Validate checks structural invariants: equal array lengths, finite
// positions and velocities, positive masses.
func (s *System) Validate() error {
	n := s.N()
	if len(s.Vel) != n || len(s.Acc) != n || len(s.Mass) != n || len(s.Pot) != n || len(s.ID) != n {
		return fmt.Errorf("nbody: inconsistent array lengths")
	}
	for i := 0; i < n; i++ {
		if !s.Pos[i].IsFinite() {
			return fmt.Errorf("nbody: particle %d has non-finite position", i)
		}
		if !s.Vel[i].IsFinite() {
			return fmt.Errorf("nbody: particle %d has non-finite velocity", i)
		}
		if s.Mass[i] <= 0 {
			return fmt.Errorf("nbody: particle %d has non-positive mass %v", i, s.Mass[i])
		}
	}
	return nil
}
