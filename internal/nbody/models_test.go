package nbody

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/vec"
)

func TestPlummerBasics(t *testing.T) {
	const n = 2000
	const m, a, g = 1.0, 1.0, 1.0
	s := Plummer(n, m, a, g, rng.New(42))
	if s.N() != n {
		t.Fatalf("N = %d", s.N())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.TotalMass()-m) > 1e-12 {
		t.Errorf("total mass = %v", s.TotalMass())
	}
	if s.CenterOfMass().Norm() > 1e-12 {
		t.Errorf("COM = %v", s.CenterOfMass())
	}
	if s.MeanVelocity().Norm() > 1e-12 {
		t.Errorf("mean velocity = %v", s.MeanVelocity())
	}
}

func TestPlummerVirialEquilibrium(t *testing.T) {
	// For a Plummer model in equilibrium, 2T + U ≈ 0.
	const n = 4000
	s := Plummer(n, 1, 1, 1, rng.New(7))
	ke := s.KineticEnergy()
	pe := PotentialEnergy(s, 1, 0)
	virial := (2*ke + pe) / math.Abs(pe)
	if math.Abs(virial) > 0.08 {
		t.Errorf("virial ratio (2T+U)/|U| = %v, want ~0 (sampling tolerance 8%%)", virial)
	}
	// Total energy of a Plummer sphere is -3πGM²/(64a).
	e := ke + pe
	want := -3 * math.Pi / 64
	if math.Abs(e-want)/math.Abs(want) > 0.1 {
		t.Errorf("total energy = %v, analytic %v", e, want)
	}
}

func TestPlummerHalfMassRadius(t *testing.T) {
	// The Plummer half-mass radius is a/sqrt(2^{2/3}-1) ≈ 1.3048 a.
	const n = 8000
	s := Plummer(n, 1, 1, 1, rng.New(99))
	radii := make([]float64, n)
	for i, p := range s.Pos {
		radii[i] = p.Norm()
	}
	// Median radius.
	count := 0
	want := 1.3048
	for _, r := range radii {
		if r < want {
			count++
		}
	}
	frac := float64(count) / n
	if math.Abs(frac-0.5) > 0.03 {
		t.Errorf("mass fraction inside analytic half-mass radius = %v, want ~0.5", frac)
	}
}

func TestUniformSphere(t *testing.T) {
	const n = 5000
	s := UniformSphere(n, 2, 3, rng.New(5))
	if math.Abs(s.TotalMass()-2) > 1e-12 {
		t.Errorf("mass = %v", s.TotalMass())
	}
	for i, p := range s.Pos {
		if p.Norm() > 3 {
			t.Fatalf("particle %d outside sphere: %v", i, p.Norm())
		}
		if s.Vel[i] != vec.Zero {
			t.Fatalf("particle %d not cold", i)
		}
	}
	// Uniformity: fraction within half radius should be 1/8.
	in := 0
	for _, p := range s.Pos {
		if p.Norm() < 1.5 {
			in++
		}
	}
	if frac := float64(in) / n; math.Abs(frac-0.125) > 0.02 {
		t.Errorf("inner fraction = %v, want 0.125", frac)
	}
}

func TestTwoBodyCircular(t *testing.T) {
	const g = 1.0
	s := TwoBody(3, 1, 2, g)
	// Barycentre at origin, at rest.
	if s.CenterOfMass().Norm() > 1e-14 {
		t.Errorf("COM = %v", s.CenterOfMass())
	}
	if s.MeanVelocity().Norm() > 1e-14 {
		t.Errorf("mean vel = %v", s.MeanVelocity())
	}
	// Centripetal balance: a = v²/r for each body.
	DirectForces(s, g, 0)
	for i := 0; i < 2; i++ {
		r := s.Pos[i].Norm()
		want := s.Vel[i].Norm2() / r
		got := s.Acc[i].Norm()
		if math.Abs(got-want)/want > 1e-12 {
			t.Errorf("body %d: |a| = %v, v²/r = %v", i, got, want)
		}
	}
}

func TestOrbitalPeriod(t *testing.T) {
	// G=1, M=1, a=1 → T = 2π.
	if p := OrbitalPeriod(1, 1, 1); math.Abs(p-2*math.Pi) > 1e-14 {
		t.Errorf("period = %v", p)
	}
}

func TestMerge(t *testing.T) {
	a := UniformSphere(10, 1, 1, rng.New(1))
	b := UniformSphere(20, 2, 1, rng.New(2))
	m := Merge(a, b, vec.V3{X: 10}, vec.V3{X: -1})
	if m.N() != 30 {
		t.Fatalf("merged N = %d", m.N())
	}
	if math.Abs(m.TotalMass()-3) > 1e-12 {
		t.Errorf("merged mass = %v", m.TotalMass())
	}
	// Second system must be offset.
	if m.Pos[10].Sub(b.Pos[0]).Sub(vec.V3{X: 10}).Norm() > 1e-14 {
		t.Error("offset not applied")
	}
	if m.Vel[10].Sub(b.Vel[0]).Sub(vec.V3{X: -1}).Norm() > 1e-14 {
		t.Error("velocity offset not applied")
	}
	// IDs must be unique.
	seen := map[int64]bool{}
	for _, id := range m.ID {
		if seen[id] {
			t.Fatal("duplicate ID after merge")
		}
		seen[id] = true
	}
}
