package snapio

import (
	"bytes"
	"testing"

	"repro/internal/nbody"
	"repro/internal/rng"
)

// FuzzRead: snapshot parsing must never panic on corrupt input — it
// must return an error or a valid system. Restart files travel between
// machines; a truncated or bit-flipped file must fail cleanly.
func FuzzRead(f *testing.F) {
	// Seed corpus: a valid snapshot, truncations, and bit flips.
	s := nbody.Plummer(20, 1, 1, 1, rng.New(1))
	var buf bytes.Buffer
	if err := Write(&buf, Header{Time: 1, Step: 2, Scale: 0.5}, s); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:8])
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("garbage that is not a snapshot"))
	flipped := append([]byte(nil), valid...)
	flipped[10] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		h, sys, err := Read(bytes.NewReader(data))
		if err != nil {
			return // clean failure
		}
		// Successful parse: the result must be structurally sound.
		if sys == nil {
			t.Fatal("nil system without error")
		}
		if int64(sys.N()) != h.N {
			t.Fatalf("header N %d != system N %d", h.N, sys.N())
		}
		if len(sys.Vel) != sys.N() || len(sys.Mass) != sys.N() || len(sys.ID) != sys.N() {
			t.Fatal("inconsistent arrays on successful parse")
		}
	})
}
