package snapio

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/nbody"
	"repro/internal/rng"
)

func sample(n int, seed uint64) *nbody.System {
	return nbody.Plummer(n, 1, 1, 1, rng.New(seed))
}

func TestRoundTrip(t *testing.T) {
	s := sample(500, 1)
	h := Header{Time: 1.5, Step: 42, Scale: 0.25, Eps: 0.01, Theta: 0.75}
	var buf bytes.Buffer
	if err := Write(&buf, h, s); err != nil {
		t.Fatal(err)
	}
	h2, s2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.N != 500 || h2.Time != 1.5 || h2.Step != 42 || h2.Scale != 0.25 ||
		h2.Eps != 0.01 || h2.Theta != 0.75 {
		t.Errorf("header = %+v", h2)
	}
	for i := range s.Pos {
		if s.Pos[i] != s2.Pos[i] || s.Vel[i] != s2.Vel[i] ||
			s.Mass[i] != s2.Mass[i] || s.ID[i] != s2.ID[i] {
			t.Fatalf("particle %d mismatch", i)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	s := sample(100, 2)
	path := filepath.Join(t.TempDir(), "snap.g5")
	if err := WriteFile(path, Header{Time: 2}, s); err != nil {
		t.Fatal(err)
	}
	h, s2, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.Time != 2 || s2.N() != 100 {
		t.Errorf("h=%+v n=%d", h, s2.N())
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, _, err := Read(bytes.NewReader([]byte("not a snapshot file at all"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	s := sample(50, 3)
	var buf bytes.Buffer
	if err := Write(&buf, Header{}, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{3, 8, 40, len(data) / 2, len(data) - 1} {
		if _, _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestReadRejectsWrongVersion(t *testing.T) {
	s := sample(10, 4)
	var buf bytes.Buffer
	if err := Write(&buf, Header{}, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version byte
	if _, _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("future version accepted")
	}
}

func TestEmptySystemRoundTrip(t *testing.T) {
	s := nbody.New(0)
	var buf bytes.Buffer
	if err := Write(&buf, Header{}, s); err != nil {
		t.Fatal(err)
	}
	_, s2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.N() != 0 {
		t.Errorf("N = %d", s2.N())
	}
}
