package snapio

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/nbody"
	"repro/internal/rng"
	"repro/internal/vec"
)

func sample(n int, seed uint64) *nbody.System {
	return nbody.Plummer(n, 1, 1, 1, rng.New(seed))
}

func TestRoundTrip(t *testing.T) {
	s := sample(500, 1)
	h := Header{Time: 1.5, Step: 42, Scale: 0.25, Eps: 0.01, Theta: 0.75}
	var buf bytes.Buffer
	if err := Write(&buf, h, s); err != nil {
		t.Fatal(err)
	}
	h2, s2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.N != 500 || h2.Time != 1.5 || h2.Step != 42 || h2.Scale != 0.25 ||
		h2.Eps != 0.01 || h2.Theta != 0.75 {
		t.Errorf("header = %+v", h2)
	}
	for i := range s.Pos {
		if s.Pos[i] != s2.Pos[i] || s.Vel[i] != s2.Vel[i] ||
			s.Mass[i] != s2.Mass[i] || s.ID[i] != s2.ID[i] {
			t.Fatalf("particle %d mismatch", i)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	s := sample(100, 2)
	path := filepath.Join(t.TempDir(), "snap.g5")
	if err := WriteFile(path, Header{Time: 2}, s); err != nil {
		t.Fatal(err)
	}
	h, s2, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.Time != 2 || s2.N() != 100 {
		t.Errorf("h=%+v n=%d", h, s2.N())
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, _, err := Read(bytes.NewReader([]byte("not a snapshot file at all"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	s := sample(50, 3)
	var buf bytes.Buffer
	if err := Write(&buf, Header{}, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{3, 8, 40, len(data) / 2, len(data) - 1} {
		if _, _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestReadRejectsWrongVersion(t *testing.T) {
	s := sample(10, 4)
	var buf bytes.Buffer
	if err := Write(&buf, Header{}, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version byte
	if _, _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("future version accepted")
	}
}

func TestEmptySystemRoundTrip(t *testing.T) {
	s := nbody.New(0)
	var buf bytes.Buffer
	if err := Write(&buf, Header{}, s); err != nil {
		t.Fatal(err)
	}
	_, s2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.N() != 0 {
		t.Errorf("N = %d", s2.N())
	}
}

func TestRoundTripDT(t *testing.T) {
	s := sample(20, 5)
	var buf bytes.Buffer
	if err := Write(&buf, Header{Time: 1, DT: 0.005}, s); err != nil {
		t.Fatal(err)
	}
	h, _, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.DT != 0.005 {
		t.Errorf("DT = %v, want 0.005", h.DT)
	}
}

// TestLegacyV1Readable writes the version-1 layout by hand (no DT, no
// CRC trailer) and checks the current reader still accepts it.
func TestLegacyV1Readable(t *testing.T) {
	s := sample(30, 6)
	var buf bytes.Buffer
	le := binary.LittleEndian
	for _, v := range []any{uint32(Magic), uint32(1),
		headerV1{N: int64(s.N()), Time: 3.5, Step: 9, Scale: 0.5, Eps: 0.01, Theta: 0.8}} {
		if err := binary.Write(&buf, le, v); err != nil {
			t.Fatal(err)
		}
	}
	for _, arr := range [][]vec.V3{s.Pos, s.Vel} {
		for _, p := range arr {
			if err := binary.Write(&buf, le, [3]float64{p.X, p.Y, p.Z}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := binary.Write(&buf, le, s.Mass); err != nil {
		t.Fatal(err)
	}
	if err := binary.Write(&buf, le, s.ID); err != nil {
		t.Fatal(err)
	}

	h, s2, err := Read(&buf)
	if err != nil {
		t.Fatalf("legacy v1 snapshot rejected: %v", err)
	}
	if h.Time != 3.5 || h.Step != 9 || h.Scale != 0.5 || h.Eps != 0.01 || h.Theta != 0.8 {
		t.Errorf("header = %+v", h)
	}
	if h.DT != 0 {
		t.Errorf("legacy DT = %v, want 0", h.DT)
	}
	for i := range s.Pos {
		if s.Pos[i] != s2.Pos[i] || s.Vel[i] != s2.Vel[i] {
			t.Fatalf("particle %d mismatch", i)
		}
	}
}

// TestCRCDetectsCorruption flips single bits across the payload of a
// current-format snapshot; every mutant must be rejected.
func TestCRCDetectsCorruption(t *testing.T) {
	s := sample(25, 7)
	var buf bytes.Buffer
	if err := Write(&buf, Header{Time: 1, DT: 0.01}, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, off := range []int{9, 16, 60, 100, len(data) / 2, len(data) - 5, len(data) - 1} {
		mutant := append([]byte(nil), data...)
		mutant[off] ^= 0x10
		if _, _, err := Read(bytes.NewReader(mutant)); err == nil {
			t.Errorf("bit flip at byte %d accepted", off)
		}
	}
}

// TestWriteFileAtomic: overwriting an existing snapshot goes through a
// temp file; after a successful write no temp remains and the contents
// are the new ones.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.g5")
	if err := WriteFile(path, Header{Time: 1}, sample(10, 8)); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, Header{Time: 2}, sample(10, 9)); err != nil {
		t.Fatal(err)
	}
	h, _, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.Time != 2 {
		t.Errorf("Time = %v, want the replacement's 2", h.Time)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
}
