// Package snapio reads and writes particle snapshots in a small
// versioned binary format (little-endian, fixed header). The headline
// run writes snapshots for restart and for the analysis tools
// (cmd/snap2pgm, the correlation function, the paper's Figure 4).
package snapio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/nbody"
	"repro/internal/vec"
)

// Magic identifies snapshot files ("G5SN").
const Magic = 0x4735534e

// Version is the current format version.
const Version = 1

// Header precedes the particle payload.
type Header struct {
	// N is the particle count.
	N int64
	// Time is the simulation time (internal units).
	Time float64
	// Step is the integration step index.
	Step int64
	// Scale is the cosmological scale factor (0 for non-cosmological
	// runs).
	Scale float64
	// Eps and Theta record the run parameters for provenance.
	Eps, Theta float64
}

// Write stores the system and header to w.
func Write(w io.Writer, h Header, s *nbody.System) error {
	h.N = int64(s.N())
	bw := bufio.NewWriterSize(w, 1<<20)
	le := binary.LittleEndian

	if err := binary.Write(bw, le, uint32(Magic)); err != nil {
		return err
	}
	if err := binary.Write(bw, le, uint32(Version)); err != nil {
		return err
	}
	if err := binary.Write(bw, le, h); err != nil {
		return err
	}
	writeV3 := func(v []vec.V3) error {
		for _, p := range v {
			if err := binary.Write(bw, le, [3]float64{p.X, p.Y, p.Z}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeV3(s.Pos); err != nil {
		return err
	}
	if err := writeV3(s.Vel); err != nil {
		return err
	}
	if err := binary.Write(bw, le, s.Mass); err != nil {
		return err
	}
	if err := binary.Write(bw, le, s.ID); err != nil {
		return err
	}
	return bw.Flush()
}

// Read loads a snapshot from r.
func Read(r io.Reader) (Header, *nbody.System, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	le := binary.LittleEndian
	var magic, version uint32
	if err := binary.Read(br, le, &magic); err != nil {
		return Header{}, nil, fmt.Errorf("snapio: reading magic: %w", err)
	}
	if magic != Magic {
		return Header{}, nil, fmt.Errorf("snapio: bad magic %#x", magic)
	}
	if err := binary.Read(br, le, &version); err != nil {
		return Header{}, nil, err
	}
	if version != Version {
		return Header{}, nil, fmt.Errorf("snapio: unsupported version %d", version)
	}
	var h Header
	if err := binary.Read(br, le, &h); err != nil {
		return Header{}, nil, err
	}
	if h.N < 0 || h.N > 1<<31 {
		return Header{}, nil, fmt.Errorf("snapio: implausible particle count %d", h.N)
	}
	// Grow arrays as data actually arrives rather than trusting the
	// header's N up front: a forged header must fail with an error, not
	// a multi-gigabyte allocation.
	n := int(h.N)
	const chunk = 1 << 16
	pre := n
	if pre > chunk {
		pre = chunk
	}
	readV3s := func(what string) ([]vec.V3, error) {
		out := make([]vec.V3, 0, pre)
		var raw [24]byte
		for i := 0; i < n; i++ {
			if _, err := io.ReadFull(br, raw[:]); err != nil {
				return nil, fmt.Errorf("snapio: %s: %w", what, err)
			}
			out = append(out, vec.V3{
				X: math.Float64frombits(le.Uint64(raw[0:])),
				Y: math.Float64frombits(le.Uint64(raw[8:])),
				Z: math.Float64frombits(le.Uint64(raw[16:])),
			})
		}
		return out, nil
	}
	pos, err := readV3s("positions")
	if err != nil {
		return Header{}, nil, err
	}
	velv, err := readV3s("velocities")
	if err != nil {
		return Header{}, nil, err
	}
	mass := make([]float64, 0, pre)
	{
		var raw [8]byte
		for i := 0; i < n; i++ {
			if _, err := io.ReadFull(br, raw[:]); err != nil {
				return Header{}, nil, fmt.Errorf("snapio: masses: %w", err)
			}
			mass = append(mass, math.Float64frombits(le.Uint64(raw[:])))
		}
	}
	id := make([]int64, 0, pre)
	{
		var raw [8]byte
		for i := 0; i < n; i++ {
			if _, err := io.ReadFull(br, raw[:]); err != nil {
				return Header{}, nil, fmt.Errorf("snapio: ids: %w", err)
			}
			id = append(id, int64(le.Uint64(raw[:])))
		}
	}
	s := &nbody.System{
		Pos:  pos,
		Vel:  velv,
		Acc:  make([]vec.V3, n),
		Mass: mass,
		Pot:  make([]float64, n),
		ID:   id,
	}
	return h, s, nil
}

// WriteFile writes a snapshot to the named file.
func WriteFile(path string, h Header, s *nbody.System) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, h, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a snapshot from the named file.
func ReadFile(path string) (Header, *nbody.System, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, nil, err
	}
	defer f.Close()
	return Read(f)
}
