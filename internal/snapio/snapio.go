// Package snapio reads and writes particle snapshots in a small
// versioned binary format (little-endian, fixed header). The headline
// run writes snapshots for restart and for the analysis tools
// (cmd/snap2pgm, the correlation function, the paper's Figure 4).
//
// Format version 2 (current) adds the integration timestep to the
// header — so resuming from a snapshot no longer needs a hand-typed
// -dt — and a CRC-32C trailer over everything before it, so a torn or
// bit-rotted snapshot is detected instead of silently integrated.
// Version-1 files (no DT, no checksum) remain readable. Files are
// written atomically (temp + fsync + rename): a crash mid-write leaves
// the previous snapshot, never a torn one.
package snapio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/fsx"
	"repro/internal/nbody"
	"repro/internal/vec"
)

// Magic identifies snapshot files ("G5SN").
const Magic = 0x4735534e

// Version is the current format version (DT in header, CRC trailer).
const Version = 2

// versionLegacy is the original format: no DT field, no checksum.
const versionLegacy = 1

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Header precedes the particle payload.
type Header struct {
	// N is the particle count.
	N int64
	// Time is the simulation time (internal units).
	Time float64
	// Step is the integration step index.
	Step int64
	// Scale is the cosmological scale factor (0 for non-cosmological
	// runs).
	Scale float64
	// Eps and Theta record the run parameters for provenance.
	Eps, Theta float64
	// DT is the integration timestep (version >= 2; 0 in legacy files,
	// whose resume therefore requires an explicit timestep).
	DT float64
}

// headerV1 is the version-1 header layout (no DT).
type headerV1 struct {
	N          int64
	Time       float64
	Step       int64
	Scale      float64
	Eps, Theta float64
}

// Write stores the system and header to w in the current format.
func Write(w io.Writer, h Header, s *nbody.System) error {
	h.N = int64(s.N())
	bw := bufio.NewWriterSize(w, 1<<20)
	le := binary.LittleEndian
	cw := &crcWriter{w: bw}

	if err := binary.Write(cw, le, uint32(Magic)); err != nil {
		return err
	}
	if err := binary.Write(cw, le, uint32(Version)); err != nil {
		return err
	}
	if err := binary.Write(cw, le, h); err != nil {
		return err
	}
	writeV3 := func(v []vec.V3) error {
		for _, p := range v {
			if err := binary.Write(cw, le, [3]float64{p.X, p.Y, p.Z}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeV3(s.Pos); err != nil {
		return err
	}
	if err := writeV3(s.Vel); err != nil {
		return err
	}
	if err := binary.Write(cw, le, s.Mass); err != nil {
		return err
	}
	if err := binary.Write(cw, le, s.ID); err != nil {
		return err
	}
	// CRC trailer over everything above, written outside the hash.
	if err := binary.Write(bw, le, cw.crc); err != nil {
		return err
	}
	return bw.Flush()
}

// Read loads a snapshot from r. For version-2 files the CRC trailer is
// verified; any mismatch is an error — corruption is never silently
// returned as particle data.
func Read(r io.Reader) (Header, *nbody.System, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	le := binary.LittleEndian
	cr := &crcReader{r: br}

	var magic, version uint32
	if err := binary.Read(cr, le, &magic); err != nil {
		return Header{}, nil, fmt.Errorf("snapio: reading magic: %w", err)
	}
	if magic != Magic {
		return Header{}, nil, fmt.Errorf("snapio: bad magic %#x", magic)
	}
	if err := binary.Read(cr, le, &version); err != nil {
		return Header{}, nil, err
	}
	var h Header
	switch version {
	case versionLegacy:
		var h1 headerV1
		if err := binary.Read(cr, le, &h1); err != nil {
			return Header{}, nil, err
		}
		h = Header{N: h1.N, Time: h1.Time, Step: h1.Step, Scale: h1.Scale,
			Eps: h1.Eps, Theta: h1.Theta}
	case Version:
		if err := binary.Read(cr, le, &h); err != nil {
			return Header{}, nil, err
		}
	default:
		return Header{}, nil, fmt.Errorf("snapio: unsupported version %d", version)
	}
	if h.N < 0 || h.N > 1<<31 {
		return Header{}, nil, fmt.Errorf("snapio: implausible particle count %d", h.N)
	}
	// Grow arrays as data actually arrives rather than trusting the
	// header's N up front: a forged header must fail with an error, not
	// a multi-gigabyte allocation.
	n := int(h.N)
	const chunk = 1 << 16
	pre := n
	if pre > chunk {
		pre = chunk
	}
	readV3s := func(what string) ([]vec.V3, error) {
		out := make([]vec.V3, 0, pre)
		var raw [24]byte
		for i := 0; i < n; i++ {
			if _, err := io.ReadFull(cr, raw[:]); err != nil {
				return nil, fmt.Errorf("snapio: %s: %w", what, err)
			}
			out = append(out, vec.V3{
				X: math.Float64frombits(le.Uint64(raw[0:])),
				Y: math.Float64frombits(le.Uint64(raw[8:])),
				Z: math.Float64frombits(le.Uint64(raw[16:])),
			})
		}
		return out, nil
	}
	pos, err := readV3s("positions")
	if err != nil {
		return Header{}, nil, err
	}
	velv, err := readV3s("velocities")
	if err != nil {
		return Header{}, nil, err
	}
	mass := make([]float64, 0, pre)
	{
		var raw [8]byte
		for i := 0; i < n; i++ {
			if _, err := io.ReadFull(cr, raw[:]); err != nil {
				return Header{}, nil, fmt.Errorf("snapio: masses: %w", err)
			}
			mass = append(mass, math.Float64frombits(le.Uint64(raw[:])))
		}
	}
	id := make([]int64, 0, pre)
	{
		var raw [8]byte
		for i := 0; i < n; i++ {
			if _, err := io.ReadFull(cr, raw[:]); err != nil {
				return Header{}, nil, fmt.Errorf("snapio: ids: %w", err)
			}
			id = append(id, int64(le.Uint64(raw[:])))
		}
	}
	if version >= 2 {
		var stored uint32
		if err := binary.Read(br, le, &stored); err != nil {
			return Header{}, nil, fmt.Errorf("snapio: reading checksum trailer: %w", err)
		}
		if stored != cr.crc {
			return Header{}, nil, fmt.Errorf("snapio: CRC mismatch (stored %#08x, computed %#08x): snapshot is corrupt", stored, cr.crc)
		}
	}
	s := &nbody.System{
		Pos:  pos,
		Vel:  velv,
		Acc:  make([]vec.V3, n),
		Mass: mass,
		Pot:  make([]float64, n),
		ID:   id,
	}
	return h, s, nil
}

// WriteFile writes a snapshot to the named file atomically: a crash at
// any instant leaves either the previous file or the complete new one,
// never a torn mix.
func WriteFile(path string, h Header, s *nbody.System) error {
	_, err := fsx.AtomicWriteFile(path, func(w io.Writer) error {
		return Write(w, h, s)
	})
	return err
}

// ReadFile loads a snapshot from the named file.
func ReadFile(path string) (Header, *nbody.System, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, nil, err
	}
	defer f.Close()
	return Read(f)
}

// crcWriter tees writes into a CRC-32C.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	return n, err
}

// crcReader tees reads into a CRC-32C.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	return n, err
}
