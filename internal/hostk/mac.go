package hostk

// MACSink is one receiving group's side of the multipole acceptance
// criterion: its bounding box and the squared opening parameter. A
// batch of candidate cells is tested against the sink in MACWidth
// lanes — the SoA counterpart of octree.OpenCriterion.Accept fed by
// vec.Box.Dist2, bitwise identical to that pair for finite inputs
// (the conformance tests pin the equivalence, including zero-size
// cells, θ=0 and cells touching the box surface).
type MACSink struct {
	MinX, MinY, MinZ float64
	MaxX, MaxY, MaxZ float64
	// Theta2 is θ² (precompute as theta*theta — the scalar criterion
	// evaluates `theta*theta*d2` left-associated, so this grouping is
	// required for bit equality).
	Theta2 float64
}

// Accept writes out[k] = (eff[k]² < θ²·d²) for every lane, where d² is
// the squared distance from the sink box to the candidate's centre of
// mass (x,y,z) and eff is the cell's effective size (edge length or
// bmax). All MACWidth lanes are evaluated unconditionally — callers
// batching fewer candidates leave stale-but-finite values in the upper
// lanes and ignore their verdicts.
//
// The per-axis clamp max(lo-v, v-hi, 0) replaces the two data-dependent
// branches of the scalar box distance with MAXSD instructions; for
// finite inputs it is bitwise identical (the extra +0 contributions of
// inside axes are IEEE-754 addition identities, and Go's builtin max
// orders -0 below +0 so a boundary axis yields +0 exactly like the
// scalar skip).
func (s *MACSink) Accept(x, y, z, eff *[MACWidth]float64, out *[MACWidth]bool) {
	for k := 0; k < MACWidth; k++ {
		dx := max(s.MinX-x[k], x[k]-s.MaxX, 0)
		dy := max(s.MinY-y[k], y[k]-s.MaxY, 0)
		dz := max(s.MinZ-z[k], z[k]-s.MaxZ, 0)
		d2 := dx*dx + dy*dy + dz*dz
		out[k] = eff[k]*eff[k] < s.Theta2*d2
	}
}
