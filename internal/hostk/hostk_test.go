package hostk_test

import (
	"math"
	"testing"

	"repro/internal/hostk"
	"repro/internal/octree"
	"repro/internal/rng"
	"repro/internal/vec"
)

// macCase is one adversarial MAC geometry: a sink box and a candidate
// cell placed to stress the accept boundary.
type macCase struct {
	name    string
	box     vec.Box
	com     vec.V3
	size    float64
	bmax    float64
	theta   float64
	useBmax bool
}

func unitBox() vec.Box {
	return vec.Box{Min: vec.V3{X: 0, Y: 0, Z: 0}, Max: vec.V3{X: 1, Y: 1, Z: 1}}
}

func macCases() []macCase {
	b := unitBox()
	return []macCase{
		{name: "far-cell-accepted", box: b, com: vec.V3{X: 10, Y: 0.5, Z: 0.5}, size: 1, bmax: 0.9, theta: 0.75},
		{name: "near-cell-opened", box: b, com: vec.V3{X: 1.1, Y: 0.5, Z: 0.5}, size: 1, bmax: 0.9, theta: 0.75},
		{name: "com-inside-sink", box: b, com: vec.V3{X: 0.5, Y: 0.5, Z: 0.5}, size: 0.5, bmax: 0.4, theta: 0.75},
		{name: "com-on-face", box: b, com: vec.V3{X: 1, Y: 0.5, Z: 0.5}, size: 0.25, bmax: 0.2, theta: 0.75},
		{name: "com-on-corner", box: b, com: vec.V3{X: 1, Y: 1, Z: 1}, size: 0.25, bmax: 0.2, theta: 0.75},
		{name: "zero-size-inside", box: b, com: vec.V3{X: 0.5, Y: 0.5, Z: 0.5}, size: 0, bmax: 0, theta: 0.75},
		{name: "zero-size-outside", box: b, com: vec.V3{X: 3, Y: 3, Z: 3}, size: 0, bmax: 0, theta: 0.75},
		{name: "theta-zero-far", box: b, com: vec.V3{X: 100, Y: 100, Z: 100}, size: 0.1, bmax: 0.05, theta: 0},
		{name: "theta-zero-zero-size", box: b, com: vec.V3{X: 100, Y: 100, Z: 100}, size: 0, bmax: 0, theta: 0},
		{name: "bmax-criterion", box: b, com: vec.V3{X: 2.5, Y: 0.5, Z: 0.5}, size: 1, bmax: 1.2, theta: 0.75, useBmax: true},
		{name: "boundary-exact", box: b, com: vec.V3{X: 2, Y: 0.5, Z: 0.5}, size: 0.75, bmax: 0.75, theta: 0.75},
		{name: "negative-coords", box: vec.Box{Min: vec.V3{X: -2, Y: -2, Z: -2}, Max: vec.V3{X: -1, Y: -1, Z: -1}},
			com: vec.V3{X: -4, Y: -1.5, Z: -1.5}, size: 0.5, bmax: 0.45, theta: 0.6},
		{name: "tiny-theta", box: b, com: vec.V3{X: 1e8, Y: 0, Z: 0}, size: 1e-8, bmax: 1e-8, theta: 1e-9},
		{name: "degenerate-point-box", box: vec.Box{Min: vec.V3{X: 0.5, Y: 0.5, Z: 0.5}, Max: vec.V3{X: 0.5, Y: 0.5, Z: 0.5}},
			com: vec.V3{X: 0.5, Y: 0.5, Z: 0.5}, size: 0.1, bmax: 0.1, theta: 0.75},
	}
}

// sinkFor builds the SoA sink exactly the way the group walk does.
func sinkFor(box vec.Box, theta float64) hostk.MACSink {
	return hostk.MACSink{
		MinX: box.Min.X, MinY: box.Min.Y, MinZ: box.Min.Z,
		MaxX: box.Max.X, MaxY: box.Max.Y, MaxZ: box.Max.Z,
		Theta2: theta * theta,
	}
}

// TestSoAMatchesScalar is the differential conformance suite: the
// batched kernels must agree with the scalar references exactly —
// bool-for-bool on the MAC, bit-for-bit on forces.
func TestSoAMatchesScalar(t *testing.T) {
	t.Run("mac-table", func(t *testing.T) {
		for _, c := range macCases() {
			c := c
			t.Run(c.name, func(t *testing.T) {
				n := &octree.Node{COM: c.com, Size: c.size, Bmax: c.bmax}
				mac := octree.OpenCriterion{Theta: c.theta, UseBmax: c.useBmax}
				want := mac.Accept(n, c.box.Dist2(c.com))

				sink := sinkFor(c.box, c.theta)
				var x, y, z, eff [hostk.MACWidth]float64
				var out [hostk.MACWidth]bool
				// Replicate the candidate across every lane: all verdicts
				// must agree regardless of lane position.
				for k := 0; k < hostk.MACWidth; k++ {
					x[k], y[k], z[k] = c.com.X, c.com.Y, c.com.Z
					eff[k] = n.EffSize(c.useBmax)
				}
				sink.Accept(&x, &y, &z, &eff, &out)
				for k := 0; k < hostk.MACWidth; k++ {
					if out[k] != want {
						t.Fatalf("lane %d: SoA accept=%v, scalar accept=%v", k, out[k], want)
					}
				}
			})
		}
	})

	t.Run("mac-random", func(t *testing.T) {
		r := rng.New(42)
		mixed := 0
		for trial := 0; trial < 2000; trial++ {
			lo := vec.V3{X: r.Float64() * 2, Y: r.Float64() * 2, Z: r.Float64() * 2}
			box := vec.Box{Min: lo, Max: lo.Add(vec.V3{X: r.Float64(), Y: r.Float64(), Z: r.Float64()})}
			theta := r.Float64() * 1.5
			useBmax := trial%2 == 0
			sink := sinkFor(box, theta)
			var x, y, z, eff [hostk.MACWidth]float64
			var out [hostk.MACWidth]bool
			nodes := make([]octree.Node, hostk.MACWidth)
			for k := range nodes {
				nodes[k] = octree.Node{
					COM:  vec.V3{X: (r.Float64() - 0.5) * 8, Y: (r.Float64() - 0.5) * 8, Z: (r.Float64() - 0.5) * 8},
					Size: r.Float64() * 2, Bmax: r.Float64() * 2,
				}
				x[k], y[k], z[k] = nodes[k].COM.X, nodes[k].COM.Y, nodes[k].COM.Z
				eff[k] = nodes[k].EffSize(useBmax)
			}
			sink.Accept(&x, &y, &z, &eff, &out)
			mac := octree.OpenCriterion{Theta: theta, UseBmax: useBmax}
			for k := range nodes {
				want := mac.Accept(&nodes[k], box.Dist2(nodes[k].COM))
				if out[k] != want {
					t.Fatalf("trial %d lane %d: SoA=%v scalar=%v (com %v box %v theta %g)",
						trial, k, out[k], want, nodes[k].COM, box, theta)
				}
				if want {
					mixed++
				}
			}
		}
		if mixed == 0 || mixed == 2000*hostk.MACWidth {
			t.Fatalf("degenerate random MAC coverage: %d accepts", mixed)
		}
	})

	t.Run("p2p", func(t *testing.T) {
		for _, tc := range []struct {
			name string
			ni   int
			nj   int
			eps  float64
			g    float64
			self bool // plant exact zero-separation pairs
			pad  bool
		}{
			{name: "single-pair", ni: 1, nj: 1, eps: 0.01, g: 1},
			{name: "one-tile-exact", ni: 3, nj: hostk.JTile, eps: 0.05, g: 2},
			{name: "tail-lane", ni: 4, nj: hostk.JTile + 3, eps: 0.05, g: 1, pad: true},
			{name: "self-pairs", ni: 8, nj: 40, eps: 0.02, g: 1, self: true, pad: true},
			{name: "self-pairs-zero-eps", ni: 5, nj: 21, eps: 0, g: 1, self: true, pad: true},
			{name: "large-unpadded", ni: 16, nj: 137, eps: 0.01, g: 0.5},
			{name: "empty-list", ni: 3, nj: 0, eps: 0.01, g: 1, pad: true},
		} {
			tc := tc
			t.Run(tc.name, func(t *testing.T) {
				r := rng.New(7)
				ipos := make([]vec.V3, tc.ni)
				for i := range ipos {
					ipos[i] = vec.V3{X: r.Float64(), Y: r.Float64(), Z: r.Float64()}
				}
				jpos := make([]vec.V3, tc.nj)
				jmass := make([]float64, tc.nj)
				var list hostk.JList
				for j := range jpos {
					jpos[j] = vec.V3{X: r.Float64(), Y: r.Float64(), Z: r.Float64()}
					if tc.self && j%5 == 0 {
						jpos[j] = ipos[j%tc.ni] // exact zero separation
					}
					jmass[j] = r.Float64()
					list.Append(jpos[j].X, jpos[j].Y, jpos[j].Z, jmass[j])
				}
				if tc.pad {
					list.Pad()
					if list.Len()%hostk.JTile != 0 || list.N != tc.nj {
						t.Fatalf("Pad broke invariants: len=%d N=%d", list.Len(), list.N)
					}
				}

				wantAcc := make([]vec.V3, tc.ni)
				wantPot := make([]float64, tc.ni)
				hostk.ScalarAccumulate(tc.g, tc.eps, ipos, jpos, jmass, wantAcc, wantPot)

				eps2 := tc.eps * tc.eps
				for i, pi := range ipos {
					ax, ay, az, pot := hostk.P2P(pi.X, pi.Y, pi.Z, &list, eps2)
					got := vec.V3{X: tc.g * ax, Y: tc.g * ay, Z: tc.g * az}
					if got != wantAcc[i] {
						t.Fatalf("i=%d: SoA acc %v != scalar %v (Δbits x: %d)",
							i, got, wantAcc[i],
							int64(math.Float64bits(got.X))-int64(math.Float64bits(wantAcc[i].X)))
					}
					if gp := tc.g * pot; gp != wantPot[i] {
						t.Fatalf("i=%d: SoA pot %v != scalar %v", i, gp, wantPot[i])
					}
				}
			})
		}
	})
}

// TestJListCopyFrom pins the staging-copy semantics the cluster relies
// on: padding and the real count survive the copy, and the copy aliases
// nothing.
func TestJListCopyFrom(t *testing.T) {
	var src hostk.JList
	src.Append(1, 2, 3, 4)
	src.Append(5, 6, 7, 8)
	src.Pad()
	var dst hostk.JList
	dst.Append(9, 9, 9, 9) // stale content must be discarded
	dst.CopyFrom(&src)
	if dst.N != 2 || dst.Len() != src.Len() {
		t.Fatalf("copy: N=%d len=%d, want N=2 len=%d", dst.N, dst.Len(), src.Len())
	}
	src.X[0] = -1
	if dst.X[0] != 1 {
		t.Fatal("CopyFrom aliased the source storage")
	}
}
