package hostk_test

import (
	"math"
	"testing"

	"repro/internal/hostk"
	"repro/internal/octree"
	"repro/internal/rng"
	"repro/internal/vec"
)

// FuzzHostKernelSoA cross-validates the SoA kernels against the scalar
// references over random batch sizes in 1..3·JTile (so every tail-lane
// configuration — full tiles, partial remainder, padded and unpadded —
// is hit) plus random geometry, masses, softening and planted
// zero-separation pairs. Inputs are kept finite: FMA-free bitwise
// equivalence is only claimed for finite lanes (NaN propagation is
// hardware-defined), and the simulation never feeds non-finite state.
func FuzzHostKernelSoA(f *testing.F) {
	f.Add(uint64(1), uint8(1), false, false)
	f.Add(uint64(2), uint8(hostk.JTile), true, false)
	f.Add(uint64(3), uint8(hostk.JTile+1), true, true)
	f.Add(uint64(4), uint8(2*hostk.JTile+3), false, true)
	f.Add(uint64(5), uint8(3*hostk.JTile), true, false)
	f.Fuzz(func(t *testing.T, seed uint64, njRaw uint8, pad, self bool) {
		nj := 1 + int(njRaw)%(3*hostk.JTile)
		r := rng.New(seed)

		// --- P2P vs the retired scalar loop ---
		pi := vec.V3{X: r.Uniform(-2, 2), Y: r.Uniform(-2, 2), Z: r.Uniform(-2, 2)}
		eps := 0.0
		if r.Float64() < 0.8 {
			eps = r.Float64() * 0.2
		}
		jpos := make([]vec.V3, nj)
		jmass := make([]float64, nj)
		var list hostk.JList
		for j := 0; j < nj; j++ {
			jpos[j] = vec.V3{X: r.Uniform(-2, 2), Y: r.Uniform(-2, 2), Z: r.Uniform(-2, 2)}
			if self && j%3 == 0 {
				jpos[j] = pi // exact zero separation: the guard lane
			}
			jmass[j] = r.Float64() * 2
			list.Append(jpos[j].X, jpos[j].Y, jpos[j].Z, jmass[j])
		}
		if pad {
			list.Pad()
		}
		var wantAcc [1]vec.V3
		var wantPot [1]float64
		hostk.ScalarAccumulate(1, eps, []vec.V3{pi}, jpos, jmass, wantAcc[:], wantPot[:])
		ax, ay, az, pot := hostk.P2P(pi.X, pi.Y, pi.Z, &list, eps*eps)
		if (vec.V3{X: ax, Y: ay, Z: az}) != wantAcc[0] || pot != wantPot[0] {
			t.Fatalf("P2P diverged from scalar (nj=%d pad=%v self=%v eps=%g):\n soa acc=(%x %x %x) pot=%x\n ref acc=(%x %x %x) pot=%x",
				nj, pad, self, eps,
				math.Float64bits(ax), math.Float64bits(ay), math.Float64bits(az), math.Float64bits(pot),
				math.Float64bits(wantAcc[0].X), math.Float64bits(wantAcc[0].Y), math.Float64bits(wantAcc[0].Z), math.Float64bits(wantPot[0]))
		}

		// --- MAC batch vs OpenCriterion.Accept ---
		lo := vec.V3{X: r.Uniform(-2, 2), Y: r.Uniform(-2, 2), Z: r.Uniform(-2, 2)}
		box := vec.Box{Min: lo, Max: lo.Add(vec.V3{X: r.Float64(), Y: r.Float64(), Z: r.Float64()})}
		theta := r.Float64() * 1.5
		if r.Float64() < 0.05 {
			theta = 0
		}
		useBmax := r.Float64() < 0.5
		sink := hostk.MACSink{
			MinX: box.Min.X, MinY: box.Min.Y, MinZ: box.Min.Z,
			MaxX: box.Max.X, MaxY: box.Max.Y, MaxZ: box.Max.Z,
			Theta2: theta * theta,
		}
		var x, y, z, eff [hostk.MACWidth]float64
		var out [hostk.MACWidth]bool
		nodes := make([]octree.Node, hostk.MACWidth)
		for k := range nodes {
			com := vec.V3{X: r.Uniform(-4, 4), Y: r.Uniform(-4, 4), Z: r.Uniform(-4, 4)}
			if k%4 == 0 {
				// Place some candidates inside or on the sink surface.
				com = lo.Add(vec.V3{X: r.Float64() * (box.Max.X - lo.X), Y: 0, Z: 0})
			}
			nodes[k] = octree.Node{COM: com, Size: r.Float64(), Bmax: r.Float64()}
			if k%5 == 0 {
				nodes[k].Size, nodes[k].Bmax = 0, 0 // zero-size cells
			}
			x[k], y[k], z[k] = com.X, com.Y, com.Z
			eff[k] = nodes[k].EffSize(useBmax)
		}
		sink.Accept(&x, &y, &z, &eff, &out)
		mac := octree.OpenCriterion{Theta: theta, UseBmax: useBmax}
		for k := range nodes {
			if want := mac.Accept(&nodes[k], box.Dist2(nodes[k].COM)); out[k] != want {
				t.Fatalf("MAC lane %d diverged: soa=%v scalar=%v (com=%v eff=%g box=%v theta=%g bmax=%v)",
					k, out[k], want, nodes[k].COM, eff[k], box, theta, useBmax)
			}
		}
	})
}
