package hostk_test

import (
	"testing"

	"repro/internal/hostk"
	"repro/internal/octree"
	"repro/internal/rng"
	"repro/internal/vec"
)

// benchNodes builds a candidate-cell population around a unit sink box,
// mixing accepted and opened cells the way a real walk frontier does.
func benchNodes(n int) ([]octree.Node, vec.Box) {
	r := rng.New(99)
	box := unitBox()
	nodes := make([]octree.Node, n)
	for i := range nodes {
		nodes[i] = octree.Node{
			COM:  vec.V3{X: r.Uniform(-4, 5), Y: r.Uniform(-4, 5), Z: r.Uniform(-4, 5)},
			Size: r.Float64(), Bmax: r.Float64() * 0.9,
		}
	}
	return nodes, box
}

// BenchmarkMACBatch compares the retired per-node MAC chain
// (vec.Box.Dist2 + octree.OpenCriterion.Accept) against the batched SoA
// kernel, gather cost included — both sides consume the same AoS node
// slice, exactly as the walk does.
func BenchmarkMACBatch(b *testing.B) {
	const nNodes = 4096
	nodes, box := benchNodes(nNodes)
	mac := octree.OpenCriterion{Theta: 0.75}
	b.Run("scalar", func(b *testing.B) {
		accepted := 0
		for it := 0; it < b.N; it++ {
			for i := range nodes {
				if mac.Accept(&nodes[i], box.Dist2(nodes[i].COM)) {
					accepted++
				}
			}
		}
		sinkCount(b, accepted)
	})
	b.Run("soa", func(b *testing.B) {
		sink := sinkFor(box, mac.Theta)
		var x, y, z, eff [hostk.MACWidth]float64
		var out [hostk.MACWidth]bool
		accepted := 0
		for it := 0; it < b.N; it++ {
			for base := 0; base+hostk.MACWidth <= len(nodes); base += hostk.MACWidth {
				for k := 0; k < hostk.MACWidth; k++ {
					n := &nodes[base+k]
					x[k], y[k], z[k] = n.COM.X, n.COM.Y, n.COM.Z
					eff[k] = n.EffSize(false)
				}
				sink.Accept(&x, &y, &z, &eff, &out)
				for k := 0; k < hostk.MACWidth; k++ {
					if out[k] {
						accepted++
					}
				}
			}
		}
		sinkCount(b, accepted)
	})
}

// benchBatch builds one force batch of the given size in both layouts.
func benchBatch(ni, nj int) (ipos, jpos []vec.V3, jmass []float64, list hostk.JList) {
	r := rng.New(123)
	ipos = make([]vec.V3, ni)
	for i := range ipos {
		ipos[i] = vec.V3{X: r.Float64(), Y: r.Float64(), Z: r.Float64()}
	}
	jpos = make([]vec.V3, nj)
	jmass = make([]float64, nj)
	for j := range jpos {
		jpos[j] = vec.V3{X: r.Float64(), Y: r.Float64(), Z: r.Float64()}
		jmass[j] = r.Float64()
		list.Append(jpos[j].X, jpos[j].Y, jpos[j].Z, jmass[j])
	}
	list.Pad()
	return ipos, jpos, jmass, list
}

// BenchmarkHostP2P compares the retired scalar host loop against the
// SoA tile kernel on a treecode-shaped batch (group of 64 i-particles,
// ~2k-entry shared j-list).
func BenchmarkHostP2P(b *testing.B) {
	const ni, nj = 64, 2000
	ipos, jpos, jmass, list := benchBatch(ni, nj)
	acc := make([]vec.V3, ni)
	pot := make([]float64, ni)
	const eps = 0.01
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(int64(ni * nj * 8))
		for it := 0; it < b.N; it++ {
			hostk.ScalarAccumulate(1, eps, ipos, jpos, jmass, acc, pot)
		}
	})
	b.Run("soa", func(b *testing.B) {
		b.SetBytes(int64(ni * nj * 8))
		const eps2 = eps * eps
		for it := 0; it < b.N; it++ {
			for i, pi := range ipos {
				ax, ay, az, p := hostk.P2P(pi.X, pi.Y, pi.Z, &list, eps2)
				acc[i] = acc[i].Add(vec.V3{X: ax, Y: ay, Z: az})
				pot[i] += p
			}
		}
	})
}

// BenchmarkGuardCheck compares the guard's probe reference — one field
// point against a whole batch j-list — before and after rerouting it
// through the shared P2P kernel.
func BenchmarkGuardCheck(b *testing.B) {
	const nj = 4000
	_, jpos, jmass, list := benchBatch(1, nj)
	probe := vec.V3{X: 0.382, Y: 0.382, Z: 0.382}
	const eps = 0.02
	b.Run("scalar", func(b *testing.B) {
		var acc [1]vec.V3
		var pot [1]float64
		for it := 0; it < b.N; it++ {
			acc[0], pot[0] = vec.Zero, 0
			hostk.ScalarAccumulate(1, eps, []vec.V3{probe}, jpos, jmass, acc[:], pot[:])
		}
	})
	b.Run("soa", func(b *testing.B) {
		const eps2 = eps * eps
		for it := 0; it < b.N; it++ {
			_, _, _, _ = hostk.P2P(probe.X, probe.Y, probe.Z, &list, eps2)
		}
	})
}

var benchSink int

// sinkCount defeats dead-code elimination of the benchmark bodies.
func sinkCount(b *testing.B, v int) {
	b.Helper()
	benchSink += v
}
