package hostk

import "math"

// P2P accumulates the softened gravitational acceleration and potential
// exerted by every lane of l (padding included) on the field point
// (px,py,pz), in strict lane order with a single accumulator per
// component — the summation order contract that makes the result
// bitwise identical to the retired scalar loop (ScalarAccumulate with
// one i-particle and G=1). Zero-separation lanes (the self-interaction
// guard, and pad lanes coinciding with the field point) contribute
// exactly nothing via the zero-mass select; see the package comment for
// the IEEE-754 argument.
func P2P(px, py, pz float64, l *JList, eps2 float64) (ax, ay, az, pot float64) {
	x := l.X
	n := len(x)
	// Reslicing to a common length hoists the bounds checks of the
	// sibling arrays out of both loops.
	y, z, m := l.Y[:n], l.Z[:n], l.M[:n]
	j := 0
	for ; j+JTile <= n; j += JTile {
		xt := (*[JTile]float64)(x[j:])
		yt := (*[JTile]float64)(y[j:])
		zt := (*[JTile]float64)(z[j:])
		mt := (*[JTile]float64)(m[j:])
		for k := 0; k < JTile; k++ {
			dx := xt[k] - px
			dy := yt[k] - py
			dz := zt[k] - pz
			r2 := dx*dx + dy*dy + dz*dz
			mj := mt[k]
			if r2 == 0 {
				// Zero-separation select: substitute a massless source at
				// unit distance instead of branching out of the lane.
				mj = 0
				r2 = 1
			}
			r2 += eps2
			inv := 1 / math.Sqrt(r2)
			inv3 := inv / r2
			ax += mj * inv3 * dx
			ay += mj * inv3 * dy
			az += mj * inv3 * dz
			pot -= mj * inv
		}
	}
	// Scalar remainder for unpadded lists (empty after JList.Pad).
	for ; j < n; j++ {
		dx := x[j] - px
		dy := y[j] - py
		dz := z[j] - pz
		r2 := dx*dx + dy*dy + dz*dz
		mj := m[j]
		if r2 == 0 {
			mj = 0
			r2 = 1
		}
		r2 += eps2
		inv := 1 / math.Sqrt(r2)
		inv3 := inv / r2
		ax += mj * inv3 * dx
		ay += mj * inv3 * dy
		az += mj * inv3 * dz
		pot -= mj * inv
	}
	return ax, ay, az, pot
}
