package hostk

import (
	"math"

	"repro/internal/vec"
)

// ScalarAccumulate is the retired pre-SoA host force loop, kept
// verbatim (AoS layout, per-pair `continue` self-guard) as the
// differential-conformance reference: the SoA kernels must match it
// bit for bit, and the pre-SoA trajectory goldens were recorded with
// exactly this arithmetic. It is not called on any hot path.
func ScalarAccumulate(g, eps float64, ipos, jpos []vec.V3, jmass []float64, acc []vec.V3, pot []float64) {
	eps2 := eps * eps
	for i, pi := range ipos {
		var ax, ay, az, p float64
		for j, pj := range jpos {
			dx := pj.X - pi.X
			dy := pj.Y - pi.Y
			dz := pj.Z - pi.Z
			r2 := dx*dx + dy*dy + dz*dz
			if r2 == 0 {
				continue // self-interaction guard
			}
			r2 += eps2
			inv := 1 / math.Sqrt(r2)
			inv3 := inv / r2
			m := jmass[j]
			ax += m * inv3 * dx
			ay += m * inv3 * dy
			az += m * inv3 * dz
			p -= m * inv
		}
		acc[i] = acc[i].Add(vec.V3{X: g * ax, Y: g * ay, Z: g * az})
		pot[i] += g * p
	}
}
