// Package hostk holds the batched struct-of-arrays (SoA) host kernels
// for the three host-side hot paths: the tree-walk multipole acceptance
// test (MACSink.Accept), the float64 pairwise force evaluation (P2P)
// used by the host engine and the guard's reference check, and the
// retired scalar loop kept as the differential-conformance baseline
// (ScalarAccumulate).
//
// # Layout and determinism
//
// Sources are carried in a JList: four parallel float64 slices plus the
// real entry count N. Pad appends zero-mass lanes at the origin until
// the slice length is a multiple of JTile, so the P2P inner loop runs
// fixed-width tiles with no per-lane length branch. Padding is a
// bitwise no-op by IEEE-754 argument (DESIGN.md §13): every pad lane
// contributes ±0 to each accumulator, accumulators initialised to +0
// and fed only additions can never hold -0, and x + ±0 == x for any
// x != -0. The same argument covers the zero-separation select inside
// the loop, which replaces the scalar kernel's `continue` with a
// zero-mass substitution so the lane sequence never branches.
//
// Summation order is strictly lane order — identical to the retired
// scalar loop — so results are bitwise identical to ScalarAccumulate
// for any batch, padded or not. The conformance tests and the fuzz
// harness pin this with == on the float64 bit patterns.
package hostk

const (
	// MACWidth is the MAC batch width: eight lanes, the octree fan-out,
	// so one batch covers exactly the children expanded by one walk
	// step and the walk's pop order — hence the j-list emission order
	// and the bitwise trajectory — is unchanged from the scalar walk.
	MACWidth = 8

	// JTile is the P2P tile width: the inner loop consumes JTile lanes
	// per iteration through fixed-size array views (bounds checks
	// hoisted), with a scalar remainder loop for unpadded lists.
	JTile = 8
)

// JList is one force batch's shared source list ("j-particles": real
// particles and accepted cells' centres of mass alike) in SoA layout.
// The four slices always have equal length; lanes [N, len(X)) are
// zero-mass padding appended by Pad. Append must not be called after
// Pad (Reset first).
type JList struct {
	X, Y, Z, M []float64
	// N is the number of real sources.
	N int
}

// Reset empties the list, retaining capacity.
func (l *JList) Reset() {
	l.X, l.Y, l.Z, l.M = l.X[:0], l.Y[:0], l.Z[:0], l.M[:0]
	l.N = 0
}

// Append adds one real source lane.
func (l *JList) Append(x, y, z, m float64) {
	l.X = append(l.X, x)
	l.Y = append(l.Y, y)
	l.Z = append(l.Z, z)
	l.M = append(l.M, m)
	l.N++
}

// Pad appends zero-mass lanes at the origin until the lane count is a
// multiple of JTile. N is unchanged.
func (l *JList) Pad() {
	for len(l.X)%JTile != 0 {
		l.X = append(l.X, 0)
		l.Y = append(l.Y, 0)
		l.Z = append(l.Z, 0)
		l.M = append(l.M, 0)
	}
}

// Len returns the lane count including padding (>= N).
func (l *JList) Len() int { return len(l.X) }

// CopyFrom replaces the list's contents with a copy of src (padding
// included), reusing capacity — the staging path of the sharded
// cluster, which must snapshot a caller's list without allocating in
// steady state.
func (l *JList) CopyFrom(src *JList) {
	l.X = append(l.X[:0], src.X...)
	l.Y = append(l.Y[:0], src.Y...)
	l.Z = append(l.Z[:0], src.Z...)
	l.M = append(l.M[:0], src.M...)
	l.N = src.N
}
