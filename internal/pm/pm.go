// Package pm implements a particle-mesh (PM) gravity solver with
// isolated (vacuum) boundary conditions: cloud-in-cell mass deposit,
// FFT convolution with the open-space Green's function via
// Hockney-Eastwood zero padding, finite-difference gradients, and
// cloud-in-cell force interpolation.
//
// PM is the classical fast alternative to the treecode and serves as
// the cross-check baseline: the paper's lineage of Gordon Bell entries
// (Warren & Salmon) benchmarked tree codes against mesh codes, and a
// downstream user of this library gets the comparison for free. PM
// forces are soft below the mesh scale, so the comparison tests match
// tree softening to the cell size.
package pm

import (
	"fmt"
	"math"

	"repro/internal/fft"
	"repro/internal/nbody"
	"repro/internal/vec"
)

// Solver is a PM gravity solver over a fixed cubic region. Create one
// with NewSolver and reuse it across steps; the Green's function is
// prepared once.
type Solver struct {
	// N is the mesh size per dimension (power of two).
	N int
	// Box is the solved region; particles outside contribute nothing
	// and feel nothing.
	Box vec.Box
	// G is the gravitational constant.
	G float64

	cell    float64
	rho     *fft.Grid3 // 2N-padded density / potential workspace
	kernel  []complex128
	phi     []float64 // N³ potential mesh
	gridDim int       // 2N
}

// NewSolver builds a solver for the given cubic box and mesh size.
func NewSolver(n int, box vec.Box, g float64) (*Solver, error) {
	if !fft.IsPow2(n) {
		return nil, fmt.Errorf("pm: mesh size %d is not a power of two", n)
	}
	size := box.Size()
	if size.X <= 0 || math.Abs(size.X-size.Y) > 1e-9*size.X || math.Abs(size.X-size.Z) > 1e-9*size.X {
		return nil, fmt.Errorf("pm: box must be cubic and non-degenerate")
	}
	s := &Solver{N: n, Box: box, G: g, cell: size.X / float64(n), gridDim: 2 * n}
	grid, err := fft.NewGrid3(s.gridDim)
	if err != nil {
		return nil, err
	}
	s.rho = grid
	s.phi = make([]float64, n*n*n)
	s.buildKernel()
	return s, nil
}

// Cell returns the mesh spacing (the effective softening scale of PM
// forces).
func (s *Solver) Cell() float64 { return s.cell }

// buildKernel prepares the FFT of the open-space Green's function
// -1/(4π r) sampled on the doubled grid with wrap-around symmetry
// (Hockney & Eastwood). The r=0 value uses the standard plateau
// -1/(4π·0.25·h) calibrated so a single particle's self-cell potential
// stays finite.
func (s *Solver) buildKernel() {
	d := s.gridDim
	k, _ := fft.NewGrid3(d)
	for ix := 0; ix < d; ix++ {
		rx := float64(minWrap(ix, d)) * s.cell
		for iy := 0; iy < d; iy++ {
			ry := float64(minWrap(iy, d)) * s.cell
			for iz := 0; iz < d; iz++ {
				rz := float64(minWrap(iz, d)) * s.cell
				r := math.Sqrt(rx*rx + ry*ry + rz*rz)
				var green float64
				if r == 0 {
					green = -1 / (4 * math.Pi * 0.25 * s.cell)
				} else {
					green = -1 / (4 * math.Pi * r)
				}
				k.Set(ix, iy, iz, complex(green, 0))
			}
		}
	}
	k.Forward()
	s.kernel = k.Data
}

// minWrap maps grid index i on a d-grid to the signed distance index in
// [-d/2, d/2).
func minWrap(i, d int) int {
	if i < d/2 {
		return i
	}
	return i - d
}

// Solve computes the potential mesh from the system's particles and
// stores it; Accelerations interpolates forces afterwards. Particles
// outside the box are ignored (returned count reports how many were
// deposited).
func (s *Solver) Solve(sys *nbody.System) (deposited int, err error) {
	n := s.N
	d := s.gridDim
	// Zero workspace.
	for i := range s.rho.Data {
		s.rho.Data[i] = 0
	}
	// CIC deposit into the first octant of the padded grid.
	inv := 1 / s.cell
	vol := s.cell * s.cell * s.cell
	for p := 0; p < sys.N(); p++ {
		x := (sys.Pos[p].X - s.Box.Min.X) * inv
		y := (sys.Pos[p].Y - s.Box.Min.Y) * inv
		z := (sys.Pos[p].Z - s.Box.Min.Z) * inv
		// Centre the cloud on the particle: CIC spans the 8 nearest
		// cell centres; use node-centred convention.
		ix, fx := cicSplit(x)
		iy, fy := cicSplit(y)
		iz, fz := cicSplit(z)
		if ix < 0 || ix+1 >= n || iy < 0 || iy+1 >= n || iz < 0 || iz+1 >= n {
			continue // outside (or touching the far faces): skip
		}
		deposited++
		m := sys.Mass[p] / vol
		for c := 0; c < 8; c++ {
			jx, jy, jz := ix+(c&1), iy+(c>>1&1), iz+(c>>2&1)
			w := pick(fx, c&1) * pick(fy, c>>1&1) * pick(fz, c>>2&1)
			idx := (jx*d+jy)*d + jz
			s.rho.Data[idx] += complex(m*w, 0)
		}
	}

	// Convolve: FFT, multiply by kernel, inverse.
	s.rho.Forward()
	for i := range s.rho.Data {
		s.rho.Data[i] *= s.kernel[i]
	}
	s.rho.Inverse()

	// Extract potential: φ = 4πG · (solution of ∇²φ/(4πG) = ρ), i.e.
	// φ(x) = G ∫ ρ(x')·(-1/|x-x'|) — our kernel already carries the
	// -1/(4π r) normalisation, so multiply by 4πG·cell³ (the
	// convolution sum approximates the integral with measure h³).
	scale := 4 * math.Pi * s.G * vol
	for ix := 0; ix < n; ix++ {
		for iy := 0; iy < n; iy++ {
			for iz := 0; iz < n; iz++ {
				s.phi[(ix*n+iy)*n+iz] = scale * real(s.rho.At(ix, iy, iz))
			}
		}
	}
	return deposited, nil
}

// cicSplit returns the lower node index and fractional offset of a
// node-centred cloud-in-cell assignment.
func cicSplit(x float64) (int, float64) {
	f := math.Floor(x)
	return int(f), x - f
}

// pick returns (1-f) for bit 0, f for bit 1.
func pick(f float64, bit int) float64 {
	if bit == 0 {
		return 1 - f
	}
	return f
}

// Potential returns the mesh potential at node (ix, iy, iz).
func (s *Solver) Potential(ix, iy, iz int) float64 {
	return s.phi[(ix*s.N+iy)*s.N+iz]
}

// Accelerations interpolates mesh forces back onto the particles
// (two-point centred difference of the potential, CIC-weighted),
// overwriting sys.Acc and sys.Pot. Particles outside the valid region
// get zero force.
func (s *Solver) Accelerations(sys *nbody.System) {
	n := s.N
	inv := 1 / s.cell
	grad := 1 / (2 * s.cell)
	at := func(ix, iy, iz int) float64 {
		if ix < 0 {
			ix = 0
		}
		if iy < 0 {
			iy = 0
		}
		if iz < 0 {
			iz = 0
		}
		if ix >= n {
			ix = n - 1
		}
		if iy >= n {
			iy = n - 1
		}
		if iz >= n {
			iz = n - 1
		}
		return s.phi[(ix*n+iy)*n+iz]
	}
	for p := 0; p < sys.N(); p++ {
		x := (sys.Pos[p].X - s.Box.Min.X) * inv
		y := (sys.Pos[p].Y - s.Box.Min.Y) * inv
		z := (sys.Pos[p].Z - s.Box.Min.Z) * inv
		ix, fx := cicSplit(x)
		iy, fy := cicSplit(y)
		iz, fz := cicSplit(z)
		if ix < 1 || ix+2 >= n || iy < 1 || iy+2 >= n || iz < 1 || iz+2 >= n {
			sys.Acc[p] = vec.Zero
			sys.Pot[p] = 0
			continue
		}
		var ax, ay, az, pot float64
		for c := 0; c < 8; c++ {
			jx, jy, jz := ix+(c&1), iy+(c>>1&1), iz+(c>>2&1)
			w := pick(fx, c&1) * pick(fy, c>>1&1) * pick(fz, c>>2&1)
			ax -= w * (at(jx+1, jy, jz) - at(jx-1, jy, jz)) * grad
			ay -= w * (at(jx, jy+1, jz) - at(jx, jy-1, jz)) * grad
			az -= w * (at(jx, jy, jz+1) - at(jx, jy, jz-1)) * grad
			pot += w * at(jx, jy, jz)
		}
		sys.Acc[p] = vec.V3{X: ax, Y: ay, Z: az}
		// The mesh potential includes the particle's own cloud
		// (self-energy); subtract it so Pot means "potential due to the
		// others", matching the direct-sum and tree conventions.
		sys.Pot[p] = pot - s.selfPotential(fx, fy, fz, sys.Mass[p])
	}
}

// selfPotential returns the contribution of a particle's own CIC cloud
// to the interpolated potential at its position: the double sum over
// its 8 deposit nodes and 8 read nodes through the Green's function,
// which depends only on the in-cell offsets and the cell size.
func (s *Solver) selfPotential(fx, fy, fz, m float64) float64 {
	// Inverse distances between nodes of the unit cell, in cell units:
	// coincident nodes use the kernel's r=0 plateau 1/0.25.
	invDist := func(dx, dy, dz int) float64 {
		d2 := dx*dx + dy*dy + dz*dz
		if d2 == 0 {
			return 4 // 1/0.25
		}
		//lint:ignore hostk lattice Green's-function constant (64 node pairs once per particle), not a force inner loop
		return 1 / math.Sqrt(float64(d2))
	}
	var sum float64
	for a := 0; a < 8; a++ {
		wa := pick(fx, a&1) * pick(fy, a>>1&1) * pick(fz, a>>2&1)
		if wa == 0 {
			continue
		}
		for b := 0; b < 8; b++ {
			wb := pick(fx, b&1) * pick(fy, b>>1&1) * pick(fz, b>>2&1)
			if wb == 0 {
				continue
			}
			sum += wa * wb * invDist((a&1)-(b&1), (a>>1&1)-(b>>1&1), (a>>2&1)-(b>>2&1))
		}
	}
	return -s.G * m / s.cell * sum
}

// Forces runs Solve and Accelerations in one call.
func (s *Solver) Forces(sys *nbody.System) error {
	if _, err := s.Solve(sys); err != nil {
		return err
	}
	s.Accelerations(sys)
	return nil
}
