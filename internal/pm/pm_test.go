package pm

import (
	"math"
	"testing"

	"repro/internal/nbody"
	"repro/internal/rng"
	"repro/internal/vec"
)

func box(l float64) vec.Box {
	return vec.NewBox(vec.V3{X: -l / 2, Y: -l / 2, Z: -l / 2}, vec.V3{X: l / 2, Y: l / 2, Z: l / 2})
}

func TestNewSolverValidation(t *testing.T) {
	if _, err := NewSolver(12, box(10), 1); err == nil {
		t.Error("non-pow2 mesh accepted")
	}
	bad := vec.NewBox(vec.V3{}, vec.V3{X: 1, Y: 2, Z: 1})
	if _, err := NewSolver(16, bad, 1); err == nil {
		t.Error("non-cubic box accepted")
	}
}

func TestTwoBodyForceMatchesNewton(t *testing.T) {
	// Two particles far apart compared to the mesh cell: PM force must
	// approach G m / d² along the separation.
	const n = 64
	s, err := NewSolver(n, box(32), 1)
	if err != nil {
		t.Fatal(err)
	}
	sys := nbody.New(2)
	sys.Mass[0], sys.Mass[1] = 1, 1
	sys.Pos[0] = vec.V3{X: -4.1} // avoid exact node alignment
	sys.Pos[1] = vec.V3{X: 4.2}
	if err := s.Forces(sys); err != nil {
		t.Fatal(err)
	}
	d := sys.Pos[1].Sub(sys.Pos[0]).Norm()
	want := 1 / (d * d)
	got := sys.Acc[0].X
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("PM force = %v, Newton = %v (d=%.2f, cell=%.2f)", got, want, d, s.Cell())
	}
	// Third law within discretisation error.
	if math.Abs(sys.Acc[0].X+sys.Acc[1].X) > 0.02*want {
		t.Errorf("force asymmetry: %v vs %v", sys.Acc[0].X, sys.Acc[1].X)
	}
	// Transverse components tiny.
	if math.Abs(sys.Acc[0].Y) > 0.02*want || math.Abs(sys.Acc[0].Z) > 0.02*want {
		t.Errorf("transverse force: %v", sys.Acc[0])
	}
	// Potential ~ -G m / d after self-energy subtraction.
	if math.Abs(sys.Pot[0]+1/d) > 0.15/d {
		t.Errorf("PM potential = %v, want ~%v", sys.Pot[0], -1/d)
	}
}

func TestForceScalesWithMass(t *testing.T) {
	const n = 32
	s, _ := NewSolver(n, box(32), 1)
	sys := nbody.New(2)
	sys.Mass[0], sys.Mass[1] = 1, 5
	sys.Pos[0] = vec.V3{X: -5.3}
	sys.Pos[1] = vec.V3{X: 5.1}
	if err := s.Forces(sys); err != nil {
		t.Fatal(err)
	}
	// a0 from mass 5, a1 from mass 1: ratio 5.
	ratio := sys.Acc[0].X / (-sys.Acc[1].X)
	if math.Abs(ratio-5) > 0.3 {
		t.Errorf("mass scaling ratio = %v, want ~5", ratio)
	}
}

func TestIsolatedBoundary(t *testing.T) {
	// With zero-padding there must be no periodic images: a particle
	// near one face must feel its companion, not a mirror copy. Compare
	// the force on a probe against Newton for a source that would have
	// a strong image if the box were periodic.
	const n = 64
	s, _ := NewSolver(n, box(32), 1)
	sys := nbody.New(2)
	sys.Mass[0], sys.Mass[1] = 1, 1
	sys.Pos[0] = vec.V3{X: -13.1} // near the -x face
	sys.Pos[1] = vec.V3{X: 13.2}  // near the +x face
	if err := s.Forces(sys); err != nil {
		t.Fatal(err)
	}
	d := sys.Pos[1].Sub(sys.Pos[0]).Norm()
	want := 1 / (d * d) // attraction toward +x
	// A periodic solver would give a nearly cancelling (or reversed)
	// force because the image at x=-18.8... dominates. Isolated BC must
	// give the Newtonian sign and magnitude.
	if sys.Acc[0].X < 0.5*want || sys.Acc[0].X > 1.5*want {
		t.Errorf("isolated-BC force = %v, Newton = %v", sys.Acc[0].X, want)
	}
}

func TestMomentumConservation(t *testing.T) {
	const n = 32
	s, _ := NewSolver(n, box(20), 1)
	r := rng.New(3)
	sys := nbody.New(200)
	for i := range sys.Pos {
		sys.Pos[i] = vec.V3{X: r.Uniform(-6, 6), Y: r.Uniform(-6, 6), Z: r.Uniform(-6, 6)}
		sys.Mass[i] = 0.5 + r.Float64()
	}
	if err := s.Forces(sys); err != nil {
		t.Fatal(err)
	}
	var net vec.V3
	var typ float64
	for i := range sys.Acc {
		net = net.MulAdd(sys.Mass[i], sys.Acc[i])
		typ += sys.Mass[i] * sys.Acc[i].Norm()
	}
	// CIC + centred differences conserve momentum to discretisation
	// error; require the net force to be well below the typical force.
	if net.Norm() > 0.02*typ {
		t.Errorf("net force %v vs Σ|f| %v", net.Norm(), typ)
	}
}

func TestPMAgainstDirectOnCluster(t *testing.T) {
	// A Plummer sphere: PM forces must track direct summation (with
	// softening matched to the mesh cell) in the resolved region —
	// radii of a few cells up to the box edge. PM is inherently soft
	// below the mesh scale, which is the known trade-off vs the tree.
	const n = 64
	s, _ := NewSolver(n, box(16), 1)
	sys := nbody.Plummer(2000, 1, 1, 1, rng.New(4))
	ref := sys.Clone()
	nbody.DirectForces(ref, 1, s.Cell())
	if err := s.Forces(sys); err != nil {
		t.Fatal(err)
	}
	var sum2 float64
	count := 0
	for i := range sys.Pos {
		r := sys.Pos[i].Norm()
		// Compare where PM resolves: a few cells from the centre, and
		// inside the valid interpolation region.
		if r < 4*s.Cell() || r > 6 {
			continue
		}
		rel := sys.Acc[i].Sub(ref.Acc[i]).Norm() / ref.Acc[i].Norm()
		sum2 += rel * rel
		count++
	}
	rms := math.Sqrt(sum2 / float64(count))
	t.Logf("PM vs direct RMS error = %.2f%% over %d particles", rms*100, count)
	if rms > 0.10 {
		t.Errorf("PM error %v too large in resolved region", rms)
	}
}

func TestDepositCount(t *testing.T) {
	const n = 16
	s, _ := NewSolver(n, box(16), 1)
	sys := nbody.New(3)
	sys.Mass[0], sys.Mass[1], sys.Mass[2] = 1, 1, 1
	sys.Pos[0] = vec.V3{X: 0}
	sys.Pos[1] = vec.V3{X: 100} // far outside
	sys.Pos[2] = vec.V3{X: -2}
	dep, err := s.Solve(sys)
	if err != nil {
		t.Fatal(err)
	}
	if dep != 2 {
		t.Errorf("deposited = %d, want 2", dep)
	}
}

func TestSolverReuse(t *testing.T) {
	// Repeated solves must not accumulate state.
	const n = 32
	s, _ := NewSolver(n, box(16), 1)
	sys := nbody.New(2)
	sys.Mass[0], sys.Mass[1] = 1, 1
	sys.Pos[0] = vec.V3{X: -3.1}
	sys.Pos[1] = vec.V3{X: 3.2}
	if err := s.Forces(sys); err != nil {
		t.Fatal(err)
	}
	first := sys.Acc[0]
	for k := 0; k < 3; k++ {
		if err := s.Forces(sys); err != nil {
			t.Fatal(err)
		}
	}
	if sys.Acc[0] != first {
		t.Errorf("solver state leaked: %v vs %v", sys.Acc[0], first)
	}
}
