package octree

import (
	"fmt"

	"repro/internal/nbody"
	"repro/internal/vec"
)

// BuildInsertion builds an octree by naive one-particle-at-a-time
// insertion, the textbook Barnes & Hut (1986) construction. It produces
// the same cell decomposition as Build for the same LeafCap but does
// not reorder the system, so leaves index particles through the Perm
// slice instead of contiguous ranges.
//
// It exists as the independent reference implementation for
// cross-validation tests and as the baseline of the build ablation; the
// production path is Build.
type InsertionTree struct {
	Nodes   []inode
	Sys     *nbody.System
	LeafCap int
}

type inode struct {
	box      vec.Box
	com      vec.V3
	mass     float64
	children [8]int32
	// particles holds original particle indices for leaves.
	particles []int32
	leaf      bool
}

// BuildInsertion constructs the reference tree.
func BuildInsertion(s *nbody.System, leafCap int) (*InsertionTree, error) {
	if s.N() == 0 {
		return nil, fmt.Errorf("octree: empty system")
	}
	if leafCap <= 0 {
		leafCap = 8
	}
	cube := s.Bounds().Cube()
	if cube.MaxEdge() == 0 {
		cube = vec.NewBox(cube.Min.Sub(vec.V3{X: 0.5, Y: 0.5, Z: 0.5}),
			cube.Min.Add(vec.V3{X: 0.5, Y: 0.5, Z: 0.5}))
	}
	// Grow the cube fractionally so points on the max faces stay inside
	// the half-open root.
	eps := cube.MaxEdge() * 1e-12
	cube.Max = cube.Max.Add(vec.V3{X: eps, Y: eps, Z: eps})

	t := &InsertionTree{Sys: s, LeafCap: leafCap}
	t.Nodes = append(t.Nodes, inode{box: cube, leaf: true})
	for i := range t.Nodes[0].children {
		t.Nodes[0].children[i] = NoChild
	}
	for i := 0; i < s.N(); i++ {
		t.insert(0, int32(i), 0)
	}
	t.summarize(0)
	return t, nil
}

const maxInsertionDepth = 64

func (t *InsertionTree) insert(idx, pi int32, depth int) {
	n := &t.Nodes[idx]
	if n.leaf {
		n.particles = append(n.particles, pi)
		if len(n.particles) <= t.LeafCap || depth >= maxInsertionDepth {
			return
		}
		// Split: push particles down.
		ps := n.particles
		n.particles = nil
		n.leaf = false
		for _, p := range ps {
			t.insertChild(idx, p, depth)
		}
		return
	}
	t.insertChild(idx, pi, depth)
}

func (t *InsertionTree) insertChild(idx, pi int32, depth int) {
	oct := t.Nodes[idx].box.Octant(t.Sys.Pos[pi])
	child := t.Nodes[idx].children[oct]
	if child == NoChild {
		child = int32(len(t.Nodes))
		childBox := t.Nodes[idx].box.Child(oct)
		t.Nodes = append(t.Nodes, inode{box: childBox, leaf: true})
		for i := range t.Nodes[child].children {
			t.Nodes[child].children[i] = NoChild
		}
		t.Nodes[idx].children[oct] = child
	}
	t.insert(child, pi, depth+1)
}

func (t *InsertionTree) summarize(idx int32) (mass float64, com vec.V3) {
	n := &t.Nodes[idx]
	if n.leaf {
		for _, p := range n.particles {
			m := t.Sys.Mass[p]
			n.mass += m
			n.com = n.com.MulAdd(m, t.Sys.Pos[p])
		}
		if n.mass > 0 {
			n.com = n.com.Scale(1 / n.mass)
		} else {
			n.com = n.box.Center()
		}
		return n.mass, n.com
	}
	var m float64
	var c vec.V3
	for _, ch := range n.children {
		if ch == NoChild {
			continue
		}
		cm, cc := t.summarize(ch)
		m += cm
		c = c.MulAdd(cm, cc)
	}
	n.mass = m
	if m > 0 {
		n.com = c.Scale(1 / m)
	} else {
		n.com = n.box.Center()
	}
	return n.mass, n.com
}

// RootMass returns the total mass at the root (for cross-checks).
func (t *InsertionTree) RootMass() float64 { return t.Nodes[0].mass }

// RootCOM returns the root centre of mass.
func (t *InsertionTree) RootCOM() vec.V3 { return t.Nodes[0].com }

// CountLeaves returns the number of leaf cells.
func (t *InsertionTree) CountLeaves() int {
	c := 0
	for i := range t.Nodes {
		if t.Nodes[i].leaf {
			c++
		}
	}
	return c
}
