package octree

import (
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
)

// leafSizesMorton returns the sorted leaf particle counts of a Morton
// tree.
func leafSizesMorton(tr *Tree) []int {
	var sizes []int
	for i := range tr.Nodes {
		if tr.Nodes[i].Leaf {
			sizes = append(sizes, int(tr.Nodes[i].Count))
		}
	}
	sort.Ints(sizes)
	return sizes
}

// leafSizesInsertion returns the sorted leaf particle counts of the
// reference insertion tree.
func leafSizesInsertion(tr *InsertionTree) []int {
	var sizes []int
	for i := range tr.Nodes {
		if tr.Nodes[i].leaf {
			sizes = append(sizes, len(tr.Nodes[i].particles))
		}
	}
	sort.Ints(sizes)
	return sizes
}

// checkBuildAgreement cross-validates the production Morton build
// against the textbook insertion build on one system: same total mass,
// same root centre of mass, and the same multiset of leaf particle
// counts (both construct the same spatial decomposition).
func checkBuildAgreement(t *testing.T, n int, seed uint64, leafCap int) {
	t.Helper()
	s := randomSystem(n, seed)
	ref, err := BuildInsertion(s.Clone(), leafCap)
	if err != nil {
		t.Fatalf("insertion build: %v", err)
	}
	tr, err := Build(s, &Options{LeafCap: leafCap})
	if err != nil {
		t.Fatalf("morton build: %v", err)
	}

	if d := math.Abs(ref.RootMass() - tr.Root().Mass); d > 1e-9*math.Abs(ref.RootMass()) {
		t.Errorf("n=%d seed=%d cap=%d: root mass insertion %v vs morton %v",
			n, seed, leafCap, ref.RootMass(), tr.Root().Mass)
	}
	if d := ref.RootCOM().Sub(tr.Root().COM).Norm(); d > 1e-9 {
		t.Errorf("n=%d seed=%d cap=%d: root COM differs by %v", n, seed, leafCap, d)
	}

	a, b := leafSizesInsertion(ref), leafSizesMorton(tr)
	if len(a) != len(b) {
		t.Fatalf("n=%d seed=%d cap=%d: leaf count insertion %d vs morton %d",
			n, seed, leafCap, len(a), len(b))
	}
	total := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("n=%d seed=%d cap=%d: leaf size multiset differs at %d: %d vs %d",
				n, seed, leafCap, i, a[i], b[i])
		}
		total += a[i]
	}
	if total != n {
		t.Errorf("n=%d seed=%d cap=%d: leaves hold %d particles", n, seed, leafCap, total)
	}
}

func TestBuildAgreesWithInsertion(t *testing.T) {
	cases := []struct {
		n       int
		seed    uint64
		leafCap int
	}{
		{1, 1, 8},
		{2, 2, 1},
		{7, 3, 2},
		{64, 4, 8},
		{100, 5, 1},
		{256, 6, 4},
		{512, 7, 16},
		{1000, 8, 8},
		{2048, 9, 2},
	}
	for _, tc := range cases {
		checkBuildAgreement(t, tc.n, tc.seed, tc.leafCap)
	}
}

func TestBuildAgreesWithInsertionRandomized(t *testing.T) {
	// Property sweep over randomized shapes: size, seed and leaf
	// capacity all drawn from a deterministic stream.
	r := rng.New(42)
	for trial := 0; trial < 25; trial++ {
		n := 1 + int(r.Uint64()%700)
		seed := r.Uint64()
		leafCap := 1 + int(r.Uint64()%16)
		checkBuildAgreement(t, n, seed, leafCap)
	}
}

// FuzzBuildAgreement fuzzes the cross-validation: any (n, seed, cap)
// triple must yield agreeing trees.
func FuzzBuildAgreement(f *testing.F) {
	f.Add(uint16(64), uint64(1), uint8(8))
	f.Add(uint16(1), uint64(2), uint8(1))
	f.Add(uint16(300), uint64(99), uint8(3))
	f.Fuzz(func(t *testing.T, n uint16, seed uint64, leafCap uint8) {
		nn := 1 + int(n)%512
		cap := 1 + int(leafCap)%16
		checkBuildAgreement(t, nn, seed, cap)
	})
}
