// Package octree builds the Barnes-Hut octree. Particles are sorted
// along the Morton curve so every cell owns a contiguous index range;
// cells are split recursively by key octant with binary searches into
// the sorted key array. The centre-of-mass pass runs bottom-up during
// construction.
//
// The contiguous-range property is what makes Barnes' (1990) modified
// algorithm cheap: a particle group is just an index range, and the
// GRAPE host interface can stream it without gathering.
package octree

import (
	"fmt"
	"math"

	"repro/internal/morton"
	"repro/internal/nbody"
	"repro/internal/obs"
	"repro/internal/vec"
)

// NoChild marks an absent child slot.
const NoChild = int32(-1)

// Node is one octree cell.
type Node struct {
	// Box is the cubic cell volume.
	Box vec.Box
	// COM is the centre of mass of the cell's particles.
	COM vec.V3
	// Mass is the total mass in the cell.
	Mass float64
	// Size is the cell edge length.
	Size float64
	// Bmax is the distance from COM to the farthest cell corner, the
	// conservative effective size used by the bmax opening criterion.
	Bmax float64
	// Start and Count give the cell's particle index range in tree
	// (Morton) order.
	Start, Count int32
	// Children holds node indices of the up-to-8 children; NoChild
	// marks empty octants. Leaf nodes have all slots NoChild.
	Children [8]int32
	// Leaf marks cells that were not subdivided.
	Leaf bool
	// Level is the subdivision depth (root = 0).
	Level int32
}

// EffSize returns the opening-criterion effective size: the cell edge
// length, or the conservative COM-to-farthest-corner radius when
// useBmax is set. Both the scalar criterion (OpenCriterion.Accept) and
// the batched walk's lane gather read the quantity through this single
// accessor so the two paths cannot drift.
func (n *Node) EffSize(useBmax bool) float64 {
	if useBmax {
		return n.Bmax
	}
	return n.Size
}

// Tree is a built Barnes-Hut octree over a particle system. The system
// is reordered into Morton order by Build; Tree keeps a reference to
// its arrays.
//
// Trees produced by a Builder borrow the Builder's node arena: they
// stay valid until the Builder's next Build call. Trees from the
// standalone Build own their storage.
type Tree struct {
	// Nodes holds all cells; Nodes[0] is the root.
	Nodes []Node
	// Sys is the particle system the tree indexes (in tree order).
	Sys *nbody.System
	// LeafCap is the maximum particle count of a leaf cell.
	LeafCap int

	// groups caches the most recent Groups(ncrit) result. The cache is
	// born invalid on every (re)build — groupsNcrit 0 matches no valid
	// request — and survives Refresh, which changes masses and centres
	// of mass but not the cell topology the group ranges come from.
	groups      []Group
	groupsNcrit int
	groupStack  []int32
}

// Options configure tree construction.
type Options struct {
	// LeafCap is the maximum number of particles in a leaf. Default 8.
	LeafCap int
	// Obs, when non-nil, receives the Morton-sort and tree-build phase
	// spans of the construction.
	Obs *obs.Observer
}

func (o *Options) leafCap() int {
	if o == nil || o.LeafCap <= 0 {
		return 8
	}
	return o.LeafCap
}

func optObs(o *Options) *obs.Observer {
	if o == nil {
		return nil
	}
	return o.Obs
}

// Build sorts the system into Morton order (mutating it) and builds the
// octree. Every call allocates a fresh tree; the steady-state step loop
// uses a Builder instead, which reuses all construction scratch.
func Build(s *nbody.System, opt *Options) (*Tree, error) {
	b := NewBuilder(BuilderOptions{LeafCap: opt.leafCap(), Workers: 1, Obs: optObs(opt)})
	return b.Build(s)
}

// rootCube returns the cubic bounding volume of the system, with the
// degenerate all-coincident case given unit size so geometry stays
// finite.
func rootCube(s *nbody.System) vec.Box {
	cube := s.Bounds().Cube()
	if cube.MaxEdge() == 0 {
		cube = vec.NewBox(cube.Min.Sub(vec.V3{X: 0.5, Y: 0.5, Z: 0.5}),
			cube.Min.Add(vec.V3{X: 0.5, Y: 0.5, Z: 0.5}))
	}
	return cube
}

// octantEnd returns the first index in [lo, hi) whose key's octant at
// the given level exceeds oct — the end of oct's run in the sorted key
// array. Hand-rolled binary search: the per-node sort.Search closure
// was the build recursion's only heap allocation.
func octantEnd(keys []morton.Key, lo, hi, level int32, oct int) int32 {
	for lo < hi {
		mid := int32(uint32(lo+hi) >> 1)
		if keys[mid].OctantAtLevel(int(level)) <= oct {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// nodeBuilder appends the recursive octree construction into a node
// arena. The serial Build, the Builder's parallel subtree tasks and the
// parallel build's stitched spine all run this one recursion, which is
// what makes their outputs bitwise-identical.
type nodeBuilder struct {
	nodes   []Node
	sys     *nbody.System
	keys    []morton.Key
	leafCap int
}

// build recursively constructs the subtree for sorted key range
// [start, start+count) with cell box, at the given level, returning the
// node index.
func (nb *nodeBuilder) build(box vec.Box, start, count int32, level int32) int32 {
	idx := int32(len(nb.nodes))
	nb.nodes = append(nb.nodes, Node{
		Box:   box,
		Size:  box.MaxEdge(),
		Start: start,
		Count: count,
		Level: level,
	})
	for i := range nb.nodes[idx].Children {
		nb.nodes[idx].Children[i] = NoChild
	}

	if int(count) <= nb.leafCap || level >= morton.Bits-1 {
		nb.nodes[idx].Leaf = true
		finishLeafNode(nb.sys, &nb.nodes[idx])
		return idx
	}

	// Split [start, start+count) by octant at this level using binary
	// search: keys are sorted, and the octant bits at this level are a
	// prefix-ordered field within the node's range.
	lo := start
	for oct := 0; oct < 8; oct++ {
		hi := octantEnd(nb.keys, lo, start+count, level, oct)
		if hi > lo {
			child := nb.build(box.Child(oct), lo, hi-lo, level+1)
			nb.nodes[idx].Children[oct] = child
		}
		lo = hi
	}

	aggregateChildren(nb.nodes, idx, box)
	return idx
}

// aggregateChildren runs the centre-of-mass pass for internal node idx:
// mass, COM and bmax from its (already finished) children, in octant
// order. The parallel build's stitch phase uses the identical call for
// the spine, preserving floating-point summation order.
func aggregateChildren(nodes []Node, idx int32, box vec.Box) {
	var m float64
	var com vec.V3
	for _, c := range nodes[idx].Children {
		if c == NoChild {
			continue
		}
		cn := &nodes[c]
		m += cn.Mass
		com = com.MulAdd(cn.Mass, cn.COM)
	}
	n := &nodes[idx]
	n.Mass = m
	if m > 0 {
		n.COM = com.Scale(1 / m)
	} else {
		n.COM = box.Center()
	}
	n.Bmax = maxCornerDist(box, n.COM)
}

// finishLeafNode fills a leaf node's mass, COM and bmax from the
// system's particles in its range.
func finishLeafNode(sys *nbody.System, n *Node) {
	var m float64
	var com vec.V3
	for i := n.Start; i < n.Start+n.Count; i++ {
		mi := sys.Mass[i]
		m += mi
		com = com.MulAdd(mi, sys.Pos[i])
	}
	n.Mass = m
	if m > 0 {
		n.COM = com.Scale(1 / m)
	} else {
		n.COM = n.Box.Center()
	}
	n.Bmax = maxCornerDist(n.Box, n.COM)
}

// maxCornerDist returns the distance from p to the farthest corner of
// the box.
func maxCornerDist(b vec.Box, p vec.V3) float64 {
	var d2 float64
	for i := 0; i < 3; i++ {
		lo := p.Comp(i) - b.Min.Comp(i)
		hi := b.Max.Comp(i) - p.Comp(i)
		d := math.Max(math.Abs(lo), math.Abs(hi))
		d2 += d * d
	}
	return math.Sqrt(d2)
}

// Root returns the root node.
func (t *Tree) Root() *Node { return &t.Nodes[0] }

// NumNodes returns the total cell count.
func (t *Tree) NumNodes() int { return len(t.Nodes) }

// Depth returns the maximum node level plus one.
func (t *Tree) Depth() int {
	max := int32(0)
	for i := range t.Nodes {
		if t.Nodes[i].Level > max {
			max = t.Nodes[i].Level
		}
	}
	return int(max) + 1
}

// Refresh recomputes masses, centres of mass and bmax bottom-up from
// the current particle positions WITHOUT changing the cell topology.
// Together with a periodic full rebuild this implements tree reuse:
// between rebuilds particles drift slightly out of their cells, an
// approximation bounded by the drift distance, while the O(N log N)
// sort+build cost is amortised. (Classic 1990s treecode optimisation;
// the ablation benchmarks quantify the trade-off.)
//
// Refresh runs no recursion and allocates nothing: every constructor
// (nodeBuilder.build, the parallel build's byte-identical layout, the
// standalone Build) lays nodes out in preorder, so a parent's index is
// always smaller than its children's and a single reverse-index sweep
// visits children before parents. Each node's aggregation reads only
// its (already refreshed) children in octant order — the identical
// floating-point fold as the build — so refresh results are bitwise
// independent of the sweep's visit order. Block-timestep runs refresh
// once per substep, which is what makes the zero-cost sweep matter.
func (t *Tree) Refresh() {
	for idx := int32(len(t.Nodes)) - 1; idx >= 0; idx-- {
		n := &t.Nodes[idx]
		if n.Leaf {
			finishLeafNode(t.Sys, n)
		} else {
			aggregateChildren(t.Nodes, idx, n.Box)
		}
	}
}

// Groups returns the index ranges of the particle groups used by
// Barnes' modified algorithm: the shallowest cells containing at most
// ncrit particles. Every particle belongs to exactly one group, and
// each group is a contiguous range in tree order.
//
// The result is cached on the tree: repeat calls with the same ncrit
// (the RebuildEvery>1 reuse path, where Refresh changes cell contents
// but not topology) return the cached slice without re-scanning the
// tree. The cache is invalidated by rebuilds and by a different ncrit.
// Callers must not retain the slice across a rebuild.
func (t *Tree) Groups(ncrit int) []Group {
	if ncrit < 1 {
		ncrit = 1
	}
	if t.groupsNcrit == ncrit {
		return t.groups
	}
	t.groups = t.groups[:0]
	// Iterative preorder: push children 7..0 so octant 0 pops first,
	// matching the recursive descent's group order.
	stack := append(t.groupStack[:0], 0)
	for len(stack) > 0 {
		idx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &t.Nodes[idx]
		if int(n.Count) <= ncrit || n.Leaf {
			t.groups = append(t.groups, Group{Node: idx, Start: n.Start, Count: n.Count})
			continue
		}
		for oct := 7; oct >= 0; oct-- {
			if c := n.Children[oct]; c != NoChild {
				stack = append(stack, c)
			}
		}
	}
	t.groupStack = stack[:0]
	t.groupsNcrit = ncrit
	return t.groups
}

// Group is a particle group for the modified tree algorithm: the
// particles [Start, Start+Count) in tree order, contained in cell Node.
type Group struct {
	// Node is the index of the cell bounding this group.
	Node int32
	// Start, Count give the group's particle range in tree order.
	Start, Count int32
}

// Validate checks structural invariants of the tree: each internal
// node's children partition its range, masses add up, centres of mass
// lie inside the cell boxes, every particle lies in its leaf's box
// (allowing quantisation slack on faces).
func (t *Tree) Validate() error {
	var totalErr error
	var walk func(idx int32) (mass float64)
	walk = func(idx int32) float64 {
		n := &t.Nodes[idx]
		if n.Leaf {
			var m float64
			for i := n.Start; i < n.Start+n.Count; i++ {
				m += t.Sys.Mass[i]
				// Morton quantisation can place a particle exactly on
				// a cell face; allow slack of one quantisation step.
				slack := n.Size * 1e-6
				grown := vec.Box{
					Min: n.Box.Min.Sub(vec.V3{X: slack, Y: slack, Z: slack}),
					Max: n.Box.Max.Add(vec.V3{X: slack, Y: slack, Z: slack}),
				}
				if !grown.ContainsClosed(t.Sys.Pos[i]) {
					totalErr = fmt.Errorf("octree: particle %d outside leaf box", i)
				}
			}
			return m
		}
		var m float64
		next := n.Start
		for _, c := range n.Children {
			if c == NoChild {
				continue
			}
			cn := &t.Nodes[c]
			if cn.Start != next {
				totalErr = fmt.Errorf("octree: node %d children do not tile its range", idx)
			}
			next = cn.Start + cn.Count
			m += walk(c)
		}
		if next != n.Start+n.Count {
			totalErr = fmt.Errorf("octree: node %d range not covered by children", idx)
		}
		if math.Abs(m-n.Mass) > 1e-9*(1+math.Abs(m)) {
			totalErr = fmt.Errorf("octree: node %d mass mismatch %v vs %v", idx, n.Mass, m)
		}
		return m
	}
	root := walk(0)
	if math.Abs(root-t.Sys.TotalMass()) > 1e-9*(1+root) {
		return fmt.Errorf("octree: root mass %v != system mass %v", root, t.Sys.TotalMass())
	}
	return totalErr
}
