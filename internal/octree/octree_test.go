package octree

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/nbody"
	"repro/internal/rng"
	"repro/internal/vec"
)

func randomSystem(n int, seed uint64) *nbody.System {
	r := rng.New(seed)
	s := nbody.New(n)
	for i := range s.Pos {
		s.Pos[i] = vec.V3{X: r.Normal(), Y: r.Normal(), Z: r.Normal()}
		s.Mass[i] = 0.5 + r.Float64()
	}
	return s
}

func TestBuildSmall(t *testing.T) {
	s := randomSystem(100, 1)
	tr, err := Build(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Root().Count != 100 {
		t.Errorf("root count = %d", tr.Root().Count)
	}
}

func TestBuildEmptyFails(t *testing.T) {
	if _, err := Build(nbody.New(0), nil); err == nil {
		t.Error("empty build should fail")
	}
}

func TestBuildSingleParticle(t *testing.T) {
	s := nbody.New(1)
	s.Mass[0] = 2
	s.Pos[0] = vec.V3{X: 1, Y: 2, Z: 3}
	tr, err := Build(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Root().Leaf {
		t.Error("single particle should be a leaf root")
	}
	if tr.Root().Mass != 2 {
		t.Errorf("root mass = %v", tr.Root().Mass)
	}
	if tr.Root().COM.Sub(s.Pos[0]).Norm() > 1e-12 {
		t.Errorf("root COM = %v", tr.Root().COM)
	}
}

func TestBuildCoincidentParticles(t *testing.T) {
	// All particles at the same point: depth cap must terminate the
	// subdivision.
	s := nbody.New(20)
	for i := range s.Pos {
		s.Pos[i] = vec.V3{X: 1, Y: 1, Z: 1}
		s.Mass[i] = 1
	}
	tr, err := Build(s, &Options{LeafCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Root().Mass != 20 {
		t.Errorf("root mass = %v", tr.Root().Mass)
	}
}

func TestRootAggregates(t *testing.T) {
	s := randomSystem(500, 2)
	wantMass := s.TotalMass()
	wantCOM := s.CenterOfMass()
	tr, err := Build(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.Root().Mass-wantMass) > 1e-9 {
		t.Errorf("root mass = %v, want %v", tr.Root().Mass, wantMass)
	}
	if tr.Root().COM.Sub(wantCOM).Norm() > 1e-9 {
		t.Errorf("root COM = %v, want %v", tr.Root().COM, wantCOM)
	}
}

func TestLeafCapRespected(t *testing.T) {
	s := randomSystem(1000, 3)
	tr, err := Build(s, &Options{LeafCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Nodes {
		n := &tr.Nodes[i]
		if n.Leaf && int(n.Count) > 4 && n.Level < 20 {
			t.Errorf("leaf %d has %d > 4 particles at level %d", i, n.Count, n.Level)
		}
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	s := randomSystem(200, 4)
	tr, err := Build(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr.Nodes[0].Mass *= 2
	if err := tr.Validate(); err == nil {
		t.Error("Validate accepted corrupted root mass")
	}
}

func TestGroupsPartition(t *testing.T) {
	s := randomSystem(2000, 5)
	tr, err := Build(s, &Options{LeafCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, ncrit := range []int{1, 8, 64, 500, 5000} {
		groups := tr.Groups(ncrit)
		covered := make([]bool, s.N())
		for _, g := range groups {
			if int(g.Count) > ncrit && !tr.Nodes[g.Node].Leaf {
				t.Errorf("ncrit=%d: non-leaf group of %d particles", ncrit, g.Count)
			}
			for i := g.Start; i < g.Start+g.Count; i++ {
				if covered[i] {
					t.Fatalf("ncrit=%d: particle %d in two groups", ncrit, i)
				}
				covered[i] = true
			}
		}
		for i, c := range covered {
			if !c {
				t.Fatalf("ncrit=%d: particle %d not in any group", ncrit, i)
			}
		}
	}
}

func TestGroupsNcritOne(t *testing.T) {
	s := randomSystem(100, 6)
	tr, _ := Build(s, &Options{LeafCap: 1})
	groups := tr.Groups(1)
	if len(groups) != 100 {
		t.Errorf("ncrit=1 leafcap=1 gives %d groups, want 100", len(groups))
	}
}

func TestGroupsLargeNcritSingleGroup(t *testing.T) {
	s := randomSystem(100, 7)
	tr, _ := Build(s, nil)
	groups := tr.Groups(1000)
	if len(groups) != 1 {
		t.Errorf("ncrit > N gives %d groups, want 1", len(groups))
	}
}

// Property: tree invariants hold for random systems of random size.
func TestBuildInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(300)
		s := randomSystem(n, seed^0xabcdef)
		tr, err := Build(s, &Options{LeafCap: 1 + r.Intn(16)})
		if err != nil {
			return false
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMortonOrderIsContiguous(t *testing.T) {
	// After Build, each node's particles must be contiguous: verified
	// implicitly by Validate, but also check that leaves cover [0, N).
	s := randomSystem(777, 8)
	tr, _ := Build(s, nil)
	var total int32
	for i := range tr.Nodes {
		if tr.Nodes[i].Leaf {
			total += tr.Nodes[i].Count
		}
	}
	if total != 777 {
		t.Errorf("leaf counts sum to %d", total)
	}
}

func TestDepthReasonable(t *testing.T) {
	s := randomSystem(4096, 9)
	tr, _ := Build(s, &Options{LeafCap: 8})
	d := tr.Depth()
	if d < 3 || d > 21 {
		t.Errorf("depth = %d for 4096 uniform-ish particles", d)
	}
}

func TestMaxCornerDist(t *testing.T) {
	b := vec.NewBox(vec.V3{}, vec.V3{X: 2, Y: 2, Z: 2})
	// From the centre, farthest corner is sqrt(3).
	if d := maxCornerDist(b, vec.V3{X: 1, Y: 1, Z: 1}); math.Abs(d-math.Sqrt(3)) > 1e-12 {
		t.Errorf("centre corner dist = %v", d)
	}
	// From a corner, farthest corner is the full diagonal.
	if d := maxCornerDist(b, vec.V3{}); math.Abs(d-2*math.Sqrt(3)) > 1e-12 {
		t.Errorf("corner corner dist = %v", d)
	}
}

func TestOpenCriterion(t *testing.T) {
	n := &Node{Size: 1, Bmax: 2}
	mac := OpenCriterion{Theta: 0.5}
	// Accept requires d > s/θ = 2, i.e. d2 > 4.
	if mac.Accept(n, 3.9) {
		t.Error("accepted too close")
	}
	if !mac.Accept(n, 4.1) {
		t.Error("rejected far cell")
	}
	bm := OpenCriterion{Theta: 0.5, UseBmax: true}
	// With bmax=2 the threshold distance doubles: d2 > 16.
	if bm.Accept(n, 15) {
		t.Error("bmax accepted too close")
	}
	if !bm.Accept(n, 17) {
		t.Error("bmax rejected far cell")
	}
	// θ=0 never accepts.
	zero := OpenCriterion{Theta: 0}
	if zero.Accept(n, 1e30) {
		t.Error("θ=0 accepted a cell")
	}
}

func TestInsertionTreeMatchesMortonTree(t *testing.T) {
	s := randomSystem(512, 10)
	ref, err := BuildInsertion(s.Clone(), 8)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Build(s, &Options{LeafCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ref.RootMass()-tr.Root().Mass) > 1e-9 {
		t.Errorf("root mass: insertion %v vs morton %v", ref.RootMass(), tr.Root().Mass)
	}
	if ref.RootCOM().Sub(tr.Root().COM).Norm() > 1e-9 {
		t.Errorf("root COM: insertion %v vs morton %v", ref.RootCOM(), tr.Root().COM)
	}
}

func TestInsertionTreeLeafCount(t *testing.T) {
	s := randomSystem(256, 11)
	tr, err := BuildInsertion(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tr.CountLeaves() == 0 {
		t.Error("no leaves")
	}
	// Every particle must be in exactly one leaf.
	seen := make([]bool, s.N())
	for i := range tr.Nodes {
		n := &tr.Nodes[i]
		if !n.leaf {
			continue
		}
		for _, p := range n.particles {
			if seen[p] {
				t.Fatalf("particle %d in two leaves", p)
			}
			seen[p] = true
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("particle %d lost", i)
		}
	}
}

func TestInsertionEmptyFails(t *testing.T) {
	if _, err := BuildInsertion(nbody.New(0), 8); err == nil {
		t.Error("empty insertion build should fail")
	}
}
