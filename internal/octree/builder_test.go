package octree

import (
	"testing"

	"repro/internal/morton"
	"repro/internal/nbody"
	"repro/internal/rng"
	"repro/internal/vec"
)

// clusteredSystem builds a deterministic clustered test system: a few
// Gaussian blobs plus a uniform background, so trees get both deep and
// shallow regions.
func clusteredSystem(seed uint64, n int) *nbody.System {
	r := rng.New(seed)
	s := nbody.New(n)
	nblobs := 1 + r.Intn(4)
	centers := make([]vec.V3, nblobs)
	for b := range centers {
		centers[b] = vec.V3{
			X: r.Uniform(-1, 1),
			Y: r.Uniform(-1, 1),
			Z: r.Uniform(-1, 1),
		}
	}
	for i := 0; i < n; i++ {
		if r.Float64() < 0.8 {
			c := centers[r.Intn(nblobs)]
			s.Pos[i] = vec.V3{
				X: c.X + r.Normal()*0.05,
				Y: c.Y + r.Normal()*0.05,
				Z: c.Z + r.Normal()*0.05,
			}
		} else {
			s.Pos[i] = vec.V3{
				X: r.Uniform(-2, 2),
				Y: r.Uniform(-2, 2),
				Z: r.Uniform(-2, 2),
			}
		}
		s.Mass[i] = 0.5 + r.Float64()
	}
	return s
}

// forceParallel lowers the parallel threshold for the duration of a
// test so small systems exercise the parallel path.
func forceParallel(t *testing.T) {
	t.Helper()
	old := parallelMinN
	parallelMinN = 1
	t.Cleanup(func() { parallelMinN = old })
}

// assertTreesBitwiseEqual fails unless the two trees have identical
// node slices (compared with ==, so every float is bitwise-equal),
// identical particle orders and identical group lists.
func assertTreesBitwiseEqual(t *testing.T, serial, par *Tree, ncrit int) {
	t.Helper()
	if len(serial.Nodes) != len(par.Nodes) {
		t.Fatalf("node count: serial %d, parallel %d", len(serial.Nodes), len(par.Nodes))
	}
	for i := range serial.Nodes {
		if serial.Nodes[i] != par.Nodes[i] {
			t.Fatalf("node %d differs:\nserial:   %+v\nparallel: %+v", i, serial.Nodes[i], par.Nodes[i])
		}
	}
	for i := range serial.Sys.Pos {
		if serial.Sys.Pos[i] != par.Sys.Pos[i] || serial.Sys.ID[i] != par.Sys.ID[i] {
			t.Fatalf("particle order differs at %d: (%v, id %d) vs (%v, id %d)",
				i, serial.Sys.Pos[i], serial.Sys.ID[i], par.Sys.Pos[i], par.Sys.ID[i])
		}
	}
	gs, gp := serial.Groups(ncrit), par.Groups(ncrit)
	if len(gs) != len(gp) {
		t.Fatalf("group count: serial %d, parallel %d", len(gs), len(gp))
	}
	for i := range gs {
		if gs[i] != gp[i] {
			t.Fatalf("group %d differs: %+v vs %+v", i, gs[i], gp[i])
		}
	}
}

// TestBuildParallelMatchesSerial is the conformance property of the
// tentpole: the parallel build must be bitwise-identical to the serial
// build — same node layout, same floats, same particle order, same
// groups — for every worker count.
func TestBuildParallelMatchesSerial(t *testing.T) {
	forceParallel(t)
	cases := []struct {
		seed    uint64
		n       int
		leafCap int
	}{
		{1, 1, 8},
		{2, 7, 8},
		{3, 64, 1},
		{4, 500, 8},
		{5, 2000, 8},
		{6, 2000, 2},
		{7, 5000, 16},
		{8, 3000, 8},
	}
	for _, tc := range cases {
		for _, workers := range []int{2, 3, 4, 8} {
			ref := clusteredSystem(tc.seed, tc.n)
			ss, ps := ref.Clone(), ref.Clone()
			serial, err := NewBuilder(BuilderOptions{LeafCap: tc.leafCap, Workers: 1}).Build(ss)
			if err != nil {
				t.Fatal(err)
			}
			par, err := NewBuilder(BuilderOptions{LeafCap: tc.leafCap, Workers: workers}).Build(ps)
			if err != nil {
				t.Fatal(err)
			}
			assertTreesBitwiseEqual(t, serial, par, 32)
			if err := par.Validate(); err != nil {
				t.Fatalf("seed=%d n=%d workers=%d: %v", tc.seed, tc.n, workers, err)
			}
		}
	}
}

// TestBuilderReuseMatchesFresh drives one Builder across several
// perturbed "steps" and checks each reused-arena build against a fresh
// standalone Build of the same snapshot.
func TestBuilderReuseMatchesFresh(t *testing.T) {
	forceParallel(t)
	b := NewBuilder(BuilderOptions{LeafCap: 8, Workers: 4})
	sys := clusteredSystem(42, 1500)
	jig := rng.New(99)
	var prev *Tree
	for step := 0; step < 5; step++ {
		for i := range sys.Pos {
			sys.Pos[i].X += jig.Normal() * 0.01
			sys.Pos[i].Y += jig.Normal() * 0.01
			sys.Pos[i].Z += jig.Normal() * 0.01
		}
		ref := sys.Clone()
		reused, err := b.Build(sys)
		if err != nil {
			t.Fatal(err)
		}
		if reused == prev {
			t.Fatal("Builder returned the same *Tree header on a rebuild")
		}
		prev = reused
		fresh, err := Build(ref, &Options{LeafCap: 8})
		if err != nil {
			t.Fatal(err)
		}
		assertTreesBitwiseEqual(t, fresh, reused, 64)
	}
}

// TestGroupsCached pins the Groups cache contract: repeat calls with
// the same ncrit return the identical cached slice, the cache survives
// Refresh (topology unchanged), a different ncrit recomputes, and a
// rebuild invalidates.
func TestGroupsCached(t *testing.T) {
	b := NewBuilder(BuilderOptions{LeafCap: 8, Workers: 1})
	sys := clusteredSystem(7, 800)
	tree, err := b.Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	g1 := tree.Groups(32)
	g2 := tree.Groups(32)
	if len(g1) == 0 || &g1[0] != &g2[0] {
		t.Fatal("repeat Groups(32) did not return the cached slice")
	}

	tree.Refresh()
	g3 := tree.Groups(32)
	if &g1[0] != &g3[0] {
		t.Fatal("Groups cache did not survive Refresh")
	}

	g64 := tree.Groups(64)
	if len(g64) > len(g1) {
		t.Fatalf("larger ncrit produced more groups: %d > %d", len(g64), len(g1))
	}
	back := tree.Groups(32)
	if len(back) != len(g1) {
		t.Fatalf("ncrit switch broke recompute: %d != %d", len(back), len(g1))
	}

	// Rebuild: the new tree must not serve the old tree's group list.
	for i := range sys.Pos {
		sys.Pos[i].X += 0.5
	}
	tree2, err := b.Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Build(sys.Clone(), &Options{LeafCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, want := tree2.Groups(32), fresh.Groups(32)
	if len(got) != len(want) {
		t.Fatalf("post-rebuild groups stale: %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("post-rebuild group %d stale: %+v != %+v", i, got[i], want[i])
		}
	}
}

// TestGroupsMatchRecursiveReference checks the iterative cached Groups
// against an independent recursive implementation of the definition.
func TestGroupsMatchRecursiveReference(t *testing.T) {
	sys := clusteredSystem(11, 1200)
	tree, err := Build(sys, &Options{LeafCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, ncrit := range []int{1, 8, 33, 200, 5000} {
		var want []Group
		var walk func(idx int32)
		walk = func(idx int32) {
			n := &tree.Nodes[idx]
			if int(n.Count) <= ncrit || n.Leaf {
				want = append(want, Group{Node: idx, Start: n.Start, Count: n.Count})
				return
			}
			for _, c := range n.Children {
				if c != NoChild {
					walk(c)
				}
			}
		}
		walk(0)
		got := tree.Groups(ncrit)
		if len(got) != len(want) {
			t.Fatalf("ncrit=%d: %d groups, want %d", ncrit, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("ncrit=%d group %d: %+v != %+v", ncrit, i, got[i], want[i])
			}
		}
	}
}

// TestBuildSteadyStateAllocs pins the arena property: after warmup, a
// Builder's Build performs only the constant-size Tree-header
// allocation, independent of N.
func TestBuildSteadyStateAllocs(t *testing.T) {
	b := NewBuilder(BuilderOptions{LeafCap: 8, Workers: 1})
	sys := clusteredSystem(13, 4000)
	for i := 0; i < 3; i++ {
		if _, err := b.Build(sys); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := b.Build(sys); err != nil {
			t.Fatal(err)
		}
	})
	// One allocation for the fresh *Tree header; a little slack for the
	// runtime.
	if allocs > 2 {
		t.Fatalf("steady-state Build allocates %.1f objects/run, want <= 2", allocs)
	}
}

// FuzzBuildParallel fuzzes the conformance property over seed, size,
// leaf capacity and worker count.
func FuzzBuildParallel(f *testing.F) {
	f.Add(int64(1), uint16(100), uint8(8), uint8(4))
	f.Add(int64(2), uint16(1000), uint8(1), uint8(2))
	f.Add(int64(3), uint16(2500), uint8(16), uint8(8))
	f.Add(int64(4), uint16(3), uint8(4), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, n uint16, leafCap, workers uint8) {
		forceParallel(t)
		nn := int(n)%3000 + 1
		lc := int(leafCap)%32 + 1
		w := int(workers)%8 + 2
		ref := clusteredSystem(uint64(seed), nn)
		ss, ps := ref.Clone(), ref.Clone()
		serial, err := NewBuilder(BuilderOptions{LeafCap: lc, Workers: 1}).Build(ss)
		if err != nil {
			t.Fatal(err)
		}
		par, err := NewBuilder(BuilderOptions{LeafCap: lc, Workers: w}).Build(ps)
		if err != nil {
			t.Fatal(err)
		}
		assertTreesBitwiseEqual(t, serial, par, lc*4)
	})
}

// TestOctantEndMatchesReference checks the hand-rolled binary search
// against a linear scan on sorted key runs.
func TestOctantEndMatchesReference(t *testing.T) {
	sys := clusteredSystem(17, 600)
	tree, err := Build(sys, &Options{LeafCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	cube := rootCube(sys)
	// keys are in tree (sorted) order after Build reordered sys; octant
	// order at a node's level is monotonic only inside the node's range
	// (where all keys share the prefix), so the check walks real nodes.
	keys := morton.Keys(sys.Pos, cube)
	for ni := range tree.Nodes {
		n := &tree.Nodes[ni]
		if n.Leaf {
			continue
		}
		lo := n.Start
		for oct := 0; oct < 8; oct++ {
			hi := octantEnd(keys, lo, n.Start+n.Count, n.Level, oct)
			want := lo
			for want < n.Start+n.Count && keys[want].OctantAtLevel(int(n.Level)) <= oct {
				want++
			}
			if hi != want {
				t.Fatalf("node=%d level=%d oct=%d lo=%d: got %d, want %d", ni, n.Level, oct, lo, hi, want)
			}
			lo = hi
		}
	}
}
