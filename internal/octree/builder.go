package octree

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/morton"
	"repro/internal/nbody"
	"repro/internal/obs"
	"repro/internal/vec"
)

// parallelMinN is the particle count below which the parallel build is
// not worth the plan/stitch overhead and the Builder stays serial. It
// is a variable only so conformance tests can force the parallel path
// at small N; production code treats it as a constant.
var parallelMinN = 4096

// maxSplitLevel bounds the split-level search: 8^8 cells is far beyond
// any sane worker count, so deeper frontiers never help.
const maxSplitLevel = 8

// BuilderOptions configure a Builder.
type BuilderOptions struct {
	// LeafCap is the maximum number of particles in a leaf. Default 8.
	LeafCap int
	// Workers is the number of goroutines used for subtree
	// construction. 0 means GOMAXPROCS; 1 forces the serial build.
	Workers int
	// Obs, when non-nil, receives the Morton-sort and tree-build phase
	// spans of each Build.
	Obs *obs.Observer
}

// Builder owns all scratch of the per-step tree construction: Morton
// key and sort-order buffers, the particle permutation scratch, the
// node arena, and the parallel build's plan and per-subtree arenas. A
// Builder reused across steps makes the whole sort+build allocation-free
// in steady state (only the small Tree header is allocated per build,
// so tree-reuse policies that compare tree identity keep working).
//
// The parallel build is bitwise-deterministic: it produces a node slice
// byte-identical to the serial build's, independent of worker count and
// scheduling. See the determinism argument on buildParallel.
//
// A Builder is not safe for concurrent use; trees it returns borrow its
// node arena and stay valid only until the next Build call.
type Builder struct {
	leafCap int
	workers int
	ob      *obs.Observer

	keys   []morton.Key
	sorted []morton.Key
	orderA []int
	orderB []int
	perm   nbody.PermScratch

	arena []Node

	// Parallel-build plan scratch.
	spine      []spineNode
	tasks      []buildTask
	taskArenas [][]Node
	spanA      []keySpan
	spanB      []keySpan
	cursor     atomic.Int64

	// Worker call context, set only for the duration of one parallel
	// build (the Builder itself is single-caller).
	wsys  *nbody.System
	wkeys []morton.Key

	prev *Tree
}

// spineNode is a planned internal node above the split frontier. Child
// refs are spine indices when >= 0, NoChild when -1, and encoded task
// references -(ti+2) when <= -2.
type spineNode struct {
	box          vec.Box
	start, count int32
	level        int32
	children     [8]int32
}

// buildTask is one independently buildable subtree at or above the
// split frontier.
type buildTask struct {
	box          vec.Box
	start, count int32
	level        int32
}

// keySpan is a particle index range used by the split-level search.
type keySpan struct{ start, count int32 }

// NewBuilder returns a Builder with the given options.
func NewBuilder(o BuilderOptions) *Builder {
	lc := o.LeafCap
	if lc <= 0 {
		lc = 8
	}
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Builder{leafCap: lc, workers: w, ob: o.Obs}
}

// LeafCap returns the builder's leaf capacity.
func (b *Builder) LeafCap() int { return b.leafCap }

// Workers returns the builder's worker count.
func (b *Builder) Workers() int { return b.workers }

// Build sorts the system into Morton order (mutating it) and builds the
// octree into the Builder's arena, reusing all scratch from the
// previous call. The returned tree is a fresh header borrowing the
// arena: it is valid until the next Build.
func (b *Builder) Build(s *nbody.System) (*Tree, error) {
	n := s.N()
	if n == 0 {
		return nil, fmt.Errorf("octree: empty system")
	}
	cube := rootCube(s)

	t0 := time.Now()
	b.keys = morton.KeysInto(b.keys, s.Pos, cube)
	// Pre-grow both radix ping-pong buffers so the sort never grows
	// them internally (the returned permutation aliases one of them).
	if cap(b.orderA) < n {
		b.orderA = make([]int, n)
	}
	if cap(b.orderB) < n {
		b.orderB = make([]int, n)
	}
	order := morton.SortOrderRadixInto(b.keys, b.orderA, b.orderB)
	if err := s.ApplyOrderScratch(order, &b.perm); err != nil {
		return nil, err
	}
	if cap(b.sorted) < n {
		b.sorted = make([]morton.Key, n)
	}
	b.sorted = b.sorted[:n]
	for i, idx := range order {
		b.sorted[i] = b.keys[idx]
	}
	b.ob.AddSeconds(obs.PhaseMortonSort, time.Since(t0).Seconds())

	t1 := time.Now()
	if b.workers > 1 && n >= parallelMinN {
		b.buildParallel(s, b.sorted, cube, int32(n))
	} else {
		nb := nodeBuilder{nodes: b.arena[:0], sys: s, keys: b.sorted, leafCap: b.leafCap}
		nb.build(cube, 0, int32(n), 0)
		b.arena = nb.nodes
	}
	b.ob.AddSeconds(obs.PhaseTreeBuild, time.Since(t1).Seconds())

	t := &Tree{Nodes: b.arena, Sys: s, LeafCap: b.leafCap}
	// Recycle the dead previous tree's groups-cache storage so the
	// steady-state Groups call allocates nothing either.
	if p := b.prev; p != nil {
		t.groups, t.groupStack = p.groups[:0], p.groupStack[:0]
		p.groups, p.groupStack = nil, nil
	}
	b.prev = t
	return t, nil
}

// buildParallel constructs the tree with b.workers goroutines while
// keeping the node slice byte-identical to the serial build.
//
// Determinism argument: the serial build is a preorder DFS, so every
// subtree occupies a contiguous, pre-determined node-index range whose
// internal child pointers are (range base + local preorder offset). The
// plan pass replays the serial descent down to a split level, recording
// the spine of internal nodes and the frontier subtrees as tasks in
// serial visit order. Workers build each task into its own arena — the
// exact recursion the serial build would run, so node contents and
// local layout are bit-identical regardless of which worker runs it or
// when. The stitch pass then emits spine nodes and task arenas in the
// planned preorder, offsetting child indices by each subtree's base;
// spine aggregation reuses aggregateChildren, summing children in
// octant order exactly as the serial recursion does. Every float is
// therefore computed by the same code on the same operands in the same
// order as the serial build; scheduling only changes when, not what.
func (b *Builder) buildParallel(s *nbody.System, keys []morton.Key, cube vec.Box, n int32) {
	split := b.pickSplitLevel(keys, n)
	b.spine = b.spine[:0]
	b.tasks = b.tasks[:0]
	rootRef := b.plan(keys, cube, 0, n, 0, split)
	for len(b.taskArenas) < len(b.tasks) {
		b.taskArenas = append(b.taskArenas, nil)
	}

	b.wsys, b.wkeys = s, keys
	b.cursor.Store(0)
	nw := b.workers
	if nw > len(b.tasks) {
		nw = len(b.tasks)
	}
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go b.taskWorker(&wg)
	}
	wg.Wait()
	b.wsys, b.wkeys = nil, nil

	b.arena = b.arena[:0]
	if rootRef >= 0 {
		b.emitSpine(rootRef)
	} else {
		b.emitTask(-(rootRef + 2))
	}
}

// pickSplitLevel returns the first tree level whose frontier holds at
// least b.workers splittable subtrees, walking the implicit tree
// breadth-first over the sorted keys. Bounded by maxSplitLevel so
// pathological clustering cannot make the plan itself expensive.
func (b *Builder) pickSplitLevel(keys []morton.Key, n int32) int32 {
	cur, nxt := b.spanA[:0], b.spanB[:0]
	cur = append(cur, keySpan{0, n})
	level := int32(0)
	for level < maxSplitLevel && level < morton.Bits-1 {
		splittable := 0
		for _, sp := range cur {
			if int(sp.count) > b.leafCap {
				splittable++
			}
		}
		if splittable == 0 || splittable >= b.workers {
			break
		}
		nxt = nxt[:0]
		for _, sp := range cur {
			if int(sp.count) <= b.leafCap {
				continue
			}
			lo := sp.start
			for oct := 0; oct < 8; oct++ {
				hi := octantEnd(keys, lo, sp.start+sp.count, level, oct)
				if hi > lo {
					nxt = append(nxt, keySpan{lo, hi - lo})
				}
				lo = hi
			}
		}
		cur, nxt = nxt, cur
		level++
	}
	b.spanA, b.spanB = cur, nxt
	return level
}

// plan replays the serial descent down to the split level, recording
// spine nodes and frontier tasks in serial preorder. It returns a child
// ref: a spine index when >= 0, or -(task index + 2).
func (b *Builder) plan(keys []morton.Key, box vec.Box, start, count, level, split int32) int32 {
	if int(count) <= b.leafCap || level >= morton.Bits-1 || level == split {
		ti := int32(len(b.tasks))
		b.tasks = append(b.tasks, buildTask{box: box, start: start, count: count, level: level})
		return -(ti + 2)
	}
	si := int32(len(b.spine))
	b.spine = append(b.spine, spineNode{box: box, start: start, count: count, level: level})
	for i := range b.spine[si].children {
		b.spine[si].children[i] = NoChild
	}
	lo := start
	for oct := 0; oct < 8; oct++ {
		hi := octantEnd(keys, lo, start+count, level, oct)
		if hi > lo {
			b.spine[si].children[oct] = b.plan(keys, box.Child(oct), lo, hi-lo, level+1, split)
		}
		lo = hi
	}
	return si
}

// taskWorker pulls task indices off the shared atomic cursor and builds
// each subtree into its dedicated, reused arena slot. Dispatch order is
// irrelevant to the result: every task writes only its own slot.
func (b *Builder) taskWorker(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		ti := int(b.cursor.Add(1)) - 1
		if ti >= len(b.tasks) {
			return
		}
		t := b.tasks[ti]
		nb := nodeBuilder{nodes: b.taskArenas[ti][:0], sys: b.wsys, keys: b.wkeys, leafCap: b.leafCap}
		nb.build(t.box, t.start, t.count, t.level)
		b.taskArenas[ti] = nb.nodes
	}
}

// emitSpine appends spine node si and its planned subtrees to the arena
// in preorder, then aggregates its mass/COM/bmax exactly as the serial
// build's bottom-up pass does.
func (b *Builder) emitSpine(si int32) int32 {
	sn := b.spine[si]
	idx := int32(len(b.arena))
	b.arena = append(b.arena, Node{
		Box:   sn.box,
		Size:  sn.box.MaxEdge(),
		Start: sn.start,
		Count: sn.count,
		Level: sn.level,
	})
	for i := range b.arena[idx].Children {
		b.arena[idx].Children[i] = NoChild
	}
	for oct := 0; oct < 8; oct++ {
		ref := sn.children[oct]
		if ref == NoChild {
			continue
		}
		var child int32
		if ref >= 0 {
			child = b.emitSpine(ref)
		} else {
			child = b.emitTask(-(ref + 2))
		}
		b.arena[idx].Children[oct] = child
	}
	aggregateChildren(b.arena, idx, sn.box)
	return idx
}

// emitTask appends a built subtree arena at the current end of the node
// arena, rebasing its local child indices, and returns the subtree
// root's global index (its base).
func (b *Builder) emitTask(ti int32) int32 {
	base := int32(len(b.arena))
	b.arena = append(b.arena, b.taskArenas[ti]...)
	for i := int(base); i < len(b.arena); i++ {
		for j, c := range b.arena[i].Children {
			if c != NoChild {
				b.arena[i].Children[j] = c + base
			}
		}
	}
	return base
}
