package octree

// OpenCriterion is the multipole acceptance criterion (MAC) deciding
// whether a cell may be used as a single point mass from a given
// squared distance, or must be opened.
type OpenCriterion struct {
	// Theta is the Barnes-Hut opening parameter. Smaller is more
	// accurate; 0 forces full opening (degenerates to direct summation).
	Theta float64
	// UseBmax selects the conservative criterion comparing the distance
	// from the cell's centre of mass to its farthest corner (bmax)
	// rather than the cell edge length. This matches the criterion of
	// the Barnes (1990) vectorised code more closely and avoids the
	// detonating-cell pathology of the plain geometric MAC.
	UseBmax bool
}

// Accept reports whether the cell n may be approximated by its centre
// of mass when the squared distance from the field point (or from the
// receiving group's surface) to n.COM is d2.
//
// This is the scalar criterion; the group walk evaluates the same
// predicate in batches through hostk.MACSink, whose conformance tests
// pin exact bool-for-bool agreement with this function.
func (c OpenCriterion) Accept(n *Node, d2 float64) bool {
	s := n.EffSize(c.UseBmax)
	// Accept when s < θ·d, i.e. s² < θ²·d².
	return s*s < c.Theta*c.Theta*d2
}
