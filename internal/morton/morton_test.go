package morton

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/vec"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := [][3]uint32{
		{0, 0, 0},
		{1, 2, 3},
		{maxCoord, maxCoord, maxCoord},
		{maxCoord, 0, 12345},
	}
	for _, c := range cases {
		k := Encode(c[0], c[1], c[2])
		x, y, z := k.Decode()
		if x != c[0] || y != c[1] || z != c[2] {
			t.Errorf("round trip (%d,%d,%d) -> (%d,%d,%d)", c[0], c[1], c[2], x, y, z)
		}
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(x, y, z uint32) bool {
		x &= maxCoord
		y &= maxCoord
		z &= maxCoord
		gx, gy, gz := Encode(x, y, z).Decode()
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeOrderPreservation(t *testing.T) {
	// Increasing one coordinate with others fixed increases the key.
	k1 := Encode(5, 10, 20)
	k2 := Encode(6, 10, 20)
	if k2 <= k1 {
		t.Error("key not monotone in x")
	}
	k3 := Encode(5, 11, 20)
	if k3 <= k1 {
		t.Error("key not monotone in y")
	}
}

func TestQuantizeClamps(t *testing.T) {
	box := vec.NewBox(vec.V3{}, vec.V3{X: 1, Y: 1, Z: 1})
	ix, iy, iz := Quantize(vec.V3{X: -5, Y: 2, Z: 0.5}, box)
	if ix != 0 {
		t.Errorf("below-min not clamped: %d", ix)
	}
	if iy != maxCoord {
		t.Errorf("above-max not clamped: %d", iy)
	}
	if iz == 0 || iz == maxCoord {
		t.Errorf("interior point at boundary: %d", iz)
	}
}

func TestQuantizeDegenerateBox(t *testing.T) {
	box := vec.NewBox(vec.V3{X: 1, Y: 1, Z: 1}, vec.V3{X: 1, Y: 1, Z: 1})
	ix, iy, iz := Quantize(vec.V3{X: 1, Y: 1, Z: 1}, box)
	if ix != 0 || iy != 0 || iz != 0 {
		t.Errorf("degenerate box quantise = (%d,%d,%d)", ix, iy, iz)
	}
}

// Property: the top-level Morton octant equals the geometric octant of
// the bounding cube. This is the invariant that lets the tree build use
// sorted keys for splitting.
func TestOctantMatchesGeometryProperty(t *testing.T) {
	box := vec.NewBox(vec.V3{X: -1, Y: -1, Z: -1}, vec.V3{X: 1, Y: 1, Z: 1})
	f := func(seed uint64) bool {
		r := rng.New(seed)
		p := vec.V3{X: r.Uniform(-1, 1), Y: r.Uniform(-1, 1), Z: r.Uniform(-1, 1)}
		k := KeyFor(p, box)
		return k.OctantAtLevel(0) == box.Octant(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: second-level Morton octant equals the geometric octant in
// the first-level child box.
func TestOctantLevel1MatchesGeometry(t *testing.T) {
	box := vec.NewBox(vec.V3{}, vec.V3{X: 8, Y: 8, Z: 8})
	r := rng.New(77)
	for i := 0; i < 500; i++ {
		p := vec.V3{X: r.Uniform(0, 8), Y: r.Uniform(0, 8), Z: r.Uniform(0, 8)}
		k := KeyFor(p, box)
		child := box.Child(box.Octant(p))
		if k.OctantAtLevel(1) != child.Octant(p) {
			t.Fatalf("level-1 octant mismatch for %v: morton %d geo %d",
				p, k.OctantAtLevel(1), child.Octant(p))
		}
	}
}

func TestSortOrder(t *testing.T) {
	keys := []Key{5, 1, 3, 1, 9}
	order := SortOrder(keys)
	sorted := make([]Key, len(keys))
	for i, idx := range order {
		sorted[i] = keys[idx]
	}
	if !sort.SliceIsSorted(sorted, func(a, b int) bool { return sorted[a] < sorted[b] }) {
		t.Errorf("not sorted: %v", sorted)
	}
	// Stability: the two equal keys (indices 1 and 3) keep input order.
	if order[0] != 1 || order[1] != 3 {
		t.Errorf("stable sort violated: %v", order)
	}
}

func TestKeys(t *testing.T) {
	box := vec.NewBox(vec.V3{}, vec.V3{X: 1, Y: 1, Z: 1})
	pos := []vec.V3{{X: 0.1, Y: 0.1, Z: 0.1}, {X: 0.9, Y: 0.9, Z: 0.9}}
	keys := Keys(pos, box)
	if len(keys) != 2 {
		t.Fatal("wrong length")
	}
	if keys[0] >= keys[1] {
		t.Error("corner ordering wrong")
	}
}

func TestSortOrderRadixMatchesComparison(t *testing.T) {
	r := rng.New(55)
	for trial := 0; trial < 10; trial++ {
		n := 1 + r.Intn(2000)
		keys := make([]Key, n)
		for i := range keys {
			keys[i] = Key(r.Uint64() >> 1)
		}
		// Inject duplicates to exercise stability.
		for i := 0; i+1 < n; i += 7 {
			keys[i+1] = keys[i]
		}
		a := SortOrder(keys)
		b := SortOrderRadix(keys)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: radix differs from comparison at %d: %d vs %d",
					trial, i, b[i], a[i])
			}
		}
	}
}

func TestSortOrderRadixEdgeCases(t *testing.T) {
	if got := SortOrderRadix(nil); len(got) != 0 {
		t.Errorf("nil keys: %v", got)
	}
	if got := SortOrderRadix([]Key{42}); len(got) != 1 || got[0] != 0 {
		t.Errorf("single key: %v", got)
	}
	// All-equal keys keep input order (stability).
	got := SortOrderRadix([]Key{7, 7, 7, 7})
	for i, idx := range got {
		if idx != i {
			t.Errorf("equal keys reordered: %v", got)
		}
	}
}
