// Package morton implements 3-D Morton (Z-order) keys. The tree build
// sorts particles along the Morton curve so that each octree cell owns
// a contiguous index range; Barnes' modified algorithm then gets its
// particle groups as slices, with no per-group copying. This is the
// standard key construction of Warren & Salmon's hashed octree.
package morton

import (
	"sort"

	"repro/internal/vec"
)

// Bits is the number of bits of resolution per coordinate. 3*21 = 63
// bits fit in a uint64 key.
const Bits = 21

// maxCoord is the largest quantised coordinate value.
const maxCoord = (1 << Bits) - 1

// Key is a 63-bit Morton key: three 21-bit coordinates interleaved
// x0y0z0 x1y1z1 ... with z in the most significant position of each
// triple.
type Key uint64

// spread3 inserts two zero bits between each of the low 21 bits of v.
func spread3(v uint64) uint64 {
	v &= 0x1fffff // 21 bits
	v = (v | v<<32) & 0x1f00000000ffff
	v = (v | v<<16) & 0x1f0000ff0000ff
	v = (v | v<<8) & 0x100f00f00f00f00f
	v = (v | v<<4) & 0x10c30c30c30c30c3
	v = (v | v<<2) & 0x1249249249249249
	return v
}

// compact3 is the inverse of spread3.
func compact3(v uint64) uint64 {
	v &= 0x1249249249249249
	v = (v ^ v>>2) & 0x10c30c30c30c30c3
	v = (v ^ v>>4) & 0x100f00f00f00f00f
	v = (v ^ v>>8) & 0x1f0000ff0000ff
	v = (v ^ v>>16) & 0x1f00000000ffff
	v = (v ^ v>>32) & 0x1fffff
	return v
}

// Encode interleaves three quantised coordinates (each < 2^21) into a key.
func Encode(ix, iy, iz uint32) Key {
	return Key(spread3(uint64(ix)) | spread3(uint64(iy))<<1 | spread3(uint64(iz))<<2)
}

// Decode recovers the quantised coordinates from a key.
func (k Key) Decode() (ix, iy, iz uint32) {
	return uint32(compact3(uint64(k))),
		uint32(compact3(uint64(k) >> 1)),
		uint32(compact3(uint64(k) >> 2))
}

// Quantize maps position p inside box to quantised coordinates. Points
// outside the box are clamped to its faces.
func Quantize(p vec.V3, box vec.Box) (ix, iy, iz uint32) {
	size := box.Size()
	q := func(v, lo, ext float64) uint32 {
		if ext <= 0 {
			return 0
		}
		f := (v - lo) / ext * (maxCoord + 1)
		if f < 0 {
			f = 0
		}
		if f > maxCoord {
			f = maxCoord
		}
		return uint32(f)
	}
	return q(p.X, box.Min.X, size.X), q(p.Y, box.Min.Y, size.Y), q(p.Z, box.Min.Z, size.Z)
}

// KeyFor returns the Morton key of position p within box.
func KeyFor(p vec.V3, box vec.Box) Key {
	ix, iy, iz := Quantize(p, box)
	return Encode(ix, iy, iz)
}

// OctantAtLevel returns the octant index (0..7) of the key at the given
// tree level; level 0 is the most significant triple (the root split).
// The octant bit layout matches vec.Box.Octant: bit0=X, bit1=Y, bit2=Z.
func (k Key) OctantAtLevel(level int) int {
	shift := uint(3 * (Bits - 1 - level))
	triple := (uint64(k) >> shift) & 7
	// Key layout has z in bit 2, y in bit 1, x in bit 0 of each triple,
	// matching Box.Octant already.
	return int(triple)
}

// Keys computes Morton keys for a position slice within box.
func Keys(pos []vec.V3, box vec.Box) []Key {
	return KeysInto(nil, pos, box)
}

// KeysInto computes Morton keys for a position slice within box,
// writing into dst when its capacity suffices (the arena variant used
// by the reusable tree builder: steady-state builds allocate nothing
// here). It returns the filled slice, which callers must retain as the
// scratch for the next call.
func KeysInto(dst []Key, pos []vec.V3, box vec.Box) []Key {
	if cap(dst) < len(pos) {
		dst = make([]Key, len(pos))
	}
	dst = dst[:len(pos)]
	for i, p := range pos {
		dst[i] = KeyFor(p, box)
	}
	return dst
}

// SortOrder returns a permutation that sorts the keys ascending. The
// sort is stable so equal keys keep their input order (deterministic
// builds). This is the comparison-sort reference; production tree
// builds use SortOrderRadix.
func SortOrder(keys []Key) []int {
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	return order
}

// SortOrderRadix returns the same permutation as SortOrder via an LSD
// radix sort over the 63 key bits (8 passes of 8 bits): O(N), stable,
// and substantially faster than comparison sorting for the
// multi-million-particle builds of the headline run.
func SortOrderRadix(keys []Key) []int {
	return SortOrderRadixInto(keys, nil, nil)
}

// SortOrderRadixInto is SortOrderRadix writing into caller-owned
// scratch: a and b are the two ping-pong permutation buffers (grown
// only when too small). The returned slice — which holds the final
// permutation — aliases one of the two buffers, so callers reusing the
// scratch must consume (or copy) the result before the next call.
func SortOrderRadixInto(keys []Key, a, b []int) []int {
	n := len(keys)
	if cap(a) < n {
		a = make([]int, n)
	}
	order := a[:n]
	for i := range order {
		order[i] = i
	}
	if n < 2 {
		return order
	}
	if cap(b) < n {
		b = make([]int, n)
	}
	tmp := b[:n]
	var counts [256]int
	for pass := 0; pass < 8; pass++ {
		shift := uint(8 * pass)
		for i := range counts {
			counts[i] = 0
		}
		for _, idx := range order {
			counts[(uint64(keys[idx])>>shift)&0xff]++
		}
		// Skip passes where all keys share the byte (common for the
		// high bytes of shallow distributions).
		if counts[(uint64(keys[order[0]])>>shift)&0xff] == n {
			continue
		}
		total := 0
		for i := range counts {
			counts[i], total = total, total+counts[i]
		}
		for _, idx := range order {
			b := (uint64(keys[idx]) >> shift) & 0xff
			tmp[counts[b]] = idx
			counts[b]++
		}
		order, tmp = tmp, order
	}
	return order
}
