package analysis

import (
	"fmt"
	"io"
	"math"

	"repro/internal/nbody"
)

// Projection is a 2-D particle-count image of a slab, the form of the
// paper's Figure 4 ("particles in a 45Mpc × 45Mpc × 2.5Mpc box are
// plotted").
type Projection struct {
	// W, H are the image dimensions in pixels.
	W, H int
	// Counts holds particle counts per pixel, row-major, y-major.
	Counts []int
	// Kept is the number of particles inside the slab.
	Kept int
	// XMin, XMax, YMin, YMax bound the projected plane.
	XMin, XMax, YMin, YMax float64
}

// SlabSpec selects the slab: particles with ZMin <= z < ZMax projected
// onto the (x, y) plane window [XMin,XMax) × [YMin,YMax).
type SlabSpec struct {
	XMin, XMax, YMin, YMax, ZMin, ZMax float64
}

// Figure4Slab returns the paper's slab for a sphere of the given
// physical radius centred at the origin: a 0.9R × 0.9R window (45 Mpc
// of a 50 Mpc sphere) with thickness 0.05R (2.5 Mpc).
func Figure4Slab(radius float64) SlabSpec {
	half := 0.45 * radius
	thick := 0.025 * radius
	return SlabSpec{
		XMin: -half, XMax: half,
		YMin: -half, YMax: half,
		ZMin: -thick, ZMax: thick,
	}
}

// Project renders the slab at the given pixel resolution.
func Project(s *nbody.System, spec SlabSpec, w, h int) (*Projection, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("analysis: non-positive image size")
	}
	if !(spec.XMax > spec.XMin) || !(spec.YMax > spec.YMin) || !(spec.ZMax > spec.ZMin) {
		return nil, fmt.Errorf("analysis: degenerate slab")
	}
	p := &Projection{
		W: w, H: h, Counts: make([]int, w*h),
		XMin: spec.XMin, XMax: spec.XMax, YMin: spec.YMin, YMax: spec.YMax,
	}
	sx := float64(w) / (spec.XMax - spec.XMin)
	sy := float64(h) / (spec.YMax - spec.YMin)
	for _, pos := range s.Pos {
		if pos.Z < spec.ZMin || pos.Z >= spec.ZMax {
			continue
		}
		ix := int((pos.X - spec.XMin) * sx)
		iy := int((pos.Y - spec.YMin) * sy)
		if ix < 0 || ix >= w || iy < 0 || iy >= h {
			continue
		}
		p.Counts[iy*w+ix]++
		p.Kept++
	}
	return p, nil
}

// MaxCount returns the highest per-pixel count.
func (p *Projection) MaxCount() int {
	m := 0
	for _, c := range p.Counts {
		if c > m {
			m = c
		}
	}
	return m
}

// WritePGM writes the projection as a binary 8-bit PGM image with
// logarithmic intensity scaling (astronomical plots are log-stretched;
// the paper's scatter plot saturates at one particle).
func (p *Projection) WritePGM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", p.W, p.H); err != nil {
		return err
	}
	maxC := p.MaxCount()
	scale := 0.0
	if maxC > 0 {
		scale = 255 / math.Log1p(float64(maxC))
	}
	row := make([]byte, p.W)
	for y := 0; y < p.H; y++ {
		for x := 0; x < p.W; x++ {
			c := p.Counts[y*p.W+x]
			row[x] = byte(math.Log1p(float64(c)) * scale)
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// ASCII renders the projection as character art, one character per
// pixel block, for terminal inspection of snapshots.
func (p *Projection) ASCII(cols int) string {
	if cols < 1 {
		cols = 64
	}
	if cols > p.W {
		cols = p.W
	}
	rows := cols / 2 // terminal cells are ~2:1
	if rows < 1 {
		rows = 1
	}
	shades := []byte(" .:-=+*#%@")
	bw := (p.W + cols - 1) / cols
	bh := (p.H + rows - 1) / rows
	maxBlock := 0
	blocks := make([]int, cols*rows)
	for y := 0; y < p.H; y++ {
		for x := 0; x < p.W; x++ {
			bx, by := x/bw, y/bh
			if bx >= cols || by >= rows {
				continue
			}
			blocks[by*cols+bx] += p.Counts[y*p.W+x]
			if blocks[by*cols+bx] > maxBlock {
				maxBlock = blocks[by*cols+bx]
			}
		}
	}
	var out []byte
	for y := rows - 1; y >= 0; y-- { // astronomical convention: y up
		for x := 0; x < cols; x++ {
			c := blocks[y*cols+x]
			idx := 0
			if maxBlock > 0 && c > 0 {
				idx = 1 + int(math.Log1p(float64(c))/math.Log1p(float64(maxBlock))*float64(len(shades)-2))
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
			}
			out = append(out, shades[idx])
		}
		out = append(out, '\n')
	}
	return string(out)
}

// ClusteringContrast returns the variance-to-mean ratio of per-pixel
// counts — 1 for Poisson (unclustered) particles, > 1 once gravitational
// clustering develops. It is the quantitative check behind "Figure 4
// shows structure".
func (p *Projection) ClusteringContrast() float64 {
	occupied := 0
	var sum, sum2 float64
	for _, c := range p.Counts {
		sum += float64(c)
		sum2 += float64(c) * float64(c)
		occupied++
	}
	if occupied == 0 || sum == 0 {
		return 0
	}
	n := float64(occupied)
	mean := sum / n
	variance := sum2/n - mean*mean
	return variance / mean
}
