package analysis

import (
	"math"
	"testing"

	"repro/internal/nbody"
	"repro/internal/rng"
	"repro/internal/vec"
)

// clumps builds k tight Gaussian clumps of m particles each, centred on
// well-separated points, plus optional uniform background noise.
func clumps(k, m int, sigma float64, noise int, seed uint64) *nbody.System {
	r := rng.New(seed)
	s := nbody.New(k*m + noise)
	idx := 0
	for c := 0; c < k; c++ {
		center := vec.V3{X: float64(c) * 10}
		for i := 0; i < m; i++ {
			s.Pos[idx] = center.Add(vec.V3{X: sigma * r.Normal(), Y: sigma * r.Normal(), Z: sigma * r.Normal()})
			s.Mass[idx] = 1
			idx++
		}
	}
	for i := 0; i < noise; i++ {
		s.Pos[idx] = vec.V3{X: r.Uniform(-5, float64(k)*10+5), Y: r.Uniform(-20, 20), Z: r.Uniform(-20, 20)}
		s.Mass[idx] = 1
		idx++
	}
	return s
}

func TestFOFFindsClumps(t *testing.T) {
	s := clumps(3, 200, 0.05, 0, 1)
	halos, err := FriendsOfFriends(s, FOFOptions{LinkLength: 0.5, MinMembers: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(halos) != 3 {
		t.Fatalf("found %d halos, want 3", len(halos))
	}
	for _, h := range halos {
		if h.N != 200 {
			t.Errorf("halo with %d members, want 200", h.N)
		}
		if h.Mass != 200 {
			t.Errorf("halo mass %v", h.Mass)
		}
		// Centres at x = 0, 10, 20 (mod ordering).
		rx := math.Mod(h.Center.X+5, 10) - 5
		if math.Abs(rx) > 0.1 || math.Abs(h.Center.Y) > 0.1 {
			t.Errorf("halo centre %v not on a clump", h.Center)
		}
		if h.R90 <= 0 || h.R90 > 0.5 {
			t.Errorf("R90 = %v", h.R90)
		}
	}
	// Sorted largest-first (all equal here, fine), and deterministic.
	again, _ := FriendsOfFriends(s, FOFOptions{LinkLength: 0.5, MinMembers: 20})
	for i := range halos {
		if halos[i].Center != again[i].Center {
			t.Fatal("nondeterministic halo ordering")
		}
	}
}

func TestFOFMinMembersFilters(t *testing.T) {
	s := clumps(2, 30, 0.05, 0, 2)
	halos, err := FriendsOfFriends(s, FOFOptions{LinkLength: 0.5, MinMembers: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(halos) != 0 {
		t.Errorf("small clumps not filtered: %d halos", len(halos))
	}
}

func TestFOFUniformFieldFewHalos(t *testing.T) {
	// A uniform field at the standard b=0.2 should percolate barely or
	// not at all: the largest group must stay a small fraction of N.
	s := nbody.UniformSphere(5000, 1, 1, rng.New(3))
	halos, err := FriendsOfFriends(s, FOFOptions{MinMembers: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range halos {
		if h.N > 2500 {
			t.Errorf("uniform field percolated into a %d-member halo", h.N)
		}
	}
}

func TestFOFNoiseRobust(t *testing.T) {
	s := clumps(2, 300, 0.05, 500, 4)
	halos, err := FriendsOfFriends(s, FOFOptions{LinkLength: 0.4, MinMembers: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(halos) != 2 {
		t.Fatalf("found %d halos in noise, want 2", len(halos))
	}
	for _, h := range halos {
		if h.N < 300 || h.N > 330 {
			t.Errorf("halo membership %d polluted", h.N)
		}
	}
}

func TestFOFChainLinks(t *testing.T) {
	// A chain of particles spaced just under the linking length must
	// form ONE group (transitive linking), even though the ends are far
	// apart.
	const n = 100
	s := nbody.New(n)
	for i := 0; i < n; i++ {
		s.Pos[i] = vec.V3{X: float64(i) * 0.9}
		s.Mass[i] = 1
	}
	halos, err := FriendsOfFriends(s, FOFOptions{LinkLength: 1.0, MinMembers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(halos) != 1 || halos[0].N != n {
		t.Fatalf("chain not linked: %+v", halos)
	}
}

func TestFOFEmptyAndDegenerate(t *testing.T) {
	if _, err := FriendsOfFriends(nbody.New(0), FOFOptions{}); err == nil {
		t.Error("empty system accepted")
	}
	// Coincident points: bounding box is degenerate; derived link
	// length impossible -> error. Explicit link length works.
	s := nbody.New(5)
	for i := range s.Pos {
		s.Mass[i] = 1
	}
	if _, err := FriendsOfFriends(s, FOFOptions{}); err == nil {
		t.Error("degenerate box accepted with derived link length")
	}
	halos, err := FriendsOfFriends(s, FOFOptions{LinkLength: 0.1, MinMembers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(halos) != 1 || halos[0].N != 5 {
		t.Errorf("coincident points: %+v", halos)
	}
}

func TestMassFunction(t *testing.T) {
	halos := []Halo{{Mass: 1}, {Mass: 10}, {Mass: 100}, {Mass: 100}}
	mf := MassFunction(halos, 3)
	if len(mf) != 3 {
		t.Fatalf("bins = %d", len(mf))
	}
	if mf[0].Count != 4 {
		t.Errorf("lowest threshold count = %d, want 4", mf[0].Count)
	}
	// Cumulative counts must be non-increasing.
	for i := 1; i < len(mf); i++ {
		if mf[i].Count > mf[i-1].Count {
			t.Error("mass function not monotone")
		}
	}
	if MassFunction(nil, 3) != nil {
		t.Error("empty halos should give nil")
	}
}
