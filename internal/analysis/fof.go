package analysis

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/nbody"
	"repro/internal/vec"
)

// Halo is a friends-of-friends group.
type Halo struct {
	// N is the member count.
	N int
	// Mass is the total member mass.
	Mass float64
	// Center is the centre of mass.
	Center vec.V3
	// VMean is the mass-weighted mean velocity.
	VMean vec.V3
	// R90 is the radius about Center containing 90% of the members.
	R90 float64
}

// FOFOptions configure the halo finder.
type FOFOptions struct {
	// LinkLength is the absolute linking length. If zero it is derived
	// from LinkParam and the mean interparticle spacing.
	LinkLength float64
	// LinkParam is the dimensionless linking parameter b (default 0.2,
	// the standard cosmological choice); the linking length is
	// b · (V/N)^{1/3} with V the bounding-box volume.
	LinkParam float64
	// MinMembers drops groups smaller than this (default 10).
	MinMembers int
}

func (o FOFOptions) withDefaults() FOFOptions {
	if o.LinkParam == 0 {
		o.LinkParam = 0.2
	}
	if o.MinMembers == 0 {
		o.MinMembers = 10
	}
	return o
}

// FriendsOfFriends finds halos: maximal sets of particles connected by
// pair distances below the linking length. The implementation hashes
// particles into a uniform grid of cell size equal to the linking
// length, so only the 27 neighbouring cells need scanning per particle
// — O(N) for homogeneous fields.
func FriendsOfFriends(s *nbody.System, opt FOFOptions) ([]Halo, error) {
	opt = opt.withDefaults()
	n := s.N()
	if n == 0 {
		return nil, fmt.Errorf("analysis: empty system")
	}
	box := s.Bounds()
	link := opt.LinkLength
	if link == 0 {
		vol := box.Size().X * box.Size().Y * box.Size().Z
		if vol <= 0 {
			return nil, fmt.Errorf("analysis: degenerate bounding box")
		}
		link = opt.LinkParam * math.Cbrt(vol/float64(n))
	}
	if link <= 0 {
		return nil, fmt.Errorf("analysis: non-positive linking length")
	}

	// Hash grid.
	inv := 1 / link
	type cellKey struct{ X, Y, Z int32 }
	cellOf := func(p vec.V3) cellKey {
		return cellKey{
			int32(math.Floor((p.X - box.Min.X) * inv)),
			int32(math.Floor((p.Y - box.Min.Y) * inv)),
			int32(math.Floor((p.Z - box.Min.Z) * inv)),
		}
	}
	cells := make(map[cellKey][]int32, n/2)
	for i := 0; i < n; i++ {
		k := cellOf(s.Pos[i])
		cells[k] = append(cells[k], int32(i))
	}

	// Union-find over particles.
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	link2 := link * link
	for i := 0; i < n; i++ {
		pi := s.Pos[i]
		c := cellOf(pi)
		for dx := int32(-1); dx <= 1; dx++ {
			for dy := int32(-1); dy <= 1; dy++ {
				for dz := int32(-1); dz <= 1; dz++ {
					nb := cellKey{c.X + dx, c.Y + dy, c.Z + dz}
					for _, j := range cells[nb] {
						if j <= int32(i) {
							continue
						}
						if pi.Dist2(s.Pos[j]) <= link2 {
							union(int32(i), j)
						}
					}
				}
			}
		}
	}

	// Collect groups.
	members := make(map[int32][]int32)
	for i := int32(0); i < int32(n); i++ {
		r := find(i)
		members[r] = append(members[r], i)
	}
	var halos []Halo
	for _, ms := range members {
		if len(ms) < opt.MinMembers {
			continue
		}
		var h Halo
		h.N = len(ms)
		for _, i := range ms {
			m := s.Mass[i]
			h.Mass += m
			h.Center = h.Center.MulAdd(m, s.Pos[i])
			h.VMean = h.VMean.MulAdd(m, s.Vel[i])
		}
		h.Center = h.Center.Scale(1 / h.Mass)
		h.VMean = h.VMean.Scale(1 / h.Mass)
		radii := make([]float64, len(ms))
		for k, i := range ms {
			radii[k] = s.Pos[i].Sub(h.Center).Norm()
		}
		sort.Float64s(radii)
		h.R90 = radii[int(0.9*float64(len(radii)))]
		halos = append(halos, h)
	}
	// Largest first; break ties deterministically by position.
	sort.Slice(halos, func(a, b int) bool {
		if halos[a].N != halos[b].N {
			return halos[a].N > halos[b].N
		}
		if halos[a].Center.X != halos[b].Center.X {
			return halos[a].Center.X < halos[b].Center.X
		}
		return halos[a].Center.Y < halos[b].Center.Y
	})
	return halos, nil
}

// MassFunctionBin is one bin of a cumulative halo mass function.
type MassFunctionBin struct {
	// MinMass is the bin threshold.
	MinMass float64
	// Count is the number of halos at or above the threshold.
	Count int
}

// MassFunction returns the cumulative halo count above logarithmically
// spaced mass thresholds.
func MassFunction(halos []Halo, bins int) []MassFunctionBin {
	if len(halos) == 0 || bins < 1 {
		return nil
	}
	minM, maxM := math.Inf(1), math.Inf(-1)
	for _, h := range halos {
		if h.Mass < minM {
			minM = h.Mass
		}
		if h.Mass > maxM {
			maxM = h.Mass
		}
	}
	if minM <= 0 || maxM <= minM {
		return []MassFunctionBin{{MinMass: minM, Count: len(halos)}}
	}
	out := make([]MassFunctionBin, bins)
	lr := math.Log(maxM / minM)
	for b := range out {
		thr := minM * math.Exp(lr*float64(b)/float64(bins))
		count := 0
		for _, h := range halos {
			if h.Mass >= thr {
				count++
			}
		}
		out[b] = MassFunctionBin{MinMass: thr, Count: count}
	}
	return out
}
