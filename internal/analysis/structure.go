package analysis

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/nbody"
	"repro/internal/rng"
	"repro/internal/vec"
)

// ProfileBin is one radial shell of a density profile.
type ProfileBin struct {
	// RInner, ROuter bound the shell; RMid is the mid-radius.
	RInner, ROuter, RMid float64
	// Count is the number of particles in the shell.
	Count int
	// Density is the shell's mass density.
	Density float64
	// EnclosedMass is the total mass within ROuter.
	EnclosedMass float64
}

// DensityProfile bins particles into logarithmic radial shells about
// the given centre between rMin and rMax.
func DensityProfile(s *nbody.System, center vec.V3, rMin, rMax float64, bins int) ([]ProfileBin, error) {
	if bins < 1 || !(rMax > rMin) || rMin <= 0 {
		return nil, fmt.Errorf("analysis: invalid profile binning")
	}
	out := make([]ProfileBin, bins)
	lr := math.Log(rMax / rMin)
	for b := range out {
		out[b].RInner = rMin * math.Exp(lr*float64(b)/float64(bins))
		out[b].ROuter = rMin * math.Exp(lr*float64(b+1)/float64(bins))
		out[b].RMid = math.Sqrt(out[b].RInner * out[b].ROuter)
	}
	masses := make([]float64, bins)
	var inner float64
	for i, p := range s.Pos {
		r := p.Sub(center).Norm()
		if r < rMin {
			inner += s.Mass[i]
			continue
		}
		if r >= rMax {
			continue
		}
		b := int(math.Log(r/rMin) / lr * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		out[b].Count++
		masses[b] += s.Mass[i]
	}
	enclosed := inner
	for b := range out {
		vol := 4 * math.Pi / 3 * (math.Pow(out[b].ROuter, 3) - math.Pow(out[b].RInner, 3))
		out[b].Density = masses[b] / vol
		enclosed += masses[b]
		out[b].EnclosedMass = enclosed
	}
	return out, nil
}

// LagrangianRadius returns the radius about center enclosing the given
// mass fraction.
func LagrangianRadius(s *nbody.System, center vec.V3, frac float64) float64 {
	radii := make([]float64, s.N())
	for i, p := range s.Pos {
		radii[i] = p.Sub(center).Norm()
	}
	// Equal masses assumed close enough for this diagnostic: sort radii
	// and take the rank quantile.
	sort.Float64s(radii)
	idx := int(frac * float64(len(radii)))
	if idx >= len(radii) {
		idx = len(radii) - 1
	}
	return radii[idx]
}

// CorrelationFunction estimates the two-point correlation function
// ξ(r) in logarithmic bins using the Peebles-Hauser estimator
// DD/RR - 1 with analytic RR for a spherical sample volume of radius
// sampleR about center. pairs limits the Monte-Carlo pair sampling
// (all pairs when N(N-1)/2 <= pairs).
type CorrelationBin struct {
	RMid float64
	Xi   float64
	DD   int
}

// CorrelationFunction estimates ξ(r). It subsamples pairs for large N,
// drawing them deterministically from seed.
func CorrelationFunction(s *nbody.System, center vec.V3, sampleR, rMin, rMax float64, bins, pairs int, seed uint64) ([]CorrelationBin, error) {
	if bins < 1 || !(rMax > rMin) || rMin <= 0 {
		return nil, fmt.Errorf("analysis: invalid correlation binning")
	}
	// Select particles in the sample sphere.
	var idx []int
	for i, p := range s.Pos {
		if p.Sub(center).Norm() <= sampleR {
			idx = append(idx, i)
		}
	}
	n := len(idx)
	if n < 2 {
		return nil, fmt.Errorf("analysis: too few particles in sample sphere")
	}
	lr := math.Log(rMax / rMin)
	dd := make([]int, bins)
	var totalPairs float64

	record := func(a, b int) {
		r := s.Pos[a].Sub(s.Pos[b]).Norm()
		if r < rMin || r >= rMax {
			return
		}
		bin := int(math.Log(r/rMin) / lr * float64(bins))
		if bin >= 0 && bin < bins {
			dd[bin]++
		}
	}

	allPairs := n*(n-1)/2 <= pairs
	if allPairs {
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				record(idx[a], idx[b])
			}
		}
		totalPairs = float64(n) * float64(n-1) / 2
	} else {
		src := rng.New(seed)
		for k := 0; k < pairs; k++ {
			a := src.Intn(n)
			b := src.Intn(n)
			if a == b {
				continue
			}
			record(idx[a], idx[b])
			totalPairs++
		}
	}

	// Analytic RR: for a uniform distribution the expected pair-distance
	// density in a sphere of radius R follows the known overlap formula.
	out := make([]CorrelationBin, bins)
	for b := range out {
		rIn := rMin * math.Exp(lr*float64(b)/float64(bins))
		rOut := rMin * math.Exp(lr*float64(b+1)/float64(bins))
		out[b].RMid = math.Sqrt(rIn * rOut)
		out[b].DD = dd[b]
		expected := totalPairs * (pairFraction(rOut, sampleR) - pairFraction(rIn, sampleR))
		if expected > 0 {
			out[b].Xi = float64(dd[b])/expected - 1
		}
	}
	return out, nil
}

// pairFraction returns the fraction of point pairs in a uniform sphere
// of radius R with separation <= r (the pair-distance CDF). With
// s = r/R ∈ [0, 2]:
//
//	F(s) = s³ - (9/16)s⁴ + (1/32)s⁶
//
// (derivative 3s² - (9/4)s³ + (3/16)s⁵ is the classic pair-distance
// density; F(2) = 1).
func pairFraction(r, sphereR float64) float64 {
	s := r / sphereR
	if s <= 0 {
		return 0
	}
	if s >= 2 {
		return 1
	}
	s3 := s * s * s
	return s3 - 9.0/16*s3*s + s3*s3/32
}
