package analysis

import (
	"fmt"
	"math"

	"repro/internal/fft"
	"repro/internal/nbody"
	"repro/internal/vec"
)

// PowerBin is one k-bin of a measured power spectrum.
type PowerBin struct {
	// K is the mean wavenumber of the bin (2π/length units).
	K float64
	// P is the measured power (length³ units), shot-noise subtracted.
	P float64
	// Modes is the number of Fourier modes averaged.
	Modes int
}

// MeasurePowerSpectrum estimates P(k) of the particle distribution
// inside the cubic box: CIC density assignment on an n³ mesh, FFT,
// |δ_k|² averaged in spherical k-bins, CIC window deconvolution and
// shot-noise subtraction. For an isolated sphere the result is a
// windowed estimate — meaningful for comparing epochs and against the
// linear input spectrum at k well above the fundamental.
func MeasurePowerSpectrum(s *nbody.System, box vec.Box, n, bins int) ([]PowerBin, error) {
	if !fft.IsPow2(n) {
		return nil, fmt.Errorf("analysis: mesh %d is not a power of two", n)
	}
	if bins < 1 {
		return nil, fmt.Errorf("analysis: bins must be >= 1")
	}
	size := box.Size()
	if size.X <= 0 || math.Abs(size.X-size.Y) > 1e-9*size.X || math.Abs(size.X-size.Z) > 1e-9*size.X {
		return nil, fmt.Errorf("analysis: box must be cubic")
	}
	l := size.X
	cell := l / float64(n)

	grid, err := fft.NewGrid3(n)
	if err != nil {
		return nil, err
	}
	// CIC mass assignment (periodic wrap: fine for the window-dominated
	// edges of an isolated distribution).
	var total float64
	inv := 1 / cell
	deposited := 0
	for p := 0; p < s.N(); p++ {
		x := (s.Pos[p].X - box.Min.X) * inv
		y := (s.Pos[p].Y - box.Min.Y) * inv
		z := (s.Pos[p].Z - box.Min.Z) * inv
		if x < 0 || x >= float64(n) || y < 0 || y >= float64(n) || z < 0 || z >= float64(n) {
			continue
		}
		deposited++
		ix, fx := int(math.Floor(x)), x-math.Floor(x)
		iy, fy := int(math.Floor(y)), y-math.Floor(y)
		iz, fz := int(math.Floor(z)), z-math.Floor(z)
		m := s.Mass[p]
		total += m
		for c := 0; c < 8; c++ {
			jx := (ix + (c & 1)) % n
			jy := (iy + (c >> 1 & 1)) % n
			jz := (iz + (c >> 2 & 1)) % n
			w := pick3(fx, c&1) * pick3(fy, c>>1&1) * pick3(fz, c>>2&1)
			idx := grid.Idx(jx, jy, jz)
			grid.Data[idx] += complex(m*w, 0)
		}
	}
	if deposited == 0 || total == 0 {
		return nil, fmt.Errorf("analysis: no particles in box")
	}
	// Density contrast: delta = rho/rho_mean - 1 on the mesh.
	mean := total / float64(n*n*n)
	for i := range grid.Data {
		grid.Data[i] = complex(real(grid.Data[i])/mean-1, 0)
	}
	grid.Forward()

	// Bin |delta_k|², deconvolving the CIC window W = prod sinc²(πk_i/2k_Ny).
	kf := 2 * math.Pi / l
	kNyq := math.Pi / cell
	sums := make([]float64, bins)
	ks := make([]float64, bins)
	counts := make([]int, bins)
	lkMin := math.Log(kf)
	lkMax := math.Log(kNyq)
	for ix := 0; ix < n; ix++ {
		kx := float64(fft.FreqIndex(ix, n)) * kf
		for iy := 0; iy < n; iy++ {
			ky := float64(fft.FreqIndex(iy, n)) * kf
			for iz := 0; iz < n; iz++ {
				kz := float64(fft.FreqIndex(iz, n)) * kf
				k := math.Sqrt(kx*kx + ky*ky + kz*kz)
				if k < kf || k >= kNyq {
					continue
				}
				b := int(float64(bins) * (math.Log(k) - lkMin) / (lkMax - lkMin))
				if b < 0 || b >= bins {
					continue
				}
				v := grid.At(ix, iy, iz)
				p2 := real(v)*real(v) + imag(v)*imag(v)
				w := cicWindow(kx, kNyq) * cicWindow(ky, kNyq) * cicWindow(kz, kNyq)
				p2 /= w * w
				sums[b] += p2
				ks[b] += k
				counts[b]++
			}
		}
	}
	// Normalise: P(k) = |delta_k|² V / N_cells² ; subtract shot noise
	// V/N_particles (weighted by deposited count).
	vol := l * l * l
	n3 := float64(n * n * n)
	shot := vol / float64(deposited)
	var out []PowerBin
	for b := 0; b < bins; b++ {
		if counts[b] == 0 {
			continue
		}
		p := sums[b] / float64(counts[b]) * vol / (n3 * n3)
		out = append(out, PowerBin{
			K:     ks[b] / float64(counts[b]),
			P:     p - shot,
			Modes: counts[b],
		})
	}
	return out, nil
}

// cicWindow is the CIC assignment window sinc²(k/2kNyq · π/... ) along
// one axis.
func cicWindow(k, kNyq float64) float64 {
	x := math.Pi * k / (2 * kNyq)
	if x == 0 {
		return 1
	}
	s := math.Sin(x) / x
	return s * s
}

func pick3(f float64, bit int) float64 {
	if bit == 0 {
		return 1 - f
	}
	return f
}
