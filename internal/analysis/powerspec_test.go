package analysis

import (
	"math"
	"testing"

	"repro/internal/nbody"
	"repro/internal/rng"
	"repro/internal/vec"
)

func TestMeasurePowerSpectrumValidation(t *testing.T) {
	s := nbody.UniformSphere(100, 1, 1, rng.New(1))
	b := vec.NewBox(vec.V3{X: -2, Y: -2, Z: -2}, vec.V3{X: 2, Y: 2, Z: 2})
	if _, err := MeasurePowerSpectrum(s, b, 12, 4); err == nil {
		t.Error("non-pow2 mesh accepted")
	}
	if _, err := MeasurePowerSpectrum(s, b, 16, 0); err == nil {
		t.Error("zero bins accepted")
	}
	bad := vec.NewBox(vec.V3{}, vec.V3{X: 1, Y: 2, Z: 1})
	if _, err := MeasurePowerSpectrum(s, bad, 16, 4); err == nil {
		t.Error("non-cubic box accepted")
	}
	empty := nbody.New(0)
	if _, err := MeasurePowerSpectrum(empty, b, 16, 4); err == nil {
		t.Error("empty system accepted")
	}
}

func TestPoissonFieldIsShotNoise(t *testing.T) {
	// Unclustered random points: after shot-noise subtraction P(k) ≈ 0
	// (small compared to the shot level V/N).
	r := rng.New(2)
	const n = 20000
	s := nbody.New(n)
	for i := range s.Pos {
		s.Pos[i] = vec.V3{X: r.Uniform(0, 10), Y: r.Uniform(0, 10), Z: r.Uniform(0, 10)}
		s.Mass[i] = 1
	}
	b := vec.NewBox(vec.V3{}, vec.V3{X: 10, Y: 10, Z: 10})
	bins, err := MeasurePowerSpectrum(s, b, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	shot := 1000.0 / n
	for _, pb := range bins {
		if math.Abs(pb.P) > shot {
			t.Errorf("Poisson P(%v) = %v, want |P| << shot %v", pb.K, pb.P, shot)
		}
		if pb.Modes == 0 {
			t.Error("empty bin returned")
		}
	}
}

func TestSingleModePower(t *testing.T) {
	// Particles arranged with a sinusoidal density modulation along x
	// must show excess power at that k and not much elsewhere.
	r := rng.New(3)
	const n = 60000
	const l = 10.0
	const waves = 4 // k = 2π·4/l
	s := nbody.New(n)
	count := 0
	for count < n {
		x := r.Uniform(0, l)
		// Acceptance ∝ 1 + 0.8 sin(2π·waves·x/l).
		if r.Float64() < (1+0.8*math.Sin(2*math.Pi*waves*x/l))/1.8 {
			s.Pos[count] = vec.V3{X: x, Y: r.Uniform(0, l), Z: r.Uniform(0, l)}
			s.Mass[count] = 1
			count++
		}
	}
	b := vec.NewBox(vec.V3{}, vec.V3{X: l, Y: l, Z: l})
	bins, err := MeasurePowerSpectrum(s, b, 64, 10)
	if err != nil {
		t.Fatal(err)
	}
	kTarget := 2 * math.Pi * waves / l
	var atTarget, elsewhere float64
	var elseCount int
	for _, pb := range bins {
		if math.Abs(pb.K-kTarget)/kTarget < 0.35 {
			if pb.P > atTarget {
				atTarget = pb.P
			}
		} else if pb.K > 2*kTarget {
			elsewhere += math.Abs(pb.P)
			elseCount++
		}
	}
	if elseCount == 0 {
		t.Fatal("no high-k bins")
	}
	if atTarget < 5*elsewhere/float64(elseCount) {
		t.Errorf("mode power %v not well above background %v", atTarget, elsewhere/float64(elseCount))
	}
}

func TestClusteringGrowsPower(t *testing.T) {
	// A clumped distribution has more small-scale power than a uniform
	// one.
	r := rng.New(4)
	mk := func(clumped bool) *nbody.System {
		s := nbody.New(10000)
		for i := range s.Pos {
			if clumped {
				cx := float64(r.Intn(4))*2.5 + 1
				cy := float64(r.Intn(4))*2.5 + 1
				cz := float64(r.Intn(4))*2.5 + 1
				s.Pos[i] = vec.V3{X: cx + 0.2*r.Normal(), Y: cy + 0.2*r.Normal(), Z: cz + 0.2*r.Normal()}
			} else {
				s.Pos[i] = vec.V3{X: r.Uniform(0, 10), Y: r.Uniform(0, 10), Z: r.Uniform(0, 10)}
			}
			s.Mass[i] = 1
		}
		return s
	}
	b := vec.NewBox(vec.V3{}, vec.V3{X: 10, Y: 10, Z: 10})
	pu, err := MeasurePowerSpectrum(mk(false), b, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := MeasurePowerSpectrum(mk(true), b, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The clump power lives near the clump scale (k ~ 1/0.2); compare
	// the integrated |P| across all measured bins.
	var sumU, sumC float64
	for _, pb := range pu {
		sumU += math.Abs(pb.P)
	}
	for _, pb := range pc {
		sumC += math.Abs(pb.P)
	}
	if sumC < 10*sumU {
		t.Errorf("clumped integrated power %v not ≫ uniform %v", sumC, sumU)
	}
}

func TestCICWindow(t *testing.T) {
	if w := cicWindow(0, 1); w != 1 {
		t.Errorf("W(0) = %v", w)
	}
	// Monotone decreasing toward the Nyquist frequency.
	prev := 1.0
	for _, f := range []float64{0.2, 0.5, 0.8, 1.0} {
		w := cicWindow(f, 1)
		if w >= prev {
			t.Errorf("window not decreasing at %v", f)
		}
		prev = w
	}
}
