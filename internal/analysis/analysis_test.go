package analysis

import (
	"math"
	"testing"

	"repro/internal/nbody"
	"repro/internal/rng"
	"repro/internal/vec"
)

func TestSummarizeErrors(t *testing.T) {
	s := SummarizeErrors([]float64{0.1, 0.2, 0.3, 0.4})
	if s.N != 4 {
		t.Errorf("N = %d", s.N)
	}
	if math.Abs(s.Mean-0.25) > 1e-12 {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.Max != 0.4 {
		t.Errorf("max = %v", s.Max)
	}
	wantRMS := math.Sqrt((0.01 + 0.04 + 0.09 + 0.16) / 4)
	if math.Abs(s.RMS-wantRMS) > 1e-12 {
		t.Errorf("rms = %v, want %v", s.RMS, wantRMS)
	}
	if s.Median < 0.2 || s.Median > 0.3 {
		t.Errorf("median = %v", s.Median)
	}
	if s.String() == "" {
		t.Error("empty string")
	}
	if z := SummarizeErrors(nil); z.N != 0 || z.RMS != 0 {
		t.Errorf("empty stats = %+v", z)
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5}
	if q := quantile(data, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := quantile(data, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := quantile(data, 0.5); q != 3 {
		t.Errorf("q0.5 = %v", q)
	}
	if q := quantile(data, 0.25); q != 2 {
		t.Errorf("q0.25 = %v", q)
	}
	if q := quantile([]float64{7}, 0.3); q != 7 {
		t.Errorf("single = %v", q)
	}
}

func TestCompareForces(t *testing.T) {
	ref := nbody.New(3)
	got := nbody.New(3)
	for i := range ref.Pos {
		ref.Mass[i], got.Mass[i] = 1, 1
		ref.Acc[i] = vec.V3{X: 1}
	}
	// got is a permutation of ref with 10% error on one particle.
	got.ID[0], got.ID[1], got.ID[2] = 2, 0, 1
	got.Acc[0] = vec.V3{X: 1.1}
	got.Acc[1] = vec.V3{X: 1}
	got.Acc[2] = vec.V3{X: 1}
	s, err := CompareForces(got, ref)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Max-0.1) > 1e-12 {
		t.Errorf("max = %v, want 0.1", s.Max)
	}
	// Mismatched counts and missing IDs error.
	if _, err := CompareForces(nbody.New(2), ref); err == nil {
		t.Error("count mismatch accepted")
	}
	bad := nbody.New(3)
	bad.ID[0] = 99
	if _, err := CompareForces(bad, ref); err == nil {
		t.Error("missing ID accepted")
	}
}

func TestEnergyReport(t *testing.T) {
	s := nbody.TwoBody(1, 1, 1, 1)
	e := Energy(s, 1, 0)
	// Circular orbit: K = 0.5, U = -1, E = -0.5, virial ratio 1.
	if math.Abs(e.Kinetic-0.25) > 1e-12 {
		// each body at v=sqrt(2)/2: K = 2 * 0.5*1*(0.5)/... let's just
		// use the relations below.
		t.Logf("K = %v", e.Kinetic)
	}
	if math.Abs(e.Total()-(-0.5)) > 1e-12 {
		t.Errorf("E = %v, want -0.5", e.Total())
	}
	if math.Abs(e.VirialRatio()-1) > 1e-12 {
		t.Errorf("virial = %v, want 1 (circular orbit)", e.VirialRatio())
	}
}

func TestEnergyFromPotentials(t *testing.T) {
	r := rng.New(1)
	s := nbody.New(50)
	for i := range s.Pos {
		s.Pos[i] = vec.V3{X: r.Normal(), Y: r.Normal(), Z: r.Normal()}
		s.Mass[i] = 1
	}
	nbody.DirectForces(s, 1, 0.01)
	a := Energy(s, 1, 0.01)
	b := EnergyFromPotentials(s)
	if math.Abs(a.Potential-b.Potential) > 1e-9*math.Abs(a.Potential) {
		t.Errorf("potential mismatch: %v vs %v", a.Potential, b.Potential)
	}
}

func TestDensityProfileUniform(t *testing.T) {
	// Uniform sphere: density flat across shells, enclosed mass ∝ r³.
	s := nbody.UniformSphere(40000, 1, 1, rng.New(2))
	bins, err := DensityProfile(s, vec.Zero, 0.1, 1.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / (4 * math.Pi / 3)
	for _, b := range bins {
		if math.Abs(b.Density-want)/want > 0.1 {
			t.Errorf("shell %v: density %v, want ~%v", b.RMid, b.Density, want)
		}
	}
	last := bins[len(bins)-1]
	if math.Abs(last.EnclosedMass-1) > 0.02 {
		t.Errorf("enclosed mass = %v, want ~1", last.EnclosedMass)
	}
}

func TestDensityProfileValidation(t *testing.T) {
	s := nbody.UniformSphere(10, 1, 1, rng.New(3))
	if _, err := DensityProfile(s, vec.Zero, 0, 1, 5); err == nil {
		t.Error("rMin=0 accepted")
	}
	if _, err := DensityProfile(s, vec.Zero, 1, 0.5, 5); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := DensityProfile(s, vec.Zero, 0.1, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
}

func TestLagrangianRadius(t *testing.T) {
	s := nbody.UniformSphere(20000, 1, 1, rng.New(4))
	// Half-mass radius of a uniform sphere: (1/2)^{1/3}.
	r := LagrangianRadius(s, vec.Zero, 0.5)
	want := math.Pow(0.5, 1.0/3)
	if math.Abs(r-want) > 0.02 {
		t.Errorf("r_half = %v, want %v", r, want)
	}
}

func TestCorrelationFunctionUniform(t *testing.T) {
	// Uniform (unclustered) points: ξ ≈ 0 everywhere.
	s := nbody.UniformSphere(4000, 1, 1, rng.New(5))
	bins, err := CorrelationFunction(s, vec.Zero, 1, 0.05, 0.8, 6, 1<<30, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bins {
		if math.Abs(b.Xi) > 0.2 {
			t.Errorf("uniform ξ(%v) = %v, want ~0", b.RMid, b.Xi)
		}
	}
}

func TestCorrelationFunctionClustered(t *testing.T) {
	// Two tight clumps: strong small-scale correlation.
	r := rng.New(6)
	s := nbody.New(2000)
	for i := range s.Pos {
		c := vec.V3{X: -0.5}
		if i%2 == 0 {
			c = vec.V3{X: 0.5}
		}
		s.Pos[i] = c.Add(vec.V3{X: 0.02 * r.Normal(), Y: 0.02 * r.Normal(), Z: 0.02 * r.Normal()})
		s.Mass[i] = 1
	}
	bins, err := CorrelationFunction(s, vec.Zero, 1, 0.01, 0.3, 4, 1<<30, 8)
	if err != nil {
		t.Fatal(err)
	}
	if bins[0].Xi < 10 {
		t.Errorf("clustered ξ(small r) = %v, want >> 1", bins[0].Xi)
	}
}

func TestCorrelationSubsampling(t *testing.T) {
	s := nbody.UniformSphere(3000, 1, 1, rng.New(9))
	full, err := CorrelationFunction(s, vec.Zero, 1, 0.05, 0.8, 4, 1<<30, 1)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := CorrelationFunction(s, vec.Zero, 1, 0.05, 0.8, 4, 200000, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full {
		if math.Abs(full[i].Xi-sub[i].Xi) > 0.3 {
			t.Errorf("bin %d: full ξ=%v vs subsampled ξ=%v", i, full[i].Xi, sub[i].Xi)
		}
	}
}

func TestPairFraction(t *testing.T) {
	if f := pairFraction(0, 1); f != 0 {
		t.Errorf("F(0) = %v", f)
	}
	if f := pairFraction(2, 1); f != 1 {
		t.Errorf("F(2R) = %v", f)
	}
	if f := pairFraction(3, 1); f != 1 {
		t.Errorf("F(>2R) = %v", f)
	}
	// Monotone.
	prev := -1.0
	for x := 0.0; x <= 2.0; x += 0.05 {
		f := pairFraction(x, 1)
		if f < prev {
			t.Fatalf("pairFraction not monotone at %v", x)
		}
		prev = f
	}
}
