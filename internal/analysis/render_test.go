package analysis

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/nbody"
	"repro/internal/rng"
	"repro/internal/vec"
)

func TestProjectBasics(t *testing.T) {
	s := nbody.New(4)
	for i := range s.Mass {
		s.Mass[i] = 1
	}
	s.Pos[0] = vec.V3{X: -0.9, Y: -0.9, Z: 0} // bottom-left
	s.Pos[1] = vec.V3{X: 0.9, Y: 0.9, Z: 0}   // top-right
	s.Pos[2] = vec.V3{X: 0, Y: 0, Z: 5}       // outside slab
	s.Pos[3] = vec.V3{X: 0.9, Y: 0.9, Z: 0}   // duplicate pixel
	spec := SlabSpec{XMin: -1, XMax: 1, YMin: -1, YMax: 1, ZMin: -1, ZMax: 1}
	p, err := Project(s, spec, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kept != 3 {
		t.Errorf("kept = %d, want 3", p.Kept)
	}
	if p.Counts[0*10+0] != 1 {
		t.Errorf("bottom-left count = %d", p.Counts[0])
	}
	if p.Counts[9*10+9] != 2 {
		t.Errorf("top-right count = %d", p.Counts[9*10+9])
	}
	if p.MaxCount() != 2 {
		t.Errorf("max = %d", p.MaxCount())
	}
}

func TestProjectValidation(t *testing.T) {
	s := nbody.New(1)
	s.Mass[0] = 1
	if _, err := Project(s, SlabSpec{XMax: 1, YMax: 1, ZMax: 1}, 0, 10); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := Project(s, SlabSpec{XMin: 1, XMax: 0, YMax: 1, ZMax: 1}, 10, 10); err == nil {
		t.Error("degenerate slab accepted")
	}
}

func TestFigure4Slab(t *testing.T) {
	spec := Figure4Slab(50) // the paper's numbers
	if spec.XMax-spec.XMin != 45 || spec.YMax-spec.YMin != 45 {
		t.Errorf("window = %v x %v, want 45 x 45", spec.XMax-spec.XMin, spec.YMax-spec.YMin)
	}
	if spec.ZMax-spec.ZMin != 2.5 {
		t.Errorf("thickness = %v, want 2.5", spec.ZMax-spec.ZMin)
	}
}

func TestWritePGM(t *testing.T) {
	s := nbody.UniformSphere(1000, 1, 1, rng.New(1))
	p, err := Project(s, SlabSpec{XMin: -1, XMax: 1, YMin: -1, YMax: 1, ZMin: -1, ZMax: 1}, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n32 32\n255\n")) {
		t.Errorf("bad PGM header: %q", out[:20])
	}
	wantLen := len("P5\n32 32\n255\n") + 32*32
	if len(out) != wantLen {
		t.Errorf("PGM length = %d, want %d", len(out), wantLen)
	}
}

func TestASCII(t *testing.T) {
	s := nbody.UniformSphere(500, 1, 1, rng.New(2))
	p, _ := Project(s, SlabSpec{XMin: -1, XMax: 1, YMin: -1, YMax: 1, ZMin: -1, ZMax: 1}, 64, 64)
	art := p.ASCII(32)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 16 {
		t.Errorf("rows = %d, want 16", len(lines))
	}
	for _, l := range lines {
		if len(l) != 32 {
			t.Fatalf("row length = %d, want 32", len(l))
		}
	}
	if !strings.ContainsAny(art, ".:-=+*#%@") {
		t.Error("ASCII art is empty")
	}
}

func TestClusteringContrast(t *testing.T) {
	// Poisson points: contrast ~1. All points in one pixel: contrast >> 1.
	r := rng.New(3)
	uniform := nbody.New(5000)
	for i := range uniform.Pos {
		uniform.Pos[i] = vec.V3{X: r.Uniform(-1, 1), Y: r.Uniform(-1, 1)}
		uniform.Mass[i] = 1
	}
	spec := SlabSpec{XMin: -1, XMax: 1, YMin: -1, YMax: 1, ZMin: -1, ZMax: 1}
	pu, _ := Project(uniform, spec, 16, 16)
	cu := pu.ClusteringContrast()
	if cu < 0.5 || cu > 2 {
		t.Errorf("Poisson contrast = %v, want ~1", cu)
	}

	clumped := nbody.New(5000)
	for i := range clumped.Pos {
		clumped.Pos[i] = vec.V3{X: 0.01 * r.Normal(), Y: 0.01 * r.Normal()}
		clumped.Mass[i] = 1
	}
	pc, _ := Project(clumped, spec, 16, 16)
	if cc := pc.ClusteringContrast(); cc < 10*cu {
		t.Errorf("clumped contrast %v not ≫ Poisson %v", cc, cu)
	}
}
