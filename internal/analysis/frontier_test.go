package analysis

import (
	"testing"

	"repro/internal/nbody"
	"repro/internal/rng"
)

func TestAccuracyCostFrontierShape(t *testing.T) {
	model := nbody.Plummer(3000, 1, 1, 1, rng.New(61))
	thetas := []float64{1.2, 0.9, 0.6, 0.4}
	pts, err := AccuracyCostFrontier(model, FrontierModified, thetas, 256, 1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(thetas) {
		t.Fatalf("points = %d", len(pts))
	}
	// Decreasing θ: cost up, error down.
	for i := 1; i < len(pts); i++ {
		if pts[i].Interactions <= pts[i-1].Interactions {
			t.Errorf("cost not increasing at θ=%v", pts[i].Theta)
		}
		if pts[i].RMS >= pts[i-1].RMS {
			t.Errorf("error not decreasing at θ=%v", pts[i].Theta)
		}
	}
}

// TestModifiedFrontierMatchesPaperClaim is experiment E9: the paper's
// §3 statement (with its refs [15][17]) that "our modified tree
// algorithm is more accurate than the original tree algorithm for the
// same accuracy parameter" — and that it "performs larger number of
// operations". Pair the two frontiers at each θ and check both sides
// of the trade.
func TestModifiedFrontierMatchesPaperClaim(t *testing.T) {
	model := nbody.Plummer(4000, 1, 1, 1, rng.New(62))
	thetas := []float64{1.4, 1.1, 0.9, 0.7, 0.55, 0.45}
	mod, err := AccuracyCostFrontier(model, FrontierModified, thetas, 256, 1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := AccuracyCostFrontier(model, FrontierOriginal, thetas, 256, 1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := range thetas {
		m, o := mod[i], orig[i]
		t.Logf("θ=%.2f: modified RMS %.4f%% @ %d ints, original RMS %.4f%% @ %d ints",
			m.Theta, 100*m.RMS, m.Interactions, 100*o.RMS, o.Interactions)
		if m.RMS >= o.RMS {
			t.Errorf("θ=%.2f: modified error %.4f%% not below original %.4f%%",
				m.Theta, 100*m.RMS, 100*o.RMS)
		}
		if m.Interactions <= o.Interactions {
			t.Errorf("θ=%.2f: modified ops %d not above original %d",
				m.Theta, m.Interactions, o.Interactions)
		}
	}
	// The hardware-economics side: at matched interaction budget the
	// original can be marginally more accurate (it spends every
	// interaction on the exact per-particle list) — but the budget is
	// not the binding constraint on GRAPE: host time is, and the
	// modified algorithm buys its ~n_g host reduction at an error cost
	// that stays in the same decade. Document the matched-budget
	// comparison without asserting a winner.
	if em, ok := ErrorAtCost(mod, orig[len(orig)-1].Interactions); ok {
		t.Logf("at the original's densest budget (%d): modified RMS %.4f%% vs original %.4f%%",
			orig[len(orig)-1].Interactions, 100*em, 100*orig[len(orig)-1].RMS)
	}
}

func TestErrorAtCost(t *testing.T) {
	pts := []FrontierPoint{
		{Interactions: 100, RMS: 0.1},
		{Interactions: 10000, RMS: 0.001},
	}
	// Log-log midpoint: interactions 1000 -> RMS 0.01.
	e, ok := ErrorAtCost(pts, 1000)
	if !ok {
		t.Fatal("interpolation failed")
	}
	if e < 0.009 || e > 0.011 {
		t.Errorf("interpolated error = %v, want ~0.01", e)
	}
	if _, ok := ErrorAtCost(pts, 50); ok {
		t.Error("out-of-range budget accepted")
	}
	if _, ok := ErrorAtCost(pts[:1], 100); ok {
		t.Error("single-point frontier accepted")
	}
}

func TestFrontierValidation(t *testing.T) {
	if _, err := AccuracyCostFrontier(nbody.New(0), FrontierModified, []float64{0.7}, 64, 1, 0.01); err == nil {
		t.Error("empty system accepted")
	}
	model := nbody.Plummer(100, 1, 1, 1, rng.New(63))
	if _, err := AccuracyCostFrontier(model, FrontierAlgorithm(9), []float64{0.7}, 64, 1, 0.01); err == nil {
		t.Error("bad algorithm accepted")
	}
}
