package analysis

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/nbody"
)

// FrontierPoint is one sample of an accuracy-cost frontier: the force
// error obtained for a given interaction count.
type FrontierPoint struct {
	// Theta is the opening parameter that produced the point.
	Theta float64
	// Interactions is the pairwise interaction count of one force
	// evaluation (the cost on GRAPE-class hardware).
	Interactions int64
	// RMS and P99 are the relative force errors versus direct
	// summation.
	RMS, P99 float64
}

// FrontierAlgorithm selects the treecode variant being swept.
type FrontierAlgorithm int

const (
	// FrontierModified is Barnes' grouped algorithm (the paper's).
	FrontierModified FrontierAlgorithm = iota
	// FrontierOriginal is the classic per-particle walk.
	FrontierOriginal
)

// AccuracyCostFrontier sweeps θ for the given algorithm over the
// system, measuring force error against exact direct summation and the
// interaction count at each θ. It reproduces the comparison of the
// paper's §3 (citing Barnes 1990 and Kawai & Makino 1999): at equal
// cost the modified algorithm delivers smaller force errors, because
// nearby interactions are exact and the group criterion measures
// distance from the group surface.
func AccuracyCostFrontier(model *nbody.System, alg FrontierAlgorithm, thetas []float64, ncrit int, g, eps float64) ([]FrontierPoint, error) {
	if model.N() == 0 {
		return nil, fmt.Errorf("analysis: empty system")
	}
	ref := model.Clone()
	nbody.DirectForces(ref, g, eps)

	out := make([]FrontierPoint, 0, len(thetas))
	for _, theta := range thetas {
		s := model.Clone()
		tc := core.New(core.Options{Theta: theta, Ncrit: ncrit, G: g, Eps: eps}, nil)
		var st *core.Stats
		var err error
		switch alg {
		case FrontierModified:
			st, err = tc.ComputeForces(s)
		case FrontierOriginal:
			st, err = tc.ComputeForcesOriginal(s)
		default:
			return nil, fmt.Errorf("analysis: unknown algorithm %d", alg)
		}
		if err != nil {
			return nil, err
		}
		es, err := CompareForces(s, ref)
		if err != nil {
			return nil, err
		}
		out = append(out, FrontierPoint{
			Theta:        theta,
			Interactions: st.Interactions,
			RMS:          es.RMS,
			P99:          es.P99,
		})
	}
	return out, nil
}

// ErrorAtCost interpolates a frontier to estimate the RMS error at a
// given interaction budget (log-log linear interpolation; points must
// be sorted by increasing interactions). Returns false when the budget
// lies outside the frontier's range.
func ErrorAtCost(points []FrontierPoint, interactions int64) (float64, bool) {
	if len(points) < 2 {
		return 0, false
	}
	for i := 1; i < len(points); i++ {
		lo, hi := points[i-1], points[i]
		if interactions >= lo.Interactions && interactions <= hi.Interactions {
			if lo.Interactions == hi.Interactions || lo.RMS <= 0 || hi.RMS <= 0 {
				return lo.RMS, true
			}
			t := (math.Log(float64(interactions)) - math.Log(float64(lo.Interactions))) /
				(math.Log(float64(hi.Interactions)) - math.Log(float64(lo.Interactions)))
			return math.Exp(math.Log(lo.RMS) + t*(math.Log(hi.RMS)-math.Log(lo.RMS))), true
		}
	}
	return 0, false
}
