// Package analysis provides the diagnostics used by the experiments:
// force-error statistics (the paper's §2 accuracy discussion), energy
// accounting, density profiles, a two-point correlation estimator, and
// the projection renderer that regenerates Figure 4.
package analysis

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/nbody"
	"repro/internal/vec"
)

// ErrorStats summarise the relative deviation of a force set from a
// reference.
type ErrorStats struct {
	// RMS is sqrt(mean of squared relative errors).
	RMS float64
	// Mean is the mean relative error.
	Mean float64
	// Max is the worst relative error.
	Max float64
	// Median is the 50th percentile.
	Median float64
	// P99 is the 99th percentile.
	P99 float64
	// N is the number of particles compared.
	N int
}

// CompareForces computes relative force-error statistics between two
// systems containing the same particles (matched by ID; the treecode
// reorders particles, the direct reference does not).
func CompareForces(got, ref *nbody.System) (ErrorStats, error) {
	if got.N() != ref.N() {
		return ErrorStats{}, fmt.Errorf("analysis: particle count mismatch %d vs %d", got.N(), ref.N())
	}
	refByID := make(map[int64]vec.V3, ref.N())
	for i := range ref.Pos {
		refByID[ref.ID[i]] = ref.Acc[i]
	}
	errs := make([]float64, 0, got.N())
	for i := range got.Pos {
		want, ok := refByID[got.ID[i]]
		if !ok {
			return ErrorStats{}, fmt.Errorf("analysis: particle ID %d missing from reference", got.ID[i])
		}
		norm := want.Norm()
		if norm == 0 {
			continue
		}
		errs = append(errs, got.Acc[i].Sub(want).Norm()/norm)
	}
	return SummarizeErrors(errs), nil
}

// SummarizeErrors reduces a sample of relative errors to statistics.
func SummarizeErrors(errs []float64) ErrorStats {
	if len(errs) == 0 {
		return ErrorStats{}
	}
	s := ErrorStats{N: len(errs)}
	var sum, sum2 float64
	for _, e := range errs {
		sum += e
		sum2 += e * e
		if e > s.Max {
			s.Max = e
		}
	}
	s.Mean = sum / float64(len(errs))
	s.RMS = math.Sqrt(sum2 / float64(len(errs)))
	sorted := append([]float64(nil), errs...)
	sort.Float64s(sorted)
	s.Median = quantile(sorted, 0.5)
	s.P99 = quantile(sorted, 0.99)
	return s
}

// quantile returns the q-th quantile of sorted data with linear
// interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// String formats the stats for reports.
func (s ErrorStats) String() string {
	return fmt.Sprintf("rms=%.4g mean=%.4g median=%.4g p99=%.4g max=%.4g (n=%d)",
		s.RMS, s.Mean, s.Median, s.P99, s.Max, s.N)
}

// EnergyReport is the total energy bookkeeping of a snapshot.
type EnergyReport struct {
	Kinetic, Potential float64
}

// Total returns K + U.
func (e EnergyReport) Total() float64 { return e.Kinetic + e.Potential }

// VirialRatio returns -2K/U (1 in virial equilibrium).
func (e EnergyReport) VirialRatio() float64 {
	if e.Potential == 0 {
		return 0
	}
	return -2 * e.Kinetic / e.Potential
}

// Energy measures the system's energy by exact direct summation (O(N²):
// use on analysis snapshots, not in integration loops).
func Energy(s *nbody.System, g, eps float64) EnergyReport {
	return EnergyReport{
		Kinetic:   s.KineticEnergy(),
		Potential: nbody.PotentialEnergy(s, g, eps),
	}
}

// EnergyFromPotentials measures energy using engine-filled potentials
// (cheap; valid right after a force evaluation that fills Pot).
func EnergyFromPotentials(s *nbody.System) EnergyReport {
	return EnergyReport{
		Kinetic:   s.KineticEnergy(),
		Potential: nbody.PotentialEnergyFromPot(s),
	}
}
