// Package units defines the astrophysical unit system used by the
// reproduction and the constants of the paper's cosmological model.
//
// Internal unit system:
//
//	length   1 Mpc
//	velocity 1 km/s
//	mass     1e10 solar masses
//
// which fixes the time unit to 1 Mpc/(km/s) = 977.79 Gyr and the
// gravitational constant to G = 43.0091 Mpc (km/s)^2 / (1e10 Msun).
//
// The paper simulates a sphere of comoving radius 50 Mpc with
// N = 2,159,038 particles of 1.7e10 Msun each in a standard CDM
// (Omega=1) universe; these constants make that mass come out of the
// mean-density arithmetic, which is verified by tests.
package units

import "math"

const (
	// G is the gravitational constant in internal units
	// (Mpc · (km/s)² / 1e10 Msun): 4.30091e-9 Mpc (km/s)²/Msun × 1e10.
	G = 43.0091

	// MpcInKm is one megaparsec expressed in kilometres.
	MpcInKm = 3.0856775814913673e19

	// TimeUnitGyr is the internal time unit (Mpc / (km/s)) in Gyr.
	TimeUnitGyr = 977.79222

	// HubbleUnit converts h (dimensionless) to H0 in internal units:
	// H0 = 100 h km/s/Mpc = 100 h (internal velocity / internal length).
	HubbleUnit = 100.0

	// RhoCrit0 is the z=0 critical density for h=1 in internal units
	// (1e10 Msun / Mpc^3): rho_crit = 3 H0² / (8 π G).
	// With H0 = 100 km/s/Mpc and G above this is 2.77536627e11 Msun/Mpc³
	// = 27.7536627 in units of 1e10 Msun/Mpc³.
	RhoCrit0 = 3 * HubbleUnit * HubbleUnit / (8 * math.Pi * G)
)

// Paper constants: the headline run of Kawai, Fukushige & Makino (1999).
const (
	// PaperN is the particle count of the headline simulation.
	PaperN = 2159038

	// PaperSteps is the number of timesteps of the headline simulation.
	PaperSteps = 999

	// PaperRadiusMpc is the comoving radius of the simulated sphere.
	PaperRadiusMpc = 50.0

	// PaperZInit is the starting redshift.
	PaperZInit = 24.0

	// PaperParticleMass is the mass per particle quoted in the paper,
	// in solar masses.
	PaperParticleMass = 1.7e10

	// PaperInteractions is the total number of particle-particle
	// interactions of the headline run (modified tree algorithm).
	PaperInteractions = 2.90e13

	// PaperOriginalInteractions is the estimated interaction count for
	// the original (per-particle) tree algorithm on the same runs.
	PaperOriginalInteractions = 4.69e12

	// PaperAvgListLength is the average interaction-list length quoted
	// in the paper (PaperInteractions / (PaperN * PaperSteps)).
	PaperAvgListLength = 13431.0

	// PaperWallClockSeconds is the total wall-clock time of the run.
	PaperWallClockSeconds = 30141.0

	// PaperRawGflops is the raw sustained speed (modified-algorithm
	// operation count / wall clock).
	PaperRawGflops = 36.4

	// PaperEffectiveGflops is the effective sustained speed after
	// correcting to the original algorithm's operation count.
	PaperEffectiveGflops = 5.92

	// PaperPricePerMflops is the headline price/performance in dollars
	// per Mflops.
	PaperPricePerMflops = 7.0

	// PaperOpsPerInteraction is the operation-count convention
	// (Warren & Salmon): 38 floating-point operations per pairwise
	// gravitational interaction.
	PaperOpsPerInteraction = 38
)

// Cosmology of the headline run: standard CDM.
const (
	// OmegaM is the matter density parameter (Einstein-de Sitter).
	OmegaM = 1.0

	// LittleH is the dimensionless Hubble parameter. h = 0.5 is the
	// standard-CDM convention of the era and reproduces the paper's
	// particle mass for the 50 Mpc sphere.
	LittleH = 0.5
)

// HubbleH0 returns H0 in internal units ((km/s)/Mpc) for parameter h.
func HubbleH0(h float64) float64 { return HubbleUnit * h }

// RhoCrit returns the z=0 critical density in internal units
// (1e10 Msun / Mpc^3) for Hubble parameter h.
func RhoCrit(h float64) float64 { return RhoCrit0 * h * h }

// RhoMean returns the z=0 comoving mean matter density in internal
// units for density parameter omegaM and Hubble parameter h.
func RhoMean(omegaM, h float64) float64 { return omegaM * RhoCrit(h) }

// SphereMass returns the total mass (internal units) of a comoving
// sphere of radius r Mpc at the mean density.
func SphereMass(omegaM, h, r float64) float64 {
	return RhoMean(omegaM, h) * 4 * math.Pi / 3 * r * r * r
}

// ParticleMass returns the per-particle mass (internal units) when a
// mean-density comoving sphere of radius r Mpc is sampled with n
// particles.
func ParticleMass(omegaM, h, r float64, n int) float64 {
	return SphereMass(omegaM, h, r) / float64(n)
}

// ScaleFactor returns a = 1/(1+z).
func ScaleFactor(z float64) float64 { return 1 / (1 + z) }

// Redshift returns z = 1/a - 1.
func Redshift(a float64) float64 { return 1/a - 1 }
