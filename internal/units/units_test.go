package units

import (
	"math"
	"testing"
)

func TestRhoCrit(t *testing.T) {
	// rho_crit(h=1) = 2.775e11 Msun/Mpc^3 = 27.75 in 1e10 Msun/Mpc^3.
	got := RhoCrit(1)
	if math.Abs(got-27.7537)/27.7537 > 1e-3 {
		t.Errorf("RhoCrit(1) = %v, want ~27.75", got)
	}
}

// TestPaperParticleMass is experiment E8: the paper's quoted particle
// mass of 1.7e10 Msun must follow from Omega=1, h=0.5, a 50 Mpc sphere
// and N = 2,159,038.
func TestPaperParticleMass(t *testing.T) {
	m := ParticleMass(OmegaM, LittleH, PaperRadiusMpc, PaperN)
	msun := m * 1e10
	if math.Abs(msun-PaperParticleMass)/PaperParticleMass > 0.02 {
		t.Errorf("particle mass = %.3e Msun, paper quotes %.3e (rounding tolerance 2%%)",
			msun, float64(PaperParticleMass))
	}
}

func TestPaperAvgListLengthConsistency(t *testing.T) {
	// The paper's average list length is derived from its own totals:
	// 2.90e13 / (2,159,038 * 999) = 13,444 ~ 13,431 (rounding in the
	// paper's quoted 2.90e13).
	derived := PaperInteractions / (float64(PaperN) * float64(PaperSteps))
	if math.Abs(derived-PaperAvgListLength)/PaperAvgListLength > 0.01 {
		t.Errorf("derived avg list length %v differs from paper's %v by >1%%",
			derived, PaperAvgListLength)
	}
}

func TestPaperGflopsConsistency(t *testing.T) {
	// Raw Gflops = 38 ops * 2.90e13 interactions / 30141 s = 36.56.
	raw := PaperOpsPerInteraction * PaperInteractions / PaperWallClockSeconds / 1e9
	if math.Abs(raw-PaperRawGflops)/PaperRawGflops > 0.02 {
		t.Errorf("raw Gflops from paper totals = %v, paper quotes %v", raw, PaperRawGflops)
	}
	eff := PaperOpsPerInteraction * PaperOriginalInteractions / PaperWallClockSeconds / 1e9
	if math.Abs(eff-PaperEffectiveGflops)/PaperEffectiveGflops > 0.02 {
		t.Errorf("effective Gflops from paper totals = %v, paper quotes %v", eff, PaperEffectiveGflops)
	}
}

func TestScaleFactorRedshiftRoundTrip(t *testing.T) {
	for _, z := range []float64{0, 0.5, 1, 24, 99} {
		if got := Redshift(ScaleFactor(z)); math.Abs(got-z) > 1e-12*(1+z) {
			t.Errorf("Redshift(ScaleFactor(%v)) = %v", z, got)
		}
	}
}

func TestHubbleH0(t *testing.T) {
	if HubbleH0(0.5) != 50 {
		t.Errorf("HubbleH0(0.5) = %v", HubbleH0(0.5))
	}
}

func TestSphereMassScales(t *testing.T) {
	m1 := SphereMass(1, 0.5, 50)
	m2 := SphereMass(1, 0.5, 100)
	if math.Abs(m2/m1-8) > 1e-12 {
		t.Errorf("sphere mass should scale as r^3: ratio = %v", m2/m1)
	}
	m3 := SphereMass(0.3, 0.5, 50)
	if math.Abs(m3/m1-0.3) > 1e-12 {
		t.Errorf("sphere mass should scale with OmegaM: ratio = %v", m3/m1)
	}
}
