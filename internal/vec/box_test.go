package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewBoxOrdersCorners(t *testing.T) {
	b := NewBox(V3{1, -2, 3}, V3{-1, 2, 0})
	if b.Min != (V3{-1, -2, 0}) || b.Max != (V3{1, 2, 3}) {
		t.Errorf("NewBox = %+v", b)
	}
}

func TestEmptyBox(t *testing.T) {
	b := EmptyBox()
	if !b.IsEmpty() {
		t.Error("EmptyBox not empty")
	}
	b = b.Extend(V3{1, 2, 3})
	if b.IsEmpty() {
		t.Error("extended box still empty")
	}
	if b.Min != (V3{1, 2, 3}) || b.Max != (V3{1, 2, 3}) {
		t.Errorf("point box = %+v", b)
	}
}

func TestExtendUnion(t *testing.T) {
	b := NewBox(V3{0, 0, 0}, V3{1, 1, 1})
	b = b.Extend(V3{2, -1, 0.5})
	want := Box{Min: V3{0, -1, 0}, Max: V3{2, 1, 1}}
	if b != want {
		t.Errorf("Extend = %+v, want %+v", b, want)
	}
	u := b.Union(NewBox(V3{-3, 0, 0}, V3{0, 0, 5}))
	want = Box{Min: V3{-3, -1, 0}, Max: V3{2, 1, 5}}
	if u != want {
		t.Errorf("Union = %+v, want %+v", u, want)
	}
}

func TestCenterSize(t *testing.T) {
	b := NewBox(V3{0, 0, 0}, V3{2, 4, 6})
	if b.Center() != (V3{1, 2, 3}) {
		t.Errorf("Center = %v", b.Center())
	}
	if b.Size() != (V3{2, 4, 6}) {
		t.Errorf("Size = %v", b.Size())
	}
	if b.MaxEdge() != 6 {
		t.Errorf("MaxEdge = %v", b.MaxEdge())
	}
}

func TestContainsHalfOpen(t *testing.T) {
	b := NewBox(V3{0, 0, 0}, V3{1, 1, 1})
	if !b.Contains(V3{0, 0, 0}) {
		t.Error("Min corner should be inside")
	}
	if b.Contains(V3{1, 0.5, 0.5}) {
		t.Error("Max face should be outside (half-open)")
	}
	if !b.ContainsClosed(V3{1, 1, 1}) {
		t.Error("Max corner should be inside closed box")
	}
}

func TestCube(t *testing.T) {
	b := NewBox(V3{0, 0, 0}, V3{2, 4, 1})
	c := b.Cube()
	sz := c.Size()
	if sz.X != 4 || sz.Y != 4 || sz.Z != 4 {
		t.Errorf("Cube size = %v", sz)
	}
	if c.Center() != b.Center() {
		t.Errorf("Cube recentred: %v vs %v", c.Center(), b.Center())
	}
	// Cube must contain the original box.
	if !c.ContainsClosed(b.Min) || !c.ContainsClosed(b.Max) {
		t.Error("Cube does not contain original box")
	}
}

func TestBoxDist2(t *testing.T) {
	b := NewBox(V3{0, 0, 0}, V3{1, 1, 1})
	if d := b.Dist2(V3{0.5, 0.5, 0.5}); d != 0 {
		t.Errorf("inside point Dist2 = %v", d)
	}
	if d := b.Dist2(V3{2, 0.5, 0.5}); d != 1 {
		t.Errorf("face point Dist2 = %v", d)
	}
	if d := b.Dist2(V3{2, 2, 0.5}); d != 2 {
		t.Errorf("edge point Dist2 = %v", d)
	}
	if d := b.Dist2(V3{2, 2, 2}); d != 3 {
		t.Errorf("corner point Dist2 = %v", d)
	}
}

func TestOctantChildRoundTrip(t *testing.T) {
	b := NewBox(V3{-1, -1, -1}, V3{1, 1, 1})
	for idx := 0; idx < 8; idx++ {
		child := b.Child(idx)
		p := child.Center()
		if got := b.Octant(p); got != idx {
			t.Errorf("Octant(Child(%d).Center()) = %d", idx, got)
		}
		if !child.Contains(p) {
			t.Errorf("child %d does not contain its own centre", idx)
		}
	}
}

// Property: the 8 children partition the parent box — every interior
// point is contained in exactly one child (half-open convention).
func TestChildrenPartitionProperty(t *testing.T) {
	b := NewBox(V3{-2, -2, -2}, V3{2, 2, 2})
	f := func(x, y, z float64) bool {
		p := V3{math.Mod(math.Abs(x), 3.9) - 1.95, math.Mod(math.Abs(y), 3.9) - 1.95, math.Mod(math.Abs(z), 3.9) - 1.95}
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsNaN(p.Z) {
			return true
		}
		count := 0
		for idx := 0; idx < 8; idx++ {
			if b.Child(idx).Contains(p) {
				count++
			}
		}
		return count == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Dist2 is zero iff the point is in the closed box, and is
// bounded above by the distance to the box centre.
func TestDist2Property(t *testing.T) {
	b := NewBox(V3{-1, -0.5, 0}, V3{1, 0.5, 2})
	f := func(x, y, z float64) bool {
		p := V3{clamp(x), clamp(y), clamp(z)}
		d2 := b.Dist2(p)
		if b.ContainsClosed(p) != (d2 == 0) {
			return false
		}
		return d2 <= p.Sub(b.Center()).Norm2()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
