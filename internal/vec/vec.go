// Package vec provides small fixed-size vector and box primitives used
// throughout the treecode. All types are plain value types with no
// hidden allocation; hot loops are expected to inline these helpers.
package vec

import "math"

// V3 is a 3-component double-precision vector.
type V3 struct {
	X, Y, Z float64
}

// Add returns a + b.
func (a V3) Add(b V3) V3 { return V3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a V3) Sub(b V3) V3 { return V3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns s * a.
func (a V3) Scale(s float64) V3 { return V3{s * a.X, s * a.Y, s * a.Z} }

// Neg returns -a.
func (a V3) Neg() V3 { return V3{-a.X, -a.Y, -a.Z} }

// Dot returns the inner product a · b.
func (a V3) Dot(b V3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the vector product a × b.
func (a V3) Cross(b V3) V3 {
	return V3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Norm2 returns |a|².
func (a V3) Norm2() float64 { return a.Dot(a) }

// Norm returns |a|.
func (a V3) Norm() float64 { return math.Sqrt(a.Norm2()) }

// Dist2 returns |a-b|².
func (a V3) Dist2(b V3) float64 {
	dx := a.X - b.X
	dy := a.Y - b.Y
	dz := a.Z - b.Z
	return dx*dx + dy*dy + dz*dz
}

// Dist returns |a-b|.
func (a V3) Dist(b V3) float64 { return math.Sqrt(a.Dist2(b)) }

// MulAdd returns a + s*b, the fused update used by integrators.
func (a V3) MulAdd(s float64, b V3) V3 {
	return V3{a.X + s*b.X, a.Y + s*b.Y, a.Z + s*b.Z}
}

// Min returns the component-wise minimum of a and b.
func (a V3) Min(b V3) V3 {
	return V3{math.Min(a.X, b.X), math.Min(a.Y, b.Y), math.Min(a.Z, b.Z)}
}

// Max returns the component-wise maximum of a and b.
func (a V3) Max(b V3) V3 {
	return V3{math.Max(a.X, b.X), math.Max(a.Y, b.Y), math.Max(a.Z, b.Z)}
}

// Comp returns the i-th component (0=X, 1=Y, 2=Z). It panics for other i.
func (a V3) Comp(i int) float64 {
	switch i {
	case 0:
		return a.X
	case 1:
		return a.Y
	case 2:
		return a.Z
	}
	panic("vec: component index out of range")
}

// SetComp returns a copy of a with the i-th component set to v.
func (a V3) SetComp(i int, v float64) V3 {
	switch i {
	case 0:
		a.X = v
	case 1:
		a.Y = v
	case 2:
		a.Z = v
	default:
		panic("vec: component index out of range")
	}
	return a
}

// MaxAbsComp returns the largest |component| of a.
func (a V3) MaxAbsComp() float64 {
	m := math.Abs(a.X)
	if v := math.Abs(a.Y); v > m {
		m = v
	}
	if v := math.Abs(a.Z); v > m {
		m = v
	}
	return m
}

// IsFinite reports whether all components are finite numbers.
func (a V3) IsFinite() bool {
	return !math.IsNaN(a.X) && !math.IsInf(a.X, 0) &&
		!math.IsNaN(a.Y) && !math.IsInf(a.Y, 0) &&
		!math.IsNaN(a.Z) && !math.IsInf(a.Z, 0)
}

// Zero is the zero vector.
var Zero = V3{}
