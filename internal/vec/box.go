package vec

import "math"

// Box is an axis-aligned bounding box [Min, Max].
type Box struct {
	Min, Max V3
}

// NewBox returns the box spanning the two corner points in any order.
func NewBox(a, b V3) Box {
	return Box{Min: a.Min(b), Max: a.Max(b)}
}

// EmptyBox returns a box that contains nothing; extending it with any
// point yields a point box.
func EmptyBox() Box {
	inf := math.Inf(1)
	return Box{Min: V3{inf, inf, inf}, Max: V3{-inf, -inf, -inf}}
}

// Extend returns the smallest box containing b and the point p.
func (b Box) Extend(p V3) Box {
	return Box{Min: b.Min.Min(p), Max: b.Max.Max(p)}
}

// Union returns the smallest box containing both boxes.
func (b Box) Union(o Box) Box {
	return Box{Min: b.Min.Min(o.Min), Max: b.Max.Max(o.Max)}
}

// Center returns the box centre point.
func (b Box) Center() V3 { return b.Min.Add(b.Max).Scale(0.5) }

// Size returns the box edge lengths.
func (b Box) Size() V3 { return b.Max.Sub(b.Min) }

// MaxEdge returns the longest edge length.
func (b Box) MaxEdge() float64 { return b.Size().MaxAbsComp() }

// Contains reports whether p lies in the half-open box [Min, Max).
// Points exactly on the Max faces are considered outside, which gives
// octree children a consistent disjoint partition.
func (b Box) Contains(p V3) bool {
	return p.X >= b.Min.X && p.X < b.Max.X &&
		p.Y >= b.Min.Y && p.Y < b.Max.Y &&
		p.Z >= b.Min.Z && p.Z < b.Max.Z
}

// ContainsClosed reports whether p lies in the closed box [Min, Max].
func (b Box) ContainsClosed(p V3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// IsEmpty reports whether the box contains no points.
func (b Box) IsEmpty() bool {
	return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y || b.Min.Z > b.Max.Z
}

// Cube returns the smallest cube centred on b's centre that contains b.
// Octrees are built on cubes so that cells at each level have a single
// side length.
func (b Box) Cube() Box {
	c := b.Center()
	h := b.MaxEdge() / 2
	half := V3{h, h, h}
	return Box{Min: c.Sub(half), Max: c.Add(half)}
}

// Dist2 returns the squared distance from p to the closest point of the
// box (zero when p is inside). This is the distance used by the
// modified tree algorithm's group opening criterion.
func (b Box) Dist2(p V3) float64 {
	var d2 float64
	for i := 0; i < 3; i++ {
		v := p.Comp(i)
		if lo := b.Min.Comp(i); v < lo {
			d := lo - v
			d2 += d * d
		} else if hi := b.Max.Comp(i); v > hi {
			d := v - hi
			d2 += d * d
		}
	}
	return d2
}

// Octant returns the child index (bit 0 = X high, bit 1 = Y high,
// bit 2 = Z high) of the octant of the box containing p, measured from
// the box centre.
func (b Box) Octant(p V3) int {
	c := b.Center()
	idx := 0
	if p.X >= c.X {
		idx |= 1
	}
	if p.Y >= c.Y {
		idx |= 2
	}
	if p.Z >= c.Z {
		idx |= 4
	}
	return idx
}

// Child returns the sub-box for octant idx as defined by Octant.
func (b Box) Child(idx int) Box {
	c := b.Center()
	var child Box
	if idx&1 != 0 {
		child.Min.X, child.Max.X = c.X, b.Max.X
	} else {
		child.Min.X, child.Max.X = b.Min.X, c.X
	}
	if idx&2 != 0 {
		child.Min.Y, child.Max.Y = c.Y, b.Max.Y
	} else {
		child.Min.Y, child.Max.Y = b.Min.Y, c.Y
	}
	if idx&4 != 0 {
		child.Min.Z, child.Max.Z = c.Z, b.Max.Z
	} else {
		child.Min.Z, child.Max.Z = b.Min.Z, c.Z
	}
	return child
}
