package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func v3ApproxEq(a, b V3, tol float64) bool {
	return approxEq(a.X, b.X, tol) && approxEq(a.Y, b.Y, tol) && approxEq(a.Z, b.Z, tol)
}

func TestAddSub(t *testing.T) {
	a := V3{1, 2, 3}
	b := V3{-4, 5, 0.5}
	if got := a.Add(b); got != (V3{-3, 7, 3.5}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (V3{5, -3, 2.5}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Add(b).Sub(b); got != a {
		t.Errorf("Add then Sub = %v, want %v", got, a)
	}
}

func TestScaleNeg(t *testing.T) {
	a := V3{1, -2, 3}
	if got := a.Scale(2); got != (V3{2, -4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Neg(); got != (V3{-1, 2, -3}) {
		t.Errorf("Neg = %v", got)
	}
}

func TestDotCross(t *testing.T) {
	x := V3{1, 0, 0}
	y := V3{0, 1, 0}
	z := V3{0, 0, 1}
	if got := x.Cross(y); got != z {
		t.Errorf("x × y = %v, want %v", got, z)
	}
	if got := y.Cross(z); got != x {
		t.Errorf("y × z = %v, want %v", got, x)
	}
	if got := x.Dot(y); got != 0 {
		t.Errorf("x · y = %v", got)
	}
	if got := (V3{1, 2, 3}).Dot(V3{4, 5, 6}); got != 32 {
		t.Errorf("dot = %v, want 32", got)
	}
}

func TestNormDist(t *testing.T) {
	a := V3{3, 4, 0}
	if a.Norm() != 5 {
		t.Errorf("Norm = %v", a.Norm())
	}
	if a.Norm2() != 25 {
		t.Errorf("Norm2 = %v", a.Norm2())
	}
	b := V3{0, 0, 12}
	if got := a.Dist(b); got != 13 {
		t.Errorf("Dist = %v", got)
	}
}

func TestMulAdd(t *testing.T) {
	a := V3{1, 1, 1}
	b := V3{2, 3, 4}
	if got := a.MulAdd(0.5, b); got != (V3{2, 2.5, 3}) {
		t.Errorf("MulAdd = %v", got)
	}
}

func TestCompSetComp(t *testing.T) {
	a := V3{7, 8, 9}
	for i, want := range []float64{7, 8, 9} {
		if got := a.Comp(i); got != want {
			t.Errorf("Comp(%d) = %v, want %v", i, got, want)
		}
	}
	if got := a.SetComp(1, -1); got != (V3{7, -1, 9}) {
		t.Errorf("SetComp = %v", got)
	}
	// Receiver must be unchanged (value semantics).
	if a != (V3{7, 8, 9}) {
		t.Errorf("SetComp mutated receiver: %v", a)
	}
}

func TestCompPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Comp(3) did not panic")
		}
	}()
	_ = (V3{}).Comp(3)
}

func TestMaxAbsComp(t *testing.T) {
	if got := (V3{1, -5, 3}).MaxAbsComp(); got != 5 {
		t.Errorf("MaxAbsComp = %v", got)
	}
	if got := (V3{-1, 0, -0.5}).MaxAbsComp(); got != 1 {
		t.Errorf("MaxAbsComp = %v", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !(V3{1, 2, 3}).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if (V3{math.NaN(), 0, 0}).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if (V3{0, math.Inf(1), 0}).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

// Property: the cross product is orthogonal to both factors.
func TestCrossOrthogonalProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := V3{clamp(ax), clamp(ay), clamp(az)}
		b := V3{clamp(bx), clamp(by), clamp(bz)}
		c := a.Cross(b)
		scale := a.Norm()*b.Norm() + 1
		return math.Abs(c.Dot(a)) <= 1e-9*scale*scale && math.Abs(c.Dot(b)) <= 1e-9*scale*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: |a+b|² = |a|² + 2a·b + |b|².
func TestNormExpansionProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := V3{clamp(ax), clamp(ay), clamp(az)}
		b := V3{clamp(bx), clamp(by), clamp(bz)}
		lhs := a.Add(b).Norm2()
		rhs := a.Norm2() + 2*a.Dot(b) + b.Norm2()
		return approxEq(lhs, rhs, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clamp maps arbitrary quick-generated floats into a tame range so the
// algebraic identities are not dominated by overflow.
func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}
