package cosmo

import (
	"fmt"
	"math"
)

// TransferBBKS is the Bardeen, Bond, Kaiser & Szalay (1986) cold dark
// matter transfer function, the fitting form behind "standard CDM"
// spectra of the paper's era. k is in Mpc⁻¹ (comoving); gamma is the
// shape parameter Γ = Ω_m·h.
func TransferBBKS(k, gamma float64) float64 {
	if k <= 0 {
		return 1
	}
	q := k / gamma // q in h/Mpc convention folded into gamma
	t := math.Log(1+2.34*q) / (2.34 * q)
	poly := 1 + 3.89*q + math.Pow(16.1*q, 2) + math.Pow(5.46*q, 3) + math.Pow(6.71*q, 4)
	return t * math.Pow(poly, -0.25)
}

// PowerSpectrum is a z=0 linear CDM power spectrum P(k) = A·kⁿ·T²(k),
// normalised through σ₈.
type PowerSpectrum struct {
	// Cosmo supplies the shape parameter Γ = Ωm·h.
	Cosmo Cosmology
	// Ns is the primordial spectral index (1 = Harrison-Zel'dovich).
	Ns float64
	// Sigma8 is the RMS linear density contrast in 8 Mpc/h spheres at
	// z=0 used for normalisation.
	Sigma8 float64

	amp float64 // cached amplitude A
}

// NewPowerSpectrum builds and normalises a spectrum. Typical standard-
// CDM parameters of the era: ns=1, σ₈≈0.6-0.7.
func NewPowerSpectrum(c Cosmology, ns, sigma8 float64) (*PowerSpectrum, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if sigma8 <= 0 {
		return nil, fmt.Errorf("cosmo: sigma8 must be positive")
	}
	p := &PowerSpectrum{Cosmo: c, Ns: ns, Sigma8: sigma8, amp: 1}
	s := p.SigmaR(8 / c.H) // 8 Mpc/h in Mpc
	p.amp = sigma8 * sigma8 / (s * s)
	return p, nil
}

// P returns the z=0 power at comoving wavenumber k (Mpc⁻¹), in Mpc³.
func (p *PowerSpectrum) P(k float64) float64 {
	if k <= 0 {
		return 0
	}
	t := TransferBBKS(k, p.Cosmo.OmegaM*p.Cosmo.H)
	return p.amp * math.Pow(k, p.Ns) * t * t
}

// PAt returns the linear power at scale factor a: D²(a)·P(k).
func (p *PowerSpectrum) PAt(k, a float64) float64 {
	d := p.Cosmo.GrowthFactor(a)
	return d * d * p.P(k)
}

// topHatW is the Fourier transform of the spherical top-hat window.
func topHatW(x float64) float64 {
	if x < 1e-2 {
		// Series expansion avoids the sin-cos cancellation, which loses
		// ~x⁻³ relative digits as x→0.
		x2 := x * x
		return 1 - x2/10 + x2*x2/280
	}
	return 3 * (math.Sin(x) - x*math.Cos(x)) / (x * x * x)
}

// SigmaR returns the RMS linear density contrast in spheres of comoving
// radius r Mpc:
//
//	σ²(R) = (1/2π²) ∫ P(k) W²(kR) k² dk
func (p *PowerSpectrum) SigmaR(r float64) float64 {
	// Integrate in log k over a generous range around the window scale.
	const nk = 2048
	lkMin := math.Log(1e-5 / r)
	lkMax := math.Log(1e3 / r)
	f := func(lk float64) float64 {
		k := math.Exp(lk)
		w := topHatW(k * r)
		return p.P(k) * w * w * k * k * k // extra k from dk = k dlnk
	}
	integral := simpson(f, lkMin, lkMax, nk)
	return math.Sqrt(integral / (2 * math.Pi * math.Pi))
}
