package cosmo

import (
	"math"
	"testing"

	"repro/internal/units"
)

func TestSCDMParameters(t *testing.T) {
	c := SCDM()
	if c.OmegaM != 1 || c.OmegaL != 0 || c.H != 0.5 {
		t.Errorf("SCDM = %+v", c)
	}
	if c.H0() != 50 {
		t.Errorf("H0 = %v", c.H0())
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateRejects(t *testing.T) {
	if err := (Cosmology{OmegaM: 0, H: 0.5}).Validate(); err == nil {
		t.Error("OmegaM=0 accepted")
	}
	if err := (Cosmology{OmegaM: 1, H: 0}).Validate(); err == nil {
		t.Error("h=0 accepted")
	}
}

func TestHubbleEdS(t *testing.T) {
	c := SCDM()
	// H(a) = H0 a^{-3/2} for EdS.
	for _, a := range []float64{0.04, 0.25, 1} {
		want := c.H0() * math.Pow(a, -1.5)
		if got := c.Hubble(a); math.Abs(got-want)/want > 1e-12 {
			t.Errorf("H(%v) = %v, want %v", a, got, want)
		}
	}
}

func TestAgeEdS(t *testing.T) {
	c := SCDM()
	// t0 = 2/(3 H0); in Gyr: 2/(3·50) Mpc/(km/s) = 13.04 Gyr.
	t0 := c.Age(1)
	gyr := t0 * units.TimeUnitGyr
	if math.Abs(gyr-13.04) > 0.01 {
		t.Errorf("EdS age = %v Gyr, want 13.04", gyr)
	}
	// t(a) ∝ a^{3/2}.
	if got := c.Age(0.25) / t0; math.Abs(got-0.125) > 1e-12 {
		t.Errorf("t(0.25)/t0 = %v, want 0.125", got)
	}
}

func TestAgeNumericMatchesAnalytic(t *testing.T) {
	// Use a not-quite-EdS cosmology to exercise the numeric branch,
	// then compare to EdS by continuity (OmegaM→1).
	eds := SCDM()
	near := Cosmology{OmegaM: 1 - 1e-9, OmegaL: 0, H: 0.5}
	for _, a := range []float64{0.04, 0.5, 1} {
		g1, g2 := eds.Age(a), near.Age(a)
		if math.Abs(g1-g2)/g1 > 1e-4 {
			t.Errorf("numeric age at a=%v: %v vs analytic %v", a, g2, g1)
		}
	}
}

func TestGrowthFactorEdS(t *testing.T) {
	c := SCDM()
	// D(a) = a with D(1)=1.
	for _, a := range []float64{0.04, 0.3, 1} {
		if got := c.GrowthFactor(a); math.Abs(got-a) > 1e-12 {
			t.Errorf("D(%v) = %v", a, got)
		}
	}
	if got := c.GrowthRate(0.2); got != 1 {
		t.Errorf("f = %v, want 1", got)
	}
}

func TestGrowthFactorLCDM(t *testing.T) {
	// For ΛCDM growth is suppressed at late times: D(a) > a·D(1)
	// comparison — at a=0.5, D should exceed what pure matter scaling
	// from a<<1 predicts... more simply: D is monotone and D(1)=1.
	c := Cosmology{OmegaM: 0.3, OmegaL: 0.7, H: 0.7}
	if got := c.GrowthFactor(1); math.Abs(got-1) > 1e-9 {
		t.Errorf("D(1) = %v", got)
	}
	prev := 0.0
	for _, a := range []float64{0.1, 0.3, 0.6, 1.0} {
		d := c.GrowthFactor(a)
		if d <= prev {
			t.Errorf("D not increasing at a=%v: %v <= %v", a, d, prev)
		}
		prev = d
	}
	// In ΛCDM early growth tracks EdS: D(a)/a → const > 1 as a→0, and
	// growth slows later, so D(0.1)/0.1 > D(1)/1.
	if c.GrowthFactor(0.1)/0.1 <= 1 {
		t.Errorf("early ΛCDM growth ratio = %v, want > 1", c.GrowthFactor(0.1)/0.1)
	}
	// Growth rate below 1 for open/Λ universes at z=0.
	f := c.GrowthRate(1)
	want := math.Pow(0.3, 0.55) // standard approximation
	if math.Abs(f-want) > 0.03 {
		t.Errorf("f(1) = %v, approximation says %v", f, want)
	}
}

func TestRhoMean(t *testing.T) {
	c := SCDM()
	if got, want := c.RhoMean(), units.RhoMean(1, 0.5); got != want {
		t.Errorf("RhoMean = %v, want %v", got, want)
	}
}

func TestSimpson(t *testing.T) {
	// ∫₀^π sin = 2.
	got := simpson(math.Sin, 0, math.Pi, 100)
	if math.Abs(got-2) > 1e-7 {
		t.Errorf("simpson sin = %v", got)
	}
	// Odd n is rounded up.
	got = simpson(func(x float64) float64 { return x }, 0, 1, 5)
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("simpson x = %v", got)
	}
}
