package cosmo

import (
	"math"
	"testing"
)

func TestTransferBBKSLimits(t *testing.T) {
	// T → 1 as k → 0.
	if got := TransferBBKS(1e-8, 0.5); math.Abs(got-1) > 1e-4 {
		t.Errorf("T(k→0) = %v", got)
	}
	if got := TransferBBKS(0, 0.5); got != 1 {
		t.Errorf("T(0) = %v", got)
	}
	// Monotone decreasing.
	prev := 1.0
	for _, k := range []float64{0.001, 0.01, 0.1, 1, 10} {
		tr := TransferBBKS(k, 0.5)
		if tr >= prev {
			t.Errorf("T not decreasing at k=%v", k)
		}
		prev = tr
	}
	// Small-scale suppression: T ~ ln(q)/q² asymptotically, very small.
	if tr := TransferBBKS(10, 0.5); tr > 1e-2 {
		t.Errorf("T(10) = %v, too large", tr)
	}
}

func TestPowerSpectrumNormalization(t *testing.T) {
	p, err := NewPowerSpectrum(SCDM(), 1, 0.67)
	if err != nil {
		t.Fatal(err)
	}
	// After normalisation, SigmaR(8 Mpc/h) must reproduce sigma8.
	got := p.SigmaR(8 / 0.5)
	if math.Abs(got-0.67)/0.67 > 1e-6 {
		t.Errorf("SigmaR(8/h) = %v, want 0.67", got)
	}
}

func TestPowerSpectrumShape(t *testing.T) {
	p, _ := NewPowerSpectrum(SCDM(), 1, 0.67)
	// P(k) rises as k^ns at large scales and turns over.
	k1, k2 := 1e-4, 2e-4
	ratio := p.P(k2) / p.P(k1)
	if math.Abs(ratio-2) > 0.05 {
		t.Errorf("large-scale P ratio = %v, want ~2 (n_s=1)", ratio)
	}
	// A peak exists: P(0.01) greater than both ends.
	if p.P(0.02) <= p.P(1e-4) || p.P(0.02) <= p.P(10) {
		t.Error("no turnover in P(k)")
	}
	if p.P(0) != 0 || p.P(-1) != 0 {
		t.Error("P must vanish for k<=0")
	}
}

func TestPAtScalesWithGrowth(t *testing.T) {
	p, _ := NewPowerSpectrum(SCDM(), 1, 0.67)
	// EdS: P(k, a) = a² P(k).
	k := 0.1
	if got, want := p.PAt(k, 0.04), 0.04*0.04*p.P(k); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("PAt = %v, want %v", got, want)
	}
}

func TestNewPowerSpectrumRejects(t *testing.T) {
	if _, err := NewPowerSpectrum(SCDM(), 1, 0); err == nil {
		t.Error("sigma8=0 accepted")
	}
	if _, err := NewPowerSpectrum(Cosmology{}, 1, 0.6); err == nil {
		t.Error("invalid cosmology accepted")
	}
}

func TestTopHatW(t *testing.T) {
	if got := topHatW(0); got != 1 {
		t.Errorf("W(0) = %v", got)
	}
	// Continuity across the series/exact switch at x=1e-2.
	lo, hi := topHatW(0.99e-2), topHatW(1.01e-2)
	if math.Abs(lo-hi) > 1e-6 {
		t.Errorf("W discontinuous at switch: %v vs %v", lo, hi)
	}
	// First zero near x = 4.493.
	if math.Abs(topHatW(4.493409)) > 1e-5 {
		t.Errorf("W(4.4934) = %v, want ~0", topHatW(4.493409))
	}
}

func TestSigmaRMonotone(t *testing.T) {
	p, _ := NewPowerSpectrum(SCDM(), 1, 0.67)
	prev := math.Inf(1)
	for _, r := range []float64{1, 4, 16, 64} {
		s := p.SigmaR(r)
		if s >= prev {
			t.Errorf("sigma(R) not decreasing at R=%v", r)
		}
		prev = s
	}
}
