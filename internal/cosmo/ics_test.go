package cosmo

import (
	"math"
	"testing"

	"repro/internal/fft"
	"repro/internal/units"
	"repro/internal/vec"
)

func testParams(t *testing.T, gridN int, seed uint64) ICParams {
	t.Helper()
	p, err := NewPowerSpectrum(SCDM(), 1, 0.67)
	if err != nil {
		t.Fatal(err)
	}
	return ICParams{
		Power:     p,
		GridN:     gridN,
		BoxMpc:    100,
		RadiusMpc: 50,
		ZInit:     24,
		Seed:      seed,
	}
}

func TestICParamsValidate(t *testing.T) {
	p := testParams(t, 16, 1)
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
	bad := p
	bad.GridN = 12
	if err := bad.Validate(); err == nil {
		t.Error("non-pow2 grid accepted")
	}
	bad = p
	bad.RadiusMpc = 60
	if err := bad.Validate(); err == nil {
		t.Error("sphere larger than box accepted")
	}
	bad = p
	bad.Power = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil power accepted")
	}
	bad = p
	bad.ZInit = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative z accepted")
	}
	// z=0 is a valid epoch for Zel'dovich-evolved statistics snapshots.
	zeroZ := p
	zeroZ.ZInit = 0
	if err := zeroZ.Validate(); err != nil {
		t.Errorf("z=0 rejected: %v", err)
	}
}

func TestGenerateSphereBasics(t *testing.T) {
	r, err := GenerateSphere(testParams(t, 16, 42))
	if err != nil {
		t.Fatal(err)
	}
	s := r.System
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Sphere selection keeps ~π/6 of the grid (52%).
	frac := float64(s.N()) / (16 * 16 * 16)
	if math.Abs(frac-math.Pi/6) > 0.05 {
		t.Errorf("selected fraction = %v, want ~%v", frac, math.Pi/6)
	}
	// a_init.
	if math.Abs(r.AInit-0.04) > 1e-12 {
		t.Errorf("AInit = %v", r.AInit)
	}
	// All particles within (slightly displaced) physical sphere.
	maxR := 0.0
	for _, p := range s.Pos {
		if rr := p.Norm(); rr > maxR {
			maxR = rr
		}
	}
	// Physical radius = a * (50 + displacement slack).
	if maxR > 0.04*(50+5) {
		t.Errorf("max physical radius = %v", maxR)
	}
	// Displacements must be small compared to grid spacing at z=24.
	if r.RMSDisplacement > r.GridSpacing {
		t.Errorf("RMS displacement %v exceeds grid spacing %v — Zel'dovich invalid",
			r.RMSDisplacement, r.GridSpacing)
	}
	if r.RMSDisplacement == 0 {
		t.Error("zero displacement — field not applied")
	}
}

// TestParticleMassMatchesPaper is the E8 cross-check through the IC
// pipeline: the generated particle mass must approach the paper's
// 1.7e10 Msun for the 50 Mpc sphere, once the sphere holds ~2.1e6
// particles. At small grids the mass per particle is the same number
// scaled by (N_paper/N)·(counts), i.e. grid-independent by
// construction: rho_mean · spacing³.
func TestParticleMassMatchesPaper(t *testing.T) {
	r, err := GenerateSphere(testParams(t, 16, 7))
	if err != nil {
		t.Fatal(err)
	}
	// rho_mean(SCDM) * (100/16)³ in 1e10 Msun.
	want := units.RhoMean(1, 0.5) * math.Pow(100.0/16, 3)
	if math.Abs(r.ParticleMass-want)/want > 1e-12 {
		t.Errorf("particle mass = %v, want %v", r.ParticleMass, want)
	}
	// Scale to the paper: a grid with spacing such that the sphere
	// holds PaperN particles gives the paper's particle mass; verified
	// in units_test. Here check consistency: total sphere mass equals
	// N * m ≈ rho_mean * V_sphere within the grid-sampling error of the
	// sphere volume.
	total := r.ParticleMass * float64(r.System.N())
	wantTotal := units.SphereMass(1, 0.5, 50)
	if math.Abs(total-wantTotal)/wantTotal > 0.05 {
		t.Errorf("sphere mass = %v, want ~%v", total, wantTotal)
	}
}

func TestVelocitiesAreHubbleDominated(t *testing.T) {
	r, err := GenerateSphere(testParams(t, 16, 3))
	if err != nil {
		t.Fatal(err)
	}
	s := r.System
	h := SCDM().Hubble(r.AInit)
	var pecSum, hubSum float64
	for i := range s.Pos {
		hub := s.Pos[i].Scale(h)
		pec := s.Vel[i].Sub(hub)
		pecSum += pec.Norm2()
		hubSum += hub.Norm2()
	}
	pecRMS := math.Sqrt(pecSum / float64(s.N()))
	hubRMS := math.Sqrt(hubSum / float64(s.N()))
	if pecRMS >= hubRMS {
		t.Errorf("peculiar RMS %v should be far below Hubble RMS %v at z=24", pecRMS, hubRMS)
	}
	if pecRMS == 0 {
		t.Error("no peculiar velocities")
	}
	// EdS relation: v_pec = a·H·f·D·psi with f=1 ⇒
	// pecRMS = a·H·D·psiRMS = a·H·RMSDisplacement (D folded in already).
	want := r.AInit * h * r.RMSDisplacement
	if math.Abs(pecRMS-want)/want > 1e-9 {
		t.Errorf("pec RMS = %v, Zel'dovich relation gives %v", pecRMS, want)
	}
}

func TestDeterminism(t *testing.T) {
	r1, err := GenerateSphere(testParams(t, 8, 99))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := GenerateSphere(testParams(t, 8, 99))
	if err != nil {
		t.Fatal(err)
	}
	if r1.System.N() != r2.System.N() {
		t.Fatal("different N for same seed")
	}
	for i := range r1.System.Pos {
		if r1.System.Pos[i] != r2.System.Pos[i] || r1.System.Vel[i] != r2.System.Vel[i] {
			t.Fatal("same seed produced different realisation")
		}
	}
	r3, err := GenerateSphere(testParams(t, 8, 100))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range r1.System.Pos {
		if i < r3.System.N() && r1.System.Pos[i] != r3.System.Pos[i] {
			same = false
			break
		}
	}
	if same && r1.System.N() == r3.System.N() {
		t.Error("different seeds produced identical realisations")
	}
}

func TestDisplacementFieldHasZeroMean(t *testing.T) {
	r, err := GenerateSphere(testParams(t, 16, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Mean peculiar velocity over the sphere should be near zero (the
	// k=0 mode is excluded). Tolerance: RMS/sqrt(N) sampling noise with
	// large-scale correlations — be generous.
	s := r.System
	h := SCDM().Hubble(r.AInit)
	var mean vec.V3
	var rms float64
	for i := range s.Pos {
		pec := s.Vel[i].Sub(s.Pos[i].Scale(h))
		mean = mean.Add(pec)
		rms += pec.Norm2()
	}
	mean = mean.Scale(1 / float64(s.N()))
	rmsv := math.Sqrt(rms / float64(s.N()))
	if mean.Norm() > rmsv {
		t.Errorf("mean peculiar velocity %v not small vs RMS %v", mean.Norm(), rmsv)
	}
}

func TestGenerateSphereGridScaling(t *testing.T) {
	// Doubling the grid quadruples... octuples the particle count and
	// divides the particle mass by 8.
	r8, err := GenerateSphere(testParams(t, 8, 11))
	if err != nil {
		t.Fatal(err)
	}
	r16, err := GenerateSphere(testParams(t, 16, 11))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(r16.System.N()) / float64(r8.System.N())
	if ratio < 6 || ratio > 10 {
		t.Errorf("N ratio = %v, want ~8", ratio)
	}
	if m := r8.ParticleMass / r16.ParticleMass; math.Abs(m-8) > 1e-9 {
		t.Errorf("mass ratio = %v, want 8", m)
	}
}

func TestInterp3ExactAtNodes(t *testing.T) {
	// Build a small grid with known values and check node sampling.
	g, err := fft.NewGrid3(8)
	if err != nil {
		t.Fatal(err)
	}
	g.Set(2, 3, 4, complex(7.5, 0))
	if got := interp3(g, 2, 3, 4); got != 7.5 {
		t.Errorf("node sample = %v, want 7.5", got)
	}
	// Midpoint between two nodes along z.
	g.Set(2, 3, 5, complex(9.5, 0))
	if got := interp3(g, 2, 3, 4.5); math.Abs(got-8.5) > 1e-12 {
		t.Errorf("midpoint = %v, want 8.5", got)
	}
	// Periodic wrap: sampling just past the last node blends with node 0.
	g.Set(2, 3, 7, complex(1, 0))
	g.Set(2, 3, 0, complex(3, 0))
	if got := interp3(g, 2, 3, 7.5); math.Abs(got-2) > 1e-12 {
		t.Errorf("wrap = %v, want 2", got)
	}
}

func TestWrap(t *testing.T) {
	cases := []struct{ i, n, want int }{
		{0, 8, 0}, {7, 8, 7}, {8, 8, 0}, {-1, 8, 7}, {-9, 8, 7}, {17, 8, 1},
	}
	for _, c := range cases {
		if got := wrap(c.i, c.n); got != c.want {
			t.Errorf("wrap(%d,%d) = %d, want %d", c.i, c.n, got, c.want)
		}
	}
}

func TestLatticeDecoupling(t *testing.T) {
	// A non-power-of-two lattice over a power-of-two Fourier grid must
	// produce the right particle count and mass.
	p := testParams(t, 16, 33)
	p.LatticeN = 20
	r, err := GenerateSphere(p)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(r.System.N()) / (20 * 20 * 20)
	if math.Abs(frac-math.Pi/6) > 0.05 {
		t.Errorf("selected fraction = %v, want ~%v", frac, math.Pi/6)
	}
	want := units.RhoMean(1, 0.5) * math.Pow(100.0/20, 3)
	if math.Abs(r.ParticleMass-want)/want > 1e-12 {
		t.Errorf("particle mass = %v, want %v", r.ParticleMass, want)
	}
	// Displacements still reasonable.
	if r.RMSDisplacement <= 0 || r.RMSDisplacement > r.GridSpacing*2 {
		t.Errorf("RMS displacement = %v vs spacing %v", r.RMSDisplacement, r.GridSpacing)
	}
	if err := r.System.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLatticeNValidation(t *testing.T) {
	p := testParams(t, 8, 1)
	p.LatticeN = -1
	if err := p.Validate(); err == nil {
		t.Error("negative LatticeN accepted")
	}
}
