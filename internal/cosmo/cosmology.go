// Package cosmo supplies the cosmological machinery behind the paper's
// headline run: the Friedmann background, the linear growth factor,
// the BBKS cold-dark-matter power spectrum, and a Zel'dovich-
// approximation initial-condition generator — the stand-in for
// Bertschinger's COSMICS package used in the paper (§5). It produces
// the same class of initial data: a sphere of comoving radius R cut
// from a Gaussian random realisation of a standard CDM density field,
// with Hubble-flow plus peculiar velocities at the starting redshift.
package cosmo

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// Cosmology is a Friedmann-Lemaître background in internal units
// (lengths Mpc, velocities km/s).
type Cosmology struct {
	// OmegaM and OmegaL are the z=0 matter and cosmological-constant
	// density parameters; curvature takes up the remainder.
	OmegaM, OmegaL float64
	// H is the dimensionless Hubble parameter h (H0 = 100 h km/s/Mpc).
	H float64
}

// SCDM returns the paper's cosmology: standard CDM, Ω=1, h=0.5.
func SCDM() Cosmology { return Cosmology{OmegaM: 1, OmegaL: 0, H: units.LittleH} }

// H0 returns the Hubble constant in internal units ((km/s)/Mpc).
func (c Cosmology) H0() float64 { return units.HubbleH0(c.H) }

// Validate reports parameter errors.
func (c Cosmology) Validate() error {
	if c.OmegaM <= 0 || c.H <= 0 {
		return fmt.Errorf("cosmo: OmegaM and h must be positive (got %v, %v)", c.OmegaM, c.H)
	}
	return nil
}

// Hubble returns H(a) in internal units.
func (c Cosmology) Hubble(a float64) float64 {
	omegaK := 1 - c.OmegaM - c.OmegaL
	return c.H0() * math.Sqrt(c.OmegaM/(a*a*a)+omegaK/(a*a)+c.OmegaL)
}

// Age returns the cosmic time since the big bang at scale factor a, in
// internal time units (Mpc/(km/s)): t(a) = ∫₀^a da'/(a'·H(a')).
func (c Cosmology) Age(a float64) float64 {
	if a <= 0 {
		return 0
	}
	// For the Einstein-de Sitter case the closed form avoids the
	// integrable singularity at a=0.
	if c.OmegaL == 0 && math.Abs(c.OmegaM-1) < 1e-12 {
		return 2.0 / 3.0 / c.H0() * math.Pow(a, 1.5)
	}
	// Numeric: substitute a' = a·u² to soften the a'→0 behaviour.
	const steps = 4096
	f := func(u float64) float64 {
		ap := a * u * u
		if ap == 0 {
			return 0
		}
		// da' = 2 a u du  =>  integrand = 2 a u / (a' H(a'))
		return 2 * a * u / (ap * c.Hubble(ap))
	}
	return simpson(f, 0, 1, steps)
}

// GrowthFactor returns the linear growth factor D(a), normalised to
// D(1) = 1:
//
//	D(a) ∝ H(a) ∫₀^a da' / (a'·H(a'))³
func (c Cosmology) GrowthFactor(a float64) float64 {
	return c.growthUnnormalized(a) / c.growthUnnormalized(1)
}

func (c Cosmology) growthUnnormalized(a float64) float64 {
	if a <= 0 {
		return 0
	}
	if c.OmegaL == 0 && math.Abs(c.OmegaM-1) < 1e-12 {
		return a // Einstein-de Sitter: D ∝ a
	}
	const steps = 4096
	f := func(u float64) float64 {
		ap := a * u * u
		if ap == 0 {
			return 0
		}
		h := c.Hubble(ap)
		return 2 * a * u / math.Pow(ap*h, 3)
	}
	return c.Hubble(a) * simpson(f, 0, 1, steps)
}

// GrowthRate returns f(a) = dlnD/dlna, the velocity growth rate
// (1 for Einstein-de Sitter).
func (c Cosmology) GrowthRate(a float64) float64 {
	if c.OmegaL == 0 && math.Abs(c.OmegaM-1) < 1e-12 {
		return 1
	}
	const dl = 1e-4
	lo := c.GrowthFactor(a * math.Exp(-dl))
	hi := c.GrowthFactor(a * math.Exp(dl))
	return (math.Log(hi) - math.Log(lo)) / (2 * dl)
}

// RhoMean returns the comoving mean matter density in internal units.
func (c Cosmology) RhoMean() float64 { return units.RhoMean(c.OmegaM, c.H) }

// simpson integrates f over [a, b] with n (even) panels.
func simpson(f func(float64) float64, a, b float64, n int) float64 {
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}
