package cosmo

import (
	"fmt"
	"math"

	"repro/internal/fft"
	"repro/internal/nbody"
	"repro/internal/rng"
	"repro/internal/vec"
)

// ICParams configure the Zel'dovich initial-condition generator.
type ICParams struct {
	// Power is the normalised z=0 power spectrum.
	Power *PowerSpectrum
	// GridN is the Fourier grid size per dimension (power of two).
	GridN int
	// LatticeN is the particle lattice size per dimension; 0 means
	// GridN. When it differs from GridN the displacement field is
	// sampled by periodic trilinear interpolation, the standard way IC
	// generators decouple particle count from Fourier resolution (the
	// paper's N = 2,159,038 corresponds to a 160³ lattice, not a power
	// of two).
	LatticeN int
	// BoxMpc is the comoving box side in Mpc. Particles are laid on the
	// grid, displaced, and those inside the sphere are kept.
	BoxMpc float64
	// RadiusMpc is the comoving selection radius (paper: 50).
	RadiusMpc float64
	// ZInit is the starting redshift (paper: 24).
	ZInit float64
	// Seed selects the realisation.
	Seed uint64
}

// Validate reports parameter errors.
func (p ICParams) Validate() error {
	switch {
	case p.Power == nil:
		return fmt.Errorf("cosmo: nil power spectrum")
	case !fft.IsPow2(p.GridN):
		return fmt.Errorf("cosmo: GridN %d is not a power of two", p.GridN)
	case p.LatticeN < 0:
		return fmt.Errorf("cosmo: LatticeN must be >= 0")
	case p.BoxMpc <= 0:
		return fmt.Errorf("cosmo: BoxMpc must be positive")
	case p.RadiusMpc <= 0 || 2*p.RadiusMpc > p.BoxMpc:
		return fmt.Errorf("cosmo: sphere of radius %v does not fit in box %v", p.RadiusMpc, p.BoxMpc)
	case p.ZInit < 0:
		return fmt.Errorf("cosmo: ZInit must be non-negative")
	}
	return nil
}

// Realization holds the generated initial conditions and their
// metadata.
type Realization struct {
	// System holds the particles in PHYSICAL coordinates at z=ZInit:
	// proper positions in Mpc and proper velocities (Hubble flow plus
	// peculiar) in km/s — the isolated-sphere setup the paper
	// integrates with plain Newtonian dynamics.
	System *nbody.System
	// AInit is the starting scale factor.
	AInit float64
	// ParticleMass is the per-particle mass in internal units.
	ParticleMass float64
	// GridSpacing is the comoving inter-particle spacing in Mpc.
	GridSpacing float64
	// RMSDisplacement is the comoving RMS Zel'dovich displacement in
	// Mpc at ZInit (diagnostic: should be well below GridSpacing for a
	// valid Zel'dovich start).
	RMSDisplacement float64
}

// GenerateSphere realises a Gaussian CDM density field on the grid,
// computes Zel'dovich displacements, lays particles on grid points,
// keeps those whose unperturbed (Lagrangian) position lies inside the
// sphere, and returns them in physical coordinates at z = ZInit.
func GenerateSphere(p ICParams) (*Realization, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.GridN
	l := p.BoxMpc
	vol := l * l * l
	cosmo := p.Power.Cosmo
	aInit := 1 / (1 + p.ZInit)

	// --- Fourier-space displacement field --------------------------------
	// delta_k with <|delta_k|^2> = V P(k); psi_k = i k/k² delta_k.
	// Grid convention: X[m] = (N³/V) * delta_k(m); see package fft for
	// the inverse-transform normalisation.
	psi := [3]*fft.Grid3{}
	for c := 0; c < 3; c++ {
		g, err := fft.NewGrid3(n)
		if err != nil {
			return nil, err
		}
		psi[c] = g
	}
	src := rng.New(p.Seed)
	n3 := float64(n) * float64(n) * float64(n)
	kf := 2 * math.Pi / l // fundamental mode
	for ix := 0; ix < n; ix++ {
		kx := float64(fft.FreqIndex(ix, n)) * kf
		for iy := 0; iy < n; iy++ {
			ky := float64(fft.FreqIndex(iy, n)) * kf
			for iz := 0; iz < n; iz++ {
				kz := float64(fft.FreqIndex(iz, n)) * kf
				k2 := kx*kx + ky*ky + kz*kz
				if k2 == 0 {
					continue
				}
				k := math.Sqrt(k2)
				// Draw the mode. Deterministic order: the (ix,iy,iz)
				// loop fixes the stream layout for a given seed.
				ga, gb := src.NormalPair()
				amp := n3 * math.Sqrt(p.Power.P(k)/(2*vol))
				deltaRe := amp * ga
				deltaIm := amp * gb
				// psi_k = i (k/k²) delta_k: multiply by i k_c / k².
				for c, kc := range [3]float64{kx, ky, kz} {
					f := kc / k2
					// i*(re + i*im)*f = (-im + i*re)*f
					psi[c].Set(ix, iy, iz, complex(-deltaIm*f, deltaRe*f))
				}
			}
		}
	}
	d := cosmo.GrowthFactor(aInit)
	for c := 0; c < 3; c++ {
		psi[c].EnforceHermitian()
		psi[c].Inverse()
	}

	// --- Particle selection and Zel'dovich mapping ------------------------
	latN := p.LatticeN
	if latN == 0 {
		latN = n
	}
	spacing := l / float64(latN)
	r2max := p.RadiusMpc * p.RadiusMpc
	center := l / 2
	mass := cosmo.RhoMean() * spacing * spacing * spacing
	h := cosmo.Hubble(aInit)
	f := cosmo.GrowthRate(aInit)
	gridSpacing := l / float64(n)

	var pos, vel []vec.V3
	var sumPsi2 float64
	var count int
	for ix := 0; ix < latN; ix++ {
		qx := (float64(ix) + 0.5) * spacing
		for iy := 0; iy < latN; iy++ {
			qy := (float64(iy) + 0.5) * spacing
			for iz := 0; iz < latN; iz++ {
				qz := (float64(iz) + 0.5) * spacing
				dx0, dy0, dz0 := qx-center, qy-center, qz-center
				if dx0*dx0+dy0*dy0+dz0*dz0 > r2max {
					continue
				}
				px := interp3(psi[0], qx/gridSpacing, qy/gridSpacing, qz/gridSpacing)
				py := interp3(psi[1], qx/gridSpacing, qy/gridSpacing, qz/gridSpacing)
				pz := interp3(psi[2], qx/gridSpacing, qy/gridSpacing, qz/gridSpacing)
				sumPsi2 += d * d * (px*px + py*py + pz*pz)
				count++
				// Comoving Zel'dovich position relative to the sphere
				// centre.
				cx := dx0 + d*px
				cy := dy0 + d*py
				cz := dz0 + d*pz
				// Physical position and velocity: r = a·x,
				// v = H·r + a·H·f·D·psi (peculiar).
				pp := vec.V3{X: aInit * cx, Y: aInit * cy, Z: aInit * cz}
				pecf := aInit * h * f * d
				vv := vec.V3{
					X: h*pp.X + pecf*px,
					Y: h*pp.Y + pecf*py,
					Z: h*pp.Z + pecf*pz,
				}
				pos = append(pos, pp)
				vel = append(vel, vv)
			}
		}
	}
	if count == 0 {
		return nil, fmt.Errorf("cosmo: no particles inside selection sphere")
	}

	sys := nbody.New(count)
	copy(sys.Pos, pos)
	copy(sys.Vel, vel)
	for i := range sys.Mass {
		sys.Mass[i] = mass
	}
	return &Realization{
		System:          sys,
		AInit:           aInit,
		ParticleMass:    mass,
		GridSpacing:     spacing,
		RMSDisplacement: math.Sqrt(sumPsi2 / float64(count)),
	}, nil
}

// interp3 samples the real part of grid g at fractional grid
// coordinates (x, y, z) by periodic trilinear interpolation. Grid node
// j holds the field value at coordinate j; the box is periodic with
// period g.N.
func interp3(g *fft.Grid3, x, y, z float64) float64 {
	n := g.N
	fx, fy, fz := math.Floor(x), math.Floor(y), math.Floor(z)
	tx, ty, tz := x-fx, y-fy, z-fz
	ix, iy, iz := wrap(int(fx), n), wrap(int(fy), n), wrap(int(fz), n)
	jx, jy, jz := (ix+1)%n, (iy+1)%n, (iz+1)%n

	c000 := real(g.At(ix, iy, iz))
	c100 := real(g.At(jx, iy, iz))
	c010 := real(g.At(ix, jy, iz))
	c110 := real(g.At(jx, jy, iz))
	c001 := real(g.At(ix, iy, jz))
	c101 := real(g.At(jx, iy, jz))
	c011 := real(g.At(ix, jy, jz))
	c111 := real(g.At(jx, jy, jz))

	c00 := c000*(1-tx) + c100*tx
	c10 := c010*(1-tx) + c110*tx
	c01 := c001*(1-tx) + c101*tx
	c11 := c011*(1-tx) + c111*tx
	c0 := c00*(1-ty) + c10*ty
	c1 := c01*(1-ty) + c11*ty
	return c0*(1-tz) + c1*tz
}

// wrap maps i into [0, n) with periodic boundary.
func wrap(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}
