package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Flow is the per-package dataflow fact store the concurrency and
// determinism analyzers share: a lightweight intra-package call graph
// with memoized derived facts (which functions block, which functions
// are goroutine bodies, which parameters flow into encoding/json, which
// functions police float finiteness).
//
// Facts are strictly per-package on purpose: grapelint runs both
// standalone (whole module) and under `go vet -vettool` (one package
// per invocation, dependencies visible only as export data), and the
// two drivers must report identical findings. Cross-package calls are
// therefore classified by import path and signature only, never by
// callee source.
type Flow struct {
	pkg *Package

	// Funcs lists every function body in the package: declarations and
	// function literals alike.
	Funcs []*FlowFunc
	// ByObj maps a declared function/method object to its body.
	ByObj map[*types.Func]*FlowFunc

	byNode  map[ast.Node]*FlowFunc
	parents map[*ast.File]map[ast.Node]ast.Node

	blocking map[*FlowFunc]*blockFact
	visiting map[*FlowFunc]bool

	spawned map[*FlowFunc]*ast.GoStmt

	guard     map[*FlowFunc]int // -1 unknown, 0 no, 1 yes
	jsonOnce  bool
	marshalT  map[*types.Named]bool
	unmarshal map[*types.Named]bool
}

// FlowFunc is one function body known to the Flow store.
type FlowFunc struct {
	// Node is the *ast.FuncDecl or *ast.FuncLit.
	Node ast.Node
	// Body is the function body (never nil for a stored FlowFunc).
	Body *ast.BlockStmt
	// Obj is the declared object; nil for function literals.
	Obj *types.Func
	// File is the file the body lives in.
	File *ast.File
	// Name is a display name ("Server.submit", "function literal").
	Name string
}

// blockFact caches whether a function blocks and why.
type blockFact struct {
	blocks bool
	reason string
}

// NewFlow builds the fact store for one type-checked package.
func NewFlow(pkg *Package) *Flow {
	f := &Flow{
		pkg:      pkg,
		ByObj:    map[*types.Func]*FlowFunc{},
		byNode:   map[ast.Node]*FlowFunc{},
		parents:  map[*ast.File]map[ast.Node]ast.Node{},
		blocking: map[*FlowFunc]*blockFact{},
		visiting: map[*FlowFunc]bool{},
		guard:    map[*FlowFunc]int{},
	}
	for _, file := range pkg.Files {
		file := file
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return true
				}
				ff := &FlowFunc{Node: n, Body: n.Body, File: file, Name: n.Name.Name}
				if obj, ok := pkg.Info.Defs[n.Name].(*types.Func); ok {
					ff.Obj = obj
					if p, typ, isMethod := recvNamed(obj); isMethod && p != "" {
						ff.Name = typ + "." + n.Name.Name
					}
				}
				f.Funcs = append(f.Funcs, ff)
				f.byNode[n] = ff
				if ff.Obj != nil {
					f.ByObj[ff.Obj] = ff
				}
			case *ast.FuncLit:
				ff := &FlowFunc{Node: n, Body: n.Body, File: file, Name: "function literal"}
				f.Funcs = append(f.Funcs, ff)
				f.byNode[n] = ff
			}
			return true
		})
	}
	return f
}

// Parents returns (building on first use) the node→parent map of file.
func (f *Flow) Parents(file *ast.File) map[ast.Node]ast.Node {
	p := f.parents[file]
	if p == nil {
		p = buildParents(file)
		f.parents[file] = p
	}
	return p
}

// FuncOf returns the FlowFunc for a FuncDecl/FuncLit node, or nil.
func (f *Flow) FuncOf(n ast.Node) *FlowFunc { return f.byNode[n] }

// Local resolves a called function object to its in-package body, or
// nil when the callee is external or unknown.
func (f *Flow) Local(callee *types.Func) *FlowFunc {
	if callee == nil {
		return nil
	}
	return f.ByObj[callee]
}

// blockingPkgs are the import paths whose calls count as blocking for
// lock-discipline purposes: network I/O and durable checkpoint writes.
// internal/fsx is deliberately absent — the job server persists job
// metadata under its scheduling lock by design (the persistence-order
// contract), and local metadata writes are bounded.
var blockingPkgs = map[string]string{
	"net":                 "network I/O",
	"repro/internal/ckpt": "checkpoint I/O",
}

// httpBlocking classifies net/http calls: only the genuinely
// I/O-bearing surface blocks — client round trips, server accept
// loops, response writes to a possibly-slow peer. Accessors like
// Request.PathValue or Header are pure and must not poison the
// transitive blocking facts.
func httpBlocking(fn *types.Func) bool {
	if _, typ, ok := recvNamed(fn); ok {
		switch typ {
		case "Client", "Transport", "Server":
			return true
		case "ResponseWriter":
			return fn.Name() == "Write"
		case "Flusher":
			return fn.Name() == "Flush"
		case "RoundTripper":
			return fn.Name() == "RoundTrip"
		case "Hijacker":
			return fn.Name() == "Hijack"
		}
		return false
	}
	switch fn.Name() {
	case "Get", "Head", "Post", "PostForm", "ListenAndServe", "ListenAndServeTLS", "Serve", "ServeTLS":
		return true
	}
	return false
}

// CallBlocking classifies one call expression: it returns a
// human-readable reason when the call can block (channel waits are
// handled separately by BlockingAtom), or "" when it cannot or the
// callee is unknown. In-package callees are classified transitively
// from their own bodies.
func (f *Flow) CallBlocking(call *ast.CallExpr) string {
	fn := calleeFunc(f.pkg.Info, call)
	if fn == nil {
		return ""
	}
	if pkg, typ, ok := recvNamed(fn); ok && pkg == "sync" {
		if typ == "WaitGroup" && fn.Name() == "Wait" {
			return "sync.WaitGroup.Wait"
		}
		// sync.Cond.Wait releases the associated lock while parked: the
		// dispatcher's next() idiom is sound and exempt.
		return ""
	}
	path := funcPkgPath(fn)
	if path == "time" && fn.Name() == "Sleep" {
		return "time.Sleep"
	}
	if path == "net/http" {
		if httpBlocking(fn) {
			return "HTTP I/O (" + callName(fn) + ")"
		}
		return ""
	}
	if why, ok := blockingPkgs[path]; ok {
		return why + " (" + callName(fn) + ")"
	}
	if local := f.Local(fn); local != nil {
		if why, blocks := f.Blocking(local); blocks {
			return "call to " + local.Name + ", which blocks on " + why
		}
	}
	return ""
}

// callName renders a called function for diagnostics.
func callName(fn *types.Func) string {
	if _, typ, ok := recvNamed(fn); ok {
		return typ + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// Blocking reports whether fn contains a blocking operation on some
// path, with a reason. The scan covers fn's own body (nested function
// literals run on their own schedule and are excluded) and follows
// in-package calls transitively; recursion cycles resolve to
// non-blocking.
func (f *Flow) Blocking(fn *FlowFunc) (string, bool) {
	if fact := f.blocking[fn]; fact != nil {
		return fact.reason, fact.blocks
	}
	if f.visiting[fn] {
		return "", false
	}
	f.visiting[fn] = true
	defer delete(f.visiting, fn)

	parents := f.Parents(fn.File)
	reason := ""
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok && lit != fn.Node {
			return false
		}
		if why, ok := f.BlockingAtom(n, parents); ok {
			reason = why
			return false
		}
		return true
	})
	f.blocking[fn] = &blockFact{blocks: reason != "", reason: reason}
	return reason, reason != ""
}

// BlockingAtom classifies a single node as a blocking operation:
// channel send/receive outside a select-with-default, a select without
// a default, a range over a channel, or a blocking call (CallBlocking).
func (f *Flow) BlockingAtom(n ast.Node, parents map[ast.Node]ast.Node) (string, bool) {
	switch n := n.(type) {
	case *ast.SendStmt:
		if inSelectComm(parents, n) {
			return "", false
		}
		return "channel send", true
	case *ast.UnaryExpr:
		if n.Op != token.ARROW {
			return "", false
		}
		if inSelectComm(parents, n) {
			return "", false
		}
		return "channel receive", true
	case *ast.SelectStmt:
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				return "", false // has default: non-blocking poll
			}
		}
		return "select without default", true
	case *ast.RangeStmt:
		if t := f.pkg.Info.TypeOf(n.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				return "range over channel", true
			}
		}
	case *ast.CallExpr:
		if g, ok := parents[n].(*ast.GoStmt); ok && g.Call == n {
			return "", false // a spawn hands the call to another goroutine
		}
		if why := f.CallBlocking(n); why != "" {
			return why, true
		}
	}
	return "", false
}

// inSelectComm reports whether n is (part of) the communication clause
// of an enclosing select statement — those waits are governed by the
// select itself, which BlockingAtom classifies separately.
func inSelectComm(parents map[ast.Node]ast.Node, n ast.Node) bool {
	for p := parents[n]; p != nil; p = parents[p] {
		switch p := p.(type) {
		case *ast.CommClause:
			return p.Comm != nil && p.Comm.Pos() <= n.Pos() && n.End() <= p.Comm.End()
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		}
	}
	return false
}

// GoSpawned maps each function body launched by a go statement in this
// package (a literal `go func(){…}()` or a named in-package callee
// `go s.run(…)`) to the spawning statement.
func (f *Flow) GoSpawned() map[*FlowFunc]*ast.GoStmt {
	if f.spawned != nil {
		return f.spawned
	}
	f.spawned = map[*FlowFunc]*ast.GoStmt{}
	for _, file := range f.pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var target *FlowFunc
			switch fun := ast.Unparen(g.Call.Fun).(type) {
			case *ast.FuncLit:
				target = f.byNode[fun]
			default:
				target = f.Local(calleeFunc(f.pkg.Info, g.Call))
			}
			if target != nil && f.spawned[target] == nil {
				f.spawned[target] = g
			}
			return true
		})
	}
	return f.spawned
}

// FloatGuard reports whether fn's own body calls math.IsNaN or
// math.IsInf — the function participates in finiteness policing.
func (f *Flow) FloatGuard(fn *FlowFunc) bool {
	if v, ok := f.guard[fn]; ok {
		return v == 1
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if g := calleeFunc(f.pkg.Info, call); g != nil && funcPkgPath(g) == "math" &&
			(g.Name() == "IsNaN" || g.Name() == "IsInf") {
			found = true
		}
		return true
	})
	if found {
		f.guard[fn] = 1
	} else {
		f.guard[fn] = 0
	}
	return found
}

// GuardedType reports whether the named type has any in-package method
// that polices float finiteness (FloatGuard). A type that filters
// NaN/Inf at its write boundary yields finite reads, so its accessors
// are admissible float sources for wireschema.
func (f *Flow) GuardedType(named *types.Named) bool {
	for _, ff := range f.Funcs {
		if ff.Obj == nil {
			continue
		}
		sig, _ := ff.Obj.Type().(*types.Signature)
		if sig == nil || sig.Recv() == nil {
			continue
		}
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok && n.Obj() == named.Obj() && f.FloatGuard(ff) {
			return true
		}
	}
	return false
}

// JSONTypes returns the named struct types of this package that flow
// into encoding/json marshaling and unmarshaling, respectively. The
// computation is a small fixpoint so values reaching json through
// in-package helpers (`writeJSON(w, code, v)`) are attributed to the
// concrete types at the helper's call sites.
func (f *Flow) JSONTypes() (marshal, unmarshal map[*types.Named]bool) {
	if f.jsonOnce {
		return f.marshalT, f.unmarshal
	}
	f.jsonOnce = true
	f.marshalT = map[*types.Named]bool{}
	f.unmarshal = map[*types.Named]bool{}

	// Parameter objects of declared functions, for attributing helper
	// flows back to call sites.
	type paramSlot struct {
		owner *types.Func
		index int
	}
	params := map[types.Object]paramSlot{}
	for _, ff := range f.Funcs {
		if ff.Obj == nil {
			continue
		}
		sig := ff.Obj.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len(); i++ {
			params[sig.Params().At(i)] = paramSlot{owner: ff.Obj, index: i}
		}
	}
	encParams := map[*types.Func]map[int]bool{}
	decParams := map[*types.Func]map[int]bool{}

	// sinkArgs returns the (kind, index) sinks of one call: which
	// arguments flow into a marshal (enc) or unmarshal (dec) operation.
	sinkArgs := func(call *ast.CallExpr) (enc, dec []int) {
		fn := calleeFunc(f.pkg.Info, call)
		if fn == nil {
			return nil, nil
		}
		if pkg, typ, ok := recvNamed(fn); ok && pkg == "encoding/json" {
			switch {
			case typ == "Encoder" && fn.Name() == "Encode":
				return []int{0}, nil
			case typ == "Decoder" && fn.Name() == "Decode":
				return nil, []int{0}
			}
			return nil, nil
		}
		switch funcPkgPath(fn) {
		case "encoding/json":
			switch fn.Name() {
			case "Marshal", "MarshalIndent":
				return []int{0}, nil
			case "Unmarshal":
				return nil, []int{1}
			}
			return nil, nil
		}
		for _, i := range sortedIndices(encParams[fn]) {
			enc = append(enc, i)
		}
		for _, i := range sortedIndices(decParams[fn]) {
			dec = append(dec, i)
		}
		return enc, dec
	}

	record := func(arg ast.Expr, set map[*types.Named]bool, pset map[*types.Func]map[int]bool) bool {
		e := ast.Unparen(arg)
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = ast.Unparen(u.X)
		}
		if id, ok := e.(*ast.Ident); ok {
			if slot, ok := params[f.pkg.Info.ObjectOf(id)]; ok {
				if pset[slot.owner] == nil {
					pset[slot.owner] = map[int]bool{}
				}
				if !pset[slot.owner][slot.index] {
					pset[slot.owner][slot.index] = true
					return true
				}
				return false
			}
		}
		named := namedOf(f.pkg.Info.TypeOf(e))
		if named != nil && named.Obj().Pkg() == f.pkg.Types && !set[named] {
			set[named] = true
			return true
		}
		return false
	}

	for rounds := 0; rounds < 10; rounds++ {
		changed := false
		for _, file := range f.pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				enc, dec := sinkArgs(call)
				for _, i := range enc {
					if i < len(call.Args) && record(call.Args[i], f.marshalT, encParams) {
						changed = true
					}
				}
				for _, i := range dec {
					if i < len(call.Args) && record(call.Args[i], f.unmarshal, decParams) {
						changed = true
					}
				}
				return true
			})
		}
		if !changed {
			break
		}
	}
	return f.marshalT, f.unmarshal
}

// namedOf strips pointers, slices and arrays and returns the named
// type underneath, or nil.
func namedOf(t types.Type) *types.Named {
	for t != nil {
		switch u := t.(type) {
		case *types.Named:
			return u
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		default:
			return nil
		}
	}
	return nil
}

// sortedIndices returns the keys of a small index set in order.
func sortedIndices(m map[int]bool) []int {
	var out []int
	for i := 0; i < 32; i++ {
		if m[i] {
			out = append(out, i)
		}
	}
	return out
}
