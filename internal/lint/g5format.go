package lint

import (
	"go/ast"
	"path/filepath"
)

// AnalyzerG5Format keeps reduced-precision arithmetic in one place:
// internal/g5/format.go owns the mantissa-rounding and fixed-point
// quantisation that model the GRAPE-5 chip's number formats, and the
// conformance suite pins their bit patterns. Ad-hoc float bit
// manipulation anywhere else in the physics packages would fork that
// model silently, so the analyzer flags math.Float64bits /
// math.Float64frombits outside format.go (fault.go's seeded bit-flip
// injector is the one other sanctioned site), plus RoundMantissa /
// Quantize calls whose result is dropped — quantisation with a
// discarded result means the caller kept the full-precision value.
var AnalyzerG5Format = &Analyzer{
	Name: "g5format",
	Doc:  "restrict float bit manipulation to internal/g5/format.go and catch discarded quantisations",
	Run:  runG5Format,
}

// formatFiles are the files allowed to take floats apart bit by bit.
var formatFiles = map[string]bool{"format.go": true, "fault.go": true}

func runG5Format(pass *Pass) error {
	if !physicsPackages[pass.Pkg.Path()] {
		return nil
	}
	inG5 := pass.Pkg.Path() == g5Path
	for _, file := range pass.Files {
		base := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		allowBits := inG5 && formatFiles[base]
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				f := calleeFunc(pass.Info, n)
				if f == nil {
					return true
				}
				if !allowBits && funcPkgPath(f) == "math" &&
					(f.Name() == "Float64bits" || f.Name() == "Float64frombits") {
					pass.Reportf(n.Pos(), "math.%s outside internal/g5/format.go: reduced-precision bit manipulation must go through the format helpers (RoundMantissa, FixedGrid) so the conformance suite pins one model", f.Name())
				}
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := calleeFunc(pass.Info, call)
				if f == nil {
					return true
				}
				if f.Name() == "RoundMantissa" && funcPkgPath(f) == g5Path {
					pass.Reportf(n.Pos(), "RoundMantissa result discarded: the value keeps full precision, bypassing the pipeline's number format")
				}
				if f.Name() == "Quantize" {
					if pkg, typ, ok := recvNamed(f); ok && pkg == g5Path && typ == "FixedGrid" {
						pass.Reportf(n.Pos(), "Quantize result discarded: the value keeps full precision, bypassing the fixed-point position format")
					}
				}
			}
			return true
		})
	}
	return nil
}
