package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerFPReduce closes the gap the nondeterminism analyzer covers
// only syntactically: floating-point addition is not associative, so a
// float accumulation whose order depends on goroutine scheduling or map
// iteration silently breaks the bitwise-determinism contract (PR 3/5/8)
// without failing any single-run test. Flagged in the physics packages
// plus serve and obs:
//
//   - a float += / -= / x = x + y on a variable captured from outside a
//     go-launched function literal (the accumulation order is the
//     scheduler's choice; indexed per-worker slots are the sanctioned
//     idiom and are not flagged);
//   - a float accumulation inside a `range` over a map (iteration order
//     is randomized);
//   - a float accumulation into a package-level variable (shared across
//     every caller).
//
// Reductions must instead flow through the sanctioned deterministic
// merge helpers — the octree plan/build/stitch pipeline, the g5
// telemetry Add methods, obs.Observer/PhaseSeconds accumulation and the
// hostk.MACSink kernels — which merge per-worker partials in a fixed
// order (or CAS with order-insensitive semantics).
var AnalyzerFPReduce = &Analyzer{
	Name: "fpreduce",
	Doc:  "flag order-dependent floating-point accumulation outside the sanctioned deterministic merge helpers",
	Run:  runFPReduce,
}

// fpreduceSanctioned lists the deterministic merge helpers per package:
// "Type.Method", plain "Func", or "Type.*" for every method of a type.
var fpreduceSanctioned = map[string]map[string]bool{
	octreePath: {
		"Builder.plan": true, "Builder.buildParallel": true,
		"Builder.emitSpine": true, "Builder.emitTask": true,
		"Builder.taskWorker": true, "Builder.pickSplitLevel": true,
	},
	g5Path: {
		"Counters.Add": true, "Recovery.Add": true, "FaultStats.Add": true,
		"Cluster.mergeObs": true,
	},
	obsPath: {
		"Observer.AddSeconds": true, "PhaseSeconds.Add": true,
	},
	hostkPath: {
		"MACSink.*": true, "JList.*": true,
	},
	// The block scheduler's rung assignment accumulates dt telemetry
	// into per-worker rungPartial slots through pointers captured by its
	// go-launched literals — ownership the analyzer cannot see — and
	// folds the partials in worker order (DESIGN.md §16).
	integratePath: {
		"BlockLeapfrog.assignRungs": true,
	},
}

func fpreduceScoped(path string) bool {
	return physicsPackages[path] || path == servePath || path == obsPath
}

func runFPReduce(pass *Pass) error {
	if !fpreduceScoped(pass.Pkg.Path()) {
		return nil
	}
	sanctioned := fpreduceSanctioned[pass.Pkg.Path()]
	for _, file := range pass.Files {
		parents := pass.Parents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			lhs, isAccum := floatAccumulation(pass, assign)
			if !isAccum || inSanctionedFunc(pass, parents, assign, sanctioned) {
				return true
			}
			// An indexed target (partial[w] += x, out[key] += v) is the
			// sanctioned per-slot idiom: each slot has one writer or one
			// key, so ordering cannot leak into the sum.
			_, isIndexed := ast.Unparen(lhs).(*ast.IndexExpr)
			if base := baseIdent(lhs); base != nil {
				obj := pass.Info.ObjectOf(base)
				if obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() && !isIndexed {
					pass.Reportf(assign.Pos(), "float accumulation into package-level %s: shared mutable order-dependent state; merge through a sanctioned deterministic helper", base.Name)
					return true
				}
				if lit := enclosingGoLit(pass, parents, assign); lit != nil && obj != nil && !within(obj.Pos(), lit) && !isIndexed {
					pass.Reportf(assign.Pos(), "float accumulation into %s, captured by a go-launched literal: summation order leaks goroutine scheduling into the result; accumulate per-worker partials and merge deterministically", base.Name)
					return true
				}
			}
			if !isIndexed && rangeOverMap(pass, parents, assign) {
				pass.Reportf(assign.Pos(), "float accumulation inside a range over a map: iteration order is randomized, so the sum is run-dependent; iterate a sorted key slice or merge through a sanctioned helper")
			}
			return true
		})
	}
	return nil
}

// floatAccumulation recognizes `x += e`, `x -= e` and `x = x ± e` /
// `x = e + x` with float-typed x, returning the target expression.
func floatAccumulation(pass *Pass, assign *ast.AssignStmt) (ast.Expr, bool) {
	if len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return nil, false
	}
	lhs := assign.Lhs[0]
	if !isFloatExpr(pass, lhs) {
		return nil, false
	}
	switch assign.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		return lhs, true
	case token.ASSIGN:
		bin, ok := ast.Unparen(assign.Rhs[0]).(*ast.BinaryExpr)
		if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
			return nil, false
		}
		lstr := types.ExprString(lhs)
		if types.ExprString(bin.X) == lstr || (bin.Op == token.ADD && types.ExprString(bin.Y) == lstr) {
			return lhs, true
		}
	}
	return nil, false
}

// isFloatExpr reports whether e has float32/float64 underlying type.
func isFloatExpr(pass *Pass, e ast.Expr) bool {
	t := pass.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// baseIdent returns the leftmost identifier of an lvalue chain
// (x, x.f, x.f.g, x[i]), or nil.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// enclosingGoLit returns the innermost enclosing function literal that
// is launched directly by a go statement, or nil.
func enclosingGoLit(pass *Pass, parents map[ast.Node]ast.Node, n ast.Node) *ast.FuncLit {
	for p := parents[n]; p != nil; p = parents[p] {
		switch p := p.(type) {
		case *ast.FuncDecl:
			return nil
		case *ast.FuncLit:
			if call, ok := parents[p].(*ast.CallExpr); ok {
				if _, ok := parents[call].(*ast.GoStmt); ok && ast.Unparen(call.Fun) == ast.Node(p) {
					return p
				}
			}
			// A nested (non-go) literal: keep climbing — a capture
			// inside it still executes on the goroutine if an enclosing
			// literal was go-launched.
		}
	}
	return nil
}

// within reports whether pos lies inside the literal's extent.
func within(pos token.Pos, lit *ast.FuncLit) bool {
	return lit.Pos() <= pos && pos <= lit.End()
}

// rangeOverMap reports whether n is inside the body of a range over a
// map within the same function.
func rangeOverMap(pass *Pass, parents map[ast.Node]ast.Node, n ast.Node) bool {
	for p := parents[n]; p != nil; p = parents[p] {
		switch p := p.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(p.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					return true
				}
			}
		}
	}
	return false
}

// inSanctionedFunc reports whether n's enclosing named function is on
// the package's sanctioned-helper list.
func inSanctionedFunc(pass *Pass, parents map[ast.Node]ast.Node, n ast.Node, sanctioned map[string]bool) bool {
	if len(sanctioned) == 0 {
		return false
	}
	fn := enclosingFunc(parents, n)
	decl, ok := fn.(*ast.FuncDecl)
	if !ok {
		// Literals inherit their declaring function's sanction.
		for p := parents[fn]; p != nil; p = parents[p] {
			if d, ok := p.(*ast.FuncDecl); ok {
				decl = d
				break
			}
		}
		if decl == nil {
			return false
		}
	}
	name := decl.Name.Name
	if obj, ok := pass.Info.Defs[decl.Name].(*types.Func); ok {
		if _, typ, isMethod := recvNamed(obj); isMethod {
			if sanctioned[typ+".*"] || sanctioned[typ+"."+name] {
				return true
			}
			name = typ + "." + name
		}
	}
	return sanctioned[name] || sanctioned[strings.TrimPrefix(name, "*")]
}
