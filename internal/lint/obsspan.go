package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerObsSpan keeps the §3 time-balance telemetry honest: an
// obs.Observer.Start span that is dropped, never stopped, or stopped
// past an early return under-reports its phase, and the bench
// harness's measured-vs-model agreement check would chase a phantom
// imbalance. The analyzer requires every span to end on all return
// paths:
//
//   - `defer o.Start(p).Stop()` and `t := o.Start(p); defer t.Stop()`
//     always pass;
//   - a non-deferred t.Stop() passes only when no return statement sits
//     between Start and Stop (straight-line spans over a partial
//     region, the guard's retry idiom);
//   - a discarded Start result or a timer without any Stop is flagged.
var AnalyzerObsSpan = &Analyzer{
	Name: "obsspan",
	Doc:  "require obs phase spans to be stopped on every return path (defer idiom)",
	Run:  runObsSpan,
}

const obsPath = "repro/internal/obs"

func runObsSpan(pass *Pass) error {
	for _, file := range pass.Files {
		parents := pass.Parents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkSpans(pass, parents, fn)
			return false
		})
	}
	return nil
}

// isObsStart reports whether call is obs.Observer.Start.
func isObsStart(pass *Pass, call *ast.CallExpr) bool {
	f := calleeFunc(pass.Info, call)
	if f == nil || f.Name() != "Start" {
		return false
	}
	pkg, typ, ok := recvNamed(f)
	return ok && pkg == obsPath && typ == "Observer"
}

// isTimerStop reports whether call is obs.Timer.Stop and returns its
// receiver expression.
func isTimerStop(pass *Pass, call *ast.CallExpr) (ast.Expr, bool) {
	f := calleeFunc(pass.Info, call)
	if f == nil || f.Name() != "Stop" {
		return nil, false
	}
	if pkg, typ, ok := recvNamed(f); !ok || pkg != obsPath || typ != "Timer" {
		return nil, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	return sel.X, true
}

// checkSpans verifies every Start inside fn (closures included).
func checkSpans(pass *Pass, parents map[ast.Node]ast.Node, fn *ast.FuncDecl) {
	// First index all Stop calls by the timer object they stop.
	type stopSite struct {
		pos      token.Pos
		deferred bool
	}
	stops := map[types.Object][]stopSite{}
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, ok := isTimerStop(pass, call)
		if !ok {
			return true
		}
		if id, isIdent := ast.Unparen(recv).(*ast.Ident); isIdent {
			if obj := pass.Info.ObjectOf(id); obj != nil {
				stops[obj] = append(stops[obj], stopSite{pos: call.Pos(), deferred: isDeferred(parents, call)})
			}
		}
		return true
	})

	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isObsStart(pass, call) {
			return true
		}
		switch p := parents[call].(type) {
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "obs span started and dropped: the phase never accumulates; use `defer o.Start(p).Stop()`")
			return true
		case *ast.SelectorExpr:
			// o.Start(p).Stop() — fine when deferred, pointless inline.
			if stop := stopOf(parents, p); stop != nil {
				if _, isStop := isTimerStop(pass, stop); isStop {
					if !isDeferred(parents, call) {
						pass.Reportf(call.Pos(), "obs span stopped immediately: the phase measures nothing; defer the Stop")
					}
					return true
				}
			}
		case *ast.AssignStmt:
			id := timerTarget(p, call)
			if id == nil {
				return true
			}
			obj := pass.Info.ObjectOf(id)
			if obj == nil {
				return true
			}
			sites := stops[obj]
			if len(sites) == 0 {
				pass.Reportf(call.Pos(), "obs span %s is never stopped: the phase never accumulates; add `defer %s.Stop()`", id.Name, id.Name)
				return true
			}
			for _, s := range sites {
				if s.deferred {
					return true
				}
			}
			// Non-deferred stops only: every return between Start and
			// the last Stop leaks the span.
			last := sites[len(sites)-1].pos
			if ret := returnBetween(parents, fn, call, last); ret.IsValid() {
				pass.Reportf(call.Pos(), "obs span %s leaks on the return at %s before its Stop; use `defer %s.Stop()`", id.Name, pass.Fset.Position(ret), id.Name)
			}
		}
		return true
	})
}

// stopOf returns the call expression a selector participates in
// (x.Sel(...)), or nil.
func stopOf(parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) *ast.CallExpr {
	call, _ := parents[sel].(*ast.CallExpr)
	if call == nil || ast.Unparen(call.Fun) != ast.Node(sel) {
		return nil
	}
	return call
}

// timerTarget returns the identifier the Start result is assigned to.
func timerTarget(assign *ast.AssignStmt, call *ast.CallExpr) *ast.Ident {
	for i, rhs := range assign.Rhs {
		if ast.Unparen(rhs) == ast.Node(call) && i < len(assign.Lhs) {
			id, _ := ast.Unparen(assign.Lhs[i]).(*ast.Ident)
			return id
		}
	}
	return nil
}

// returnBetween finds a return statement positioned between the Start
// call and hi that belongs to the same function literal/declaration as
// the span — returns of unrelated nested closures defined in the
// window do not leak the span.
func returnBetween(parents map[ast.Node]ast.Node, fn *ast.FuncDecl, start *ast.CallExpr, hi token.Pos) token.Pos {
	startFn := enclosingFunc(parents, start)
	found := token.NoPos
	ast.Inspect(fn, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() <= start.Pos() || ret.Pos() >= hi || found.IsValid() {
			return true
		}
		if enclosingFunc(parents, ret) == startFn {
			found = ret.Pos()
		}
		return true
	})
	return found
}
