package lint_test

import (
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/lint"
)

// moduleRoot is the repository root relative to this package.
const moduleRoot = "../.."

// TestRepoIsLintClean runs the full analyzer suite over the module
// in-process and requires zero findings AND zero stale suppressions:
// every invariant the analyzers encode holds on the tree that defines
// them, and every //lint:ignore in the tree still earns its keep.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	loader := lint.NewLoader(moduleRoot)
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, unused, err := lint.RunDetail(pkgs, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s: %s", loader.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	for _, u := range unused {
		t.Errorf("%s: stale //lint:ignore %s suppresses nothing; delete it",
			loader.Fset.Position(u.Pos), u.Analyzers)
	}
}

// TestGrapelintCommand exercises the standalone entry point end to end:
// `grapelint ./...` must exit 0 on the repository.
func TestGrapelintCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs cmd/grapelint; skipped in -short")
	}
	cmd := exec.Command("go", "run", "./cmd/grapelint", "./...")
	cmd.Dir = moduleRoot
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("grapelint ./... failed: %v\n%s", err, out)
	}
}

// TestVetToolProtocol drives grapelint through the go command's
// -vettool protocol (version probe, per-package .cfg invocation, facts
// file) against one real package.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds cmd/grapelint and runs go vet; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "grapelint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/grapelint")
	build.Dir = moduleRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building grapelint: %v\n%s", err, out)
	}
	abs, err := filepath.Abs(bin)
	if err != nil {
		t.Fatal(err)
	}
	vet := exec.Command("go", "vet", "-vettool="+abs, "./internal/g5")
	vet.Dir = moduleRoot
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed: %v\n%s", err, out)
	}
}
