package lint

import (
	"go/ast"
	"go/token"
)

// AnalyzerHostK keeps the hot host-side inner loops in one place: the
// batched SoA kernels of internal/hostk. Scalar force kernels and
// per-node MAC chains scattered through the physics packages are how
// the pre-SoA hot paths drifted apart (three hand-rolled copies of the
// same inverse-sqrt loop, each with its own self-interaction guard);
// the kernels package exists so there is exactly one implementation,
// one conformance suite and one benchmark per kernel.
//
// Two shapes are flagged inside physicsPackages (outside hostk itself):
//
//  1. `1 / math.Sqrt(...)` — the inverse-square-root of a softened
//     force kernel. Force evaluation belongs in hostk.P2P (or behind a
//     core.Engine that calls it).
//
//  2. Calls to octree.OpenCriterion.Accept — the per-node scalar MAC.
//     The grouped walk batches candidate cells through hostk.MACSink;
//     internal/octree itself is exempt (it defines the criterion).
//
// Sanctioned scalar references (the §3 counterfactual walk, direct
// summation, the PM far-field kernel, the retired-loop conformance
// references) carry `//lint:ignore hostk <reason>` suppressions.
var AnalyzerHostK = &Analyzer{
	Name: "hostk",
	Doc:  "flag scalar force / MAC inner loops in physics packages outside internal/hostk (use the batched SoA kernels)",
	Run:  runHostK,
}

func runHostK(pass *Pass) error {
	path := pass.Pkg.Path()
	if !physicsPackages[path] || path == hostkPath {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkInvSqrt(pass, n)
			case *ast.CallExpr:
				if path != octreePath {
					checkScalarMAC(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// checkInvSqrt flags `1 / math.Sqrt(...)` — the signature operation of
// a hand-rolled softened force kernel.
func checkInvSqrt(pass *Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.QUO {
		return
	}
	lit, ok := ast.Unparen(bin.X).(*ast.BasicLit)
	if !ok || lit.Value != "1" {
		return
	}
	call, ok := ast.Unparen(bin.Y).(*ast.CallExpr)
	if !ok {
		return
	}
	f := calleeFunc(pass.Info, call)
	if f == nil || f.Name() != "Sqrt" || funcPkgPath(f) != "math" {
		return
	}
	pass.Reportf(bin.Pos(), "scalar inverse-sqrt force kernel outside internal/hostk: route force evaluation through hostk.P2P (one kernel, one conformance suite)")
}

// checkScalarMAC flags per-node octree.OpenCriterion.Accept calls.
func checkScalarMAC(pass *Pass, call *ast.CallExpr) {
	f := calleeFunc(pass.Info, call)
	if f == nil || f.Name() != "Accept" {
		return
	}
	if pkg, typ, ok := recvNamed(f); ok && pkg == octreePath && typ == "OpenCriterion" {
		pass.Reportf(call.Pos(), "per-node OpenCriterion.Accept outside internal/hostk: batch candidate cells through hostk.MACSink in hot walks")
	}
}
