package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file implements the hotalloc analyzer's ground-truth
// cross-check: `grapelint -escapes` asks the compiler itself
// (`go build -a -gcflags=-m`) which values in the hot packages escape
// to the heap, and compares the inventory against a committed baseline
// (internal/lint/escape_baseline.txt). The hotalloc analyzer flags
// allocation *shapes* syntactically; the escape inventory pins the
// compiler's verdict, so a new escape cannot slip in behind a
// //lint:ignore, and a fixed escape must be harvested into the
// baseline (-write) to keep it honest.
//
// Lines are normalized to (package, file, message) — positions are
// stripped so unrelated edits that shift line numbers do not churn the
// baseline, while a genuinely new escape (new message or higher count)
// fails the comparison.

// hotEscapePatterns are the package patterns the escape inventory
// covers — the same hot set hotalloc analyzes.
var hotEscapePatterns = []string{
	"./internal/hostk", "./internal/octree", "./internal/core",
}

// HotEscapePatterns returns the package patterns `grapelint -escapes`
// inventories by default.
func HotEscapePatterns() []string { return append([]string(nil), hotEscapePatterns...) }

// escapeLineRe matches one -m diagnostic: "file.go:12:3: message".
var escapeLineRe = regexp.MustCompile(`^([^\s:]+\.go):\d+:\d+: (.+)$`)

// EscapeInventory builds the compiler's escape inventory for the given
// package patterns: a map from "pkg\tfile\tmessage" to occurrence
// count. It runs `go build -a -gcflags=-m` (-a defeats the build
// cache, which would otherwise swallow the diagnostics on a warm
// tree; -m diagnostics are only emitted for packages named on the
// command line).
func EscapeInventory(moduleDir string, patterns []string) (map[string]int, error) {
	args := append([]string{"build", "-a", "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	cmd.Stdout = io.Discard
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	counts := map[string]int{}
	pkg := ""
	sc := bufio.NewScanner(&stderr)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "# ") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "# "))
			continue
		}
		m := escapeLineRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[2]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		counts[pkg+"\t"+filepath.Base(m[1])+"\t"+msg]++
	}
	return counts, nil
}

// FormatEscapes renders an inventory in the baseline file format:
// "count<TAB>pkg<TAB>file<TAB>message", sorted, one per line.
func FormatEscapes(counts map[string]int) string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# escape-analysis baseline for the hot packages (grapelint -escapes -write)\n")
	b.WriteString("# count\tpackage\tfile\tmessage — positions stripped, counts matter\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "%d\t%s\n", counts[k], k)
	}
	return b.String()
}

// ParseEscapeBaseline parses the baseline file format back into an
// inventory map.
func ParseEscapeBaseline(data []byte) (map[string]int, error) {
	counts := map[string]int{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		countStr, key, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, fmt.Errorf("baseline line %d: no tab separator", lineNo)
		}
		n, err := strconv.Atoi(countStr)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("baseline line %d: bad count %q", lineNo, countStr)
		}
		counts[key] += n
	}
	return counts, nil
}

// DiffEscapes compares a fresh inventory against the baseline and
// returns human-readable discrepancies: regressions (new or more
// frequent escapes) and stale entries (fixed escapes still listed —
// the baseline must be rewritten so it keeps meaning something).
func DiffEscapes(current, baseline map[string]int) []string {
	var diffs []string
	keys := map[string]bool{}
	for k := range current {
		keys[k] = true
	}
	for k := range baseline {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		cur, base := current[k], baseline[k]
		disp := strings.ReplaceAll(k, "\t", " ")
		switch {
		case cur > base:
			diffs = append(diffs, fmt.Sprintf("new escape: %s (%d, baseline %d)", disp, cur, base))
		case cur < base:
			diffs = append(diffs, fmt.Sprintf("stale baseline entry: %s (%d, baseline %d) — rerun with -write", disp, cur, base))
		}
	}
	return diffs
}
