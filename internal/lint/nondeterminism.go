package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerNondeterminism protects the bit-reproducibility the §2
// accuracy and §3 time-balance results rest on: inside the physics
// packages it flags the classic sources of run-to-run divergence —
// wall-clock values flowing into anything but duration measurement,
// the process-global math/rand generator, iteration over maps, and
// goroutines appending to shared slices (collection order is
// scheduler-dependent).
//
// time.Now is allowed when the value is used only to measure elapsed
// time (time.Since or Time.Sub): wall-clock *measurement* cannot
// perturb simulation state, while a timestamp seeding an RNG or
// ordering results can.
var AnalyzerNondeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc:  "flag nondeterminism sources (time.Now, global math/rand, map iteration, unordered goroutine collection) in physics packages",
	Run:  runNondeterminism,
}

func runNondeterminism(pass *Pass) error {
	if !physicsPackages[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		parents := pass.Parents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkTimeNow(pass, parents, n)
			case *ast.SelectorExpr:
				checkGlobalRand(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			case *ast.GoStmt:
				checkGoroutineCollection(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkTimeNow flags time.Now calls whose result escapes pure duration
// measurement.
func checkTimeNow(pass *Pass, parents map[ast.Node]ast.Node, call *ast.CallExpr) {
	f := calleeFunc(pass.Info, call)
	if f == nil || f.Name() != "Now" || funcPkgPath(f) != "time" {
		return
	}
	// The only allowed shape: `t := time.Now()` (single assignment)
	// where every later use of t is time.Since(t) or a Time.Sub
	// operand.
	assign, ok := parents[call].(*ast.AssignStmt)
	if ok && len(assign.Lhs) == 1 && len(assign.Rhs) == 1 && assign.Rhs[0] == call {
		if id, isIdent := assign.Lhs[0].(*ast.Ident); isIdent {
			obj := pass.Info.ObjectOf(id)
			if obj != nil && timeVarOnlyMeasures(pass, parents, obj, enclosingFunc(parents, call)) {
				return
			}
		}
	}
	pass.Reportf(call.Pos(), "time.Now in a physics package feeds more than a duration measurement; wall-clock values must not influence simulation state (use obs spans or time.Since for telemetry)")
}

// timeVarOnlyMeasures reports whether every use of obj inside fn is a
// duration measurement: an argument to time.Since, or an operand of
// (time.Time).Sub.
func timeVarOnlyMeasures(pass *Pass, parents map[ast.Node]ast.Node, obj types.Object, fn ast.Node) bool {
	if fn == nil {
		return false
	}
	clean := true
	ast.Inspect(fn, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pass.Info.Uses[id] != obj {
			return true
		}
		switch p := parents[id].(type) {
		case *ast.CallExpr:
			// time.Since(t) or other.Sub(t)
			if f := calleeFunc(pass.Info, p); f != nil {
				if f.Name() == "Since" && funcPkgPath(f) == "time" {
					return true
				}
				if f.Name() == "Sub" && funcPkgPath(f) == "time" {
					return true
				}
			}
		case *ast.SelectorExpr:
			// t.Sub(other)
			if f, isFn := pass.Info.Uses[p.Sel].(*types.Func); isFn &&
				f.Name() == "Sub" && funcPkgPath(f) == "time" {
				return true
			}
		}
		clean = false
		return true
	})
	return clean
}

// randConstructors are math/rand functions that build an explicitly
// seeded local generator — the sanctioned path (internal/rng wraps it).
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// checkGlobalRand flags references to the process-global math/rand
// generator.
func checkGlobalRand(pass *Pass, sel *ast.SelectorExpr) {
	f, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	pkg := funcPkgPath(f)
	if pkg != "math/rand" && pkg != "math/rand/v2" {
		return
	}
	sig, _ := f.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return // methods on an explicit *rand.Rand instance are fine
	}
	if randConstructors[f.Name()] {
		return
	}
	pass.Reportf(sel.Pos(), "global math/rand %s in a physics package: the shared generator makes runs irreproducible; use internal/rng (seeded) instead", f.Name())
}

// checkMapRange flags iteration over maps: Go randomises the order, so
// any value it feeds — list building, accumulation in floating point,
// output — diverges between runs.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	t := pass.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); ok {
		pass.Reportf(rng.Pos(), "map iteration in a physics package is order-nondeterministic; iterate a sorted key slice instead")
	}
}

// checkGoroutineCollection flags goroutine bodies that append to a
// slice declared outside the goroutine: completion order decides the
// element order. Indexed writes (totals[w] = ...) are the
// deterministic idiom and pass.
func checkGoroutineCollection(pass *Pass, g *ast.GoStmt) {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
			if !isCall {
				continue
			}
			id, isIdent := ast.Unparen(call.Fun).(*ast.Ident)
			if !isIdent || id.Name != "append" {
				continue
			}
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
				continue
			}
			if i >= len(assign.Lhs) {
				continue
			}
			target, isIdent := ast.Unparen(assign.Lhs[i]).(*ast.Ident)
			if !isIdent {
				continue
			}
			obj := pass.Info.ObjectOf(target)
			if obj == nil {
				continue
			}
			if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
				pass.Reportf(assign.Pos(), "goroutine appends to shared slice %s: completion order decides element order; write to an indexed slot or merge deterministically after Wait", target.Name)
			}
		}
		return true
	})
}
