package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerGoroutineJoin makes the serve soak test's goroutine-leak
// budget a compile-time property: every `go` statement in the physics
// and service packages must have a provable join path — evidence inside
// the goroutine body (followed one level through in-package callees)
// that it terminates or is waited on:
//
//   - sync.WaitGroup.Done (the spawner Waits),
//   - a channel send or close (a receiver observes completion),
//   - a range over a channel (ends when the producer closes),
//   - a receive from a Done() channel (context cancellation).
//
// cmd/* packages are out of scope: a main owns its process lifetime
// and may intentionally park a watchdog goroutine forever.
var AnalyzerGoroutineJoin = &Analyzer{
	Name: "goroutinejoin",
	Doc:  "require every goroutine in physics/service packages to have a provable join path",
	Run:  runGoroutineJoin,
}

// joinPackages is goroutinejoin's scope: the physics set plus the
// long-running service tier.
func joinScoped(path string) bool {
	return physicsPackages[path] || path == servePath || path == ckptPath ||
		path == obsPath || path == "repro/internal/fsx" || path == rootPath
}

func runGoroutineJoin(pass *Pass) error {
	if !joinScoped(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *FlowFunc
			switch fun := ast.Unparen(g.Call.Fun).(type) {
			case *ast.FuncLit:
				body = pass.Flow.FuncOf(fun)
			default:
				body = pass.Flow.Local(calleeFunc(pass.Info, g.Call))
			}
			if body == nil {
				pass.Reportf(g.Pos(), "goroutine body is not analyzable (function value or external callee): the goroutine-leak budget needs a provable join; spawn a named in-package function or a literal")
				return true
			}
			if _, ok := joinEvidence(pass, body, map[*FlowFunc]bool{}); !ok {
				pass.Reportf(g.Pos(), "goroutine has no provable join path (no WaitGroup.Done, channel send/close, channel range, or <-Done() in the body): add one, or //lint:ignore with the lifetime argument")
			}
			return true
		})
	}
	return nil
}

// joinEvidence searches fn's body (nested literals included — a
// deferred closure's wg.Done counts) and its in-package callees for a
// join mechanism.
func joinEvidence(pass *Pass, fn *FlowFunc, visited map[*FlowFunc]bool) (string, bool) {
	if visited[fn] {
		return "", false
	}
	visited[fn] = true
	found := ""
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = "channel send"
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = "channel range"
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					if f := calleeFunc(pass.Info, call); f != nil && f.Name() == "Done" {
						found = "context cancellation"
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pass.Info.ObjectOf(id).(*types.Builtin); isBuiltin && id.Name == "close" {
					found = "channel close"
					return false
				}
			}
			f := calleeFunc(pass.Info, n)
			if f == nil {
				return true
			}
			if pkg, typ, ok := recvNamed(f); ok && pkg == "sync" && typ == "WaitGroup" && f.Name() == "Done" {
				found = "WaitGroup.Done"
				return false
			}
			if local := pass.Flow.Local(f); local != nil {
				if why, ok := joinEvidence(pass, local, visited); ok {
					found = why
					return false
				}
			}
		}
		return true
	})
	return found, found != ""
}
