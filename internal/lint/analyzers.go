package lint

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerNondeterminism,
		AnalyzerG5Contract,
		AnalyzerG5Format,
		AnalyzerObsSpan,
		AnalyzerErrDiscipline,
		AnalyzerHostK,
	}
}
