package lint

// All returns the full analyzer suite in stable order: the per-function
// AST checks from the physics era first, then the dataflow analyzers
// (built on the shared Flow fact store) from the service era.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerNondeterminism,
		AnalyzerG5Contract,
		AnalyzerG5Format,
		AnalyzerObsSpan,
		AnalyzerErrDiscipline,
		AnalyzerHostK,
		AnalyzerLockDiscipline,
		AnalyzerGoroutineJoin,
		AnalyzerFPReduce,
		AnalyzerWireSchema,
		AnalyzerHotAlloc,
	}
}
