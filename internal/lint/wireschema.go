package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// AnalyzerWireSchema audits the structs that cross a process boundary —
// the /jobs, /metrics and /healthz HTTP payloads, the run-directory
// event/metadata files and the checkpoint manifest. A "wire struct" is
// any named struct in a wire package (serve, obs, g5, ckpt) that either
// carries a json tag or provably flows into encoding/json (directly or
// through in-package helpers like writeJSON, via Flow.JSONTypes).
//
// Three contracts:
//
//   - every exported non-embedded field needs an explicit json tag:
//     encoding/json would otherwise expose the Go identifier, so a
//     rename silently changes the public API;
//   - a wire field whose type lives in another repro package must also
//     be fully tagged there (checked from the export data, so the
//     vettool and standalone drivers agree);
//   - a float field on a marshal path must be provably finite:
//     json.Marshal fails at runtime on NaN/±Inf. "Provably finite"
//     means either witnessed by a finiteness guard (the field reaches a
//     function that calls math.IsNaN/IsInf — ckpt's stateFinite, serve's
//     finitePositive) or every in-package source of the field is
//     structurally admissible (literals and constants, integer
//     conversions, sums/products of admissible values, division by a
//     nonzero literal, time.Duration.Seconds, math.Abs-family calls,
//     calls into guarded helpers, other admissible fields — a fixpoint).
//
// Structs with custom MarshalJSON/UnmarshalJSON are exempt, as are
// decode-only structs for the float rule (inbound values are validated
// by the handler, not produced by us).
var AnalyzerWireSchema = &Analyzer{
	Name: "wireschema",
	Doc:  "require explicit json tags and provably finite floats on HTTP/checkpoint wire structs",
	Run:  runWireSchema,
}

// wirePackages are the packages whose structs can reach a process
// boundary: the HTTP job server, the telemetry reports it serves, the
// hardware-model events, and the checkpoint manifest.
var wirePackages = map[string]bool{
	servePath: true,
	obsPath:   true,
	g5Path:    true,
	ckptPath:  true,
}

func runWireSchema(pass *Pass) error {
	if !wirePackages[pass.Pkg.Path()] {
		return nil
	}
	marshalSeed, unmarshalSeed := pass.Flow.JSONTypes()
	marshal := wireFieldClosure(pass, marshalSeed)
	unmarshalC := wireFieldClosure(pass, unmarshalSeed)

	// Every named struct declared in this package.
	var wire []*types.Named
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		if hasJSONTag(st) || marshal[named] || unmarshalC[named] {
			wire = append(wire, named)
		}
	}
	sort.Slice(wire, func(i, j int) bool { return wire[i].Obj().Pos() < wire[j].Obj().Pos() })

	w := newWireChecker(pass)
	for _, named := range wire {
		if hasCustomJSON(named) {
			continue
		}
		st := named.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() || f.Embedded() {
				continue
			}
			tag := reflect.StructTag(st.Tag(i)).Get("json")
			if tag == "" {
				pass.Reportf(f.Pos(), "exported field %s.%s has no json tag: wire structs must name every field explicitly, or a Go rename silently changes the public schema", named.Obj().Name(), f.Name())
			}
			checkCrossPackageTags(pass, named, f)
			if tag == "-" || !marshal[named] {
				continue
			}
			if isFloatVar(f) && !w.fieldAdmissible(f) {
				pos := f.Pos()
				for _, s := range w.sources[f] {
					if !w.sourceAdmissible(s) {
						pos = s.pos
						break
					}
				}
				pass.Reportf(pos, "float field %s.%s can reach encoding/json carrying NaN or Inf (json.Marshal fails at runtime on non-finite values): guard it with math.IsNaN/IsInf or derive it only from provably finite inputs", named.Obj().Name(), f.Name())
			}
		}
	}
	return nil
}

// wireFieldClosure expands a JSONTypes seed set across in-package
// struct-typed fields: if jobMeta is marshaled, its JobSpec field is
// marshaled too.
func wireFieldClosure(pass *Pass, seed map[*types.Named]bool) map[*types.Named]bool {
	out := map[*types.Named]bool{}
	var add func(n *types.Named)
	add = func(n *types.Named) {
		if n == nil || out[n] || n.Obj().Pkg() != pass.Pkg {
			return
		}
		st, ok := n.Underlying().(*types.Struct)
		if !ok {
			return
		}
		out[n] = true
		for i := 0; i < st.NumFields(); i++ {
			t := st.Field(i).Type()
			if m, ok := t.Underlying().(*types.Map); ok {
				add(namedOf(m.Elem()))
			}
			add(namedOf(t))
		}
	}
	for n := range seed {
		add(n)
	}
	return out
}

// checkCrossPackageTags verifies (from export data, so both drivers
// agree) that a wire field's repro-internal struct type is itself fully
// tagged.
func checkCrossPackageTags(pass *Pass, owner *types.Named, f *types.Var) {
	ft := namedOf(f.Type())
	if ft == nil || ft.Obj().Pkg() == nil || ft.Obj().Pkg() == pass.Pkg {
		return
	}
	path := ft.Obj().Pkg().Path()
	if path != rootPath && !strings.HasPrefix(path, rootPath+"/") {
		return
	}
	if hasCustomJSON(ft) {
		return
	}
	st, ok := ft.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		g := st.Field(i)
		if !g.Exported() || g.Embedded() {
			continue
		}
		if reflect.StructTag(st.Tag(i)).Get("json") == "" {
			pass.Reportf(f.Pos(), "wire field %s.%s has cross-package type %s.%s with untagged exported field %s: tag it at the declaration or wrap it before it reaches encoding/json", owner.Obj().Name(), f.Name(), ft.Obj().Pkg().Name(), ft.Obj().Name(), g.Name())
		}
	}
}

// hasJSONTag reports whether any field of st carries a json tag.
func hasJSONTag(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if reflect.StructTag(st.Tag(i)).Get("json") != "" {
			return true
		}
	}
	return false
}

// hasCustomJSON reports whether the type declares its own
// MarshalJSON/UnmarshalJSON — its wire shape is then whatever the
// method produces, not the struct layout.
func hasCustomJSON(named *types.Named) bool {
	for i := 0; i < named.NumMethods(); i++ {
		switch named.Method(i).Name() {
		case "MarshalJSON", "UnmarshalJSON":
			return true
		}
	}
	return false
}

// isFloatVar reports whether v is a scalar float field.
func isFloatVar(v *types.Var) bool {
	b, ok := v.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// fieldSource is one place a struct field gets a value: an assignment
// RHS or a composite-literal entry. A nil expr means the value is not
// attributable (multi-value assignment) and counts as inadmissible.
type fieldSource struct {
	pos      token.Pos
	expr     ast.Expr
	quoDenom bool // source is `f /= expr`: admissible iff expr is a nonzero constant
}

// wireChecker holds the witness set and per-field source lists for the
// finiteness fixpoint.
type wireChecker struct {
	pass       *Pass
	witnessed  map[*types.Var]bool
	sources    map[*types.Var][]fieldSource
	fieldState map[*types.Var]int // 1 computing, 2 admissible, 3 inadmissible
	fnVisiting map[*FlowFunc]bool
}

func newWireChecker(pass *Pass) *wireChecker {
	w := &wireChecker{
		pass:       pass,
		witnessed:  map[*types.Var]bool{},
		sources:    map[*types.Var][]fieldSource{},
		fieldState: map[*types.Var]int{},
		fnVisiting: map[*FlowFunc]bool{},
	}
	// Witness W1: any field read inside a finiteness-guard function is
	// policed by it (ckpt's stateFinite pattern).
	for _, fn := range pass.Flow.Funcs {
		if !pass.Flow.FloatGuard(fn) {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			w.markWitness(n)
			return true
		})
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				// Witness W2: a field passed into a finiteness-guard
				// function is policed at the call site (serve's
				// finitePositive(s.Theta) pattern).
				if local := pass.Flow.Local(calleeFunc(pass.Info, n)); local != nil && pass.Flow.FloatGuard(local) {
					for _, a := range n.Args {
						e := ast.Unparen(a)
						if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
							e = ast.Unparen(u.X)
						}
						w.markWitness(e)
					}
				}
			case *ast.AssignStmt:
				w.collectAssign(n)
			case *ast.CompositeLit:
				w.collectComposite(n)
			}
			return true
		})
	}
	return w
}

// markWitness records n as witnessed if it is a selector of an
// in-package struct field.
func (w *wireChecker) markWitness(n ast.Node) {
	sel, ok := n.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if s := w.pass.Info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok && v.Pkg() == w.pass.Pkg {
			w.witnessed[v] = true
		}
	}
}

func (w *wireChecker) collectAssign(assign *ast.AssignStmt) {
	for i, lhs := range assign.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		s := w.pass.Info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			continue
		}
		v, ok := s.Obj().(*types.Var)
		if !ok || v.Pkg() != w.pass.Pkg {
			continue
		}
		src := fieldSource{pos: assign.Pos()}
		switch assign.Tok {
		case token.ASSIGN, token.DEFINE:
			if len(assign.Rhs) == len(assign.Lhs) {
				src.expr = assign.Rhs[i]
				src.pos = assign.Rhs[i].Pos()
			}
			// Multi-value assignment from a call: not attributable.
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
			// f op= e keeps f admissible iff e is (the implicit f
			// operand is the field itself).
			src.expr = assign.Rhs[0]
			src.pos = assign.Rhs[0].Pos()
		case token.QUO_ASSIGN:
			src.expr = assign.Rhs[0]
			src.pos = assign.Rhs[0].Pos()
			src.quoDenom = true
		}
		w.sources[v] = append(w.sources[v], src)
	}
}

func (w *wireChecker) collectComposite(lit *ast.CompositeLit) {
	named := namedOf(w.pass.Info.TypeOf(lit))
	if named == nil || named.Obj().Pkg() != w.pass.Pkg {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			for j := 0; j < st.NumFields(); j++ {
				if st.Field(j).Name() == key.Name {
					w.sources[st.Field(j)] = append(w.sources[st.Field(j)], fieldSource{pos: kv.Value.Pos(), expr: kv.Value})
					break
				}
			}
		} else if i < st.NumFields() {
			w.sources[st.Field(i)] = append(w.sources[st.Field(i)], fieldSource{pos: elt.Pos(), expr: elt})
		}
	}
}

// fieldAdmissible reports whether field f is provably finite: witnessed
// by a guard, or every source admissible. Cycles (p.X += q.X merge
// helpers) resolve optimistically — a field is only inadmissible if
// some acyclic source path introduces an unproven value.
func (w *wireChecker) fieldAdmissible(f *types.Var) bool {
	if w.witnessed[f] {
		return true
	}
	switch w.fieldState[f] {
	case 1, 2:
		return true
	case 3:
		return false
	}
	w.fieldState[f] = 1
	ok := true
	for _, s := range w.sources[f] {
		if !w.sourceAdmissible(s) {
			ok = false
			break
		}
	}
	if ok {
		w.fieldState[f] = 2
	} else {
		w.fieldState[f] = 3
	}
	return ok
}

func (w *wireChecker) sourceAdmissible(s fieldSource) bool {
	if s.expr == nil {
		return false
	}
	if s.quoDenom {
		return nonzeroConst(w.pass, s.expr)
	}
	return w.admissible(s.expr)
}

// admissible is the structural finiteness grammar over expressions.
func (w *wireChecker) admissible(e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := w.pass.Info.Types[e]; ok && tv.Value != nil {
		return true // constants are finite by construction
	}
	switch e := e.(type) {
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			return w.admissible(e.X)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.MUL:
			return w.admissible(e.X) && w.admissible(e.Y)
		case token.QUO:
			// Division is only safe with a provably nonzero denominator.
			return w.admissible(e.X) && nonzeroConst(w.pass, e.Y)
		}
	case *ast.SelectorExpr:
		if s := w.pass.Info.Selections[e]; s != nil && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok && v.Pkg() == w.pass.Pkg {
				return w.fieldAdmissible(v)
			}
		}
	case *ast.CallExpr:
		return w.admissibleCall(e)
	}
	return false
}

func (w *wireChecker) admissibleCall(call *ast.CallExpr) bool {
	info := w.pass.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: integers convert to finite floats; float-to-float
		// preserves admissibility.
		if len(call.Args) != 1 {
			return false
		}
		if at := info.TypeOf(call.Args[0]); at != nil {
			if b, ok := at.Underlying().(*types.Basic); ok {
				if b.Info()&types.IsInteger != 0 {
					return true
				}
				if b.Info()&types.IsFloat != 0 {
					return w.admissible(call.Args[0])
				}
			}
		}
		return false
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if pkg, typ, ok := recvNamed(fn); ok && pkg == "time" && typ == "Duration" {
		switch fn.Name() {
		case "Seconds", "Minutes", "Hours":
			return true // bounded by the int64 nanosecond range
		}
		return false
	}
	if funcPkgPath(fn) == "math" {
		switch fn.Name() {
		case "Abs", "Min", "Max", "Floor", "Ceil", "Trunc", "Round":
			for _, a := range call.Args {
				if !w.admissible(a) {
					return false
				}
			}
			return true
		}
		return false
	}
	local := w.pass.Flow.Local(fn)
	if local == nil {
		return false
	}
	if w.pass.Flow.FloatGuard(local) {
		return true
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil && w.pass.Flow.GuardedType(named) {
			// A type that polices NaN/Inf at its write boundary yields
			// finite reads (obs.Observer's AddSeconds contract).
			return true
		}
	}
	// Otherwise the callee is admissible if everything it returns is.
	if w.fnVisiting[local] {
		return false
	}
	w.fnVisiting[local] = true
	defer delete(w.fnVisiting, local)
	sawReturn := false
	allOK := true
	ast.Inspect(local.Body, func(n ast.Node) bool {
		if !allOK {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok && lit != local.Node {
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			sawReturn = true
			if len(ret.Results) == 0 {
				allOK = false // bare return of named results: not tracked
				return false
			}
			for _, r := range ret.Results {
				if !w.admissible(r) {
					allOK = false
					return false
				}
			}
		}
		return true
	})
	return sawReturn && allOK
}

// nonzeroConst reports whether e is a nonzero numeric constant.
func nonzeroConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) != 0
	}
	return false
}
