package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each fixture is type-checked under the import path in the second
// argument so path-scoped analyzers behave exactly as on the real tree.

func TestNondeterminismFixture(t *testing.T) {
	linttest.Run(t, "testdata/nondeterminism", "repro/internal/core", lint.AnalyzerNondeterminism)
}

func TestNondeterminismScopedToPhysicsPackages(t *testing.T) {
	linttest.Run(t, "testdata/nondeterminism_scope", "repro/cmd/fixture", lint.AnalyzerNondeterminism)
}

func TestG5ContractFixture(t *testing.T) {
	linttest.Run(t, "testdata/g5contract", "repro/cmd/fixture", lint.AnalyzerG5Contract)
}

func TestG5FormatFixture(t *testing.T) {
	// repro/internal/pm is a physics package not in internal/g5's
	// import closure, so the fixture path cannot alias a real package
	// the importer loads.
	linttest.Run(t, "testdata/g5format", "repro/internal/pm", lint.AnalyzerG5Format)
}

func TestG5FormatExemptsFormatFiles(t *testing.T) {
	linttest.Run(t, "testdata/g5format_exempt", "repro/internal/g5", lint.AnalyzerG5Format)
}

func TestObsSpanFixture(t *testing.T) {
	linttest.Run(t, "testdata/obsspan", "repro/cmd/fixture", lint.AnalyzerObsSpan)
}

func TestErrDisciplineFixture(t *testing.T) {
	linttest.Run(t, "testdata/errdiscipline", "repro/cmd/fixture", lint.AnalyzerErrDiscipline)
}

func TestHostKFixture(t *testing.T) {
	// repro/internal/pm: a physics package that is neither hostk (the
	// kernels home) nor octree (the criterion's definition site).
	linttest.Run(t, "testdata/hostk", "repro/internal/pm", lint.AnalyzerHostK)
}

func TestHostKExemptsKernelPackage(t *testing.T) {
	linttest.Run(t, "testdata/hostk_exempt", "repro/internal/hostk", lint.AnalyzerHostK)
}

func TestLockDisciplineFixture(t *testing.T) {
	// lockdiscipline is not path-scoped; any fixture path works.
	linttest.Run(t, "testdata/lockdiscipline", "repro/cmd/fixture", lint.AnalyzerLockDiscipline)
}

func TestGoroutineJoinFixture(t *testing.T) {
	linttest.Run(t, "testdata/goroutinejoin", "repro/internal/pm", lint.AnalyzerGoroutineJoin)
}

func TestGoroutineJoinScopedToServiceAndPhysics(t *testing.T) {
	linttest.Run(t, "testdata/goroutinejoin_scope", "repro/cmd/fixture", lint.AnalyzerGoroutineJoin)
}

func TestFPReduceFixture(t *testing.T) {
	linttest.Run(t, "testdata/fpreduce", "repro/internal/pm", lint.AnalyzerFPReduce)
}

func TestFPReduceSanctionedHelpers(t *testing.T) {
	// Under the obs import path, Observer.AddSeconds and
	// PhaseSeconds.Add are designated merge points.
	linttest.Run(t, "testdata/fpreduce_sanctioned", "repro/internal/obs", lint.AnalyzerFPReduce)
}

func TestFPReduceRungBlockSanction(t *testing.T) {
	// Under the integrate import path, BlockLeapfrog.assignRungs is the
	// designated rung-reduction merge point; the same captured-pointer
	// accumulation on any other method is still flagged.
	linttest.Run(t, "testdata/fpreduce_rungblock", "repro/internal/integrate", lint.AnalyzerFPReduce)
}

func TestWireSchemaFixture(t *testing.T) {
	linttest.Run(t, "testdata/wireschema", "repro/internal/serve", lint.AnalyzerWireSchema)
}

func TestWireSchemaScopedToWirePackages(t *testing.T) {
	linttest.Run(t, "testdata/wireschema_scope", "repro/internal/pm", lint.AnalyzerWireSchema)
}

func TestHotAllocFixture(t *testing.T) {
	linttest.Run(t, "testdata/hotalloc", "repro/internal/core", lint.AnalyzerHotAlloc)
}

func TestHotAllocScopedToHotPackages(t *testing.T) {
	linttest.Run(t, "testdata/hotalloc_scope", "repro/cmd/fixture", lint.AnalyzerHotAlloc)
}
