package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerHotAlloc guards the arena contract (DESIGN.md §13): the
// steady-state step pipeline in the hot packages (hostk, octree, core)
// must not allocate. The runtime gates (TestStepAllocs,
// TestBuildSteadyStateAllocs) catch regressions on the paths they
// exercise; this analyzer catches the allocation *shapes* everywhere,
// including rarely-taken branches the gates never reach:
//
//   - a composite literal taken by address inside a loop body (one heap
//     object per iteration once it escapes);
//   - a function literal inside a loop body (the closure and its
//     captures allocate per iteration);
//   - an append, inside a loop, to a local slice declared without
//     capacity (`var s []T`, `s := []T{}`, two-argument make): growth
//     reallocates on the hot path; pre-size or reuse a scratch buffer.
//
// Constructors (New*/new*) and init are exempt — setup-time allocation
// is the arena idiom, not a violation. Findings are advisory shapes:
// `grapelint -escapes` cross-checks the compiler's actual escape
// analysis (-gcflags=-m) against a committed baseline, so a flagged
// site that provably does not escape earns a //lint:ignore with that
// reasoning.
var AnalyzerHotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag per-iteration heap allocation shapes (escaping literals, closures, growing appends) in the hot packages",
	Run:  runHotAlloc,
}

func hotallocScoped(path string) bool {
	return path == hostkPath || path == octreePath || path == corePath
}

func runHotAlloc(pass *Pass) error {
	if !hotallocScoped(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		parents := pass.Parents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			if !inLoopBody(parents, n) || hotallocExempt(parents, n) {
				return true
			}
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op != token.AND {
					return true
				}
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "composite literal taken by address in a loop body: one heap object per iteration if it escapes; hoist it out of the loop or reuse a scratch value (arena contract)")
				}
			case *ast.FuncLit:
				pass.Reportf(n.Pos(), "function literal in a loop body: the closure and its captures allocate per iteration; hoist it to a named function or outside the loop")
				return false // don't re-flag its interior against outer loops
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
					if _, isBuiltin := pass.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
						checkHotAppend(pass, parents, n)
					}
				}
			}
			return true
		})
	}
	return nil
}

// inLoopBody reports whether n is inside the body of a for/range
// statement within its enclosing function (function boundaries reset
// the loop context: a literal's body executes on the literal's
// schedule, and the literal itself is what gets flagged).
func inLoopBody(parents map[ast.Node]ast.Node, n ast.Node) bool {
	for c, p := n, parents[n]; p != nil; c, p = p, parents[p] {
		switch p := p.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if p.Body == c {
				return true
			}
		case *ast.RangeStmt:
			if p.Body == c {
				return true
			}
		}
	}
	return false
}

// hotallocExempt reports whether n is inside a constructor or init:
// New*/new* functions and init are setup-time by convention.
func hotallocExempt(parents map[ast.Node]ast.Node, n ast.Node) bool {
	for p := parents[n]; p != nil; p = parents[p] {
		if decl, ok := p.(*ast.FuncDecl); ok {
			name := decl.Name.Name
			return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") || name == "init"
		}
	}
	return false
}

// checkHotAppend flags `x = append(x, ...)` in a loop when x is a local
// slice declared without an explicit capacity.
func checkHotAppend(pass *Pass, parents map[ast.Node]ast.Node, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	target, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj, ok := pass.Info.ObjectOf(target).(*types.Var)
	if !ok || obj.Pkg() == nil || obj.Parent() == obj.Pkg().Scope() {
		return // package-level slices are setup-owned
	}
	decl := sliceDeclExpr(parents, target, obj)
	if decl == declWithCapacity {
		return
	}
	pass.Reportf(call.Pos(), "append in a loop to %s, declared without capacity: growth reallocates on the hot path; pre-size with make(len, cap) or reuse a scratch buffer (arena contract)", target.Name)
}

type sliceDecl int

const (
	declUnknown sliceDecl = iota
	declNoCapacity
	declWithCapacity
)

// sliceDeclExpr classifies how the local slice obj was declared, by
// scanning the enclosing function for its defining ident. Unknown
// shapes (parameters, struct fields via locals) are treated as
// preallocated — the caller owns their capacity.
func sliceDeclExpr(parents map[ast.Node]ast.Node, use *ast.Ident, obj *types.Var) sliceDecl {
	fn := enclosingFunc(parents, use)
	if fn == nil {
		return declWithCapacity
	}
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	if body == nil {
		return declWithCapacity
	}
	result := declWithCapacity
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if name.Pos() != obj.Pos() {
					continue
				}
				if len(n.Values) == 0 {
					result = declNoCapacity // var s []T
				} else if i < len(n.Values) {
					result = classifyInit(n.Values[i])
				}
				return false
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Pos() != obj.Pos() {
					continue
				}
				if len(n.Rhs) == len(n.Lhs) {
					result = classifyInit(n.Rhs[i])
				}
				return false
			}
		}
		return true
	})
	return result
}

// classifyInit classifies a slice initializer expression.
func classifyInit(e ast.Expr) sliceDecl {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		if len(e.Elts) == 0 {
			return declNoCapacity // s := []T{}
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "make" {
			if len(e.Args) < 3 {
				return declNoCapacity // make([]T, n): no explicit capacity
			}
		}
	}
	return declWithCapacity
}
