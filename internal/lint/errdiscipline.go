package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerErrDiscipline polices error handling on the hardware and
// simulation surfaces: a discarded error from the g5 package or the
// public Simulation API hides exactly the failures the fault-tolerance
// layer (PR 1) exists to surface — a lost Close error leaks shard
// workers, a lost SetEps/SetScale error silently corrupts the run's
// force model. Flagged:
//
//   - a statement that calls an error-returning function or method of
//     repro or repro/internal/g5 and drops the result (plain, defer
//     and go statements);
//   - a *g5.HardwareError value assigned to the blank identifier —
//     the typed fault classification exists to be inspected.
//
// Explicit `_ = call()` assignments are the sanctioned opt-out for a
// provably-impossible error and must carry a justification the
// reviewer can check (a comment or an //lint:ignore).
var AnalyzerErrDiscipline = &Analyzer{
	Name: "errdiscipline",
	Doc:  "flag discarded errors from g5/Simulation calls and dropped g5.HardwareError values",
	Run:  runErrDiscipline,
}

// watchedPkgs are the packages whose error returns must be handled.
var watchedPkgs = map[string]bool{rootPath: true, g5Path: true}

func runErrDiscipline(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscard(pass, call, "")
				}
			case *ast.DeferStmt:
				checkDiscard(pass, n.Call, "defer ")
			case *ast.GoStmt:
				checkDiscard(pass, n.Call, "go ")
			case *ast.AssignStmt:
				checkBlankHardwareError(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkDiscard flags a statement-position call to a watched
// error-returning function.
func checkDiscard(pass *Pass, call *ast.CallExpr, how string) {
	f := calleeFunc(pass.Info, call)
	if f == nil {
		return
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || !returnsError(sig) {
		return
	}
	owner := funcPkgPath(f)
	target := f.Name()
	if pkg, typ, isMethod := recvNamed(f); isMethod {
		owner = pkg
		target = typ + "." + f.Name()
	}
	if !watchedPkgs[owner] {
		return
	}
	if how == "defer " {
		pass.Reportf(call.Pos(), "defer discards the error from %s: wrap it in a closure and handle (or log) the error", target)
		return
	}
	pass.Reportf(call.Pos(), "%serror from %s discarded: handle it, or assign to _ with a justification", how, target)
}

// checkBlankHardwareError flags `_ = <expr of type *g5.HardwareError>`:
// the typed fault classification (transient vs permanent) is the input
// to the retry/degrade policy and must not be thrown away.
func checkBlankHardwareError(pass *Pass, assign *ast.AssignStmt) {
	for i, lhs := range assign.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		if i >= len(assign.Rhs) {
			continue
		}
		t := pass.Info.TypeOf(assign.Rhs[i])
		if t != nil && isNamedType(t, g5Path, "HardwareError") {
			pass.Reportf(assign.Pos(), "g5.HardwareError dropped into _: its Transient/Op classification drives fault recovery; inspect or propagate it")
		}
	}
}
