// Package lint is the repository's domain-invariant static analysis
// suite: a small analyzer framework (mirroring the shape of
// golang.org/x/tools/go/analysis, but built only on the standard
// library so the module stays dependency-free) plus the analyzers that
// protect the paper-level invariants the compiler cannot see —
// bit-reproducibility of the treecode, the GRAPE-5 host-library call
// contract, reduced-precision format hygiene, telemetry span pairing
// and error discipline on the hardware paths.
//
// The analyzers run over type-checked packages loaded by Loader (see
// load.go) and are driven by cmd/grapelint, both standalone
// (`grapelint ./...`) and as a `go vet -vettool`.
//
// # Suppression policy
//
// A finding that is intentional is suppressed in place with
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line directly above it. The analyzer name
// may be a comma-separated list; the reason is mandatory — a bare
// ignore is itself a finding. DESIGN.md §10 documents when suppression
// is acceptable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects a single package through
// its Pass and reports findings with Pass.Reportf.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and ignore
	// comments (e.g. "nondeterminism").
	Name string
	// Doc is the one-line description shown by `grapelint -list`.
	Doc string
	// Run performs the analysis on one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an Analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Flow is the package's shared dataflow fact store (call graph,
	// blocking facts, goroutine spawns, json flows), built once per
	// package and reused by every analyzer in the run.
	Flow *Flow

	diags *[]Diagnostic
}

// Parents returns the shared node→parent map for file.
func (p *Pass) Parents(file *ast.File) map[ast.Node]ast.Node {
	return p.Flow.Parents(file)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// UnusedIgnore is a //lint:ignore comment that suppressed nothing in a
// run of the full suite — a stale suppression that should be deleted
// before it hides a future regression.
type UnusedIgnore struct {
	Pos token.Pos
	// Analyzers is the comma-separated name list as written.
	Analyzers string
}

// Run applies the analyzers to each package and returns the surviving
// findings (ignore comments applied), sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunDetail(pkgs, analyzers)
	return diags, err
}

// RunDetail is Run plus stale-suppression detection: the second result
// lists every //lint:ignore comment that matched no diagnostic. It is
// only meaningful when the run covers the full analyzer suite — an
// ignore for an analyzer that did not run looks unused.
func RunDetail(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []UnusedIgnore, error) {
	var diags []Diagnostic
	var unused []UnusedIgnore
	for _, pkg := range pkgs {
		var pkgDiags []Diagnostic
		flow := NewFlow(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Flow:     flow,
				diags:    &pkgDiags,
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		kept, stale := applyIgnores(pkg, pkgDiags)
		diags = append(diags, kept...)
		unused = append(unused, stale...)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	sort.Slice(unused, func(i, j int) bool { return unused[i].Pos < unused[j].Pos })
	return diags, unused, nil
}

// ignoreRe matches "//lint:ignore name1,name2 reason..." — the reason
// is mandatory, mirroring staticcheck's convention.
var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)\s+\S`)

// ignoreEntry is one parsed //lint:ignore comment with its coverage.
type ignoreEntry struct {
	pos   token.Pos
	raw   string // the analyzer-name list as written
	names map[string]bool
	keys  [2]string // "file:line" for own line and the next
	used  bool
}

// applyIgnores drops findings covered by an ignore comment on the same
// line or the line directly above, and reports the comments that
// covered nothing.
func applyIgnores(pkg *Package, diags []Diagnostic) ([]Diagnostic, []UnusedIgnore) {
	var entries []*ignoreEntry
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				e := &ignoreEntry{pos: c.Pos(), raw: m[1], names: map[string]bool{}}
				for _, n := range strings.Split(m[1], ",") {
					e.names[n] = true
				}
				// The comment covers its own line and the next one, so
				// it works both inline and as a line above.
				e.keys[0] = fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				e.keys[1] = fmt.Sprintf("%s:%d", pos.Filename, pos.Line+1)
				entries = append(entries, e)
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		suppressed := false
		for _, e := range entries {
			if (e.keys[0] == key || e.keys[1] == key) && (e.names[d.Analyzer] || e.names["all"]) {
				e.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	var unused []UnusedIgnore
	for _, e := range entries {
		if !e.used {
			unused = append(unused, UnusedIgnore{Pos: e.pos, Analyzers: e.raw})
		}
	}
	return kept, unused
}

// physicsPackages is the import-path set whose results must be
// bit-reproducible: everything that touches particle state, forces or
// the hardware model. The nondeterminism and g5format analyzers only
// fire inside this set.
var physicsPackages = map[string]bool{
	"repro/internal/core":      true,
	"repro/internal/octree":    true,
	"repro/internal/g5":        true,
	"repro/internal/hostk":     true,
	"repro/internal/integrate": true,
	"repro/internal/nbody":     true,
	"repro/internal/cosmo":     true,
	"repro/internal/pm":        true,
	"repro/internal/morton":    true,
	"repro/internal/vec":       true,
}

// hostkPath is the batched host-kernel package; the hostk analyzer
// exempts it (it holds the kernels and their scalar references).
const hostkPath = "repro/internal/hostk"

// octreePath defines the scalar MAC; the hostk analyzer exempts it.
const octreePath = "repro/internal/octree"

// g5Path is the hardware package; several analyzers key on it.
const g5Path = "repro/internal/g5"

// rootPath is the module's root package (the public simulation API).
const rootPath = "repro"

// servePath is the multi-tenant job server; the concurrency analyzers
// and wireschema key on it.
const servePath = "repro/internal/serve"

// ckptPath is the durable checkpoint store: its writes are blocking
// I/O for lockdiscipline and its manifest is a wire schema.
const ckptPath = "repro/internal/ckpt"

// corePath is the treecode package, one of hotalloc's hot packages.
const corePath = "repro/internal/core"

// integratePath holds the integrators; fpreduce sanctions its
// block-timestep rung-assignment reduction.
const integratePath = "repro/internal/integrate"
