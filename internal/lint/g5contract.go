package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerG5Contract enforces the GRAPE-5 host-library contract
// (cf. the GRAPE-5 hardware paper, astro-ph/9909116) in two layers:
//
//  1. Register-level isolation: outside internal/g5, the raw data-path
//     entry points of the emulated hardware — System.Compute,
//     System.ChargeOnly, System.SetBoardExcluded — are off limits.
//     Hosts drive the hardware through the library surfaces (Driver,
//     Engine, GuardedEngine, Cluster), which own serialisation, error
//     classification and fault recovery.
//
//  2. Call order: for a Driver or System created in the current
//     function, the library sequence must hold in source order —
//     g5_set_range before any j-particle upload or force request
//     (positions are stored in the range's fixed-point format on real
//     hardware), at least one SetXMJ before CalculateForceOnX, Compute
//     only after SetScale, and nothing after Close. The tracking is
//     optimistic: once the device escapes to another function the
//     analyzer stops judging (cross-function state is the dynamic
//     conformance suite's job).
var AnalyzerG5Contract = &Analyzer{
	Name: "g5contract",
	Doc:  "enforce the GRAPE library call contract and register-level isolation of internal/g5",
	Run:  runG5Contract,
}

func runG5Contract(pass *Pass) error {
	outside := pass.Pkg.Path() != g5Path
	for _, file := range pass.Files {
		if outside {
			checkRegisterAccess(pass, file)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkCallOrder(pass, fn.Body)
				}
				return false // checkCallOrder walks the body itself
			}
			return true
		})
	}
	return nil
}

// registerMethods are the raw data-path methods of g5.System that only
// internal/g5 may touch.
var registerMethods = map[string]bool{
	"Compute": true, "ChargeOnly": true, "SetBoardExcluded": true,
}

func checkRegisterAccess(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(pass.Info, call)
		if f == nil || !registerMethods[f.Name()] {
			return true
		}
		if pkg, typ, ok := recvNamed(f); ok && pkg == g5Path && typ == "System" {
			pass.Reportf(call.Pos(), "register-level access to g5.System.%s outside internal/g5: drive the hardware through Driver, Engine, GuardedEngine or Cluster", f.Name())
		}
		return true
	})
}

// devState tracks one locally-created hardware object through a
// function body.
type devState struct {
	kind      string // "driver" or "system"
	seenScale bool   // SetRange / SetScale observed
	seenJ     bool   // SetXMJ observed
	closed    bool
	escaped   bool
}

// checkCallOrder runs the optimistic source-order contract check over
// one function body.
func checkCallOrder(pass *Pass, body *ast.BlockStmt) {
	tracked := map[types.Object]*devState{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			trackCreation(pass, tracked, n)
		case *ast.CallExpr:
			handleCall(pass, tracked, n)
		}
		return true
	})
}

// trackCreation starts tracking `d, err := g5.Open(...)` and
// `sys, err := g5.NewSystem(...)` results.
func trackCreation(pass *Pass, tracked map[types.Object]*devState, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	f := calleeFunc(pass.Info, call)
	if f == nil || funcPkgPath(f) != g5Path {
		return
	}
	var kind string
	switch f.Name() {
	case "Open":
		kind = "driver"
	case "NewSystem":
		kind = "system"
	default:
		return
	}
	if len(assign.Lhs) == 0 {
		return
	}
	id, ok := assign.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if obj := pass.Info.ObjectOf(id); obj != nil {
		tracked[obj] = &devState{kind: kind}
	}
}

// handleCall advances the contract state machine for method calls on
// tracked objects, and marks objects escaping as plain arguments.
func handleCall(pass *Pass, tracked map[types.Object]*devState, call *ast.CallExpr) {
	// Escape: a tracked device passed as an argument leaves local
	// jurisdiction (NewEngine(sys, ...), helper functions, ...).
	for _, arg := range call.Args {
		expr := ast.Unparen(arg)
		if u, ok := expr.(*ast.UnaryExpr); ok {
			expr = ast.Unparen(u.X)
		}
		if id, ok := expr.(*ast.Ident); ok {
			if st := tracked[pass.Info.ObjectOf(id)]; st != nil {
				st.escaped = true
			}
		}
	}

	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return
	}
	st := tracked[pass.Info.ObjectOf(recv)]
	if st == nil || st.escaped {
		return
	}
	name := sel.Sel.Name
	if st.closed && name != "Close" {
		pass.Reportf(call.Pos(), "g5 %s used after Close (g5_close releases the hardware)", st.kind)
		return
	}
	switch st.kind {
	case "driver":
		switch name {
		case "SetRange":
			st.seenScale = true
		case "SetXMJ":
			if !st.seenScale {
				pass.Reportf(call.Pos(), "SetXMJ before SetRange: real GRAPE-5 boards store j-particles in the fixed-point format g5_set_range defines")
			}
			st.seenJ = true
		case "CalculateForceOnX":
			if !st.seenScale {
				pass.Reportf(call.Pos(), "CalculateForceOnX before SetRange: the fixed-point coordinate window is undefined")
			}
			if !st.seenJ {
				pass.Reportf(call.Pos(), "CalculateForceOnX before any SetXMJ: no j-particles loaded into the particle memory")
			}
		case "Close":
			st.closed = true
		}
	case "system":
		switch name {
		case "SetScale":
			st.seenScale = true
		case "Compute":
			if !st.seenScale {
				pass.Reportf(call.Pos(), "Compute before SetScale: the pipeline's fixed-point position format is undefined")
			}
		}
	}
}
