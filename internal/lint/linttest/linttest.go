// Package linttest is the golden-fixture harness for the internal/lint
// analyzers: it type-checks a fixture directory under a caller-chosen
// import path (so path-scoped analyzers apply exactly as they do on the
// real tree), runs the analyzers, and matches the diagnostics against
// the fixture's expectation comments in both directions — every finding
// must be expected, and every expectation must fire.
//
// An expectation is a trailing comment on the line the diagnostic is
// reported at:
//
//	rand.Float64() // want "global math/rand"
//
// Each quoted string is a regular expression; a line carrying several
// quoted strings expects that many distinct diagnostics (the g5contract
// analyzer, for example, reports register-level access and a call-order
// violation on the same call).
package linttest

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
)

var (
	wantRe  = regexp.MustCompile(`//\s*want\b(.*)$`)
	quoteRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

// expectation is one parsed want clause, consumed by at most one
// diagnostic.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// Run lints dir as the package importPath and asserts the diagnostics
// match the fixture's want comments exactly.
func Run(t *testing.T, dir, importPath string, analyzers ...*lint.Analyzer) {
	t.Helper()
	names, err := goFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	loader := lint.NewLoader("")
	files, err := loader.ParseFiles(dir, names)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Check(importPath, files)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	wants, err := collectWants(dir, names)
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		if !claim(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("unexpected diagnostic at %s: %s: %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q did not fire", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmet expectation on file:line whose regexp
// matches the message, reporting whether one existed.
func claim(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.met && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.met = true
			return true
		}
	}
	return false
}

// goFiles lists the .go files of the fixture directory in name order.
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// collectWants scans the fixture sources for want comments. The file
// key is the dir-joined path, matching the positions the loader's
// FileSet reports.
func collectWants(dir string, names []string) ([]*expectation, error) {
	var wants []*expectation
	for _, name := range names {
		path := filepath.Join(dir, name)
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			quotes := quoteRe.FindAllStringSubmatch(m[1], -1)
			if len(quotes) == 0 {
				return nil, fmt.Errorf("%s:%d: want comment with no quoted pattern", path, line)
			}
			for _, q := range quotes {
				re, err := regexp.Compile(q[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", path, line, q[1], err)
				}
				wants = append(wants, &expectation{file: path, line: line, re: re, raw: q[1]})
			}
		}
		cerr := f.Close()
		if err := sc.Err(); err != nil {
			return nil, err
		}
		if cerr != nil {
			return nil, cerr
		}
	}
	return wants, nil
}
