package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
)

// loadFixture type-checks one fixture directory under importPath.
func loadFixture(t *testing.T, loader *lint.Loader, dir, importPath string) *lint.Package {
	t.Helper()
	files, err := loader.ParseFiles(dir, []string{"fixture.go"})
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Check(importPath, files)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// TestRunDetailReportsUnusedIgnores: an ignore that suppressed a
// finding is consumed; one that covered nothing is surfaced.
func TestRunDetailReportsUnusedIgnores(t *testing.T) {
	loader := lint.NewLoader("")
	pkg := loadFixture(t, loader, "testdata/unusedignore", "repro/internal/pm")
	diags, unused, err := lint.RunDetail([]*lint.Package{pkg}, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("want 0 surviving diagnostics, got %d: %v", len(diags), diags)
	}
	if len(unused) != 1 {
		t.Fatalf("want exactly 1 unused ignore, got %d: %v", len(unused), unused)
	}
	pos := loader.Fset.Position(unused[0].Pos)
	if !strings.HasSuffix(pos.Filename, "fixture.go") || unused[0].Analyzers != "fpreduce" {
		t.Fatalf("unexpected unused ignore %q at %s", unused[0].Analyzers, pos)
	}
	// The stale comment sits directly above func clean.
	if pos.Line != 15 {
		t.Fatalf("unused ignore reported at line %d, want 15", pos.Line)
	}
}

// TestEveryAnalyzerHasDoc backs `grapelint -list`: an analyzer without
// a one-line doc renders as an empty row.
func TestEveryAnalyzerHasDoc(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range lint.All() {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v missing name or doc", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
	}
	if len(seen) != 11 {
		t.Errorf("expected 11 analyzers in the suite, got %d", len(seen))
	}
}
