package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
)

// TestLoadMissingPackage: a pattern matching nothing must surface a
// loader error, not an empty silent run (the drivers map this to exit
// code 2).
func TestLoadMissingPackage(t *testing.T) {
	loader := lint.NewLoader("")
	if _, err := loader.Load("repro/internal/nosuchpackage"); err == nil {
		t.Fatal("Load of a missing package succeeded")
	}
}

// TestLoadCompileError: a package that does not type-check must fail
// loading with a diagnostic, not reach the analyzers half-checked.
func TestLoadCompileError(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module broken\n\ngo 1.24\n")
	write("main.go", "package main\n\nfunc main() { undefined() }\n")
	loader := lint.NewLoader(dir)
	if _, err := loader.Load("./..."); err == nil {
		t.Fatal("Load of a non-compiling module succeeded")
	}
}

// TestCheckTypeError: the direct Check path (used by the fixture
// harness and the vettool driver) reports type errors too.
func TestCheckTypeError(t *testing.T) {
	dir := t.TempDir()
	src := "package fixture\n\nvar x int = \"not an int\"\n"
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader := lint.NewLoader("")
	files, err := loader.ParseFiles(dir, []string{"fixture.go"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Check("repro/cmd/fixture", files); err == nil {
		t.Fatal("Check of a type-broken file succeeded")
	}
}

// TestParseFilesSyntaxError: unparsable source fails at the parse
// stage with a position.
func TestParseFilesSyntaxError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte("package fixture\n\nfunc {\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	loader := lint.NewLoader("")
	if _, err := loader.ParseFiles(dir, []string{"fixture.go"}); err == nil {
		t.Fatal("ParseFiles of broken syntax succeeded")
	}
}
