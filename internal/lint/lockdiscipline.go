package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AnalyzerLockDiscipline polices the two mutex contracts the job
// server's latency and liveness rest on (DESIGN.md §15):
//
//   - no sync.Mutex/RWMutex may be held across a blocking operation —
//     a channel send/receive outside a select-with-default, a select
//     without default, time.Sleep, a call into net/net-http, a
//     checkpoint write, or an in-package call that transitively does
//     any of those. A blocked critical section stalls every endpoint
//     that contends on the lock (the scheduler's Server.mu serializes
//     all of /jobs, /metrics and /healthz).
//   - lock acquisition order must be globally consistent per package:
//     if A is ever acquired while B is held, B must never be acquired
//     while A is held (the documented serve order is Server.mu before
//     Job.mu).
//
// sync.Cond.Wait is exempt: it releases the associated mutex while
// parked (the g5 dispatcher's next() idiom). internal/fsx metadata
// writes are exempt by design — persisting job metadata under the
// scheduling lock is the serve persistence-order contract.
//
// The held-span model is intentionally simple (linear scan, explicit
// Unlock ends the span, `defer Unlock` extends it to the end of the
// block that acquired the lock), which can miss locks re-acquired on
// rare branches; it does not produce false positives on the idioms the
// repository uses.
var AnalyzerLockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "forbid mutexes held across blocking operations and inconsistent lock acquisition order",
	Run:  runLockDiscipline,
}

// lockSpan is one approximated critical section of one lock.
type lockSpan struct {
	key   string // stable lock identity (field object or local var)
	disp  string // display name, e.g. "s.mu (Server.mu)"
	typed bool   // identity is type-level (eligible for order edges)
	start token.Pos
	end   token.Pos
}

// lockOrderEdge records "to acquired while from was held" once per
// package, at the first acquisition site.
type lockOrderEdge struct {
	pos        token.Pos
	dispFrom   string
	dispTo     string
	posForDisp token.Position
}

func runLockDiscipline(pass *Pass) error {
	// edges[from][to] — first acquisition of `to` while `from` held.
	edges := map[string]map[string]*lockOrderEdge{}

	for _, fn := range pass.Flow.Funcs {
		spans := lockSpans(pass, fn)
		if len(spans) == 0 {
			continue
		}
		parents := pass.Parents(fn.File)
		// Blocking atoms inside a held span.
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && lit != fn.Node {
				return false
			}
			why, ok := pass.Flow.BlockingAtom(n, parents)
			if !ok {
				return true
			}
			for _, s := range spans {
				if s.start < n.Pos() && n.Pos() < s.end {
					pass.Reportf(n.Pos(), "%s held across %s: a blocked critical section stalls every contender; release the lock first or move the blocking operation out", s.disp, why)
				}
			}
			return true
		})
		// Order edges: span B starting inside span A.
		for _, a := range spans {
			if !a.typed {
				continue
			}
			for _, b := range spans {
				if !b.typed || a.key == b.key || b.start <= a.start || b.start >= a.end {
					continue
				}
				if edges[a.key] == nil {
					edges[a.key] = map[string]*lockOrderEdge{}
				}
				if edges[a.key][b.key] == nil {
					edges[a.key][b.key] = &lockOrderEdge{
						pos: b.start, dispFrom: a.disp, dispTo: b.disp,
					}
				}
			}
		}
	}

	// An edge participating in a cycle is an order inversion.
	type flatEdge struct {
		from, to string
		e        *lockOrderEdge
	}
	var flat []flatEdge
	for from, m := range edges {
		for to, e := range m {
			flat = append(flat, flatEdge{from, to, e})
		}
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i].e.pos < flat[j].e.pos })
	for _, fe := range flat {
		if reachesLock(edges, fe.to, fe.from, map[string]bool{}) {
			pass.Reportf(fe.e.pos, "inconsistent lock order: %s acquired while %s is held here, but the package also acquires them in the opposite order; pick one global order (serve's contract: Server.mu before Job.mu)", fe.e.dispTo, fe.e.dispFrom)
		}
	}
	return nil
}

// reachesLock reports whether the order graph has a path from→to.
func reachesLock(edges map[string]map[string]*lockOrderEdge, from, to string, seen map[string]bool) bool {
	if from == to {
		return true
	}
	if seen[from] {
		return false
	}
	seen[from] = true
	for next := range edges[from] {
		if reachesLock(edges, next, to, seen) {
			return true
		}
	}
	return false
}

// lockSpans approximates the critical sections of fn: each
// Lock/RLock paired with the first later Unlock/RUnlock of the same
// lock, or extended to the end of the acquiring block when the unlock
// is deferred (directly or through a deferred closure), or to the end
// of the block when no unlock exists.
func lockSpans(pass *Pass, fn *FlowFunc) []lockSpan {
	type lockEv struct {
		key, disp string
		typed     bool
		pos       token.Pos
		scopeEnd  token.Pos
	}
	type unlockEv struct {
		key      string
		pos      token.Pos
		deferred bool
		matched  bool
	}
	var locks []lockEv
	var unlocks []*unlockEv
	parents := pass.Parents(fn.File)

	addCall := func(call *ast.CallExpr, deferredLit bool) {
		f := calleeFunc(pass.Info, call)
		if f == nil {
			return
		}
		pkg, typ, ok := recvNamed(f)
		if !ok || pkg != "sync" || (typ != "Mutex" && typ != "RWMutex") {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		key, disp, typed := lockIdentity(pass, sel.X)
		switch f.Name() {
		case "Lock", "RLock":
			locks = append(locks, lockEv{key: key, disp: disp, typed: typed, pos: call.Pos(), scopeEnd: enclosingBlockEnd(parents, call, fn)})
		case "Unlock", "RUnlock":
			unlocks = append(unlocks, &unlockEv{key: key, pos: call.Pos(), deferred: deferredLit || isDeferred(parents, call)})
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n == fn.Node {
				return true
			}
			// A deferred closure's unlocks release the lock at function
			// exit; other nested literals run on their own schedule.
			if d, ok := parents[parents[n]].(*ast.DeferStmt); ok && ast.Unparen(d.Call.Fun) == ast.Node(n) {
				ast.Inspect(n.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						addCall(call, true)
					}
					return true
				})
			}
			return false
		case *ast.CallExpr:
			addCall(n, false)
		}
		return true
	})

	sort.Slice(locks, func(i, j int) bool { return locks[i].pos < locks[j].pos })
	sort.Slice(unlocks, func(i, j int) bool { return unlocks[i].pos < unlocks[j].pos })
	var spans []lockSpan
	for _, l := range locks {
		end := l.scopeEnd
		for _, u := range unlocks {
			if u.matched || u.key != l.key || u.pos < l.pos {
				continue
			}
			u.matched = true
			if !u.deferred {
				end = u.pos
			}
			break
		}
		spans = append(spans, lockSpan{key: l.key, disp: l.disp, typed: l.typed, start: l.pos, end: end})
	}
	return spans
}

// enclosingBlockEnd returns the end of the innermost block statement
// containing n within fn (falling back to the body end), so a lock
// acquired inside a branch is not considered held past the branch.
func enclosingBlockEnd(parents map[ast.Node]ast.Node, n ast.Node, fn *FlowFunc) token.Pos {
	for p := parents[n]; p != nil; p = parents[p] {
		switch p := p.(type) {
		case *ast.BlockStmt:
			return p.End()
		case *ast.FuncDecl, *ast.FuncLit:
			return fn.Body.End()
		}
	}
	return fn.Body.End()
}

// lockIdentity names the lock guarding expression recv (the x in
// x.Lock()). Struct fields get a stable type-level identity
// ("pkg.Type.field") usable for cross-function order tracking; locals
// and unrecognized shapes get a function-local identity.
func lockIdentity(pass *Pass, recv ast.Expr) (key, disp string, typed bool) {
	recv = ast.Unparen(recv)
	switch e := recv.(type) {
	case *ast.SelectorExpr:
		if sel := pass.Info.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
			obj := sel.Obj()
			owner := "?"
			if named := namedOf(sel.Recv()); named != nil {
				owner = named.Obj().Name()
			}
			short := owner + "." + obj.Name()
			return fmt.Sprintf("%s.%s", pkgPathOf(obj), short), fmt.Sprintf("%s (%s)", types.ExprString(e), short), true
		}
		if obj := pass.Info.ObjectOf(e.Sel); obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			// Package-qualified or package-level variable.
			return obj.Pkg().Path() + "." + obj.Name(), types.ExprString(e), true
		}
	case *ast.Ident:
		if obj := pass.Info.ObjectOf(e); obj != nil {
			if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Path() + "." + obj.Name(), e.Name, true
			}
			return fmt.Sprintf("local:%d", obj.Pos()), e.Name, false
		}
	}
	return "expr:" + types.ExprString(recv), types.ExprString(recv), false
}

// pkgPathOf returns the declaring package path of obj ("" if none).
func pkgPathOf(obj types.Object) string {
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}
