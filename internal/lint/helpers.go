package lint

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the function or method a call expression invokes,
// or nil when the callee is not a named function (e.g. a conversion, a
// function-typed variable or a builtin).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		obj = info.Uses[fn.Sel]
	}
	f, _ := obj.(*types.Func)
	return f
}

// funcPkgPath returns the import path of the package declaring f
// ("" for builtins and universe-scope functions like error.Error).
func funcPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// recvNamed returns the declaring package path and type name of a
// method's receiver (pointers dereferenced), or ok=false for plain
// functions and interface-free receivers.
func recvNamed(f *types.Func) (pkgPath, typeName string, ok bool) {
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", "", false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name(), true
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// isNamedType reports whether t (pointers dereferenced) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// returnsError reports whether the call's last result is of type error.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// buildParents maps every node of the file to its syntactic parent.
func buildParents(file *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// enclosingFunc returns the innermost FuncDecl or FuncLit containing n
// (nil at package scope).
func enclosingFunc(parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	for p := parents[n]; p != nil; p = parents[p] {
		switch p.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return p
		}
	}
	return nil
}

// isDeferred reports whether n executes under a defer statement in its
// enclosing function — directly (`defer t.Stop()`) or through a
// deferred closure (`defer func() { t.Stop() }()`).
func isDeferred(parents map[ast.Node]ast.Node, n ast.Node) bool {
	for p := parents[n]; p != nil; p = parents[p] {
		switch p.(type) {
		case *ast.DeferStmt:
			return true
		case *ast.FuncDecl:
			return false
		}
	}
	return false
}
