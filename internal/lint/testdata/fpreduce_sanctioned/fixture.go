// Package fixture confirms fpreduce's sanctioned-helper exemption:
// loaded as repro/internal/obs, where Observer.AddSeconds and
// PhaseSeconds.Add are the designated deterministic merge points — the
// same accumulation outside them is still flagged.
package fixture

type Observer struct {
	total float64
}

// AddSeconds is on the sanctioned list for repro/internal/obs.
func (o *Observer) AddSeconds(m map[string]float64) {
	for _, v := range m {
		o.total += v
	}
}

// Sum is not sanctioned, so the identical shape is flagged.
func (o *Observer) Sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want "float accumulation inside a range over a map"
	}
	return s
}

type PhaseSeconds struct {
	THost float64
}

// Add is sanctioned, including the literal it launches no goroutine
// from — map ranges inside it are trusted merges.
func (p *PhaseSeconds) Add(qs map[string]PhaseSeconds) {
	for _, q := range qs {
		p.THost += q.THost
	}
}
