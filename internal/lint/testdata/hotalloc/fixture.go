// Package fixture exercises the hotalloc analyzer: per-iteration
// allocation shapes in a hot package. Loaded as repro/internal/core.
package fixture

type node struct {
	next *node
	val  int
}

func buildList(n int) *node {
	var head *node
	for i := 0; i < n; i++ {
		head = &node{next: head, val: i} // want "composite literal taken by address in a loop body"
	}
	return head
}

// A value composite is a stack copy, not a heap object.
func valueComposite(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		v := node{val: i}
		total += v.val
	}
	return total
}

func closures(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		f := func() int { return i } // want "function literal in a loop body"
		total += f()
	}
	return total
}

func growVar(n int) []int {
	var xs []int
	for i := 0; i < n; i++ {
		xs = append(xs, i) // want "append in a loop to xs, declared without capacity"
	}
	return xs
}

func growEmptyLit(n int) []int {
	xs := []int{}
	for i := 0; i < n; i++ {
		xs = append(xs, i) // want "append in a loop to xs, declared without capacity"
	}
	return xs
}

func growTwoArgMake(n int) []int {
	xs := make([]int, 0)
	for i := 0; i < n; i++ {
		xs = append(xs, i) // want "append in a loop to xs, declared without capacity"
	}
	return xs
}

// Pre-sized appends never reallocate on the hot path.
func presized(n int) []int {
	xs := make([]int, 0, n)
	for i := 0; i < n; i++ {
		xs = append(xs, i)
	}
	return xs
}

// The caller owns a parameter's capacity.
func fill(xs []int, n int) []int {
	for i := 0; i < n; i++ {
		xs = append(xs, i)
	}
	return xs
}

// Constructors are setup-time by convention.
func newTable(n int) []*node {
	var out []*node
	for i := 0; i < n; i++ {
		out = append(out, &node{val: i})
	}
	return out
}

// An allocation after the loop is not per-iteration.
func afterLoop(n int) *node {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return &node{val: total}
}
