// Package fixture feeds the stale-suppression detector: one ignore
// that suppresses a real fpreduce finding, one that covers nothing.
// Loaded as repro/internal/pm.
package fixture

var total float64

func add(xs []float64) {
	for _, x := range xs {
		//lint:ignore fpreduce fixture: the accumulation is the point of this test
		total += x
	}
}

//lint:ignore fpreduce stale: suppresses nothing and must be reported
func clean() int {
	return 0
}
