// Package fixture seeds violations of the GRAPE-5 host-library
// contract: register-level access to g5.System outside internal/g5,
// and call-order breaches on locally created drivers and systems. The
// test type-checks it under a cmd-layer import path.
package fixture

import (
	g5 "repro/internal/g5"
	"repro/internal/vec"
)

// registerAccess reaches past the library surface into the data path.
func registerAccess(sys *g5.System, x []vec.V3, m []float64, acc []vec.V3, pot []float64) error {
	return sys.Compute(x, x, m, acc, pot) // want "register-level access to g5.System.Compute"
}

// chargeOnly touches the timing-model entry point directly.
func chargeOnly(sys *g5.System) {
	sys.ChargeOnly(8, 1024) // want "register-level access to g5.System.ChargeOnly"
}

// excludeBoard drives fault recovery from outside the guard; the
// blank assignment does not shield the register access.
func excludeBoard(sys *g5.System) {
	_ = sys.SetBoardExcluded(0, true) // want "register-level access to g5.System.SetBoardExcluded"
}

// missingRange uploads j-particles before the fixed-point window is
// defined.
func missingRange(x []vec.V3, m []float64) error {
	d, err := g5.Open(g5.DefaultConfig())
	if err != nil {
		return err
	}
	err = d.SetXMJ(0, x, m) // want "SetXMJ before SetRange"
	_ = d.Close()
	return err
}

// missingLoad requests forces with an empty particle memory.
func missingLoad(x []vec.V3, acc []vec.V3, pot []float64) error {
	d, err := g5.Open(g5.DefaultConfig())
	if err != nil {
		return err
	}
	if err := d.SetRange(-1, 1); err != nil {
		return err
	}
	err = d.CalculateForceOnX(x, acc, pot) // want "CalculateForceOnX before any SetXMJ"
	_ = d.Close()
	return err
}

// useAfterClose touches released hardware.
func useAfterClose(x []vec.V3, m []float64) error {
	d, err := g5.Open(g5.DefaultConfig())
	if err != nil {
		return err
	}
	if err := d.SetRange(-1, 1); err != nil {
		return err
	}
	_ = d.Close()
	return d.SetXMJ(0, x, m) // want "used after Close"
}

// wellOrdered follows the full library sequence and is clean.
func wellOrdered(x []vec.V3, m []float64, acc []vec.V3, pot []float64) error {
	d, err := g5.Open(g5.DefaultConfig())
	if err != nil {
		return err
	}
	if err := d.SetRange(-1, 1); err != nil {
		return err
	}
	if err := d.SetXMJ(0, x, m); err != nil {
		return err
	}
	if err := d.CalculateForceOnX(x, acc, pot); err != nil {
		return err
	}
	return d.Close()
}

// systemOrder computes before the position format exists; the call is
// also register-level, so two findings land on one line.
func systemOrder(x []vec.V3, m []float64, acc []vec.V3, pot []float64) error {
	sys, err := g5.NewSystem(g5.DefaultConfig())
	if err != nil {
		return err
	}
	return sys.Compute(x, x, m, acc, pot) // want "register-level" "Compute before SetScale"
}

// escapes hands the driver to another function: the optimistic tracker
// stops judging (cross-function state is the conformance suite's job).
func escapes(x []vec.V3, m []float64) error {
	d, err := g5.Open(g5.DefaultConfig())
	if err != nil {
		return err
	}
	helper(d)
	return d.SetXMJ(0, x, m)
}

func helper(d *g5.Driver) { _ = d.SetRange(-1, 1) }
