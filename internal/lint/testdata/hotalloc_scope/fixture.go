// Package fixture confirms hotalloc's scope: allocation shapes outside
// the hot packages (here, a cmd package) are unconstrained.
package fixture

type item struct {
	v int
}

func build(n int) []*item {
	var out []*item
	for i := 0; i < n; i++ {
		out = append(out, &item{v: i})
	}
	return out
}
