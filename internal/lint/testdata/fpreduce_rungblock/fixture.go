// Package fixture confirms fpreduce's sanction for the block
// scheduler's rung-assignment reduction. Loaded as
// repro/internal/integrate, where BlockLeapfrog.assignRungs is the
// designated merge point: its go-launched workers accumulate into
// per-worker partials through captured pointers (ownership the
// analyzer cannot prove), and the fold walks the partials in worker
// order. The identical shape on an unsanctioned method is still
// flagged.
package fixture

import "sync"

type rungPartial struct {
	sumDT float64
	count int64
}

type BlockLeapfrog struct {
	partials []rungPartial
	lastSum  float64
}

// assignRungs is on the sanctioned list for repro/internal/integrate:
// each worker owns exactly one rungPartial, so the captured-pointer
// accumulation is single-writer and the worker-order fold below keeps
// the merged telemetry schedule-independent.
func (b *BlockLeapfrog) assignRungs(dts []float64, workers int) {
	if cap(b.partials) < workers {
		b.partials = make([]rungPartial, workers)
	}
	b.partials = b.partials[:workers]
	var wg sync.WaitGroup
	chunk := (len(dts) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(dts) {
			hi = len(dts)
		}
		part := &b.partials[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, dt := range dts[lo:hi] {
				part.sumDT += dt
				part.count++
			}
		}()
	}
	wg.Wait()
	for w := range b.partials {
		b.lastSum += b.partials[w].sumDT
	}
}

// gatherTelemetry is not sanctioned, so the identical captured-pointer
// accumulation inside a go-launched literal is flagged.
func (b *BlockLeapfrog) gatherTelemetry(dts []float64, workers int) {
	b.partials = make([]rungPartial, workers)
	var wg sync.WaitGroup
	chunk := (len(dts) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(dts) {
			hi = len(dts)
		}
		part := &b.partials[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, dt := range dts[lo:hi] {
				part.sumDT += dt // want "float accumulation into part, captured by a go-launched literal"
			}
		}()
	}
	wg.Wait()
}
