// Package fixture seeds ad-hoc float bit manipulation and discarded
// quantisations. The test type-checks it under a physics import path
// outside internal/g5.
package fixture

import (
	"math"

	g5 "repro/internal/g5"
)

// truncate forks the number-format model outside format.go.
func truncate(v float64) float64 {
	b := math.Float64bits(v)                // want "math.Float64bits outside internal/g5/format.go"
	return math.Float64frombits(b &^ 0x3ff) // want "math.Float64frombits outside internal/g5/format.go"
}

// viaHelpers rounds through the sanctioned helper and uses the result.
func viaHelpers(v float64) float64 {
	return g5.RoundMantissa(v, 14)
}

// droppedRound quantises and keeps the full-precision value.
func droppedRound(v float64) {
	g5.RoundMantissa(v, 14) // want "RoundMantissa result discarded"
}

// droppedQuantize does the same through the fixed-point grid.
func droppedQuantize(g g5.FixedGrid, v float64) {
	g.Quantize(v) // want "Quantize result discarded"
}

// usedQuantize is the correct shape.
func usedQuantize(g g5.FixedGrid, v float64) (float64, bool) {
	return g.Quantize(v)
}
