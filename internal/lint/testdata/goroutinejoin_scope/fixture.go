// Package fixture confirms goroutinejoin's scope: a cmd package owns
// its process lifetime and may park a watchdog goroutine forever, so
// nothing here is flagged despite the missing join.
package fixture

func watchdog() {
	go func() {
		select {}
	}()
}
