// Package fixture seeds every span-pairing mistake the obsspan
// analyzer covers, next to the sanctioned idioms.
package fixture

import (
	"errors"

	"repro/internal/obs"
)

var errFail = errors.New("fail")

func work() {}

// deferredIdiom is the canonical span shape.
func deferredIdiom(o *obs.Observer) {
	defer o.Start(obs.PhaseMortonSort).Stop()
	work()
}

// twoStep defers the Stop of an assigned timer.
func twoStep(o *obs.Observer) {
	t := o.Start(obs.PhaseMortonSort)
	defer t.Stop()
	work()
}

// straightLine stops without defer but with no return in between —
// the guard's partial-region idiom.
func straightLine(o *obs.Observer) {
	t := o.Start(obs.PhaseMortonSort)
	work()
	t.Stop()
}

// dropped starts a span and throws the timer away.
func dropped(o *obs.Observer) {
	o.Start(obs.PhaseMortonSort) // want "started and dropped"
	work()
}

// inlineStop stops in the same expression without defer: zero width.
func inlineStop(o *obs.Observer) {
	o.Start(obs.PhaseMortonSort).Stop() // want "measures nothing"
	work()
}

// neverStopped keeps the timer but never ends the span.
func neverStopped(o *obs.Observer) {
	t := o.Start(obs.PhaseMortonSort) // want "never stopped"
	_ = t
	work()
}

// leaks returns between Start and a non-deferred Stop.
func leaks(o *obs.Observer, fail bool) error {
	t := o.Start(obs.PhaseMortonSort) // want "leaks on the return at"
	if fail {
		return errFail
	}
	t.Stop()
	return nil
}

// nestedReturnOK: a return belonging to an inner closure does not leak
// the outer span.
func nestedReturnOK(o *obs.Observer) int {
	t := o.Start(obs.PhaseMortonSort)
	f := func() int { return 1 }
	n := f()
	t.Stop()
	return n
}
