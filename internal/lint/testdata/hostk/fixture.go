// Package fixture seeds the scalar-kernel shapes the hostk analyzer
// polices: hand-rolled inverse-sqrt force loops and per-node MAC
// chains in a physics package outside internal/hostk. The test
// type-checks it under the repro/internal/pm import path (a physics
// package that is neither hostk nor octree).
package fixture

import (
	"math"

	"repro/internal/octree"
	"repro/internal/vec"
)

// scalarForceLoop is the drifted-copy pattern the kernels package
// replaces: its inner loop re-implements the softened P2P kernel.
func scalarForceLoop(pi vec.V3, jpos []vec.V3, jmass []float64, eps2 float64) (acc vec.V3, pot float64) {
	for j := range jpos {
		d := jpos[j].Sub(pi)
		r2 := d.Dot(d) + eps2
		inv := 1 / math.Sqrt(r2) // want "scalar inverse-sqrt force kernel outside internal/hostk"
		inv3 := inv / r2
		acc = acc.Add(d.Scale(jmass[j] * inv3))
		pot -= jmass[j] * inv
	}
	return acc, pot
}

// parenthesised still matches through ast.Unparen.
func parenthesised(r2 float64) float64 {
	return (1) / (math.Sqrt(r2)) // want "scalar inverse-sqrt force kernel outside internal/hostk"
}

// halfOverSqrt is NOT the kernel signature (numerator != 1) and a
// plain Sqrt without the reciprocal is ordinary math; neither fires.
func halfOverSqrt(r2 float64) (float64, float64) {
	return 0.5 / math.Sqrt(r2), math.Sqrt(r2)
}

// scalarMACWalk evaluates the opening criterion node by node — the
// pre-batch walk shape.
func scalarMACWalk(mac octree.OpenCriterion, nodes []octree.Node, p vec.V3) int {
	accepted := 0
	for i := range nodes {
		if mac.Accept(&nodes[i], p.Dist2(nodes[i].COM)) { // want "per-node OpenCriterion.Accept outside internal/hostk"
			accepted++
		}
	}
	return accepted
}

// sanctionedReference shows the suppression idiom for the counterfactual
// reference paths; no diagnostic may fire here.
func sanctionedReference(mac octree.OpenCriterion, n *octree.Node, d2, r2 float64) (bool, float64) {
	//lint:ignore hostk reference walk kept scalar on purpose
	ok := mac.Accept(n, d2)
	//lint:ignore hostk retired-loop conformance reference
	inv := 1 / math.Sqrt(r2)
	return ok, inv
}
