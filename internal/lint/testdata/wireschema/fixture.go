// Package fixture exercises the wireschema analyzer: json-tag
// discipline and float-finiteness on structs that reach encoding/json.
// Loaded as repro/internal/serve, a wire package.
package fixture

import (
	"encoding/json"
	"io"
	"math"
	"time"

	"repro/internal/octree"
)

// writeJSON mirrors the server's helper: the fixpoint must attribute
// its v parameter back to the concrete types at call sites.
func writeJSON(w io.Writer, v any) {
	_ = json.NewEncoder(w).Encode(v)
}

// Resp reaches json only through writeJSON.
type Resp struct {
	Name  string `json:"name"`
	Count int    // want "exported field Resp.Count has no json tag"
}

func handler(w io.Writer) {
	writeJSON(w, &Resp{Name: "x"})
}

// Metric's Rate is fed an unguarded division: x/y can be NaN or Inf.
type Metric struct {
	Rate float64 `json:"rate"`
}

func build(x, y float64) Metric {
	var m Metric
	m.Rate = x / y // want "float field Metric.Rate can reach encoding/json carrying NaN or Inf"
	return m
}

func emitMetric() []byte {
	m := build(1, 2)
	b, _ := json.Marshal(m)
	return b
}

// Spec.Theta is witnessed: it flows through a finiteness guard.
type Spec struct {
	Theta float64 `json:"theta"`
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

func validate(s Spec) bool {
	return finite(s.Theta)
}

func setTheta(s *Spec, v float64) {
	s.Theta = v
}

func emitSpec() []byte {
	b, _ := json.Marshal(Spec{Theta: 0.5})
	return b
}

// State polices its own fields in a guard method (the checkpoint
// stateFinite pattern): every field it reads is witnessed.
type State struct {
	T float64 `json:"t"`
}

func (st *State) finiteAll() bool {
	for _, v := range []float64{st.T} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

func setT(st *State, v float64) {
	st.T = v
}

func emitState(v float64) []byte {
	st := &State{}
	setT(st, v)
	if !st.finiteAll() {
		return nil
	}
	b, _ := json.Marshal(st)
	return b
}

// Report's floats come only from admissible sources: duration
// conversions, integer conversions, sums and literal-denominator
// division.
type Report struct {
	Wall float64 `json:"wall"`
	N    float64 `json:"n"`
	Half float64 `json:"half"`
}

func buildReport(d time.Duration, n int) Report {
	return Report{
		Wall: d.Seconds(),
		N:    float64(n),
		Half: float64(n) / 2,
	}
}

func emitReport(d time.Duration, n int) []byte {
	r := buildReport(d, n)
	b, _ := json.Marshal(r)
	return b
}

// Inbound is decode-only: inbound floats are the handler's problem,
// not the encoder's.
type Inbound struct {
	Raw float64 `json:"raw"`
}

func parse(b []byte) (Inbound, error) {
	var in Inbound
	err := json.Unmarshal(b, &in)
	return in, err
}

func setRaw(in *Inbound, v float64) {
	in.Raw = v
}

// Skipped fields never reach the wire.
type WithSkip struct {
	Kept float64 `json:"kept"`
	Temp float64 `json:"-"`
}

func buildSkip(n int, v float64) WithSkip {
	var s WithSkip
	s.Kept = float64(n)
	s.Temp = v
	return s
}

func emitSkip(v float64) []byte {
	s := buildSkip(1, v)
	b, _ := json.Marshal(s)
	return b
}

// Custom marshals itself: its struct layout is not the wire shape.
type Custom struct {
	Weird float64
}

func (c Custom) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.Weird)
}

func emitCustom() []byte {
	b, _ := json.Marshal(Custom{Weird: math.Inf(1)})
	return b
}

// Snapshot embeds a cross-package repro type on the wire: its fields
// must be tagged at their declaration.
type Snapshot struct {
	Group octree.Group `json:"group"` // want "untagged exported field Node" "untagged exported field Start" "untagged exported field Count"
}
