// Package fixture holds the same scalar-kernel shapes the hostk
// analyzer flags elsewhere, type-checked under the
// repro/internal/hostk import path: the kernels package is where the
// scalar references legitimately live, so nothing may fire.
package fixture

import (
	"math"

	"repro/internal/octree"
	"repro/internal/vec"
)

// referenceKernel is the retired scalar loop the conformance suite
// compares against; inside hostk it is sanctioned as-is.
func referenceKernel(pi vec.V3, jpos []vec.V3, jmass []float64, eps2 float64) (acc vec.V3, pot float64) {
	for j := range jpos {
		d := jpos[j].Sub(pi)
		r2 := d.Dot(d) + eps2
		inv := 1 / math.Sqrt(r2)
		acc = acc.Add(d.Scale(jmass[j] * inv / r2))
		pot -= jmass[j] * inv
	}
	return acc, pot
}

// referenceMAC is the per-node criterion the batch kernel is verified
// against.
func referenceMAC(mac octree.OpenCriterion, n *octree.Node, p vec.V3) bool {
	return mac.Accept(n, p.Dist2(n.COM))
}
