// Package fixture exercises path scoping: the constructs the
// nondeterminism analyzer flags in physics packages are legal in the
// cmd layer, where randomness cannot perturb particle state. The test
// type-checks it under a non-physics import path and expects zero
// findings.
package fixture

import (
	"math/rand"
	"time"
)

// Jitter is fine outside the physics set.
func Jitter() float64 { return rand.Float64() }

// Stamp is fine outside the physics set.
func Stamp() int64 { return time.Now().UnixNano() }

// Sum may iterate a map outside the physics set.
func Sum(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
