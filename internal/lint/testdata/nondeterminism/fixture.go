// Package fixture seeds every violation class the nondeterminism
// analyzer covers, next to the sanctioned spelling of each. The test
// type-checks it under a physics import path.
package fixture

import (
	"math/rand"
	"sync"
	"time"
)

// seedFromClock lets the wall clock flow into simulation state.
func seedFromClock() int64 {
	t := time.Now() // want "time.Now in a physics package"
	return t.UnixNano()
}

// measureOnly is the sanctioned telemetry shape: the timestamp feeds
// nothing but a duration.
func measureOnly() time.Duration {
	t := time.Now()
	return time.Since(t)
}

// subOnly measures with Time.Sub, the other allowed use.
func subOnly(end time.Time) time.Duration {
	t := time.Now()
	return end.Sub(t)
}

// globalRand draws from the process-global generator.
func globalRand() float64 {
	return rand.Float64() // want "global math/rand Float64"
}

// localRand draws from an explicitly seeded local generator.
func localRand() float64 {
	r := rand.New(rand.NewSource(1))
	return r.Float64()
}

// mapOrder accumulates in map-iteration order.
func mapOrder(m map[int]float64) float64 {
	var s float64
	for _, v := range m { // want "map iteration in a physics package"
		s += v
	}
	return s
}

// sortedOrder iterates a key slice: deterministic.
func sortedOrder(keys []int, m map[int]float64) float64 {
	var s float64
	for _, k := range keys {
		s += m[k]
	}
	return s
}

// collectUnordered appends from goroutines: completion order decides
// element order even under the mutex.
func collectUnordered(n int) []float64 {
	var out []float64
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mu.Lock()
			out = append(out, float64(i)) // want "appends to shared slice out"
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	return out
}

// collectIndexed writes each result to its own slot: deterministic.
func collectIndexed(n int) []float64 {
	out := make([]float64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = float64(i)
		}(i)
	}
	wg.Wait()
	return out
}
