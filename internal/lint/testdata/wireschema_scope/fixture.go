// Package fixture confirms wireschema's scope: repro/internal/pm is
// not a wire package, so an untagged marshaled struct is someone
// else's problem (nothing here crosses a service boundary).
package fixture

import "encoding/json"

type Dump struct {
	Value float64
}

func emit(v float64) []byte {
	b, _ := json.Marshal(Dump{Value: v})
	return b
}
