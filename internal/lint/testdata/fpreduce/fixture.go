// Package fixture exercises the fpreduce analyzer: order-dependent
// floating-point accumulation through goroutine captures, map ranges
// and package-level state. Loaded as repro/internal/pm, a scoped
// physics package with no sanctioned-helper list.
package fixture

import "sync"

var runningTotal float64

func intoPackageLevel(xs []float64) {
	for _, x := range xs {
		runningTotal += x // want "float accumulation into package-level runningTotal"
	}
}

func capturedByGoroutine(xs []float64) float64 {
	var sum float64
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(x float64) {
			defer wg.Done()
			sum += x // want "float accumulation into sum, captured by a go-launched literal"
		}(x)
	}
	wg.Wait()
	return sum
}

// The x = x + y spelling is the same accumulation.
func capturedSpelledOut(xs []float64) float64 {
	var sum float64
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(x float64) {
			defer wg.Done()
			sum = sum + x // want "captured by a go-launched literal"
		}(x)
	}
	wg.Wait()
	return sum
}

// Indexed per-worker slots are the sanctioned idiom: one writer per
// slot, merged deterministically afterwards.
func perWorkerSlots(xs []float64, workers int) float64 {
	partial := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(xs); i += workers {
				partial[w] += xs[i]
			}
		}(w)
	}
	wg.Wait()
	var sum float64
	for _, p := range partial {
		sum += p
	}
	return sum
}

// A local accumulation declared inside the goroutine is per-goroutine
// state, not a capture.
func localInsideGoroutine(xs []float64, out chan<- float64) {
	go func() {
		var local float64
		for _, x := range xs {
			local += x
		}
		out <- local
	}()
}

func mapRange(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "float accumulation inside a range over a map"
	}
	return sum
}

// Keyed writes inside a map range are per-key, hence order-free.
func mapRekey(m map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for k, v := range m {
		out[k] += v
	}
	return out
}

// Integer accumulation is associative: not fpreduce's business.
func intSum(xs []int) int {
	var wg sync.WaitGroup
	total := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, x := range xs {
			total += x
		}
	}()
	wg.Wait()
	return total
}
