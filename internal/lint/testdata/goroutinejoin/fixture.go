// Package fixture exercises the goroutinejoin analyzer: every go
// statement needs provable join evidence in its body (or one level into
// in-package callees). Loaded as repro/internal/pm, a join-scoped
// physics package.
package fixture

import (
	"context"
	"sync"
)

func leaks(stop chan struct{}) {
	go func() { // want "goroutine has no provable join path"
		for {
			select {
			case <-stop:
			default:
			}
		}
	}()
}

func waitGroupJoin(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// A deferred closure's wg.Done still counts: nested literals are
// scanned.
func nestedDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer func() {
			wg.Done()
		}()
	}()
	wg.Wait()
}

func channelSendJoin(out chan int) {
	go func() {
		out <- 1
	}()
}

func channelCloseJoin() <-chan int {
	ch := make(chan int)
	go func() {
		close(ch)
	}()
	return ch
}

func rangeJoin(in <-chan int) {
	go func() {
		for range in {
		}
	}()
}

func contextJoin(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// worker carries its own join evidence, so spawning it by name is fine.
func worker(wg *sync.WaitGroup) {
	defer wg.Done()
}

func namedSpawn() {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(&wg)
	wg.Wait()
}

// parkForever has no join evidence of any kind.
func parkForever() {
	select {}
}

func namedLeak() {
	go parkForever() // want "goroutine has no provable join path"
}

// evidence one level into an in-package callee is followed.
func signal(done chan struct{}) {
	close(done)
}

func indirectJoin(done chan struct{}) {
	go func() {
		signal(done)
	}()
}

// A function value is opaque: the analyzer cannot prove a join.
func opaque(f func()) {
	go f() // want "goroutine body is not analyzable"
}
