// Package fixture exercises the lockdiscipline analyzer: mutexes held
// across blocking operations (channels, sleeps, selects, transitive
// in-package calls) and inconsistent acquisition order. The analyzer is
// not path-scoped, so the fixture loads as repro/cmd/fixture.
package fixture

import (
	"sync"
	"time"
)

type box struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	cond *sync.Cond
	ch   chan int
	n    int
}

func (b *box) sendWhileHeld() {
	b.mu.Lock()
	b.ch <- 1 // want "held across channel send"
	b.mu.Unlock()
}

func (b *box) recvWhileHeld() {
	b.mu.Lock()
	defer b.mu.Unlock()
	<-b.ch // want "held across channel receive"
}

func (b *box) sleepWhileHeld() {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want "held across time.Sleep"
	b.mu.Unlock()
}

func (b *box) rlockWhileHeld() {
	b.rw.RLock()
	defer b.rw.RUnlock()
	time.Sleep(time.Millisecond) // want "held across time.Sleep"
}

func (b *box) selectWhileHeld() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want "held across select without default"
	case v := <-b.ch:
		b.n = v
	case b.ch <- b.n:
	}
}

// A select with a default is a non-blocking poll: fine under the lock.
func (b *box) pollWhileHeld() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case v := <-b.ch:
		b.n = v
	default:
	}
}

// Releasing before blocking is the required shape.
func (b *box) releaseFirst() {
	b.mu.Lock()
	n := b.n
	b.mu.Unlock()
	time.Sleep(time.Duration(n))
}

// sync.Cond.Wait releases the associated mutex while parked.
func (b *box) condWait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.n == 0 {
		b.cond.Wait()
	}
}

// napHelper blocks, so holding the lock across a call to it is the same
// violation one level removed.
func napHelper() {
	time.Sleep(time.Millisecond)
}

func (b *box) transitive() {
	b.mu.Lock()
	napHelper() // want "held across call to napHelper, which blocks on time.Sleep"
	b.mu.Unlock()
}

// A spawn hands the blocking work to another goroutine: not held.
func (b *box) spawnWhileHeld() {
	b.mu.Lock()
	defer b.mu.Unlock()
	go napHelper()
}

// A deferred-closure unlock extends the span to the block end.
func (b *box) deferredClosure() {
	b.mu.Lock()
	defer func() {
		b.mu.Unlock()
	}()
	time.Sleep(time.Millisecond) // want "held across time.Sleep"
}

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) forward() {
	p.a.Lock()
	p.b.Lock() // want "inconsistent lock order"
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) backward() {
	p.b.Lock()
	p.a.Lock() // want "inconsistent lock order"
	p.a.Unlock()
	p.b.Unlock()
}

// consistent nests the same pair in the forward direction only — the
// edge exists but participates in no cycle by itself.
type other struct {
	x sync.Mutex
	y sync.Mutex
}

func (o *other) first() {
	o.x.Lock()
	o.y.Lock()
	o.y.Unlock()
	o.x.Unlock()
}

func (o *other) second() {
	o.x.Lock()
	o.y.Lock()
	o.y.Unlock()
	o.x.Unlock()
}
