// Package fixture stands in for internal/g5's format.go: bit
// manipulation is this file's charter, so the analyzer must stay
// silent. The test type-checks it under the internal/g5 import path
// with this file name.
package fixture

import "math"

// round clears the low mantissa bit the way the real helpers do.
func round(v float64) float64 {
	return math.Float64frombits(math.Float64bits(v) &^ 1)
}
