// Package fixture seeds discarded errors on the hardware and
// simulation surfaces, next to the sanctioned handling shapes and the
// suppression directive.
package fixture

import (
	"fmt"

	grape5 "repro"
	g5 "repro/internal/g5"
)

// discarded drops the error of a watched call in statement position.
func discarded(d *g5.Driver, eps float64) {
	d.SetEpsToAll(eps) // want "error from Driver.SetEpsToAll discarded"
}

// deferredClose hides a Close failure behind defer.
func deferredClose(sim *grape5.Simulation) {
	defer sim.Close() // want "defer discards the error from Simulation.Close"
}

// goClose loses the error on a goroutine boundary.
func goClose(d *g5.Driver) {
	go d.Close() // want "error from Driver.Close discarded"
}

// blankFault throws away the typed fault classification.
func blankFault(herr *g5.HardwareError) {
	_ = herr // want "HardwareError dropped into _"
}

// handled propagates: the correct shape.
func handled(d *g5.Driver, eps float64) error {
	return d.SetEpsToAll(eps)
}

// sanctioned uses the explicit blank assignment with a justification.
func sanctioned(d *g5.Driver) {
	// Close of the emulated driver cannot fail (see g5/driver.go).
	_ = d.Close()
}

// suppressed demonstrates the in-place ignore directive.
func suppressed(d *g5.Driver, eps float64) {
	//lint:ignore errdiscipline fixture demonstrates the suppression policy
	d.SetEpsToAll(eps)
}

// unwatched packages keep their usual rules: fmt's error is droppable.
func unwatched() {
	fmt.Println("ok")
}
