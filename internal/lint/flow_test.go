package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
)

// writeFlowFixture materializes one-off sources for Flow fact tests.
func writeFlowFixture(t *testing.T, src string) (*lint.Loader, *lint.Package) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader := lint.NewLoader("")
	files, err := loader.ParseFiles(dir, []string{"fixture.go"})
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Check("repro/cmd/fixture", files)
	if err != nil {
		t.Fatal(err)
	}
	return loader, pkg
}

func findFunc(t *testing.T, flow *lint.Flow, name string) *lint.FlowFunc {
	t.Helper()
	for _, fn := range flow.Funcs {
		if fn.Name == name {
			return fn
		}
	}
	t.Fatalf("function %s not found in flow store", name)
	return nil
}

// TestFlowBlockingTransitive: blocking facts propagate through
// in-package call chains and resolve recursion to non-blocking.
func TestFlowBlockingTransitive(t *testing.T) {
	_, pkg := writeFlowFixture(t, `package fixture

import "time"

func nap() { time.Sleep(time.Millisecond) }

func mid() { nap() }

func top() { mid() }

func pure(n int) int {
	if n <= 0 {
		return 0
	}
	return pure(n - 1)
}

func spawner() { go nap() }

func poller(ch chan int) {
	select {
	case <-ch:
	default:
	}
}
`)
	flow := lint.NewFlow(pkg)
	for name, wantBlocks := range map[string]bool{
		"nap": true, "mid": true, "top": true,
		"pure": false, "spawner": false, "poller": false,
	} {
		_, blocks := flow.Blocking(findFunc(t, flow, name))
		if blocks != wantBlocks {
			t.Errorf("Blocking(%s) = %v, want %v", name, blocks, wantBlocks)
		}
	}
	if why, _ := flow.Blocking(findFunc(t, flow, "top")); why == "" {
		t.Error("transitive blocking reason is empty")
	}
}

// TestFlowGoSpawned: literal and named spawn targets are both mapped.
func TestFlowGoSpawned(t *testing.T) {
	_, pkg := writeFlowFixture(t, `package fixture

func body() {}

func launch(done chan struct{}) {
	go body()
	go func() {
		close(done)
	}()
}
`)
	flow := lint.NewFlow(pkg)
	spawned := flow.GoSpawned()
	if len(spawned) != 2 {
		t.Fatalf("GoSpawned: want 2 entries, got %d", len(spawned))
	}
	var names []string
	for fn, g := range spawned {
		if g == nil {
			t.Errorf("%s mapped to nil go statement", fn.Name)
		}
		names = append(names, fn.Name)
	}
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	if !found["body"] || !found["function literal"] {
		t.Errorf("GoSpawned targets = %v, want body and a literal", names)
	}
}

// TestFlowJSONTypes: direct marshal/unmarshal arguments and values
// routed through an in-package helper are both attributed.
func TestFlowJSONTypes(t *testing.T) {
	_, pkg := writeFlowFixture(t, `package fixture

import (
	"encoding/json"
	"io"
)

type Direct struct{ A int }

type Routed struct{ B int }

type In struct{ C int }

type Unrelated struct{ D int }

func helper(w io.Writer, v any) {
	_ = json.NewEncoder(w).Encode(v)
}

func use(w io.Writer, b []byte) {
	_, _ = json.Marshal(Direct{})
	helper(w, &Routed{})
	var in In
	_ = json.Unmarshal(b, &in)
}
`)
	flow := lint.NewFlow(pkg)
	marshal, unmarshal := flow.JSONTypes()
	wantMarshal := map[string]bool{"Direct": true, "Routed": true}
	wantUnmarshal := map[string]bool{"In": true}
	gotMarshal := map[string]bool{}
	for n := range marshal {
		gotMarshal[n.Obj().Name()] = true
	}
	gotUnmarshal := map[string]bool{}
	for n := range unmarshal {
		gotUnmarshal[n.Obj().Name()] = true
	}
	for n := range wantMarshal {
		if !gotMarshal[n] {
			t.Errorf("marshal set missing %s (got %v)", n, gotMarshal)
		}
	}
	for n := range wantUnmarshal {
		if !gotUnmarshal[n] {
			t.Errorf("unmarshal set missing %s (got %v)", n, gotUnmarshal)
		}
	}
	if gotMarshal["Unrelated"] || gotUnmarshal["Unrelated"] {
		t.Error("Unrelated must not reach either json set")
	}
	if gotMarshal["In"] {
		t.Error("decode-only type In must not be in the marshal set")
	}
}

// TestFlowParentsShared: the parent map is built once per file and the
// same map is handed back on reuse.
func TestFlowParentsShared(t *testing.T) {
	_, pkg := writeFlowFixture(t, `package fixture

func f() {}
`)
	flow := lint.NewFlow(pkg)
	p1 := flow.Parents(pkg.Files[0])
	p2 := flow.Parents(pkg.Files[0])
	if len(p1) == 0 {
		t.Fatal("empty parents map")
	}
	// Mutating one must show in the other iff it is the same map.
	sentinel := pkg.Files[0]
	p1[sentinel.Name] = sentinel
	if _, ok := p2[sentinel.Name]; !ok {
		t.Fatal("Parents rebuilt the map instead of caching it")
	}
	delete(p1, sentinel.Name)
}
