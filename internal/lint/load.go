package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader lists, parses and type-checks packages of the enclosing Go
// module using only the standard toolchain: metadata and compiled
// export data come from `go list -export`, and imports are resolved
// through go/importer's gc reader with a lookup into that export map —
// no third-party loader, which keeps the module dependency-free.
type Loader struct {
	// Dir is the directory `go list` runs in (the module root or any
	// directory inside it). Empty means the current directory.
	Dir string

	// Exports, when set, resolves an import path to an export data
	// file before `go list` is consulted — the vet-tool protocol hands
	// grapelint a ready-made import map this plugs in.
	Exports func(path string) string

	Fset *token.FileSet

	mu      sync.Mutex
	exports map[string]string // import path -> export data file
	imp     types.ImporterFrom
}

// NewLoader returns a loader rooted at dir.
func NewLoader(dir string) *Loader {
	return &Loader{Dir: dir, Fset: token.NewFileSet(), exports: map[string]string{}}
}

// goPkg is the subset of `go list -json` output the loader consumes.
type goPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	DepOnly    bool
	Export     string
	GoFiles    []string
	Error      *struct{ Err string }
}

// goList runs `go list -export -json` with the given extra arguments
// and decodes the JSON stream.
func (l *Loader) goList(args ...string) ([]*goPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-export", "-json"}, args...)...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*goPkg
	for {
		p := new(goPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// register records the export data files of the listed packages.
func (l *Loader) register(pkgs []*goPkg) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, p := range pkgs {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
}

// lookup resolves an import path to its export data for the gc
// importer, listing the package on demand when it was not part of the
// original closure (e.g. a stdlib package only a test fixture imports).
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	if l.Exports != nil {
		if file := l.Exports(path); file != "" {
			return os.Open(file)
		}
	}
	l.mu.Lock()
	file := l.exports[path]
	l.mu.Unlock()
	if file == "" {
		pkgs, err := l.goList(path)
		if err != nil {
			return nil, fmt.Errorf("lint: resolving import %q: %w", path, err)
		}
		l.register(pkgs)
		l.mu.Lock()
		file = l.exports[path]
		l.mu.Unlock()
	}
	if file == "" {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(file)
}

// importer returns the shared gc-export-data importer.
func (l *Loader) importer() types.ImporterFrom {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.imp == nil {
		l.imp = importer.ForCompiler(l.Fset, "gc", l.lookup).(types.ImporterFrom)
	}
	return l.imp
}

// Load lists the packages matching the patterns, registers the export
// data of their full dependency closure, and parses and type-checks
// each matched (non-dependency) package from source. Test files are
// not loaded: the analyzers police production code; tests exercise
// hardware misuse on purpose.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := l.goList(append([]string{"-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	l.register(listed)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := l.check(p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// ParseFiles parses the given files (with comments, for ignore
// directives) into the loader's FileSet.
func (l *Loader) ParseFiles(dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Check type-checks already-parsed files as the package at importPath.
// The fixture harness uses it to type-check testdata packages under a
// chosen import path so path-scoped analyzers apply.
func (l *Loader) Check(importPath string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.importer()}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// check parses and type-checks one listed package from source.
func (l *Loader) check(importPath, dir string, goFiles []string) (*Package, error) {
	files, err := l.ParseFiles(dir, goFiles)
	if err != nil {
		return nil, err
	}
	return l.Check(importPath, files)
}
