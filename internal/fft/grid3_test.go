package fft

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/rng"
)

func TestNewGrid3RejectsNonPow2(t *testing.T) {
	if _, err := NewGrid3(6); err == nil {
		t.Error("NewGrid3(6) should fail")
	}
}

func TestGrid3Indexing(t *testing.T) {
	g, err := NewGrid3(4)
	if err != nil {
		t.Fatal(err)
	}
	g.Set(1, 2, 3, 5+6i)
	if g.At(1, 2, 3) != 5+6i {
		t.Error("Set/At mismatch")
	}
	if g.Idx(1, 2, 3) != (1*4+2)*4+3 {
		t.Errorf("Idx = %d", g.Idx(1, 2, 3))
	}
}

func TestGrid3RoundTrip(t *testing.T) {
	g, _ := NewGrid3(8)
	r := rng.New(2)
	orig := make([]complex128, len(g.Data))
	for i := range g.Data {
		g.Data[i] = complex(r.Normal(), r.Normal())
		orig[i] = g.Data[i]
	}
	g.Forward()
	g.Inverse()
	for i := range g.Data {
		if cmplx.Abs(g.Data[i]-orig[i]) > 1e-9 {
			t.Fatalf("3D round trip failed at %d", i)
		}
	}
}

func TestGrid3SingleMode(t *testing.T) {
	// A single Fourier mode on the grid must inverse-transform to the
	// corresponding plane wave.
	const n = 8
	g, _ := NewGrid3(n)
	kx, ky, kz := 1, 2, 3
	g.Set(kx, ky, kz, complex(float64(n*n*n), 0))
	g.Inverse()
	for ix := 0; ix < n; ix++ {
		for iy := 0; iy < n; iy++ {
			for iz := 0; iz < n; iz++ {
				phase := 2 * math.Pi * (float64(kx*ix) + float64(ky*iy) + float64(kz*iz)) / n
				s, c := math.Sincos(phase)
				want := complex(c, s)
				if cmplx.Abs(g.At(ix, iy, iz)-want) > 1e-9 {
					t.Fatalf("plane wave mismatch at (%d,%d,%d): %v vs %v",
						ix, iy, iz, g.At(ix, iy, iz), want)
				}
			}
		}
	}
}

func TestFreqIndex(t *testing.T) {
	cases := []struct{ i, n, want int }{
		{0, 8, 0}, {1, 8, 1}, {3, 8, 3}, {4, 8, -4}, {5, 8, -3}, {7, 8, -1},
	}
	for _, c := range cases {
		if got := FreqIndex(c.i, c.n); got != c.want {
			t.Errorf("FreqIndex(%d,%d) = %d, want %d", c.i, c.n, got, c.want)
		}
	}
}

func TestConjIndex(t *testing.T) {
	for _, n := range []int{4, 8} {
		for i := 0; i < n; i++ {
			c := ConjIndex(i, n)
			if (i+c)%n != 0 {
				t.Errorf("ConjIndex(%d,%d)=%d is not -i mod n", i, n, c)
			}
			if ConjIndex(c, n) != i {
				t.Errorf("ConjIndex not involutive at %d", i)
			}
		}
	}
}

func TestIsSelfConjugate(t *testing.T) {
	if !IsSelfConjugate(0, 0, 0, 8) {
		t.Error("DC mode should be self-conjugate")
	}
	if !IsSelfConjugate(4, 4, 4, 8) {
		t.Error("Nyquist corner should be self-conjugate")
	}
	if IsSelfConjugate(1, 0, 0, 8) {
		t.Error("(1,0,0) should not be self-conjugate")
	}
}

func TestEnforceHermitianGivesRealField(t *testing.T) {
	const n = 8
	g, _ := NewGrid3(n)
	r := rng.New(3)
	for i := range g.Data {
		g.Data[i] = complex(r.Normal(), r.Normal())
	}
	g.EnforceHermitian()
	// Verify symmetry directly.
	for ix := 0; ix < n; ix++ {
		for iy := 0; iy < n; iy++ {
			for iz := 0; iz < n; iz++ {
				a := g.At(ix, iy, iz)
				b := g.At(ConjIndex(ix, n), ConjIndex(iy, n), ConjIndex(iz, n))
				if cmplx.Abs(a-cmplx.Conj(b)) > 1e-12 {
					t.Fatalf("not Hermitian at (%d,%d,%d)", ix, iy, iz)
				}
			}
		}
	}
	g.Inverse()
	if mi := g.MaxImag(); mi > 1e-10 {
		t.Errorf("inverse of Hermitian grid has imaginary parts up to %v", mi)
	}
}

func TestMaxImag(t *testing.T) {
	g, _ := NewGrid3(2)
	g.Set(0, 0, 0, 1+0.5i)
	g.Set(1, 1, 1, 1-2i)
	if g.MaxImag() != 2 {
		t.Errorf("MaxImag = %v", g.MaxImag())
	}
}
