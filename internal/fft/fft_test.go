package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 6, 1023} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestNewPlanRejectsNonPow2(t *testing.T) {
	if _, err := NewPlan(12); err == nil {
		t.Error("NewPlan(12) should fail")
	}
	if _, err := NewPlan(0); err == nil {
		t.Error("NewPlan(0) should fail")
	}
}

func TestForwardKnownDFT(t *testing.T) {
	// Impulse transforms to all-ones.
	x := make([]complex128, 8)
	x[0] = 1
	MustPlan(8).Forward(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("impulse FFT[%d] = %v, want 1", i, v)
		}
	}
	// Constant transforms to N at k=0.
	for i := range x {
		x[i] = 2
	}
	MustPlan(8).Forward(x)
	if cmplx.Abs(x[0]-16) > 1e-12 {
		t.Errorf("DC bin = %v, want 16", x[0])
	}
	for i := 1; i < 8; i++ {
		if cmplx.Abs(x[i]) > 1e-12 {
			t.Errorf("bin %d = %v, want 0", i, x[i])
		}
	}
}

func TestSingleModeFrequency(t *testing.T) {
	// x[n] = exp(2πi·3n/16) must transform to a spike at k=3 of height 16.
	const n, k = 16, 3
	x := make([]complex128, n)
	for i := range x {
		s, c := math.Sincos(2 * math.Pi * k * float64(i) / n)
		x[i] = complex(c, s)
	}
	MustPlan(n).Forward(x)
	for i := range x {
		want := complex128(0)
		if i == k {
			want = n
		}
		if cmplx.Abs(x[i]-want) > 1e-10 {
			t.Errorf("bin %d = %v, want %v", i, x[i], want)
		}
	}
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	const n = 32
	r := rng.New(1)
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.Normal(), r.Normal())
	}
	want := naiveDFT(x)
	MustPlan(n).Forward(x)
	for i := range x {
		if cmplx.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("bin %d: fft %v vs naive %v", i, x[i], want[i])
		}
	}
}

func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			s, c := math.Sincos(-2 * math.Pi * float64(k*j) / float64(n))
			sum += x[j] * complex(c, s)
		}
		out[k] = sum
	}
	return out
}

func TestInverseRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 8, 64, 256} {
		r := rng.New(uint64(n))
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.Normal(), r.Normal())
			orig[i] = x[i]
		}
		p := MustPlan(n)
		p.Forward(x)
		p.Inverse(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-10 {
				t.Fatalf("n=%d round trip failed at %d: %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

// Property: Parseval's theorem Σ|x|² = (1/N) Σ|X|².
func TestParsevalProperty(t *testing.T) {
	p := MustPlan(64)
	f := func(seed uint64) bool {
		r := rng.New(seed)
		x := make([]complex128, 64)
		var timeE float64
		for i := range x {
			x[i] = complex(r.Normal(), r.Normal())
			timeE += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		p.Forward(x)
		var freqE float64
		for i := range x {
			freqE += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		return math.Abs(timeE-freqE/64) < 1e-8*(1+timeE)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: linearity F(a·x + y) = a·F(x) + F(y).
func TestLinearityProperty(t *testing.T) {
	p := MustPlan(32)
	f := func(seed uint64, a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			a = 1
		}
		a = math.Mod(a, 100)
		r := rng.New(seed)
		x := make([]complex128, 32)
		y := make([]complex128, 32)
		comb := make([]complex128, 32)
		for i := range x {
			x[i] = complex(r.Normal(), r.Normal())
			y[i] = complex(r.Normal(), r.Normal())
			comb[i] = complex(a, 0)*x[i] + y[i]
		}
		p.Forward(x)
		p.Forward(y)
		p.Forward(comb)
		for i := range comb {
			want := complex(a, 0)*x[i] + y[i]
			if cmplx.Abs(comb[i]-want) > 1e-8*(1+cmplx.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestForwardPanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Forward with wrong length did not panic")
		}
	}()
	MustPlan(8).Forward(make([]complex128, 4))
}

func TestConvenienceWrappers(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	orig := append([]complex128(nil), x...)
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	if err := Inverse(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-12 {
			t.Errorf("wrapper round trip failed at %d", i)
		}
	}
	if err := Forward(make([]complex128, 3)); err == nil {
		t.Error("Forward of non-pow2 should error")
	}
	if err := Inverse(make([]complex128, 3)); err == nil {
		t.Error("Inverse of non-pow2 should error")
	}
}
