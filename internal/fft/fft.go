// Package fft implements the fast Fourier transforms needed by the
// cosmological initial-condition generator: an iterative radix-2
// complex FFT, multidimensional transforms over 3-D grids, and helpers
// for Hermitian-symmetric (real-field) mode filling.
//
// Conventions: Forward computes X[k] = Σ_n x[n] exp(-2πi kn/N) with no
// normalisation; Inverse computes x[n] = (1/N) Σ_k X[k] exp(+2πi kn/N),
// so Inverse(Forward(x)) == x.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// twiddleCache caches the complex roots of unity for a given size so
// repeated transforms of the same length avoid recomputing sincos.
type twiddleCache struct {
	n int
	w []complex128 // w[j] = exp(-2πi j / n), j in [0, n/2)
}

func newTwiddles(n int) *twiddleCache {
	w := make([]complex128, n/2)
	for j := range w {
		s, c := math.Sincos(-2 * math.Pi * float64(j) / float64(n))
		w[j] = complex(c, s)
	}
	return &twiddleCache{n: n, w: w}
}

// Plan holds precomputed twiddle factors for transforms of length N.
// A Plan is safe for concurrent use once constructed.
type Plan struct {
	n  int
	tw *twiddleCache
}

// NewPlan creates a plan for transforms of length n. n must be a
// positive power of two.
func NewPlan(n int) (*Plan, error) {
	if !IsPow2(n) {
		return nil, fmt.Errorf("fft: length %d is not a positive power of two", n)
	}
	return &Plan{n: n, tw: newTwiddles(n)}, nil
}

// MustPlan is NewPlan that panics on error; for lengths known at
// compile time.
func MustPlan(n int) *Plan {
	p, err := NewPlan(n)
	if err != nil {
		panic(err)
	}
	return p
}

// Len returns the transform length of the plan.
func (p *Plan) Len() int { return p.n }

// Forward transforms x in place (length must equal the plan length).
func (p *Plan) Forward(x []complex128) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: Forward length %d != plan length %d", len(x), p.n))
	}
	p.transform(x, false)
}

// Inverse transforms x in place, including the 1/N normalisation.
func (p *Plan) Inverse(x []complex128) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: Inverse length %d != plan length %d", len(x), p.n))
	}
	p.transform(x, true)
	inv := complex(1/float64(p.n), 0)
	for i := range x {
		x[i] *= inv
	}
}

// transform is the iterative Cooley-Tukey decimation-in-time FFT.
func (p *Plan) transform(x []complex128, inverse bool) {
	n := p.n
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size // twiddle stride into the length-n table
		for start := 0; start < n; start += size {
			tw := 0
			for k := start; k < start+half; k++ {
				w := p.tw.w[tw]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				t := w * x[k+half]
				x[k+half] = x[k] - t
				x[k] = x[k] + t
				tw += step
			}
		}
	}
}

// Forward is a convenience that plans and runs a forward transform.
func Forward(x []complex128) error {
	p, err := NewPlan(len(x))
	if err != nil {
		return err
	}
	p.Forward(x)
	return nil
}

// Inverse is a convenience that plans and runs an inverse transform.
func Inverse(x []complex128) error {
	p, err := NewPlan(len(x))
	if err != nil {
		return err
	}
	p.Inverse(x)
	return nil
}
