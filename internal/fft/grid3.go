package fft

import "fmt"

// Grid3 is an n×n×n complex grid stored contiguously with index
// (ix, iy, iz) -> (ix*n + iy)*n + iz. It supports in-place 3-D FFTs.
type Grid3 struct {
	N    int
	Data []complex128
	plan *Plan
}

// NewGrid3 allocates an n³ grid. n must be a power of two.
func NewGrid3(n int) (*Grid3, error) {
	if !IsPow2(n) {
		return nil, fmt.Errorf("fft: grid size %d is not a power of two", n)
	}
	p, err := NewPlan(n)
	if err != nil {
		return nil, err
	}
	return &Grid3{N: n, Data: make([]complex128, n*n*n), plan: p}, nil
}

// Idx returns the linear index of (ix, iy, iz).
func (g *Grid3) Idx(ix, iy, iz int) int { return (ix*g.N+iy)*g.N + iz }

// At returns the value at (ix, iy, iz).
func (g *Grid3) At(ix, iy, iz int) complex128 { return g.Data[g.Idx(ix, iy, iz)] }

// Set stores v at (ix, iy, iz).
func (g *Grid3) Set(ix, iy, iz int, v complex128) { g.Data[g.Idx(ix, iy, iz)] = v }

// Forward runs the 3-D forward transform in place.
func (g *Grid3) Forward() { g.transform3(false) }

// Inverse runs the 3-D inverse transform in place (normalised by 1/N³).
func (g *Grid3) Inverse() { g.transform3(true) }

func (g *Grid3) transform3(inverse bool) {
	n := g.N
	run := func(x []complex128) {
		if inverse {
			g.plan.Inverse(x)
		} else {
			g.plan.Forward(x)
		}
	}
	// Z lines are contiguous.
	for ix := 0; ix < n; ix++ {
		for iy := 0; iy < n; iy++ {
			base := (ix*n + iy) * n
			run(g.Data[base : base+n])
		}
	}
	// Y lines: stride n.
	line := make([]complex128, n)
	for ix := 0; ix < n; ix++ {
		for iz := 0; iz < n; iz++ {
			for iy := 0; iy < n; iy++ {
				line[iy] = g.Data[(ix*n+iy)*n+iz]
			}
			run(line)
			for iy := 0; iy < n; iy++ {
				g.Data[(ix*n+iy)*n+iz] = line[iy]
			}
		}
	}
	// X lines: stride n².
	for iy := 0; iy < n; iy++ {
		for iz := 0; iz < n; iz++ {
			for ix := 0; ix < n; ix++ {
				line[ix] = g.Data[(ix*n+iy)*n+iz]
			}
			run(line)
			for ix := 0; ix < n; ix++ {
				g.Data[(ix*n+iy)*n+iz] = line[ix]
			}
		}
	}
}

// FreqIndex maps a grid index i in [0, n) to its signed frequency index
// in [-n/2, n/2): 0, 1, ..., n/2-1, -n/2, ..., -1.
func FreqIndex(i, n int) int {
	if i < n/2 {
		return i
	}
	return i - n
}

// ConjIndex returns the index holding the conjugate mode of i (that is,
// -k mod n).
func ConjIndex(i, n int) int {
	if i == 0 {
		return 0
	}
	return n - i
}

// IsSelfConjugate reports whether mode (i, j, k) on an n-grid is its own
// conjugate partner (these modes must be purely real for a real field).
func IsSelfConjugate(i, j, k, n int) bool {
	return ConjIndex(i, n) == i && ConjIndex(j, n) == j && ConjIndex(k, n) == k
}

// EnforceHermitian makes the grid exactly Hermitian-symmetric,
// F(-k) = conj(F(k)), by averaging each mode with the conjugate of its
// partner. Self-conjugate modes have their imaginary parts dropped.
// After this the inverse transform yields a real field to rounding
// error.
func (g *Grid3) EnforceHermitian() {
	n := g.N
	for ix := 0; ix < n; ix++ {
		cx := ConjIndex(ix, n)
		for iy := 0; iy < n; iy++ {
			cy := ConjIndex(iy, n)
			for iz := 0; iz < n; iz++ {
				cz := ConjIndex(iz, n)
				a := g.Idx(ix, iy, iz)
				b := g.Idx(cx, cy, cz)
				if a == b {
					g.Data[a] = complex(real(g.Data[a]), 0)
					continue
				}
				if a < b {
					va := g.Data[a]
					vb := g.Data[b]
					avg := (va + complex(real(vb), -imag(vb))) * 0.5
					g.Data[a] = avg
					g.Data[b] = complex(real(avg), -imag(avg))
				}
			}
		}
	}
}

// MaxImag returns the largest |imaginary part| on the grid; a real
// field after an inverse transform should have this near zero.
func (g *Grid3) MaxImag() float64 {
	m := 0.0
	for _, v := range g.Data {
		im := imag(v)
		if im < 0 {
			im = -im
		}
		if im > m {
			m = im
		}
	}
	return m
}
