package obs

import (
	"encoding/json"
	"fmt"
	"time"
)

// PhaseSeconds is the fixed per-phase breakdown of one step, in
// seconds. Host phases are measured wall-clock (group_walk and
// force_eval are CPU time summed across workers); hardware phases are
// simulated seconds from the g5 timing model.
type PhaseSeconds struct {
	MortonSort float64 `json:"morton_sort"`
	TreeBuild  float64 `json:"tree_build"`
	GroupWalk  float64 `json:"group_walk"`
	ForceEval  float64 `json:"force_eval"`
	Guard      float64 `json:"guard"`
	JTransfer  float64 `json:"j_transfer"`
	ITransfer  float64 `json:"i_transfer"`
	Pipeline   float64 `json:"pipeline"`
	Readback   float64 `json:"readback"`
	// Checkpoint is the durable-write cost charged to this step; omitted
	// from JSON when zero so pre-checkpoint benchmark files stay valid
	// under strict schema validation.
	Checkpoint float64 `json:"checkpoint,omitempty"`
}

// Add accumulates q into p, phase by phase. Long-lived drivers (the
// job server's per-job totals, multi-step roll-ups) fold each completed
// step's breakdown into a running sum with it; a new phase added to the
// struct must be added here too (the reflection test in report_test.go
// enforces that).
func (p *PhaseSeconds) Add(q PhaseSeconds) {
	p.MortonSort += q.MortonSort
	p.TreeBuild += q.TreeBuild
	p.GroupWalk += q.GroupWalk
	p.ForceEval += q.ForceEval
	p.Guard += q.Guard
	p.JTransfer += q.JTransfer
	p.ITransfer += q.ITransfer
	p.Pipeline += q.Pipeline
	p.Readback += q.Readback
	p.Checkpoint += q.Checkpoint
}

// StepReport is the structured telemetry of one simulation step — the
// paper's time-balance row plus the activity counters behind it.
type StepReport struct {
	// Step is the 1-based step number (0 for the priming force call).
	Step int `json:"step"`
	// WallSeconds is the measured wall-clock of the whole step.
	WallSeconds float64 `json:"wall_seconds"`
	// THost is the measured host time: Morton sort + tree build +
	// group walk + guard overhead (this machine's t_host; force_eval is
	// excluded because on the emulator it stands in for the hardware).
	THost float64 `json:"t_host"`
	// TGrape is the simulated pipeline streaming time (t_grape).
	TGrape float64 `json:"t_grape"`
	// TComm is the simulated host-interface time: j/i uploads plus
	// force readback (t_comm).
	TComm float64 `json:"t_comm"`
	// TBuild is the tree-construction share of the host time: Morton
	// sort plus tree build — the serial (non-overlappable) prefix of
	// the step that the parallel builder attacks.
	TBuild float64 `json:"t_build"`
	// BytesAlloc is the heap memory allocated during the step (from
	// runtime/metrics; 0 when the step driver does not meter it). The
	// arena pipeline holds this near zero in steady state.
	BytesAlloc int64 `json:"bytes_alloc"`
	// Phases is the full per-phase breakdown.
	Phases PhaseSeconds `json:"phases"`
	// Interactions, Flops and Bytes are the step's work counters.
	Interactions int64   `json:"interactions"`
	Flops        float64 `json:"flops"`
	Bytes        int64   `json:"bytes"`
	// Groups and NodesVisited summarise the traversal.
	Groups       int64 `json:"groups"`
	NodesVisited int64 `json:"nodes_visited"`
	// Recoveries and Fallbacks count fault-handling activity.
	Recoveries int64 `json:"recoveries"`
	Fallbacks  int64 `json:"fallbacks"`
	// CkptBytes and CkptWrites record checkpoint activity (omitted when
	// zero: most steps write no checkpoint).
	CkptBytes  int64 `json:"ckpt_bytes,omitempty"`
	CkptWrites int64 `json:"ckpt_writes,omitempty"`
	// Substeps and ActiveI describe block-timestep activity: the number
	// of force calculations in the step and the total force-evaluated
	// field particles across them. ActiveFrac = ActiveI/(N × Substeps)
	// is filled in by the step driver (the Observer does not know N).
	// All omitted when zero so shared-dt reports keep their old schema.
	Substeps   int64   `json:"substeps,omitempty"`
	ActiveI    int64   `json:"active_i,omitempty"`
	ActiveFrac float64 `json:"active_frac,omitempty"`
}

// Snapshot rolls the Observer up into a StepReport for the given step
// number and measured step wall-clock.
func (o *Observer) Snapshot(step int, wall time.Duration) StepReport {
	r := StepReport{Step: step, WallSeconds: wall.Seconds()}
	if o == nil {
		return r
	}
	r.Phases = PhaseSeconds{
		MortonSort: o.Seconds(PhaseMortonSort),
		TreeBuild:  o.Seconds(PhaseTreeBuild),
		GroupWalk:  o.Seconds(PhaseGroupWalk),
		ForceEval:  o.Seconds(PhaseForceEval),
		Guard:      o.Seconds(PhaseGuard),
		JTransfer:  o.Seconds(PhaseJTransfer),
		ITransfer:  o.Seconds(PhaseITransfer),
		Pipeline:   o.Seconds(PhasePipeline),
		Readback:   o.Seconds(PhaseReadback),
		Checkpoint: o.Seconds(PhaseCheckpoint),
	}
	r.THost = r.Phases.MortonSort + r.Phases.TreeBuild + r.Phases.GroupWalk + r.Phases.Guard
	r.TBuild = r.Phases.MortonSort + r.Phases.TreeBuild
	r.TGrape = r.Phases.Pipeline
	r.TComm = r.Phases.JTransfer + r.Phases.ITransfer + r.Phases.Readback
	r.Interactions = o.Count(CntInteractions)
	r.Flops = float64(o.Count(CntFlops))
	r.Bytes = o.Count(CntBytes)
	r.Groups = o.Count(CntGroups)
	r.NodesVisited = o.Count(CntNodesVisited)
	r.Recoveries = o.Count(CntRecoveries)
	r.Fallbacks = o.Count(CntFallbacks)
	r.CkptBytes = o.Count(CntCkptBytes)
	r.CkptWrites = o.Count(CntCkptWrites)
	r.Substeps = o.Count(CntSubsteps)
	r.ActiveI = o.Count(CntActiveI)
	return r
}

// JSON returns the report as a single JSON object.
func (r StepReport) JSON() ([]byte, error) { return json.Marshal(r) }

// String formats the report for humans, one step per line.
func (r StepReport) String() string {
	s := fmt.Sprintf(
		"step %d: wall=%.4gs host=%.4gs (sort %.4g build %.4g walk %.4g guard %.4g) grape=%.4gs comm=%.4gs inter=%d groups=%d",
		r.Step, r.WallSeconds, r.THost,
		r.Phases.MortonSort, r.Phases.TreeBuild, r.Phases.GroupWalk, r.Phases.Guard,
		r.TGrape, r.TComm, r.Interactions, r.Groups)
	if r.Recoveries > 0 || r.Fallbacks > 0 {
		s += fmt.Sprintf(" recoveries=%d fallbacks=%d", r.Recoveries, r.Fallbacks)
	}
	return s
}
