package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// BenchSchemaVersion is the current BENCH_treecode.json schema version.
// v2 added t_build and bytes_alloc_per_step to every point (the arena
// step pipeline's build-split and allocation metrics).
const BenchSchemaVersion = 2

// BenchPoint is one (N, n_g) sample of a bench sweep: per-step means
// over the measured steps.
type BenchPoint struct {
	// Ncrit is the group-size bound n_g of this point.
	Ncrit int `json:"ncrit"`
	// Groups, Interactions and AvgList summarise the traversal.
	Groups       int     `json:"groups"`
	Interactions int64   `json:"interactions"`
	AvgList      float64 `json:"avg_list"`
	// THostWall is the measured host time per step on this machine
	// (Morton sort + tree build + group walk + guard).
	THostWall float64 `json:"t_host_wall"`
	// TBuild is the tree-construction share of THostWall per step
	// (Morton sort + tree build), the t_build split of the time-balance
	// model.
	TBuild float64 `json:"t_build"`
	// BytesAllocPerStep is the mean heap allocation per measured step
	// in bytes — the arena pipeline's regression metric.
	BytesAllocPerStep float64 `json:"bytes_alloc_per_step"`
	// THostModel is the calibrated DS10 host-model time per step for
	// the measured traversal statistics.
	THostModel float64 `json:"t_host_model"`
	// TGrape and TComm are the simulated GRAPE pipeline and
	// host-interface seconds per step.
	TGrape float64 `json:"t_grape"`
	TComm  float64 `json:"t_comm"`
	// TTotalModel is THostModel + TGrape + TComm — the paper's
	// modelled step time, minimised over n_g.
	TTotalModel float64 `json:"t_total_model"`
	// TStepPipelined is the overlap-aware step time: Morton sort + tree
	// build (serial) plus the larger of the host walk (incl. guard) and
	// the hardware span t_grape + t_comm. For cluster sweeps (boards >
	// 1) the hardware span is the critical-path shard's, so this is the
	// step time the sharded double-buffered offload actually achieves;
	// K-board speedups are ratios of this metric.
	TStepPipelined float64 `json:"t_step_pipelined,omitempty"`
	// Phases is the measured per-step phase breakdown.
	Phases PhaseSeconds `json:"phases"`
	// Recoveries counts fault-handling events over the measured steps.
	Recoveries int64 `json:"recoveries"`
}

// BenchSweep is one n_g sweep over a fixed snapshot family.
type BenchSweep struct {
	// Model names the initial condition ("plummer" or "cosmo").
	Model string `json:"model"`
	// N is the particle count; Seed the IC seed.
	N    int    `json:"n"`
	Seed uint64 `json:"seed"`
	// Theta and Steps record the sweep configuration.
	Theta float64 `json:"theta"`
	Steps int     `json:"steps"`
	// Boards is the cluster shard count K the sweep ran with (absent or
	// 0 means the single-system path, equivalent to 1).
	Boards int `json:"boards,omitempty"`
	// MeasuredSpeedupVsK1 and PredictedSpeedupVsK1 compare this sweep's
	// best pipelined step time against the matching K=1 sweep: measured
	// is the ratio of the two minima over the sweep points; predicted
	// applies the internal/perf K-board time-balance model to the K=1
	// sweep's measured phases. Only present when Boards > 1.
	MeasuredSpeedupVsK1  float64 `json:"measured_speedup_vs_k1,omitempty"`
	PredictedSpeedupVsK1 float64 `json:"predicted_speedup_vs_k1,omitempty"`
	// Points holds the measured samples in ascending n_g order.
	Points []BenchPoint `json:"points"`
	// MeasuredOptimalNcrit minimises the measured time balance
	// (t_host_model + t_grape + t_comm over real simulation steps).
	MeasuredOptimalNcrit int `json:"measured_optimal_ncrit"`
	// ModelOptimalNcrit is the internal/perf analytic prediction
	// (NgSweep over the initial snapshot).
	ModelOptimalNcrit int `json:"model_optimal_ncrit"`
	// AgreeWithinOnePoint reports whether the two optima are at most
	// one sweep point apart — the §3 consistency check.
	AgreeWithinOnePoint bool `json:"agree_within_one_point"`
}

// BenchReport is the root object of BENCH_treecode.json — the repo's
// recorded performance trajectory.
type BenchReport struct {
	SchemaVersion int `json:"schema_version"`
	// Label describes the run ("smoke" or "full").
	Label string `json:"label"`
	// HostModel names the analytic host model used for t_host_model.
	HostModel string `json:"host_model"`
	// GOMAXPROCS records the measurement parallelism.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Sweeps holds one entry per (model, N) pair.
	Sweeps []BenchSweep `json:"sweeps"`
}

// ValidateBench checks data against the BENCH_treecode.json schema:
// version, non-empty sweeps, nonzero t_host/t_grape/t_comm per point,
// ascending n_g, optima that appear in the sweep, and model/measured
// agreement within one sweep point.
func ValidateBench(data []byte) error {
	var r BenchReport
	dec := jsonStrict(data)
	if err := dec.Decode(&r); err != nil {
		return fmt.Errorf("obs: bench JSON: %w", err)
	}
	if r.SchemaVersion != BenchSchemaVersion {
		return fmt.Errorf("obs: bench schema version %d, want %d", r.SchemaVersion, BenchSchemaVersion)
	}
	if len(r.Sweeps) == 0 {
		return fmt.Errorf("obs: bench has no sweeps")
	}
	for si, sw := range r.Sweeps {
		if sw.Model == "" || sw.N < 1 || sw.Steps < 1 {
			return fmt.Errorf("obs: sweep %d: bad model/N/steps (%q, %d, %d)", si, sw.Model, sw.N, sw.Steps)
		}
		if len(sw.Points) == 0 {
			return fmt.Errorf("obs: sweep %d (%s N=%d): no points", si, sw.Model, sw.N)
		}
		measuredIdx, modelIdx := -1, -1
		for pi, p := range sw.Points {
			if p.Ncrit < 1 {
				return fmt.Errorf("obs: sweep %d point %d: bad ncrit %d", si, pi, p.Ncrit)
			}
			if pi > 0 && p.Ncrit <= sw.Points[pi-1].Ncrit {
				return fmt.Errorf("obs: sweep %d: ncrit not ascending at point %d", si, pi)
			}
			if !(p.THostWall > 0) || !(p.THostModel > 0) || !(p.TGrape > 0) || !(p.TComm > 0) {
				return fmt.Errorf("obs: sweep %d ncrit=%d: zero phase timing (host_wall=%g host_model=%g grape=%g comm=%g)",
					si, p.Ncrit, p.THostWall, p.THostModel, p.TGrape, p.TComm)
			}
			if !(p.TBuild > 0) || p.TBuild > p.THostWall*(1+1e-9) {
				return fmt.Errorf("obs: sweep %d ncrit=%d: t_build %g outside (0, t_host_wall=%g]",
					si, p.Ncrit, p.TBuild, p.THostWall)
			}
			if p.BytesAllocPerStep < 0 {
				return fmt.Errorf("obs: sweep %d ncrit=%d: negative bytes_alloc_per_step %g",
					si, p.Ncrit, p.BytesAllocPerStep)
			}
			if p.Interactions < 1 || p.Groups < 1 {
				return fmt.Errorf("obs: sweep %d ncrit=%d: empty traversal", si, p.Ncrit)
			}
			if p.Ncrit == sw.MeasuredOptimalNcrit {
				measuredIdx = pi
			}
			if p.Ncrit == sw.ModelOptimalNcrit {
				modelIdx = pi
			}
		}
		if measuredIdx < 0 || modelIdx < 0 {
			return fmt.Errorf("obs: sweep %d: optima (measured=%d model=%d) not in sweep",
				si, sw.MeasuredOptimalNcrit, sw.ModelOptimalNcrit)
		}
		apart := measuredIdx - modelIdx
		if apart < 0 {
			apart = -apart
		}
		if (apart <= 1) != sw.AgreeWithinOnePoint {
			return fmt.Errorf("obs: sweep %d: agree_within_one_point=%v but optima are %d points apart",
				si, sw.AgreeWithinOnePoint, apart)
		}
		if !sw.AgreeWithinOnePoint {
			return fmt.Errorf("obs: sweep %d (%s N=%d): measured optimum n_g=%d disagrees with model n_g=%d by more than one sweep point",
				si, sw.Model, sw.N, sw.MeasuredOptimalNcrit, sw.ModelOptimalNcrit)
		}
		if sw.Boards < 0 {
			return fmt.Errorf("obs: sweep %d: negative boards %d", si, sw.Boards)
		}
		if sw.Boards > 1 {
			k := float64(sw.Boards)
			// Sub-linear with a little measurement slack; zero means the
			// emitter forgot the K=1 reference sweep.
			if !(sw.MeasuredSpeedupVsK1 > 0) || sw.MeasuredSpeedupVsK1 > k+0.5 {
				return fmt.Errorf("obs: sweep %d (%s N=%d, K=%d): measured speedup %g outside (0, %g]",
					si, sw.Model, sw.N, sw.Boards, sw.MeasuredSpeedupVsK1, k+0.5)
			}
			if !(sw.PredictedSpeedupVsK1 > 0) || sw.PredictedSpeedupVsK1 > k+0.5 {
				return fmt.Errorf("obs: sweep %d (%s N=%d, K=%d): predicted speedup %g outside (0, %g]",
					si, sw.Model, sw.N, sw.Boards, sw.PredictedSpeedupVsK1, k+0.5)
			}
		} else if sw.MeasuredSpeedupVsK1 != 0 || sw.PredictedSpeedupVsK1 != 0 {
			return fmt.Errorf("obs: sweep %d: speedup fields set on a single-board sweep", si)
		}
	}
	return nil
}

// jsonStrict returns a decoder rejecting unknown fields, so schema
// drift in the emitter is caught by the validator.
func jsonStrict(data []byte) *json.Decoder {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec
}
