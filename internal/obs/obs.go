// Package obs is the step-level observability layer: lightweight phase
// spans and monotonic counters collected while a force step runs, and
// the structured per-step report they roll up into.
//
// The paper's evaluation (§3) rests on a time-balance decomposition of
// each step — host tree work t_host, GRAPE pipeline time t_grape and
// host-interface communication t_comm — which fixes the optimal group
// size n_g. The treecode, the octree builder, the GRAPE emulator and
// the fault-tolerant guard all record into one Observer; Simulation
// snapshots it into a StepReport after every step. Wall-clock phases
// (Morton sort, tree build, group-list walk, force evaluation, guard
// overhead) are measured on this machine; hardware phases (j/i-particle
// transfer, pipeline streaming, force readback) are simulated seconds
// from the g5 timing model.
//
// All Observer methods are safe on a nil receiver (no-ops) and safe for
// concurrent use: the traversal's walk workers add spans and counters
// from many goroutines at once.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Phase identifies one slice of a force step's work.
type Phase uint8

const (
	// PhaseMortonSort is Morton key generation, the radix sort and the
	// particle reorder (host wall-clock).
	PhaseMortonSort Phase = iota
	// PhaseTreeBuild is the octree construction or refresh after the
	// sort (host wall-clock).
	PhaseTreeBuild
	// PhaseGroupWalk is the interaction-list construction for the
	// particle groups, summed across walk workers (host CPU time).
	PhaseGroupWalk
	// PhaseForceEval is the time spent inside Engine.Accumulate, summed
	// across workers (host CPU time; for the emulated GRAPE this is the
	// emulation arithmetic, for the host engine the real force work).
	PhaseForceEval
	// PhaseGuard is fault-tolerance overhead: probe reference forces,
	// acceptance checks, retry backoff and bisection re-runs (host
	// wall-clock, serialised by the guard's lock).
	PhaseGuard
	// PhaseJTransfer is the simulated j-particle upload time over the
	// host interface (g5 timing model).
	PhaseJTransfer
	// PhaseITransfer is the simulated i-particle upload time plus the
	// per-call DMA/driver latency (g5 timing model).
	PhaseITransfer
	// PhasePipeline is the simulated time the force pipelines stream
	// j-particles (g5 timing model) — the paper's t_grape.
	PhasePipeline
	// PhaseReadback is the simulated per-board force readback time (g5
	// timing model).
	PhaseReadback
	// PhaseCheckpoint is the wall-clock cost of serialising and durably
	// writing a checkpoint (encode + fsync + rename), charged to the step
	// that triggered it.
	PhaseCheckpoint

	numPhases
)

var phaseNames = [numPhases]string{
	"morton_sort", "tree_build", "group_walk", "force_eval", "guard",
	"j_transfer", "i_transfer", "pipeline", "readback", "checkpoint",
}

// String returns the snake_case phase name used in the JSON schema.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// Counter identifies a monotonic per-step counter.
type Counter uint8

const (
	// CntInteractions is the pairwise interaction count of the step.
	CntInteractions Counter = iota
	// CntFlops is the hardware operation count under the
	// ops-per-interaction convention (38 per pair for the paper).
	CntFlops
	// CntBytes is the simulated host-interface traffic in bytes.
	CntBytes
	// CntGroups is the number of particle groups walked.
	CntGroups
	// CntNodesVisited is the number of tree nodes touched by the walk.
	CntNodesVisited
	// CntRecoveries counts fault-handling events: retries, rejected
	// results and board exclusions.
	CntRecoveries
	// CntFallbacks counts batches computed by the host fallback engine.
	CntFallbacks
	// CntCkptBytes is the durable size of checkpoints written this step.
	CntCkptBytes
	// CntCkptWrites is the number of checkpoints written this step
	// (normally 0 or 1).
	CntCkptWrites
	// CntActiveI is the number of force-evaluated field particles this
	// step, summed over substeps: N × substeps for shared-dt runs, the
	// closing-set totals for block-timestep runs. The active fraction
	// CntActiveI / (N × CntSubsteps) is the block scheduler's headline
	// saving.
	CntActiveI
	// CntSubsteps is the number of force calculations this step: 1 for
	// shared-dt runs, the block count of substeps advanced otherwise.
	CntSubsteps

	numCounters
)

var counterNames = [numCounters]string{
	"interactions", "flops", "bytes", "groups", "nodes_visited",
	"recoveries", "fallbacks", "ckpt_bytes", "ckpt_writes",
	"active_i", "substeps",
}

// String returns the snake_case counter name used in the JSON schema.
func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "unknown"
}

// Observer accumulates phase spans and counters for one step. Zero it
// with Reset at step boundaries and roll it up with Snapshot. The zero
// value is ready to use; a nil *Observer discards everything.
type Observer struct {
	// phase seconds are float64 bit patterns updated by CAS so
	// concurrent workers can add fractional seconds without a lock.
	phases [numPhases]atomic.Uint64
	counts [numCounters]atomic.Int64
}

// NewObserver returns an empty Observer.
func NewObserver() *Observer { return &Observer{} }

// Reset zeroes all phases and counters (start of a step).
func (o *Observer) Reset() {
	if o == nil {
		return
	}
	for i := range o.phases {
		o.phases[i].Store(0)
	}
	for i := range o.counts {
		o.counts[i].Store(0)
	}
}

// ResetPhase zeroes a single phase's accumulated seconds. Components
// that own a phase (the g5 timing model owns the hardware phases) use
// it to keep their counter resets and the observer snapshot consistent.
func (o *Observer) ResetPhase(p Phase) {
	if o == nil || p >= numPhases {
		return
	}
	o.phases[p].Store(0)
}

// ResetCounter zeroes a single counter.
func (o *Observer) ResetCounter(c Counter) {
	if o == nil || c >= numCounters {
		return
	}
	o.counts[c].Store(0)
}

// AddSeconds adds s seconds to phase p. Negative and non-finite values
// are discarded.
func (o *Observer) AddSeconds(p Phase, s float64) {
	if o == nil || p >= numPhases || !(s > 0) || math.IsInf(s, 1) {
		return
	}
	a := &o.phases[p]
	for {
		old := a.Load()
		next := math.Float64bits(math.Float64frombits(old) + s)
		if a.CompareAndSwap(old, next) {
			return
		}
	}
}

// Seconds returns the accumulated seconds of phase p.
func (o *Observer) Seconds(p Phase) float64 {
	if o == nil || p >= numPhases {
		return 0
	}
	return math.Float64frombits(o.phases[p].Load())
}

// Add adds n to counter c.
func (o *Observer) Add(c Counter, n int64) {
	if o == nil || c >= numCounters {
		return
	}
	o.counts[c].Add(n)
}

// Count returns the value of counter c.
func (o *Observer) Count(c Counter) int64 {
	if o == nil || c >= numCounters {
		return 0
	}
	return o.counts[c].Load()
}

// Timer is an in-flight wall-clock span; Stop adds the elapsed time to
// its phase. The zero Timer (from a nil Observer) is a no-op.
type Timer struct {
	o     *Observer
	p     Phase
	start time.Time
}

// Start opens a wall-clock span on phase p.
func (o *Observer) Start(p Phase) Timer {
	if o == nil {
		return Timer{}
	}
	return Timer{o: o, p: p, start: time.Now()}
}

// Stop closes the span, crediting the elapsed wall-clock to the phase.
func (t Timer) Stop() {
	if t.o == nil {
		return
	}
	t.o.AddSeconds(t.p, time.Since(t.start).Seconds())
}
