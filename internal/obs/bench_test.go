package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// goodBench returns a minimal valid report for mutation tests.
func goodBench() BenchReport {
	point := func(ng int) BenchPoint {
		return BenchPoint{
			Ncrit: ng, Groups: 10, Interactions: 1000, AvgList: 100,
			THostWall: 0.01, THostModel: 0.02, TGrape: 0.005, TComm: 0.004,
			TTotalModel: 0.029, TBuild: 0.004, BytesAllocPerStep: 2048,
		}
	}
	return BenchReport{
		SchemaVersion: BenchSchemaVersion,
		Label:         "test",
		HostModel:     "DS10",
		GOMAXPROCS:    4,
		Sweeps: []BenchSweep{{
			Model: "plummer", N: 512, Seed: 1, Theta: 0.75, Steps: 2,
			Points:               []BenchPoint{point(100), point(200), point(400)},
			MeasuredOptimalNcrit: 200,
			ModelOptimalNcrit:    400,
			AgreeWithinOnePoint:  true,
		}},
	}
}

func mustJSON(t *testing.T, r BenchReport) []byte {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestValidateBenchAccepts(t *testing.T) {
	if err := ValidateBench(mustJSON(t, goodBench())); err != nil {
		t.Fatal(err)
	}
}

func TestValidateBenchRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*BenchReport)
		want string
	}{
		{"wrong version", func(r *BenchReport) { r.SchemaVersion = BenchSchemaVersion + 1 }, "schema version"},
		{"no sweeps", func(r *BenchReport) { r.Sweeps = nil }, "no sweeps"},
		{"no points", func(r *BenchReport) { r.Sweeps[0].Points = nil }, "no points"},
		{"missing model", func(r *BenchReport) { r.Sweeps[0].Model = "" }, "bad model"},
		{"descending ncrit", func(r *BenchReport) { r.Sweeps[0].Points[1].Ncrit = 50 }, "not ascending"},
		{"zero host time", func(r *BenchReport) { r.Sweeps[0].Points[0].THostWall = 0 }, "zero phase timing"},
		{"zero grape time", func(r *BenchReport) { r.Sweeps[0].Points[2].TGrape = 0 }, "zero phase timing"},
		{"zero comm time", func(r *BenchReport) { r.Sweeps[0].Points[2].TComm = 0 }, "zero phase timing"},
		{"empty traversal", func(r *BenchReport) { r.Sweeps[0].Points[1].Interactions = 0 }, "empty traversal"},
		{"zero build time", func(r *BenchReport) { r.Sweeps[0].Points[0].TBuild = 0 }, "t_build"},
		{"build exceeds host", func(r *BenchReport) { r.Sweeps[0].Points[1].TBuild = 0.02 }, "t_build"},
		{"negative alloc", func(r *BenchReport) { r.Sweeps[0].Points[2].BytesAllocPerStep = -1 }, "bytes_alloc_per_step"},
		{"optimum not in sweep", func(r *BenchReport) { r.Sweeps[0].MeasuredOptimalNcrit = 123 }, "not in sweep"},
		{"inconsistent agreement flag", func(r *BenchReport) {
			r.Sweeps[0].MeasuredOptimalNcrit = 100 // two points from model's 400
		}, "agree_within_one_point"},
		{"declared disagreement", func(r *BenchReport) {
			r.Sweeps[0].MeasuredOptimalNcrit = 100
			r.Sweeps[0].AgreeWithinOnePoint = false
		}, "disagrees"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := goodBench()
			tc.mut(&r)
			err := ValidateBench(mustJSON(t, r))
			if err == nil {
				t.Fatalf("mutation accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateBenchRejectsUnknownFields(t *testing.T) {
	data := mustJSON(t, goodBench())
	data = append([]byte(`{"surprise":1,`), data[1:]...)
	if err := ValidateBench(data); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestValidateBenchRejectsGarbage(t *testing.T) {
	if err := ValidateBench([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
}
