package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPhaseAndCounterNames(t *testing.T) {
	if got := PhaseMortonSort.String(); got != "morton_sort" {
		t.Errorf("PhaseMortonSort = %q", got)
	}
	if got := PhaseReadback.String(); got != "readback" {
		t.Errorf("PhaseReadback = %q", got)
	}
	if got := Phase(99).String(); got != "unknown" {
		t.Errorf("out-of-range phase = %q", got)
	}
}

func TestObserverNilSafe(t *testing.T) {
	// All methods must be no-ops on a nil observer so call sites can
	// stay unconditional.
	var o *Observer
	o.AddSeconds(PhaseTreeBuild, 1)
	o.Add(CntInteractions, 5)
	tm := o.Start(PhaseGroupWalk)
	tm.Stop()
	o.Reset()
	if o.Seconds(PhaseTreeBuild) != 0 || o.Count(CntInteractions) != 0 {
		t.Error("nil observer reported nonzero totals")
	}
	r := o.Snapshot(3, time.Second)
	if r.Step != 3 || r.THost != 0 || r.Interactions != 0 {
		t.Errorf("nil snapshot = %+v", r)
	}
}

func TestObserverRejectsBadDurations(t *testing.T) {
	o := NewObserver()
	o.AddSeconds(PhasePipeline, -1)
	o.AddSeconds(PhasePipeline, math.NaN())
	o.AddSeconds(PhasePipeline, math.Inf(1))
	if s := o.Seconds(PhasePipeline); s != 0 {
		t.Errorf("bad durations accumulated: %v", s)
	}
}

func TestSnapshotDecomposition(t *testing.T) {
	o := NewObserver()
	o.AddSeconds(PhaseMortonSort, 0.1)
	o.AddSeconds(PhaseTreeBuild, 0.2)
	o.AddSeconds(PhaseGroupWalk, 0.3)
	o.AddSeconds(PhaseGuard, 0.05)
	o.AddSeconds(PhaseForceEval, 1.0) // excluded from THost: emulated hardware
	o.AddSeconds(PhasePipeline, 0.4)
	o.AddSeconds(PhaseJTransfer, 0.01)
	o.AddSeconds(PhaseITransfer, 0.02)
	o.AddSeconds(PhaseReadback, 0.03)
	o.Add(CntInteractions, 1000)
	o.Add(CntRecoveries, 2)

	r := o.Snapshot(7, 2*time.Second)
	if r.Step != 7 || r.WallSeconds != 2 {
		t.Errorf("step/wall = %d/%v", r.Step, r.WallSeconds)
	}
	if math.Abs(r.THost-0.65) > 1e-12 {
		t.Errorf("THost = %v, want 0.65", r.THost)
	}
	if math.Abs(r.TGrape-0.4) > 1e-12 {
		t.Errorf("TGrape = %v, want 0.4", r.TGrape)
	}
	if math.Abs(r.TComm-0.06) > 1e-12 {
		t.Errorf("TComm = %v, want 0.06", r.TComm)
	}
	if r.Interactions != 1000 || r.Recoveries != 2 {
		t.Errorf("counters = %+v", r)
	}
	if s := r.String(); !strings.Contains(s, "step 7") {
		t.Errorf("human report missing step: %q", s)
	}
	if _, err := r.JSON(); err != nil {
		t.Fatal(err)
	}
}

func TestResetClears(t *testing.T) {
	o := NewObserver()
	o.AddSeconds(PhaseTreeBuild, 1)
	o.Add(CntFlops, 99)
	o.Reset()
	if o.Seconds(PhaseTreeBuild) != 0 || o.Count(CntFlops) != 0 {
		t.Error("Reset did not clear")
	}
}

// TestObserverConcurrentUpdates drives the exact access pattern of the
// parallel group walk — many workers folding phase spans and counters
// into one shared observer — and must pass under -race. The CAS loop in
// AddSeconds makes float accumulation exact for these power-of-two
// increments, so the totals are checked exactly.
func TestObserverConcurrentUpdates(t *testing.T) {
	o := NewObserver()
	const workers = 16
	const perWorker = 1000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				o.AddSeconds(PhaseGroupWalk, 0.5)
				o.AddSeconds(PhaseForceEval, 0.25)
				o.Add(CntInteractions, 3)
				o.Add(CntGroups, 1)
				tm := o.Start(PhaseGuard)
				tm.Stop()
			}
		}()
	}
	// A concurrent reader: snapshots must be safe to take mid-update.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			r := o.Snapshot(i, time.Millisecond)
			if r.Interactions < 0 || r.THost < 0 {
				t.Errorf("inconsistent mid-flight snapshot: %+v", r)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	if got := o.Seconds(PhaseGroupWalk); got != workers*perWorker*0.5 {
		t.Errorf("group walk seconds = %v, want %v", got, workers*perWorker*0.5)
	}
	if got := o.Seconds(PhaseForceEval); got != workers*perWorker*0.25 {
		t.Errorf("force eval seconds = %v, want %v", got, workers*perWorker*0.25)
	}
	if got := o.Count(CntInteractions); got != workers*perWorker*3 {
		t.Errorf("interactions = %d, want %d", got, workers*perWorker*3)
	}
	if got := o.Count(CntGroups); got != workers*perWorker {
		t.Errorf("groups = %d, want %d", got, workers*perWorker)
	}
	if got := o.Seconds(PhaseGuard); got < 0 {
		t.Errorf("guard seconds negative: %v", got)
	}
}
