package obs

import (
	"reflect"
	"testing"
)

// TestPhaseSecondsAddCoversEveryField sets every field of a
// PhaseSeconds to a distinct non-zero value via reflection and requires
// Add to double each one: a phase added to the struct but forgotten in
// Add would keep its zero delta and fail here.
func TestPhaseSecondsAddCoversEveryField(t *testing.T) {
	var p PhaseSeconds
	v := reflect.ValueOf(&p).Elem()
	for i := 0; i < v.NumField(); i++ {
		v.Field(i).SetFloat(float64(i + 1))
	}
	q := p
	p.Add(q)
	for i := 0; i < v.NumField(); i++ {
		want := 2 * float64(i+1)
		if got := v.Field(i).Float(); got != want {
			t.Errorf("Add missed field %s: got %v, want %v",
				v.Type().Field(i).Name, got, want)
		}
	}
}

// TestPhaseSecondsAddZero: adding a zero value must change nothing.
func TestPhaseSecondsAddZero(t *testing.T) {
	p := PhaseSeconds{MortonSort: 1, Checkpoint: 2}
	q := p
	p.Add(PhaseSeconds{})
	if p != q {
		t.Errorf("Add(zero) changed the value: %+v != %+v", p, q)
	}
}
