package obs

import "runtime/metrics"

// heapAllocSample is the reused sample descriptor for HeapAllocBytes
// (metrics.Read with a preallocated one-element slice does not
// allocate, so metering itself stays off the allocation ledger).
var heapAllocSample = []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}

// HeapAllocBytes returns the process-lifetime cumulative heap
// allocation in bytes. Differencing two readings bounds the bytes
// allocated in between — the per-step metric the arena pipeline is
// judged by. Unlike runtime.ReadMemStats this does not stop the world,
// so it is cheap enough to bracket every step.
//
// Not safe against concurrent HeapAllocBytes calls (the sample buffer
// is shared); the single-threaded step driver is the only caller.
func HeapAllocBytes() uint64 {
	metrics.Read(heapAllocSample)
	return heapAllocSample[0].Value.Uint64()
}
