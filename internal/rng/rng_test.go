package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs of 100", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	v := r.Uint64()
	if v == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced a degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %v, want ~%v", variance, 1.0/12)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %v", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn bucket %d count %d far from uniform 10000", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum, sum2, sum4 float64
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sum2 += v * v
		sum4 += v * v * v * v
	}
	mean := sum / n
	variance := sum2 / n
	kurt := sum4 / n
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v", variance)
	}
	if math.Abs(kurt-3) > 0.1 {
		t.Errorf("normal 4th moment = %v, want ~3", kurt)
	}
}

func TestUnitSphere(t *testing.T) {
	r := New(9)
	var sx, sy, sz float64
	for i := 0; i < 20000; i++ {
		x, y, z := r.UnitSphere()
		if math.Abs(x*x+y*y+z*z-1) > 1e-12 {
			t.Fatalf("not on unit sphere: %v %v %v", x, y, z)
		}
		sx += x
		sy += y
		sz += z
	}
	n := 20000.0
	if math.Abs(sx/n) > 0.02 || math.Abs(sy/n) > 0.02 || math.Abs(sz/n) > 0.02 {
		t.Errorf("sphere mean = (%v,%v,%v), want ~0", sx/n, sy/n, sz/n)
	}
}

func TestInBall(t *testing.T) {
	r := New(13)
	var inHalf int
	const n = 50000
	for i := 0; i < n; i++ {
		x, y, z := r.InBall()
		r2 := x*x + y*y + z*z
		if r2 > 1 {
			t.Fatalf("outside unit ball: r2=%v", r2)
		}
		if r2 < 0.25 { // |r| < 0.5 -> volume fraction 1/8
			inHalf++
		}
	}
	frac := float64(inHalf) / n
	if math.Abs(frac-0.125) > 0.01 {
		t.Errorf("inner-half fraction = %v, want ~0.125", frac)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(77)
	child := parent.Split()
	// Parent continues; child stream differs from the parent's future.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split stream tracks the parent: %d matches", same)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%#x,%#x) = (%#x,%#x), want (%#x,%#x)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
