// Package rng provides a deterministic, seedable pseudo-random number
// generator for reproducible initial conditions and tests.
//
// The generator is xoshiro256**, seeded through splitmix64, following
// Blackman & Vigna. It is small, fast, and has no global state: every
// simulation component owns its own stream, so results are bit-exact
// regardless of evaluation order or parallelism.
package rng

import "math"

// Source is a deterministic random stream.
type Source struct {
	s [4]uint64

	// cached spare Gaussian deviate (Box-Muller polar generates pairs)
	haveSpare bool
	spare     float64
}

// New returns a Source seeded from the given 64-bit seed. Different
// seeds give statistically independent streams.
func New(seed uint64) *Source {
	var src Source
	// splitmix64 expansion of the seed into the xoshiro state, as
	// recommended by the xoshiro authors.
	x := seed
	for i := range src.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not be seeded with all zeros; splitmix64 of any seed
	// cannot produce that, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 1
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform deviate in [0, 1).
func (r *Source) Float64() float64 {
	// Take the top 53 bits for a uniformly spaced double in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform deviate in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	un := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, un)
		if lo >= un || lo >= (-un)%un {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	m := t & mask
	c = t >> 32
	t = aLo*bHi + m
	lo |= (t & mask) << 32
	hi = aHi*bHi + c + (t >> 32)
	return hi, lo
}

// Normal returns a standard Gaussian deviate (mean 0, variance 1) via
// the Marsaglia polar method.
func (r *Source) Normal() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			f := math.Sqrt(-2 * math.Log(s) / s)
			r.spare = v * f
			r.haveSpare = true
			return u * f
		}
	}
}

// NormalPair returns two independent standard Gaussian deviates.
// Useful when filling Fourier modes (real and imaginary parts).
func (r *Source) NormalPair() (float64, float64) {
	return r.Normal(), r.Normal()
}

// UnitSphere returns a point uniformly distributed on the unit sphere.
func (r *Source) UnitSphere() (x, y, z float64) {
	for {
		x = 2*r.Float64() - 1
		y = 2*r.Float64() - 1
		z = 2*r.Float64() - 1
		s := x*x + y*y + z*z
		if s > 0 && s <= 1 {
			inv := 1 / math.Sqrt(s)
			return x * inv, y * inv, z * inv
		}
	}
}

// InBall returns a point uniformly distributed in the unit ball.
func (r *Source) InBall() (x, y, z float64) {
	for {
		x = 2*r.Float64() - 1
		y = 2*r.Float64() - 1
		z = 2*r.Float64() - 1
		if x*x+y*y+z*z <= 1 {
			return x, y, z
		}
	}
}

// Split returns a new independent stream derived from this one.
// Use it to hand child components their own deterministic streams.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}
