package ckpt

import "bytes"

// Marshal serialises a checkpoint to bytes — the exact file format of
// Write, in memory. The job server uses it for result payloads: two
// runs of the same configuration produce byte-identical marshals, so
// equality of Marshal output IS the bitwise-determinism check.
func Marshal(c *Checkpoint) ([]byte, error) {
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Unmarshal parses and fully validates a checkpoint from bytes (the
// same structural, bounds and CRC checks as Read).
func Unmarshal(data []byte) (*Checkpoint, error) {
	return Read(bytes.NewReader(data))
}
