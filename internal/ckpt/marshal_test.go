package ckpt

import (
	"bytes"
	"testing"
)

// TestMarshalRoundtrip: Marshal → Unmarshal must reproduce the
// checkpoint, and marshalling the reconstruction must give the exact
// same bytes (the job server's result payloads rely on Marshal output
// being a stable function of the simulation state).
func TestMarshalRoundtrip(t *testing.T) {
	c := sampleCheckpoint(37)
	data, err := Marshal(c)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	data2, err := Marshal(got)
	if err != nil {
		t.Fatalf("re-Marshal: %v", err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("marshal not stable: %d bytes vs %d bytes", len(data), len(data2))
	}
}

// TestUnmarshalRejectsCorruption: a flipped payload byte must fail the
// CRC, same as Read.
func TestUnmarshalRejectsCorruption(t *testing.T) {
	data, err := Marshal(sampleCheckpoint(8))
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	data[len(data)-20] ^= 0x40
	if _, err := Unmarshal(data); err == nil {
		t.Fatal("Unmarshal accepted a corrupted checkpoint")
	}
}
