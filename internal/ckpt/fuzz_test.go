package ckpt

import (
	"bytes"
	"testing"
)

// FuzzRead: the checkpoint reader is the trust boundary between a file
// that survived a crash and the integrator. It must never panic, never
// over-allocate from forged lengths, and never return state that was
// not checksum-verified — a corrupt checkpoint is an error, full stop.
func FuzzRead(f *testing.F) {
	c := sampleCheckpoint(16)
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:12])
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("not a checkpoint at all"))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return // clean rejection
		}
		if got == nil || got.Sys == nil {
			t.Fatal("nil checkpoint without error")
		}
		// A successful parse must be structurally sound and re-encodable
		// (anything the reader accepts, the writer must be able to
		// persist again).
		n := got.Sys.N()
		if len(got.Sys.Vel) != n || len(got.Sys.Acc) != n || len(got.Sys.Mass) != n ||
			len(got.Sys.Pot) != n || len(got.Sys.ID) != n {
			t.Fatal("inconsistent arrays on successful parse")
		}
		var re bytes.Buffer
		if werr := Write(&re, got); werr != nil {
			t.Fatalf("re-encode of accepted checkpoint failed: %v", werr)
		}
	})
}
