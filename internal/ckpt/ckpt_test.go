package ckpt

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/nbody"
	"repro/internal/rng"
)

// sampleCheckpoint builds a checkpoint with every State field set to a
// distinct non-zero value, so round-trip tests catch field-order and
// truncation bugs.
func sampleCheckpoint(n int) *Checkpoint {
	s := nbody.Plummer(n, 1, 1, 1, rng.New(7))
	for i := range s.Acc {
		s.Acc[i].X = float64(i) + 0.25
		s.Acc[i].Y = -float64(i) - 0.5
		s.Acc[i].Z = float64(i) * 0.125
		s.Pot[i] = -1.5 * float64(i+1)
	}
	return &Checkpoint{
		State: State{
			Step: 42, Time: 1.5, DT: 0.005,
			Scale: 0.04, T0: 0.1, Age0: 13.2,
			Theta: 0.75, Eps: 0.02, G: 1, Ncrit: 2000, LeafCap: 8,
			RebuildEvery: 1, PMGrid: 64, Engine: 1, Shards: 2, Seed: 99,
			TotalInteractions: 123456,
			RecChecks:         10, RecRetries: 2, RecCorrupt: 1, RecExcluded: 3,
			RecFallback: 4, RecHostOnly: true,
			HWInteractions: 777, HWPipeSeconds: 0.25, HWBusSeconds: 0.125,
			HWBytes: 8192, HWRuns: 17, HWJPasses: 19, HWClamps: 5,
			FaultBitFlips: 6, FaultStuckCalls: 7, FaultBusErrors: 8, FaultTransients: 9,
			Primed: true,
		},
		Sys: s,
	}
}

func encode(t *testing.T, c *Checkpoint) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	c := sampleCheckpoint(200)
	c2, err := Read(bytes.NewReader(encode(t, c)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.State, c2.State) {
		t.Errorf("state mismatch:\n got %+v\nwant %+v", c2.State, c.State)
	}
	s, s2 := c.Sys, c2.Sys
	if s2.N() != s.N() {
		t.Fatalf("N = %d, want %d", s2.N(), s.N())
	}
	for i := range s.Pos {
		if s.Pos[i] != s2.Pos[i] || s.Vel[i] != s2.Vel[i] || s.Acc[i] != s2.Acc[i] ||
			s.Mass[i] != s2.Mass[i] || s.Pot[i] != s2.Pot[i] || s.ID[i] != s2.ID[i] {
			t.Fatalf("particle %d not bitwise identical", i)
		}
	}
}

func TestEmptySystemRoundTrip(t *testing.T) {
	c := &Checkpoint{Sys: nbody.New(0)}
	c2, err := Read(bytes.NewReader(encode(t, c)))
	if err != nil {
		t.Fatal(err)
	}
	if c2.Sys.N() != 0 {
		t.Errorf("N = %d", c2.Sys.N())
	}
}

// TestEveryBitFlipDetected flips one bit in every byte of a small
// encoded checkpoint and demands the reader reject each mutant: the
// format has no slack bytes whose corruption could pass unnoticed.
func TestEveryBitFlipDetected(t *testing.T) {
	data := encode(t, sampleCheckpoint(8))
	mutant := make([]byte, len(data))
	for i := range data {
		copy(mutant, data)
		mutant[i] ^= 1 << uint(i%8)
		if _, err := Read(bytes.NewReader(mutant)); err == nil {
			t.Fatalf("bit flip at byte %d of %d accepted", i, len(data))
		}
	}
}

func TestEveryTruncationDetected(t *testing.T) {
	data := encode(t, sampleCheckpoint(8))
	for cut := 0; cut < len(data); cut++ {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", cut, len(data))
		}
	}
	// Trailing garbage is tolerated (the reader consumes exactly the
	// declared sections) — but the declared content must still verify.
	if _, err := Read(bytes.NewReader(append(append([]byte{}, data...), 0xAA))); err != nil {
		t.Errorf("trailing byte rejected: %v", err)
	}
}

func TestReadRejectsWrongMagicAndVersion(t *testing.T) {
	data := encode(t, sampleCheckpoint(4))
	bad := append([]byte{}, data...)
	bad[0] ^= 0xFF
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append(bad[:0], data...)
	bad[4] = 99
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("future version accepted")
	}
}

func TestWriteRejectsInconsistentSystem(t *testing.T) {
	c := sampleCheckpoint(4)
	c.Sys.Pot = c.Sys.Pot[:2]
	var buf bytes.Buffer
	if err := Write(&buf, c); err == nil {
		t.Error("inconsistent arrays accepted")
	}
	if err := Write(&buf, nil); err == nil {
		t.Error("nil checkpoint accepted")
	}
}

// sampleBlockCheckpoint extends the sample with version-2 block
// scheduling state: distinct rungs across particles, a non-zero tick on
// a common step boundary of every occupied rung.
func sampleBlockCheckpoint(n int) *Checkpoint {
	c := sampleCheckpoint(n)
	rungs := make([]uint8, n)
	for i := range rungs {
		rungs[i] = uint8(i % 3) // rungs 0..2, all boundaries align at tick 0
	}
	c.Block = &BlockState{
		Mode: ModeBlock, Tick: 0, DTMin: 0.001, Eta: 0.2, MaxRung: 4, Rungs: rungs,
	}
	return c
}

func TestBlockRoundTrip(t *testing.T) {
	c := sampleBlockCheckpoint(64)
	c.Block.Tick = 8 // boundary of rungs 0..3
	data := encode(t, c)
	c2, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if c2.Block == nil {
		t.Fatal("block state lost")
	}
	if !reflect.DeepEqual(c.Block, c2.Block) {
		t.Errorf("block state mismatch:\n got %+v\nwant %+v", c2.Block, c.Block)
	}
	if !reflect.DeepEqual(c.State, c2.State) {
		t.Error("scalar state mismatch in v2 file")
	}
}

func TestAdaptiveBlockRoundTrip(t *testing.T) {
	c := sampleCheckpoint(16)
	c.Block = &BlockState{Mode: ModeAdaptive, DTMin: 0.0005, Eta: 0.25}
	c2, err := Read(bytes.NewReader(encode(t, c)))
	if err != nil {
		t.Fatal(err)
	}
	if c2.Block == nil || c2.Block.Mode != ModeAdaptive || c2.Block.Eta != 0.25 {
		t.Errorf("adaptive block state = %+v", c2.Block)
	}
	if len(c2.Block.Rungs) != 0 {
		t.Errorf("adaptive mode carried %d rungs", len(c2.Block.Rungs))
	}
}

// TestV1FilesUnchangedAndStillReadable pins backward compatibility: a
// checkpoint without block state must encode byte-identically to the
// pre-v2 format (version 1, two sections) and still read back.
func TestV1FilesUnchangedAndStillReadable(t *testing.T) {
	data := encode(t, sampleCheckpoint(8))
	le := binaryLE(t, data)
	if v := le; v != 1 {
		t.Errorf("no-block checkpoint wrote version %d, want 1", v)
	}
	c2, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if c2.Block != nil {
		t.Errorf("v1 file produced block state %+v", c2.Block)
	}
}

// binaryLE extracts the version word from an encoded checkpoint.
func binaryLE(t *testing.T, data []byte) uint32 {
	t.Helper()
	if len(data) < 8 {
		t.Fatal("short header")
	}
	return uint32(data[4]) | uint32(data[5])<<8 | uint32(data[6])<<16 | uint32(data[7])<<24
}

func TestBlockEveryBitFlipDetected(t *testing.T) {
	data := encode(t, sampleBlockCheckpoint(8))
	mutant := make([]byte, len(data))
	for i := range data {
		copy(mutant, data)
		mutant[i] ^= 1 << uint(i%8)
		if _, err := Read(bytes.NewReader(mutant)); err == nil {
			t.Fatalf("bit flip at byte %d of %d accepted", i, len(data))
		}
	}
}

func TestBlockValidationRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*BlockState, int)
	}{
		{"unknown mode", func(b *BlockState, n int) { b.Mode = 3 }},
		{"negative tick", func(b *BlockState, n int) { b.Tick = -1 }},
		{"tick past span", func(b *BlockState, n int) { b.Tick = int64(1) << uint(b.MaxRung) }},
		{"max rung huge", func(b *BlockState, n int) { b.MaxRung = 63 }},
		{"rung above max", func(b *BlockState, n int) { b.MaxRung = 1; b.Rungs[3] = 2 }},
		{"rung count short", func(b *BlockState, n int) { b.Rungs = b.Rungs[:n-1] }},
		{"zero dtmin", func(b *BlockState, n int) { b.DTMin = 0 }},
		{"nan eta", func(b *BlockState, n int) { b.Eta = nan() }},
		{"adaptive with rungs", func(b *BlockState, n int) { b.Mode = ModeAdaptive }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := sampleBlockCheckpoint(8)
			tc.mut(c.Block, 8)
			var buf bytes.Buffer
			if err := Write(&buf, c); err == nil {
				t.Errorf("writer accepted %s", tc.name)
			}
		})
	}
}

func nan() float64 { return math.NaN() }
