// Package ckpt implements the durable run-state layer: a versioned,
// section-CRC'd checkpoint format capturing the *complete* simulation
// state — particle system including post-force accelerations and
// potentials, integrator phase, step index and simulation time,
// cosmology anchors, the run's config fingerprint, and the cumulative
// recovery/hardware counters — plus a rotating on-disk Store with a
// manifest for latest-valid discovery.
//
// A snapshot (package snapio) is initial conditions plus provenance; a
// checkpoint is everything needed to continue a run so that the resumed
// trajectory is bitwise identical to the uninterrupted one. Corruption
// is always detected: every section carries a CRC-32C and the reader
// verifies structure, bounds and checksums before returning anything —
// a truncated or bit-flipped checkpoint yields an error, never silently
// wrong physics.
//
// # File format (versions 1 and 2)
//
//	uint32  magic "G5CP"
//	uint32  version
//	uint32  section count (2 for version 1, 3 for version 2)
//	        section "STAT": tag [4]byte, length uint64, payload, crc32c
//	        section "PART": tag [4]byte, length uint64, payload, crc32c
//	        section "RUNG": tag [4]byte, length uint64, payload, crc32c  (v2 only)
//
// All integers are little-endian. STAT is the fixed-size State struct;
// PART is int64 N followed by positions, velocities, accelerations
// (3×float64 each), masses, potentials (float64) and IDs (int64), all
// N long. Section lengths are validated exactly (8 + 96·N for PART), so
// a forged length cannot drive a runaway allocation.
//
// Version 2 adds the RUNG section carrying per-particle timestep
// scheduling state (BlockState): the scheduling mode, the block clock,
// the rung-criterion scalars and the per-particle rung bytes. Writers
// emit version 1 — byte-identical to before the format existed — when
// the checkpoint has no Block, so shared-dt runs keep producing v1
// files and v1 readers keep working on them.
package ckpt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/fsx"
	"repro/internal/nbody"
	"repro/internal/snapio"
	"repro/internal/vec"
)

// Magic identifies checkpoint files ("G5CP").
const Magic = 0x47354350

// Version is the base checkpoint format version (no RUNG section).
const Version = 1

// VersionBlock is the format version carrying the RUNG scheduling
// section; emitted only when Checkpoint.Block is set.
const VersionBlock = 2

// MaxParticles bounds the particle count a reader will accept; a forged
// header beyond it fails before any large allocation.
const MaxParticles = 1 << 31

const (
	tagState = "STAT"
	tagPart  = "PART"
	tagRung  = "RUNG"
)

// Scheduling modes stored in BlockState.Mode.
const (
	// ModeAdaptive is shared adaptive dt (TimestepCriterion): no
	// per-particle rungs, the criterion scalars alone.
	ModeAdaptive = 1
	// ModeBlock is hierarchical block timesteps: per-particle rungs and
	// the block tick clock.
	ModeBlock = 2
)

// bytesPerParticle is the PART payload size per particle: pos, vel, acc
// (3 × 3 float64) + mass + pot (float64) + id (int64).
const bytesPerParticle = 9*8 + 8 + 8 + 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// State is the scalar simulation state stored in the STAT section. All
// fields are fixed-size so the binary layout is the struct's field
// order; any change to this struct is a format version bump.
//
// Fingerprint fields record the configuration the checkpointed run was
// using; zero (or -1 for Engine) means unknown. Resume merges them with
// the caller's config and fails loudly on a conflict.
type State struct {
	// Step is the number of completed integration steps.
	Step int64
	// Time is the elapsed simulation time.
	Time float64
	// DT is the integration timestep.
	DT float64

	// Scale, T0 and Age0 are the cosmology anchors of the driving run
	// (base scale factor and the EdS schedule's start time and a=1 age);
	// all zero for non-cosmological runs.
	Scale float64
	T0    float64
	Age0  float64

	// Config fingerprint (0 = unset/unknown).
	Theta        float64
	Eps          float64
	G            float64
	Ncrit        int64
	LeafCap      int64
	RebuildEvery int64
	PMGrid       int64
	// Engine is the force-engine kind as an integer (-1 = unknown).
	Engine int64
	// Shards is the cluster shard count (bitwise-neutral: any K yields
	// the same trajectory; recorded for provenance and inherit-if-unset).
	Shards int64
	// Seed is the IC generator seed, for provenance only.
	Seed uint64

	// TotalInteractions is the whole-run cumulative pairwise
	// interaction count.
	TotalInteractions int64

	// Guard recovery counters (g5.Recovery), whole-run cumulative.
	RecChecks   int64
	RecRetries  int64
	RecCorrupt  int64
	RecExcluded int64
	RecFallback int64
	RecHostOnly bool

	// Hardware activity counters (g5.Counters), whole-run cumulative.
	HWInteractions int64
	HWPipeSeconds  float64
	HWBusSeconds   float64
	HWBytes        int64
	HWRuns         int64
	HWJPasses      int64
	HWClamps       int64

	// Injected-fault activity counters (g5.FaultStats), whole-run
	// cumulative.
	FaultBitFlips   int64
	FaultStuckCalls int64
	FaultBusErrors  int64
	FaultTransients int64

	// Primed marks the particle accelerations and potentials as valid
	// post-force state: a primed resume continues without re-priming,
	// exactly like the uninterrupted run's next step.
	Primed bool
}

// stateSize is the exact binary size of State; fixed at init.
var stateSize = func() int {
	n := binary.Size(State{})
	if n <= 0 {
		panic("ckpt: State is not fixed-size")
	}
	return n
}()

// BlockState is the per-particle timestep scheduling state stored in
// the version-2 RUNG section. Checkpoints are taken at block boundaries
// (Tick == 0 for an idle scheduler is the common case, but any common
// step boundary the integrator accepts is storable), so a resumed run
// re-enters the block loop exactly where the uninterrupted one was.
type BlockState struct {
	// Mode is the scheduling mode (ModeAdaptive or ModeBlock).
	Mode int64
	// Tick is the block clock in DTMin units (ModeBlock only).
	Tick int64
	// DTMin and Eta are the rung-criterion scalars (Eta doubles as the
	// adaptive criterion's eta in ModeAdaptive).
	DTMin float64
	Eta   float64
	// MaxRung is the coarsest rung exponent (ModeBlock only).
	MaxRung int64
	// Rungs are the per-particle rung assignments indexed by particle
	// ID; empty in ModeAdaptive, exactly N long in ModeBlock.
	Rungs []uint8
}

// rungFixedSize is the RUNG payload size excluding the rung bytes:
// Mode, Tick, DTMin, Eta, MaxRung, and the rung-array length prefix.
const rungFixedSize = 6 * 8

// validate applies the format-level invariants given the particle
// count of the PART section.
func (b *BlockState) validate(n int) error {
	switch b.Mode {
	case ModeAdaptive:
		if len(b.Rungs) != 0 {
			return fmt.Errorf("adaptive scheduling with %d rung entries", len(b.Rungs))
		}
	case ModeBlock:
		if b.MaxRung < 0 || b.MaxRung > 62 {
			return fmt.Errorf("implausible max rung %d", b.MaxRung)
		}
		if len(b.Rungs) != n {
			return fmt.Errorf("%d rung entries for N=%d", len(b.Rungs), n)
		}
		if b.Tick < 0 || b.Tick >= int64(1)<<uint(b.MaxRung) {
			return fmt.Errorf("tick %d outside block span %d", b.Tick, int64(1)<<uint(b.MaxRung))
		}
		for i, r := range b.Rungs {
			if int64(r) > b.MaxRung {
				return fmt.Errorf("rung %d at index %d exceeds max rung %d", r, i, b.MaxRung)
			}
		}
		if !(b.DTMin > 0) || math.IsInf(b.DTMin, 0) {
			return fmt.Errorf("non-positive dtmin %v", b.DTMin)
		}
	default:
		return fmt.Errorf("unknown scheduling mode %d", b.Mode)
	}
	if math.IsNaN(b.DTMin) || math.IsInf(b.DTMin, 0) || math.IsNaN(b.Eta) || math.IsInf(b.Eta, 0) {
		return fmt.Errorf("non-finite criterion scalars dtmin=%v eta=%v", b.DTMin, b.Eta)
	}
	return nil
}

// Checkpoint is the complete durable run state.
type Checkpoint struct {
	State State
	// Sys is the particle system, in the exact in-memory (tree) order
	// of the checkpointed step.
	Sys *nbody.System
	// Block, when non-nil, is the per-particle timestep scheduling
	// state; its presence switches the file to VersionBlock.
	Block *BlockState
}

// FromSnapshot adapts a legacy snapshot into a resumable checkpoint:
// the snapshot's particles become initial conditions (accelerations are
// not trusted — the resume re-primes) and the header's provenance
// fields seed the fingerprint. A version-1 snapshot has no stored DT;
// State.DT is then 0 and resume demands an explicit timestep.
func FromSnapshot(h snapio.Header, s *nbody.System) *Checkpoint {
	return &Checkpoint{
		State: State{
			Step:   h.Step,
			Time:   h.Time,
			DT:     h.DT,
			Scale:  h.Scale,
			Theta:  h.Theta,
			Eps:    h.Eps,
			Engine: -1,
		},
		Sys: s,
	}
}

// Write serialises the checkpoint to w.
func Write(w io.Writer, c *Checkpoint) error {
	if c == nil || c.Sys == nil {
		return fmt.Errorf("ckpt: nil checkpoint")
	}
	s := c.Sys
	n := s.N()
	if len(s.Vel) != n || len(s.Acc) != n || len(s.Mass) != n || len(s.Pot) != n || len(s.ID) != n {
		return fmt.Errorf("ckpt: inconsistent particle arrays")
	}
	if c.Block != nil {
		if err := c.Block.validate(n); err != nil {
			return fmt.Errorf("ckpt: block state: %w", err)
		}
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	le := binary.LittleEndian

	version, sections := uint32(Version), uint32(2)
	if c.Block != nil {
		version, sections = VersionBlock, 3
	}
	var hdr [12]byte
	le.PutUint32(hdr[0:], Magic)
	le.PutUint32(hdr[4:], version)
	le.PutUint32(hdr[8:], sections)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}

	// STAT
	if err := writeSection(bw, tagState, uint64(stateSize), func(sw io.Writer) error {
		return binary.Write(sw, le, &c.State)
	}); err != nil {
		return err
	}

	// PART
	partLen := uint64(8 + n*bytesPerParticle)
	if err := writeSection(bw, tagPart, partLen, func(sw io.Writer) error {
		if err := binary.Write(sw, le, int64(n)); err != nil {
			return err
		}
		for _, arr := range [][]vec.V3{s.Pos, s.Vel, s.Acc} {
			for _, p := range arr {
				if err := binary.Write(sw, le, [3]float64{p.X, p.Y, p.Z}); err != nil {
					return err
				}
			}
		}
		if err := binary.Write(sw, le, s.Mass); err != nil {
			return err
		}
		if err := binary.Write(sw, le, s.Pot); err != nil {
			return err
		}
		return binary.Write(sw, le, s.ID)
	}); err != nil {
		return err
	}

	// RUNG (version 2 only)
	if b := c.Block; b != nil {
		rungLen := uint64(rungFixedSize + len(b.Rungs))
		if err := writeSection(bw, tagRung, rungLen, func(sw io.Writer) error {
			for _, v := range []int64{b.Mode, b.Tick} {
				if err := binary.Write(sw, le, v); err != nil {
					return err
				}
			}
			for _, v := range []float64{b.DTMin, b.Eta} {
				if err := binary.Write(sw, le, v); err != nil {
					return err
				}
			}
			if err := binary.Write(sw, le, b.MaxRung); err != nil {
				return err
			}
			if err := binary.Write(sw, le, int64(len(b.Rungs))); err != nil {
				return err
			}
			_, err := sw.Write(b.Rungs)
			return err
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeSection writes one tagged, length-prefixed, CRC-trailed section.
// The payload streams through a CRC writer, so no section-sized buffer
// is needed; the declared length is verified against the bytes actually
// produced.
func writeSection(w io.Writer, tag string, length uint64, payload func(io.Writer) error) error {
	le := binary.LittleEndian
	if _, err := io.WriteString(w, tag); err != nil {
		return err
	}
	if err := binary.Write(w, le, length); err != nil {
		return err
	}
	cw := &crcWriter{w: w}
	if err := payload(cw); err != nil {
		return err
	}
	if cw.n != int64(length) {
		return fmt.Errorf("ckpt: section %s wrote %d bytes, declared %d", tag, cw.n, length)
	}
	return binary.Write(w, le, cw.crc)
}

// Read parses and fully validates a checkpoint: magic, version, section
// structure, exact lengths, particle-count bounds and every CRC. It
// returns an error on any deviation; a successful return is a complete,
// checksum-verified checkpoint.
func Read(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	le := binary.LittleEndian

	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("ckpt: reading header: %w", err)
	}
	if m := le.Uint32(hdr[0:]); m != Magic {
		return nil, fmt.Errorf("ckpt: bad magic %#x", m)
	}
	version := le.Uint32(hdr[4:])
	if version != Version && version != VersionBlock {
		return nil, fmt.Errorf("ckpt: unsupported version %d", version)
	}
	wantSections := uint32(2)
	if version == VersionBlock {
		wantSections = 3
	}
	if ns := le.Uint32(hdr[8:]); ns != wantSections {
		return nil, fmt.Errorf("ckpt: version %d expects %d sections, header says %d", version, wantSections, ns)
	}

	c := &Checkpoint{}

	// STAT: fixed size known up front.
	if err := readSection(br, tagState, func(length uint64, pr io.Reader) error {
		if length != uint64(stateSize) {
			return fmt.Errorf("state section is %d bytes, want %d (format drift?)", length, stateSize)
		}
		return binary.Read(pr, le, &c.State)
	}); err != nil {
		return nil, err
	}

	// PART: length is validated against the N it declares.
	if err := readSection(br, tagPart, func(length uint64, pr io.Reader) error {
		var n64 int64
		if err := binary.Read(pr, le, &n64); err != nil {
			return fmt.Errorf("particle count: %w", err)
		}
		if n64 < 0 || n64 > MaxParticles {
			return fmt.Errorf("implausible particle count %d", n64)
		}
		if want := uint64(8 + n64*bytesPerParticle); length != want {
			return fmt.Errorf("particle section is %d bytes for N=%d, want %d", length, n64, want)
		}
		sys, err := readParticles(pr, int(n64))
		if err != nil {
			return err
		}
		c.Sys = sys
		return nil
	}); err != nil {
		return nil, err
	}

	// RUNG (version 2): fixed scalars plus the rung array, whose length
	// prefix must agree with the declared section length and the
	// particle count already read from PART.
	if version == VersionBlock {
		if err := readSection(br, tagRung, func(length uint64, pr io.Reader) error {
			if length < rungFixedSize {
				return fmt.Errorf("rung section is %d bytes, want at least %d", length, rungFixedSize)
			}
			b := &BlockState{}
			for _, dst := range []*int64{&b.Mode, &b.Tick} {
				if err := binary.Read(pr, le, dst); err != nil {
					return err
				}
			}
			for _, dst := range []*float64{&b.DTMin, &b.Eta} {
				if err := binary.Read(pr, le, dst); err != nil {
					return err
				}
			}
			if err := binary.Read(pr, le, &b.MaxRung); err != nil {
				return err
			}
			var nr int64
			if err := binary.Read(pr, le, &nr); err != nil {
				return err
			}
			if nr < 0 || nr > MaxParticles {
				return fmt.Errorf("implausible rung count %d", nr)
			}
			if want := uint64(rungFixedSize + nr); length != want {
				return fmt.Errorf("rung section is %d bytes for %d rungs, want %d", length, nr, want)
			}
			if nr > 0 {
				b.Rungs = make([]uint8, nr)
				if _, err := io.ReadFull(pr, b.Rungs); err != nil {
					return fmt.Errorf("rungs: %w", err)
				}
			}
			if err := b.validate(c.Sys.N()); err != nil {
				return err
			}
			c.Block = b
			return nil
		}); err != nil {
			return nil, err
		}
	}

	if !stateFinite(&c.State) {
		return nil, fmt.Errorf("ckpt: non-finite scalar state")
	}
	return c, nil
}

// readSection consumes one section, streaming the payload through a CRC
// reader and verifying the stored checksum after the parser has
// consumed exactly the declared length. The parse result is discarded
// by the caller if this returns an error, so corrupt payload bytes are
// never integrated.
func readSection(br io.Reader, wantTag string, parse func(length uint64, pr io.Reader) error) error {
	le := binary.LittleEndian
	var tag [4]byte
	if _, err := io.ReadFull(br, tag[:]); err != nil {
		return fmt.Errorf("ckpt: reading section tag: %w", err)
	}
	if string(tag[:]) != wantTag {
		return fmt.Errorf("ckpt: section %q where %q expected", tag[:], wantTag)
	}
	var length uint64
	if err := binary.Read(br, le, &length); err != nil {
		return fmt.Errorf("ckpt: section %s length: %w", wantTag, err)
	}
	if length > 8+uint64(MaxParticles)*bytesPerParticle {
		return fmt.Errorf("ckpt: section %s declares implausible length %d", wantTag, length)
	}
	cr := &crcReader{r: io.LimitReader(br, int64(length))}
	if err := parse(length, cr); err != nil {
		return fmt.Errorf("ckpt: section %s: %w", wantTag, err)
	}
	if cr.n != int64(length) {
		return fmt.Errorf("ckpt: section %s parser consumed %d of %d bytes", wantTag, cr.n, length)
	}
	var stored uint32
	if err := binary.Read(br, le, &stored); err != nil {
		return fmt.Errorf("ckpt: section %s checksum: %w", wantTag, err)
	}
	if stored != cr.crc {
		return fmt.Errorf("ckpt: section %s CRC mismatch (stored %#08x, computed %#08x): checkpoint is corrupt", wantTag, stored, cr.crc)
	}
	return nil
}

// readParticles parses the PART arrays. Buffers grow as data actually
// arrives (like snapio), so a truncated stream fails with a clean error
// before N-sized memory is committed.
func readParticles(pr io.Reader, n int) (*nbody.System, error) {
	le := binary.LittleEndian
	pre := n
	if pre > 1<<16 {
		pre = 1 << 16
	}
	readV3s := func(what string) ([]vec.V3, error) {
		out := make([]vec.V3, 0, pre)
		var raw [24]byte
		for i := 0; i < n; i++ {
			if _, err := io.ReadFull(pr, raw[:]); err != nil {
				return nil, fmt.Errorf("%s: %w", what, err)
			}
			out = append(out, vec.V3{
				X: math.Float64frombits(le.Uint64(raw[0:])),
				Y: math.Float64frombits(le.Uint64(raw[8:])),
				Z: math.Float64frombits(le.Uint64(raw[16:])),
			})
		}
		return out, nil
	}
	readF64s := func(what string) ([]float64, error) {
		out := make([]float64, 0, pre)
		var raw [8]byte
		for i := 0; i < n; i++ {
			if _, err := io.ReadFull(pr, raw[:]); err != nil {
				return nil, fmt.Errorf("%s: %w", what, err)
			}
			out = append(out, math.Float64frombits(le.Uint64(raw[:])))
		}
		return out, nil
	}

	pos, err := readV3s("positions")
	if err != nil {
		return nil, err
	}
	vel, err := readV3s("velocities")
	if err != nil {
		return nil, err
	}
	acc, err := readV3s("accelerations")
	if err != nil {
		return nil, err
	}
	mass, err := readF64s("masses")
	if err != nil {
		return nil, err
	}
	pot, err := readF64s("potentials")
	if err != nil {
		return nil, err
	}
	id := make([]int64, 0, pre)
	var raw [8]byte
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(pr, raw[:]); err != nil {
			return nil, fmt.Errorf("ids: %w", err)
		}
		id = append(id, int64(le.Uint64(raw[:])))
	}
	return &nbody.System{Pos: pos, Vel: vel, Acc: acc, Mass: mass, Pot: pot, ID: id}, nil
}

// stateFinite rejects NaN/Inf in the float scalar state: corrupt values
// that happen to pass CRC (a writer bug, not bit rot) must still never
// reach the integrator.
func stateFinite(st *State) bool {
	for _, v := range []float64{
		st.Time, st.DT, st.Scale, st.T0, st.Age0,
		st.Theta, st.Eps, st.G,
		st.HWPipeSeconds, st.HWBusSeconds,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// WriteFile writes a checkpoint atomically: temp file, fsync, rename,
// directory fsync. A crash at any instant leaves either the previous
// file or the complete new one. Returns the bytes written.
func WriteFile(path string, c *Checkpoint) (int64, error) {
	return fsx.AtomicWriteFile(path, func(w io.Writer) error {
		return Write(w, c)
	})
}

// ReadFile loads and validates a checkpoint from the named file.
func ReadFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// crcWriter tees writes into a CRC-32C and counts bytes.
type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	c.n += int64(n)
	return n, err
}

// crcReader tees reads into a CRC-32C and counts bytes.
type crcReader struct {
	r   io.Reader
	crc uint32
	n   int64
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	c.n += int64(n)
	return n, err
}
