package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func saveAt(t *testing.T, st *Store, step int64) SaveInfo {
	t.Helper()
	c := sampleCheckpoint(8)
	c.State.Step = step
	c.State.Time = float64(step) * 0.005
	info, err := st.Save(c)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func TestStoreRotationKeepsLastK(t *testing.T) {
	st, err := OpenStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for step := int64(5); step <= 30; step += 5 {
		saveAt(t, st, step)
	}
	gens, err := st.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 3 {
		t.Fatalf("kept %d generations, want 3: %+v", len(gens), gens)
	}
	for i, wantStep := range []int64{20, 25, 30} {
		if gens[i].Step != wantStep {
			t.Errorf("generation %d at step %d, want %d", i, gens[i].Step, wantStep)
		}
	}
	// Rotated files are really gone and no temp files linger.
	ents, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range ents {
		files = append(files, e.Name())
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
	if len(files) != 4 { // 3 checkpoints + manifest
		t.Errorf("directory holds %v, want 3 checkpoints + manifest", files)
	}
}

func TestStoreSameStepReplaces(t *testing.T) {
	st, err := OpenStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	saveAt(t, st, 10)
	saveAt(t, st, 10)
	gens, err := st.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 1 || gens[0].Step != 10 {
		t.Fatalf("generations = %+v, want single step-10 entry", gens)
	}
}

func TestLatestValidPicksNewest(t *testing.T) {
	st, err := OpenStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	saveAt(t, st, 5)
	saveAt(t, st, 10)
	c, gen, err := st.LatestValid()
	if err != nil {
		t.Fatal(err)
	}
	if gen.Step != 10 || c.State.Step != 10 {
		t.Errorf("latest = step %d (gen %d), want 10", c.State.Step, gen.Step)
	}
}

func TestLatestValidFallsBackPastCorruptGeneration(t *testing.T) {
	st, err := OpenStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	saveAt(t, st, 5)
	info := saveAt(t, st, 10)

	// Corrupt the newest generation the way a torn write or bit rot
	// would: truncate to half.
	data, err := os.ReadFile(info.Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(info.Path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	c, gen, err := st.LatestValid()
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	if gen.Step != 5 || c.State.Step != 5 {
		t.Errorf("fell back to step %d, want 5", gen.Step)
	}
}

func TestLatestValidAllCorruptIsLoud(t *testing.T) {
	st, err := OpenStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	info := saveAt(t, st, 5)
	if err := os.WriteFile(info.Path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = st.LatestValid()
	if err == nil {
		t.Fatal("all-corrupt store did not error")
	}
	if errors.Is(err, ErrNoCheckpoint) {
		t.Fatal("all-corrupt store reported as empty — that silently restarts physics")
	}
}

func TestLatestValidEmptyStore(t *testing.T) {
	st, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Keep() != DefaultKeep {
		t.Errorf("keep = %d, want default %d", st.Keep(), DefaultKeep)
	}
	if _, _, err := st.LatestValid(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestDiscoveryWithoutManifest(t *testing.T) {
	st, err := OpenStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	saveAt(t, st, 5)
	saveAt(t, st, 10)
	// Lose the manifest (e.g. crash between checkpoint and manifest
	// write on a fresh store): discovery must fall back to the scan.
	if err := os.Remove(filepath.Join(st.Dir(), ManifestName)); err != nil {
		t.Fatal(err)
	}
	c, gen, err := st.LatestValid()
	if err != nil {
		t.Fatal(err)
	}
	if gen.Step != 10 || c.State.Step != 10 {
		t.Errorf("scan fallback found step %d, want 10", gen.Step)
	}

	// A corrupt manifest must behave the same as a missing one.
	if err := os.WriteFile(filepath.Join(st.Dir(), ManifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, gen, err = st.LatestValid(); err != nil || gen.Step != 10 {
		t.Errorf("corrupt-manifest fallback: gen=%+v err=%v", gen, err)
	}
}

func TestStoreIgnoresForeignFiles(t *testing.T) {
	st, err := OpenStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(st.Dir(), "notes.txt"), []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}
	for step := int64(1); step <= 4; step++ {
		saveAt(t, st, step)
	}
	if _, err := os.Stat(filepath.Join(st.Dir(), "notes.txt")); err != nil {
		t.Errorf("foreign file was pruned: %v", err)
	}
}
