package ckpt

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/fsx"
)

// ManifestName is the store's index file, rewritten atomically after
// every save. It lists the retained generations newest-last; discovery
// falls back to a directory scan when it is missing or unreadable.
const ManifestName = "MANIFEST.json"

// DefaultKeep is the rotation depth when OpenStore is given keep <= 0.
const DefaultKeep = 3

// ErrNoCheckpoint reports that a store holds no checkpoint at all (as
// opposed to holding only corrupt ones, which is a loud error).
var ErrNoCheckpoint = errors.New("ckpt: no checkpoint found")

// Generation describes one retained checkpoint.
type Generation struct {
	// File is the checkpoint filename, relative to the store directory.
	File string `json:"file"`
	// Step and Time locate the generation in the run.
	Step int64   `json:"step"`
	Time float64 `json:"time"`
	// Bytes is the file size as written.
	Bytes int64 `json:"bytes"`
}

// manifest is the ManifestName JSON document.
type manifest struct {
	Version int          `json:"version"`
	Entries []Generation `json:"entries"` // ascending by step
}

// SaveInfo reports one completed save.
type SaveInfo struct {
	// Path is the absolute (store-dir-joined) checkpoint path.
	Path string
	// Step is the checkpoint's step index.
	Step int64
	// Bytes is the serialized size.
	Bytes int64
}

// Store is a rotating on-disk checkpoint directory: atomic writes, a
// manifest for latest-valid discovery, and keep-last-K pruning. It is
// single-writer by contract (one run owns its checkpoint directory).
type Store struct {
	dir  string
	keep int
}

// OpenStore opens (creating if needed) a checkpoint directory keeping
// the last keep generations (DefaultKeep when keep <= 0).
func OpenStore(dir string, keep int) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("ckpt: empty store directory")
	}
	if keep <= 0 {
		keep = DefaultKeep
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: creating store %s: %w", dir, err)
	}
	return &Store{dir: dir, keep: keep}, nil
}

// Dir returns the store directory.
func (st *Store) Dir() string { return st.dir }

// Keep returns the rotation depth.
func (st *Store) Keep() int { return st.keep }

// genName returns the canonical filename for a step's checkpoint.
func genName(step int64) string { return fmt.Sprintf("ckpt-%012d.g5ck", step) }

// genStep parses a canonical checkpoint filename; ok is false for
// foreign files.
func genStep(name string) (int64, bool) {
	if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".g5ck") {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".g5ck")
	if len(digits) != 12 {
		return 0, false
	}
	step, err := strconv.ParseInt(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return step, true
}

// Save writes the checkpoint atomically, updates the manifest and
// prunes generations beyond the rotation depth. A checkpoint for a step
// that already exists (a resumed run re-reaching it) replaces the old
// generation atomically.
func (st *Store) Save(c *Checkpoint) (SaveInfo, error) {
	if c == nil {
		return SaveInfo{}, fmt.Errorf("ckpt: nil checkpoint")
	}
	name := genName(c.State.Step)
	path := filepath.Join(st.dir, name)
	n, err := WriteFile(path, c)
	if err != nil {
		return SaveInfo{}, err
	}

	entries, _ := st.generations() // manifest loss is recoverable; rebuild below
	kept := entries[:0]
	for _, g := range entries {
		if g.Step != c.State.Step {
			kept = append(kept, g)
		}
	}
	kept = append(kept, Generation{File: name, Step: c.State.Step, Time: c.State.Time, Bytes: n})
	sort.Slice(kept, func(i, j int) bool { return kept[i].Step < kept[j].Step })
	if len(kept) > st.keep {
		kept = kept[len(kept)-st.keep:]
	}
	if err := st.writeManifest(manifest{Version: 1, Entries: kept}); err != nil {
		return SaveInfo{}, err
	}
	if err := st.pruneExcept(kept); err != nil {
		return SaveInfo{}, err
	}
	return SaveInfo{Path: path, Step: c.State.Step, Bytes: n}, nil
}

// writeManifest rewrites the manifest atomically.
func (st *Store) writeManifest(m manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("ckpt: encoding manifest: %w", err)
	}
	data = append(data, '\n')
	if _, err := fsx.AtomicWriteFile(filepath.Join(st.dir, ManifestName), func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	}); err != nil {
		return fmt.Errorf("ckpt: writing manifest: %w", err)
	}
	return nil
}

// pruneExcept removes every canonical checkpoint file not listed in
// kept (rotation plus cleanup of orphans from interrupted saves).
func (st *Store) pruneExcept(kept []Generation) error {
	keep := make(map[string]bool, len(kept))
	for _, g := range kept {
		keep[g.File] = true
	}
	names, err := st.scanNames()
	if err != nil {
		return err
	}
	var errs []error
	for _, name := range names {
		if keep[name] {
			continue
		}
		if err := os.Remove(filepath.Join(st.dir, name)); err != nil && !os.IsNotExist(err) {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// scanNames lists the canonical checkpoint filenames in the store,
// ascending by step.
func (st *Store) scanNames() ([]string, error) {
	ents, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: scanning %s: %w", st.dir, err)
	}
	type item struct {
		name string
		step int64
	}
	var items []item
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if step, ok := genStep(e.Name()); ok {
			items = append(items, item{e.Name(), step})
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].step < items[j].step })
	names := make([]string, len(items))
	for i, it := range items {
		names[i] = it.name
	}
	return names, nil
}

// generations returns the known generations ascending by step: the
// manifest when readable, otherwise a directory scan (sizes from stat,
// times unknown). Entries whose files have vanished are dropped.
func (st *Store) generations() ([]Generation, error) {
	data, err := os.ReadFile(filepath.Join(st.dir, ManifestName))
	if err == nil {
		var m manifest
		if jerr := json.Unmarshal(data, &m); jerr == nil && m.Version == 1 {
			out := m.Entries[:0:0]
			for _, g := range m.Entries {
				if _, ok := genStep(g.File); !ok {
					continue // manifest must not name foreign files
				}
				if _, serr := os.Stat(filepath.Join(st.dir, g.File)); serr == nil {
					out = append(out, g)
				}
			}
			sort.Slice(out, func(i, j int) bool { return out[i].Step < out[j].Step })
			return out, nil
		}
		// Corrupt manifest: fall through to the scan.
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("ckpt: reading manifest: %w", err)
	}
	names, err := st.scanNames()
	if err != nil {
		return nil, err
	}
	out := make([]Generation, 0, len(names))
	for _, name := range names {
		step, _ := genStep(name)
		g := Generation{File: name, Step: step}
		if fi, serr := os.Stat(filepath.Join(st.dir, name)); serr == nil {
			g.Bytes = fi.Size()
		}
		out = append(out, g)
	}
	return out, nil
}

// Generations returns the retained generations, ascending by step.
func (st *Store) Generations() ([]Generation, error) { return st.generations() }

// LatestValid loads the newest checkpoint that passes full validation,
// walking backwards through older generations when the newest is
// corrupt or truncated. It returns ErrNoCheckpoint when the store holds
// none at all, and a loud combined error when every generation present
// is corrupt — a store full of garbage must stop the run, not silently
// start physics from scratch.
func (st *Store) LatestValid() (*Checkpoint, Generation, error) {
	gens, err := st.generations()
	if err != nil {
		return nil, Generation{}, err
	}
	if len(gens) == 0 {
		return nil, Generation{}, ErrNoCheckpoint
	}
	var errs []error
	for i := len(gens) - 1; i >= 0; i-- {
		c, rerr := ReadFile(filepath.Join(st.dir, gens[i].File))
		if rerr == nil {
			return c, gens[i], nil
		}
		errs = append(errs, rerr)
	}
	return nil, Generation{}, fmt.Errorf("ckpt: all %d checkpoint generation(s) in %s are invalid: %w",
		len(gens), st.dir, errors.Join(errs...))
}
