package integrate

import (
	"fmt"
	"math"

	"repro/internal/nbody"
)

// TimestepCriterion selects a global timestep from the current
// dynamical state. The paper used a fixed step (999 equal steps); the
// criterion is the standard extension for runs whose dynamical time
// shrinks as structure collapses.
type TimestepCriterion struct {
	// Eta is the dimensionless accuracy parameter (default 0.2).
	Eta float64
	// Eps is the softening length entering the acceleration criterion.
	Eps float64
	// MaxDT caps the step (0 = uncapped).
	MaxDT float64
	// MinDT floors the step (0 = unfloored); a floor guards against
	// pathological single-particle accelerations stalling the run.
	MinDT float64
}

// Pick returns the global timestep dt = η·min_i sqrt(eps/|a_i|), the
// standard collisionless softened-force criterion (e.g. GADGET's
// ErrTolIntAccuracy form). Accelerations must be current. A non-finite
// acceleration — a faulted board surviving guard fallback, an IC bug —
// is a loud error: silently folding NaN/Inf into the step size would
// poison the clock and every position after it.
func (c TimestepCriterion) Pick(s *nbody.System) (float64, error) {
	eta := c.Eta
	if eta == 0 {
		eta = 0.2
	}
	maxA := 0.0
	for i, a := range s.Acc {
		n := a.Norm()
		if math.IsNaN(n) || math.IsInf(n, 0) {
			return 0, fmt.Errorf("integrate: non-finite acceleration |a|=%v for particle %d (id %d): refusing to derive a timestep from corrupt forces", n, i, s.ID[i])
		}
		if n > maxA {
			maxA = n
		}
	}
	var dt float64
	if maxA == 0 || c.Eps <= 0 {
		dt = c.MaxDT // free system: no intrinsic scale
		if dt == 0 {
			dt = 1
		}
	} else {
		dt = eta * math.Sqrt(c.Eps/maxA)
	}
	if c.MaxDT > 0 && dt > c.MaxDT {
		dt = c.MaxDT
	}
	if c.MinDT > 0 && dt < c.MinDT {
		dt = c.MinDT
	}
	return dt, nil
}

// AdaptiveLeapfrog wraps Leapfrog with per-step timestep selection.
// Adapting dt breaks exact symplecticity, which is why fixed steps
// remain the default; the adaptive variant is for runs with deep
// collapse where a fixed step would either crawl or blow up.
//
// Resume note: the step size is a pure function of the current
// accelerations, which a checkpoint restores exactly, so a primed
// resume re-derives the identical dt sequence — adaptive runs are
// bitwise resumable with no extra scheduler state.
type AdaptiveLeapfrog struct {
	// Criterion picks each step.
	Criterion TimestepCriterion
	// Force computes accelerations.
	Force ForceFunc

	lastDT float64
	primed bool
}

// LastDT returns the most recent step size.
func (a *AdaptiveLeapfrog) LastDT() float64 { return a.lastDT }

// Prime computes the initial accelerations. Step calls it automatically
// if the caller has not.
func (a *AdaptiveLeapfrog) Prime(s *nbody.System) error {
	if err := a.Force(s); err != nil {
		return err
	}
	a.primed = true
	return nil
}

// Primed reports whether initial accelerations are available.
func (a *AdaptiveLeapfrog) Primed() bool { return a.primed }

// SetPrimed overrides the primed flag: a checkpoint resume restores
// post-force accelerations and marks the integrator primed, exactly
// like Leapfrog.SetPrimed.
func (a *AdaptiveLeapfrog) SetPrimed(primed bool) { a.primed = primed }

// Step advances by one adaptively chosen step and returns its size.
func (a *AdaptiveLeapfrog) Step(s *nbody.System) (float64, error) {
	if !a.primed {
		if err := a.Prime(s); err != nil {
			return 0, err
		}
	}
	dt, err := a.Criterion.Pick(s)
	if err != nil {
		return 0, err
	}
	half := dt / 2
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].MulAdd(half, s.Acc[i])
	}
	for i := range s.Pos {
		s.Pos[i] = s.Pos[i].MulAdd(dt, s.Vel[i])
	}
	if err := a.Force(s); err != nil {
		return 0, err
	}
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].MulAdd(half, s.Acc[i])
	}
	a.lastDT = dt
	return dt, nil
}

// RunUntil advances until the accumulated time reaches t (the final
// step is clamped to land exactly on t). Returns the number of steps.
func (a *AdaptiveLeapfrog) RunUntil(s *nbody.System, t float64) (int, error) {
	elapsed := 0.0
	steps := 0
	for elapsed < t {
		if !a.primed {
			if err := a.Prime(s); err != nil {
				return steps, err
			}
		}
		dt, err := a.Criterion.Pick(s)
		if err != nil {
			return steps, err
		}
		if elapsed+dt > t {
			dt = t - elapsed
		}
		half := dt / 2
		for i := range s.Vel {
			s.Vel[i] = s.Vel[i].MulAdd(half, s.Acc[i])
		}
		for i := range s.Pos {
			s.Pos[i] = s.Pos[i].MulAdd(dt, s.Vel[i])
		}
		if err := a.Force(s); err != nil {
			return steps, err
		}
		for i := range s.Vel {
			s.Vel[i] = s.Vel[i].MulAdd(half, s.Acc[i])
		}
		a.lastDT = dt
		elapsed += dt
		steps++
	}
	return steps, nil
}
