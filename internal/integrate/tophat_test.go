package integrate

import (
	"math"
	"sort"
	"testing"

	"repro/internal/nbody"
	"repro/internal/rng"
)

// TestTopHatCollapse validates the gravity+integration pipeline against
// the closed-Friedmann top-hat: a cold uniform sphere with Hubble-like
// outflow must expand, turn around near the analytic apocentre, recollapse
// close to the shell-ODE collapse time, and settle into a virialized
// remnant (an N-body top-hat bounces at finite radius instead of the
// fluid singularity, and shell crossing delays the deepest collapse by
// ~15 % — both well-known discreteness effects).
func TestTopHatCollapse(t *testing.T) {
	const (
		g  = 1.0
		m  = 1.0
		r0 = 1.0
		h0 = 1.0
		n  = 800
	)

	// Reference: radial Kepler ODE for the edge shell, RK4.
	shellCollapse := func() (tCollapse, rApo float64) {
		r, v := r0, h0*r0
		dt := 1e-4
		time := 0.0
		for r > 0.02*r0 && time < 100 {
			acc := func(r float64) float64 { return -g * m / (r * r) }
			k1r, k1v := v, acc(r)
			k2r, k2v := v+0.5*dt*k1v, acc(r+0.5*dt*k1r)
			k3r, k3v := v+0.5*dt*k2v, acc(r+0.5*dt*k2r)
			k4r, k4v := v+dt*k3v, acc(r+dt*k3r)
			r += dt / 6 * (k1r + 2*k2r + 2*k3r + k4r)
			v += dt / 6 * (k1v + 2*k2v + 2*k3v + k4v)
			if r > rApo {
				rApo = r
			}
			time += dt
		}
		return time, rApo
	}
	tRef, rApo := shellCollapse()
	// Analytic check of the reference itself: E = h²r²/2 − GM/r = −1/2
	// ⇒ apocentre at 2·r0 and collapse at 2π − (π/2 − 1) ≈ 5.71.
	if math.Abs(rApo-2*r0) > 0.01 || math.Abs(tRef-(2*math.Pi-(math.Pi/2-1))) > 0.05 {
		t.Fatalf("shell reference wrong: apo %v (want 2), collapse %v (want %.3f)",
			rApo, tRef, 2*math.Pi-(math.Pi/2-1))
	}

	// N-body run.
	s := nbody.UniformSphere(n, m, r0, rng.New(5))
	for i := range s.Vel {
		s.Vel[i] = s.Pos[i].Scale(h0)
	}
	const eps = 0.02
	dt := 2e-3
	lf, err := NewLeapfrog(dt, func(sys *nbody.System) error {
		nbody.DirectForces(sys, g, eps)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	r50 := func() float64 {
		radii := make([]float64, s.N())
		for i, p := range s.Pos {
			radii[i] = p.Norm()
		}
		sort.Float64s(radii)
		return radii[s.N()/2]
	}

	initialR50 := r50()
	maxR50, minR50 := initialR50, math.Inf(1)
	tMin := 0.0
	timeNow := 0.0
	steps := int(1.5 * tRef / dt)
	for k := 0; k < steps; k++ {
		if err := lf.Step(s); err != nil {
			t.Fatal(err)
		}
		timeNow += dt
		if k%20 != 0 {
			continue
		}
		r := r50()
		if r > maxR50 {
			maxR50 = r
		}
		if r < minR50 {
			minR50 = r
			tMin = timeNow
		}
	}

	// Expansion: the half-mass radius must have roughly doubled
	// (ideal: ×2 at turnaround).
	if maxR50 < 1.6*initialR50 || maxR50 > 2.4*initialR50 {
		t.Errorf("turnaround R50 = %.3f × initial, want ~2", maxR50/initialR50)
	}
	// Collapse: down to the virialized-remnant scale. The standard
	// top-hat result is R_vir = R_turnaround/2, i.e. the half-mass
	// radius returns to ≈0.5-0.6 of its initial value rather than the
	// fluid singularity.
	if minR50 > 0.65*initialR50 {
		t.Errorf("no deep collapse: min R50 = %.3f (initial %.3f)", minR50, initialR50)
	}
	// Collapse time within 25% of the shell ODE (shell crossing and
	// softening delay the N-body minimum).
	rel := (tMin - tRef) / tRef
	t.Logf("N-body deepest collapse at t=%.2f; shell ODE %.2f (deviation %+.0f%%); R50 %.2f -> %.2f -> %.2f",
		tMin, tRef, 100*rel, initialR50, maxR50, minR50)
	if rel < -0.10 || rel > 0.30 {
		t.Errorf("collapse time deviation %+.0f%% outside [-10%%, +30%%]", 100*rel)
	}
	// Virialization: after the bounce the remnant should be roughly in
	// virial equilibrium.
	ke := s.KineticEnergy()
	pe := nbody.PotentialEnergy(s, g, eps)
	virial := -2 * ke / pe
	if virial < 0.5 || virial > 2.0 {
		t.Errorf("post-collapse virial ratio = %.2f, expected O(1)", virial)
	}
}
