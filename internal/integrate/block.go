package integrate

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"

	"repro/internal/nbody"
)

// ActiveForceFunc computes accelerations and potentials for exactly the
// particles whose ID is marked in activeByID, leaving every other
// particle's Acc/Pot slot untouched (an inactive particle's stored
// acceleration is its state from its own last force evaluation and is
// still owed to its closing kick). nActive is the number of marked IDs,
// so implementations can size scratch and short-circuit the full-set
// case without rescanning the mask.
type ActiveForceFunc func(s *nbody.System, activeByID []bool, nActive int) error

// maxRungLimit bounds the rung ladder: span = 2^MaxRung ticks, and a
// ladder deeper than this means dt_min was chosen absurdly small
// relative to the block span rather than a real workload.
const maxRungLimit = 30

// RungCriterion maps an acceleration to a power-of-two timestep rung,
// generalizing TimestepCriterion from "one dt for the system" to "one
// rung per particle" (Fukushige & Kawai's hierarchical block steps).
// Rung k carries dt = DTMin·2^k; rung MaxRung spans the whole block.
type RungCriterion struct {
	// Eta is the dimensionless accuracy parameter (default 0.2).
	Eta float64
	// Eps is the softening length entering dt_i = η·sqrt(eps/|a_i|).
	Eps float64
	// DTMin is the rung-0 step, the quantum of the block clock.
	DTMin float64
	// MaxRung is the top rung; the block span is DTMin·2^MaxRung.
	MaxRung int
}

// Validate rejects criteria that cannot drive the block clock.
func (c RungCriterion) Validate() error {
	if !(c.DTMin > 0) || math.IsInf(c.DTMin, 0) {
		return fmt.Errorf("integrate: rung criterion needs DTMin > 0, got %v", c.DTMin)
	}
	if c.MaxRung < 0 || c.MaxRung > maxRungLimit {
		return fmt.Errorf("integrate: MaxRung %d outside [0, %d]", c.MaxRung, maxRungLimit)
	}
	return nil
}

// DT returns rung k's step, an exact power-of-two scaling of DTMin.
func (c RungCriterion) DT(k int) float64 {
	return c.DTMin * float64(int64(1)<<uint(k))
}

// Span returns the block span DTMin·2^MaxRung, the outer step size a
// block run advances per Step.
func (c RungCriterion) Span() float64 { return c.DT(c.MaxRung) }

// rungFor maps a finite acceleration norm to the largest rung whose
// step fits under dt = η·sqrt(eps/|a|), floored at rung 0 (a particle
// wanting a smaller step than DTMin runs at DTMin: the floor trades
// accuracy for a bounded clock, exactly like TimestepCriterion.MinDT).
// The continuous dt is returned for telemetry. Callers guard
// non-finite norms.
func (c RungCriterion) rungFor(aNorm float64) (int, float64) {
	if aNorm == 0 || c.Eps <= 0 {
		return c.MaxRung, c.Span() // free particle: no intrinsic scale
	}
	eta := c.Eta
	if eta == 0 {
		eta = 0.2
	}
	dt := eta * math.Sqrt(c.Eps/aNorm)
	for k := c.MaxRung; k > 0; k-- {
		if c.DT(k) <= dt {
			return k, dt
		}
	}
	return 0, dt
}

// rungPartial is one worker's share of the rung-assignment reduction.
// Each worker owns exactly one partial; the fold walks them in worker
// order so the merged telemetry is schedule-independent.
type rungPartial struct {
	sumDT  float64 // Σ continuous dt over this worker's closing particles
	minDT  float64 // min continuous dt (+Inf when none closed here)
	count  int64   // closing particles seen
	errID  int64   // first particle ID with a non-finite |a|, -1 if none
	errVal float64 // its |a|
}

// BlockLeapfrog advances a system under hierarchical power-of-two block
// timesteps. The block clock counts integer ticks of DTMin; a particle
// on rung k is at a step boundary exactly when tick ≡ 0 (mod 2^k). One
// Step call runs a full block of 2^MaxRung ticks:
//
//	for each substep:
//	  open:  half-kick every particle at a boundary (its own dt/2)
//	  drift: ALL particles by d·DTMin, d = ticks to the next boundary
//	  force: evaluate only the particles closing at the new tick
//	  close: half-kick the closing set, then reassign their rungs
//
// Rung reassignment is capped so a particle's next step stays aligned
// to the clock (new rung ≤ trailing-zeros(tick)); decreases are always
// legal. Every particle closes at the block boundary, so each Step ends
// fully synchronized — the state a checkpoint captures.
//
// Determinism anchor: with every particle pinned to a single rung, each
// substep opens and closes the full set, the drift spans the whole
// block in one MulAdd, and forces flow through the full-set Force path
// — instruction-for-instruction the same arithmetic as Leapfrog.Step.
type BlockLeapfrog struct {
	// Crit assigns rungs from accelerations.
	Crit RungCriterion
	// Force computes the full force set (priming and all-active substeps).
	Force ForceFunc
	// ForceActive computes forces for a marked subset. Nil falls back to
	// Force on every substep — correct but without the active-set win.
	ForceActive ActiveForceFunc
	// Workers bounds the rung-assignment fan-out (0 = GOMAXPROCS).
	Workers int

	rungs  []uint8 // particle ID -> rung
	active []bool  // particle ID -> at a step boundary this tick
	tick   int64   // block clock, in DTMin units, ∈ [0, 2^MaxRung)
	primed bool
	idsOK  bool // dense-ID validation done for the current system size

	partials []rungPartial

	// Per-Step telemetry, overwritten each call.
	lastSubsteps int64
	lastActiveI  int64
	lastSumDT    float64
	lastMinDT    float64
}

// NewBlockLeapfrog validates the criterion and force callbacks.
func NewBlockLeapfrog(crit RungCriterion, force ForceFunc, forceActive ActiveForceFunc) (*BlockLeapfrog, error) {
	if err := crit.Validate(); err != nil {
		return nil, err
	}
	if force == nil {
		return nil, fmt.Errorf("integrate: block leapfrog needs a force function")
	}
	return &BlockLeapfrog{Crit: crit, Force: force, ForceActive: forceActive}, nil
}

// Tick returns the block clock in DTMin units.
func (b *BlockLeapfrog) Tick() int64 { return b.tick }

// Primed reports whether initial forces and rungs are in place.
func (b *BlockLeapfrog) Primed() bool { return b.primed }

// SetPrimed overrides the primed flag for checkpoint resume: the
// restored accelerations are the post-force state, so re-priming would
// double-count the initial evaluation. Pair with SetState.
func (b *BlockLeapfrog) SetPrimed(primed bool) { b.primed = primed }

// LastSubsteps returns the substep count of the most recent Step.
func (b *BlockLeapfrog) LastSubsteps() int64 { return b.lastSubsteps }

// LastActiveI returns the total force-evaluated (closing) particle
// count across the most recent Step's substeps: the block-timestep
// analogue of "N per step", and the numerator of the active fraction.
func (b *BlockLeapfrog) LastActiveI() int64 { return b.lastActiveI }

// LastMinDT returns the smallest continuous criterion dt seen in the
// most recent rung assignment (+Inf before any assignment); a value
// below DT(0) means the rung-0 floor is truncating it.
func (b *BlockLeapfrog) LastMinDT() float64 { return b.lastMinDT }

// LastMeanDT returns the mean continuous criterion dt over the most
// recent Step's closing particles (0 before any Step).
func (b *BlockLeapfrog) LastMeanDT() float64 {
	if b.lastActiveI == 0 {
		return 0
	}
	return b.lastSumDT / float64(b.lastActiveI)
}

// Rungs returns a copy of the per-particle rung assignment, indexed by
// particle ID.
func (b *BlockLeapfrog) Rungs() []uint8 {
	out := make([]uint8, len(b.rungs))
	copy(out, b.rungs)
	return out
}

// Occupancy returns the particle count per rung, indexed 0..MaxRung.
func (b *BlockLeapfrog) Occupancy() []int64 {
	occ := make([]int64, b.Crit.MaxRung+1)
	for _, k := range b.rungs {
		occ[k]++
	}
	return occ
}

// SetState installs a checkpointed rung assignment and block clock.
// The tick must be a step boundary for every rung present (a resumed
// system's accelerations are each particle's last closing evaluation,
// which is only coherent at a common boundary); checkpoints are taken
// at block boundaries (tick 0), which trivially satisfy this.
func (b *BlockLeapfrog) SetState(rungs []uint8, tick int64) error {
	span := int64(1) << uint(b.Crit.MaxRung)
	if tick < 0 || tick >= span {
		return fmt.Errorf("integrate: restored tick %d outside block [0, %d)", tick, span)
	}
	for id, k := range rungs {
		if int(k) > b.Crit.MaxRung {
			return fmt.Errorf("integrate: restored rung %d for particle %d exceeds MaxRung %d", k, id, b.Crit.MaxRung)
		}
		if tick&((int64(1)<<uint(k))-1) != 0 {
			return fmt.Errorf("integrate: restored tick %d is mid-step for particle %d on rung %d", tick, id, k)
		}
	}
	b.rungs = append(b.rungs[:0], rungs...)
	b.ensure(len(rungs))
	b.tick = tick
	b.idsOK = false
	return nil
}

// ensure sizes the per-ID scratch for n particles.
func (b *BlockLeapfrog) ensure(n int) {
	if cap(b.rungs) < n {
		b.rungs = append(b.rungs[:cap(b.rungs)], make([]uint8, n-cap(b.rungs))...)
	}
	b.rungs = b.rungs[:n]
	if cap(b.active) < n {
		b.active = append(b.active[:cap(b.active)], make([]bool, n-cap(b.active))...)
	}
	b.active = b.active[:n]
}

// validateIDs checks the dense-ID contract the per-ID state depends
// on: every ID in [0, N), no duplicates. Morton sorting permutes the
// index order, so rungs/active are keyed by ID, not index.
func (b *BlockLeapfrog) validateIDs(s *nbody.System) error {
	n := len(s.Pos)
	seen := b.active // scratch; markActive rewrites it before use
	for i := range seen {
		seen[i] = false
	}
	for i := 0; i < n; i++ {
		id := s.ID[i]
		if id < 0 || id >= int64(n) {
			return fmt.Errorf("integrate: particle %d has ID %d outside dense range [0, %d)", i, id, n)
		}
		if seen[id] {
			return fmt.Errorf("integrate: duplicate particle ID %d", id)
		}
		seen[id] = true
	}
	b.idsOK = true
	return nil
}

// Prime computes initial forces and the initial rung assignment at
// tick 0. Step calls it automatically if the caller has not.
func (b *BlockLeapfrog) Prime(s *nbody.System) error {
	if err := b.Crit.Validate(); err != nil {
		return err
	}
	if b.Force == nil {
		return fmt.Errorf("integrate: block leapfrog needs a force function")
	}
	b.ensure(len(s.Pos))
	if err := b.validateIDs(s); err != nil {
		return err
	}
	if err := b.Force(s); err != nil {
		return err
	}
	b.tick = 0
	for id := range b.active {
		b.active[id] = true // tick 0 is a boundary for every rung
	}
	b.lastActiveI = 0
	if err := b.assignRungs(s); err != nil {
		return err
	}
	b.primed = true
	return nil
}

// Step advances one full block (2^MaxRung ticks = Crit.Span() time).
func (b *BlockLeapfrog) Step(s *nbody.System) error {
	if !b.primed {
		if err := b.Prime(s); err != nil {
			return err
		}
	}
	if len(b.rungs) != len(s.Pos) {
		return fmt.Errorf("integrate: system size %d does not match block state for %d particles", len(s.Pos), len(b.rungs))
	}
	if !b.idsOK {
		if err := b.validateIDs(s); err != nil {
			return err
		}
	}
	span := int64(1) << uint(b.Crit.MaxRung)
	b.lastSubsteps, b.lastActiveI, b.lastSumDT = 0, 0, 0
	b.lastMinDT = math.Inf(1)
	for {
		nOpen := b.markActive(s)
		if nOpen == 0 {
			return fmt.Errorf("integrate: block clock stalled: no particle opens at tick %d", b.tick)
		}
		b.halfKick(s)
		d := b.nextStop()
		if d <= 0 || b.tick+d > span {
			return fmt.Errorf("integrate: block clock broke alignment: advance %d from tick %d exceeds span %d", d, b.tick, span)
		}
		dtd := b.Crit.DTMin * float64(d)
		for i := range s.Pos {
			s.Pos[i] = s.Pos[i].MulAdd(dtd, s.Vel[i])
		}
		b.tick += d
		nClose := b.markActive(s)
		if nClose == 0 {
			return fmt.Errorf("integrate: block clock stalled: no particle closes at tick %d", b.tick)
		}
		if nClose == len(s.Pos) || b.ForceActive == nil {
			if err := b.Force(s); err != nil {
				return err
			}
		} else {
			if err := b.ForceActive(s, b.active, nClose); err != nil {
				return err
			}
		}
		b.halfKick(s)
		b.lastActiveI += int64(nClose)
		b.lastSubsteps++
		if err := b.assignRungs(s); err != nil {
			return err
		}
		if b.tick >= span {
			b.tick = 0
			return nil
		}
	}
}

// markActive marks every particle at a step boundary of the current
// tick and returns the count. The same predicate yields the opening
// set before a drift and the closing set after it.
func (b *BlockLeapfrog) markActive(s *nbody.System) int {
	n := 0
	for i := range s.Pos {
		id := s.ID[i]
		on := b.tick&((int64(1)<<uint(b.rungs[id]))-1) == 0
		b.active[id] = on
		if on {
			n++
		}
	}
	return n
}

// halfKick applies dt/2 velocity kicks to the marked set, each particle
// at its own rung's step.
func (b *BlockLeapfrog) halfKick(s *nbody.System) {
	for i := range s.Vel {
		id := s.ID[i]
		if !b.active[id] {
			continue
		}
		half := b.Crit.DT(int(b.rungs[id])) / 2
		s.Vel[i] = s.Vel[i].MulAdd(half, s.Acc[i])
	}
}

// nextStop returns the tick distance to the nearest step boundary of
// any particle. The minimum-rung particles control the substep; the
// result always lands on or before the block boundary because every
// rung's step divides the span.
func (b *BlockLeapfrog) nextStop() int64 {
	span := int64(1) << uint(b.Crit.MaxRung)
	d := span - b.tick
	for _, k := range b.rungs {
		step := int64(1) << uint(k)
		rem := step - b.tick&(step-1)
		if rem < d {
			d = rem
		}
	}
	return d
}

// assignRungs reassigns the marked (closing) set's rungs from their
// fresh accelerations. Increases are capped at trailing-zeros(tick) so
// the particle's next step starts on a boundary it is actually at;
// decreases are always aligned because a smaller power of two divides
// the current one.
//
// This is the sanctioned fpreduce rung reduction (DESIGN.md §16): each
// go-launched worker accumulates dt telemetry into its own rungPartial
// through a captured pointer — per-worker ownership the analyzer cannot
// prove — and the fold below walks the partials in worker order, so the
// merged sum and min are independent of goroutine scheduling. The rung
// writes themselves are indexed by particle ID and race-free because
// index ranges partition the closing set.
func (b *BlockLeapfrog) assignRungs(s *nbody.System) error {
	rungCap := b.Crit.MaxRung
	if b.tick != 0 {
		if tz := bits.TrailingZeros64(uint64(b.tick)); tz < rungCap {
			rungCap = tz
		}
	}
	n := len(s.Pos)
	workers := b.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n/2048 {
		workers = n / 2048 // serial below ~2k particles: spawn cost dominates
	}
	if workers < 1 {
		workers = 1
	}
	if cap(b.partials) < workers {
		b.partials = make([]rungPartial, workers)
	}
	b.partials = b.partials[:workers]
	for w := range b.partials {
		b.partials[w] = rungPartial{minDT: math.Inf(1), errID: -1}
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		part := &b.partials[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				id := s.ID[i]
				if !b.active[id] {
					continue
				}
				a := s.Acc[i].Norm()
				if math.IsNaN(a) || math.IsInf(a, 0) {
					if part.errID < 0 {
						part.errID, part.errVal = id, a
					}
					continue
				}
				k, dt := b.Crit.rungFor(a)
				if k > rungCap {
					k = rungCap
				}
				b.rungs[id] = uint8(k)
				part.count++
				part.sumDT += dt
				if dt < part.minDT {
					part.minDT = dt
				}
			}
		}()
	}
	wg.Wait()
	for w := range b.partials {
		p := &b.partials[w]
		if p.errID >= 0 {
			return fmt.Errorf("integrate: non-finite acceleration |a|=%v for particle id %d at tick %d: refusing to assign a rung from corrupt forces", p.errVal, p.errID, b.tick)
		}
		b.lastSumDT += p.sumDT
		if p.minDT < b.lastMinDT {
			b.lastMinDT = p.minDT
		}
	}
	return nil
}
