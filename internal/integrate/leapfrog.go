// Package integrate advances particle systems through time. The paper
// integrates Newton's equations with a constant-timestep leapfrog on
// the host while GRAPE-5 supplies the accelerations; the headline run
// is an isolated expanding sphere evolved in physical coordinates from
// z = 24 to z = 0 in 999 equal steps.
package integrate

import (
	"fmt"

	"repro/internal/nbody"
)

// ForceFunc fills s.Acc (and s.Pot) from the current positions. It may
// reorder the system (the treecode sorts particles into Morton order);
// identity is tracked through s.ID.
type ForceFunc func(s *nbody.System) error

// Leapfrog is the kick-drift-kick (velocity Verlet) integrator with a
// fixed timestep: second order, symplectic, time-reversible — the
// standard choice for collisionless N-body work then and now.
type Leapfrog struct {
	// DT is the timestep.
	DT float64
	// Force computes accelerations.
	Force ForceFunc

	primed bool
}

// NewLeapfrog constructs an integrator.
func NewLeapfrog(dt float64, force ForceFunc) (*Leapfrog, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("integrate: timestep must be positive, got %v", dt)
	}
	if force == nil {
		return nil, fmt.Errorf("integrate: nil force function")
	}
	return &Leapfrog{DT: dt, Force: force}, nil
}

// Prime computes the initial accelerations. It must run once before the
// first Step; Step calls it automatically if the caller has not.
func (l *Leapfrog) Prime(s *nbody.System) error {
	if err := l.Force(s); err != nil {
		return err
	}
	l.primed = true
	return nil
}

// Primed reports whether initial accelerations are available (Prime or
// a first Step has run, or SetPrimed marked restored checkpoint state).
func (l *Leapfrog) Primed() bool { return l.primed }

// SetPrimed overrides the primed flag. A checkpoint resume restores the
// post-force accelerations alongside positions and velocities and marks
// the integrator primed, so the resumed run's next Step consumes them
// exactly like the uninterrupted run would — no re-priming force call,
// no divergence.
func (l *Leapfrog) SetPrimed(primed bool) { l.primed = primed }

// Step advances the system by one timestep: half-kick, drift,
// recompute forces, half-kick.
func (l *Leapfrog) Step(s *nbody.System) error {
	if !l.primed {
		if err := l.Prime(s); err != nil {
			return err
		}
	}
	half := l.DT / 2
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].MulAdd(half, s.Acc[i])
	}
	for i := range s.Pos {
		s.Pos[i] = s.Pos[i].MulAdd(l.DT, s.Vel[i])
	}
	if err := l.Force(s); err != nil {
		return err
	}
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].MulAdd(half, s.Acc[i])
	}
	return nil
}

// Run advances n steps.
func (l *Leapfrog) Run(s *nbody.System, n int) error {
	for k := 0; k < n; k++ {
		if err := l.Step(s); err != nil {
			return fmt.Errorf("integrate: step %d: %w", k, err)
		}
	}
	return nil
}

// Reverse flips all velocities; running the same number of steps again
// retraces the trajectory (up to roundoff), the classic reversibility
// check for symplectic integrators.
func Reverse(s *nbody.System) {
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Neg()
	}
}

// Schedule describes a fixed-step time integration window.
type Schedule struct {
	// T0 and T1 are the start and end times.
	T0, T1 float64
	// Steps is the number of equal steps.
	Steps int
}

// DT returns the step size.
func (sc Schedule) DT() float64 { return (sc.T1 - sc.T0) / float64(sc.Steps) }

// Validate reports schedule errors.
func (sc Schedule) Validate() error {
	if sc.Steps < 1 {
		return fmt.Errorf("integrate: Steps must be >= 1")
	}
	if !(sc.T1 > sc.T0) {
		return fmt.Errorf("integrate: T1 must exceed T0")
	}
	return nil
}
