package integrate

import (
	"math"
	"testing"

	"repro/internal/nbody"
	"repro/internal/rng"
	"repro/internal/vec"
)

func TestTimestepCriterionPick(t *testing.T) {
	s := nbody.New(2)
	s.Mass[0], s.Mass[1] = 1, 1
	s.Acc[0] = vec.V3{X: 4}
	s.Acc[1] = vec.V3{X: 1}
	c := TimestepCriterion{Eta: 0.2, Eps: 0.01}
	// dt = 0.2 * sqrt(0.01/4) = 0.2*0.05 = 0.01.
	got, err := c.Pick(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.01) > 1e-14 {
		t.Errorf("dt = %v, want 0.01", got)
	}
}

func TestTimestepPickRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		s := nbody.New(2)
		s.Mass[0], s.Mass[1] = 1, 1
		s.Acc[0] = vec.V3{X: 1}
		s.Acc[1] = vec.V3{Y: bad}
		c := TimestepCriterion{Eta: 0.2, Eps: 0.01}
		if dt, err := c.Pick(s); err == nil {
			t.Errorf("Pick accepted |a| with component %v: dt = %v", bad, dt)
		}
	}
}

func TestTimestepCaps(t *testing.T) {
	s := nbody.New(1)
	s.Mass[0] = 1
	s.Acc[0] = vec.V3{X: 1e-12}
	c := TimestepCriterion{Eta: 0.2, Eps: 1, MaxDT: 0.5}
	if got, err := c.Pick(s); err != nil || got != 0.5 {
		t.Errorf("uncapped dt leaked: %v (err %v)", got, err)
	}
	s.Acc[0] = vec.V3{X: 1e12}
	c.MinDT = 1e-3
	if got, err := c.Pick(s); err != nil || got != 1e-3 {
		t.Errorf("floor not applied: %v (err %v)", got, err)
	}
}

func TestTimestepFreeSystem(t *testing.T) {
	s := nbody.New(1)
	s.Mass[0] = 1
	c := TimestepCriterion{MaxDT: 0.25}
	if got, err := c.Pick(s); err != nil || got != 0.25 {
		t.Errorf("free-system dt = %v (err %v)", got, err)
	}
	if got, err := (TimestepCriterion{}).Pick(s); err != nil || got != 1 {
		t.Errorf("unbounded free-system dt = %v (err %v)", got, err)
	}
}

func TestAdaptiveLeapfrogEnergy(t *testing.T) {
	const g, eps = 1.0, 0.05
	s := nbody.Plummer(200, 1, 1, g, rng.New(9))
	e0 := s.KineticEnergy() + nbody.PotentialEnergy(s, g, eps)
	a := &AdaptiveLeapfrog{
		Criterion: TimestepCriterion{Eta: 0.05, Eps: eps, MaxDT: 0.01},
		Force:     directForce(g, eps),
	}
	steps, err := a.RunUntil(s, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if steps < 50 {
		t.Errorf("suspiciously few steps: %d", steps)
	}
	if a.LastDT() <= 0 {
		t.Error("no recorded dt")
	}
	e1 := s.KineticEnergy() + nbody.PotentialEnergy(s, g, eps)
	if rel := math.Abs(e1-e0) / math.Abs(e0); rel > 5e-3 {
		t.Errorf("adaptive energy drift = %v", rel)
	}
}

func TestAdaptiveStepReturnsDT(t *testing.T) {
	const g = 1.0
	s := nbody.TwoBody(1, 1, 1, g)
	a := &AdaptiveLeapfrog{
		Criterion: TimestepCriterion{Eta: 0.1, Eps: 0.1, MaxDT: 0.01},
		Force:     directForce(g, 0.1),
	}
	dt, err := a.Step(s)
	if err != nil {
		t.Fatal(err)
	}
	if dt <= 0 || dt > 0.01 {
		t.Errorf("dt = %v", dt)
	}
}

func TestRunUntilLandsExactly(t *testing.T) {
	s := nbody.TwoBody(1, 1, 1, 1)
	a := &AdaptiveLeapfrog{
		Criterion: TimestepCriterion{Eta: 0.2, Eps: 0.1, MaxDT: 0.013},
		Force:     directForce(1, 0.1),
	}
	target := 0.1
	steps, err := a.RunUntil(s, target)
	if err != nil {
		t.Fatal(err)
	}
	// Sum of steps equals the target: the final step is clamped, so the
	// count must be ceil(target/maxdt) or so.
	if steps < int(target/0.013) {
		t.Errorf("steps = %d", steps)
	}
}
