package integrate

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/nbody"
	"repro/internal/rng"
	"repro/internal/vec"
)

// directActiveForce mirrors nbody.DirectForces for a marked i-subset,
// leaving inactive particles' Acc/Pot untouched — the ActiveForceFunc
// contract the treecode path also honours.
func directActiveForce(g, eps float64) ActiveForceFunc {
	return func(s *nbody.System, active []bool, nActive int) error {
		n := s.N()
		eps2 := eps * eps
		for i := 0; i < n; i++ {
			if !active[s.ID[i]] {
				continue
			}
			var ax, ay, az, pot float64
			pi := s.Pos[i]
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				dx := s.Pos[j].X - pi.X
				dy := s.Pos[j].Y - pi.Y
				dz := s.Pos[j].Z - pi.Z
				r2 := dx*dx + dy*dy + dz*dz + eps2
				inv := 1 / math.Sqrt(r2)
				inv3 := inv / r2
				mj := s.Mass[j]
				ax += mj * inv3 * dx
				ay += mj * inv3 * dy
				az += mj * inv3 * dz
				pot -= mj * inv
			}
			s.Acc[i] = vec.V3{X: g * ax, Y: g * ay, Z: g * az}
			s.Pot[i] = g * pot
		}
		return nil
	}
}

func requireSameSystems(t *testing.T, want, got *nbody.System, what string) {
	t.Helper()
	for i := range want.Pos {
		if want.Pos[i] != got.Pos[i] || want.Vel[i] != got.Vel[i] ||
			want.Acc[i] != got.Acc[i] || want.Pot[i] != got.Pot[i] ||
			want.ID[i] != got.ID[i] {
			t.Fatalf("%s: particle %d diverged:\n  pos %v vs %v\n  vel %v vs %v",
				what, i, want.Pos[i], got.Pos[i], want.Vel[i], got.Vel[i])
		}
	}
}

// TestBlockSingleRungMatchesLeapfrog is the determinism anchor: with
// MaxRung=0 every substep spans the whole block with the full set
// active, and the scheduler must replay Leapfrog's arithmetic
// instruction for instruction — bitwise, at both scheduler widths.
func TestBlockSingleRungMatchesLeapfrog(t *testing.T) {
	const g, eps, dt, steps = 1.0, 0.05, 0.01, 25
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		ref := nbody.Plummer(150, 1, 1, g, rng.New(7))
		lf, err := NewLeapfrog(dt, directForce(g, eps))
		if err != nil {
			t.Fatal(err)
		}
		if err := lf.Run(ref, steps); err != nil {
			t.Fatal(err)
		}

		blk := nbody.Plummer(150, 1, 1, g, rng.New(7))
		bl, err := NewBlockLeapfrog(
			RungCriterion{Eta: 0.2, Eps: eps, DTMin: dt, MaxRung: 0},
			directForce(g, eps), directActiveForce(g, eps))
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < steps; s++ {
			if err := bl.Step(blk); err != nil {
				t.Fatal(err)
			}
			if bl.LastSubsteps() != 1 || bl.LastActiveI() != int64(blk.N()) {
				t.Fatalf("single-rung step ran %d substeps with %d active, want 1 full substep",
					bl.LastSubsteps(), bl.LastActiveI())
			}
		}
		runtime.GOMAXPROCS(prev)
		requireSameSystems(t, ref, blk, "single rung")
	}
}

// TestBlockPinnedTopRungMatchesLeapfrog pins every particle to the top
// of a 4-level ladder (an enormous η makes the criterion ask for a huge
// dt, which clamps to MaxRung) and checks the whole block collapses to
// one full-set substep bitwise equal to a global leapfrog at the span.
func TestBlockPinnedTopRungMatchesLeapfrog(t *testing.T) {
	const g, eps, dtmin, steps = 1.0, 0.05, 0.0025, 12
	crit := RungCriterion{Eta: 1e12, Eps: eps, DTMin: dtmin, MaxRung: 3}

	ref := nbody.Plummer(120, 1, 1, g, rng.New(11))
	lf, err := NewLeapfrog(crit.Span(), directForce(g, eps))
	if err != nil {
		t.Fatal(err)
	}
	if err := lf.Run(ref, steps); err != nil {
		t.Fatal(err)
	}

	blk := nbody.Plummer(120, 1, 1, g, rng.New(11))
	bl, err := NewBlockLeapfrog(crit, directForce(g, eps), directActiveForce(g, eps))
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		if err := bl.Step(blk); err != nil {
			t.Fatal(err)
		}
		if bl.LastSubsteps() != 1 {
			t.Fatalf("pinned top rung ran %d substeps, want 1", bl.LastSubsteps())
		}
	}
	requireSameSystems(t, ref, blk, "pinned top rung")
}

// TestBlockMultiRungEnergy drives a Plummer sphere through a genuinely
// hierarchical schedule (several occupied rungs, per-substep active
// subsets) and checks energy conservation plus the force-evaluation
// saving the hierarchy exists to buy.
func TestBlockMultiRungEnergy(t *testing.T) {
	const g, eps = 1.0, 0.02
	s := nbody.Plummer(250, 1, 1, g, rng.New(4))
	e0 := s.KineticEnergy() + nbody.PotentialEnergy(s, g, eps)
	crit := RungCriterion{Eta: 0.05, Eps: eps, DTMin: 0.001, MaxRung: 4}
	bl, err := NewBlockLeapfrog(crit, directForce(g, eps), directActiveForce(g, eps))
	if err != nil {
		t.Fatal(err)
	}
	steps := int(math.Round(0.5 / crit.Span()))
	var activeI, substeps int64
	for i := 0; i < steps; i++ {
		if err := bl.Step(s); err != nil {
			t.Fatal(err)
		}
		activeI += bl.LastActiveI()
		substeps += bl.LastSubsteps()
	}
	occupied := 0
	for _, c := range bl.Occupancy() {
		if c > 0 {
			occupied++
		}
	}
	if occupied < 2 {
		t.Fatalf("degenerate schedule: only %d occupied rungs (occupancy %v)", occupied, bl.Occupancy())
	}
	// A shared-dt run at the minimum rung would evaluate N particles on
	// every tick; the hierarchy must do strictly better.
	globalEvals := int64(s.N()) * int64(steps) * (int64(1) << uint(crit.MaxRung))
	if activeI >= globalEvals {
		t.Fatalf("no active-set saving: %d evals vs %d global", activeI, globalEvals)
	}
	if substeps <= int64(steps) {
		t.Fatalf("schedule never split a block: %d substeps over %d steps", substeps, steps)
	}
	e1 := s.KineticEnergy() + nbody.PotentialEnergy(s, g, eps)
	if rel := math.Abs(e1-e0) / math.Abs(e0); rel > 1e-3 {
		t.Errorf("block-timestep energy drift = %v", rel)
	}
}

// TestBlockNilForceActiveFallsBack: without an ActiveForceFunc every
// substep takes the full-force path — correct, just without the win.
func TestBlockNilForceActiveFallsBack(t *testing.T) {
	const g, eps = 1.0, 0.02
	s := nbody.Plummer(100, 1, 1, g, rng.New(5))
	bl, err := NewBlockLeapfrog(
		RungCriterion{Eta: 0.05, Eps: eps, DTMin: 0.001, MaxRung: 3},
		directForce(g, eps), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := bl.Step(s); err != nil {
			t.Fatal(err)
		}
	}
	if bl.Tick() != 0 {
		t.Fatalf("tick %d after whole blocks", bl.Tick())
	}
}

func TestBlockRejectsNonFiniteAcceleration(t *testing.T) {
	s := nbody.Plummer(32, 1, 1, 1, rng.New(6))
	poison := func(sys *nbody.System) error {
		nbody.DirectForces(sys, 1, 0.05)
		sys.Acc[13] = vec.V3{X: math.NaN()}
		return nil
	}
	bl, err := NewBlockLeapfrog(
		RungCriterion{Eta: 0.2, Eps: 0.05, DTMin: 0.01, MaxRung: 2},
		poison, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := bl.Step(s); err == nil {
		t.Fatal("NaN acceleration survived rung assignment")
	}
}

func TestBlockValidation(t *testing.T) {
	if _, err := NewBlockLeapfrog(RungCriterion{DTMin: 0, MaxRung: 1}, directForce(1, 0), nil); err == nil {
		t.Error("DTMin=0 accepted")
	}
	if _, err := NewBlockLeapfrog(RungCriterion{DTMin: 0.1, MaxRung: -1}, directForce(1, 0), nil); err == nil {
		t.Error("negative MaxRung accepted")
	}
	if _, err := NewBlockLeapfrog(RungCriterion{DTMin: 0.1, MaxRung: maxRungLimit + 1}, directForce(1, 0), nil); err == nil {
		t.Error("absurd MaxRung accepted")
	}
	if _, err := NewBlockLeapfrog(RungCriterion{DTMin: 0.1, MaxRung: 2}, nil, nil); err == nil {
		t.Error("nil force accepted")
	}

	bl, err := NewBlockLeapfrog(RungCriterion{DTMin: 0.1, MaxRung: 2}, directForce(1, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := bl.SetState([]uint8{0, 1, 3}, 0); err == nil {
		t.Error("rung above MaxRung accepted")
	}
	if err := bl.SetState([]uint8{0, 1, 2}, 4); err == nil {
		t.Error("tick outside block accepted")
	}
	if err := bl.SetState([]uint8{0, 2, 2}, 2); err == nil {
		t.Error("mid-step tick accepted for a rung-2 particle")
	}
	if err := bl.SetState([]uint8{0, 1, 2}, 0); err != nil {
		t.Errorf("boundary state rejected: %v", err)
	}
	if got := bl.Rungs(); len(got) != 3 || got[1] != 1 {
		t.Errorf("restored rungs = %v", got)
	}
}

func TestBlockPrimedFlag(t *testing.T) {
	calls := 0
	count := func(s *nbody.System) error {
		calls++
		for i := range s.Acc {
			s.Acc[i] = vec.V3{X: 1}
		}
		return nil
	}
	bl, err := NewBlockLeapfrog(RungCriterion{Eta: 0.2, DTMin: 0.01, MaxRung: 0}, count, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bl.Primed() {
		t.Fatal("fresh scheduler reports primed")
	}
	s := nbody.New(4)
	// A resume restores post-force accelerations plus the rung state and
	// marks the scheduler primed: no re-prime force call.
	if err := bl.SetState(make([]uint8, 4), 0); err != nil {
		t.Fatal(err)
	}
	bl.SetPrimed(true)
	if err := bl.Step(s); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("primed Step made %d force calls, want exactly the in-step one", calls)
	}
}

// TestBlockDeterministicAcrossWidths runs the same multi-rung schedule
// at Workers 1 and 4 and requires bitwise-identical state: the rung
// reduction's per-worker partials and ordered fold must keep goroutine
// scheduling out of the physics.
func TestBlockDeterministicAcrossWidths(t *testing.T) {
	const g, eps = 1.0, 0.02
	run := func(workers int) *nbody.System {
		s := nbody.Plummer(200, 1, 1, g, rng.New(8))
		bl, err := NewBlockLeapfrog(
			RungCriterion{Eta: 0.05, Eps: eps, DTMin: 0.001, MaxRung: 3},
			directForce(g, eps), directActiveForce(g, eps))
		if err != nil {
			t.Fatal(err)
		}
		bl.Workers = workers
		for i := 0; i < 8; i++ {
			if err := bl.Step(s); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	requireSameSystems(t, run(1), run(4), "worker widths")
}

// FuzzBlockSchedule checks the scheduler's two conservation laws under
// arbitrary rung ladders and restored states: the clock returns to the
// block boundary having advanced exactly the span, and no particle ever
// misses (or double-receives) a kick. With a constant unit acceleration
// and a dyadic DTMin every half-kick is exact in binary, so the total
// velocity gain per block must equal the span exactly — any skipped or
// duplicated kick shows up as a ULP-exact mismatch.
func FuzzBlockSchedule(f *testing.F) {
	f.Add(uint8(3), []byte{0, 1, 2, 3, 0, 1}, uint8(0))
	f.Add(uint8(0), []byte{0, 0, 0}, uint8(0))
	f.Add(uint8(4), []byte{4, 4, 4, 4}, uint8(2))
	f.Add(uint8(5), []byte{0, 5, 1, 4, 2, 3, 0, 5}, uint8(4))
	f.Fuzz(func(t *testing.T, maxRung uint8, rungBytes []byte, tickSeed uint8) {
		if maxRung > 6 || len(rungBytes) == 0 || len(rungBytes) > 64 {
			t.Skip()
		}
		const dtmin = 0.0009765625 // 2^-10: keeps every kick sum exact
		crit := RungCriterion{Eta: 1e12, Eps: 1, DTMin: dtmin, MaxRung: int(maxRung)}
		n := len(rungBytes)
		rungs := make([]uint8, n)
		minRung := maxRung
		for i, rb := range rungBytes {
			rungs[i] = rb % (maxRung + 1)
			if rungs[i] < minRung {
				minRung = rungs[i]
			}
		}
		// A restored tick must be a common step boundary: quantize the
		// fuzzed tick to the coarsest occupied rung's step.
		span := int64(1) << uint(maxRung)
		var maxOcc uint8
		for _, k := range rungs {
			if k > maxOcc {
				maxOcc = k
			}
		}
		tick := (int64(tickSeed) % span) &^ ((int64(1) << uint(maxOcc)) - 1)

		constant := func(s *nbody.System) error {
			for i := range s.Acc {
				s.Acc[i] = vec.V3{X: 1}
			}
			return nil
		}
		s := nbody.New(n)
		for i := range s.Mass {
			s.Mass[i] = 1
		}
		var bl *BlockLeapfrog
		activeConstant := func(sys *nbody.System, active []bool, nActive int) error {
			got := 0
			for id, on := range active {
				if on {
					got++
					// Never skip a kick: the marked set at an eval tick is
					// exactly the set of particles at a step boundary.
					if bl.Tick()&((int64(1)<<uint(bl.rungs[id]))-1) != 0 {
						t.Fatalf("particle %d force-evaluated mid-step at tick %d (rung %d)", id, bl.Tick(), bl.rungs[id])
					}
				}
			}
			if got != nActive {
				t.Fatalf("mask count %d != nActive %d", got, nActive)
			}
			for i := range sys.Acc {
				if active[sys.ID[i]] {
					sys.Acc[i] = vec.V3{X: 1}
				}
			}
			return nil
		}
		bl, err := NewBlockLeapfrog(crit, constant, activeConstant)
		if err != nil {
			t.Fatal(err)
		}
		if err := bl.SetState(rungs, tick); err != nil {
			t.Skip() // fuzzed state not a valid boundary; covered by TestBlockValidation
		}
		if err := constant(s); err != nil {
			t.Fatal(err)
		}
		bl.SetPrimed(true)
		v0 := make([]float64, n)
		for i := range v0 {
			v0[i] = s.Vel[i].X
		}
		if err := bl.Step(s); err != nil {
			t.Fatal(err)
		}
		if bl.Tick() != 0 {
			t.Fatalf("clock lost sync: tick %d after a full block (started at %d)", bl.Tick(), tick)
		}
		// Under constant acceleration each particle's velocity gain is the
		// total time its kicks covered: exactly the remaining span.
		want := dtmin * float64(span-tick)
		for i := range s.Vel {
			if got := s.Vel[i].X - v0[i]; got != want {
				t.Fatalf("particle %d kick time %v != %v: a kick was skipped or doubled (rungs %v, tick0 %d)",
					i, got, want, rungs, tick)
			}
		}
	})
}
