package integrate

import (
	"math"
	"testing"

	"repro/internal/nbody"
	"repro/internal/rng"
	"repro/internal/vec"
)

func directForce(g, eps float64) ForceFunc {
	return func(s *nbody.System) error {
		nbody.DirectForces(s, g, eps)
		return nil
	}
}

func TestNewLeapfrogValidation(t *testing.T) {
	if _, err := NewLeapfrog(0, directForce(1, 0)); err == nil {
		t.Error("dt=0 accepted")
	}
	if _, err := NewLeapfrog(-1, directForce(1, 0)); err == nil {
		t.Error("dt<0 accepted")
	}
	if _, err := NewLeapfrog(0.1, nil); err == nil {
		t.Error("nil force accepted")
	}
}

func TestTwoBodyCircularOrbit(t *testing.T) {
	// One full period of a circular orbit must return both bodies to
	// their initial positions to O(dt²) accuracy.
	const g = 1.0
	s := nbody.TwoBody(1, 1, 1, g)
	period := nbody.OrbitalPeriod(0.5, 2, g) // semi-major axis = d/2 ... for circular orbit of separation d, a_rel = d
	// For the relative orbit the semi-major axis is the separation d=1.
	period = nbody.OrbitalPeriod(1, 2, g)
	steps := 2000
	lf, err := NewLeapfrog(period/float64(steps), directForce(g, 0))
	if err != nil {
		t.Fatal(err)
	}
	init := s.Clone()
	if err := lf.Run(s, steps); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if d := s.Pos[i].Sub(init.Pos[i]).Norm(); d > 5e-3 {
			t.Errorf("body %d displaced %v after one period", i, d)
		}
	}
}

func TestEnergyConservationTwoBody(t *testing.T) {
	const g = 1.0
	s := nbody.TwoBody(2, 1, 1.5, g)
	e0 := s.KineticEnergy() + nbody.PotentialEnergy(s, g, 0)
	lf, _ := NewLeapfrog(0.001, directForce(g, 0))
	if err := lf.Run(s, 5000); err != nil {
		t.Fatal(err)
	}
	e1 := s.KineticEnergy() + nbody.PotentialEnergy(s, g, 0)
	if math.Abs(e1-e0)/math.Abs(e0) > 1e-5 {
		t.Errorf("energy drift = %v", (e1-e0)/e0)
	}
}

func TestEnergyConservationPlummer(t *testing.T) {
	const g, eps = 1.0, 0.05
	s := nbody.Plummer(300, 1, 1, g, rng.New(1))
	e0 := s.KineticEnergy() + nbody.PotentialEnergy(s, g, eps)
	lf, _ := NewLeapfrog(0.005, directForce(g, eps))
	if err := lf.Run(s, 200); err != nil {
		t.Fatal(err)
	}
	e1 := s.KineticEnergy() + nbody.PotentialEnergy(s, g, eps)
	if rel := math.Abs(e1-e0) / math.Abs(e0); rel > 2e-3 {
		t.Errorf("energy drift = %v over 1 time unit", rel)
	}
}

func TestMomentumConservation(t *testing.T) {
	const g = 1.0
	s := nbody.Plummer(200, 1, 1, g, rng.New(2))
	p0 := s.MeanVelocity().Scale(s.TotalMass())
	lf, _ := NewLeapfrog(0.01, directForce(g, 0.02))
	if err := lf.Run(s, 100); err != nil {
		t.Fatal(err)
	}
	p1 := s.MeanVelocity().Scale(s.TotalMass())
	if p1.Sub(p0).Norm() > 1e-11 {
		t.Errorf("momentum drift = %v", p1.Sub(p0).Norm())
	}
}

func TestTimeReversibility(t *testing.T) {
	const g, eps = 1.0, 0.05
	s := nbody.Plummer(100, 1, 1, g, rng.New(3))
	init := s.Clone()
	lf, _ := NewLeapfrog(0.01, directForce(g, eps))
	if err := lf.Run(s, 50); err != nil {
		t.Fatal(err)
	}
	Reverse(s)
	// Fresh integrator: forces must be re-primed after the reversal.
	lb, _ := NewLeapfrog(0.01, directForce(g, eps))
	if err := lb.Run(s, 50); err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for i := range s.Pos {
		if d := s.Pos[i].Sub(init.Pos[i]).Norm(); d > maxErr {
			maxErr = d
		}
	}
	if maxErr > 1e-9 {
		t.Errorf("reversed trajectory misses start by %v", maxErr)
	}
}

func TestDriftOnlyForFreeParticle(t *testing.T) {
	s := nbody.New(1)
	s.Mass[0] = 1
	s.Vel[0] = vec.V3{X: 2}
	zero := func(sys *nbody.System) error {
		for i := range sys.Acc {
			sys.Acc[i] = vec.Zero
		}
		return nil
	}
	lf, _ := NewLeapfrog(0.5, zero)
	if err := lf.Run(s, 4); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Pos[0].X-4) > 1e-14 {
		t.Errorf("free particle at %v, want x=4", s.Pos[0])
	}
}

func TestSchedule(t *testing.T) {
	sc := Schedule{T0: 1, T1: 3, Steps: 4}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if sc.DT() != 0.5 {
		t.Errorf("DT = %v", sc.DT())
	}
	if err := (Schedule{T0: 1, T1: 1, Steps: 4}).Validate(); err == nil {
		t.Error("empty window accepted")
	}
	if err := (Schedule{T0: 0, T1: 1, Steps: 0}).Validate(); err == nil {
		t.Error("zero steps accepted")
	}
}

func TestStepAutoPrimes(t *testing.T) {
	const g = 1.0
	s := nbody.TwoBody(1, 1, 1, g)
	lf, _ := NewLeapfrog(1e-4, directForce(g, 0))
	// No explicit Prime: first Step must still be correct.
	if err := lf.Step(s); err != nil {
		t.Fatal(err)
	}
	// After one tiny step the orbit energy is still right.
	e := s.KineticEnergy() + nbody.PotentialEnergy(s, g, 0)
	want := -0.5 // E = -G m1 m2 / (2 d) for a circular orbit of separation d
	if math.Abs(e-want) > 1e-6 {
		t.Errorf("energy after auto-primed step = %v, want %v", e, want)
	}
}

func TestPrimedFlag(t *testing.T) {
	calls := 0
	lf, err := NewLeapfrog(0.01, func(s *nbody.System) error { calls++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if lf.Primed() {
		t.Fatal("fresh integrator reports primed")
	}
	s := nbody.New(2)
	// A resume restores post-force accelerations and marks the
	// integrator primed: the next Step must not re-run the force prime.
	lf.SetPrimed(true)
	if err := lf.Step(s); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("primed Step made %d force calls, want exactly the in-step one", calls)
	}
	lf.SetPrimed(false)
	if err := lf.Step(s); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("unprimed Step made %d total force calls, want prime + step = 3", calls)
	}
}
