package core

import (
	"sync"
	"time"

	"repro/internal/nbody"
	"repro/internal/octree"
	"repro/internal/vec"
)

// ComputeForcesOriginalOnEngine runs the ORIGINAL Barnes-Hut algorithm
// with force evaluation dispatched to the engine: one interaction list
// per particle, one engine batch per particle (i-count 1).
//
// This is the §3 counterfactual: on GRAPE hardware the per-particle
// batches leave 95 of the 96 virtual pipelines idle and the host walk
// runs N times instead of N/n_g times, which is exactly why Barnes'
// modified algorithm exists. Provided for the ablation benchmarks; use
// ComputeForces for real work.
func (tc *Treecode) ComputeForcesOriginalOnEngine(s *nbody.System) (*Stats, error) {
	o := tc.Opt.withDefaults()
	stats := &Stats{N: s.N(), Groups: s.N(), MinList: -1}

	t0 := time.Now()
	tree, err := octree.Build(s, &octree.Options{LeafCap: o.LeafCap})
	if err != nil {
		return nil, err
	}
	tc.Tree = tree
	stats.BuildTime = time.Since(t0)

	for i := range s.Acc {
		s.Acc[i] = vec.Zero
		s.Pot[i] = 0
	}

	mac := octree.OpenCriterion{Theta: o.Theta, UseBmax: o.UseBmax}
	n := s.N()
	workers := o.Workers
	if workers > n {
		workers = n
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		//lint:ignore hotalloc reference-path worker spawn: one closure and scratch buffer per worker; the original engine is the conformance oracle, not the production hot path
		go func(lo, hi int) {
			defer wg.Done()
			local := Stats{MinList: -1}
			buf := &listBuf{}
			for i := lo; i < hi; i++ {
				tw0 := time.Now()
				tc.buildParticleList(tree, i, mac, buf)
				local.WalkTime += time.Since(tw0)

				nj := buf.J.N
				local.Interactions += int64(nj)
				local.ListSum += int64(nj)
				if nj > local.MaxList {
					local.MaxList = nj
				}
				if local.MinList < 0 || nj < local.MinList {
					local.MinList = nj
				}

				tc0 := time.Now()
				req := Request{
					IPos: s.Pos[i : i+1],
					J:    buf.J,
					Acc:  s.Acc[i : i+1],
					Pot:  s.Pot[i : i+1],
				}
				tc.Engine.Accumulate(&req)
				local.ComputeTime += time.Since(tc0)
			}
			mu.Lock()
			stats.Interactions += local.Interactions
			stats.ListSum += local.ListSum
			stats.WalkTime += local.WalkTime
			stats.ComputeTime += local.ComputeTime
			if local.MaxList > stats.MaxList {
				stats.MaxList = local.MaxList
			}
			if local.MinList >= 0 && (stats.MinList < 0 || local.MinList < stats.MinList) {
				stats.MinList = local.MinList
			}
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	if stats.MinList < 0 {
		stats.MinList = 0
	}
	return stats, nil
}

// buildParticleList fills buf with the per-particle interaction list of
// the original algorithm: accepted cells' centres of mass plus
// particles of opened leaves (excluding particle i itself — although
// engines guard zero-distance pairs anyway, excluding it here keeps the
// list length equal to the walk-based interaction count).
func (tc *Treecode) buildParticleList(tree *octree.Tree, i int, mac octree.OpenCriterion, buf *listBuf) {
	buf.stack = buf.stack[:0]
	buf.J.Reset()
	s := tree.Sys
	pi := s.Pos[i]
	buf.stack = append(buf.stack, 0)
	for len(buf.stack) > 0 {
		idx := buf.stack[len(buf.stack)-1]
		buf.stack = buf.stack[:len(buf.stack)-1]
		n := &tree.Nodes[idx]
		d2 := pi.Dist2(n.COM)
		//lint:ignore hostk per-particle reference walk of the §3 counterfactual; point-distance MAC has no batch sink
		if mac.Accept(n, d2) {
			buf.J.Append(n.COM.X, n.COM.Y, n.COM.Z, n.Mass)
			continue
		}
		if n.Leaf {
			for j := n.Start; j < n.Start+n.Count; j++ {
				if int(j) == i {
					continue
				}
				p := s.Pos[j]
				buf.J.Append(p.X, p.Y, p.Z, s.Mass[j])
			}
			continue
		}
		for _, c := range n.Children {
			if c != octree.NoChild {
				buf.stack = append(buf.stack, c)
			}
		}
	}
	buf.J.Pad()
}
