package core

import (
	"math"
	"testing"

	"repro/internal/nbody"
	"repro/internal/vec"
)

// TestBmaxMACMoreAccurate: at the same θ, the bmax criterion opens more
// cells (higher cost) and yields smaller force errors than the
// geometric edge-length criterion.
func TestBmaxMACMoreAccurate(t *testing.T) {
	s := plummer(3000, 21)
	ref := s.Clone()
	nbody.DirectForces(ref, 1, 0.01)
	refByID := make(map[int64]vec.V3)
	for i := range ref.Pos {
		refByID[ref.ID[i]] = ref.Acc[i]
	}
	measure := func(useBmax bool) (float64, int64) {
		sc := s.Clone()
		tc := New(Options{Theta: 0.9, UseBmax: useBmax, Ncrit: 128, G: 1, Eps: 0.01}, nil)
		st, err := tc.ComputeForces(sc)
		if err != nil {
			t.Fatal(err)
		}
		refOrdered := make([]vec.V3, sc.N())
		for i := range sc.Pos {
			refOrdered[i] = refByID[sc.ID[i]]
		}
		return rmsForceError(sc.Acc, refOrdered), st.Interactions
	}
	errGeo, costGeo := measure(false)
	errBmax, costBmax := measure(true)
	if errBmax >= errGeo {
		t.Errorf("bmax error %v not below geometric %v", errBmax, errGeo)
	}
	if costBmax <= costGeo {
		t.Errorf("bmax cost %d not above geometric %d", costBmax, costGeo)
	}
}

// TestWorkersExceedingGroups: more workers than groups must not break
// or change results.
func TestWorkersExceedingGroups(t *testing.T) {
	s := plummer(200, 22)
	tc := New(Options{Theta: 0.75, Ncrit: 100000, G: 1, Eps: 0.01, Workers: 16}, nil)
	st, err := tc.ComputeForces(s)
	if err != nil {
		t.Fatal(err)
	}
	if st.Groups != 1 {
		t.Errorf("groups = %d, want 1", st.Groups)
	}
	for i := range s.Acc {
		if !s.Acc[i].IsFinite() {
			t.Fatalf("non-finite acceleration at %d", i)
		}
	}
}

// TestDeterministicAcrossRuns: the same input system must produce
// bit-identical forces on repeated runs (no map-iteration or
// scheduling nondeterminism).
func TestDeterministicAcrossRuns(t *testing.T) {
	s := plummer(1000, 23)
	run := func() []vec.V3 {
		sc := s.Clone()
		tc := New(Options{Theta: 0.75, Ncrit: 128, G: 1, Eps: 0.01, Workers: 4}, nil)
		if _, err := tc.ComputeForces(sc); err != nil {
			t.Fatal(err)
		}
		out := make([]vec.V3, sc.N())
		copy(out, sc.Acc)
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic force at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestPotentialSignAndScale: tree potentials must be negative and match
// direct sums closely in aggregate.
func TestPotentialSignAndScale(t *testing.T) {
	s := plummer(2000, 24)
	ref := s.Clone()
	tc := New(Options{Theta: 0.6, Ncrit: 128, G: 1, Eps: 0.01}, nil)
	if _, err := tc.ComputeForces(s); err != nil {
		t.Fatal(err)
	}
	treePE := nbody.PotentialEnergyFromPot(s)
	directPE := nbody.PotentialEnergy(ref, 1, 0.01)
	if treePE >= 0 {
		t.Errorf("tree PE = %v, must be negative", treePE)
	}
	if math.Abs(treePE-directPE)/math.Abs(directPE) > 0.01 {
		t.Errorf("tree PE %v vs direct %v", treePE, directPE)
	}
}

// TestCountOriginalMatchesWalk: the count-only walk must agree exactly
// with the interaction count of the force-computing original walk.
func TestCountOriginalMatchesWalk(t *testing.T) {
	s := plummer(1500, 25)
	tcA := New(Options{Theta: 0.75, G: 1, Eps: 0.01}, nil)
	st, err := tcA.ComputeForcesOriginal(s.Clone())
	if err != nil {
		t.Fatal(err)
	}
	tcB := New(Options{Theta: 0.75, G: 1, Eps: 0.01}, nil)
	count, err := tcB.CountOriginal(s.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if count != st.Interactions {
		t.Errorf("count-only %d != walk %d", count, st.Interactions)
	}
}
