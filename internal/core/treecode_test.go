package core

import (
	"fmt"
	"math"
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/hostk"
	"repro/internal/nbody"
	"repro/internal/rng"
	"repro/internal/vec"
)

func plummer(n int, seed uint64) *nbody.System {
	return nbody.Plummer(n, 1, 1, 1, rng.New(seed))
}

// rmsForceError returns the RMS of |a_got - a_ref| / |a_ref|.
func rmsForceError(got, ref []vec.V3) float64 {
	var sum float64
	for i := range got {
		r := ref[i].Norm()
		if r == 0 {
			continue
		}
		d := got[i].Sub(ref[i]).Norm() / r
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(got)))
}

func TestModifiedMatchesDirectSmallTheta(t *testing.T) {
	// With θ→0 every cell is opened and the modified algorithm
	// degenerates to exact direct summation.
	s := plummer(300, 1)
	ref := s.Clone()
	nbody.DirectForces(ref, 1, 0.01)

	tc := New(Options{Theta: 1e-9, Ncrit: 32, G: 1, Eps: 0.01}, nil)
	stats, err := tc.ComputeForces(s)
	if err != nil {
		t.Fatal(err)
	}
	// s was Morton-reordered: match by ID.
	byID := make(map[int64]vec.V3, ref.N())
	potByID := make(map[int64]float64, ref.N())
	for i := range ref.Pos {
		byID[ref.ID[i]] = ref.Acc[i]
		potByID[ref.ID[i]] = ref.Pot[i]
	}
	for i := range s.Pos {
		want := byID[s.ID[i]]
		if s.Acc[i].Sub(want).Norm() > 1e-10*(1+want.Norm()) {
			t.Fatalf("particle ID %d: acc %v, want %v", s.ID[i], s.Acc[i], want)
		}
		if math.Abs(s.Pot[i]-potByID[s.ID[i]]) > 1e-10*(1+math.Abs(potByID[s.ID[i]])) {
			t.Fatalf("particle ID %d: pot %v, want %v", s.ID[i], s.Pot[i], potByID[s.ID[i]])
		}
	}
	// θ≈0 with N=300: every pair evaluated at least once.
	if stats.Interactions < int64(300*299) {
		t.Errorf("interactions = %d, want >= %d", stats.Interactions, 300*299)
	}
}

func TestOriginalMatchesDirectSmallTheta(t *testing.T) {
	s := plummer(200, 2)
	ref := s.Clone()
	nbody.DirectForces(ref, 1, 0.02)

	tc := New(Options{Theta: 1e-9, G: 1, Eps: 0.02}, nil)
	if _, err := tc.ComputeForcesOriginal(s); err != nil {
		t.Fatal(err)
	}
	byID := make(map[int64]vec.V3, ref.N())
	for i := range ref.Pos {
		byID[ref.ID[i]] = ref.Acc[i]
	}
	for i := range s.Pos {
		want := byID[s.ID[i]]
		if s.Acc[i].Sub(want).Norm() > 1e-10*(1+want.Norm()) {
			t.Fatalf("particle ID %d: acc %v, want %v", s.ID[i], s.Acc[i], want)
		}
	}
}

func TestModifiedForceAccuracy(t *testing.T) {
	// At θ=0.75 the tree force error should be well below 1% RMS — the
	// paper quotes ~0.1% dominated by the tree approximation.
	s := plummer(3000, 3)
	ref := s.Clone()
	nbody.DirectForces(ref, 1, 0.01)
	refByID := make(map[int64]vec.V3)
	for i := range ref.Pos {
		refByID[ref.ID[i]] = ref.Acc[i]
	}

	tc := New(Options{Theta: 0.75, Ncrit: 256, G: 1, Eps: 0.01}, nil)
	if _, err := tc.ComputeForces(s); err != nil {
		t.Fatal(err)
	}
	refOrdered := make([]vec.V3, s.N())
	for i := range s.Pos {
		refOrdered[i] = refByID[s.ID[i]]
	}
	rms := rmsForceError(s.Acc, refOrdered)
	if rms > 0.01 {
		t.Errorf("modified tree RMS force error = %v, want < 1%%", rms)
	}
	if rms == 0 {
		t.Error("tree force exactly equals direct — approximation suspiciously absent")
	}
}

func TestModifiedMoreAccurateThanOriginal(t *testing.T) {
	// The paper (§3, citing Barnes 1990) notes the modified algorithm is
	// MORE accurate than the original at the same θ: nearby forces are
	// exact and the group MAC measures distance from the group surface.
	s1 := plummer(3000, 4)
	ref := s1.Clone()
	nbody.DirectForces(ref, 1, 0.01)
	refByID := make(map[int64]vec.V3)
	for i := range ref.Pos {
		refByID[ref.ID[i]] = ref.Acc[i]
	}
	get := func(s *nbody.System) []vec.V3 {
		out := make([]vec.V3, s.N())
		for i := range s.Pos {
			out[i] = refByID[s.ID[i]]
		}
		return out
	}

	tcMod := New(Options{Theta: 0.9, Ncrit: 256, G: 1, Eps: 0.01}, nil)
	if _, err := tcMod.ComputeForces(s1); err != nil {
		t.Fatal(err)
	}
	rmsMod := rmsForceError(s1.Acc, get(s1))

	s2 := ref.Clone()
	tcOrig := New(Options{Theta: 0.9, G: 1, Eps: 0.01}, nil)
	if _, err := tcOrig.ComputeForcesOriginal(s2); err != nil {
		t.Fatal(err)
	}
	rmsOrig := rmsForceError(s2.Acc, get(s2))

	if rmsMod >= rmsOrig {
		t.Errorf("modified RMS %v not better than original %v", rmsMod, rmsOrig)
	}
}

func TestModifiedListsLongerThanOriginal(t *testing.T) {
	// The flip side (§3): the modified algorithm does MORE interactions.
	// The ratio at n_g=2000-scale groups is what the paper's 2.90e13 vs
	// 4.69e12 (≈6.2×) measures.
	s := plummer(4000, 5)
	tc := New(Options{Theta: 0.75, Ncrit: 512, G: 1}, &CountEngine{})
	mod, err := tc.ComputeForces(s.Clone())
	if err != nil {
		t.Fatal(err)
	}
	orig, err := New(Options{Theta: 0.75, G: 1}, nil).CountOriginal(s.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if mod.Interactions <= orig {
		t.Errorf("modified %d should exceed original %d", mod.Interactions, orig)
	}
	ratio := float64(mod.Interactions) / float64(orig)
	if ratio < 1.5 || ratio > 50 {
		t.Errorf("modified/original ratio = %v, outside plausible range", ratio)
	}
}

func TestCountEngineMatchesStats(t *testing.T) {
	s := plummer(1000, 6)
	ce := &CountEngine{}
	tc := New(Options{Theta: 0.75, Ncrit: 128, G: 1}, ce)
	stats, err := tc.ComputeForces(s)
	if err != nil {
		t.Fatal(err)
	}
	if ce.Interactions() != stats.Interactions {
		t.Errorf("engine count %d != stats count %d", ce.Interactions(), stats.Interactions)
	}
	ce.Reset()
	if ce.Interactions() != 0 {
		t.Error("Reset failed")
	}
}

func TestStatsConsistency(t *testing.T) {
	s := plummer(2000, 7)
	tc := New(Options{Theta: 0.75, Ncrit: 100, G: 1}, &CountEngine{})
	stats, err := tc.ComputeForces(s)
	if err != nil {
		t.Fatal(err)
	}
	if stats.N != 2000 {
		t.Errorf("N = %d", stats.N)
	}
	if stats.Groups < 2000/100 {
		t.Errorf("groups = %d, too few", stats.Groups)
	}
	if stats.CellTerms+stats.ParticleTerms != stats.ListSum {
		t.Errorf("cell %d + particle %d != listsum %d",
			stats.CellTerms, stats.ParticleTerms, stats.ListSum)
	}
	if stats.MinList <= 0 || stats.MaxList < stats.MinList {
		t.Errorf("list bounds [%d, %d] invalid", stats.MinList, stats.MaxList)
	}
	if stats.AvgList() <= 0 {
		t.Error("AvgList = 0")
	}
	// Every group sees at least the whole system once in aggregate:
	// interactions >= N (each particle interacts with something).
	if stats.Interactions < int64(stats.N) {
		t.Errorf("interactions = %d < N", stats.Interactions)
	}
	if stats.String() == "" {
		t.Error("empty String()")
	}
}

func TestNcritControlsListLength(t *testing.T) {
	// Larger n_g ⇒ fewer groups, longer lists, more interactions:
	// the §3 trade-off.
	s := plummer(4000, 8)
	var prevInteractions int64
	var prevGroups int
	for i, ncrit := range []int{16, 128, 1024} {
		stats, err := New(Options{Theta: 0.75, Ncrit: ncrit, G: 1}, &CountEngine{}).ComputeForces(s.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if stats.Interactions <= prevInteractions {
				t.Errorf("ncrit=%d: interactions %d not larger than %d at smaller ncrit",
					ncrit, stats.Interactions, prevInteractions)
			}
			if stats.Groups >= prevGroups {
				t.Errorf("ncrit=%d: groups %d not fewer than %d", ncrit, stats.Groups, prevGroups)
			}
		}
		prevInteractions = stats.Interactions
		prevGroups = stats.Groups
	}
}

func TestThetaControlsAccuracyAndCost(t *testing.T) {
	s := plummer(2000, 9)
	ref := s.Clone()
	nbody.DirectForces(ref, 1, 0.01)
	refByID := make(map[int64]vec.V3)
	for i := range ref.Pos {
		refByID[ref.ID[i]] = ref.Acc[i]
	}

	var prevErr float64
	var prevCost int64
	for i, theta := range []float64{0.3, 0.7, 1.2} {
		sc := ref.Clone()
		stats, err := New(Options{Theta: theta, Ncrit: 64, G: 1, Eps: 0.01}, nil).ComputeForces(sc)
		if err != nil {
			t.Fatal(err)
		}
		refOrdered := make([]vec.V3, sc.N())
		for k := range sc.Pos {
			refOrdered[k] = refByID[sc.ID[k]]
		}
		rms := rmsForceError(sc.Acc, refOrdered)
		if i > 0 {
			if rms < prevErr {
				t.Errorf("θ=%v: error %v decreased from %v", theta, rms, prevErr)
			}
			if stats.Interactions > prevCost {
				t.Errorf("θ=%v: cost %d increased from %d", theta, stats.Interactions, prevCost)
			}
		}
		prevErr = rms
		prevCost = stats.Interactions
	}
}

func TestWorkersProduceSameForces(t *testing.T) {
	s := plummer(1500, 10)
	s1 := s.Clone()
	s4 := s.Clone()
	if _, err := New(Options{Theta: 0.75, Ncrit: 64, G: 1, Eps: 0.01, Workers: 1}, nil).ComputeForces(s1); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Theta: 0.75, Ncrit: 64, G: 1, Eps: 0.01, Workers: 4}, nil).ComputeForces(s4); err != nil {
		t.Fatal(err)
	}
	for i := range s1.Acc {
		if s1.ID[i] != s4.ID[i] {
			t.Fatal("different particle ordering between runs")
		}
		if s1.Acc[i].Sub(s4.Acc[i]).Norm() > 1e-13*(1+s1.Acc[i].Norm()) {
			t.Fatalf("worker-count-dependent force at %d", i)
		}
	}
}

func TestMomentumConservationModified(t *testing.T) {
	// Newton's third law holds only approximately for tree forces, but
	// the residual must be small relative to the typical force.
	s := plummer(3000, 11)
	if _, err := New(Options{Theta: 0.75, Ncrit: 256, G: 1, Eps: 0.01}, nil).ComputeForces(s); err != nil {
		t.Fatal(err)
	}
	var net vec.V3
	var typical float64
	for i := range s.Acc {
		net = net.MulAdd(s.Mass[i], s.Acc[i])
		typical += s.Mass[i] * s.Acc[i].Norm()
	}
	if net.Norm() > 1e-2*typical/float64(s.N())*float64(s.N()) {
		// net force should be << sum of |f|
		t.Errorf("net force %v vs Σ|f| %v", net.Norm(), typical)
	}
}

func TestDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Theta != 0.75 || o.Ncrit != 2000 || o.LeafCap != 8 || o.G != 1 || o.Workers < 1 {
		t.Errorf("defaults = %+v", o)
	}
	tc := New(Options{}, nil)
	if _, ok := tc.Engine.(*HostEngine); !ok {
		t.Error("nil engine should default to HostEngine")
	}
}

func TestEmptySystemFails(t *testing.T) {
	tc := New(Options{}, nil)
	if _, err := tc.ComputeForces(nbody.New(0)); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := tc.ComputeForcesOriginal(nbody.New(0)); err == nil {
		t.Error("empty system accepted by original")
	}
	if _, err := tc.CountOriginal(nbody.New(0)); err == nil {
		t.Error("empty system accepted by CountOriginal")
	}
}

// scalarRefEngine is the retired AoS host loop wrapped as an Engine —
// the self-guard contract must hold identically for both kernels.
type scalarRefEngine struct{ g, eps float64 }

func (e *scalarRefEngine) Accumulate(req *Request) {
	nj := req.J.N
	jpos := make([]vec.V3, nj)
	for j := 0; j < nj; j++ {
		jpos[j] = vec.V3{X: req.J.X[j], Y: req.J.Y[j], Z: req.J.Z[j]}
	}
	hostk.ScalarAccumulate(e.g, e.eps, req.IPos, jpos, req.J.M[:nj], req.Acc, req.Pot)
}

func TestHostEngineSelfGuard(t *testing.T) {
	// A source exactly at the field point contributes nothing — in the
	// SoA tile kernel (zero-mass select, padded and unpadded tails) and
	// in the scalar reference alike, at any GOMAXPROCS.
	engines := map[string]Engine{
		"soa":    &HostEngine{G: 1},
		"scalar": &scalarRefEngine{g: 1},
	}
	for _, procs := range []int{1, 4} {
		for name, eng := range engines {
			for _, pad := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/procs=%d/pad=%v", name, procs, pad), func(t *testing.T) {
					prev := runtime.GOMAXPROCS(procs)
					defer runtime.GOMAXPROCS(prev)
					req := Request{
						IPos: []vec.V3{{X: 1}},
						Acc:  make([]vec.V3, 1),
						Pot:  make([]float64, 1),
					}
					req.J.Append(1, 0, 0, 5) // exactly at the field point
					req.J.Append(2, 0, 0, 1)
					if pad {
						req.J.Pad()
					}
					eng.Accumulate(&req)
					if math.Abs(req.Acc[0].X-1) > 1e-14 {
						t.Errorf("acc = %v, want exactly the non-self contribution 1", req.Acc[0])
					}
					if math.Abs(req.Pot[0]+1) > 1e-14 {
						t.Errorf("pot = %v, want -1", req.Pot[0])
					}
				})
			}
		}
	}
}

// Property: the original walk's interaction count per particle is
// bounded by N-1 (never more work than direct summation per particle)
// and at least 1 for N >= 2.
func TestOriginalCountBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(200)
		s := nbody.New(n)
		for i := range s.Pos {
			s.Pos[i] = vec.V3{X: r.Normal(), Y: r.Normal(), Z: r.Normal()}
			s.Mass[i] = 1
		}
		tc := New(Options{Theta: 0.5 + r.Float64(), G: 1}, nil)
		count, err := tc.CountOriginal(s)
		if err != nil {
			return false
		}
		return count >= int64(n) && count <= int64(n)*int64(n-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: with θ=0 the count equals exactly N(N-1) — full direct.
func TestOriginalCountDirectLimit(t *testing.T) {
	s := plummer(150, 12)
	count, err := New(Options{Theta: 1e-12, G: 1}, nil).CountOriginal(s)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(150 * 149)
	if count != want {
		t.Errorf("θ→0 count = %d, want %d", count, want)
	}
}
