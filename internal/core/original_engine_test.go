package core

import (
	"testing"

	"repro/internal/nbody"
	"repro/internal/vec"
)

func TestOriginalOnEngineMatchesWalk(t *testing.T) {
	// The engine-dispatched original algorithm must produce the same
	// forces and interaction counts as the walk-integrated one.
	s := plummer(1500, 31)
	sA := s.Clone()
	sB := s.Clone()

	tcA := New(Options{Theta: 0.75, G: 1, Eps: 0.01}, nil)
	stA, err := tcA.ComputeForcesOriginal(sA)
	if err != nil {
		t.Fatal(err)
	}
	tcB := New(Options{Theta: 0.75, G: 1, Eps: 0.01}, nil)
	stB, err := tcB.ComputeForcesOriginalOnEngine(sB)
	if err != nil {
		t.Fatal(err)
	}
	if stA.Interactions != stB.Interactions {
		t.Errorf("interaction counts differ: %d vs %d", stA.Interactions, stB.Interactions)
	}
	aByID := make(map[int64]vec.V3)
	for i := range sA.Pos {
		aByID[sA.ID[i]] = sA.Acc[i]
	}
	for i := range sB.Pos {
		want := aByID[sB.ID[i]]
		if sB.Acc[i].Sub(want).Norm() > 1e-10*(1+want.Norm()) {
			t.Fatalf("forces differ at ID %d: %v vs %v", sB.ID[i], sB.Acc[i], want)
		}
	}
}

func TestOriginalOnEngineDirectLimit(t *testing.T) {
	s := plummer(200, 32)
	ref := s.Clone()
	nbody.DirectForces(ref, 1, 0.02)
	refByID := make(map[int64]vec.V3)
	for i := range ref.Pos {
		refByID[ref.ID[i]] = ref.Acc[i]
	}
	tc := New(Options{Theta: 1e-9, G: 1, Eps: 0.02}, nil)
	if _, err := tc.ComputeForcesOriginalOnEngine(s); err != nil {
		t.Fatal(err)
	}
	for i := range s.Pos {
		want := refByID[s.ID[i]]
		if s.Acc[i].Sub(want).Norm() > 1e-10*(1+want.Norm()) {
			t.Fatalf("θ→0 mismatch at ID %d", s.ID[i])
		}
	}
}

func TestOriginalOnEngineEmptyFails(t *testing.T) {
	tc := New(Options{}, nil)
	if _, err := tc.ComputeForcesOriginalOnEngine(nbody.New(0)); err == nil {
		t.Error("empty system accepted")
	}
}
