package core

import (
	"testing"

	"repro/internal/octree"
	"repro/internal/rng"
	"repro/internal/vec"
)

func TestTreeRefreshUpdatesCOM(t *testing.T) {
	s := plummer(500, 41)
	tree, err := octree.Build(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := tree.Root().COM
	// Shift all particles: COM must follow after Refresh.
	shift := vec.V3{X: 0.01, Y: -0.02, Z: 0.005}
	for i := range s.Pos {
		s.Pos[i] = s.Pos[i].Add(shift)
	}
	tree.Refresh()
	got := tree.Root().COM.Sub(before)
	if got.Sub(shift).Norm() > 1e-12 {
		t.Errorf("root COM moved by %v, want %v", got, shift)
	}
	if tree.Root().Mass <= 0 {
		t.Error("mass lost in refresh")
	}
}

func TestReusePolicyCounts(t *testing.T) {
	s := plummer(800, 42)
	tc := New(Options{Theta: 0.75, Ncrit: 64, G: 1, Eps: 0.01, RebuildEvery: 3}, nil)

	// First call builds.
	if _, err := tc.ComputeForces(s); err != nil {
		t.Fatal(err)
	}
	built := tc.Tree
	// Second and third reuse the same tree object.
	if _, err := tc.ComputeForces(s); err != nil {
		t.Fatal(err)
	}
	if tc.Tree != built {
		t.Error("call 2 rebuilt instead of reusing")
	}
	if _, err := tc.ComputeForces(s); err != nil {
		t.Fatal(err)
	}
	if tc.Tree != built {
		t.Error("call 3 rebuilt instead of reusing")
	}
	// Fourth rebuilds.
	if _, err := tc.ComputeForces(s); err != nil {
		t.Fatal(err)
	}
	if tc.Tree == built {
		t.Error("call 4 did not rebuild")
	}
}

func TestReuseDifferentSystemRebuilds(t *testing.T) {
	tc := New(Options{Theta: 0.75, Ncrit: 64, G: 1, RebuildEvery: 10}, &CountEngine{})
	s1 := plummer(300, 43)
	s2 := plummer(300, 44)
	if _, err := tc.ComputeForces(s1); err != nil {
		t.Fatal(err)
	}
	t1 := tc.Tree
	if _, err := tc.ComputeForces(s2); err != nil {
		t.Fatal(err)
	}
	if tc.Tree == t1 {
		t.Error("switching systems must force a rebuild")
	}
}

func TestReuseForcesStayAccurate(t *testing.T) {
	// Integrate a few steps with reuse and compare final forces against
	// a fresh rebuild: the drift-induced error must be small.
	s := plummer(1000, 45)
	r := rng.New(46)
	tc := New(Options{Theta: 0.6, Ncrit: 64, G: 1, Eps: 0.05, RebuildEvery: 5}, nil)
	if _, err := tc.ComputeForces(s); err != nil {
		t.Fatal(err)
	}
	// Perturb positions slightly (a fraction of the softening) several
	// times, recomputing with reuse.
	for k := 0; k < 4; k++ {
		for i := range s.Pos {
			s.Pos[i] = s.Pos[i].Add(vec.V3{
				X: 0.002 * r.Normal(), Y: 0.002 * r.Normal(), Z: 0.002 * r.Normal()})
		}
		if _, err := tc.ComputeForces(s); err != nil {
			t.Fatal(err)
		}
	}
	reused := append([]vec.V3(nil), s.Acc...)
	ids := append([]int64(nil), s.ID...)

	// Fresh rebuild on the same positions.
	tcFresh := New(Options{Theta: 0.6, Ncrit: 64, G: 1, Eps: 0.05}, nil)
	if _, err := tcFresh.ComputeForces(s); err != nil {
		t.Fatal(err)
	}
	freshByID := make(map[int64]vec.V3)
	for i := range s.Pos {
		freshByID[s.ID[i]] = s.Acc[i]
	}
	var worst float64
	for i := range reused {
		want := freshByID[ids[i]]
		rel := reused[i].Sub(want).Norm() / (1 + want.Norm())
		if rel > worst {
			worst = rel
		}
	}
	if worst > 0.05 {
		t.Errorf("tree reuse worst relative force deviation = %v", worst)
	}
	if worst == 0 {
		t.Error("reuse produced identical forces — refresh apparently not exercised")
	}
}

func TestRefreshKeepsValidation(t *testing.T) {
	s := plummer(400, 47)
	tree, err := octree.Build(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	// No movement: refresh must keep the tree exactly valid.
	tree.Refresh()
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReuseDisabledByDefault(t *testing.T) {
	s := plummer(200, 48)
	tc := New(Options{Theta: 0.75, Ncrit: 64, G: 1}, &CountEngine{})
	if _, err := tc.ComputeForces(s); err != nil {
		t.Fatal(err)
	}
	t1 := tc.Tree
	if _, err := tc.ComputeForces(s); err != nil {
		t.Fatal(err)
	}
	if tc.Tree == t1 {
		t.Error("default must rebuild every call")
	}
}
