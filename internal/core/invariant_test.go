package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/nbody"
	"repro/internal/octree"
	"repro/internal/rng"
	"repro/internal/vec"
)

// massAuditEngine checks the fundamental correctness invariant of
// interaction lists: every particle of the system must appear in each
// group's list exactly once — either directly or inside exactly one
// accepted cell — so the list's total mass equals the system mass.
// A walk that double-counts a subtree or drops a cell breaks this
// immediately.
type massAuditEngine struct {
	total float64
	tol   float64
	bad   int
}

func (e *massAuditEngine) Accumulate(req *Request) {
	var m float64
	for _, mj := range req.J.M[:req.J.N] {
		m += mj
	}
	if math.Abs(m-e.total) > e.tol {
		e.bad++
	}
}

// TestInteractionListMassConservationProperty is the property-based
// version over random systems, θ, n_crit and MAC variants.
func TestInteractionListMassConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 50 + r.Intn(1000)
		s := nbody.New(n)
		for i := range s.Pos {
			// Mix of clustered and uniform positions.
			if i%3 == 0 {
				s.Pos[i] = vec.V3{X: 5 + 0.1*r.Normal(), Y: 0.1 * r.Normal(), Z: 0.1 * r.Normal()}
			} else {
				s.Pos[i] = vec.V3{X: r.Normal() * 3, Y: r.Normal() * 3, Z: r.Normal() * 3}
			}
			s.Mass[i] = 0.1 + r.Float64()
		}
		eng := &massAuditEngine{total: s.TotalMass(), tol: 1e-9 * s.TotalMass()}
		tc := New(Options{
			Theta:   0.2 + r.Float64()*1.3,
			UseBmax: r.Intn(2) == 0,
			Ncrit:   1 + r.Intn(300),
			LeafCap: 1 + r.Intn(16),
			G:       1,
		}, eng)
		if _, err := tc.ComputeForces(s); err != nil {
			return false
		}
		return eng.bad == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestOriginalWalkMassConservation verifies the same invariant for the
// per-particle walk: the force on particle i must aggregate the mass of
// everyone else. We test it through the potential of a uniform-mass
// system at θ where distant cells are accepted: Σ_j m_j terms cannot be
// checked directly, so instead run the engine-dispatched original
// algorithm with the audit engine expecting total - m_i.
func TestOriginalWalkMassConservation(t *testing.T) {
	s := plummer(800, 77)
	// All masses equal -> every list must carry total - m.
	m0 := s.Mass[0]
	eng := &perParticleAudit{want: s.TotalMass() - m0, tol: 1e-9}
	tc := New(Options{Theta: 0.8, G: 1}, eng)
	if _, err := tc.ComputeForcesOriginalOnEngine(s); err != nil {
		t.Fatal(err)
	}
	if eng.bad > 0 {
		t.Errorf("%d of %d particle lists lost or duplicated mass", eng.bad, s.N())
	}
	if eng.calls != s.N() {
		t.Errorf("engine called %d times, want %d", eng.calls, s.N())
	}
}

type perParticleAudit struct {
	want  float64
	tol   float64
	bad   int
	calls int
}

func (e *perParticleAudit) Accumulate(req *Request) {
	e.calls++
	var m float64
	for _, mj := range req.J.M[:req.J.N] {
		m += mj
	}
	if math.Abs(m-e.want) > e.tol*(1+e.want) {
		e.bad++
	}
}

// TestGroupListValidForAllMembers: the group MAC must guarantee that
// the shared list is acceptable for EVERY member — i.e. for each
// accepted cell, the per-particle geometric MAC also accepts it from
// the position of every group member (conservativeness of the
// surface-distance criterion).
func TestGroupListValidForAllMembers(t *testing.T) {
	s := plummer(2000, 88)
	theta := 0.8
	tc := New(Options{Theta: theta, Ncrit: 128, G: 1}, &CountEngine{})
	if _, err := tc.ComputeForces(s); err != nil {
		t.Fatal(err)
	}
	tree := tc.Tree
	mac := octree.OpenCriterion{Theta: theta}
	groups := tree.Groups(128)
	buf := &listBuf{}
	checked := 0
	for _, g := range groups {
		// Rebuild this group's accepted-cell set by replaying the walk.
		gbox := tree.Nodes[g.Node].Box
		buf.stack = buf.stack[:0]
		buf.stack = append(buf.stack, 0)
		var cells []int32
		for len(buf.stack) > 0 {
			idx := buf.stack[len(buf.stack)-1]
			buf.stack = buf.stack[:len(buf.stack)-1]
			n := &tree.Nodes[idx]
			d2 := gbox.Dist2(n.COM)
			if mac.Accept(n, d2) {
				cells = append(cells, idx)
				continue
			}
			if n.Leaf {
				continue
			}
			for _, c := range n.Children {
				if c != octree.NoChild {
					buf.stack = append(buf.stack, c)
				}
			}
		}
		// Every member must individually accept every listed cell.
		for _, ci := range cells {
			cn := &tree.Nodes[ci]
			for i := g.Start; i < g.Start+g.Count; i++ {
				d2 := s.Pos[i].Dist2(cn.COM)
				if !mac.Accept(cn, d2) {
					t.Fatalf("group %d: member %d rejects cell %d accepted by the group MAC",
						g.Node, i, ci)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no cells checked — test vacuous")
	}
}
