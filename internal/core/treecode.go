package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hostk"
	"repro/internal/nbody"
	"repro/internal/obs"
	"repro/internal/octree"
	"repro/internal/vec"
)

// Options configure a treecode force calculation.
type Options struct {
	// Theta is the Barnes-Hut opening parameter (default 0.75, the
	// common choice of the era and our stand-in for the paper's
	// "accuracy parameter").
	Theta float64
	// UseBmax selects the conservative bmax opening criterion.
	UseBmax bool
	// Ncrit is the maximum group population of the modified algorithm
	// (the paper's n_g knob; optimal ≈ 2000 on DS10 + GRAPE-5).
	Ncrit int
	// LeafCap is the octree leaf capacity (default 8).
	LeafCap int
	// G is the gravitational constant (default 1).
	G float64
	// Eps is the Plummer softening length.
	Eps float64
	// Workers sets the traversal parallelism; 0 means GOMAXPROCS.
	Workers int
	// RebuildEvery sets the tree-reuse period: a full Morton sort and
	// rebuild happens every RebuildEvery-th ComputeForces call on the
	// same system, with cheap centre-of-mass refreshes in between.
	// 0 or 1 disables reuse (rebuild every call, the paper's mode).
	// Reuse trades a drift-bounded force approximation for amortised
	// build cost; see the ablation benchmarks.
	RebuildEvery int
	// ActiveRebuildFrac is the block-timestep rebuild policy knob
	// (ComputeForcesActive): a substep whose active fraction reaches
	// this threshold triggers a full Morton sort and rebuild, below it
	// the cached tree is centre-of-mass refreshed. Default 0.5. The
	// policy is a pure function of the active fraction and tree
	// validity, which is what keeps resumed block runs on the
	// uninterrupted run's exact rebuild schedule.
	ActiveRebuildFrac float64
	// Obs, when non-nil, receives per-phase spans (Morton sort, tree
	// build, group walk, force evaluation) and traversal counters for
	// every force calculation. Walk workers record concurrently.
	Obs *obs.Observer
}

func (o Options) withDefaults() Options {
	if o.Theta == 0 {
		o.Theta = 0.75
	}
	if o.Ncrit <= 0 {
		o.Ncrit = 2000
	}
	if o.LeafCap <= 0 {
		o.LeafCap = 8
	}
	if o.G == 0 {
		o.G = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.ActiveRebuildFrac <= 0 {
		o.ActiveRebuildFrac = 0.5
	}
	return o
}

// Stats reports the work done by one force calculation. Its fields are
// the quantities the paper's evaluation section is built from.
type Stats struct {
	// N is the particle count.
	N int
	// Groups is the number of particle groups (modified algorithm) or N
	// (original algorithm).
	Groups int
	// Interactions is the total number of pairwise interactions
	// evaluated: Σ_groups n_i × n_j. The paper's headline counts
	// 2.90e13 of these over the full run.
	Interactions int64
	// ListSum is Σ_groups n_j (total interaction-list entries built).
	ListSum int64
	// CellTerms and ParticleTerms split ListSum by list-entry type.
	CellTerms, ParticleTerms int64
	// MinList and MaxList are the extreme list lengths.
	MinList, MaxList int
	// NodesVisited counts tree nodes touched during traversal, the
	// host's walk work measure.
	NodesVisited int64
	// Active is the number of force-evaluated field particles: N for a
	// full-set call, the closing-set size for ComputeForcesActive.
	Active int64
	// BuildTime, WalkTime and ComputeTime are measured wall-clock
	// durations of the tree build, the traversal (list construction)
	// and the force evaluation. With Workers > 1, WalkTime and
	// ComputeTime are summed across workers (CPU time, not elapsed).
	BuildTime, WalkTime, ComputeTime time.Duration
}

// AvgList returns the mean interaction-list length per particle,
// Interactions / N — the paper quotes 13,431 for the headline run.
func (s *Stats) AvgList() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.Interactions) / float64(s.N)
}

// Treecode runs tree-based force calculations over a particle system.
// It owns the reusable step scratch — the octree Builder's arenas, the
// per-worker traversal buffers and the cached pprof label contexts —
// so that steady-state ComputeForces calls are allocation-free apart
// from the Stats and Tree headers. A Treecode must not be shared by
// concurrent callers.
type Treecode struct {
	Opt    Options
	Engine Engine

	// Tree is the most recently built octree (valid after a Compute*
	// call; reused by callers needing group geometry). Trees from
	// ComputeForces borrow the internal Builder's arena and are
	// overwritten by the next full rebuild.
	Tree *octree.Tree

	// sinceBuild counts ComputeForces calls since the last full
	// rebuild, for the RebuildEvery reuse policy.
	sinceBuild int

	// builder is the reused tree constructor; recreated only when the
	// options it bakes in change.
	builder            *octree.Builder
	bLeafCap, bWorkers int
	bObs               *obs.Observer

	// bufs are per-worker traversal buffers; labelCtxs cache the pprof
	// label sets the walk workers run under (building them per call
	// allocates). Both grow to the high-water worker count.
	bufs      []*listBuf
	labelCtxs []context.Context

	// groupCursor dispatches group indices to walk workers; statsMu
	// guards the per-call stats aggregation.
	groupCursor atomic.Int64
	statsMu     sync.Mutex
	wg          sync.WaitGroup
}

// ensureWorkerScratch grows the per-worker buffers and cached pprof
// label contexts to cover worker indices [0, workers).
func (tc *Treecode) ensureWorkerScratch(workers int) {
	for len(tc.bufs) < workers {
		w := len(tc.bufs)
		//lint:ignore hotalloc per-worker scratch allocated once when the worker set grows, then reused by every later step (arena setup, not steady state)
		tc.bufs = append(tc.bufs, &listBuf{})
		tc.labelCtxs = append(tc.labelCtxs, pprof.WithLabels(context.Background(),
			pprof.Labels("treecode", "group-walk", "worker", strconv.Itoa(w))))
	}
}

// New returns a treecode with the given options and engine. A nil
// engine defaults to the float64 host engine.
func New(opt Options, engine Engine) *Treecode {
	o := opt.withDefaults()
	if engine == nil {
		engine = &HostEngine{G: o.G, Eps: o.Eps}
	}
	return &Treecode{Opt: o, Engine: engine}
}

// listBuf is per-worker traversal scratch space: the walk stack (node
// index plus the accept verdict computed at push time), the SoA j-list
// under construction, and the fixed-width MAC gather lanes. All of it
// is owner-allocated and reused across groups and steps (the alloc
// gate pins zero steady-state growth).
type listBuf struct {
	stack []int32
	// flags parallels stack: the MAC verdict for each pushed node,
	// batch-evaluated over its siblings at expansion time.
	flags []bool
	// J is the group's interaction list in kernel layout.
	J hostk.JList
	// macX..macOK are the MACWidth gather lanes for one batched accept
	// call (one octree fan-out). Stale upper lanes are evaluated and
	// discarded.
	macX, macY, macZ, macS [hostk.MACWidth]float64
	macIdx                 [hostk.MACWidth]int32
	macOK                  [hostk.MACWidth]bool
	// segs are the active-path gather arenas: one segment per
	// partially-active group this worker dispatched in the current call
	// (segUsed counts them). Batched engines stage references to the
	// request's i-lanes until Flush, so each group needs lanes that
	// outlive the walk loop — the segment pointers are stable and the
	// backing arrays grow to the high-water member count, then persist
	// across calls.
	segs    []*gatherSeg
	segUsed int
}

// gatherSeg holds one partially-active group's gathered i-lanes: the
// global indices of its active members, their positions, and the
// Acc/Pot accumulators the engine writes. Scattered back to the system
// arrays after the engine's Flush barrier.
type gatherSeg struct {
	idx []int32
	pos []vec.V3
	acc []vec.V3
	pot []float64
}

// nextSeg returns the next unused segment sized for n active members,
// growing the arena on first use or when a group exceeds a segment's
// previous capacity. Re-slicing an existing segment is safe: by the
// time a segment is reused (the following computeForces call), its
// prior contents have been flushed and scattered.
func (b *listBuf) nextSeg(n int) *gatherSeg {
	if b.segUsed == len(b.segs) {
		b.segs = append(b.segs, &gatherSeg{})
	}
	seg := b.segs[b.segUsed]
	b.segUsed++
	if cap(seg.idx) < n {
		seg.idx = make([]int32, n)
		seg.pos = make([]vec.V3, n)
		seg.acc = make([]vec.V3, n)
		seg.pot = make([]float64, n)
	} else {
		seg.idx = seg.idx[:n]
		seg.pos = seg.pos[:n]
		seg.acc = seg.acc[:n]
		seg.pot = seg.pot[:n]
	}
	return seg
}

// ComputeForces runs the modified (grouped) tree algorithm: builds the
// tree (reordering s into Morton order), forms groups of at most Ncrit
// particles, builds one shared interaction list per group and feeds
// group members plus list to the engine. Accelerations and potentials
// are written to s.Acc and s.Pot.
func (tc *Treecode) ComputeForces(s *nbody.System) (*Stats, error) {
	return tc.computeForces(s, nil, 0)
}

// ComputeForcesActive computes forces for exactly the particles whose
// ID is marked in activeByID (nActive marks), leaving every other
// particle's Acc/Pot untouched — the block-timestep substep primitive.
// Groups without active members are skipped entirely; partially-active
// groups still build their one shared interaction list but dispatch
// only the active members, through gather lanes that stay stable until
// the engine's Flush barrier commits. A full mask (nActive ≥ N, or a
// nil activeByID) takes the identical code path as ComputeForces — the
// degenerate-rung bitwise anchor.
func (tc *Treecode) ComputeForcesActive(s *nbody.System, activeByID []bool, nActive int) (*Stats, error) {
	if activeByID == nil || nActive >= s.N() {
		return tc.computeForces(s, nil, 0)
	}
	return tc.computeForces(s, activeByID, nActive)
}

// PrimeTree builds and caches the octree for s without dispatching any
// forces. A resumed block-timestep run calls it so its first substep
// starts from the same cached-tree state the uninterrupted run held
// after its last block boundary: the checkpointed system is already in
// Morton order, the rebuild is deterministic, and the next Refresh then
// reproduces the uninterrupted run bitwise.
func (tc *Treecode) PrimeTree(s *nbody.System) error {
	o := tc.Opt.withDefaults()
	_, err := tc.rebuildTree(s, o)
	return err
}

// rebuildTree runs a full Morton sort + build through the cached
// Builder, recreating the builder only when the options it bakes in
// change, and installs the result as the current tree.
func (tc *Treecode) rebuildTree(s *nbody.System, o Options) (*octree.Tree, error) {
	if tc.builder == nil || tc.bLeafCap != o.LeafCap || tc.bWorkers != o.Workers || tc.bObs != o.Obs {
		tc.builder = octree.NewBuilder(octree.BuilderOptions{
			LeafCap: o.LeafCap,
			Workers: o.Workers,
			Obs:     o.Obs,
		})
		tc.bLeafCap, tc.bWorkers, tc.bObs = o.LeafCap, o.Workers, o.Obs
	}
	tree, err := tc.builder.Build(s)
	if err != nil {
		return nil, err
	}
	tc.Tree = tree
	tc.sinceBuild = 1
	return tree, nil
}

// computeForces is the shared walk driver. active == nil is the
// full-set path; a non-nil active mask (indexed by particle ID, with
// nActive marks) dispatches only marked field particles.
func (tc *Treecode) computeForces(s *nbody.System, active []bool, nActive int) (*Stats, error) {
	o := tc.Opt.withDefaults()
	stats := &Stats{N: s.N(), MinList: -1}

	t0 := time.Now()
	var reuse bool
	if active == nil {
		reuse = o.RebuildEvery > 1 && tc.Tree != nil && tc.Tree.Sys == s &&
			tc.sinceBuild < o.RebuildEvery
	} else {
		// Block substeps drift every particle, so the tree always needs
		// at least a centre-of-mass refresh; a full rebuild only when the
		// active fraction says the Morton order is worth re-earning.
		reuse = tc.Tree != nil && tc.Tree.Sys == s &&
			float64(nActive) < o.ActiveRebuildFrac*float64(s.N())
	}
	var tree *octree.Tree
	if reuse {
		tm := o.Obs.Start(obs.PhaseTreeBuild)
		tree = tc.Tree
		tree.Refresh()
		tm.Stop()
		tc.sinceBuild++
	} else {
		var err error
		tree, err = tc.rebuildTree(s, o)
		if err != nil {
			return nil, err
		}
	}
	stats.BuildTime = time.Since(t0)

	// Groups is cached on the tree, so the reuse path re-scans nothing.
	// Acc/Pot zeroing happens inside the walk workers, per group range:
	// the groups tile [0, N) disjointly, so each worker clears exactly
	// the range it is about to accumulate into (for active calls, only
	// the gathered lanes of the members it dispatches).
	groups := tree.Groups(o.Ncrit)
	stats.Groups = len(groups)

	mac := octree.OpenCriterion{Theta: o.Theta, UseBmax: o.UseBmax}
	workers := o.Workers
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers < 1 {
		workers = 1
	}
	tc.ensureWorkerScratch(workers)
	tc.groupCursor.Store(0)
	for w := 0; w < workers; w++ {
		tc.bufs[w].segUsed = 0
		tc.wg.Add(1)
		go tc.runWalkWorker(w, s, tree, groups, mac, active, o, stats)
	}
	tc.wg.Wait()
	// Asynchronous engines stage batches; the step's forces are only
	// complete once the device queue drains.
	if be, ok := tc.Engine.(BatchedEngine); ok {
		if err := be.Flush(); err != nil {
			return nil, err
		}
	}
	// Scatter the gathered lanes back to the masked particles. This must
	// run after Flush: batched engines hold references to the lanes and
	// commit results at the barrier. Targets are disjoint (each particle
	// is gathered at most once), so scatter order cannot matter.
	if active != nil {
		for w := 0; w < workers; w++ {
			buf := tc.bufs[w]
			for _, seg := range buf.segs[:buf.segUsed] {
				for k, i := range seg.idx {
					s.Acc[i] = seg.acc[k]
					s.Pot[i] = seg.pot[k]
				}
			}
		}
	}
	if stats.MinList < 0 {
		stats.MinList = 0
	}
	o.Obs.Add(obs.CntInteractions, stats.Interactions)
	o.Obs.Add(obs.CntGroups, int64(stats.Groups))
	o.Obs.Add(obs.CntNodesVisited, stats.NodesVisited)
	o.Obs.Add(obs.CntActiveI, stats.Active)
	o.Obs.Add(obs.CntSubsteps, 1)
	return stats, nil
}

// runWalkWorker is the walk goroutine body: it applies worker w's
// cached pprof labels (making walk workers identifiable in CPU and
// goroutine profiles) and runs the group-drain loop with w's persistent
// traversal buffer.
func (tc *Treecode) runWalkWorker(w int, s *nbody.System, tree *octree.Tree,
	groups []octree.Group, mac octree.OpenCriterion, active []bool, o Options, stats *Stats) {
	defer tc.wg.Done()
	pprof.SetGoroutineLabels(tc.labelCtxs[w])
	tc.walkWorker(tc.bufs[w], s, tree, groups, mac, active, o, stats)
}

// walkWorker drains group indices from the shared cursor, zeroing each
// group's Acc/Pot range, building its interaction list and dispatching
// it to the engine; per-worker spans and statistics are folded into
// stats under statsMu at the end.
//
// With a non-nil active mask, groups with no active members are skipped
// outright (their list is never built — the block-timestep walk saving),
// fully-active groups take the identical full path, and partially-active
// groups gather their active members into a stable gatherSeg so the
// engine sees a dense i-range while inactive members' Acc/Pot stay
// untouched.
func (tc *Treecode) walkWorker(buf *listBuf, s *nbody.System, tree *octree.Tree,
	groups []octree.Group, mac octree.OpenCriterion, active []bool, o Options, stats *Stats) {
	local := Stats{MinList: -1}
	var req Request // hoisted: &req must not escape a loop iteration
	for {
		gi := int(tc.groupCursor.Add(1)) - 1
		if gi >= len(groups) {
			break
		}
		g := groups[gi]
		ni := int(g.Count)
		na := ni
		if active != nil {
			na = 0
			for i := g.Start; i < g.Start+g.Count; i++ {
				if active[s.ID[i]] {
					na++
				}
			}
			if na == 0 {
				continue
			}
		}
		tw0 := time.Now()
		var seg *gatherSeg
		if na == ni {
			for i := g.Start; i < g.Start+g.Count; i++ {
				s.Acc[i] = vec.Zero
				s.Pot[i] = 0
			}
		} else {
			seg = buf.nextSeg(na)
			k := 0
			for i := g.Start; i < g.Start+g.Count; i++ {
				if !active[s.ID[i]] {
					continue
				}
				seg.idx[k] = i
				seg.pos[k] = s.Pos[i]
				seg.acc[k] = vec.Zero
				seg.pot[k] = 0
				k++
			}
		}
		visited, cells := tc.buildGroupList(tree, g, mac, buf)
		local.WalkTime += time.Since(tw0)

		nj := buf.J.N
		local.Interactions += int64(na) * int64(nj)
		local.ListSum += int64(nj)
		local.CellTerms += int64(cells)
		local.ParticleTerms += int64(nj - cells)
		local.NodesVisited += visited
		local.Active += int64(na)
		if nj > local.MaxList {
			local.MaxList = nj
		}
		if local.MinList < 0 || nj < local.MinList {
			local.MinList = nj
		}

		tc0 := time.Now()
		if seg == nil {
			req = Request{
				IPos: s.Pos[g.Start : g.Start+g.Count],
				J:    buf.J,
				Acc:  s.Acc[g.Start : g.Start+g.Count],
				Pot:  s.Pot[g.Start : g.Start+g.Count],
			}
		} else {
			req = Request{IPos: seg.pos, J: buf.J, Acc: seg.acc, Pot: seg.pot}
		}
		tc.Engine.Accumulate(&req)
		local.ComputeTime += time.Since(tc0)
	}
	o.Obs.AddSeconds(obs.PhaseGroupWalk, local.WalkTime.Seconds())
	o.Obs.AddSeconds(obs.PhaseForceEval, local.ComputeTime.Seconds())
	tc.statsMu.Lock()
	stats.Interactions += local.Interactions
	stats.ListSum += local.ListSum
	stats.CellTerms += local.CellTerms
	stats.ParticleTerms += local.ParticleTerms
	stats.NodesVisited += local.NodesVisited
	stats.WalkTime += local.WalkTime
	stats.ComputeTime += local.ComputeTime
	stats.Active += local.Active
	if local.MaxList > stats.MaxList {
		stats.MaxList = local.MaxList
	}
	if local.MinList >= 0 && (stats.MinList < 0 || local.MinList < stats.MinList) {
		stats.MinList = local.MinList
	}
	tc.statsMu.Unlock()
}

// buildGroupList fills buf.J with the shared interaction list of group
// g: centres of mass of accepted cells plus particles of opened leaves.
// The group's own cell is never accepted (its surface distance to its
// own contents is zero), so group members enter the list as direct
// particles — exactly Barnes' formulation. Returns nodes visited and
// the number of cell (centre-of-mass) entries appended.
//
// The MAC is evaluated in batches: when a node is expanded, all its
// present children are gathered into the buf.mac* lanes and judged by
// one hostk.MACSink.Accept call; each child is pushed with its verdict.
// Children are pushed in octant order and popped LIFO — the identical
// visit order, and therefore the identical j-list emission order, as
// the retired per-node walk, which the pre-SoA trajectory goldens pin.
func (tc *Treecode) buildGroupList(tree *octree.Tree, g octree.Group, mac octree.OpenCriterion, buf *listBuf) (int64, int) {
	buf.stack = buf.stack[:0]
	buf.flags = buf.flags[:0]
	buf.J.Reset()
	gbox := tree.Nodes[g.Node].Box
	sink := hostk.MACSink{
		MinX: gbox.Min.X, MinY: gbox.Min.Y, MinZ: gbox.Min.Z,
		MaxX: gbox.Max.X, MaxY: gbox.Max.Y, MaxZ: gbox.Max.Z,
		Theta2: mac.Theta * mac.Theta,
	}
	// The root has no siblings: its verdict is a batch of one.
	root := &tree.Nodes[0]
	buf.macX[0], buf.macY[0], buf.macZ[0] = root.COM.X, root.COM.Y, root.COM.Z
	buf.macS[0] = root.EffSize(mac.UseBmax)
	sink.Accept(&buf.macX, &buf.macY, &buf.macZ, &buf.macS, &buf.macOK)
	buf.stack = append(buf.stack, 0)
	buf.flags = append(buf.flags, buf.macOK[0])
	var visited int64
	cells := 0
	for len(buf.stack) > 0 {
		top := len(buf.stack) - 1
		idx := buf.stack[top]
		accept := buf.flags[top]
		buf.stack = buf.stack[:top]
		buf.flags = buf.flags[:top]
		n := &tree.Nodes[idx]
		visited++
		if accept {
			buf.J.Append(n.COM.X, n.COM.Y, n.COM.Z, n.Mass)
			cells++
			continue
		}
		if n.Leaf {
			for i := n.Start; i < n.Start+n.Count; i++ {
				p := tree.Sys.Pos[i]
				buf.J.Append(p.X, p.Y, p.Z, tree.Sys.Mass[i])
			}
			continue
		}
		m := 0
		for _, c := range n.Children {
			if c == octree.NoChild {
				continue
			}
			ch := &tree.Nodes[c]
			buf.macX[m], buf.macY[m], buf.macZ[m] = ch.COM.X, ch.COM.Y, ch.COM.Z
			buf.macS[m] = ch.EffSize(mac.UseBmax)
			buf.macIdx[m] = c
			m++
		}
		sink.Accept(&buf.macX, &buf.macY, &buf.macZ, &buf.macS, &buf.macOK)
		for k := 0; k < m; k++ {
			buf.stack = append(buf.stack, buf.macIdx[k])
			buf.flags = append(buf.flags, buf.macOK[k])
		}
	}
	buf.J.Pad()
	return visited, cells
}

// ComputeForcesOriginal runs the original Barnes-Hut algorithm: one
// tree walk per particle, with the force accumulated on the host in
// float64 during the walk. It is both the accuracy baseline and the
// operation-count reference the paper uses to derive its effective
// Gflops (its §5 "correction").
func (tc *Treecode) ComputeForcesOriginal(s *nbody.System) (*Stats, error) {
	o := tc.Opt.withDefaults()
	stats := &Stats{N: s.N(), Groups: s.N(), MinList: -1, Active: int64(s.N())}

	t0 := time.Now()
	tree, err := octree.Build(s, &octree.Options{LeafCap: o.LeafCap})
	if err != nil {
		return nil, err
	}
	tc.Tree = tree
	stats.BuildTime = time.Since(t0)

	mac := octree.OpenCriterion{Theta: o.Theta, UseBmax: o.UseBmax}
	workers := o.Workers
	n := s.N()
	if workers > n {
		workers = n
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		//lint:ignore hotalloc bounded worker-spawn loop: one closure per worker per call, amortized over O(n/workers) particle walks; the runtime alloc gates cover this path
		go func(lo, hi int) {
			defer wg.Done()
			var local Stats
			local.MinList = -1
			stack := make([]int32, 0, 256)
			tw0 := time.Now()
			for i := lo; i < hi; i++ {
				count, visited := tc.walkParticle(tree, i, mac, o, &stack)
				local.Interactions += int64(count)
				local.ListSum += int64(count)
				local.NodesVisited += visited
				if count > local.MaxList {
					local.MaxList = count
				}
				if local.MinList < 0 || count < local.MinList {
					local.MinList = count
				}
			}
			local.WalkTime = time.Since(tw0)
			mu.Lock()
			stats.Interactions += local.Interactions
			stats.ListSum += local.ListSum
			stats.NodesVisited += local.NodesVisited
			stats.WalkTime += local.WalkTime
			if local.MaxList > stats.MaxList {
				stats.MaxList = local.MaxList
			}
			if local.MinList >= 0 && (stats.MinList < 0 || local.MinList < stats.MinList) {
				stats.MinList = local.MinList
			}
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	if stats.MinList < 0 {
		stats.MinList = 0
	}
	return stats, nil
}

// walkParticle performs the classic per-particle Barnes-Hut walk,
// accumulating the force into s.Acc[i]/s.Pot[i] in float64 and
// returning the interaction count and nodes visited.
func (tc *Treecode) walkParticle(tree *octree.Tree, i int, mac octree.OpenCriterion, o Options, stack *[]int32) (int, int64) {
	s := tree.Sys
	pi := s.Pos[i]
	eps2 := o.Eps * o.Eps
	var ax, ay, az, pot float64
	count := 0
	var visited int64
	st := (*stack)[:0]
	st = append(st, 0)
	for len(st) > 0 {
		idx := st[len(st)-1]
		st = st[:len(st)-1]
		n := &tree.Nodes[idx]
		visited++
		d2 := pi.Dist2(n.COM)
		//lint:ignore hostk per-particle reference walk: the original-algorithm ablation baseline, not a hot path
		if mac.Accept(n, d2) {
			fx, fy, fz, fp := pairForce(pi, n.COM, n.Mass, eps2)
			ax += fx
			ay += fy
			az += fz
			pot += fp
			count++
			continue
		}
		if n.Leaf {
			for j := n.Start; j < n.Start+n.Count; j++ {
				if int(j) == i {
					continue
				}
				fx, fy, fz, fp := pairForce(pi, s.Pos[j], s.Mass[j], eps2)
				ax += fx
				ay += fy
				az += fz
				pot += fp
				count++
			}
			continue
		}
		for _, c := range n.Children {
			if c != octree.NoChild {
				st = append(st, c)
			}
		}
	}
	*stack = st
	s.Acc[i] = vec.V3{X: o.G * ax, Y: o.G * ay, Z: o.G * az}
	s.Pot[i] = o.G * pot
	return count, visited
}

// pairForce returns the unscaled (G=1) softened acceleration components
// and potential exerted by mass m at pj on a test point at pi.
func pairForce(pi, pj vec.V3, m, eps2 float64) (fx, fy, fz, pot float64) {
	dx := pj.X - pi.X
	dy := pj.Y - pi.Y
	dz := pj.Z - pi.Z
	r2 := dx*dx + dy*dy + dz*dz
	if r2 == 0 {
		return 0, 0, 0, 0
	}
	r2 += eps2
	//lint:ignore hostk scalar reference kernel of the original-algorithm walk; conformance-tested against hostk.P2P
	inv := 1 / math.Sqrt(r2)
	inv3 := inv / r2
	return m * inv3 * dx, m * inv3 * dy, m * inv3 * dz, -m * inv
}

// CountOriginal returns only the interaction count of the original
// algorithm without computing forces — the cheap estimator the paper
// used on five snapshots to derive its effective operation count.
func (tc *Treecode) CountOriginal(s *nbody.System) (int64, error) {
	o := tc.Opt.withDefaults()
	tree, err := octree.Build(s, &octree.Options{LeafCap: o.LeafCap})
	if err != nil {
		return 0, err
	}
	tc.Tree = tree
	mac := octree.OpenCriterion{Theta: o.Theta, UseBmax: o.UseBmax}
	n := s.N()
	workers := o.Workers
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	totals := make([]int64, workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		//lint:ignore hotalloc bounded worker-spawn loop: one closure per worker per count pass, amortized over the particle range
		go func(w, lo, hi int) {
			defer wg.Done()
			stack := make([]int32, 0, 256)
			var total int64
			for i := lo; i < hi; i++ {
				total += tc.countParticle(tree, i, mac, &stack)
			}
			totals[w] = total
		}(w, lo, hi)
	}
	wg.Wait()
	var total int64
	for _, t := range totals {
		total += t
	}
	return total, nil
}

// countParticle is walkParticle without arithmetic.
func (tc *Treecode) countParticle(tree *octree.Tree, i int, mac octree.OpenCriterion, stack *[]int32) int64 {
	pi := tree.Sys.Pos[i]
	var count int64
	st := (*stack)[:0]
	st = append(st, 0)
	for len(st) > 0 {
		idx := st[len(st)-1]
		st = st[:len(st)-1]
		n := &tree.Nodes[idx]
		d2 := pi.Dist2(n.COM)
		//lint:ignore hostk per-particle counting walk: arithmetic-free statistics, not a hot path
		if mac.Accept(n, d2) {
			count++
			continue
		}
		if n.Leaf {
			c := int64(n.Count)
			if i >= int(n.Start) && i < int(n.Start+n.Count) {
				c--
			}
			count += c
			continue
		}
		for _, c := range n.Children {
			if c != octree.NoChild {
				st = append(st, c)
			}
		}
	}
	*stack = st
	return count
}

// String summarises the stats in one line.
func (s *Stats) String() string {
	return fmt.Sprintf("N=%d groups=%d interactions=%d avgList=%.1f minList=%d maxList=%d nodes=%d build=%v walk=%v compute=%v",
		s.N, s.Groups, s.Interactions, s.AvgList(), s.MinList, s.MaxList, s.NodesVisited,
		s.BuildTime, s.WalkTime, s.ComputeTime)
}
