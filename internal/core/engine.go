// Package core implements the paper's primary contribution: the
// Barnes-Hut treecode with Barnes' (1990) modified algorithm and the
// GRAPE offload schedule of Makino (1991).
//
// The modified algorithm groups neighbouring particles (tree cells with
// at most Ncrit members) and builds ONE interaction list per group,
// shared by all its members; forces from fellow group members are
// computed directly by the force pipeline. This cuts the host's tree
// traversal cost by roughly the group population n_g while lengthening
// the lists the hardware must chew through — the trade-off whose
// optimum the paper locates at n_g ≈ 2000 for the DS10 + GRAPE-5
// configuration.
//
// Force evaluation is abstracted behind the Engine interface so the
// identical traversal drives the float64 host engine, the emulated
// GRAPE-5 pipeline, or a pure counting engine for large-N statistics.
package core

import (
	"sync/atomic"

	"repro/internal/hostk"
	"repro/internal/vec"
)

// Request is one batch of pairwise force work handed to an Engine: the
// accelerations and potentials exerted by the sources in J on the field
// points IPos are accumulated into Acc and Pot.
type Request struct {
	// IPos holds the field points ("i-particles").
	IPos []vec.V3
	// J holds the sources ("j-particles") in the struct-of-arrays
	// layout the host kernels consume: real particles and accepted
	// cells' centres of mass alike, J.N real entries plus zero-mass
	// padding to a hostk.JTile multiple (the walk pads; hand-built
	// requests need not). Hardware engines marshal J into their AoS
	// DMA descriptors from the first J.N lanes.
	J hostk.JList
	// Acc and Pot receive the accumulated acceleration and specific
	// potential per field point. Both must have len(IPos); engines add
	// into them.
	Acc []vec.V3
	Pot []float64
}

// Engine evaluates softened gravitational interactions. Engines must
// skip pairs at exactly zero separation (the self-interaction guard:
// a group's own members appear in its interaction list, and the pipeline
// contributes nothing for i==j). Implementations must be safe for
// concurrent Accumulate calls.
type Engine interface {
	Accumulate(req *Request)
}

// BatchedEngine is an Engine that may defer batches submitted through
// Accumulate (staging them on an asynchronous device queue). Flush is
// the completion barrier: it blocks until every submitted batch has
// committed its results into the request's output slices and returns
// the first asynchronous failure since the previous Flush. The
// treecode calls Flush after the walk drains, so callers of
// ComputeForces see fully-committed forces either way.
type BatchedEngine interface {
	Engine
	Flush() error
}

// HostEngine is the reference force pipeline: exact float64 arithmetic
// on the host, Plummer softening. It is the "general purpose computer"
// baseline of the paper's accuracy comparison and the engine used when
// no GRAPE is attached.
type HostEngine struct {
	// G is the gravitational constant.
	G float64
	// Eps is the Plummer softening length.
	Eps float64
}

// Accumulate implements Engine through the batched SoA tile kernel —
// bitwise identical to the retired scalar loop (hostk.ScalarAccumulate,
// pinned by the hostk conformance and fuzz suites and the pre-SoA
// trajectory goldens).
func (e *HostEngine) Accumulate(req *Request) {
	eps2 := e.Eps * e.Eps
	g := e.G
	for i, pi := range req.IPos {
		ax, ay, az, pot := hostk.P2P(pi.X, pi.Y, pi.Z, &req.J, eps2)
		req.Acc[i] = req.Acc[i].Add(vec.V3{X: g * ax, Y: g * ay, Z: g * az})
		req.Pot[i] += g * pot
	}
}

// CountEngine performs no arithmetic; it only tallies the interactions
// it is asked for. It makes large-N performance statistics (interaction
// counts, list lengths) cheap to measure: the paper's Table-equivalent
// numbers are pure counts.
type CountEngine struct {
	interactions atomic.Int64
}

// Accumulate implements Engine by counting. Padding lanes are not
// interactions: only the J.N real sources count.
func (e *CountEngine) Accumulate(req *Request) {
	e.interactions.Add(int64(len(req.IPos)) * int64(req.J.N))
}

// Interactions returns the running total of i×j pairs requested.
func (e *CountEngine) Interactions() int64 { return e.interactions.Load() }

// Reset zeroes the counter.
func (e *CountEngine) Reset() { e.interactions.Store(0) }
