// Package core_test: external so the regression suite can also drive
// the treecode through the g5 cluster engine (g5 imports core; an
// in-package test would cycle).
package core_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/g5"
	"repro/internal/nbody"
	"repro/internal/rng"
)

// TestTraversalStatsRegression pins the traversal statistics of the
// modified algorithm for fixed (N, theta, n_g) against golden values
// recorded from the current implementation, with tolerance bands wide
// enough to survive benign refactors but tight enough to catch a
// changed opening criterion, broken grouping, or a list-length
// regression. The shape matches the paper's §3 table: average list
// length grows with n_g (shared lists get longer as groups widen)
// while host tree work shrinks.
func TestTraversalStatsRegression(t *testing.T) {
	cases := []struct {
		name         string
		n, ng        int
		theta        float64
		groups       int
		interactions int64
		avgList      float64
	}{
		// Golden values: Plummer seed 1, eps 0.02, LeafCap default 8.
		{"N1024-ng64-th0.6", 1024, 64, 0.6, 84, 594736, 580.80},
		{"N4096-ng500-th0.75", 4096, 500, 0.75, 82, 4350858, 1062.22},
		{"N4096-ng2000-th0.75", 4096, 2000, 0.75, 8, 7729413, 1887.06},
		{"N8192-ng2000-th0.75", 8192, 2000, 0.75, 22, 23837846, 2909.89},
	}

	const relTol = 0.05 // 5% band on interaction totals and list lengths

	var prevAvg float64
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := nbody.Plummer(tc.n, 1, 1, 1, rng.New(1))
			tree := core.New(core.Options{Theta: tc.theta, Ncrit: tc.ng, G: 1, Eps: 0.02},
				&core.HostEngine{G: 1, Eps: 0.02})
			st, err := tree.ComputeForces(s)
			if err != nil {
				t.Fatal(err)
			}
			if st.Groups != tc.groups {
				t.Errorf("groups = %d, golden %d", st.Groups, tc.groups)
			}
			if rel := math.Abs(float64(st.Interactions-tc.interactions)) / float64(tc.interactions); rel > relTol {
				t.Errorf("interactions = %d, golden %d (off by %.1f%%)",
					st.Interactions, tc.interactions, 100*rel)
			}
			if rel := math.Abs(st.AvgList()-tc.avgList) / tc.avgList; rel > relTol {
				t.Errorf("avg list = %.2f, golden %.2f (off by %.1f%%)",
					st.AvgList(), tc.avgList, 100*rel)
			}
			// The modified algorithm's defining trade-off (§3): a group
			// never interacts with fewer sources than it has members, and
			// the average list must stay far below N (else the tree is
			// doing direct summation).
			if st.AvgList() < float64(st.N)/float64(tc.groups)/4 {
				t.Errorf("avg list %.1f implausibly short for %d groups", st.AvgList(), tc.groups)
			}
			if st.AvgList() > 3*float64(tc.n)/4 {
				t.Errorf("avg list %.1f approaching direct summation (N=%d)", st.AvgList(), tc.n)
			}
		})
	}

	// Paper §3: at fixed N and theta, widening n_g lengthens the shared
	// interaction lists. Check across the two N=4096 cases.
	for _, tc := range cases[1:3] {
		s := nbody.Plummer(tc.n, 1, 1, 1, rng.New(1))
		tree := core.New(core.Options{Theta: tc.theta, Ncrit: tc.ng, G: 1, Eps: 0.02},
			&core.HostEngine{G: 1, Eps: 0.02})
		st, err := tree.ComputeForces(s)
		if err != nil {
			t.Fatal(err)
		}
		if st.AvgList() <= prevAvg {
			t.Errorf("avg list not increasing with n_g: %.1f after %.1f", st.AvgList(), prevAvg)
		}
		prevAvg = st.AvgList()
	}
}

// TestClusterShardBalanceRegression pins the per-board load balance of
// the sharded offload at the paper-scale operating point (N=4096
// Plummer, n_g=2000, theta=0.75 — the 8-group golden case above). With
// round-robin dispatch, one walk worker and a fixed chunk size the
// assignment is a pure function of traversal order, so the balance is
// a golden property of the chunking policy: no board may carry 20%
// more pairwise interactions than another, and every interaction the
// traversal emits must land on exactly one board.
func TestClusterShardBalanceRegression(t *testing.T) {
	const (
		n, ng  = 4096, 2000
		theta  = 0.75
		groups = 8
		golden = int64(7729413)
	)
	for _, shards := range []int{2, 4} {
		cl, err := g5.NewCluster(g5.ClusterConfig{
			Shards:   shards,
			Board:    g5.DefaultConfig(),
			G:        1,
			Dispatch: g5.DispatchRoundRobin, // pinned lanes: deterministic loads
			ChunkI:   96,                    // one virtual-pipeline load per chunk
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if err := cl.SetScale(-40, 40); err != nil {
			t.Fatal(err)
		}
		if err := cl.SetEps(0.02); err != nil {
			t.Fatal(err)
		}

		s := nbody.Plummer(n, 1, 1, 1, rng.New(1))
		tree := core.New(core.Options{Theta: theta, Ncrit: ng, G: 1, Eps: 0.02, Workers: 1}, cl)
		st, err := tree.ComputeForces(s)
		if err != nil {
			t.Fatal(err)
		}
		if st.Groups != groups || st.Interactions != golden {
			t.Fatalf("traversal drifted from golden: groups=%d interactions=%d", st.Groups, st.Interactions)
		}

		loads := cl.ShardInteractions()
		var total, minL, maxL int64
		minL = loads[0]
		for _, l := range loads {
			total += l
			minL = min(minL, l)
			maxL = max(maxL, l)
		}
		if total != st.Interactions {
			t.Errorf("K=%d: shard loads sum to %d, traversal emitted %d", shards, total, st.Interactions)
		}
		if minL == 0 {
			t.Fatalf("K=%d: idle board (loads %v)", shards, loads)
		}
		if ratio := float64(maxL) / float64(minL); ratio >= 1.2 {
			t.Errorf("K=%d: board load imbalance %.3f >= 1.2 (loads %v)", shards, ratio, loads)
		}
		if cl.Steals() != 0 {
			t.Errorf("K=%d: %d steals under pinned round-robin dispatch", shards, cl.Steals())
		}
	}
}
