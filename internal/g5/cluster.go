package g5

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
)

// ClusterConfig configures a sharded multi-board GRAPE installation:
// K independent board systems driven from one host, the PC-GRAPE
// scaling axis (Fukushige & Makino) grafted onto the paper's 2-board
// machine.
type ClusterConfig struct {
	// Shards is the number of independent System/GuardedEngine pairs
	// (default 1). Each shard models one board installation with its
	// own bus, particle memory and fault stream.
	Shards int
	// Board is the per-shard hardware configuration (validated by
	// NewSystem; use DefaultConfig for the paper's machine).
	Board Config
	// G is the gravitational constant applied on readback (0 → 1).
	G float64
	// Guard tunes each shard's fault-tolerant offload path; every shard
	// is guarded — a cluster without acceptance checks would silently
	// blend corrupt and clean shards.
	Guard GuardPolicy
	// Dispatch selects the chunk scheduling policy (work stealing by
	// default; round-robin pinning for deterministic load accounting).
	Dispatch DispatchPolicy
	// ChunkI overrides the i-chunk size (0 = whole batches: each group's
	// force batch runs as one hardware call on one shard, so the j-list
	// is never replicated across boards; see chunkSize).
	ChunkI int
}

// clusterShard is one board system plus its guarded driver and private
// telemetry sink. Per-shard load tallies feed the balance tests and the
// K-board time-balance model.
type clusterShard struct {
	sys *System
	eng *GuardedEngine
	ob  *obs.Observer

	interactions atomic.Int64
	batches      atomic.Int64
}

// Cluster shards group force batches across K boards with asynchronous
// double-buffering: Accumulate only STAGES work — it snapshots the
// caller's j-list and queues the batch on the dispatcher — and returns
// immediately, so the treecode's walk workers stream the next group's
// list while shard workers drain earlier batches through
// SetIP/Run/GetForce. Each per-shard lane holds the in-flight batch
// plus the queued next one, which is exactly the double-buffer of the
// real host library's asynchronous API. Flush is the step barrier: it
// blocks until every staged batch has committed.
//
// Sharding is along the i-axis at batch granularity: every field
// particle's force is evaluated in full — whole j-list, one hardware
// call — on exactly one shard, and by default a whole batch stays on
// one shard so its j-list crosses exactly one board's bus (see
// chunkSize). There is no floating-point reduction across shards, so
// shard count and dispatch order cannot perturb results: a Cluster is
// bitwise-identical to a single GuardedEngine fed the same batches
// (the conformance suite pins this).
//
// Output slices handed to Accumulate must stay valid and disjoint
// across batches until Flush returns (the treecode's per-group
// subslices of the system arrays satisfy this); j buffers may be
// reused by the caller as soon as Accumulate returns.
//
// Accumulate is safe for concurrent use. SetScale, SetEps, Flush and
// Close must not race with Accumulate — call them at batch boundaries,
// as Simulation and the treecode do.
type Cluster struct {
	cfg    ClusterConfig
	shards []*clusterShard
	disp   *dispatcher
	jpool  sync.Pool // *jset staging copies
	tpool  sync.Pool // *task chunk descriptors

	tasks   sync.WaitGroup // staged chunks not yet committed
	workers sync.WaitGroup // running shard goroutines
	rr      atomic.Int64   // round-robin lane cursor

	ob atomic.Pointer[obs.Observer] // merge target for Flush

	errMu sync.Mutex
	err   error // first asynchronous failure since the last Flush

	critSec float64 // accumulated critical-path hardware seconds
	closed  atomic.Bool
}

var _ core.Engine = (*Cluster)(nil)
var _ core.BatchedEngine = (*Cluster)(nil)

// NewCluster builds a K-shard cluster and starts one worker goroutine
// per shard. Shard 0 uses the fault model exactly as configured (so a
// K=1 cluster reproduces a bare engine's fault stream bit for bit);
// shards beyond 0 get decorrelated fault seeds — independent boards
// fail independently.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.G == 0 {
		cfg.G = 1
	}
	c := &Cluster{cfg: cfg, disp: newDispatcher(cfg.Shards, cfg.Dispatch)}
	c.jpool.New = func() any { return new(jset) }
	c.tpool.New = func() any { return new(task) }
	for k := 0; k < cfg.Shards; k++ {
		bcfg := cfg.Board
		if bcfg.Fault != nil && k > 0 {
			f := *bcfg.Fault
			f.Seed += uint64(k) * 0x9e3779b97f4a7c15
			bcfg.Fault = &f
		}
		sys, err := NewSystem(bcfg)
		if err != nil {
			return nil, fmt.Errorf("g5: cluster shard %d: %w", k, err)
		}
		sh := &clusterShard{
			sys: sys,
			eng: NewGuardedEngine(sys, cfg.G, cfg.Guard),
			ob:  obs.NewObserver(),
		}
		sys.SetObserver(sh.ob)
		sh.eng.SetObserver(sh.ob)
		c.shards = append(c.shards, sh)
	}
	for k := range c.shards {
		c.workers.Add(1)
		go c.worker(k)
	}
	return c, nil
}

// Shards returns the configured shard count K.
func (c *Cluster) Shards() int { return len(c.shards) }

// Config returns the per-shard board configuration.
func (c *Cluster) Config() Config { return c.cfg.Board }

// ShardSystem exposes shard k's hardware for counter access and tests.
// Callers must not Compute on it while the cluster is in use.
func (c *Cluster) ShardSystem(k int) *System { return c.shards[k].sys }

// ShardEngine exposes shard k's guarded driver for recovery inspection.
func (c *Cluster) ShardEngine(k int) *GuardedEngine { return c.shards[k].eng }

// ShardInteractions returns the pairwise interactions executed per
// shard — the load-balance measure the golden tests pin.
func (c *Cluster) ShardInteractions() []int64 {
	out := make([]int64, len(c.shards))
	for k, sh := range c.shards {
		out[k] = sh.interactions.Load()
	}
	return out
}

// ShardBatches returns the chunk count executed per shard.
func (c *Cluster) ShardBatches() []int64 {
	out := make([]int64, len(c.shards))
	for k, sh := range c.shards {
		out[k] = sh.batches.Load()
	}
	return out
}

// Steals returns how many chunks ran on a shard other than their
// round-robin lane.
func (c *Cluster) Steals() int64 { return c.disp.Steals() }

// SetScale sets the fixed-point coordinate window on every shard.
func (c *Cluster) SetScale(min, max float64) error {
	for k, sh := range c.shards {
		if err := sh.sys.SetScale(min, max); err != nil {
			return fmt.Errorf("g5: cluster shard %d: %w", k, err)
		}
	}
	return nil
}

// SetEps sets the softening length on every shard.
func (c *Cluster) SetEps(eps float64) error {
	for k, sh := range c.shards {
		if err := sh.sys.SetEps(eps); err != nil {
			return fmt.Errorf("g5: cluster shard %d: %w", k, err)
		}
	}
	return nil
}

// ScaleRange returns the active coordinate window (all shards share
// one, set through SetScale).
func (c *Cluster) ScaleRange() (min, max float64, ok bool) {
	return c.shards[0].sys.ScaleRange()
}

// SetObserver attaches the telemetry merge target: at every Flush the
// per-shard phase spans are folded into o (see mergeObs). A nil
// observer detaches.
func (c *Cluster) SetObserver(o *obs.Observer) { c.ob.Store(o) }

// Counters returns the summed hardware activity of all shards — the
// cluster's aggregate work, not its critical path.
func (c *Cluster) Counters() Counters {
	var total Counters
	for _, sh := range c.shards {
		cnt := sh.sys.Counters()
		total.Interactions += cnt.Interactions
		total.PipeSeconds += cnt.PipeSeconds
		total.BusSeconds += cnt.BusSeconds
		total.BytesTransferred += cnt.BytesTransferred
		total.Runs += cnt.Runs
		total.JPasses += cnt.JPasses
		total.RangeClamps += cnt.RangeClamps
	}
	return total
}

// ResetCounters zeroes every shard's activity counters and the
// observer-side hardware accumulation they feed (see
// System.ResetCounters).
func (c *Cluster) ResetCounters() {
	for _, sh := range c.shards {
		sh.sys.ResetCounters()
	}
}

// Recovery returns the summed fault-handling counters across shards.
// HostOnly is set only when EVERY shard has abandoned its hardware —
// a cluster with one live board is degraded, not host-only.
func (c *Cluster) Recovery() Recovery {
	total := Recovery{HostOnly: true}
	for _, sh := range c.shards {
		r := sh.eng.Recovery()
		total.Checks += r.Checks
		total.Retries += r.Retries
		total.CorruptResults += r.CorruptResults
		total.ExcludedBoards += r.ExcludedBoards
		total.FallbackBatches += r.FallbackBatches
		total.HostOnly = total.HostOnly && r.HostOnly
	}
	return total
}

// FaultStats returns the summed injected-fault counters across shards.
func (c *Cluster) FaultStats() FaultStats {
	var total FaultStats
	for _, sh := range c.shards {
		fs := sh.sys.FaultStats()
		total.JMemBitFlips += fs.JMemBitFlips
		total.StuckPipeCalls += fs.StuckPipeCalls
		total.BusErrors += fs.BusErrors
		total.Transients += fs.Transients
	}
	return total
}

// ActiveBoards returns the number of boards in service across all
// shards.
func (c *Cluster) ActiveBoards() int {
	total := 0
	for _, sh := range c.shards {
		total += sh.sys.ActiveBoards()
	}
	return total
}

// CriticalHWSeconds returns the accumulated critical-path simulated
// hardware time: at each Flush the slowest shard's span is added, so
// this is the wall time K concurrent boards would actually take —
// divide the aggregate Counters().HWSeconds() by this for the measured
// parallel efficiency.
func (c *Cluster) CriticalHWSeconds() float64 { return c.critSec }

// chunkSize picks the i-chunk length for a batch of ni field points.
// The default is the whole batch: every hardware call streams the
// batch's complete j-list, so splitting a batch across shards
// replicates the j transfer onto every board it touches — the i-side
// (pipeline, readback) would shard but the dominant j stream would
// not, and measured K-board speedup collapses. Whole batches keep the
// cluster's per-board bus traffic identical to a single engine's, and
// the treecode emits many more batches than shards at any sane n_g,
// so batch granularity is what the work-stealing balance operates on.
// ChunkI forces a split for tests that need sub-batch scheduling.
func (c *Cluster) chunkSize(ni int) int {
	if c.cfg.ChunkI > 0 {
		return c.cfg.ChunkI
	}
	return ni
}

// Accumulate implements core.Engine by staging the batch: the j-list is
// copied (callers reuse their buffers immediately), the i-range is cut
// into chunks, and each chunk is queued on a round-robin lane. Results
// land in req.Acc/req.Pot no later than the next Flush.
func (c *Cluster) Accumulate(req *core.Request) {
	ni, nj := len(req.IPos), req.J.N
	if ni == 0 || nj == 0 {
		return
	}
	js := c.jpool.Get().(*jset)
	js.j.CopyFrom(&req.J)

	chunk := c.chunkSize(ni)
	nChunks := (ni + chunk - 1) / chunk
	atomic.StoreInt32(&js.refs, int32(nChunks))
	for lo := 0; lo < ni; lo += chunk {
		hi := min(lo+chunk, ni)
		t := c.tpool.Get().(*task)
		t.ipos = req.IPos[lo:hi]
		t.jset = js
		t.acc = req.Acc[lo:hi]
		t.pot = req.Pot[lo:hi]
		c.tasks.Add(1)
		lane := int(c.rr.Add(1)-1) % len(c.shards)
		c.disp.submit(lane, t)
	}
}

// Flush implements core.BatchedEngine: it blocks until every staged
// chunk has committed its results, folds the per-shard telemetry into
// the attached observer, and returns the first asynchronous failure
// since the previous Flush (clearing it).
func (c *Cluster) Flush() error {
	c.tasks.Wait()
	c.mergeObs()
	c.errMu.Lock()
	err := c.err
	c.err = nil
	c.errMu.Unlock()
	return err
}

// Close flushes outstanding work and stops the shard workers. The
// cluster must not be used after Close.
func (c *Cluster) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	err := c.Flush()
	c.disp.close()
	c.workers.Wait()
	return err
}

// mergeObs folds the drained interval's per-shard telemetry into the
// target observer, then resets the shard observers. Counters (flops,
// bytes, recoveries, fallbacks) and the host-side guard span are
// summed — they are real aggregate work, and guard time follows the
// same summed-CPU-time convention as the walk phase. The simulated
// hardware phases (j/i transfer, pipeline, readback) are taken from
// the critical-path shard only: the boards run concurrently, so the
// cluster's t_grape and t_comm are the slowest shard's — the quantity
// the K-board time-balance model predicts shrinking as 1/K.
func (c *Cluster) mergeObs() {
	target := c.ob.Load()
	crit, critSpan := 0, -1.0
	for k, sh := range c.shards {
		span := sh.ob.Seconds(obs.PhaseJTransfer) + sh.ob.Seconds(obs.PhaseITransfer) +
			sh.ob.Seconds(obs.PhasePipeline) + sh.ob.Seconds(obs.PhaseReadback)
		if span > critSpan {
			crit, critSpan = k, span
		}
	}
	if critSpan > 0 {
		c.critSec += critSpan
	}
	for k, sh := range c.shards {
		target.AddSeconds(obs.PhaseGuard, sh.ob.Seconds(obs.PhaseGuard))
		if k == crit {
			target.AddSeconds(obs.PhaseJTransfer, sh.ob.Seconds(obs.PhaseJTransfer))
			target.AddSeconds(obs.PhaseITransfer, sh.ob.Seconds(obs.PhaseITransfer))
			target.AddSeconds(obs.PhasePipeline, sh.ob.Seconds(obs.PhasePipeline))
			target.AddSeconds(obs.PhaseReadback, sh.ob.Seconds(obs.PhaseReadback))
		}
		target.Add(obs.CntFlops, sh.ob.Count(obs.CntFlops))
		target.Add(obs.CntBytes, sh.ob.Count(obs.CntBytes))
		target.Add(obs.CntRecoveries, sh.ob.Count(obs.CntRecoveries))
		target.Add(obs.CntFallbacks, sh.ob.Count(obs.CntFallbacks))
		sh.ob.Reset()
	}
}

// worker is shard k's drain loop: pop (or steal) the next chunk, run
// it, repeat until the dispatcher closes.
func (c *Cluster) worker(k int) {
	defer c.workers.Done()
	for {
		t := c.disp.next(k)
		if t == nil {
			return
		}
		c.run(k, t)
	}
}

// run executes one chunk on shard k. A shard panic (wedged hardware,
// *HardwareError) must not kill the process from a worker goroutine:
// it is captured as the cluster's asynchronous error and surfaced at
// Flush, the same contract the synchronous engines express by
// panicking in the caller's frame.
func (c *Cluster) run(k int, t *task) {
	defer c.tasks.Done()
	defer c.releaseT(t)
	defer c.releaseJ(t.jset)
	defer func() {
		if r := recover(); r != nil {
			c.errMu.Lock()
			if c.err == nil {
				c.err = fmt.Errorf("g5: cluster shard %d: %v", k, r)
			}
			c.errMu.Unlock()
		}
	}()
	sh := c.shards[k]
	req := core.Request{
		IPos: t.ipos, J: t.jset.j,
		Acc: t.acc, Pot: t.pot,
	}
	sh.eng.Accumulate(&req)
	sh.interactions.Add(int64(len(t.ipos)) * int64(t.jset.j.N))
	sh.batches.Add(1)
}

// releaseJ drops one chunk's reference to its staged j-set, recycling
// the buffers when the batch's last chunk drains.
func (c *Cluster) releaseJ(js *jset) {
	if atomic.AddInt32(&js.refs, -1) == 0 {
		c.jpool.Put(js)
	}
}

// releaseT recycles a drained chunk descriptor, dropping its references
// to the caller's output slices and the batch j-set first.
func (c *Cluster) releaseT(t *task) {
	t.ipos, t.jset, t.acc, t.pot = nil, nil, nil, nil
	c.tpool.Put(t)
}
