package g5

// Serving-layer health surface: the per-board guard state the job
// server's /healthz endpoint reports. The GRAPE-6A operating model this
// repo reproduces is a shared PC-GRAPE cluster serving many hosts, and
// the first question an operator of such a cluster asks is "which
// boards are still in service?" — Health answers it from the guard's
// own bookkeeping (board exclusion, host fallback, recovery counters)
// without touching the data path, so it is safe to snapshot between
// force batches while a run is in flight.

// BoardHealth is the service state of one physical board.
type BoardHealth struct {
	// Shard is the board's shard (board-system) index; 0 for a
	// single-system installation.
	Shard int `json:"shard"`
	// Board is the 0-based board index within the shard.
	Board int `json:"board"`
	// InService reports whether the guard still routes work to the
	// board (false once bisection has excluded it).
	InService bool `json:"in_service"`
}

// Health is a point-in-time snapshot of a GRAPE installation's serving
// state: shard and board inventory, exclusions, and the cumulative
// fault-handling counters behind them.
type Health struct {
	// Shards is the number of board systems (1 for a bare System or
	// GuardedEngine, K for a Cluster).
	Shards int `json:"shards"`
	// BoardsTotal and BoardsActive count physical boards across all
	// shards; Active < Total means the installation runs degraded.
	BoardsTotal  int `json:"boards_total"`
	BoardsActive int `json:"boards_active"`
	// HostOnly reports that the hardware has been abandoned entirely
	// and every batch falls back to the host engine.
	HostOnly bool `json:"host_only"`
	// Recovery is the cumulative fault-handling activity (summed across
	// shards for a cluster).
	Recovery Recovery `json:"recovery"`
	// Boards lists every board's service state, shard-major.
	Boards []BoardHealth `json:"boards"`
}

// Degraded reports whether the installation is running below its
// configured capacity: any board out of service, or full host fallback.
func (h Health) Degraded() bool {
	return h.HostOnly || h.BoardsActive < h.BoardsTotal
}

// boardHealth appends the per-board service states of one system,
// labelled with the given shard index.
func (s *System) boardHealth(shard int, out []BoardHealth) []BoardHealth {
	for b := 0; b < s.cfg.Boards; b++ {
		out = append(out, BoardHealth{Shard: shard, Board: b, InService: !s.BoardExcluded(b)})
	}
	return out
}

// Health snapshots an unguarded system's board inventory. Recovery is
// zero: without a guard there is no fault-handling activity to report.
func (s *System) Health() Health {
	return Health{
		Shards:       1,
		BoardsTotal:  s.cfg.Boards,
		BoardsActive: s.ActiveBoards(),
		Boards:       s.boardHealth(0, nil),
	}
}

// Health snapshots the guarded single-system installation: board
// inventory plus the guard's recovery counters. Call it between force
// batches (the Simulation step loop's cadence); it must not race with
// Accumulate.
func (e *GuardedEngine) Health() Health {
	rec := e.Recovery()
	h := e.sys.Health()
	h.Recovery = rec
	h.HostOnly = rec.HostOnly
	return h
}

// Health snapshots the whole cluster: every shard's board inventory,
// shard-major, with recovery counters summed (HostOnly only when every
// shard has abandoned its hardware, matching Recovery). Call it between
// force batches; it must not race with Accumulate.
func (c *Cluster) Health() Health {
	rec := c.Recovery()
	h := Health{
		Shards:       len(c.shards),
		BoardsActive: c.ActiveBoards(),
		HostOnly:     rec.HostOnly,
		Recovery:     rec,
	}
	for k, sh := range c.shards {
		h.BoardsTotal += sh.sys.cfg.Boards
		h.Boards = sh.sys.boardHealth(k, h.Boards)
	}
	return h
}
