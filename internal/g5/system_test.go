package g5

import (
	"math"
	"testing"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/vec"
)

func newTestSystem(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetScale(-100, 100); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Boards = 0
	if err := bad.Validate(); err == nil {
		t.Error("Boards=0 accepted")
	}
	bad = DefaultConfig()
	bad.PosBits = 60
	if err := bad.Validate(); err == nil {
		t.Error("PosBits=60 accepted")
	}
	bad = DefaultConfig()
	bad.BusBandwidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

// TestPeakAccounting is experiment E1: the default configuration's peak
// must be exactly the paper's numbers — 32 pipelines, 2.88e9
// interactions/s, 109.44 Gflops.
func TestPeakAccounting(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.PhysicalPipes(); got != 32 {
		t.Errorf("physical pipes = %d, want 32", got)
	}
	if got := cfg.PeakInteractionsPerSecond(); math.Abs(got-2.88e9) > 1 {
		t.Errorf("peak rate = %v, want 2.88e9", got)
	}
	if got := cfg.PeakFlops(); math.Abs(got-109.44e9) > 1 {
		t.Errorf("peak flops = %v, want 109.44e9 (paper §2)", got)
	}
	// Virtual pipes per board: 8 chips × 2 pipes × 6 VMP = 96, and the
	// VMP factor must equal the chip/board clock ratio.
	if got := cfg.VirtualPipesPerBoard(); got != 96 {
		t.Errorf("virtual pipes per board = %d, want 96", got)
	}
	if ratio := cfg.ChipClockHz / cfg.BoardClockHz; math.Abs(ratio-float64(cfg.VMP)) > 1e-9 {
		t.Errorf("VMP %d != clock ratio %v", cfg.VMP, ratio)
	}
}

func TestComputeRequiresScale(t *testing.T) {
	sys, _ := NewSystem(DefaultConfig())
	err := sys.Compute([]vec.V3{{}}, []vec.V3{{X: 1}}, []float64{1},
		make([]vec.V3, 1), make([]float64, 1))
	if err == nil {
		t.Error("Compute before SetScale accepted")
	}
}

func TestSetScaleRejectsBadRange(t *testing.T) {
	sys, _ := NewSystem(DefaultConfig())
	if err := sys.SetScale(1, 1); err == nil {
		t.Error("empty range accepted")
	}
	if err := sys.SetScale(2, 1); err == nil {
		t.Error("inverted range accepted")
	}
	if err := sys.SetScale(math.Inf(-1), math.Inf(1)); err == nil {
		t.Error("infinite range accepted")
	}
}

func TestComputeLengthValidation(t *testing.T) {
	sys := newTestSystem(t)
	i := []vec.V3{{}}
	j := []vec.V3{{X: 1}}
	if err := sys.Compute(i, j, []float64{1, 2}, make([]vec.V3, 1), make([]float64, 1)); err == nil {
		t.Error("jmass length mismatch accepted")
	}
	if err := sys.Compute(i, j, []float64{1}, make([]vec.V3, 2), make([]float64, 1)); err == nil {
		t.Error("acc length mismatch accepted")
	}
}

func TestComputeTwoBody(t *testing.T) {
	sys := newTestSystem(t)
	sys.SetEps(0)
	acc := make([]vec.V3, 1)
	pot := make([]float64, 1)
	err := sys.Compute(
		[]vec.V3{{X: -1}},
		[]vec.V3{{X: 1}}, []float64{1},
		acc, pot)
	if err != nil {
		t.Fatal(err)
	}
	// a = m/d² = 1/4, pot = -m/d = -0.5, to pipeline precision (~0.5%).
	if math.Abs(acc[0].X-0.25) > 0.25*0.01 {
		t.Errorf("acc = %v, want ~0.25", acc[0].X)
	}
	if math.Abs(pot[0]+0.5) > 0.5*0.01 {
		t.Errorf("pot = %v, want ~-0.5", pot[0])
	}
}

func TestComputeSelfGuard(t *testing.T) {
	sys := newTestSystem(t)
	sys.SetEps(0.1)
	acc := make([]vec.V3, 1)
	pot := make([]float64, 1)
	p := vec.V3{X: 3, Y: 4, Z: 5}
	if err := sys.Compute([]vec.V3{p}, []vec.V3{p}, []float64{7}, acc, pot); err != nil {
		t.Fatal(err)
	}
	if acc[0] != vec.Zero || pot[0] != 0 {
		t.Errorf("self interaction leaked: acc=%v pot=%v", acc[0], pot[0])
	}
}

// TestPairwiseErrorCalibration is experiment E2a: the emulated pipeline's
// pairwise force error must be ≈0.3 % RMS, the figure the paper quotes
// for the G5 chip.
func TestPairwiseErrorCalibration(t *testing.T) {
	sys := newTestSystem(t)
	sys.SetEps(0)
	r := rng.New(12345)
	const n = 20000
	var sum2 float64
	count := 0
	for k := 0; k < n; k++ {
		pi := vec.V3{X: r.Uniform(-50, 50), Y: r.Uniform(-50, 50), Z: r.Uniform(-50, 50)}
		pj := vec.V3{X: r.Uniform(-50, 50), Y: r.Uniform(-50, 50), Z: r.Uniform(-50, 50)}
		m := math.Exp(r.Uniform(-3, 3))
		acc := make([]vec.V3, 1)
		pot := make([]float64, 1)
		if err := sys.Compute([]vec.V3{pi}, []vec.V3{pj}, []float64{m}, acc, pot); err != nil {
			t.Fatal(err)
		}
		d := pj.Sub(pi)
		r2 := d.Norm2()
		if r2 < 1e-4 {
			continue
		}
		exact := d.Scale(m / (r2 * math.Sqrt(r2)))
		rel := acc[0].Sub(exact).Norm() / exact.Norm()
		sum2 += rel * rel
		count++
	}
	rms := math.Sqrt(sum2 / float64(count))
	t.Logf("pairwise RMS force error = %.4f%%", rms*100)
	if rms < 0.0015 || rms > 0.0045 {
		t.Errorf("pairwise RMS error = %.4f%%, want ≈0.3%% (band 0.15-0.45%%)", rms*100)
	}
}

// TestTimingModelHeadline checks the timing model against the paper's
// arithmetic: at the headline run's average group geometry
// (n_i = 2000 group members, n_j = 13431 list entries), the pipeline
// time for the whole step must come out near 10 s — the value implied
// by 2.9e10 interactions/step at 2.88e9 interactions/s.
func TestTimingModelHeadline(t *testing.T) {
	sys := newTestSystem(t)
	// Charge the per-step work synthetically: 1080 groups.
	const groups = 1080
	const ni, nj = 2000, 13431
	for g := 0; g < groups; g++ {
		sys.charge(ni, nj)
	}
	c := sys.Counters()
	wantInteractions := int64(groups) * ni * nj
	if c.Interactions != wantInteractions {
		t.Errorf("interactions = %d, want %d", c.Interactions, wantInteractions)
	}
	// Ideal pipeline time = interactions / 2.88e9 ≈ 10.07 s; the model
	// adds ceil-padding (i groups of 96, j split across boards), so
	// expect slightly more but within 10%.
	ideal := float64(wantInteractions) / sys.Config().PeakInteractionsPerSecond()
	if c.PipeSeconds < ideal {
		t.Errorf("pipe time %v below ideal %v — model lost work", c.PipeSeconds, ideal)
	}
	if c.PipeSeconds > ideal*1.10 {
		t.Errorf("pipe time %v more than 10%% over ideal %v", c.PipeSeconds, ideal)
	}
	// Bus traffic: nj*16 + ni*12 + ni*16*2 bytes per group.
	wantBytes := int64(groups) * (nj*16 + ni*12 + ni*16*2)
	if c.BytesTransferred != wantBytes {
		t.Errorf("bytes = %d, want %d", c.BytesTransferred, wantBytes)
	}
	t.Logf("per-step: pipe %.2f s, bus %.2f s (paper-implied pipe ~10.1 s)",
		c.PipeSeconds, c.BusSeconds)
}

func TestJMemoryPasses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JMemPerBoard = 100 // tiny memory: 200 total
	sys, _ := NewSystem(cfg)
	sys.SetScale(-10, 10)
	sys.charge(96, 500) // 500 j > 200 capacity -> 3 passes
	if sys.Counters().JPasses != 3 {
		t.Errorf("JPasses = %d, want 3", sys.Counters().JPasses)
	}
}

func TestStrictRange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StrictRange = true
	sys, _ := NewSystem(cfg)
	sys.SetScale(-1, 1)
	err := sys.Compute([]vec.V3{{X: 5}}, []vec.V3{{}}, []float64{1},
		make([]vec.V3, 1), make([]float64, 1))
	if err == nil {
		t.Error("strict mode accepted out-of-range position")
	}
}

func TestClampCounting(t *testing.T) {
	sys, _ := NewSystem(DefaultConfig())
	sys.SetScale(-1, 1)
	err := sys.Compute([]vec.V3{{X: 5}}, []vec.V3{{}}, []float64{1},
		make([]vec.V3, 1), make([]float64, 1))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Counters().RangeClamps == 0 {
		t.Error("clamp not counted")
	}
}

func TestResetCounters(t *testing.T) {
	sys := newTestSystem(t)
	sys.charge(10, 10)
	sys.ResetCounters()
	if c := sys.Counters(); c.Interactions != 0 || c.HWSeconds() != 0 {
		t.Errorf("counters not reset: %+v", c)
	}
}

// TestResetCountersObserverConsistency is the regression test for the
// counter/observer split-brain: ResetCounters used to zero the
// Counters view while the attached Observer kept the hardware phase
// spans and flop/byte counters the same charges had fed, so a
// subsequent Snapshot reported t_grape/t_comm for work the counters
// said never happened. Resetting must clear exactly the
// observer-side state this System writes — and nothing owned by other
// components.
func TestResetCountersObserverConsistency(t *testing.T) {
	sys := newTestSystem(t)
	ob := obs.NewObserver()
	sys.SetObserver(ob)

	// Foreign state owned by the treecode and the guard, which a
	// hardware counter reset must not disturb.
	ob.AddSeconds(obs.PhaseGroupWalk, 0.5)
	ob.AddSeconds(obs.PhaseGuard, 0.25)
	ob.Add(obs.CntInteractions, 7)

	sys.charge(96, 1000)
	if ob.Seconds(obs.PhasePipeline) == 0 || ob.Count(obs.CntFlops) == 0 {
		t.Fatal("charge did not feed the observer — test is vacuous")
	}

	sys.ResetCounters()
	if c := sys.Counters(); c.Interactions != 0 || c.HWSeconds() != 0 || c.BytesTransferred != 0 {
		t.Errorf("counters not reset: %+v", c)
	}
	for _, p := range []obs.Phase{obs.PhaseJTransfer, obs.PhaseITransfer, obs.PhasePipeline, obs.PhaseReadback} {
		if s := ob.Seconds(p); s != 0 {
			t.Errorf("observer phase %v = %v after ResetCounters, want 0", p, s)
		}
	}
	if n := ob.Count(obs.CntFlops); n != 0 {
		t.Errorf("observer flops = %d after ResetCounters, want 0", n)
	}
	if n := ob.Count(obs.CntBytes); n != 0 {
		t.Errorf("observer bytes = %d after ResetCounters, want 0", n)
	}

	// The snapshot must now agree with the counters: no phantom
	// hardware time.
	r := ob.Snapshot(1, 0)
	if r.TGrape != 0 || r.TComm != 0 {
		t.Errorf("snapshot reports t_grape=%v t_comm=%v after reset", r.TGrape, r.TComm)
	}
	// Foreign state survives.
	if got := ob.Seconds(obs.PhaseGroupWalk); got != 0.5 {
		t.Errorf("group walk span = %v, want 0.5 (reset clobbered foreign phase)", got)
	}
	if got := ob.Seconds(obs.PhaseGuard); got != 0.25 {
		t.Errorf("guard span = %v, want 0.25 (reset clobbered foreign phase)", got)
	}
	if got := ob.Count(obs.CntInteractions); got != 7 {
		t.Errorf("interactions counter = %d, want 7 (reset clobbered foreign counter)", got)
	}

	// A reset system must charge cleanly again with both views in step.
	sys.charge(10, 20)
	if c := sys.Counters(); c.Interactions != 200 {
		t.Errorf("post-reset interactions = %d, want 200", c.Interactions)
	}
	if ob.Seconds(obs.PhasePipeline) == 0 {
		t.Error("post-reset charge not observed")
	}
}

func TestEmptyBatchesAreFree(t *testing.T) {
	sys := newTestSystem(t)
	if err := sys.Compute(nil, []vec.V3{{X: 1}}, []float64{1}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Compute([]vec.V3{{}}, nil, nil, make([]vec.V3, 1), make([]float64, 1)); err != nil {
		t.Fatal(err)
	}
	if c := sys.Counters(); c.Runs != 0 || c.Interactions != 0 {
		t.Errorf("empty batches charged: %+v", c)
	}
}

func TestFloat64ConfigIsExact(t *testing.T) {
	// With all precision knobs maxed, the pipeline must agree with
	// float64 arithmetic to rounding error — the paper's observation
	// that results were "practically the same" with 64-bit arithmetic,
	// exercised in reverse.
	cfg := DefaultConfig()
	cfg.PosBits = 52
	cfg.MassBits = 52
	cfg.R2Bits = 52
	cfg.PipeBits = 52
	sys, _ := NewSystem(cfg)
	sys.SetScale(-100, 100)
	sys.SetEps(0.1)

	r := rng.New(6)
	ni, nj := 10, 50
	ipos := make([]vec.V3, ni)
	jpos := make([]vec.V3, nj)
	jm := make([]float64, nj)
	for i := range ipos {
		ipos[i] = vec.V3{X: r.Uniform(-50, 50), Y: r.Uniform(-50, 50), Z: r.Uniform(-50, 50)}
	}
	for j := range jpos {
		jpos[j] = vec.V3{X: r.Uniform(-50, 50), Y: r.Uniform(-50, 50), Z: r.Uniform(-50, 50)}
		jm[j] = 1 + r.Float64()
	}
	acc := make([]vec.V3, ni)
	pot := make([]float64, ni)
	if err := sys.Compute(ipos, jpos, jm, acc, pot); err != nil {
		t.Fatal(err)
	}
	// Position quantisation at 52 bits over [-100,100) is ~2e-14
	// absolute; compare against float64 reference loosely.
	for i := range ipos {
		var want vec.V3
		var wpot float64
		for j := range jpos {
			d := jpos[j].Sub(ipos[i])
			r2 := d.Norm2() + 0.01
			inv := 1 / math.Sqrt(r2)
			want = want.MulAdd(jm[j]*inv/r2, d)
			wpot -= jm[j] * inv
		}
		if acc[i].Sub(want).Norm() > 1e-9*(1+want.Norm()) {
			t.Fatalf("max-precision pipeline differs from float64 at %d: %v vs %v", i, acc[i], want)
		}
		if math.Abs(pot[i]-wpot) > 1e-9*(1+math.Abs(wpot)) {
			t.Fatalf("potential differs at %d", i)
		}
	}
}

func TestSetEpsValidation(t *testing.T) {
	sys := newTestSystem(t)
	if err := sys.SetEps(0.25); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{math.NaN(), -0.01, math.Inf(1), math.Inf(-1)} {
		if err := sys.SetEps(bad); err == nil {
			t.Errorf("SetEps(%v) accepted", bad)
		}
	}
	// A rejected value must leave the previous softening in place.
	if got := sys.Eps(); got != 0.25 {
		t.Errorf("eps after rejected sets = %v, want 0.25", got)
	}
	if err := sys.SetEps(0); err != nil {
		t.Errorf("SetEps(0) rejected: %v", err)
	}
}

func TestCountersFlops(t *testing.T) {
	sys := newTestSystem(t)
	sys.ChargeOnly(96, 1000)
	sys.ChargeOnly(10, 50)
	c := sys.Counters()
	wantInts := int64(96*1000 + 10*50)
	if c.Interactions != wantInts {
		t.Fatalf("interactions = %d, want %d", c.Interactions, wantInts)
	}
	if got, want := c.Flops(38), float64(wantInts)*38; got != want {
		t.Errorf("Flops(38) = %v, want %v", got, want)
	}
	if got := c.Flops(1); got != float64(wantInts) {
		t.Errorf("Flops(1) = %v, want %v", got, float64(wantInts))
	}
}
