package g5

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

// newConformanceCluster builds a cluster with the scale window and
// softening the other guard tests use.
func newConformanceCluster(t testing.TB, cfg ClusterConfig, eps float64) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetScale(-100, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.SetEps(eps); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// batchShapes is the conformance workload: batch sizes chosen to hit a
// single under-full chunk, exact chunk multiples, and ragged tails.
var batchShapes = []struct{ ni, nj int }{
	{1, 50}, {17, 300}, {96, 200}, {97, 400}, {192, 128}, {500, 777},
}

// runBatches pushes the deterministic workload through eng, flushing
// after every batch when stepwise is set (the treecode's cadence is one
// flush per step; stepwise stresses the merge path instead).
func runBatches(t testing.TB, eng core.Engine, seed uint64, stepwise bool) []*core.Request {
	t.Helper()
	r := rng.New(seed)
	var reqs []*core.Request
	for _, s := range batchShapes {
		q := randomRequest(r, s.ni, s.nj)
		eng.Accumulate(q)
		reqs = append(reqs, q)
		if stepwise {
			if be, ok := eng.(core.BatchedEngine); ok {
				if err := be.Flush(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if be, ok := eng.(core.BatchedEngine); ok {
		if err := be.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return reqs
}

// TestClusterK1BitwiseIdenticalToGuard: a single-shard cluster is the
// bare guarded engine plus staging, chunking and a worker goroutine —
// none of which may perturb a single bit of the forces. Sharding is
// i-axis only (each i-particle's force is one full hardware sum), so
// this holds for ANY chunk size; the table exercises the adaptive size
// and pathological overrides.
func TestClusterK1BitwiseIdenticalToGuard(t *testing.T) {
	refSys := newGuardSystem(t, DefaultConfig(), 0.05)
	ref := NewGuardedEngine(refSys, 1.5, fastPolicy())
	want := runBatches(t, ref, 21, false)

	for _, chunk := range []int{0, 1, 7, 96, 1000} {
		t.Run(fmt.Sprintf("chunk=%d", chunk), func(t *testing.T) {
			cl := newConformanceCluster(t, ClusterConfig{
				Shards: 1, Board: DefaultConfig(), G: 1.5,
				Guard: fastPolicy(), ChunkI: chunk,
			}, 0.05)
			got := runBatches(t, cl, 21, false)
			for b := range want {
				for i := range want[b].Acc {
					if got[b].Acc[i] != want[b].Acc[i] || got[b].Pot[i] != want[b].Pot[i] {
						t.Fatalf("batch %d i=%d: cluster %v/%v != engine %v/%v",
							b, i, got[b].Acc[i], got[b].Pot[i], want[b].Acc[i], want[b].Pot[i])
					}
				}
			}
			rec := cl.Recovery()
			if rec.Checks == 0 || rec.Retries != 0 || rec.FallbackBatches != 0 {
				t.Errorf("healthy K=1 cluster recovery: %+v", rec)
			}
		})
	}
}

// TestClusterShardsAgreeWithK1: K ∈ {2,4,8} must agree with K=1 to
// ≤1e-12 after deterministic reduction ordering. The i-axis sharding
// design makes the reduction trivial (each force is one hardware sum on
// one shard), so the agreement is in fact exact; the tolerance in the
// assertion documents the contract the treecode relies on, and the
// exactness is pinned separately so a future cross-shard reduction
// cannot sneak in silently.
func TestClusterShardsAgreeWithK1(t *testing.T) {
	base := newConformanceCluster(t, ClusterConfig{
		Shards: 1, Board: DefaultConfig(), G: 1, Guard: fastPolicy(),
	}, 0.05)
	want := runBatches(t, base, 33, true)

	for _, k := range []int{2, 4, 8} {
		for _, policy := range []DispatchPolicy{DispatchWorkSteal, DispatchRoundRobin} {
			name := fmt.Sprintf("K=%d/steal=%v", k, policy == DispatchWorkSteal)
			t.Run(name, func(t *testing.T) {
				cl := newConformanceCluster(t, ClusterConfig{
					Shards: k, Board: DefaultConfig(), G: 1,
					Guard: fastPolicy(), Dispatch: policy, ChunkI: 32,
				}, 0.05)
				got := runBatches(t, cl, 33, true)
				for b := range want {
					for i := range want[b].Acc {
						d := got[b].Acc[i].Sub(want[b].Acc[i])
						if math.Abs(d.X) > 1e-12 || math.Abs(d.Y) > 1e-12 || math.Abs(d.Z) > 1e-12 ||
							math.Abs(got[b].Pot[i]-want[b].Pot[i]) > 1e-12 {
							t.Fatalf("batch %d i=%d: K=%d drifted beyond 1e-12: %v vs %v",
								b, i, k, got[b].Acc[i], want[b].Acc[i])
						}
						if got[b].Acc[i] != want[b].Acc[i] || got[b].Pot[i] != want[b].Pot[i] {
							t.Fatalf("batch %d i=%d: K=%d not bitwise identical (reduction order changed?)",
								b, i, k)
						}
					}
				}
				// Conservation: every pairwise interaction ran on exactly
				// one shard.
				var total, wantTotal int64
				for _, n := range cl.ShardInteractions() {
					total += n
				}
				for _, s := range batchShapes {
					wantTotal += int64(s.ni) * int64(s.nj)
				}
				if total != wantTotal {
					t.Errorf("shard interactions sum to %d, submitted %d", total, wantTotal)
				}
			})
		}
	}
}

// TestClusterConcurrentAccumulate drives a K=4 cluster from several
// producer goroutines at once — the treecode's walk-worker pattern —
// and checks every batch against the bare engine. Run under -race this
// is the data-race conformance check for the staging path.
func TestClusterConcurrentAccumulate(t *testing.T) {
	refSys := newGuardSystem(t, DefaultConfig(), 0.05)
	ref := NewEngine(refSys, 1)
	cl := newConformanceCluster(t, ClusterConfig{
		Shards: 4, Board: DefaultConfig(), G: 1, Guard: fastPolicy(), ChunkI: 48,
	}, 0.05)

	const producers, perProducer = 4, 6
	reqs := make([][]*core.Request, producers)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		r := rng.New(100 + uint64(p))
		for b := 0; b < perProducer; b++ {
			reqs[p] = append(reqs[p], randomRequest(r, 30+7*p+b, 150+10*b))
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, q := range reqs[p] {
				cl.Accumulate(q)
			}
		}()
	}
	wg.Wait()
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < producers; p++ {
		for b, q := range reqs[p] {
			want := cloneRequest(q)
			ref.Accumulate(want)
			for i := range want.Acc {
				if q.Acc[i] != want.Acc[i] || q.Pot[i] != want.Pot[i] {
					t.Fatalf("producer %d batch %d i=%d: concurrent cluster diverged", p, b, i)
				}
			}
		}
	}
}

// TestClusterFlushSurfacesShardPanic: the synchronous engines surface
// host programming bugs (here: Compute before SetScale) by panicking in
// the caller's frame; on a cluster the caller's frame is a worker
// goroutine, so the panic must come back as the Flush error instead of
// killing the process — and must not wedge the cluster.
func TestClusterFlushSurfacesShardPanic(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{Shards: 2, Board: DefaultConfig(), G: 1, Guard: fastPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.SetEps(0.05); err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	q := randomRequest(r, 10, 50) // no SetScale yet: the driver rejects Compute
	cl.Accumulate(q)
	if err := cl.Flush(); err == nil {
		t.Fatal("compute-before-SetScale did not surface an error at Flush")
	}
	// The failure is consumed: after fixing the scale the cluster serves.
	if err := cl.SetScale(-100, 100); err != nil {
		t.Fatal(err)
	}
	q2 := randomRequest(r, 10, 50)
	cl.Accumulate(q2)
	if err := cl.Flush(); err != nil {
		t.Fatalf("cluster did not recover after surfaced error: %v", err)
	}
}

// FuzzClusterShard fuzzes the sharding invariants: arbitrary batch
// shapes, shard counts, chunk overrides and transient fault injection
// must never drop or double-count a force, and the per-shard recovery
// counters must sum to the cluster totals.
func FuzzClusterShard(f *testing.F) {
	f.Add(uint64(1), uint16(20), uint16(300), uint8(2), uint8(0), uint8(0))
	f.Add(uint64(2), uint16(97), uint16(50), uint8(3), uint8(7), uint8(1))
	f.Add(uint64(3), uint16(500), uint16(900), uint8(8), uint8(96), uint8(2))
	f.Add(uint64(4), uint16(1), uint16(1), uint8(1), uint8(1), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, niRaw, njRaw uint16, shardsRaw, chunkRaw, faultKind uint8) {
		ni := 1 + int(niRaw)%600
		nj := 1 + int(njRaw)%900
		shards := 1 + int(shardsRaw)%8
		chunk := int(chunkRaw) % 128 // 0 keeps the adaptive size

		cfg := DefaultConfig()
		switch faultKind % 4 {
		case 1:
			cfg.Fault = &FaultModel{Seed: seed, BusErrorRate: 0.1}
		case 2:
			cfg.Fault = &FaultModel{Seed: seed, TransientRate: 0.1}
		case 3:
			cfg.Fault = &FaultModel{Seed: seed, BusErrorRate: 0.08, TransientRate: 0.08}
		}
		pol := fastPolicy()
		pol.MaxRetries = 12

		cl, err := NewCluster(ClusterConfig{
			Shards: shards, Board: cfg, G: 1, Guard: pol, ChunkI: chunk,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if err := cl.SetScale(-100, 100); err != nil {
			t.Fatal(err)
		}
		if err := cl.SetEps(0.05); err != nil {
			t.Fatal(err)
		}

		// Fault-free single-engine reference for the same batches.
		refSys := newGuardSystem(t, DefaultConfig(), 0.05)
		ref := NewGuardedEngine(refSys, 1, fastPolicy())

		const batches = 3
		r := rng.New(seed)
		var reqs, want []*core.Request
		for b := 0; b < batches; b++ {
			q := randomRequest(r, ni, nj)
			w := cloneRequest(q)
			ref.Accumulate(w)
			cl.Accumulate(q)
			reqs, want = append(reqs, q), append(want, w)
		}
		if err := cl.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}

		// Conservation: each pairwise interaction ran on exactly one
		// shard — nothing dropped, nothing double-counted.
		var total int64
		for _, n := range cl.ShardInteractions() {
			total += n
		}
		if wantTotal := int64(batches) * int64(ni) * int64(nj); total != wantTotal {
			t.Fatalf("shard interactions sum to %d, submitted %d", total, wantTotal)
		}

		// Recovery counters sum across shards, and every chunk was
		// acceptance-checked exactly once.
		rec := cl.Recovery()
		var sum Recovery
		var chunks int64
		for k := 0; k < cl.Shards(); k++ {
			sr := cl.ShardEngine(k).Recovery()
			sum.Checks += sr.Checks
			sum.Retries += sr.Retries
			sum.FallbackBatches += sr.FallbackBatches
		}
		for _, n := range cl.ShardBatches() {
			chunks += n
		}
		if rec.Checks != sum.Checks || rec.Retries != sum.Retries || rec.FallbackBatches != sum.FallbackBatches {
			t.Fatalf("cluster recovery %+v disagrees with shard sum %+v", rec, sum)
		}
		if rec.Checks != chunks {
			t.Fatalf("%d acceptance checks for %d executed chunks", rec.Checks, chunks)
		}
		fs := cl.FaultStats()
		if int64(fs.BusErrors+fs.Transients) != rec.Retries {
			t.Fatalf("injected %d transient faults but guard retried %d",
				fs.BusErrors+fs.Transients, rec.Retries)
		}

		// Transient faults are retried away bitwise; only an exhausted
		// retry budget (host fallback, float64 arithmetic) may change the
		// result, and then it must still be finite and close.
		exact := rec.FallbackBatches == 0
		for b := range reqs {
			for i := range reqs[b].Acc {
				g, w := reqs[b].Acc[i], want[b].Acc[i]
				if exact {
					if g != w || reqs[b].Pot[i] != want[b].Pot[i] {
						t.Fatalf("batch %d i=%d: faulted cluster diverged: %v vs %v", b, i, g, w)
					}
					continue
				}
				if math.IsNaN(g.X) || math.IsInf(g.X, 0) ||
					math.IsNaN(g.Y) || math.IsInf(g.Y, 0) ||
					math.IsNaN(g.Z) || math.IsInf(g.Z, 0) {
					t.Fatalf("batch %d i=%d: non-finite force %v after fallback", b, i, g)
				}
				// Host fallback is float64: agreement to the emulator's
				// pairwise error level, not bitwise.
				if rel := g.Sub(w).Norm() / (w.Norm() + 1e-30); rel > 0.05 {
					t.Fatalf("batch %d i=%d: fallback force off by %.3g relative", b, i, rel)
				}
			}
		}
	})
}
