package g5

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/nbody"
	"repro/internal/rng"
	"repro/internal/vec"
)

func newTestEngine(t *testing.T, g float64) *Engine {
	t.Helper()
	sys, err := NewSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetScale(-100, 100); err != nil {
		t.Fatal(err)
	}
	return NewEngine(sys, g)
}

func TestEngineMatchesHostEngine(t *testing.T) {
	// The GRAPE engine must agree with the float64 host engine to
	// pipeline precision on a random batch.
	e := newTestEngine(t, 2.5)
	e.System().SetEps(0.05)
	host := &core.HostEngine{G: 2.5, Eps: 0.05}

	r := rng.New(8)
	ni, nj := 20, 200
	req := func() *core.Request {
		ipos := make([]vec.V3, ni)
		rq := &core.Request{IPos: ipos,
			Acc: make([]vec.V3, ni), Pot: make([]float64, ni)}
		for i := range ipos {
			ipos[i] = vec.V3{X: r.Uniform(-40, 40), Y: r.Uniform(-40, 40), Z: r.Uniform(-40, 40)}
		}
		for j := 0; j < nj; j++ {
			rq.J.Append(r.Uniform(-40, 40), r.Uniform(-40, 40), r.Uniform(-40, 40), 1+r.Float64())
		}
		rq.J.Pad()
		return rq
	}
	rq1 := req()
	rq2 := &core.Request{IPos: rq1.IPos, J: rq1.J,
		Acc: make([]vec.V3, ni), Pot: make([]float64, ni)}
	e.Accumulate(rq1)
	host.Accumulate(rq2)
	for i := range rq1.Acc {
		rel := rq1.Acc[i].Sub(rq2.Acc[i]).Norm() / rq2.Acc[i].Norm()
		if rel > 0.02 {
			t.Errorf("i=%d: GRAPE vs host relative difference %v > 2%%", i, rel)
		}
	}
}

func TestEngineAddsIntoOutputs(t *testing.T) {
	e := newTestEngine(t, 1)
	req := &core.Request{
		IPos: []vec.V3{{X: -1}},
		Acc:  []vec.V3{{X: 100}},
		Pot:  []float64{7},
	}
	req.J.Append(1, 0, 0, 1)
	e.Accumulate(req)
	if req.Acc[0].X <= 100 {
		t.Errorf("Accumulate must add, got %v", req.Acc[0].X)
	}
	if req.Pot[0] >= 7 {
		t.Errorf("potential must decrease from 7, got %v", req.Pot[0])
	}
}

func TestEngineConcurrentUse(t *testing.T) {
	// Many goroutines hammering the engine must serialise safely and
	// produce correct counters.
	e := newTestEngine(t, 1)
	const calls = 50
	var wg sync.WaitGroup
	for k := 0; k < calls; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := &core.Request{
				IPos: []vec.V3{{X: -1}, {X: -2}},
				Acc:  make([]vec.V3, 2),
				Pot:  make([]float64, 2),
			}
			req.J.Append(1, 0, 0, 1)
			req.J.Append(2, 0, 0, 1)
			req.J.Append(3, 0, 0, 1)
			e.Accumulate(req)
		}()
	}
	wg.Wait()
	c := e.System().Counters()
	if c.Runs != calls {
		t.Errorf("runs = %d, want %d", c.Runs, calls)
	}
	if c.Interactions != calls*2*3 {
		t.Errorf("interactions = %d, want %d", c.Interactions, calls*6)
	}
}

func TestEngineDefaultG(t *testing.T) {
	sys, _ := NewSystem(DefaultConfig())
	e := NewEngine(sys, 0)
	if e.G != 1 {
		t.Errorf("G = %v, want 1", e.G)
	}
}

// TestTreecodeOnGRAPE is the integration test of the full offload path:
// treecode forces evaluated on the emulated hardware must match direct
// float64 summation to the combined tree+pipeline error budget, and —
// the paper's §2 point — the TOTAL error must be dominated by the tree
// approximation, not the hardware.
func TestTreecodeOnGRAPE(t *testing.T) {
	s := nbody.Plummer(2000, 1, 1, 1, rng.New(3))
	ref := s.Clone()
	nbody.DirectForces(ref, 1, 0.01)
	refByID := make(map[int64]vec.V3)
	for i := range ref.Pos {
		refByID[ref.ID[i]] = ref.Acc[i]
	}

	bounds := s.Bounds()
	ext := bounds.MaxEdge()
	sys, _ := NewSystem(DefaultConfig())
	if err := sys.SetScale(bounds.Center().X-ext, bounds.Center().X+ext); err != nil {
		t.Fatal(err)
	}
	sys.SetEps(0.01)
	eng := NewEngine(sys, 1)

	// GRAPE run.
	sg := s.Clone()
	tcG := core.New(core.Options{Theta: 0.75, Ncrit: 128, G: 1, Eps: 0.01}, eng)
	if _, err := tcG.ComputeForces(sg); err != nil {
		t.Fatal(err)
	}
	// Host float64 run with the same tree parameters.
	sh := s.Clone()
	tcH := core.New(core.Options{Theta: 0.75, Ncrit: 128, G: 1, Eps: 0.01}, nil)
	if _, err := tcH.ComputeForces(sh); err != nil {
		t.Fatal(err)
	}

	rms := func(sys *nbody.System) float64 {
		var sum float64
		for i := range sys.Pos {
			want := refByID[sys.ID[i]]
			d := sys.Acc[i].Sub(want).Norm() / want.Norm()
			sum += d * d
		}
		return math.Sqrt(sum / float64(sys.N()))
	}
	errG := rms(sg)
	errH := rms(sh)
	t.Logf("total RMS force error: GRAPE %.4f%%, float64 host %.4f%%", errG*100, errH*100)
	if errG > 0.01 {
		t.Errorf("GRAPE total error %.4f%% > 1%%", errG*100)
	}
	// Paper §2: accuracy "practically the same" as 64-bit arithmetic,
	// because the tree approximation dominates. Allow the hardware to
	// add at most ~60% on top of the tree-only error.
	if errG > errH*1.6+1e-9 {
		t.Errorf("hardware degrades tree error too much: %.4f%% vs %.4f%%", errG*100, errH*100)
	}
	if c := sys.Counters(); c.RangeClamps != 0 {
		t.Errorf("unexpected range clamps: %d", c.RangeClamps)
	}
}
