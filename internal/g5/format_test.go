package g5

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestRoundMantissaExact(t *testing.T) {
	// Values already representable in few bits pass through.
	for _, v := range []float64{1, 2, 0.5, 1.5, -3, 0} {
		if got := RoundMantissa(v, 4); got != v {
			t.Errorf("RoundMantissa(%v, 4) = %v", v, got)
		}
	}
}

func TestRoundMantissaKnown(t *testing.T) {
	// 1.0625 = 1 + 1/16 with 2 mantissa bits rounds to 1.0.
	if got := RoundMantissa(1.0625, 2); got != 1.0 {
		t.Errorf("got %v, want 1.0", got)
	}
	// 1.1875 = 1 + 3/16 with 2 bits rounds to 1.25.
	if got := RoundMantissa(1.1875, 2); got != 1.25 {
		t.Errorf("got %v, want 1.25", got)
	}
	// Carry across a power of two: 1.96875 with 2 bits rounds to 2.0.
	if got := RoundMantissa(1.96875, 2); got != 2.0 {
		t.Errorf("got %v, want 2.0", got)
	}
}

func TestRoundMantissaSpecials(t *testing.T) {
	if got := RoundMantissa(math.Inf(1), 4); !math.IsInf(got, 1) {
		t.Errorf("Inf -> %v", got)
	}
	if got := RoundMantissa(math.NaN(), 4); !math.IsNaN(got) {
		t.Errorf("NaN -> %v", got)
	}
	if got := RoundMantissa(1.23456, 52); got != 1.23456 {
		t.Errorf("52 bits should pass through, got %v", got)
	}
}

// Property: relative rounding error is bounded by 2^-(bits+1) (half an
// ulp at the given precision) and the sign is preserved.
func TestRoundMantissaErrorBoundProperty(t *testing.T) {
	f := func(x float64, bits uint) bool {
		// The bound holds for normal floats away from overflow; the
		// doc comment scopes out ±MaxFloat64 neighbourhoods and
		// subnormals.
		if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 ||
			math.Abs(x) > 1e300 || math.Abs(x) < 1e-300 {
			return true
		}
		b := 2 + bits%10 // 2..11 bits
		got := RoundMantissa(x, b)
		rel := math.Abs(got-x) / math.Abs(x)
		if rel > math.Exp2(-float64(b))/2*(1+1e-12) {
			return false
		}
		return math.Signbit(got) == math.Signbit(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: rounding is idempotent.
func TestRoundMantissaIdempotentProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		once := RoundMantissa(x, 7)
		return RoundMantissa(once, 7) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: rounding is monotone (order-preserving) for positive values.
func TestRoundMantissaMonotoneProperty(t *testing.T) {
	r := rng.New(4)
	prevIn, prevOut := 0.0, 0.0
	for i := 0; i < 10000; i++ {
		x := math.Exp(r.Uniform(-20, 20))
		y := RoundMantissa(x, 6)
		if i > 0 {
			if (x > prevIn && y < prevOut) || (x < prevIn && y > prevOut) {
				t.Fatalf("monotonicity violated: f(%v)=%v but f(%v)=%v", prevIn, prevOut, x, y)
			}
		}
		prevIn, prevOut = x, y
	}
}

func TestFixedGridQuantize(t *testing.T) {
	g := NewFixedGrid(-1, 1, 4) // 16 steps of 0.125
	if g.Step() != 0.125 {
		t.Errorf("step = %v", g.Step())
	}
	v, ok := g.Quantize(0)
	if !ok || v != 0 {
		t.Errorf("Quantize(0) = %v, %v", v, ok)
	}
	v, ok = g.Quantize(0.06) // nearest grid point is 0.125*round(0.48)=0
	if !ok || v != 0.0 {
		t.Errorf("Quantize(0.06) = %v, %v", v, ok)
	}
	// Out of range clamps and reports.
	v, ok = g.Quantize(5)
	if ok {
		t.Error("out-of-range reported ok")
	}
	if v > 1 || v < 0.8 {
		t.Errorf("clamped value = %v", v)
	}
	v, ok = g.Quantize(-5)
	if ok || v != -1 {
		t.Errorf("low clamp = %v, %v", v, ok)
	}
}

// Property: quantisation error is bounded by half a step inside the range.
func TestFixedGridErrorBoundProperty(t *testing.T) {
	g := NewFixedGrid(-10, 10, 16)
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		x = math.Mod(x, 9.99)
		v, ok := g.Quantize(x)
		return ok && math.Abs(v-x) <= g.Step()/2*(1+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
