package g5

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// FaultModel configures seeded, deterministic fault injection into an
// emulated System. It reproduces the failure modes GRAPE operators had
// to handle in long unattended runs (Kawai et al. 1999; Fukushige et
// al. 2005): corrupted words in the particle-data memory, stuck force
// pipelines, host-interface transfer errors, and boards that simply
// stop responding. All randomness comes from Seed, so a faulty run is
// exactly reproducible.
//
// Rates are per-Compute-call probabilities in [0, 1]. The zero value
// injects nothing.
type FaultModel struct {
	// Seed seeds the injector's private random stream.
	Seed uint64

	// JMemBitFlipRate is the probability that one stored j-particle
	// word (a mass or a position coordinate) is read back corrupted —
	// a high mantissa bit flipped — during the call. The corruption is
	// silent: forces come back plausible but wrong by roughly the
	// corrupted particle's share of the total.
	JMemBitFlipRate float64
	// StuckPipeRate is the probability that one virtual pipeline of
	// one active board sticks at zero for the call, silently dropping
	// that board's force contribution for every i-particle served by
	// the stuck slot (i with i % VirtualPipesPerBoard == slot).
	StuckPipeRate float64
	// BusErrorRate is the probability of a detected host-interface
	// transfer error: Compute fails with a transient HardwareError
	// before any force is produced.
	BusErrorRate float64
	// TransientRate is the probability of a transient compute failure
	// (driver timeout): Compute fails with a transient HardwareError.
	TransientRate float64

	// FailBoard, when in [1, Boards] (1-based; 0 disables), makes
	// virtual pipeline FailSlot of that board stick at zero on every
	// Compute call after the first FailAfterRuns calls — the
	// paper-authentic hard failure: a board dies mid-run and stays
	// dead until the host excludes it.
	FailBoard int
	// FailAfterRuns is the number of Compute calls the failing board
	// survives before sticking (0 = stuck from the first call).
	FailAfterRuns int64
	// FailSlot is the stuck virtual-pipeline slot (taken modulo
	// VirtualPipesPerBoard).
	FailSlot int
}

// enabled reports whether the model can inject anything at all.
func (m FaultModel) enabled() bool {
	return m.JMemBitFlipRate > 0 || m.StuckPipeRate > 0 ||
		m.BusErrorRate > 0 || m.TransientRate > 0 || m.FailBoard >= 1
}

// validate reports configuration errors against the host config.
func (m FaultModel) validate(cfg Config) error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"JMemBitFlipRate", m.JMemBitFlipRate},
		{"StuckPipeRate", m.StuckPipeRate},
		{"BusErrorRate", m.BusErrorRate},
		{"TransientRate", m.TransientRate},
	} {
		if math.IsNaN(r.v) || r.v < 0 || r.v > 1 {
			return fmt.Errorf("g5: fault %s = %v outside [0, 1]", r.name, r.v)
		}
	}
	if m.FailBoard < 0 || m.FailBoard > cfg.Boards {
		return fmt.Errorf("g5: fault FailBoard = %d outside [0, %d]", m.FailBoard, cfg.Boards)
	}
	if m.FailAfterRuns < 0 {
		return fmt.Errorf("g5: fault FailAfterRuns = %d negative", m.FailAfterRuns)
	}
	if m.FailSlot < 0 {
		return fmt.Errorf("g5: fault FailSlot = %d negative", m.FailSlot)
	}
	return nil
}

// FaultStats counts injected-fault activity, one counter per fault
// class.
type FaultStats struct {
	// JMemBitFlips is the number of corrupted j-memory words streamed.
	JMemBitFlips int64
	// StuckPipeCalls is the number of Compute calls that ran with at
	// least one stuck virtual pipeline (random or hard-failed).
	StuckPipeCalls int64
	// BusErrors is the number of injected transfer errors.
	BusErrors int64
	// Transients is the number of injected transient compute failures.
	Transients int64
}

// stuckPipe identifies one stuck virtual pipeline.
type stuckPipe struct{ board, slot int }

// faultPlan is the injector's decision for one Compute call.
type faultPlan struct {
	// err, when non-nil, fails the call before any force is produced.
	err *HardwareError
	// flipJ is the j index whose word is corrupted (-1: none).
	flipJ    int
	flipMass bool // corrupt the mass word instead of a position word
	flipAxis int  // position coordinate to corrupt (0..2)
	flipBit  uint // mantissa bit to flip
	// stuck lists the virtual pipelines stuck at zero for this call.
	stuck []stuckPipe
}

// faultInjector holds the mutable state of a FaultModel attached to a
// System: the private random stream, the call count driving the hard
// failure, and the activity counters.
type faultInjector struct {
	model FaultModel
	vp    int // virtual pipelines per board
	r     *rng.Source
	calls int64
	stats FaultStats
}

func newFaultInjector(m FaultModel, cfg Config) *faultInjector {
	return &faultInjector{model: m, vp: cfg.VirtualPipesPerBoard(), r: rng.New(m.Seed)}
}

// plan draws this call's faults. active lists the boards still in
// service; stuck pipes only ever target those (an excluded board's
// faults are invisible, which is the whole point of excluding it).
func (f *faultInjector) plan(nj int, active []int) faultPlan {
	f.calls++
	p := faultPlan{flipJ: -1}
	m := f.model
	if m.BusErrorRate > 0 && f.r.Float64() < m.BusErrorRate {
		f.stats.BusErrors++
		p.err = &HardwareError{Op: "bus transfer", Transient: true,
			Err: fmt.Errorf("injected DMA checksum mismatch (call %d)", f.calls)}
		return p
	}
	if m.TransientRate > 0 && f.r.Float64() < m.TransientRate {
		f.stats.Transients++
		p.err = &HardwareError{Op: "compute timeout", Transient: true,
			Err: fmt.Errorf("injected driver timeout (call %d)", f.calls)}
		return p
	}
	if nj > 0 && m.JMemBitFlipRate > 0 && f.r.Float64() < m.JMemBitFlipRate {
		f.stats.JMemBitFlips++
		p.flipJ = f.r.Intn(nj)
		p.flipMass = f.r.Float64() < 0.5
		p.flipAxis = f.r.Intn(3)
		// Top mantissa bits: a large (up to ~50 %) but finite error.
		p.flipBit = uint(48 + f.r.Intn(4))
	}
	if len(active) > 0 && m.StuckPipeRate > 0 && f.r.Float64() < m.StuckPipeRate {
		b := active[f.r.Intn(len(active))]
		p.stuck = append(p.stuck, stuckPipe{board: b, slot: f.r.Intn(f.vp)})
	}
	if m.FailBoard >= 1 && f.calls > m.FailAfterRuns {
		b := m.FailBoard - 1
		for _, a := range active {
			if a == b {
				p.stuck = append(p.stuck, stuckPipe{board: b, slot: m.FailSlot % f.vp})
				break
			}
		}
	}
	if len(p.stuck) > 0 {
		f.stats.StuckPipeCalls++
	}
	return p
}

// flipMantissaBit flips one mantissa bit of v. Mantissa-only flips
// cannot create Inf/NaN from a finite value, but guard anyway so a
// corrupted word never poisons the whole batch with non-finite values.
func flipMantissaBit(v float64, bit uint) float64 {
	f := math.Float64frombits(math.Float64bits(v) ^ (1 << (bit & 51)))
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return v
	}
	return f
}
