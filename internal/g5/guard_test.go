package g5

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/vec"
)

// fastPolicy keeps retry sleeps out of the test suite.
func fastPolicy() GuardPolicy {
	return GuardPolicy{BackoffBase: time.Nanosecond, BackoffMax: time.Nanosecond}
}

// randomRequest builds a reproducible batch within [-40, 40].
func randomRequest(r *rng.Source, ni, nj int) *core.Request {
	ipos := make([]vec.V3, ni)
	q := &core.Request{IPos: ipos,
		Acc: make([]vec.V3, ni), Pot: make([]float64, ni)}
	for i := range ipos {
		ipos[i] = vec.V3{X: r.Uniform(-40, 40), Y: r.Uniform(-40, 40), Z: r.Uniform(-40, 40)}
	}
	for j := 0; j < nj; j++ {
		q.J.Append(r.Uniform(-40, 40), r.Uniform(-40, 40), r.Uniform(-40, 40), 1+r.Float64())
	}
	q.J.Pad()
	return q
}

// cloneRequest shares inputs but gives fresh outputs.
func cloneRequest(q *core.Request) *core.Request {
	return &core.Request{IPos: q.IPos, J: q.J,
		Acc: make([]vec.V3, len(q.IPos)), Pot: make([]float64, len(q.IPos))}
}

// aosSources gathers a request's SoA j-list into the AoS slices that
// System.Compute takes directly.
func aosSources(q *core.Request) ([]vec.V3, []float64) {
	jpos := make([]vec.V3, q.J.N)
	for j := range jpos {
		jpos[j] = vec.V3{X: q.J.X[j], Y: q.J.Y[j], Z: q.J.Z[j]}
	}
	return jpos, q.J.M[:q.J.N]
}

func newGuardSystem(t *testing.T, cfg Config, eps float64) *System {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetScale(-100, 100); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetEps(eps); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestGuardMatchesPlainEngine: on a healthy device the guarded path
// must return bitwise the same forces as the unguarded engine (the
// probe block rides along in the i-stream but each i-particle's
// arithmetic is independent), while running one acceptance check per
// batch.
func TestGuardMatchesPlainEngine(t *testing.T) {
	r := rng.New(11)
	plainSys := newGuardSystem(t, DefaultConfig(), 0.05)
	guardSys := newGuardSystem(t, DefaultConfig(), 0.05)
	plain := NewEngine(plainSys, 1.5)
	guard := NewGuardedEngine(guardSys, 1.5, fastPolicy())

	const batches = 5
	for k := 0; k < batches; k++ {
		q1 := randomRequest(r, 20, 300)
		q2 := cloneRequest(q1)
		plain.Accumulate(q1)
		guard.Accumulate(q2)
		for i := range q1.Acc {
			if q1.Acc[i] != q2.Acc[i] || q1.Pot[i] != q2.Pot[i] {
				t.Fatalf("batch %d i=%d: guarded %v/%v != plain %v/%v",
					k, i, q2.Acc[i], q2.Pot[i], q1.Acc[i], q1.Pot[i])
			}
		}
	}
	rec := guard.Recovery()
	if rec.Checks != batches {
		t.Errorf("checks = %d, want %d", rec.Checks, batches)
	}
	if rec.Retries != 0 || rec.CorruptResults != 0 || rec.FallbackBatches != 0 {
		t.Errorf("healthy device produced recovery activity: %v", rec)
	}
}

// TestGuardRetriesTransient: injected bus errors and timeouts must be
// retried away — the forces still match a fault-free device bitwise,
// and the retry counter records the activity.
func TestGuardRetriesTransient(t *testing.T) {
	r := rng.New(12)
	cleanSys := newGuardSystem(t, DefaultConfig(), 0.05)
	faultCfg := DefaultConfig()
	faultCfg.Fault = &FaultModel{Seed: 5, BusErrorRate: 0.15, TransientRate: 0.15}
	faultSys := newGuardSystem(t, faultCfg, 0.05)

	clean := NewGuardedEngine(cleanSys, 1, fastPolicy())
	pol := fastPolicy()
	pol.MaxRetries = 8 // deep enough that no batch exhausts at these rates
	guard := NewGuardedEngine(faultSys, 1, pol)

	for k := 0; k < 20; k++ {
		q1 := randomRequest(r, 20, 200)
		q2 := cloneRequest(q1)
		clean.Accumulate(q1)
		guard.Accumulate(q2)
		for i := range q1.Acc {
			if q1.Acc[i] != q2.Acc[i] {
				t.Fatalf("batch %d i=%d: retried forces differ", k, i)
			}
		}
	}
	rec := guard.Recovery()
	if rec.Retries == 0 {
		t.Error("no retries recorded at 30% transient rate")
	}
	if rec.FallbackBatches != 0 || rec.HostOnly {
		t.Errorf("transient faults escalated to fallback: %v", rec)
	}
	fs := faultSys.FaultStats()
	if fs.BusErrors+fs.Transients != rec.Retries {
		t.Errorf("injected %d+%d transient faults, guard retried %d",
			fs.BusErrors, fs.Transients, rec.Retries)
	}
}

// TestGuardExcludesDeadBoard: a board whose pipeline sticks mid-run
// must be diagnosed by bisection and taken out of service; the run
// continues on the surviving board with accurate forces.
func TestGuardExcludesDeadBoard(t *testing.T) {
	r := rng.New(13)
	cfg := DefaultConfig()
	cfg.Fault = &FaultModel{Seed: 7, FailBoard: 2, FailAfterRuns: 2, FailSlot: 5}
	sys := newGuardSystem(t, cfg, 0.05)
	guard := NewGuardedEngine(sys, 1, fastPolicy())
	host := &core.HostEngine{G: 1, Eps: 0.05}

	for k := 0; k < 8; k++ {
		q := randomRequest(r, 20, 200)
		ref := cloneRequest(q)
		guard.Accumulate(q)
		host.Accumulate(ref)
		for i := range q.Acc {
			rel := q.Acc[i].Sub(ref.Acc[i]).Norm() / ref.Acc[i].Norm()
			if rel > 0.02 {
				t.Fatalf("batch %d i=%d: force error %.3f%% after board failure", k, i, rel*100)
			}
		}
	}
	rec := guard.Recovery()
	if rec.ExcludedBoards != 1 {
		t.Errorf("excluded boards = %d, want 1", rec.ExcludedBoards)
	}
	if sys.ActiveBoards() != 1 {
		t.Errorf("active boards = %d, want 1", sys.ActiveBoards())
	}
	if !sys.BoardExcluded(1) || sys.BoardExcluded(0) {
		t.Error("wrong board excluded")
	}
	if rec.FallbackBatches != 0 || rec.HostOnly {
		t.Errorf("single-board failure forced host fallback: %v", rec)
	}
	if rec.CorruptResults == 0 {
		t.Error("no corrupt results recorded for a stuck pipeline")
	}
}

// TestBoardExclusionSlowsModel: after excluding one of two boards the
// timing model must charge ~2x the pipeline time for the same batch —
// the degraded-throughput scaling of TestMorePipesFasterModel.
func TestBoardExclusionSlowsModel(t *testing.T) {
	sys := newGuardSystem(t, DefaultConfig(), 0)
	sys.ChargeOnly(960, 10000)
	t2 := sys.Counters().PipeSeconds
	if err := sys.SetBoardExcluded(0, true); err != nil {
		t.Fatal(err)
	}
	sys.ResetCounters()
	sys.ChargeOnly(960, 10000)
	t1 := sys.Counters().PipeSeconds
	if ratio := t1 / t2; ratio < 1.8 || ratio > 2.2 {
		t.Errorf("excluded-board pipe time ratio = %v, want ~2", ratio)
	}
	// Bounds checking and re-inclusion.
	if err := sys.SetBoardExcluded(2, true); err == nil {
		t.Error("out-of-range board accepted")
	}
	if err := sys.SetBoardExcluded(0, false); err != nil {
		t.Fatal(err)
	}
	if sys.ActiveBoards() != 2 {
		t.Errorf("active = %d after re-inclusion", sys.ActiveBoards())
	}
}

// TestGuardHostFallbackBitwise: with every board dead the guard must
// abandon the hardware and complete on the host engine — with forces
// bitwise identical to core.HostEngine, the acceptance bar for a
// fully-degraded run.
func TestGuardHostFallbackBitwise(t *testing.T) {
	r := rng.New(14)
	cfg := DefaultConfig()
	cfg.Boards = 1
	cfg.Fault = &FaultModel{Seed: 9, FailBoard: 1} // stuck from the first call
	sys := newGuardSystem(t, cfg, 0.05)
	pol := fastPolicy()
	pol.MaxRetries = 1
	pol.FallbackAfter = 2
	guard := NewGuardedEngine(sys, 2, pol)
	host := &core.HostEngine{G: 2, Eps: 0.05}

	for k := 0; k < 5; k++ {
		q := randomRequest(r, 10, 100)
		ref := cloneRequest(q)
		guard.Accumulate(q)
		host.Accumulate(ref)
		for i := range q.Acc {
			if q.Acc[i] != ref.Acc[i] || q.Pot[i] != ref.Pot[i] {
				t.Fatalf("batch %d i=%d: fallback not bitwise identical to host", k, i)
			}
		}
	}
	rec := guard.Recovery()
	if !rec.HostOnly {
		t.Errorf("hardware not abandoned: %v", rec)
	}
	if rec.FallbackBatches != 5 {
		t.Errorf("fallback batches = %d, want 5", rec.FallbackBatches)
	}
	if rec.ExcludedBoards != 1 || sys.ActiveBoards() != 0 {
		t.Errorf("boards not all excluded: %v, active=%d", rec, sys.ActiveBoards())
	}
}

// TestFaultDeterminism: a fixed fault seed must reproduce the run
// exactly — same forces, same errors, same activity counters.
func TestFaultDeterminism(t *testing.T) {
	run := func() ([]vec.V3, []error, FaultStats) {
		cfg := DefaultConfig()
		cfg.Fault = &FaultModel{Seed: 21, JMemBitFlipRate: 0.3, StuckPipeRate: 0.3,
			BusErrorRate: 0.1, TransientRate: 0.1}
		sys := newGuardSystem(t, cfg, 0.05)
		r := rng.New(15)
		var forces []vec.V3
		var errs []error
		for k := 0; k < 15; k++ {
			q := randomRequest(r, 8, 50)
			jpos, jm := aosSources(q)
			err := sys.Compute(q.IPos, jpos, jm, q.Acc, q.Pot)
			errs = append(errs, err)
			forces = append(forces, q.Acc...)
		}
		return forces, errs, sys.FaultStats()
	}
	f1, e1, s1 := run()
	f2, e2, s2 := run()
	if s1 != s2 {
		t.Fatalf("fault stats differ: %+v vs %+v", s1, s2)
	}
	if s1.JMemBitFlips == 0 || s1.StuckPipeCalls == 0 || s1.BusErrors+s1.Transients == 0 {
		t.Errorf("expected every fault class to fire: %+v", s1)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("forces differ at %d under the same seed", i)
		}
	}
	for i := range e1 {
		if (e1[i] == nil) != (e2[i] == nil) {
			t.Fatalf("error sequence differs at call %d", i)
		}
		if e1[i] != nil && !IsTransient(e1[i]) {
			t.Errorf("injected failure not transient: %v", e1[i])
		}
	}
}

// TestFaultSilentCorruption: bit flips and stuck pipes must corrupt
// forces silently (no error) — the failure mode the guard exists for.
func TestFaultSilentCorruption(t *testing.T) {
	r := rng.New(16)
	q := randomRequest(r, 96, 50)
	jpos, jm := aosSources(q)
	clean := newGuardSystem(t, DefaultConfig(), 0.05)
	if err := clean.Compute(q.IPos, jpos, jm, q.Acc, q.Pot); err != nil {
		t.Fatal(err)
	}
	for _, fm := range []FaultModel{
		{Seed: 3, JMemBitFlipRate: 1},
		{Seed: 3, StuckPipeRate: 1},
	} {
		cfg := DefaultConfig()
		f := fm
		cfg.Fault = &f
		sys := newGuardSystem(t, cfg, 0.05)
		qq := cloneRequest(q)
		if err := sys.Compute(qq.IPos, jpos, jm, qq.Acc, qq.Pot); err != nil {
			t.Fatalf("%+v: silent fault returned error %v", fm, err)
		}
		same := true
		for i := range qq.Acc {
			if qq.Acc[i] != q.Acc[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%+v: forces unchanged — fault not injected", fm)
		}
		for i := range qq.Acc {
			if !qq.Acc[i].IsFinite() {
				t.Fatalf("%+v: corrupted force non-finite at %d", fm, i)
			}
		}
	}
}

// TestGuardConcurrent: concurrent Accumulate calls through a guarded,
// fault-injecting engine must be race-free and keep coherent counters
// (exercised under -race in CI).
func TestGuardConcurrent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fault = &FaultModel{Seed: 31, TransientRate: 0.2}
	sys := newGuardSystem(t, cfg, 0.05)
	pol := fastPolicy()
	pol.MaxRetries = 10
	guard := NewGuardedEngine(sys, 1, pol)

	const calls = 32
	var wg sync.WaitGroup
	for k := 0; k < calls; k++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			q := randomRequest(rng.New(seed), 4, 40)
			guard.Accumulate(q)
		}(uint64(100 + k))
	}
	wg.Wait()
	rec := guard.Recovery()
	if rec.Checks < calls {
		t.Errorf("checks = %d, want >= %d", rec.Checks, calls)
	}
	if rec.FallbackBatches != 0 {
		t.Errorf("unexpected fallback under transient-only faults: %v", rec)
	}
}

// TestConfigValidatesFaultModel: bad fault configurations must be
// rejected at NewSystem time.
func TestConfigValidatesFaultModel(t *testing.T) {
	for _, fm := range []FaultModel{
		{JMemBitFlipRate: -0.1},
		{StuckPipeRate: 1.5},
		{BusErrorRate: 2},
		{FailBoard: 3}, // only 2 boards
		{FailBoard: -1},
		{FailBoard: 1, FailAfterRuns: -1},
		{FailBoard: 1, FailSlot: -2},
	} {
		cfg := DefaultConfig()
		f := fm
		cfg.Fault = &f
		if _, err := NewSystem(cfg); err == nil {
			t.Errorf("invalid fault model accepted: %+v", fm)
		}
	}
	cfg := DefaultConfig()
	cfg.Fault = &FaultModel{} // inert model is fine
	if _, err := NewSystem(cfg); err != nil {
		t.Errorf("inert fault model rejected: %v", err)
	}
}
