package g5

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/vec"
)

// TestJMemChunkingPreservesForces: forcing multi-pass j processing
// (tiny particle memory) must not change the computed forces, only the
// pass accounting.
func TestJMemChunkingPreservesForces(t *testing.T) {
	big := DefaultConfig()
	small := DefaultConfig()
	small.JMemPerBoard = 16 // 32 total; nj below is 100 -> 4 passes

	r := rng.New(77)
	ipos := make([]vec.V3, 10)
	jpos := make([]vec.V3, 100)
	jm := make([]float64, 100)
	for i := range ipos {
		ipos[i] = vec.V3{X: r.Uniform(-40, 40), Y: r.Uniform(-40, 40), Z: r.Uniform(-40, 40)}
	}
	for j := range jpos {
		jpos[j] = vec.V3{X: r.Uniform(-40, 40), Y: r.Uniform(-40, 40), Z: r.Uniform(-40, 40)}
		jm[j] = 1 + r.Float64()
	}

	run := func(cfg Config) ([]vec.V3, Counters) {
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.SetScale(-100, 100); err != nil {
			t.Fatal(err)
		}
		acc := make([]vec.V3, len(ipos))
		pot := make([]float64, len(ipos))
		if err := sys.Compute(ipos, jpos, jm, acc, pot); err != nil {
			t.Fatal(err)
		}
		return acc, sys.Counters()
	}
	accBig, cBig := run(big)
	accSmall, cSmall := run(small)
	for i := range accBig {
		if accBig[i] != accSmall[i] {
			t.Fatalf("chunked forces differ at %d: %v vs %v", i, accBig[i], accSmall[i])
		}
	}
	if cBig.JPasses != 1 {
		t.Errorf("big memory passes = %d", cBig.JPasses)
	}
	if cSmall.JPasses != 4 {
		t.Errorf("small memory passes = %d, want 4", cSmall.JPasses)
	}
	// Pipeline time is pass-count invariant (the same j cycles stream
	// either way); it must never come out cheaper.
	if cSmall.PipeSeconds < cBig.PipeSeconds {
		t.Error("multi-pass processing came out faster than single-pass")
	}
}

// TestEnginePanicsOnHardwareFault: a strict-range system fed an
// out-of-range position must surface as a panic through the engine
// (driver-bug semantics), not silent corruption — and the panic value
// must be the typed *HardwareError so recovery code can distinguish
// driver bugs from injected faults without string matching.
func TestEnginePanicsOnHardwareFault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StrictRange = true
	sys, _ := NewSystem(cfg)
	if err := sys.SetScale(-1, 1); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(sys, 1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic on hardware fault")
		}
		hw, ok := r.(*HardwareError)
		if !ok {
			t.Fatalf("panic value %T, want *HardwareError", r)
		}
		if hw.Transient {
			t.Errorf("driver bug marked transient: %v", hw)
		}
	}()
	req := core.Request{
		IPos: []vec.V3{{X: 99}},
		Acc:  make([]vec.V3, 1),
		Pot:  make([]float64, 1),
	}
	req.J.Append(0, 0, 0, 1)
	e.Accumulate(&req)
}

// TestMorePipesFasterModel: doubling the board count must halve the
// pipeline time for a big batch (timing-model sanity).
func TestMorePipesFasterModel(t *testing.T) {
	one := DefaultConfig()
	one.Boards = 1
	two := DefaultConfig()

	t1 := modelTime(t, one, 960, 10000)
	t2 := modelTime(t, two, 960, 10000)
	ratio := t1 / t2
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("1-board/2-board pipe time ratio = %v, want ~2", ratio)
	}
}

func modelTime(t *testing.T, cfg Config, ni, nj int) float64 {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetScale(-1, 1); err != nil {
		t.Fatal(err)
	}
	sys.ChargeOnly(ni, nj)
	return sys.Counters().PipeSeconds
}

// TestPaddingWaste: an i-batch of 1 occupies a full virtual-pipeline
// group — the hardware inefficiency that favours large n_g groups.
func TestPaddingWaste(t *testing.T) {
	cfg := DefaultConfig()
	t1 := modelTime(t, cfg, 1, 10000)
	t96 := modelTime(t, cfg, 96, 10000)
	if t1 != t96 {
		t.Errorf("1 i-particle (%v s) should cost the same pipe time as 96 (%v s)", t1, t96)
	}
	t97 := modelTime(t, cfg, 97, 10000)
	if t97 <= t96 {
		t.Error("97 i-particles must start a second pass")
	}
}

// TestChargeOnlyIgnoresEmpty covers the guard.
func TestChargeOnlyIgnoresEmpty(t *testing.T) {
	sys, _ := NewSystem(DefaultConfig())
	sys.ChargeOnly(0, 100)
	sys.ChargeOnly(100, 0)
	sys.ChargeOnly(-1, -1)
	if c := sys.Counters(); c.Runs != 0 {
		t.Errorf("empty charges recorded: %+v", c)
	}
}
