package g5

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hostk"
	"repro/internal/obs"
	"repro/internal/vec"
)

// GuardPolicy tunes the fault-tolerant offload path. The zero value of
// any field selects its default.
type GuardPolicy struct {
	// MaxRetries bounds how many times one batch is re-run after a
	// transient failure or a corrupt result before the guard
	// escalates to board bisection (default 3).
	MaxRetries int
	// BackoffBase and BackoffMax shape the capped exponential backoff
	// slept between retries (defaults 1ms and 16ms).
	BackoffBase, BackoffMax time.Duration
	// Tolerance is the relative error allowed between the hardware's
	// probe-particle force and the host reference. It must sit above
	// the pipeline's ~0.3 % arithmetic error with margin, and below
	// 1/Boards (a stuck pipeline drops one board's 1/Boards force
	// share); default 0.05, fine for the paper's 2-board system.
	Tolerance float64
	// FallbackAfter is the number of consecutive batches lost to the
	// host fallback after which the guard stops offering work to the
	// hardware at all (default 3).
	FallbackAfter int
}

func (p GuardPolicy) withDefaults() GuardPolicy {
	if p.MaxRetries == 0 {
		p.MaxRetries = 3
	}
	if p.BackoffBase == 0 {
		p.BackoffBase = time.Millisecond
	}
	if p.BackoffMax == 0 {
		p.BackoffMax = 16 * time.Millisecond
	}
	if p.Tolerance == 0 {
		p.Tolerance = 0.05
	}
	if p.FallbackAfter == 0 {
		p.FallbackAfter = 3
	}
	return p
}

// Recovery counts the guard's fault-handling activity over the life of
// a GuardedEngine.
type Recovery struct {
	// Checks is the number of acceptance checks run (one per hardware
	// attempt that produced a result).
	Checks int64 `json:"checks"`
	// Retries is the number of transient-failure retries.
	Retries int64 `json:"retries"`
	// CorruptResults is the number of hardware results rejected by the
	// acceptance check.
	CorruptResults int64 `json:"corrupt_results"`
	// ExcludedBoards is the number of boards diagnosed bad and taken
	// out of service (including a final abandon-all).
	ExcludedBoards int64 `json:"excluded_boards"`
	// FallbackBatches is the number of batches computed by the host
	// fallback engine.
	FallbackBatches int64 `json:"fallback_batches"`
	// HostOnly reports that the hardware has been abandoned entirely:
	// every subsequent batch goes straight to the host engine.
	HostOnly bool `json:"host_only"`
}

// String formats the counters for run reports.
func (r Recovery) String() string {
	return fmt.Sprintf("checks=%d retries=%d corrupt=%d excluded=%d fallback=%d hostOnly=%v",
		r.Checks, r.Retries, r.CorruptResults, r.ExcludedBoards, r.FallbackBatches, r.HostOnly)
}

// GuardedEngine is the fault-tolerant counterpart of Engine: a
// core.Engine that drives the emulated GRAPE-5 the way a production
// host drives real flaky boards.
//
// Before accepting any batch it verifies the hardware against the host:
// one probe particle is replicated across every virtual-pipeline slot
// of the i-stream (one extra i-group — the timing model charges the
// same pass the real padding would cost) and each slot's force is
// compared with a float64 host reference computed from the same j-list
// — the per-run hardware sanity check of the GRAPE system papers.
// Transient failures (bus errors, timeouts) are retried with capped
// backoff. Persistent corruption triggers board bisection: boards are
// excluded one at a time until the check passes, and a board that
// tests bad stays out of service, with remaining passes re-planned on
// the survivors (throughput degrades per the timing model). When no
// working configuration remains, batches fall back to core.HostEngine
// — the run completes correct-but-slow instead of dying.
type GuardedEngine struct {
	// G is the gravitational constant applied to results.
	G float64

	policy GuardPolicy

	mu             sync.Mutex
	sys            *System
	host           core.HostEngine
	rec            Recovery
	obs            *obs.Observer
	consecFallback int

	// scratch (guarded by mu)
	ipos []vec.V3
	jpos []vec.V3
	acc  []vec.V3
	pot  []float64
}

var _ core.Engine = (*GuardedEngine)(nil)

// NewGuardedEngine wraps sys in the fault-tolerant offload path. G=0
// is replaced by 1. The zero GuardPolicy selects defaults.
func NewGuardedEngine(sys *System, g float64, policy GuardPolicy) *GuardedEngine {
	if g == 0 {
		g = 1
	}
	return &GuardedEngine{G: g, policy: policy.withDefaults(), sys: sys}
}

// System returns the wrapped hardware (for counter access). Callers
// must not run Compute on it directly while the engine is in use.
func (e *GuardedEngine) System() *System { return e.sys }

// Policy returns the active (defaulted) policy.
func (e *GuardedEngine) Policy() GuardPolicy { return e.policy }

// SetObserver attaches a telemetry observer: guard overhead (probe
// references, acceptance checks, backoff, bisection re-runs) is
// recorded as the guard phase, and every retry, rejected result, board
// exclusion and host-fallback batch bumps a recovery counter.
func (e *GuardedEngine) SetObserver(o *obs.Observer) {
	e.mu.Lock()
	e.obs = o
	e.mu.Unlock()
}

// Recovery returns a snapshot of the fault-handling counters.
func (e *GuardedEngine) Recovery() Recovery {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rec
}

// Accumulate implements core.Engine.
func (e *GuardedEngine) Accumulate(req *core.Request) {
	ni := len(req.IPos)
	if ni == 0 || req.J.N == 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.rec.HostOnly {
		e.fallback(req)
		return
	}
	//lint:ignore lockdiscipline the engine mutex serializes batches by contract: retry, backoff and bisection state must stay coherent across a recovery episode, and stalling the job's own walk workers during hardware recovery is intended backpressure
	if e.tryHardware(req) {
		e.consecFallback = 0
		return
	}
	e.fallback(req)
	e.consecFallback++
	if e.consecFallback >= e.policy.FallbackAfter {
		e.abandonHardware()
	}
}

// fallback computes the batch on the host reference engine — the exact
// arithmetic of core.HostEngine, so a fully-degraded run is bitwise
// identical to an EngineHost run.
func (e *GuardedEngine) fallback(req *core.Request) {
	e.host.G = e.G
	e.host.Eps = e.sys.Eps()
	e.host.Accumulate(req)
	e.rec.FallbackBatches++
	e.obs.Add(obs.CntFallbacks, 1)
}

// abandonHardware takes every remaining board out of service and routes
// all future batches to the host.
func (e *GuardedEngine) abandonHardware() {
	for b := 0; b < e.sys.Config().Boards; b++ {
		if !e.sys.BoardExcluded(b) {
			// b ranges over Config().Boards, so the only SetBoardExcluded
			// failure (index out of range) cannot occur.
			_ = e.sys.SetBoardExcluded(b, true)
			e.rec.ExcludedBoards++
			e.obs.Add(obs.CntRecoveries, 1)
		}
	}
	e.rec.HostOnly = true
}

// tryHardware runs the batch through the verified hardware path,
// escalating from retries to board bisection. It reports whether the
// batch was accepted (results committed into req).
func (e *GuardedEngine) tryHardware(req *core.Request) bool {
	if e.sys.ActiveBoards() == 0 {
		return false
	}
	if e.computeVerified(req) {
		return true
	}
	// Persistent failure. Bisect: try excluding each active board in
	// turn; the first configuration that verifies wins and the
	// excluded board stays out of service for good.
	if e.sys.ActiveBoards() > 1 {
		for b := 0; b < e.sys.Config().Boards; b++ {
			if e.sys.BoardExcluded(b) {
				continue
			}
			// b ranges over Config().Boards, so the only SetBoardExcluded
			// failure (index out of range) cannot occur.
			_ = e.sys.SetBoardExcluded(b, true)
			if e.computeVerified(req) {
				e.rec.ExcludedBoards++
				e.obs.Add(obs.CntRecoveries, 1)
				return true
			}
			_ = e.sys.SetBoardExcluded(b, false)
		}
	}
	return false
}

// computeVerified runs one batch with the acceptance check, retrying
// transient failures and corrupt results up to the policy bound. On
// success the (G-scaled) results are committed into req.
func (e *GuardedEngine) computeVerified(req *core.Request) bool {
	ni := len(req.IPos)
	vp := e.sys.Config().VirtualPipesPerBoard()
	tg := e.obs.Start(obs.PhaseGuard)
	probe := e.probePoint()
	refAcc, refPot := e.hostProbeForce(probe, req)

	n := ni + vp
	if cap(e.ipos) < n {
		e.ipos = make([]vec.V3, n)
		e.acc = make([]vec.V3, n)
		e.pot = make([]float64, n)
	}
	ipos := e.ipos[:n]
	copy(ipos, req.IPos)
	for s := 0; s < vp; s++ {
		ipos[ni+s] = probe
	}

	// Gather the SoA source list into the hardware's AoS layout once,
	// outside the retry loop: re-runs and bisection passes reuse it.
	nj := req.J.N
	if cap(e.jpos) < nj {
		e.jpos = make([]vec.V3, nj)
	}
	jpos := e.jpos[:nj]
	for j := 0; j < nj; j++ {
		jpos[j] = vec.V3{X: req.J.X[j], Y: req.J.Y[j], Z: req.J.Z[j]}
	}
	jmass := req.J.M[:nj]
	tg.Stop()

	for attempt := 0; attempt <= e.policy.MaxRetries; attempt++ {
		// The first attempt's Compute is the batch's real work; every
		// re-run after a fault is recovery overhead.
		var retry obs.Timer
		if attempt > 0 {
			retry = e.obs.Start(obs.PhaseGuard)
			e.backoff(attempt)
		}
		acc := e.acc[:n]
		pot := e.pot[:n]
		for i := range acc {
			acc[i] = vec.Zero
			pot[i] = 0
		}
		err := e.sys.Compute(ipos, jpos, jmass, acc, pot)
		retry.Stop()
		if err != nil {
			if IsTransient(err) {
				e.rec.Retries++
				e.obs.Add(obs.CntRecoveries, 1)
				continue
			}
			var hw *HardwareError
			if !errors.As(err, &hw) {
				hw = &HardwareError{Op: "compute", Err: err}
			}
			// Non-transient errors with boards still active are host
			// programming bugs (scale, ranges), same contract as
			// Engine; all-excluded is handled by the caller.
			if e.sys.ActiveBoards() == 0 {
				return false
			}
			panic(hw)
		}
		e.rec.Checks++
		tv := e.obs.Start(obs.PhaseGuard)
		ok := e.verifyProbe(acc[ni:], pot[ni:], refAcc, refPot)
		tv.Stop()
		if ok {
			for i := 0; i < ni; i++ {
				req.Acc[i] = req.Acc[i].MulAdd(e.G, acc[i])
				req.Pot[i] += e.G * pot[i]
			}
			return true
		}
		e.rec.CorruptResults++
		e.obs.Add(obs.CntRecoveries, 1)
	}
	return false
}

// probePoint returns the acceptance-check position: a fixed, off-lattice
// fraction of the current scale window (deterministic, never on a grid
// point or range edge, and extremely unlikely to coincide with a real
// particle).
func (e *GuardedEngine) probePoint() vec.V3 {
	lo, hi, ok := e.sys.ScaleRange()
	if !ok {
		return vec.Zero // Compute will fail with the proper error
	}
	const phi = 0.38196601125010515 // 2 - golden ratio
	p := lo + phi*(hi-lo)
	return vec.V3{X: p, Y: p, Z: p}
}

// hostProbeForce computes the float64 reference force and potential on
// the probe from the batch's own j-list — O(nj), the price of one
// extra i-particle. It consumes the request's SoA list directly through
// the shared hostk tile kernel (G=1 units, matching the hardware).
func (e *GuardedEngine) hostProbeForce(probe vec.V3, req *core.Request) (vec.V3, float64) {
	eps := e.sys.Eps()
	ax, ay, az, pot := hostk.P2P(probe.X, probe.Y, probe.Z, &req.J, eps*eps)
	return vec.V3{X: ax, Y: ay, Z: az}, pot
}

// verifyProbe checks every virtual-pipeline slot's probe force against
// the host reference. The potential is the primary quantity — all its
// terms share a sign, so it cannot cancel to zero — while the
// acceleration check uses the potential's magnitude over the scale
// window as an absolute floor against pathological cancellation of the
// true force at the probe point.
func (e *GuardedEngine) verifyProbe(acc []vec.V3, pot []float64, refAcc vec.V3, refPot float64) bool {
	tol := e.policy.Tolerance
	lo, hi, _ := e.sys.ScaleRange()
	floor := 0.0
	if hi > lo {
		floor = math.Abs(refPot) / (hi - lo)
	}
	for s := range acc {
		if math.Abs(pot[s]-refPot) > tol*math.Abs(refPot) {
			return false
		}
		if acc[s].Sub(refAcc).Norm() > tol*(refAcc.Norm()+floor) {
			return false
		}
	}
	return true
}

// backoff sleeps the capped exponential delay for the given attempt.
func (e *GuardedEngine) backoff(attempt int) {
	d := e.policy.BackoffBase << (attempt - 1)
	if d > e.policy.BackoffMax {
		d = e.policy.BackoffMax
	}
	if d > 0 {
		time.Sleep(d)
	}
}
