package g5

import (
	"fmt"

	"repro/internal/vec"
)

// Driver exposes the emulated hardware through the call sequence of the
// real GRAPE-5 host library (g5_open / g5_set_range / g5_set_xmj /
// g5_calculate_force_on_x / g5_close): the j-particles persist in the
// board particle memory across force calls, so their upload cost is
// paid once — the usage pattern of direct-summation codes, and the
// reason the library distinguishes "set" from "calculate".
//
// A Driver owns its System; do not use the System concurrently.
type Driver struct {
	sys  *System
	jx   []vec.V3
	jm   []float64
	open bool
}

// Open powers up a hardware instance (g5_open).
func Open(cfg Config) (*Driver, error) {
	sys, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	return &Driver{sys: sys, open: true}, nil
}

// Close releases the hardware (g5_close). Closing an already-closed
// driver is a no-op; any other device call after Close fails. The
// error return mirrors the real host library, where releasing the PCI
// interface can fail — the emulation has nothing to release, so the
// error is always nil today, but callers must already handle it.
func (d *Driver) Close() error {
	d.open = false
	d.jx, d.jm = nil, nil
	return nil
}

// System exposes the underlying emulated hardware (counters, config).
func (d *Driver) System() *System { return d.sys }

// NumberOfPipelines mirrors g5_get_number_of_pipelines: the i-batch
// granularity the caller should use for peak efficiency (virtual
// pipelines of one board).
func (d *Driver) NumberOfPipelines() int {
	return d.sys.Config().VirtualPipesPerBoard()
}

// JMemorySize returns the total particle-memory capacity.
func (d *Driver) JMemorySize() int {
	return d.sys.Config().JMemPerBoard * d.sys.Config().Boards
}

// SetRange mirrors g5_set_range: fixes the fixed-point coordinate
// window.
func (d *Driver) SetRange(xmin, xmax float64) error {
	if !d.open {
		return fmt.Errorf("g5: driver closed")
	}
	return d.sys.SetScale(xmin, xmax)
}

// SetEpsToAll mirrors g5_set_eps_to_all. NaN, negative and infinite
// softening are rejected.
func (d *Driver) SetEpsToAll(eps float64) error {
	if !d.open {
		return fmt.Errorf("g5: driver closed")
	}
	return d.sys.SetEps(eps)
}

// SetXMJ mirrors g5_set_xmj: writes n j-particles starting at memory
// address adr. Fails when the write exceeds the particle memory — the
// capacity error real hosts must chunk around.
func (d *Driver) SetXMJ(adr int, x []vec.V3, m []float64) error {
	if !d.open {
		return fmt.Errorf("g5: driver closed")
	}
	if len(x) != len(m) {
		return fmt.Errorf("g5: SetXMJ length mismatch %d vs %d", len(x), len(m))
	}
	if adr < 0 || adr+len(x) > d.JMemorySize() {
		return fmt.Errorf("g5: SetXMJ [%d, %d) exceeds particle memory %d",
			adr, adr+len(x), d.JMemorySize())
	}
	if need := adr + len(x); need > len(d.jx) {
		d.jx = append(d.jx, make([]vec.V3, need-len(d.jx))...)
		d.jm = append(d.jm, make([]float64, need-len(d.jm))...)
	}
	copy(d.jx[adr:], x)
	copy(d.jm[adr:], m)
	d.sys.chargeJBytes(len(x))
	return nil
}

// NJ returns the number of loaded j-particles.
func (d *Driver) NJ() int { return len(d.jx) }

// CalculateForceOnX mirrors g5_calculate_force_on_x: computes the
// forces from the loaded j-set on the given field points, ADDING into
// acc and pot. The j upload is not re-charged (the data already sits in
// the particle memory).
func (d *Driver) CalculateForceOnX(x []vec.V3, acc []vec.V3, pot []float64) error {
	if !d.open {
		return fmt.Errorf("g5: driver closed")
	}
	if len(d.jx) == 0 {
		return fmt.Errorf("g5: no j-particles loaded")
	}
	return d.sys.compute(x, d.jx, d.jm, acc, pot, false)
}
