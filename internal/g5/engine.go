package g5

import (
	"errors"
	"sync"

	"repro/internal/core"
	"repro/internal/vec"
)

// Engine adapts a System to the treecode's core.Engine interface. It
// serialises access (one physical device on one bus) and applies the
// gravitational constant on readback, matching the real GRAPE host
// library where the hardware computes in G=1 units.
type Engine struct {
	// G is the gravitational constant applied to hardware results.
	G float64

	mu   sync.Mutex
	sys  *System
	pool sync.Pool // *scratch staging buffers
}

type scratch struct {
	jpos []vec.V3
	acc  []vec.V3
	pot  []float64
}

var _ core.Engine = (*Engine)(nil)

// NewEngine wraps sys. G=0 is replaced by 1.
func NewEngine(sys *System, g float64) *Engine {
	if g == 0 {
		g = 1
	}
	e := &Engine{G: g, sys: sys}
	e.pool.New = func() any { return new(scratch) }
	return e
}

// System returns the wrapped hardware (for counter access). Callers
// must not run Compute on it directly while the engine is in use.
func (e *Engine) System() *System { return e.sys }

// Accumulate implements core.Engine by dispatching the request to the
// hardware. Hardware errors panic with a *HardwareError: by the time
// requests are flowing the host code has already validated scale and
// ranges, so an error here is a programming bug, like a wedged device
// driver. Callers that must survive flaky hardware use GuardedEngine
// instead, which retries, degrades and falls back rather than dying.
func (e *Engine) Accumulate(req *core.Request) {
	ni := len(req.IPos)
	sc := e.pool.Get().(*scratch)
	if cap(sc.acc) < ni {
		sc.acc = make([]vec.V3, ni)
		sc.pot = make([]float64, ni)
	}
	acc := sc.acc[:ni]
	pot := sc.pot[:ni]
	for i := range acc {
		acc[i] = vec.Zero
		pot[i] = 0
	}

	// Gather the SoA source list into the AoS layout the hardware DMA
	// descriptors use; only the J.N real lanes are marshalled (padding
	// stays on the host). The mass lanes alias the request directly.
	nj := req.J.N
	if cap(sc.jpos) < nj {
		sc.jpos = make([]vec.V3, nj)
	}
	jpos := sc.jpos[:nj]
	for j := 0; j < nj; j++ {
		jpos[j] = vec.V3{X: req.J.X[j], Y: req.J.Y[j], Z: req.J.Z[j]}
	}

	e.mu.Lock()
	err := e.sys.Compute(req.IPos, jpos, req.J.M[:nj], acc, pot)
	e.mu.Unlock()
	if err != nil {
		var hw *HardwareError
		if !errors.As(err, &hw) {
			hw = &HardwareError{Op: "compute", Err: err}
		}
		panic(hw)
	}

	for i := range acc {
		req.Acc[i] = req.Acc[i].MulAdd(e.G, acc[i])
		req.Pot[i] += e.G * pot[i]
	}
	e.pool.Put(sc)
}
