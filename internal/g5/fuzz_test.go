package g5

import (
	"math"
	"testing"
)

// FuzzRoundMantissa: the number-format invariants must hold for any
// input — idempotence, sign preservation, and the half-ulp relative
// bound for normal floats.
func FuzzRoundMantissa(f *testing.F) {
	f.Add(1.0, uint8(7))
	f.Add(-3.14159, uint8(2))
	f.Add(1e-300, uint8(10))
	f.Add(1e300, uint8(1))
	f.Add(0.0, uint8(7))
	f.Fuzz(func(t *testing.T, x float64, bitsRaw uint8) {
		bits := uint(1 + bitsRaw%52)
		y := RoundMantissa(x, bits)
		if math.IsNaN(x) {
			if !math.IsNaN(y) {
				t.Fatalf("NaN -> %v", y)
			}
			return
		}
		if RoundMantissa(y, bits) != y {
			t.Fatalf("not idempotent: %v -> %v -> %v", x, y, RoundMantissa(y, bits))
		}
		if x != 0 && y != 0 && math.Signbit(x) != math.Signbit(y) {
			t.Fatalf("sign flipped: %v -> %v", x, y)
		}
		if x != 0 && !math.IsInf(x, 0) && math.Abs(x) < 1e300 && math.Abs(x) > 1e-300 && !math.IsInf(y, 0) {
			rel := math.Abs(y-x) / math.Abs(x)
			if rel > math.Exp2(-float64(bits))/2*(1+1e-12) {
				t.Fatalf("relative error %v exceeds half-ulp at %d bits for %v", rel, bits, x)
			}
		}
	})
}

// FuzzFixedGrid: quantisation must stay inside the range and within
// half a step for in-range inputs.
func FuzzFixedGrid(f *testing.F) {
	f.Add(0.5, uint8(8))
	f.Add(-123.0, uint8(16))
	f.Add(math.Pi, uint8(32))
	f.Fuzz(func(t *testing.T, x float64, bitsRaw uint8) {
		bits := uint(1 + bitsRaw%32)
		g := NewFixedGrid(-100, 100, bits)
		if math.IsNaN(x) {
			return
		}
		v, ok := g.Quantize(x)
		if v < -100 || v > 100 {
			t.Fatalf("quantised value %v escaped the range", v)
		}
		if ok && !math.IsInf(x, 0) {
			if math.Abs(v-x) > g.Step()/2*(1+1e-9) {
				t.Fatalf("in-range error %v exceeds half step %v", math.Abs(v-x), g.Step()/2)
			}
		}
	})
}
