package g5

import (
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/vec"
)

// Counters accumulate the hardware activity of a System. All times are
// simulated hardware seconds, not host wall-clock.
type Counters struct {
	// Interactions is the number of pairwise interactions streamed
	// through the pipelines (including padding-free accounting: only
	// real i×j pairs are counted).
	Interactions int64
	// PipeSeconds is the simulated time the pipelines were busy.
	PipeSeconds float64
	// BusSeconds is the simulated host-interface transfer time.
	BusSeconds float64
	// BytesTransferred is the total traffic over the host interface.
	BytesTransferred int64
	// Runs is the number of Compute calls (hardware activations).
	Runs int64
	// JPasses counts j-memory loads (greater than Runs when a j-set
	// exceeds the particle memory and must be processed in passes).
	JPasses int64
	// RangeClamps counts positions that fell outside the SetScale range
	// and were clamped.
	RangeClamps int64
}

// HWSeconds returns the total simulated hardware time.
func (c Counters) HWSeconds() float64 { return c.PipeSeconds + c.BusSeconds }

// Flops returns the accumulated operation count under the
// ops-per-interaction convention (38 for the paper's accounting).
func (c Counters) Flops(opsPerInteraction int) float64 {
	return float64(c.Interactions) * float64(opsPerInteraction)
}

// System is an emulated GRAPE-5 installation. It is NOT safe for
// concurrent use — it models one physical device on one bus; wrap it in
// an Engine for concurrent callers.
type System struct {
	cfg Config

	// scale state (g5_set_range in the real library)
	haveScale bool
	grid      FixedGrid
	eps       float64
	eps2      float64

	// excluded marks boards the host has taken out of service;
	// nActive is the count still serving (board exclusion is the
	// routine repair operation of the GRAPE cluster papers).
	excluded []bool
	nActive  int

	fault *faultInjector // nil without a fault model

	obs *obs.Observer // nil without telemetry
	cnt Counters

	// compute scratch, reused across calls (a System is single-caller
	// by contract): quantized i/j positions and rounded masses. With
	// these, a steady-state Compute allocates nothing.
	iqScratch, jqScratch []vec.V3
	mqScratch            []float64
}

// NewSystem builds an emulated system. The configuration is validated.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, excluded: make([]bool, cfg.Boards), nActive: cfg.Boards}
	if cfg.Fault != nil && cfg.Fault.enabled() {
		s.fault = newFaultInjector(*cfg.Fault, cfg)
	}
	return s, nil
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// SetObserver attaches a telemetry observer: every charge to the
// timing model is also recorded as simulated-hardware phase spans
// (j/i-particle transfer, pipeline streaming, force readback) plus
// flop and byte counters. A nil observer detaches.
func (s *System) SetObserver(o *obs.Observer) { s.obs = o }

// Counters returns a snapshot of the activity counters.
func (s *System) Counters() Counters { return s.cnt }

// ResetCounters zeroes the activity counters AND the observer-side
// accumulation the system feeds: the simulated hardware phases
// (j/i-particle transfer, pipeline, readback) and the flop/byte
// counters are written only by this System, so resetting one view but
// not the other would let an observer snapshot disagree with
// Counters() — the inconsistency the obs regression test pins down.
// Phases and counters owned by other components (walk, guard,
// recoveries) are left untouched.
func (s *System) ResetCounters() {
	s.cnt = Counters{}
	s.obs.ResetPhase(obs.PhaseJTransfer)
	s.obs.ResetPhase(obs.PhaseITransfer)
	s.obs.ResetPhase(obs.PhasePipeline)
	s.obs.ResetPhase(obs.PhaseReadback)
	s.obs.ResetCounter(obs.CntFlops)
	s.obs.ResetCounter(obs.CntBytes)
}

// SetScale defines the coordinate range mapped onto the pipeline's
// fixed-point format, like g5_set_range. All positions of subsequent
// Compute calls must lie inside [min, max) in every coordinate (or are
// clamped, see Config.StrictRange).
func (s *System) SetScale(min, max float64) error {
	if !(max > min) || math.IsNaN(min) || math.IsInf(max-min, 0) {
		return fmt.Errorf("g5: invalid scale range [%v, %v)", min, max)
	}
	s.grid = NewFixedGrid(min, max, s.cfg.PosBits)
	s.haveScale = true
	return nil
}

// SetEps sets the Plummer softening length used by the pipelines
// (GRAPE-5 applies one global softening per run). Like SetScale, it
// rejects values the hardware register cannot mean: NaN, negative and
// infinite softening all fail, leaving the previous value in place.
func (s *System) SetEps(eps float64) error {
	if math.IsNaN(eps) || eps < 0 || math.IsInf(eps, 0) {
		return fmt.Errorf("g5: invalid softening %v", eps)
	}
	s.eps = eps
	s.eps2 = eps * eps
	return nil
}

// Eps returns the current softening length.
func (s *System) Eps() float64 { return s.eps }

// ScaleRange returns the active fixed-point coordinate window set by
// SetScale, with ok=false before the first SetScale.
func (s *System) ScaleRange() (min, max float64, ok bool) {
	if !s.haveScale {
		return 0, 0, false
	}
	return s.grid.Min, s.grid.Max, true
}

// FaultStats returns the injected-fault activity counters (all zero
// without a fault model).
func (s *System) FaultStats() FaultStats {
	if s.fault == nil {
		return FaultStats{}
	}
	return s.fault.stats
}

// SetBoardExcluded marks board b (0-based) out of or back into
// service. Remaining work is re-planned on the surviving boards: the
// timing model streams j through fewer pipelines and the particle
// memory shrinks accordingly, so throughput degrades the way
// TestMorePipesFasterModel says it must.
func (s *System) SetBoardExcluded(b int, exclude bool) error {
	if b < 0 || b >= s.cfg.Boards {
		return fmt.Errorf("g5: board %d outside [0, %d)", b, s.cfg.Boards)
	}
	if s.excluded[b] != exclude {
		s.excluded[b] = exclude
		if exclude {
			s.nActive--
		} else {
			s.nActive++
		}
	}
	return nil
}

// BoardExcluded reports whether board b is out of service.
func (s *System) BoardExcluded(b int) bool {
	return b >= 0 && b < s.cfg.Boards && s.excluded[b]
}

// ActiveBoards returns the number of boards still in service.
func (s *System) ActiveBoards() int { return s.nActive }

// activeBoardList returns the 0-based indices of in-service boards.
func (s *System) activeBoardList() []int {
	out := make([]int, 0, s.nActive)
	for b, ex := range s.excluded {
		if !ex {
			out = append(out, b)
		}
	}
	return out
}

// Compute runs the hardware on one batch: the accelerations and
// potentials (G=1 units) exerted by sources (jpos, jmass) on field
// points ipos are ADDED into acc and pot. It models the full offload:
// j upload (chunked by particle-memory capacity), i upload, pipeline
// passes, force readback — charging simulated time to the counters —
// and evaluates the forces with the pipeline's reduced precision.
func (s *System) Compute(ipos, jpos []vec.V3, jmass []float64, acc []vec.V3, pot []float64) error {
	return s.compute(ipos, jpos, jmass, acc, pot, true)
}

// compute is Compute with control over j-upload accounting: the Driver
// charges the j transfer once at load time (persistent particle
// memory), not per force call.
func (s *System) compute(ipos, jpos []vec.V3, jmass []float64, acc []vec.V3, pot []float64, chargeJ bool) error {
	if !s.haveScale {
		return fmt.Errorf("g5: Compute before SetScale")
	}
	if len(jpos) != len(jmass) {
		return fmt.Errorf("g5: jpos/jmass length mismatch: %d vs %d", len(jpos), len(jmass))
	}
	if len(acc) != len(ipos) || len(pot) != len(ipos) {
		return fmt.Errorf("g5: output length mismatch")
	}
	ni, nj := len(ipos), len(jpos)
	if ni == 0 || nj == 0 {
		return nil
	}
	if s.nActive == 0 {
		return &HardwareError{Op: "compute",
			Err: fmt.Errorf("all %d boards excluded from service", s.cfg.Boards)}
	}

	// --- Fault injection --------------------------------------------
	plan := faultPlan{flipJ: -1}
	if s.fault != nil {
		plan = s.fault.plan(nj, s.activeBoardList())
		if plan.err != nil {
			return plan.err
		}
	}

	// --- Functional model -------------------------------------------
	iq, err := s.quantizeInto(s.iqScratch, ipos)
	if err != nil {
		return err
	}
	s.iqScratch = iq
	jq, err := s.quantizeInto(s.jqScratch, jpos)
	if err != nil {
		return err
	}
	s.jqScratch = jq
	if cap(s.mqScratch) < nj {
		s.mqScratch = make([]float64, nj)
	}
	mq := s.mqScratch[:nj]
	for j, m := range jmass {
		mq[j] = RoundMantissa(m, s.cfg.MassBits)
	}
	if plan.flipJ >= 0 {
		// A corrupted word read back from the particle memory.
		if plan.flipMass {
			mq[plan.flipJ] = flipMantissaBit(mq[plan.flipJ], plan.flipBit)
		} else {
			p := &jq[plan.flipJ]
			switch plan.flipAxis {
			case 0:
				p.X = flipMantissaBit(p.X, plan.flipBit)
			case 1:
				p.Y = flipMantissaBit(p.Y, plan.flipBit)
			default:
				p.Z = flipMantissaBit(p.Z, plan.flipBit)
			}
		}
	}
	// A stuck virtual pipeline zeroes the owning board's partial force
	// for every i-slot it serves; the host sums per-board partials, so
	// the affected i lose that board's 1/nActive share of j.
	var stuckFactor []float64
	if len(plan.stuck) > 0 {
		vps := s.cfg.VirtualPipesPerBoard()
		stuckFactor = make([]float64, vps)
		for i := range stuckFactor {
			stuckFactor[i] = 1
		}
		share := 1 / float64(s.nActive)
		for _, sp := range plan.stuck {
			stuckFactor[sp.slot] *= 1 - share
		}
	}
	pb := s.cfg.PipeBits
	r2b := s.cfg.R2Bits
	for i := range iq {
		pi := iq[i]
		var ax, ay, az, pp float64
		for j := range jq {
			dx := jq[j].X - pi.X
			dy := jq[j].Y - pi.Y
			dz := jq[j].Z - pi.Z
			r2 := dx*dx + dy*dy + dz*dz
			if r2 == 0 {
				continue // hardware emits zero for coincident points
			}
			r2 = RoundMantissa(r2+s.eps2, r2b)
			//lint:ignore hostk emulated pipeline arithmetic: every product is mantissa-rounded, so the float64 tile kernel cannot express it
			inv := 1 / math.Sqrt(r2)
			m := mq[j]
			fpot := RoundMantissa(m*inv, pb)
			ff := RoundMantissa(m*inv/r2, pb)
			ax += RoundMantissa(ff*dx, pb)
			ay += RoundMantissa(ff*dy, pb)
			az += RoundMantissa(ff*dz, pb)
			pp -= fpot
		}
		if stuckFactor != nil {
			f := stuckFactor[i%len(stuckFactor)]
			ax, ay, az, pp = ax*f, ay*f, az*f, pp*f
		}
		acc[i] = acc[i].Add(vec.V3{X: ax, Y: ay, Z: az})
		pot[i] += pp
	}

	// --- Timing model ------------------------------------------------
	s.chargeOpt(ni, nj, chargeJ)
	return nil
}

// quantizeInto maps positions through the fixed-point grid, writing
// into dst when its capacity suffices (dst is the reused compute
// scratch; callers retain the returned slice for the next call).
func (s *System) quantizeInto(dst []vec.V3, pos []vec.V3) ([]vec.V3, error) {
	if cap(dst) < len(pos) {
		dst = make([]vec.V3, len(pos))
	}
	out := dst[:len(pos)]
	for i, p := range pos {
		qx, okx := s.grid.Quantize(p.X)
		qy, oky := s.grid.Quantize(p.Y)
		qz, okz := s.grid.Quantize(p.Z)
		if !okx || !oky || !okz {
			if s.cfg.StrictRange {
				return nil, fmt.Errorf("g5: position %v outside scale range [%v, %v)",
					p, s.grid.Min, s.grid.Max)
			}
			s.cnt.RangeClamps++
		}
		out[i] = vec.V3{X: qx, Y: qy, Z: qz}
	}
	return out, nil
}

// ChargeOnly accounts the simulated hardware cost of a Compute call
// with ni field points and nj sources WITHOUT evaluating any forces.
// The performance harness uses it to replay a traversal schedule
// through the timing model at full problem scale, where evaluating the
// arithmetic in emulation would be pointless work.
func (s *System) ChargeOnly(ni, nj int) {
	if ni <= 0 || nj <= 0 || s.nActive == 0 {
		return
	}
	s.charge(ni, nj)
}

// charge adds the simulated cost of one Compute(ni, nj) call to the
// counters.
func (s *System) charge(ni, nj int) { s.chargeOpt(ni, nj, true) }

// chargeJBytes accounts a standalone j-particle upload (Driver.SetXMJ).
func (s *System) chargeJBytes(nj int) {
	bytes := int64(nj) * int64(s.cfg.BytesPerJ)
	s.cnt.BytesTransferred += bytes
	s.cnt.BusSeconds += float64(bytes) / s.cfg.BusBandwidth
	s.obs.AddSeconds(obs.PhaseJTransfer, float64(bytes)/s.cfg.BusBandwidth)
	s.obs.Add(obs.CntBytes, bytes)
}

func (s *System) chargeOpt(ni, nj int, chargeJ bool) {
	c := &s.cnt
	c.Runs++
	c.Interactions += int64(ni) * int64(nj)

	vp := s.cfg.VirtualPipesPerBoard()
	boards := s.nActive // excluded boards carry no load
	jmem := s.cfg.JMemPerBoard * boards

	// j is processed in passes of at most the total particle memory.
	passes := (nj + jmem - 1) / jmem
	c.JPasses += int64(passes)
	var pipeSec float64
	remaining := nj
	for p := 0; p < passes; p++ {
		chunk := remaining
		if chunk > jmem {
			chunk = jmem
		}
		remaining -= chunk
		// Each board streams its share of the chunk once per i-group
		// of vp particles, at the board clock.
		perBoard := (chunk + boards - 1) / boards
		iGroups := (ni + vp - 1) / vp
		pipeSec += float64(iGroups) * float64(perBoard) / s.cfg.BoardClockHz
	}
	c.PipeSeconds += pipeSec

	iBytes := int64(ni) * int64(s.cfg.BytesPerI)
	fBytes := int64(ni) * int64(s.cfg.BytesPerForce) * int64(boards)
	var jBytes int64
	if chargeJ {
		jBytes = int64(nj) * int64(s.cfg.BytesPerJ)
	}
	bytes := iBytes + fBytes + jBytes
	c.BytesTransferred += bytes
	c.BusSeconds += float64(bytes)/s.cfg.BusBandwidth + s.cfg.BusLatencyS

	// Telemetry: the paper's t_grape is the pipeline span; t_comm
	// splits into the j upload, the i upload (which carries the fixed
	// DMA/driver latency) and the per-board force readback.
	s.obs.AddSeconds(obs.PhasePipeline, pipeSec)
	s.obs.AddSeconds(obs.PhaseJTransfer, float64(jBytes)/s.cfg.BusBandwidth)
	s.obs.AddSeconds(obs.PhaseITransfer, float64(iBytes)/s.cfg.BusBandwidth+s.cfg.BusLatencyS)
	s.obs.AddSeconds(obs.PhaseReadback, float64(fBytes)/s.cfg.BusBandwidth)
	s.obs.Add(obs.CntFlops, int64(ni)*int64(nj)*int64(s.cfg.OpsPerInteraction))
	s.obs.Add(obs.CntBytes, bytes)
}
