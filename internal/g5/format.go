package g5

import "math"

// RoundMantissa rounds v to the nearest float with the given number of
// explicit mantissa bits (round-half-away-from-zero in magnitude).
// It models the relative-error behaviour of the G5 chip's logarithmic
// number format: quantising log2(v) with step 2^-b and rounding a
// mantissa to b bits both produce a uniform relative error of half a
// unit in the b-th fractional place.
//
// bits >= 52 returns v unchanged. Zero, infinities and NaN pass
// through. Values within half an ulp of ±MaxFloat64 round to infinity
// and subnormals lose the relative-error guarantee; both are far
// outside the dynamic range of any simulation quantity (the hardware's
// log format spans a comparable range).
func RoundMantissa(v float64, bits uint) float64 {
	if bits >= 52 || v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return v
	}
	b := math.Float64bits(v)
	shift := 52 - bits
	round := uint64(1) << (shift - 1)
	mantAndExp := b &^ (1 << 63)
	sign := b & (1 << 63)
	mantAndExp += round // may carry into the exponent: correct rounding across powers of two
	mantAndExp &^= (uint64(1) << shift) - 1
	return math.Float64frombits(sign | mantAndExp)
}

// FixedGrid quantises coordinates to a uniform grid of 2^bits steps
// over [Min, Max), the emulator's model of the pipeline's fixed-point
// position format.
type FixedGrid struct {
	Min, Max float64
	step     float64
	maxIdx   float64
}

// NewFixedGrid constructs the grid. Max must exceed Min.
func NewFixedGrid(min, max float64, bits uint) FixedGrid {
	n := math.Exp2(float64(bits))
	return FixedGrid{Min: min, Max: max, step: (max - min) / n, maxIdx: n - 1}
}

// Quantize returns the grid value nearest to x, clamped to the range,
// and whether x was inside the representable range.
func (g FixedGrid) Quantize(x float64) (float64, bool) {
	idx := math.Round((x - g.Min) / g.step)
	ok := true
	if idx < 0 {
		idx = 0
		ok = false
	} else if idx > g.maxIdx {
		idx = g.maxIdx
		ok = false
	}
	return g.Min + idx*g.step, ok
}

// Step returns the grid spacing.
func (g FixedGrid) Step() float64 { return g.step }
