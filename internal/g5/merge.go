package g5

// Counter merging for checkpoint/restart. A resumed process starts with
// fresh hardware state, so its live counters begin at zero; whole-run
// totals are the checkpointed base plus whatever the current incarnation
// has accumulated since. These Add methods define that merge in one
// place so Simulation accessors and perfreport agree on the arithmetic.

// Add returns the field-wise sum of two counter sets.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		Interactions:     c.Interactions + o.Interactions,
		PipeSeconds:      c.PipeSeconds + o.PipeSeconds,
		BusSeconds:       c.BusSeconds + o.BusSeconds,
		BytesTransferred: c.BytesTransferred + o.BytesTransferred,
		Runs:             c.Runs + o.Runs,
		JPasses:          c.JPasses + o.JPasses,
		RangeClamps:      c.RangeClamps + o.RangeClamps,
	}
}

// Add returns the field-wise sum of two recovery records. HostOnly is
// taken from the live (receiver's argument) side: a restart brings up
// fresh hardware, so whether the run is currently degraded to host-only
// is a property of this incarnation, not of history.
func (r Recovery) Add(live Recovery) Recovery {
	return Recovery{
		Checks:          r.Checks + live.Checks,
		Retries:         r.Retries + live.Retries,
		CorruptResults:  r.CorruptResults + live.CorruptResults,
		ExcludedBoards:  r.ExcludedBoards + live.ExcludedBoards,
		FallbackBatches: r.FallbackBatches + live.FallbackBatches,
		HostOnly:        live.HostOnly,
	}
}

// Add returns the field-wise sum of two fault-injection tallies.
func (f FaultStats) Add(o FaultStats) FaultStats {
	return FaultStats{
		JMemBitFlips:   f.JMemBitFlips + o.JMemBitFlips,
		StuckPipeCalls: f.StuckPipeCalls + o.StuckPipeCalls,
		BusErrors:      f.BusErrors + o.BusErrors,
		Transients:     f.Transients + o.Transients,
	}
}
