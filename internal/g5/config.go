// Package g5 emulates the GRAPE-5 special-purpose computer: a
// functional model of its reduced-precision force pipelines plus a
// timing model of its boards, memory streaming and host interface.
//
// Hardware summary (paper §2, Fig. 1; Kawai et al. 2000, PASJ 52, 659):
// the system used for the Gordon Bell run has 2 processor boards, each
// carrying 8 G5 chips (2 force pipelines per chip, 90 MHz) and a
// particle-data memory streamed at the 15 MHz board clock; each
// physical pipeline serves 6 virtual pipelines so a board processes 96
// i-particles per memory pass. Pairwise forces carry ≈0.3 % relative
// error from the chip's logarithmic internal format. Peak speed is
// 32 pipelines × 90 MHz × 38 ops = 109.44 Gflops.
//
// The emulator reproduces those properties: positions are quantised to
// fixed point over the SetScale range, pipeline arithmetic is rounded
// to a configurable number of mantissa bits (an equivalent-error model
// of the log format, tuned to the 0.3 % pairwise figure), and every
// Compute call charges pipeline cycles and host-interface bytes to a
// simulated wall clock.
package g5

import "fmt"

// Config describes a GRAPE-5 installation. The zero value is not
// usable; call DefaultConfig for the paper's system.
type Config struct {
	// Boards is the number of processor boards (paper: 2).
	Boards int
	// ChipsPerBoard is the number of G5 chips per board (8).
	ChipsPerBoard int
	// PipesPerChip is the number of physical force pipelines per chip (2).
	PipesPerChip int
	// VMP is the virtual-multiple-pipeline factor: each physical
	// pipeline time-shares this many i-particles, matching the 90/15
	// chip/board clock ratio (6).
	VMP int
	// ChipClockHz is the pipeline clock (90 MHz).
	ChipClockHz float64
	// BoardClockHz is the memory/board clock streaming j-particles (15 MHz).
	BoardClockHz float64
	// JMemPerBoard is the particle-data-memory capacity per board, in
	// particles. Larger j-sets are processed in multiple passes.
	JMemPerBoard int

	// PosBits is the fixed-point resolution of particle coordinates
	// over the SetScale range (32).
	PosBits uint
	// MassBits is the mantissa resolution of particle masses (12).
	MassBits uint
	// R2Bits is the mantissa resolution of the squared-distance path (16).
	R2Bits uint
	// PipeBits is the mantissa resolution of the force/potential
	// arithmetic units. Two successive roundings at 7 bits give a
	// pairwise RMS force error of ≈0.3 %, the paper's figure.
	PipeBits uint

	// BusBandwidth is the sustained host-interface bandwidth in
	// bytes/second (PCI era: ~70 MB/s).
	BusBandwidth float64
	// BusLatencyS is the fixed per-call overhead in seconds (driver +
	// DMA setup).
	BusLatencyS float64
	// BytesPerJ, BytesPerI, BytesPerForce are the transfer sizes per
	// j-particle upload, i-particle upload and per-board force
	// readback.
	BytesPerJ, BytesPerI, BytesPerForce int

	// OpsPerInteraction is the flop-counting convention (38).
	OpsPerInteraction int

	// StrictRange makes Compute fail on positions outside the SetScale
	// range instead of clamping them (clamping is what the hardware
	// does; strict mode is for catching host-code bugs).
	StrictRange bool

	// Fault, when non-nil, injects seeded deterministic hardware
	// faults (j-memory bit flips, stuck pipelines, bus errors,
	// transient failures) into every Compute call. Nil means a perfect
	// device.
	Fault *FaultModel
}

// DefaultConfig returns the configuration of the paper's 2-board
// GRAPE-5 system.
func DefaultConfig() Config {
	return Config{
		Boards:            2,
		ChipsPerBoard:     8,
		PipesPerChip:      2,
		VMP:               6,
		ChipClockHz:       90e6,
		BoardClockHz:      15e6,
		JMemPerBoard:      131072,
		PosBits:           32,
		MassBits:          12,
		R2Bits:            16,
		PipeBits:          7,
		BusBandwidth:      70e6,
		BusLatencyS:       50e-6,
		BytesPerJ:         16,
		BytesPerI:         12,
		BytesPerForce:     16,
		OpsPerInteraction: 38,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Boards < 1:
		return fmt.Errorf("g5: Boards must be >= 1")
	case c.ChipsPerBoard < 1 || c.PipesPerChip < 1 || c.VMP < 1:
		return fmt.Errorf("g5: chip/pipe/VMP counts must be >= 1")
	case c.ChipClockHz <= 0 || c.BoardClockHz <= 0:
		return fmt.Errorf("g5: clocks must be positive")
	case c.JMemPerBoard < 1:
		return fmt.Errorf("g5: JMemPerBoard must be >= 1")
	case c.PosBits < 1 || c.PosBits > 52:
		return fmt.Errorf("g5: PosBits must be in [1, 52]")
	case c.BusBandwidth <= 0:
		return fmt.Errorf("g5: BusBandwidth must be positive")
	case c.OpsPerInteraction < 1:
		return fmt.Errorf("g5: OpsPerInteraction must be >= 1")
	}
	if c.Fault != nil {
		if err := c.Fault.validate(c); err != nil {
			return err
		}
	}
	return nil
}

// PhysicalPipes returns the total number of physical pipelines.
func (c Config) PhysicalPipes() int { return c.Boards * c.ChipsPerBoard * c.PipesPerChip }

// VirtualPipesPerBoard returns how many i-particles one board serves
// per memory pass.
func (c Config) VirtualPipesPerBoard() int { return c.ChipsPerBoard * c.PipesPerChip * c.VMP }

// PeakInteractionsPerSecond returns the hardware's peak pairwise
// interaction rate: physical pipes × chip clock. For the paper's
// system this is 2.88e9.
func (c Config) PeakInteractionsPerSecond() float64 {
	return float64(c.PhysicalPipes()) * c.ChipClockHz
}

// PeakFlops returns the theoretical peak in flops using the
// OpsPerInteraction convention: 109.44 Gflops for the paper's system.
func (c Config) PeakFlops() float64 {
	return c.PeakInteractionsPerSecond() * float64(c.OpsPerInteraction)
}
