package g5

import (
	"math"
	"testing"

	"repro/internal/nbody"
	"repro/internal/rng"
	"repro/internal/vec"
)

func openTestDriver(t *testing.T) *Driver {
	t.Helper()
	d, err := Open(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetRange(-100, 100); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDriverLifecycle(t *testing.T) {
	d := openTestDriver(t)
	if d.NumberOfPipelines() != 96 {
		t.Errorf("pipelines = %d", d.NumberOfPipelines())
	}
	if d.JMemorySize() != 2*131072 {
		t.Errorf("jmem = %d", d.JMemorySize())
	}
	d.Close()
	if err := d.SetRange(-1, 1); err == nil {
		t.Error("closed driver accepted SetRange")
	}
	if err := d.SetEpsToAll(0.1); err == nil {
		t.Error("closed driver accepted SetEps")
	}
	if err := d.SetXMJ(0, []vec.V3{{}}, []float64{1}); err == nil {
		t.Error("closed driver accepted SetXMJ")
	}
	if err := d.CalculateForceOnX([]vec.V3{{}}, make([]vec.V3, 1), make([]float64, 1)); err == nil {
		t.Error("closed driver accepted Calculate")
	}
}

func TestDriverDirectSumMatchesReference(t *testing.T) {
	// The classic GRAPE use: load all particles once, compute all
	// forces in pipeline-sized i-batches. Must agree with float64
	// direct summation to pipeline precision.
	const n = 300
	s := nbody.Plummer(n, 1, 1, 1, rng.New(41))
	ref := s.Clone()
	nbody.DirectForces(ref, 1, 0.05)

	d := openTestDriver(t)
	if err := d.SetEpsToAll(0.05); err != nil {
		t.Fatal(err)
	}
	if err := d.SetXMJ(0, s.Pos, s.Mass); err != nil {
		t.Fatal(err)
	}
	np := d.NumberOfPipelines()
	for lo := 0; lo < n; lo += np {
		hi := lo + np
		if hi > n {
			hi = n
		}
		if err := d.CalculateForceOnX(s.Pos[lo:hi], s.Acc[lo:hi], s.Pot[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	var sum2 float64
	for i := range s.Acc {
		rel := s.Acc[i].Sub(ref.Acc[i]).Norm() / ref.Acc[i].Norm()
		sum2 += rel * rel
	}
	rms := math.Sqrt(sum2 / n)
	if rms > 0.006 {
		t.Errorf("driver direct-sum RMS error = %.4f%%, want < 0.6%%", rms*100)
	}
}

func TestDriverJMemoryOverflow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JMemPerBoard = 10 // 20 total
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetRange(-1, 1); err != nil {
		t.Fatal(err)
	}
	x := make([]vec.V3, 21)
	m := make([]float64, 21)
	if err := d.SetXMJ(0, x, m); err == nil {
		t.Error("overflow write accepted")
	}
	if err := d.SetXMJ(-1, x[:1], m[:1]); err == nil {
		t.Error("negative address accepted")
	}
	if err := d.SetXMJ(0, x[:20], m[:20]); err != nil {
		t.Errorf("exact-fit write rejected: %v", err)
	}
	if d.NJ() != 20 {
		t.Errorf("NJ = %d", d.NJ())
	}
}

func TestDriverPartialUpdate(t *testing.T) {
	// Overwriting a sub-range of the j-memory must only affect those
	// particles (the real library updates moving particles in place).
	d := openTestDriver(t)
	d.SetEpsToAll(0)
	if err := d.SetXMJ(0, []vec.V3{{X: 1}, {X: 2}}, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	// Move the second source from x=2 to x=-2.
	if err := d.SetXMJ(1, []vec.V3{{X: -2}}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	acc := make([]vec.V3, 1)
	pot := make([]float64, 1)
	if err := d.CalculateForceOnX([]vec.V3{{X: 0}}, acc, pot); err != nil {
		t.Fatal(err)
	}
	// Sources at +1 and -2: a = 1/1 - 1/4 = 0.75 toward +x.
	if math.Abs(acc[0].X-0.75) > 0.01 {
		t.Errorf("acc after partial update = %v, want ~0.75", acc[0].X)
	}
}

func TestDriverChargesJOnce(t *testing.T) {
	d := openTestDriver(t)
	d.SetEpsToAll(0.01)
	x := make([]vec.V3, 1000)
	m := make([]float64, 1000)
	r := rng.New(6)
	for i := range x {
		x[i] = vec.V3{X: r.Uniform(-50, 50), Y: r.Uniform(-50, 50), Z: r.Uniform(-50, 50)}
		m[i] = 1
	}
	if err := d.SetXMJ(0, x, m); err != nil {
		t.Fatal(err)
	}
	afterLoad := d.System().Counters().BytesTransferred
	wantJ := int64(1000 * DefaultConfig().BytesPerJ)
	if afterLoad != wantJ {
		t.Errorf("load bytes = %d, want %d", afterLoad, wantJ)
	}
	// Two force calls: j bytes must NOT grow, only i/force traffic.
	for k := 0; k < 2; k++ {
		acc := make([]vec.V3, 10)
		pot := make([]float64, 10)
		if err := d.CalculateForceOnX(x[:10], acc, pot); err != nil {
			t.Fatal(err)
		}
	}
	c := d.System().Counters()
	perCall := int64(10*DefaultConfig().BytesPerI + 10*DefaultConfig().BytesPerForce*2)
	if got := c.BytesTransferred - afterLoad; got != 2*perCall {
		t.Errorf("force-call bytes = %d, want %d", got, 2*perCall)
	}
}

func TestDriverNoJLoaded(t *testing.T) {
	d := openTestDriver(t)
	err := d.CalculateForceOnX([]vec.V3{{}}, make([]vec.V3, 1), make([]float64, 1))
	if err == nil {
		t.Error("compute without loaded j-set accepted")
	}
}

// TestDriverGapWrite: a write starting beyond the current NJ must
// materialise the skipped addresses as zero-mass particles at the
// origin — they contribute nothing to forces, but they do count toward
// NJ, exactly like uninitialised particle memory on the real board.
func TestDriverGapWrite(t *testing.T) {
	d := openTestDriver(t)
	d.SetEpsToAll(0)
	if err := d.SetXMJ(4, []vec.V3{{X: 1}, {X: 2}}, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if d.NJ() != 6 {
		t.Fatalf("NJ after gap write = %d, want 6", d.NJ())
	}
	acc := make([]vec.V3, 1)
	pot := make([]float64, 1)
	if err := d.CalculateForceOnX([]vec.V3{{X: -1}}, acc, pot); err != nil {
		t.Fatal(err)
	}
	// Only the two real sources act: a = 1/4 + 1/9; the four implicit
	// zero-mass origin particles contribute nothing.
	want := 1.0/4 + 1.0/9
	if math.Abs(acc[0].X-want) > want*0.01 {
		t.Errorf("acc with gap = %v, want ~%v", acc[0].X, want)
	}
	if pot[0] >= 0 {
		t.Errorf("pot = %v, want negative from the two real sources", pot[0])
	}
	// Filling the gap afterwards behaves like any in-place update.
	if err := d.SetXMJ(0, make([]vec.V3, 4), make([]float64, 4)); err != nil {
		t.Errorf("backfilling the gap failed: %v", err)
	}
	if d.NJ() != 6 {
		t.Errorf("NJ after backfill = %d, want 6", d.NJ())
	}
}

// TestDriverUseAfterClose: every data-path call must fail cleanly on a
// closed driver, and Close must be idempotent.
func TestDriverUseAfterClose(t *testing.T) {
	d := openTestDriver(t)
	if err := d.SetXMJ(0, []vec.V3{{X: 1}}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	d.Close()
	d.Close() // idempotent
	if err := d.SetXMJ(0, []vec.V3{{X: 1}}, []float64{1}); err == nil {
		t.Error("SetXMJ accepted after Close")
	}
	if err := d.CalculateForceOnX([]vec.V3{{}}, make([]vec.V3, 1), make([]float64, 1)); err == nil {
		t.Error("CalculateForceOnX accepted after Close")
	}
	if d.NJ() != 0 {
		t.Errorf("NJ after Close = %d, want 0 (memory released)", d.NJ())
	}
}
