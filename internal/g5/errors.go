package g5

import (
	"errors"
	"fmt"
)

// HardwareError is the typed failure reported by the emulated GRAPE-5
// hardware path. Recovery code (and tests) use it to distinguish
// transient faults worth retrying — bus transfer errors, compute
// timeouts — from permanent failures and host programming bugs,
// without string matching.
type HardwareError struct {
	// Op names the failing operation ("compute", "bus transfer",
	// "compute timeout", ...).
	Op string
	// Transient marks faults that a retry may clear. The real host
	// library's error handling makes the same split: DMA retries are
	// routine, a wedged pipeline is not.
	Transient bool
	// Err is the underlying cause, if any.
	Err error
}

// Error implements the error interface.
func (e *HardwareError) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	if e.Err == nil {
		return fmt.Sprintf("g5: %s %s failure", kind, e.Op)
	}
	return fmt.Sprintf("g5: %s %s failure: %v", kind, e.Op, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *HardwareError) Unwrap() error { return e.Err }

// IsTransient reports whether err is (or wraps) a HardwareError marked
// transient, i.e. one worth retrying.
func IsTransient(err error) bool {
	var hw *HardwareError
	return errors.As(err, &hw) && hw.Transient
}
